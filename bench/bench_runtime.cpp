//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark for the parallel runtime's dispatch path: per-region
/// dispatch latency through the persistent work-stealing pool (static
/// and chunked entry points) versus the spawn-per-region baseline the
/// pool replaced, plus steady-state interpreter throughput under the
/// pool. Emits BENCH_runtime.json so later PRs have a perf trajectory
/// to regress against.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "frontend/MiniC.h"
#include "runtime/ParallelRuntime.h"
#include "runtime/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace noelle;
using nir::CallInst;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;

namespace {

constexpr int DispatchTasks = 4;

/// An empty parallel region: dispatch cost dominates entirely.
const char *LatencySrc = R"(
  extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                              int n);
  int dummy[1];
  void task(int *env, int t, int n) { return; }
  int main() {
    noelle_dispatch(task, dummy, 4);
    return 0;
  }
)";

/// The same program with the parallel region removed: the interpreter
/// floor we subtract so the comparison isolates dispatch overhead.
const char *FloorSrc = R"(
  int dummy[1];
  int main() { return 0; }
)";

const char *LatencyChunkedSrc = R"(
  extern void noelle_dispatch_chunked(void (*task)(int *, int, int),
                                      int *env, int n, int grain);
  int dummy[1];
  void task(int *env, int t, int n) { return; }
  int main() {
    noelle_dispatch_chunked(task, dummy, 4, 1);
    return 0;
  }
)";

/// A DOALL-shaped region with real per-task work, for steady-state
/// throughput under the pool.
const char *ThroughputSrc = R"(
  extern void noelle_dispatch_chunked(void (*task)(int *, int, int),
                                      int *env, int n, int grain);
  int acc[4];
  void task(int *env, int t, int n) {
    int i = t;
    int s = 0;
    while (i < 40000) {
      s = s + i * 3 + 1;
      i = i + n;
    }
    acc[t] = s;
  }
  int main() {
    noelle_dispatch_chunked(task, acc, 4, 1);
    return 0;
  }
)";

/// The seed runtime's dispatch: create and join numTasks fresh threads
/// per region. Registered over the pool implementation to measure the
/// "before" cost on the same engine/module shape.
void registerSpawnDispatch(ExecutionEngine &E) {
  E.registerExternal(
      "noelle_dispatch",
      [](ExecutionEngine &Eng, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        Function *Task = Eng.decodeFunction(A[0].P);
        uint64_t EnvPtr = A[1].P;
        int64_t NumTasks = A[2].I;
        std::vector<std::thread> Threads;
        Threads.reserve(static_cast<size_t>(NumTasks));
        for (int64_t T = 0; T < NumTasks; ++T)
          Threads.emplace_back([&, T] {
            ExecutionEngine::resetThreadRetired();
            Eng.runFunction(Task, {RuntimeValue::ofPtr(EnvPtr),
                                   RuntimeValue::ofInt(T),
                                   RuntimeValue::ofInt(NumTasks)});
          });
        for (auto &Th : Threads)
          Th.join();
        return RuntimeValue();
      });
}

/// Wall time per runMain() call in nanoseconds: best of three timed
/// repetitions, to shed scheduler noise on a loaded host.
double nsPerRun(ExecutionEngine &E, unsigned Iters) {
  E.runMain(); // warm-up: decode + pool worker creation
  E.runMain();
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Iters; ++I)
      E.runMain();
    auto End = std::chrono::steady_clock::now();
    double Ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                End - Start)
                                .count()) /
        Iters;
    if (Rep == 0 || Ns < Best)
      Best = Ns;
  }
  return Best;
}

} // namespace

int main() {
  constexpr unsigned Iters = 300;

  // Dispatch/steal/park accounting comes from the telemetry registry —
  // the same counters the runtime maintains for every consumer — so the
  // bench no longer keeps its own copy of pool bookkeeping.
  namespace telemetry = noelle::telemetry;
  telemetry::setMode(telemetry::Mode::Metrics);

  // Interpreter floor: runMain() with no parallel region at all.
  nir::Context C0;
  auto M0 = minic::compileMiniCOrDie(C0, FloorSrc);
  ExecutionEngine E0(*M0);
  double FloorNs = nsPerRun(E0, Iters);

  // Pool, static dispatch (HELIX/DSWP path).
  nir::Context C1;
  auto M1 = minic::compileMiniCOrDie(C1, LatencySrc);
  ExecutionEngine E1(*M1);
  registerParallelRuntime(E1);
  double PoolNs = nsPerRun(E1, Iters);
  // Worker count from the registry's pool.workers watermark: only E1's
  // pool has run yet, so the high-water mark is its thread count.
  uint64_t PoolThreads = 0;
  for (const auto &[Name, G] : telemetry::snapshotMetrics().Gauges)
    if (Name == "pool.workers")
      PoolThreads = static_cast<uint64_t>(G.Max);

  // Pool, chunked dispatch (DOALL path).
  nir::Context C2;
  auto M2 = minic::compileMiniCOrDie(C2, LatencyChunkedSrc);
  ExecutionEngine E2(*M2);
  registerParallelRuntime(E2);
  double ChunkedNs = nsPerRun(E2, Iters);

  // Spawn-per-region baseline (the seed runtime this PR replaced).
  nir::Context C3;
  auto M3 = minic::compileMiniCOrDie(C3, LatencySrc);
  ExecutionEngine E3(*M3);
  registerParallelRuntime(E3);
  registerSpawnDispatch(E3);
  double SpawnNs = nsPerRun(E3, Iters);

  // Steady-state throughput through the pool.
  nir::Context C4;
  auto M4 = minic::compileMiniCOrDie(C4, ThroughputSrc);
  ExecutionEngine E4(*M4);
  registerParallelRuntime(E4);
  E4.runMain();
  uint64_t InstrBefore = E4.getInstructionsExecuted();
  auto Start = std::chrono::steady_clock::now();
  constexpr unsigned ThroughputRuns = 20;
  for (unsigned I = 0; I < ThroughputRuns; ++I)
    E4.runMain();
  auto End = std::chrono::steady_clock::now();
  double Secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  double Mips = (E4.getInstructionsExecuted() - InstrBefore) / Secs / 1e6;

  // Overhead = region time minus the no-dispatch interpreter floor.
  double SpawnOv = SpawnNs - FloorNs;
  double PoolOv = std::max(PoolNs - FloorNs, 1.0);
  double ChunkedOv = std::max(ChunkedNs - FloorNs, 1.0);
  double SpeedupStatic = SpawnOv / PoolOv;
  double SpeedupChunked = SpawnOv / ChunkedOv;

  std::printf("Parallel-runtime microbenchmark (%d tasks/region, %u "
              "regions)\n\n",
              DispatchTasks, Iters);
  std::printf("  interpreter floor (no region)      : %12.0f\n", FloorNs);
  std::printf("  dispatch ns/region, spawn baseline : %12.0f\n", SpawnNs);
  std::printf("  dispatch ns/region, pool (static)  : %12.0f  (%.1fx "
              "lower overhead)\n",
              PoolNs, SpeedupStatic);
  std::printf("  dispatch ns/region, pool (chunked) : %12.0f  (%.1fx "
              "lower overhead)\n",
              ChunkedNs, SpeedupChunked);
  std::printf("  steady-state throughput            : %12.1f Mips\n", Mips);
  std::printf("  pool threads after warm-up         : %12llu (stable "
              "across %u dispatches)\n",
              static_cast<unsigned long long>(PoolThreads), Iters + 2);

  bool Pass = SpeedupStatic >= 5.0 || SpeedupChunked >= 5.0;
  std::printf("\nshape check: pool dispatch >= 5x lower overhead than "
              "spawn-per-region: %s\n",
              Pass ? "yes" : "NO");

  if (FILE *F = std::fopen("BENCH_runtime.json", "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"interpreter_floor_ns\": %.0f,\n"
                 "  \"dispatch_ns_per_region_spawn\": %.0f,\n"
                 "  \"dispatch_ns_per_region_pool_static\": %.0f,\n"
                 "  \"dispatch_ns_per_region_pool_chunked\": %.0f,\n"
                 "  \"dispatch_overhead_speedup_static\": %.2f,\n"
                 "  \"dispatch_overhead_speedup_chunked\": %.2f,\n"
                 "  \"steady_state_mips\": %.1f,\n"
                 "  \"pool_threads_after_warmup\": %llu\n"
                 "}\n",
                 FloorNs, SpawnNs, PoolNs, ChunkedNs, SpeedupStatic,
                 SpeedupChunked, Mips,
                 static_cast<unsigned long long>(PoolThreads));
    std::fclose(F);
    std::printf("wrote BENCH_runtime.json\n");
  }
  return Pass ? 0 : 1;
}
