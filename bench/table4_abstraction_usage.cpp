//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 4: which NOELLE abstraction each custom
/// tool uses. Unlike the paper's hand-maintained table, this one is
/// *measured*: the demand-driven Noelle manager records every
/// abstraction request, so we run each tool on a representative program
/// and print what it actually asked for.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "xforms/CARAT.h"
#include "xforms/COOS.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/DeadFunctionEliminator.h"
#include "xforms/HELIX.h"
#include "xforms/LICM.h"
#include "xforms/Perspective.h"
#include "xforms/PRVJeeves.h"
#include "xforms/TimeSqueezer.h"

#include <cstdio>
#include <functional>

using namespace noelle;

namespace {

const char *RepresentativeSrc = R"(
  int prvg_next(int seed) {
    int s = (seed * 1103515245 + 12345) % 2147483647;
    if (s < 0) s = -s;
    return s;
  }
  int prvg_lcg_next(int seed) {
    int s = (seed * 69069 + 1) % 2147483647;
    if (s < 0) s = -s;
    return s;
  }
  int data[256];
  int out[256];
  int unusedhelper(int x) { return x * 3; }
  int main() {
    int seed = 11;
    for (int i = 0; i < 256; i = i + 1) {
      seed = prvg_next(seed);
      data[i] = seed % 100;
    }
    int s = 0;
    for (int i = 0; i < 256; i = i + 1) {
      out[i] = data[i] * 2 + 1;
      s = s + out[i];
    }
    return s % 100003;
  }
)";

std::set<std::string>
requestsOf(const std::function<void(Noelle &)> &RunTool) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, RepresentativeSrc);
  Noelle N(*M);
  RunTool(N);
  return N.getRequestedAbstractions().names();
}

} // namespace

int main() {
  std::vector<std::pair<std::string, std::set<std::string>>> Usage;

  Usage.push_back({"HELIX", requestsOf([](Noelle &N) {
                     HELIXOptions O;
                     O.MinimumEstimatedSpeedup = 0;
                     HELIX T(N, O);
                     T.run();
                   })});
  Usage.push_back({"DSWP", requestsOf([](Noelle &N) {
                     DSWPOptions O;
                     O.MinimumStageWeight = 0;
                     DSWP T(N, O);
                     T.run();
                   })});
  Usage.push_back({"CARAT", requestsOf([](Noelle &N) {
                     CARAT T(N);
                     T.run();
                   })});
  Usage.push_back({"COOS", requestsOf([](Noelle &N) {
                     COOS T(N);
                     T.run();
                   })});
  Usage.push_back({"PRVJ", requestsOf([](Noelle &N) {
                     PRVJeeves T(N);
                     T.run();
                   })});
  Usage.push_back({"DOALL", requestsOf([](Noelle &N) {
                     DOALL T(N);
                     T.run();
                   })});
  Usage.push_back({"LICM", requestsOf([](Noelle &N) {
                     LICM T(N);
                     T.run();
                   })});
  Usage.push_back({"TIME", requestsOf([](Noelle &N) {
                     TimeSqueezer T(N);
                     T.run();
                   })});
  Usage.push_back({"DEAD", requestsOf([](Noelle &N) {
                     DeadFunctionEliminator T(N);
                     T.run();
                   })});
  Usage.push_back({"PERS", requestsOf([](Noelle &N) {
                     Perspective T(N);
                     T.planAll();
                   })});

  const std::vector<std::string> Columns = {
      "PDG", "aSCCDAG", "CG",  "ENV", "T",  "DFE", "PRO", "SCD", "L",
      "LB",  "IV",      "IVS", "INV", "FR", "ISL", "RD",  "AR",  "LS"};

  std::printf("Table 4: abstractions each custom tool requested "
              "(measured by the demand-driven Noelle manager)\n\n");
  std::printf("%-7s", "Tool");
  for (const auto &C : Columns)
    std::printf(" %-8s", C.c_str());
  std::printf("\n");
  for (const auto &[Tool, Requested] : Usage) {
    std::printf("%-7s", Tool.c_str());
    for (const auto &C : Columns)
      std::printf(" %-8s", Requested.count(C) ? "x" : "");
    std::printf("\n");
  }

  // The paper's observation: every abstraction serves several tools.
  std::printf("\nabstractions used by >1 tool: ");
  unsigned Shared = 0;
  for (const auto &C : Columns) {
    unsigned Users = 0;
    for (const auto &[Tool, Requested] : Usage)
      Users += Requested.count(C);
    if (Users > 1) {
      std::printf("%s ", C.c_str());
      ++Shared;
    }
  }
  std::printf("(%u of %zu)\n", Shared, Columns.size());
  return 0;
}
