//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) for §2.2/§2.5's design claims:
/// demand-driven construction means users "pay only for the abstractions
/// they need". We measure the construction cost of each abstraction and
/// show LS-only is orders of magnitude cheaper than the full PDG stack,
/// plus throughput of the DFE and the schedulers.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"

#include <benchmark/benchmark.h>

using namespace noelle;

namespace {

std::unique_ptr<nir::Module> compileFixture(nir::Context &Ctx) {
  const bench::Benchmark *B = bench::findBenchmark("blackscholes");
  return minic::compileMiniCOrDie(Ctx, B->Source);
}

void BM_DemandDriven_LoopStructureOnly(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  for (auto _ : State) {
    Noelle N(*M);
    for (const auto &F : M->getFunctions())
      if (!F->isDeclaration())
        benchmark::DoNotOptimize(N.getLoopInfo(*F).getNumLoops());
  }
}
BENCHMARK(BM_DemandDriven_LoopStructureOnly);

void BM_DemandDriven_FullPDG(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  for (auto _ : State) {
    Noelle N(*M);
    benchmark::DoNotOptimize(N.getPDG().getNumEdges());
  }
}
BENCHMARK(BM_DemandDriven_FullPDG);

void BM_DemandDriven_AllLoopContents(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  for (auto _ : State) {
    Noelle N(*M);
    benchmark::DoNotOptimize(N.getLoopContents().size());
  }
}
BENCHMARK(BM_DemandDriven_AllLoopContents);

void BM_Abstraction_CallGraph(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  for (auto _ : State) {
    Noelle N(*M);
    benchmark::DoNotOptimize(N.getCallGraph().getEdges().size());
  }
}
BENCHMARK(BM_Abstraction_CallGraph);

void BM_Abstraction_SCCDAG(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  Noelle N(*M);
  auto Loops = N.getLoopContents();
  PDGBuilder Builder(*M);
  for (auto _ : State) {
    for (LoopContent *LC : Loops) {
      auto DG = Builder.getLoopDG(LC->getLoopStructure());
      SCCDAG Dag(*DG, LC->getLoopStructure());
      benchmark::DoNotOptimize(Dag.getSCCs().size());
    }
  }
}
BENCHMARK(BM_Abstraction_SCCDAG);

void BM_DataFlowEngine_Liveness(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  nir::Function *Main = M->getFunction("main");
  for (auto _ : State) {
    auto R = computeLiveness(*Main);
    benchmark::DoNotOptimize(R->getUniverse().size());
  }
}
BENCHMARK(BM_DataFlowEngine_Liveness);

void BM_DataFlowEngine_ReachingDefs(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  nir::Function *Main = M->getFunction("main");
  for (auto _ : State) {
    auto R = computeReachingDefinitions(*Main);
    benchmark::DoNotOptimize(R->getUniverse().size());
  }
}
BENCHMARK(BM_DataFlowEngine_ReachingDefs);

void BM_Profiler_FullRun(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  for (auto _ : State) {
    auto P = Profiler::profileModule(*M);
    benchmark::DoNotOptimize(P.getTotalInstructions());
  }
}
BENCHMARK(BM_Profiler_FullRun);

void BM_Interpreter_Throughput(benchmark::State &State) {
  nir::Context Ctx;
  auto M = compileFixture(Ctx);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    nir::ExecutionEngine E(*M);
    benchmark::DoNotOptimize(E.runMain());
    Instrs = E.getInstructionsExecuted();
  }
  State.counters["instructions"] =
      benchmark::Counter(static_cast<double>(Instrs),
                         benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Interpreter_Throughput);

} // namespace

BENCHMARK_MAIN();
