//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §4.3 governing-induction-variable comparison: LLVM's
/// detection handles only do-while-shaped loops (11 governing IVs across
/// the paper's 41 benchmarks) while NOELLE's aSCCDAG-based detection is
/// shape-independent (385). The shape to reproduce: an
/// order-of-magnitude gap, because frontends emit while-shaped loops.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "baselines/LLVMBaselines.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"

#include <cstdio>

using namespace noelle;

int main() {
  std::printf("Section 4.3: governing induction variables detected\n");
  std::printf("(paper: LLVM 11 vs NOELLE 385 across 41 benchmarks)\n\n");
  std::vector<int> W = {16, 8, 8, 8, 8};
  benchutil::printRow({"benchmark", "suite", "loops", "LLVM", "NOELLE"}, W);
  benchutil::printSeparator(W);

  uint64_t TotalLLVM = 0, TotalNoelle = 0, TotalLoops = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    Noelle N(*M);

    uint64_t LLVMCount = 0, NoelleCount = 0, Loops = 0;
    for (LoopContent *LC : N.getLoopContents()) {
      ++Loops;
      if (baselines::findGoverningIVLLVM(LC->getLoopStructure()))
        ++LLVMCount;
      if (LC->getIVManager().getGoverningIV())
        ++NoelleCount;
    }
    benchutil::printRow({B.Name, B.Suite, std::to_string(Loops),
                         std::to_string(LLVMCount),
                         std::to_string(NoelleCount)},
                        W);
    TotalLLVM += LLVMCount;
    TotalNoelle += NoelleCount;
    TotalLoops += Loops;
  }
  benchutil::printSeparator(W);
  benchutil::printRow({"total", "", std::to_string(TotalLoops),
                       std::to_string(TotalLLVM),
                       std::to_string(TotalNoelle)},
                      W);
  double Ratio = TotalLLVM ? static_cast<double>(TotalNoelle) /
                                 static_cast<double>(TotalLLVM)
                           : static_cast<double>(TotalNoelle);
  std::printf("\nshape check: NOELLE/LLVM ratio = %.1fx (paper: %.1fx)\n",
              Ratio, 385.0 / 11.0);
  return TotalNoelle > TotalLLVM ? 0 : 1;
}
