//===----------------------------------------------------------------------===//
///
/// \file
/// Figure-3-style ablation for the optimizer pipeline: which NOELLE
/// abstraction each pass consumes, measured — not asserted — by the
/// demand-driven Noelle manager's request tracking. The pipeline resets
/// request tracking before each pass and snapshots the requested set
/// after it (PipelineStats::PassAbstractions), so running the pipeline
/// over the whole benchmark suite and unioning per-pass yields the
/// ground-truth abstraction-dependence matrix of the optimizer, the
/// analogue of the paper's per-tool Table 4 for transformation passes.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "opt/Passes.h"

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace noelle;

int main() {
  // Union of requested abstractions per pass, over every suite kernel.
  std::map<std::string, std::set<std::string>> PerPass;
  std::vector<std::string> PassOrder;

  for (const auto &B : bench::getBenchmarkSuite()) {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    opt::PipelineStats S = opt::runPipeline(*M);
    for (const auto &[Pass, Set] : S.PassAbstractions) {
      if (!PerPass.count(Pass))
        PassOrder.push_back(Pass);
      for (const auto &Name : Set.names())
        PerPass[Pass].insert(Name);
      PerPass[Pass]; // ensure the row exists even for empty sets
    }
  }

  const std::vector<std::string> Columns = {
      "PDG", "aSCCDAG", "CG",  "ENV", "T",  "DFE", "PRO", "SCD", "L",
      "LB",  "IV",      "IVS", "INV", "FR", "ISL", "RD",  "AR",  "LS"};

  std::printf("Optimizer-pipeline abstraction usage (measured over the "
              "%zu-kernel suite)\n\n",
              bench::getBenchmarkSuite().size());
  std::printf("%-8s", "Pass");
  for (const auto &C : Columns)
    std::printf(" %-8s", C.c_str());
  std::printf("\n");
  for (const auto &Pass : PassOrder) {
    std::printf("%-8s", Pass.c_str());
    for (const auto &C : Columns)
      std::printf(" %-8s", PerPass[Pass].count(C) ? "x" : "");
    std::printf("\n");
  }

  // The paper's Figure-3 point, applied to the optimizer: the expensive
  // whole-program abstractions (PDG, call graph, loop forest) are built
  // once by the manager and shared by every pass that asks, instead of
  // each pass re-deriving them.
  std::printf("\nabstractions used by >1 pass: ");
  unsigned Shared = 0;
  for (const auto &C : Columns) {
    unsigned Users = 0;
    for (const auto &Pass : PassOrder)
      Users += PerPass[Pass].count(C);
    if (Users > 1) {
      std::printf("%s ", C.c_str());
      ++Shared;
    }
  }
  std::printf("(%u of %zu)\n", Shared, Columns.size());

  // Sanity: the vectorizer must consult the PDG for legality, and LICM
  // must consult the invariant manager; if either stops asking, the
  // measured matrix (and the legality story) has silently changed.
  if (!PerPass["slp"].count("PDG") || !PerPass["licm"].count("INV")) {
    std::printf("FAIL: expected slp->PDG and licm->INV requests\n");
    return 1;
  }
  return 0;
}
