//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table/figure reproduction harnesses: LoC
/// counting over the source tree, table formatting, and the
/// instruction-level performance model used for Figure 5 (see DESIGN.md
/// §5 — the evaluation host is single-core, so speedups come from
/// per-task retired-instruction accounting, not wall clock).
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHUTILS_H
#define BENCH_BENCHUTILS_H

#include "interp/Interpreter.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace benchutil {

/// Counts non-empty, non-comment-only lines of the given files.
inline uint64_t countLoCFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  uint64_t N = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos)
      continue;
    if (Line.compare(First, 2, "//") == 0)
      continue;
    ++N;
  }
  return N;
}

/// LoC of every .h/.cpp file directly inside (or matching a prefix in)
/// a directory under the source tree.
inline uint64_t countLoC(const std::string &RelDir,
                         const std::string &Prefix = "") {
  namespace fs = std::filesystem;
  fs::path Root = fs::path(NOELLE_REPRO_SOURCE_DIR) / RelDir;
  uint64_t Total = 0;
  if (!fs::exists(Root))
    return 0;
  for (const auto &Entry : fs::directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    auto Ext = Entry.path().extension().string();
    if (Ext != ".h" && Ext != ".cpp")
      continue;
    if (!Prefix.empty() &&
        Entry.path().filename().string().rfind(Prefix, 0) != 0)
      continue;
    Total += countLoCFile(Entry.path());
  }
  return Total;
}

/// Simple fixed-width table printing.
inline void printRow(const std::vector<std::string> &Cells,
                     const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I) {
    std::string C = Cells[I];
    int W = I < Widths.size() ? Widths[I] : 16;
    if (static_cast<int>(C.size()) < W)
      C += std::string(W - C.size(), ' ');
    Line += C + "  ";
  }
  std::printf("%s\n", Line.c_str());
}

inline void printSeparator(const std::vector<int> &Widths) {
  std::string Line;
  for (int W : Widths)
    Line += std::string(W, '-') + "  ";
  std::printf("%s\n", Line.c_str());
}

//===----------------------------------------------------------------------===//
// The Figure-5 performance model.
//===----------------------------------------------------------------------===//

struct PerfModel {
  /// Instructions charged per task spawn/join in a dispatch.
  uint64_t SpawnCostPerTask = 500;
  /// Instructions charged per synchronization op on the critical path
  /// (ss-wait or queue op; derived from core-to-core latency at ~10
  /// interpreted instructions per 100ns).
  uint64_t SyncCost = 20;
};

/// Simulated execution time (in instruction units) of a program run:
/// serial work runs as-is; each parallel region contributes its critical
/// path: max over tasks, but never less than the serialized segment work
/// (HELIX's bound), plus spawn and sync costs.
inline uint64_t simulatedTime(const nir::ExecutionEngine &E,
                              const PerfModel &M = {}) {
  uint64_t Total = E.getInstructionsExecuted();
  uint64_t TaskTotal = 0;
  uint64_t Critical = 0;
  for (const auto &R : E.getDispatchRecords()) {
    TaskTotal += R.TotalTaskInstructions;
    uint64_t Region =
        std::max(R.MaxTaskInstructions + R.MaxTaskSyncOps * M.SyncCost,
                 R.TotalSegmentInstructions);
    Region += R.NumTasks * M.SpawnCostPerTask;
    Critical += Region;
  }
  return Total - TaskTotal + Critical;
}

} // namespace benchutil

#endif // BENCH_BENCHUTILS_H
