//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: how much of NOELLE's end-to-end power comes from the
/// precision of its PDG? Re-run DOALL over the whole suite with the PDG
/// built at three precision levels (none / LLVM-like / NOELLE) and count
/// the loops each level can prove parallelizable. This quantifies the
/// DESIGN.md claim that the custom tools inherit their strength from the
/// abstraction layer, not from tool-local cleverness.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "xforms/DOALL.h"

#include <cstdio>

using namespace noelle;

namespace {

unsigned loopsParallelizable(const bench::Benchmark &B, const char *AAName,
                             bool Summaries) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  NoelleOptions Opts;
  Opts.PDGOptions.AliasAnalysisName = AAName;
  Opts.PDGOptions.UseModRefSummaries = Summaries;
  Noelle N(*M, Opts);
  DOALL Tool(N);
  unsigned Count = 0;
  for (LoopContent *LC : N.getLoopContents())
    if (Tool.applicable(*LC))
      ++Count;
  return Count;
}

} // namespace

int main() {
  std::printf("Ablation: DOALL-provable loops per PDG precision level\n\n");
  std::vector<int> W = {16, 8, 8, 8, 8};
  benchutil::printRow({"benchmark", "loops", "none", "LLVM", "NOELLE"}, W);
  benchutil::printSeparator(W);

  unsigned TotalNone = 0, TotalLLVM = 0, TotalNoelle = 0, TotalLoops = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    unsigned None = loopsParallelizable(B, "none", false);
    unsigned LLVM = loopsParallelizable(B, "llvm", false);
    unsigned Noelle = loopsParallelizable(B, "noelle", true);
    unsigned Loops = 0;
    {
      nir::Context Ctx;
      auto M = minic::compileMiniCOrDie(Ctx, B.Source);
      noelle::Noelle N(*M);
      Loops = static_cast<unsigned>(N.getLoopContents().size());
    }
    benchutil::printRow({B.Name, std::to_string(Loops),
                         std::to_string(None), std::to_string(LLVM),
                         std::to_string(Noelle)},
                        W);
    TotalNone += None;
    TotalLLVM += LLVM;
    TotalNoelle += Noelle;
    TotalLoops += Loops;
  }
  benchutil::printSeparator(W);
  benchutil::printRow({"total", std::to_string(TotalLoops),
                       std::to_string(TotalNone), std::to_string(TotalLLVM),
                       std::to_string(TotalNoelle)},
                      W);
  std::printf("\nshape check: NOELLE-precision PDG proves more loops DOALL "
              "than the LLVM-level PDG: %s\n",
              TotalNoelle > TotalLLVM ? "yes" : "NO");
  return TotalNoelle > TotalLLVM ? 0 : 1;
}
