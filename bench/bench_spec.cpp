//===----------------------------------------------------------------------===//
///
/// \file
/// Speculation payoff harness: for every benchmark-suite kernel,
/// compares the planner with speculation enabled (memory-dependence
/// profile collected and embedded, speculative DOALL in the
/// enumeration) against both the static-only planner and the best
/// hand-picked single-technique sweep. Times use the instruction-level
/// performance model (BenchUtils.h); misspeculation and commit counts
/// come from the telemetry registry, so the harness also certifies that
/// profiled inputs never roll back.
///
/// Writes BENCH_spec.json. With --smoke, asserts every transformed
/// binary still computes the sequential result, every speculative plan
/// passes the plan audit, no kernel misspeculates on its profiled
/// input, and at least one kernel whose hot loop stays sequential under
/// every static technique (x264's motion-estimation shape) reaches
/// within 10% of — or beats — the best static hand pick via
/// speculation.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "noelle/MemDepProfiler.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "telemetry/Telemetry.h"
#include "verify/PlanCheck.h"
#include "xforms/ParallelizationTechnique.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace noelle;

namespace {

constexpr unsigned Cores = 4;

struct RunResult {
  uint64_t Time = 0;
  bool ResultMatches = true;
  unsigned Parallelized = 0;
};

int64_t runBaseline(const bench::Benchmark &B) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  nir::ExecutionEngine E(*M);
  return E.runMain();
}

/// Forced single-technique sweep — one hand-picked column.
RunResult runForced(const bench::Benchmark &B, TechniqueKind K,
                    int64_t Expected) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  Noelle N(*M);
  auto T = createTechnique(K, N, Cores);
  RunResult Out;
  for (const auto &D : T->run())
    Out.Parallelized += D.Parallelized;
  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  Out.ResultMatches = E.runMain() == Expected;
  Out.Time = benchutil::simulatedTime(E);
  return Out;
}

struct SpecStats {
  size_t SpecEntries = 0;
  uint64_t Commits = 0;
  uint64_t Misspecs = 0;
  bool PlanClean = true;
};

/// The planner path, with or without speculation. When speculating, the
/// memory-dependence profile is collected on the kernel's own input and
/// embedded first — the same protocol `noelle-parallelize --speculate`
/// follows.
RunResult runPlanner(const bench::Benchmark &B, int64_t Expected,
                     bool Speculate, SpecStats *Stats) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  if (Speculate) {
    nir::assignDeterministicIDs(*M);
    profileMemDeps(*M).embed(*M);
  }
  Noelle N(*M);
  planner::PlannerOptions PO;
  PO.MaxWorkers = Cores;
  PO.EnableSpeculation = Speculate;
  planner::Planner P(N, PO);
  planner::ProgramPlan Plan = P.plan();

  RunResult Out;
  if (Stats) {
    for (const auto &En : Plan.Entries)
      Stats->SpecEntries += En.Kind == TechniqueKind::SpecDOALL;
    Stats->PlanClean = verify::checkPlan(*M, Plan).clean();
  }
  for (const auto &D : P.apply(Plan))
    Out.Parallelized += D.Parallelized;

  telemetry::setMode(telemetry::Mode::Metrics);
  telemetry::resetMetrics();
  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  Out.ResultMatches = E.runMain() == Expected;
  Out.Time = benchutil::simulatedTime(E);
  if (Stats) {
    auto Snap = telemetry::snapshotMetrics();
    Stats->Commits = Snap.counter(telemetry::Counter::SpecCommits);
    Stats->Misspecs =
        Snap.counter(telemetry::Counter::SpecMisspeculations);
  }
  telemetry::setMode(telemetry::Mode::Off);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::printf("Speculative vs static planning "
              "(%u cores, instruction-level model)\n\n",
              Cores);
  std::vector<int> W = {16, 12, 12, 12, 6, 8, 8, 8};
  benchutil::printRow({"benchmark", "spec-plan", "static-plan",
                       "best-hand", "spec", "misspec", "ratio", "audit"},
                      W);
  benchutil::printSeparator(W);

  unsigned Kernels = 0, AuditClean = 0, SpeculatedKernels = 0;
  unsigned SpecWithin10 = 0;
  uint64_t TotalMisspecs = 0;
  bool AnyWrong = false;
  double LogRatioSum = 0.0; // spec-planner vs static-planner geomean
  std::string JSON = "{\n  \"kernels\": [\n";
  bool FirstRow = true;

  for (const auto &B : bench::getBenchmarkSuite()) {
    int64_t Expected = runBaseline(B);

    RunResult BestHand;
    bool FirstHand = true;
    for (TechniqueKind K : {TechniqueKind::DOALL, TechniqueKind::HELIX,
                            TechniqueKind::DSWP}) {
      RunResult R = runForced(B, K, Expected);
      AnyWrong |= !R.ResultMatches;
      if (FirstHand || R.Time < BestHand.Time) {
        BestHand = R;
        FirstHand = false;
      }
    }

    RunResult Static = runPlanner(B, Expected, false, nullptr);
    SpecStats Stats;
    RunResult Spec = runPlanner(B, Expected, true, &Stats);
    AnyWrong |= !Static.ResultMatches || !Spec.ResultMatches;

    double RatioHand =
        BestHand.Time > 0 ? static_cast<double>(Spec.Time) /
                                static_cast<double>(BestHand.Time)
                          : 1.0;
    double RatioStatic =
        Static.Time > 0 ? static_cast<double>(Spec.Time) /
                              static_cast<double>(Static.Time)
                        : 1.0;
    LogRatioSum += std::log(RatioStatic > 0 ? RatioStatic : 1.0);

    ++Kernels;
    AuditClean += Stats.PlanClean;
    TotalMisspecs += Stats.Misspecs;
    if (Stats.SpecEntries > 0) {
      ++SpeculatedKernels;
      SpecWithin10 += RatioHand <= 1.10 && Stats.Misspecs == 0;
    }

    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", RatioHand);
    benchutil::printRow(
        {B.Name, std::to_string(Spec.Time), std::to_string(Static.Time),
         std::to_string(BestHand.Time), std::to_string(Stats.SpecEntries),
         std::to_string(Stats.Misspecs), Buf,
         Stats.PlanClean ? "clean" : "DIRTY"},
        W);

    char Row[512];
    std::snprintf(
        Row, sizeof(Row),
        "%s    {\"kernel\": \"%s\", \"spec_plan_time\": %llu, "
        "\"static_plan_time\": %llu, \"best_hand_time\": %llu, "
        "\"spec_entries\": %zu, \"commits\": %llu, "
        "\"misspeculations\": %llu, \"ratio_vs_best_hand\": %.4f, "
        "\"ratio_vs_static_plan\": %.4f, \"plan_audit_clean\": %s}",
        FirstRow ? "" : ",\n", B.Name.c_str(),
        (unsigned long long)Spec.Time, (unsigned long long)Static.Time,
        (unsigned long long)BestHand.Time, Stats.SpecEntries,
        (unsigned long long)Stats.Commits,
        (unsigned long long)Stats.Misspecs, RatioHand, RatioStatic,
        Stats.PlanClean ? "true" : "false");
    JSON += Row;
    FirstRow = false;
  }

  double Geomean =
      Kernels > 0 ? std::exp(LogRatioSum / static_cast<double>(Kernels))
                  : 1.0;
  benchutil::printSeparator(W);
  std::printf("\n%u/%u kernels speculated; %u reached within 10%% of the "
              "best static hand pick with zero misspeculations; "
              "spec/static-planner time geomean %.4f; "
              "%llu total misspeculation(s); %u/%u plans audit clean\n",
              SpeculatedKernels, Kernels, SpecWithin10, Geomean,
              (unsigned long long)TotalMisspecs, AuditClean, Kernels);

  char Tail[256];
  std::snprintf(Tail, sizeof(Tail),
                "\n  ],\n  \"kernel_count\": %u,\n"
                "  \"speculated_kernels\": %u,\n"
                "  \"spec_within_10pct_of_best_hand\": %u,\n"
                "  \"spec_vs_static_geomean\": %.4f,\n"
                "  \"total_misspeculations\": %llu,\n"
                "  \"plans_audit_clean\": %u\n}\n",
                Kernels, SpeculatedKernels, SpecWithin10, Geomean,
                (unsigned long long)TotalMisspecs, AuditClean);
  JSON += Tail;
  if (FILE *F = std::fopen("BENCH_spec.json", "w")) {
    std::fputs(JSON.c_str(), F);
    std::fclose(F);
    std::printf("wrote BENCH_spec.json\n");
  }

  if (Smoke) {
    if (AnyWrong) {
      std::printf("SMOKE FAIL: a transformed binary computed a wrong "
                  "result\n");
      return 1;
    }
    if (AuditClean != Kernels) {
      std::printf("SMOKE FAIL: %u speculative plan(s) failed the audit\n",
                  Kernels - AuditClean);
      return 1;
    }
    if (TotalMisspecs != 0) {
      std::printf("SMOKE FAIL: %llu misspeculation(s) on profiled "
                  "inputs\n",
                  (unsigned long long)TotalMisspecs);
      return 1;
    }
    if (SpecWithin10 == 0) {
      std::printf("SMOKE FAIL: no speculated kernel reached the best "
                  "static hand pick\n");
      return 1;
    }
    std::printf("SMOKE PASS\n");
  }
  return 0;
}
