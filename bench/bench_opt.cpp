//===----------------------------------------------------------------------===//
///
/// \file
/// Optimizer-pipeline ablation over the 20-kernel suite: each kernel is
/// compiled and executed under the full pipeline, under the pipeline
/// with one pass knocked out (no-inline, no-gvn, no-licm, no-unroll,
/// no-slp), and with the pipeline off entirely. Retired-instruction
/// counts are the primary metric — deterministic, so a pass's
/// contribution is exactly the retired-count delta its removal causes —
/// with warm wall-clock recorded alongside. Every configuration must
/// produce the same return value and byte-identical output as the
/// unoptimized run; any divergence is a hard failure.
///
/// Emits BENCH_opt.json at the repo root with per-kernel per-config
/// retired counts and the geomean retired-count reduction of the full
/// pipeline (plus each ablation) over the unoptimized baseline.
///
/// `--smoke` runs the same sweep with no warm repeats, for the
/// bench-smoke ctest label; it still writes BENCH_opt.json.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "opt/Passes.h"

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct AblationConfig {
  const char *Name; ///< JSON key
  bool Pipeline;    ///< run the pipeline at all
  bool Inline = true, GVN = true, LICM = true, Unroll = true, SLP = true;
};

constexpr AblationConfig Configs[] = {
    {"none", false},
    {"full", true},
    {"no_inline", true, false, true, true, true, true},
    {"no_gvn", true, true, false, true, true, true},
    {"no_licm", true, true, true, false, true, true},
    {"no_unroll", true, true, true, true, false, true},
    {"no_slp", true, true, true, true, true, false},
};
constexpr int NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

struct ConfigResult {
  int64_t Ret = 0;
  std::string Output;
  uint64_t Instructions = 0;
  double WarmUs = 0;
  uint64_t VectorInsts = 0;
};

ConfigResult runConfig(const bench::Benchmark &B, const AblationConfig &C,
                       unsigned Repeats) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  ConfigResult R;
  if (C.Pipeline) {
    opt::PipelineOptions O;
    O.EnableInline = C.Inline;
    O.EnableGVN = C.GVN;
    O.EnableLICM = C.LICM;
    O.EnableUnroll = C.Unroll;
    O.EnableSLP = C.SLP;
    R.VectorInsts = opt::runPipeline(*M, O).VectorInstsEmitted;
  }
  for (unsigned I = 0; I <= Repeats; ++I) {
    ExecutionEngine E(*M);
    for (const auto &F : M->getFunctions())
      if (!F->isDeclaration())
        E.prepare(F.get());
    double T0 = nowUs();
    R.Ret = E.runMain();
    double Dt = nowUs() - T0;
    R.WarmUs = I == 0 ? Dt : std::min(R.WarmUs, Dt);
    R.Output = E.getOutput();
    R.Instructions = E.getInstructionsExecuted();
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Repeats = Smoke ? 0 : 2;

  std::printf("Optimizer ablation: retired instructions per configuration "
              "(ratio = unoptimized / config, higher is better)\n\n");
  std::printf("%-14s", "kernel");
  for (const auto &C : Configs)
    std::printf(" %10s", C.Name);
  std::printf("\n");

  const auto &Suite = bench::getBenchmarkSuite();
  std::vector<std::array<ConfigResult, NumConfigs>> Results;
  std::vector<std::string> Names;

  for (const auto &B : Suite) {
    std::array<ConfigResult, NumConfigs> KR;
    for (int C = 0; C < NumConfigs; ++C)
      KR[C] = runConfig(B, Configs[C], Repeats);

    // Behavior must be invariant across every configuration.
    for (int C = 1; C < NumConfigs; ++C)
      if (KR[C].Ret != KR[0].Ret || KR[C].Output != KR[0].Output) {
        std::fprintf(stderr, "%s: config '%s' changed program behavior\n",
                     B.Name.c_str(), Configs[C].Name);
        return 1;
      }

    std::printf("%-14s", B.Name.c_str());
    for (int C = 0; C < NumConfigs; ++C)
      std::printf(" %10llu",
                  static_cast<unsigned long long>(KR[C].Instructions));
    std::printf("\n");
    Results.push_back(std::move(KR));
    Names.push_back(B.Name);
  }

  // Geomean retired-count ratio (baseline / config) per configuration.
  double Geo[NumConfigs] = {};
  for (int C = 0; C < NumConfigs; ++C) {
    double LogSum = 0;
    for (const auto &KR : Results)
      LogSum += std::log(static_cast<double>(KR[0].Instructions) /
                         static_cast<double>(KR[C].Instructions));
    Geo[C] = std::exp(LogSum / Results.size());
  }

  std::printf("\n%-14s", "geomean ratio");
  for (int C = 0; C < NumConfigs; ++C)
    std::printf(" %9.3fx", Geo[C]);
  std::printf("\n");
  for (int C = 2; C < NumConfigs; ++C)
    std::printf("%s costs %.1f%% retired-count reduction\n", Configs[C].Name,
                (Geo[1] / Geo[C] - 1.0) * 100.0);

  const bool Pass = Geo[1] > 1.0; // the full pipeline must actually help
  const std::string JsonPath =
      (std::filesystem::path(NOELLE_REPRO_SOURCE_DIR) / "BENCH_opt.json")
          .string();
  if (FILE *F = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(F, "{\n  \"smoke\": %s,\n  \"kernels\": [\n",
                 Smoke ? "true" : "false");
    for (size_t K = 0; K < Results.size(); ++K) {
      std::fprintf(F, "    {\"name\": \"%s\"", Names[K].c_str());
      for (int C = 0; C < NumConfigs; ++C)
        std::fprintf(
            F, ", \"%s\": {\"instructions\": %llu, \"warm_us\": %.1f}",
            Configs[C].Name,
            static_cast<unsigned long long>(Results[K][C].Instructions),
            Results[K][C].WarmUs);
      std::fprintf(F, ", \"vector_insts\": %llu}%s\n",
                   static_cast<unsigned long long>(Results[K][1].VectorInsts),
                   K + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"geomean_retired_ratio\": {");
    for (int C = 0; C < NumConfigs; ++C)
      std::fprintf(F, "%s\"%s\": %.3f", C ? ", " : "", Configs[C].Name,
                   Geo[C]);
    std::fprintf(F, "},\n  \"pass\": %s\n}\n", Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Pass ? 0 : 1;
}
