//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 5: speedups of the NOELLE-based
/// parallelizers (DOALL, HELIX, DSWP) against the gcc/icc
/// auto-parallelization baselines on the PARSEC- and MiBench-like
/// benchmarks, relative to the sequential ("clang -O3") build.
///
/// Speedups use the instruction-level performance model (DESIGN.md §5):
/// the evaluation host is single-core, so "time" is serial retired
/// instructions plus each parallel region's critical path (max per-task
/// work, bounded below by serialized segment work, plus spawn and sync
/// costs). Every transformed binary is also checked for result
/// equivalence against the sequential run.
///
/// Shape to reproduce: gcc/icc flat at ~1.0x, NOELLE tools above 1x on
/// the parallel-friendly kernels, and nobody wins on crc.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "baselines/ConservativeParallelizer.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <cstdio>
#include <functional>

using namespace noelle;

namespace {

constexpr unsigned Cores = 4;

struct Measurement {
  double Speedup = 1.0;
  bool ResultMatches = true;
  unsigned LoopsTransformed = 0;
};

/// Sequential reference: result + instruction count.
std::pair<int64_t, uint64_t> runBaseline(const bench::Benchmark &B) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  nir::ExecutionEngine E(*M);
  int64_t R = E.runMain();
  return {R, E.getInstructionsExecuted()};
}

Measurement
measure(const bench::Benchmark &B, int64_t ExpectedResult,
        uint64_t BaselineInstrs,
        const std::function<unsigned(nir::Module &)> &Transform) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  Measurement Out;
  Out.LoopsTransformed = Transform(*M);
  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  int64_t R = E.runMain();
  Out.ResultMatches = R == ExpectedResult;
  uint64_t Sim = benchutil::simulatedTime(E);
  Out.Speedup =
      static_cast<double>(BaselineInstrs) / static_cast<double>(Sim);
  return Out;
}

std::string fmt(const Measurement &M) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fx%s", M.Speedup,
                M.ResultMatches ? "" : " WRONG");
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 5: program speedups vs sequential baseline "
              "(%u cores, instruction-level model)\n\n",
              Cores);
  std::vector<int> W = {16, 8, 8, 8, 8, 8, 8, 9};
  benchutil::printRow({"benchmark", "suite", "gcc", "icc", "DOALL", "HELIX",
                       "DSWP", "Planner"},
                      W);
  benchutil::printSeparator(W);

  bool AnyWrong = false;
  double BestNoelle = 0, BestBaselineMax = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    if (B.Suite == "SPEC")
      continue; // Figure 5 covers PARSEC + MiBench; §4.4 covers SPEC.
    auto [Expected, BaselineInstrs] = runBaseline(B);

    Measurement Gcc = measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
      baselines::ConservativeOptions O;
      O.NumCores = Cores;
      O.Name = "gcc";
      baselines::ConservativeParallelizer T(M, O);
      unsigned N = 0;
      for (const auto &D : T.run())
        N += D.Parallelized;
      return N;
    });
    Measurement Icc = measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
      baselines::ConservativeOptions O;
      O.NumCores = Cores;
      O.AllowReductions = true;
      O.Name = "icc";
      baselines::ConservativeParallelizer T(M, O);
      unsigned N = 0;
      for (const auto &D : T.run())
        N += D.Parallelized;
      return N;
    });
    Measurement Doall =
        measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
          Noelle N(M);
          DOALLOptions O;
          O.NumCores = Cores;
          DOALL T(N, O);
          unsigned K = 0;
          for (const auto &D : T.run())
            K += D.Parallelized;
          return K;
        });
    Measurement Helix =
        measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
          Noelle N(M);
          HELIXOptions O;
          O.NumCores = Cores;
          HELIX T(N, O);
          unsigned K = 0;
          for (const auto &D : T.run())
            K += D.Parallelized;
          return K;
        });
    Measurement Dswp =
        measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
          Noelle N(M);
          DSWPOptions O;
          O.NumCores = Cores;
          DSWP T(N, O);
          unsigned K = 0;
          for (const auto &D : T.run())
            K += D.Parallelized;
          return K;
        });

    // The free planner: picks technique + worker count per loop from
    // the same cost model the figure's columns are measured by.
    Measurement Plan =
        measure(B, Expected, BaselineInstrs, [](nir::Module &M) {
          Noelle N(M);
          planner::PlannerOptions PO;
          PO.MaxWorkers = Cores;
          planner::Planner P(N, PO);
          unsigned K = 0;
          for (const auto &D : P.planAndApply())
            K += D.Parallelized;
          return K;
        });

    benchutil::printRow({B.Name, B.Suite, fmt(Gcc), fmt(Icc), fmt(Doall),
                         fmt(Helix), fmt(Dswp), fmt(Plan)},
                        W);
    AnyWrong |= !Gcc.ResultMatches || !Icc.ResultMatches ||
                !Doall.ResultMatches || !Helix.ResultMatches ||
                !Dswp.ResultMatches || !Plan.ResultMatches;
    BestNoelle = std::max(
        {BestNoelle, Doall.Speedup, Helix.Speedup, Dswp.Speedup});
    BestBaselineMax = std::max({BestBaselineMax, Gcc.Speedup, Icc.Speedup});
  }

  benchutil::printSeparator(W);
  std::printf("\nshape checks:\n");
  std::printf("  all transformed binaries compute the sequential result: "
              "%s\n",
              AnyWrong ? "NO" : "yes");
  std::printf("  best NOELLE-based speedup: %.2fx (paper: >1x on most "
              "PARSEC/MiBench)\n",
              BestNoelle);
  std::printf("  best gcc/icc-model speedup: %.2fx (paper: ~1.0x "
              "everywhere)\n",
              BestBaselineMax);
  return AnyWrong ? 1 : 0;
}
