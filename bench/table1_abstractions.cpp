//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 1: the abstractions NOELLE provides,
/// their dependences, and their size in LoC — measured from this
/// repository's sources (the paper's own LoC shown alongside for shape
/// comparison).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>

using benchutil::countLoC;

int main() {
  struct Row {
    const char *Abstraction;
    const char *Description;
    uint64_t LoC;
    const char *DependsOn;
    uint64_t PaperLoC;
  };

  std::vector<Row> Rows = {
      {"PDG", "all dependences between instructions of a program",
       countLoC("src/noelle", "PDG") + countLoC("src/noelle", "DependenceGraph") +
           countLoC("src/analysis", "AliasAnalysis"),
       "-", 6775},
      {"aSCCDAG", "SCCDAG of a loop with attributes on each SCC",
       countLoC("src/noelle", "SCCDAG"), "PDG", 4517},
      {"CG", "complete call graph including indirect callees",
       countLoC("src/noelle", "CallGraph"), "PDG", 620},
      {"ENV", "live-ins/live-outs a task needs",
       countLoC("src/noelle", "Environment"), "PDG", 991},
      {"T", "code region executed by a thread (in Environment.h)", 0, "ENV",
       297},
      {"DFE", "data-flow engine (bitvector worklist) + stock analyses",
       countLoC("src/noelle", "DataFlow"), "-", 332},
      {"LS", "loop structure: header, latches, exits, nesting",
       countLoC("src/analysis", "LoopInfo"), "-", 301},
      {"PRO", "profilers + metadata embedding + hotness queries",
       countLoC("src/noelle", "Profiler"), "LS", 1625},
      {"SCD", "PDG-safe instruction schedulers (generic/BB/loop)",
       countLoC("src/noelle", "Scheduler"), "PDG, LS, DFE", 1523},
      {"INV", "loop invariants via the PDG (Algorithm 2)",
       countLoC("src/noelle", "Invariants"), "PDG, LS", 137},
      {"IV", "induction variables incl. the governing one",
       countLoC("src/noelle", "InductionVariables"), "LS, INV, aSCCDAG",
       352 + 425},
      {"RD", "reducible loop variables + reduction algebra",
       countLoC("src/noelle", "Reduction"), "aSCCDAG, INV, IV", 868},
      {"L", "canonical loop bundle (DG + SCCDAG + INV + IV + RD)",
       countLoC("src/noelle", "Noelle"), "LS, PDG, IV, INV, aSCCDAG, RD",
       1508},
      {"FR", "forest with delete-reattach semantics",
       countLoC("src/noelle", "Forest"), "L, CG", 202},
      {"LB", "loop transformations (preheader, hoist, rotation)",
       countLoC("src/noelle", "LoopBuilder"), "FR, L, DFE, IV, IVS, INV",
       4535},
      {"ISL", "disconnected sub-graphs of a graph (in DG/CG)", 0, "PDG, CG",
       56},
      {"AR", "cores, NUMA, measured core-to-core latencies",
       countLoC("src/noelle", "Architecture"), "-", 381},
  };

  std::printf("Table 1: Abstractions provided by NOELLE (this reproduction "
              "vs. paper LoC)\n\n");
  std::vector<int> W = {9, 56, 10, 26, 10};
  benchutil::printRow({"Abstr.", "Description", "LoC", "Depends on",
                       "Paper LoC"},
                      W);
  benchutil::printSeparator(W);
  uint64_t Total = 0, PaperTotal = 0;
  for (const auto &R : Rows) {
    benchutil::printRow({R.Abstraction, R.Description,
                         std::to_string(R.LoC), R.DependsOn,
                         std::to_string(R.PaperLoC)},
                        W);
    Total += R.LoC;
    PaperTotal += R.PaperLoC;
  }
  uint64_t Support = countLoC("src/ir") + countLoC("src/analysis", "CFG") +
                     countLoC("src/analysis", "Dominators") +
                     countLoC("src/support");
  benchutil::printSeparator(W);
  benchutil::printRow({"total", "NOELLE abstraction layer",
                       std::to_string(Total), "", std::to_string(PaperTotal)},
                      W);
  benchutil::printRow({"(substr.)", "IR/CFG/dominators substrate (LLVM's "
                       "role in the paper)",
                       std::to_string(Support), "", "-"},
                      W);
  return 0;
}
