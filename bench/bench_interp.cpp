//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter throughput benchmark over the 20-kernel suite: retired
/// instructions per second for each execution-engine configuration —
/// threaded dispatch + decode-time optimization (the shipping default),
/// the portable switch loop with the same decode, the unoptimized
/// one-opcode-per-instruction decode (the pre-overhaul reference shape),
/// the observed tier with a profiling observer installed, and the
/// NIR optimizer pipeline (inline/GVN/DCE/LICM/unroll/SLP) feeding both
/// dispatch tiers. Emits BENCH_interp.json (at the repo root) with
/// per-kernel cold and warm numbers plus two geomeans: the dispatch
/// improvement of the default configuration over the reference, and the
/// end-to-end improvement of pipeline+threaded over the reference.
///
/// Every kernel run doubles as a correctness check: @main's return
/// value and the captured print output must be identical across all
/// configurations, and the retired-instruction count must be identical
/// across dispatch tiers executing the same module (decode-time
/// optimization and dispatch tier are required to be observationally
/// invisible — the same invariance that pins Figure-5 DispatchRecords).
/// The pipeline legitimately changes retired counts (that is the point),
/// so its two tiers are checked against each other, not the scalar runs.
///
/// `--smoke` runs every kernel with one warm repeat — fast enough for
/// the bench-smoke ctest label, and still writes BENCH_interp.json.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "opt/Passes.h"
#include "telemetry/Telemetry.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using nir::Context;
using nir::ExecutionEngine;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A cheap profiling observer: forces the observed tier and touches its
/// data the way the real Profiler does (per-callback accumulation). The
/// block/decode totals the bench used to tally here now come from the
/// telemetry registry (interp.* counters), so the observer keeps only
/// the accumulation cost, not a duplicate set of counts.
struct CountingObserver : nir::ExecutionObserver {
  uint64_t Callbacks = 0;
  void onBlockExecuted(const nir::BasicBlock *) override { ++Callbacks; }
  void onBranchExecuted(const nir::BranchInst *, unsigned) override {
    ++Callbacks;
  }
};

struct RunResult {
  int64_t Ret = 0;
  std::string Output;
  uint64_t Instructions = 0;
  double ColdUs = 0; ///< first run on a fresh engine (includes decode)
  double WarmUs = 0; ///< best repeat after warm-up
  double warmMips() const {
    return WarmUs > 0 ? static_cast<double>(Instructions) / WarmUs : 0;
  }
};

struct Config {
  const char *Name;
  ExecutionEngine::Options Opts;
  bool WithObserver = false;
  bool Pipeline = false; ///< run the NIR optimizer pipeline first
};

/// Runs one kernel under one configuration: a cold run on a fresh
/// engine (timing includes decode), then \p Repeats warm runs, each on
/// a fresh engine with every function pre-decoded via prepare() so the
/// timed region measures pure execution. A fresh engine per repeat (not
/// re-running @main on one engine) keeps kernels that mutate globals
/// reproducible: each run starts from the module's initial memory image.
RunResult runConfig(const bench::Benchmark &B, const Config &C,
                    unsigned Repeats) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  if (C.Pipeline)
    noelle::opt::runPipeline(*M);

  RunResult R;
  {
    ExecutionEngine E(*M, C.Opts);
    CountingObserver Obs;
    if (C.WithObserver)
      E.setObserver(&Obs);
    double T0 = nowUs();
    R.Ret = E.runMain();
    R.ColdUs = nowUs() - T0;
    R.Output = E.getOutput();
    R.Instructions = E.getInstructionsExecuted();
  }

  R.WarmUs = R.ColdUs;
  for (unsigned I = 0; I < Repeats; ++I) {
    ExecutionEngine E(*M, C.Opts);
    CountingObserver Obs;
    if (C.WithObserver)
      E.setObserver(&Obs);
    for (const auto &F : M->getFunctions())
      if (!F->isDeclaration())
        E.prepare(F.get());
    double T0 = nowUs();
    int64_t Ret = E.runMain();
    double Dt = nowUs() - T0;
    R.WarmUs = std::min(R.WarmUs, Dt);
    if (Ret != R.Ret || E.getOutput() != R.Output ||
        E.getInstructionsExecuted() != R.Instructions) {
      std::fprintf(stderr, "%s [%s]: warm run diverged from cold run\n",
                   B.Name.c_str(), C.Name);
      std::exit(1);
    }
  }
  return R;
}

constexpr int NumConfigs = 6;

struct KernelResult {
  std::string Name;
  uint64_t Instructions = 0;
  RunResult Configs[NumConfigs];
  double speedup() const {
    // Default (threaded+opt) vs the pre-overhaul reference shape
    // (switch dispatch, one opcode per NIR instruction). Same module,
    // so the Mips ratio equals the wall-clock ratio.
    double Ref = Configs[2].warmMips();
    return Ref > 0 ? Configs[0].warmMips() / Ref : 0;
  }
  double pipelineSpeedup() const {
    // Pipeline+threaded vs the reference shape. The optimizer changes
    // the retired count, so this is a wall-clock ratio, not Mips.
    double Pipe = Configs[4].WarmUs;
    return Pipe > 0 ? Configs[2].WarmUs / Pipe : 0;
  }
};

} // namespace

int main(int argc, char **argv) {
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Repeats = Smoke ? 1 : 3;

  // Decode and dispatch-tier accounting is sourced from the telemetry
  // registry — the counters the interpreter maintains anyway — instead
  // of bench-local tallies that could drift from what the engine does.
  namespace telemetry = noelle::telemetry;
  telemetry::setMode(telemetry::Mode::Metrics);

  ExecutionEngine::Options Default; // threaded (when built) + decode opt
  ExecutionEngine::Options SwitchOpt;
  SwitchOpt.Dispatch = ExecutionEngine::DispatchMode::Switch;
  ExecutionEngine::Options Reference;
  Reference.Dispatch = ExecutionEngine::DispatchMode::Switch;
  Reference.DecodeOpt = false;

  const Config Configs[NumConfigs] = {
      {"threaded+opt", Default, false, false},
      {"switch+opt", SwitchOpt, false, false},
      {"switch+noopt", Reference, false, false},
      {"observed", Default, true, false},
      {"threaded+opt+pipe", Default, false, true},
      {"switch+opt+pipe", SwitchOpt, false, true},
  };

  std::printf("Interpreter throughput (warm Mips, best of %u; cold = first "
              "run incl. decode). Threaded dispatch compiled in: %s\n\n",
              Repeats, ExecutionEngine::hasThreadedDispatch() ? "yes" : "no");
  std::printf("%-14s %10s %10s %9s %9s %9s %8s %8s\n", "kernel", "insts",
              "insts-pipe", "thr+opt", "sw+noopt", "pipe(us)", "dispatch",
              "total");

  const auto &Suite = bench::getBenchmarkSuite();
  std::vector<KernelResult> Results;

  for (const auto &B : Suite) {
    KernelResult KR;
    KR.Name = B.Name;
    for (int C = 0; C < NumConfigs; ++C)
      KR.Configs[C] = runConfig(B, Configs[C], Repeats);
    KR.Instructions = KR.Configs[0].Instructions;

    // Invariance: every configuration must produce the same result and
    // output. Retired counts must match across dispatch tiers running
    // the same module — configs 0..3 execute the scalar module, 4..5 the
    // pipeline-optimized one.
    for (int C = 1; C < NumConfigs; ++C) {
      const auto &A = KR.Configs[0], &X = KR.Configs[C];
      const uint64_t WantInsts =
          C < 4 ? A.Instructions : KR.Configs[4].Instructions;
      if (X.Ret != A.Ret || X.Output != A.Output ||
          X.Instructions != WantInsts) {
        std::fprintf(stderr,
                     "%s: config '%s' diverged from '%s' "
                     "(ret %lld vs %lld, insts %llu vs %llu)\n",
                     B.Name.c_str(), Configs[C].Name, Configs[0].Name,
                     static_cast<long long>(X.Ret),
                     static_cast<long long>(A.Ret),
                     static_cast<unsigned long long>(X.Instructions),
                     static_cast<unsigned long long>(WantInsts));
        return 1;
      }
    }

    std::printf("%-14s %10llu %10llu %9.1f %9.1f %9.0f %7.2fx %7.2fx\n",
                KR.Name.c_str(),
                static_cast<unsigned long long>(KR.Instructions),
                static_cast<unsigned long long>(KR.Configs[4].Instructions),
                KR.Configs[0].warmMips(), KR.Configs[2].warmMips(),
                KR.Configs[4].WarmUs, KR.speedup(), KR.pipelineSpeedup());
    Results.push_back(std::move(KR));
  }

  auto Geomean = [&](double (KernelResult::*F)() const) {
    double LogSum = 0;
    for (const auto &R : Results)
      LogSum += std::log((R.*F)());
    return std::exp(LogSum / Results.size());
  };
  const double DispatchGeo = Geomean(&KernelResult::speedup);
  const double TotalGeo = Geomean(&KernelResult::pipelineSpeedup);
  bool Pass = DispatchGeo >= 1.5 && TotalGeo >= DispatchGeo;

  // Suite-wide decode and dispatch-tier totals, straight from the
  // registry. The tier counters double as a config cross-check: the
  // observed config must actually have entered the observed tier.
  const telemetry::MetricsSnapshot Snap = telemetry::snapshotMetrics();
  const uint64_t DecodeHits = Snap.counter(telemetry::Counter::DecodeHit);
  const uint64_t DecodeMisses = Snap.counter(telemetry::Counter::DecodeMiss);
  const uint64_t TierObserved = Snap.counter(telemetry::Counter::TierObserved);
  const telemetry::HistSnapshot *DecodeNs =
      Snap.histogram(telemetry::Hist::DecodeNs);
  if (TierObserved == 0 || DecodeMisses == 0) {
    std::fprintf(stderr,
                 "telemetry cross-check failed: observed-tier entries %llu, "
                 "decode misses %llu (both must be nonzero)\n",
                 static_cast<unsigned long long>(TierObserved),
                 static_cast<unsigned long long>(DecodeMisses));
    Pass = false;
  }
  std::printf("decode (registry): %llu misses, %llu cache hits, p50 %.0f ns; "
              "tier entries threaded/switch/observed: %llu/%llu/%llu\n",
              static_cast<unsigned long long>(DecodeMisses),
              static_cast<unsigned long long>(DecodeHits),
              DecodeNs ? DecodeNs->P50 : 0.0,
              static_cast<unsigned long long>(
                  Snap.counter(telemetry::Counter::TierThreaded)),
              static_cast<unsigned long long>(
                  Snap.counter(telemetry::Counter::TierSwitch)),
              static_cast<unsigned long long>(TierObserved));
  std::printf("\ngeomean speedup vs switch+noopt (the pre-overhaul shape): "
              "dispatch alone %.2fx, dispatch+pipeline %.2fx -- %s\n",
              DispatchGeo, TotalGeo,
              Pass ? "pass" : "FAIL (want dispatch >= 1.5x and pipeline to "
                              "add on top)");

  const std::string JsonPath =
      (std::filesystem::path(NOELLE_REPRO_SOURCE_DIR) / "BENCH_interp.json")
          .string();
  if (FILE *F = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(F,
                 "{\n  \"threaded_dispatch\": %s,\n  \"smoke\": %s,\n"
                 "  \"kernels\": [\n",
                 ExecutionEngine::hasThreadedDispatch() ? "true" : "false",
                 Smoke ? "true" : "false");
    for (size_t I = 0; I < Results.size(); ++I) {
      const auto &R = Results[I];
      std::fprintf(
          F,
          "    {\"name\": \"%s\", \"instructions\": %llu, "
          "\"instructions_pipelined\": %llu, \"cold_us\": %.1f, "
          "\"threaded_opt_mips\": %.1f, \"switch_opt_mips\": %.1f, "
          "\"switch_noopt_mips\": %.1f, \"observed_mips\": %.1f, "
          "\"pipelined_warm_us\": %.1f, "
          "\"speedup_vs_reference\": %.2f, "
          "\"pipeline_speedup_vs_reference\": %.2f}%s\n",
          R.Name.c_str(), static_cast<unsigned long long>(R.Instructions),
          static_cast<unsigned long long>(R.Configs[4].Instructions),
          R.Configs[0].ColdUs, R.Configs[0].warmMips(),
          R.Configs[1].warmMips(), R.Configs[2].warmMips(),
          R.Configs[3].warmMips(), R.Configs[4].WarmUs, R.speedup(),
          R.pipelineSpeedup(), I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(F,
                 "  ],\n"
                 "  \"geomean_speedup\": %.2f,\n"
                 "  \"geomean_pipeline_speedup\": %.2f,\n"
                 "  \"decode\": {\"misses\": %llu, \"hits\": %llu, "
                 "\"p50_ns\": %.0f, \"p95_ns\": %.0f},\n"
                 "  \"tier_entries\": {\"threaded\": %llu, \"switch\": %llu, "
                 "\"observed\": %llu},\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 DispatchGeo, TotalGeo,
                 static_cast<unsigned long long>(DecodeMisses),
                 static_cast<unsigned long long>(DecodeHits),
                 DecodeNs ? DecodeNs->P50 : 0.0, DecodeNs ? DecodeNs->P95 : 0.0,
                 static_cast<unsigned long long>(
                     Snap.counter(telemetry::Counter::TierThreaded)),
                 static_cast<unsigned long long>(
                     Snap.counter(telemetry::Counter::TierSwitch)),
                 static_cast<unsigned long long>(TierObserved),
                 Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Pass ? 0 : 1;
}
