//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter throughput benchmark over the 20-kernel suite: retired
/// instructions per second for each execution-engine configuration —
/// threaded dispatch + decode-time optimization (the shipping default),
/// the portable switch loop with the same decode, the unoptimized
/// one-opcode-per-instruction decode (the pre-overhaul reference shape),
/// and the observed tier with a profiling observer installed. Emits
/// BENCH_interp.json with per-kernel cold and warm numbers plus the
/// geomean improvement of the default configuration over the reference.
///
/// Every kernel run doubles as a correctness check: @main's return
/// value, the captured print output, and the retired-instruction count
/// must be identical across all configurations (decode-time optimization
/// and dispatch tier are required to be observationally invisible — the
/// same invariance that pins Figure-5 DispatchRecords).
///
/// `--smoke` runs the first three kernels once per configuration with
/// the equality checks and no JSON, for the bench-smoke ctest label.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using nir::Context;
using nir::ExecutionEngine;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A cheap profiling observer: forces the observed tier and touches its
/// data the way the real Profiler does (per-callback accumulation).
struct CountingObserver : nir::ExecutionObserver {
  uint64_t Blocks = 0;
  uint64_t Branches = 0;
  void onBlockExecuted(const nir::BasicBlock *) override { ++Blocks; }
  void onBranchExecuted(const nir::BranchInst *, unsigned) override {
    ++Branches;
  }
};

struct RunResult {
  int64_t Ret = 0;
  std::string Output;
  uint64_t Instructions = 0;
  double ColdUs = 0; ///< first run on a fresh engine (includes decode)
  double WarmUs = 0; ///< best repeat after warm-up
  double warmMips() const {
    return WarmUs > 0 ? static_cast<double>(Instructions) / WarmUs : 0;
  }
};

struct Config {
  const char *Name;
  ExecutionEngine::Options Opts;
  bool WithObserver = false;
};

/// Runs one kernel under one configuration: a cold run on a fresh
/// engine (timing includes decode), then \p Repeats warm runs, each on
/// a fresh engine with every function pre-decoded via prepare() so the
/// timed region measures pure execution. A fresh engine per repeat (not
/// re-running @main on one engine) keeps kernels that mutate globals
/// reproducible: each run starts from the module's initial memory image.
RunResult runConfig(const bench::Benchmark &B, const Config &C,
                    unsigned Repeats) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);

  RunResult R;
  {
    ExecutionEngine E(*M, C.Opts);
    CountingObserver Obs;
    if (C.WithObserver)
      E.setObserver(&Obs);
    double T0 = nowUs();
    R.Ret = E.runMain();
    R.ColdUs = nowUs() - T0;
    R.Output = E.getOutput();
    R.Instructions = E.getInstructionsExecuted();
  }

  R.WarmUs = R.ColdUs;
  for (unsigned I = 0; I < Repeats; ++I) {
    ExecutionEngine E(*M, C.Opts);
    CountingObserver Obs;
    if (C.WithObserver)
      E.setObserver(&Obs);
    for (const auto &F : M->getFunctions())
      if (!F->isDeclaration())
        E.prepare(F.get());
    double T0 = nowUs();
    int64_t Ret = E.runMain();
    double Dt = nowUs() - T0;
    R.WarmUs = std::min(R.WarmUs, Dt);
    if (Ret != R.Ret || E.getOutput() != R.Output ||
        E.getInstructionsExecuted() != R.Instructions) {
      std::fprintf(stderr, "%s [%s]: warm run diverged from cold run\n",
                   B.Name.c_str(), C.Name);
      std::exit(1);
    }
  }
  return R;
}

struct KernelResult {
  std::string Name;
  uint64_t Instructions = 0;
  RunResult Configs[4];
  double speedup() const {
    // Default (threaded+opt) vs the pre-overhaul reference shape
    // (switch dispatch, one opcode per NIR instruction).
    double Ref = Configs[2].warmMips();
    return Ref > 0 ? Configs[0].warmMips() / Ref : 0;
  }
};

} // namespace

int main(int argc, char **argv) {
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Repeats = Smoke ? 0 : 3;

  ExecutionEngine::Options Default; // threaded (when built) + decode opt
  ExecutionEngine::Options SwitchOpt;
  SwitchOpt.Dispatch = ExecutionEngine::DispatchMode::Switch;
  ExecutionEngine::Options Reference;
  Reference.Dispatch = ExecutionEngine::DispatchMode::Switch;
  Reference.DecodeOpt = false;

  const Config Configs[4] = {
      {"threaded+opt", Default, false},
      {"switch+opt", SwitchOpt, false},
      {"switch+noopt", Reference, false},
      {"observed", Default, true},
  };

  std::printf("Interpreter throughput (warm Mips, best of %u; cold = first "
              "run incl. decode). Threaded dispatch compiled in: %s\n\n",
              Repeats, ExecutionEngine::hasThreadedDispatch() ? "yes" : "no");
  std::printf("%-14s %10s %9s %9s %9s %9s %9s %7s\n", "kernel", "insts",
              "cold(us)", "thr+opt", "sw+opt", "sw+noopt", "observed",
              "speedup");

  const auto &Suite = bench::getBenchmarkSuite();
  size_t NumKernels = Smoke ? 3 : Suite.size();
  std::vector<KernelResult> Results;

  for (size_t K = 0; K < NumKernels; ++K) {
    const auto &B = Suite[K];
    KernelResult KR;
    KR.Name = B.Name;
    for (int C = 0; C < 4; ++C)
      KR.Configs[C] = runConfig(B, Configs[C], Repeats);
    KR.Instructions = KR.Configs[0].Instructions;

    // The invariance check: every configuration must produce the same
    // result, the same output, and retire the same instruction count.
    for (int C = 1; C < 4; ++C) {
      const auto &A = KR.Configs[0], &X = KR.Configs[C];
      if (X.Ret != A.Ret || X.Output != A.Output ||
          X.Instructions != A.Instructions) {
        std::fprintf(stderr,
                     "%s: config '%s' diverged from '%s' "
                     "(ret %lld vs %lld, insts %llu vs %llu)\n",
                     B.Name.c_str(), Configs[C].Name, Configs[0].Name,
                     static_cast<long long>(X.Ret),
                     static_cast<long long>(A.Ret),
                     static_cast<unsigned long long>(X.Instructions),
                     static_cast<unsigned long long>(A.Instructions));
        return 1;
      }
    }

    std::printf("%-14s %10llu %9.0f %9.1f %9.1f %9.1f %9.1f %6.2fx\n",
                KR.Name.c_str(),
                static_cast<unsigned long long>(KR.Instructions),
                KR.Configs[0].ColdUs, KR.Configs[0].warmMips(),
                KR.Configs[1].warmMips(), KR.Configs[2].warmMips(),
                KR.Configs[3].warmMips(), KR.speedup());
    Results.push_back(std::move(KR));
  }

  if (Smoke) {
    std::printf("\nbench-smoke: %zu kernels x 4 configs identical -- pass\n",
                Results.size());
    return 0;
  }

  double LogSum = 0;
  for (const auto &R : Results)
    LogSum += std::log(R.speedup());
  double Geomean = std::exp(LogSum / Results.size());
  bool Pass = Geomean >= 1.5;
  std::printf("\ngeomean speedup threaded+opt vs switch+noopt (the "
              "pre-overhaul shape): %.2fx -- %s\n",
              Geomean, Pass ? "pass (>=1.5x)" : "FAIL");

  if (FILE *F = std::fopen("BENCH_interp.json", "w")) {
    std::fprintf(F, "{\n  \"threaded_dispatch\": %s,\n  \"kernels\": [\n",
                 ExecutionEngine::hasThreadedDispatch() ? "true" : "false");
    for (size_t I = 0; I < Results.size(); ++I) {
      const auto &R = Results[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"instructions\": %llu, "
                   "\"cold_us\": %.1f, "
                   "\"threaded_opt_mips\": %.1f, \"switch_opt_mips\": %.1f, "
                   "\"switch_noopt_mips\": %.1f, \"observed_mips\": %.1f, "
                   "\"speedup_vs_reference\": %.2f}%s\n",
                   R.Name.c_str(),
                   static_cast<unsigned long long>(R.Instructions),
                   R.Configs[0].ColdUs, R.Configs[0].warmMips(),
                   R.Configs[1].warmMips(), R.Configs[2].warmMips(),
                   R.Configs[3].warmMips(), R.speedup(),
                   I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(F,
                 "  ],\n"
                 "  \"geomean_speedup\": %.2f,\n"
                 "  \"pass_1_5x\": %s\n"
                 "}\n",
                 Geomean, Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote BENCH_interp.json\n");
  }
  return Pass ? 0 : 1;
}
