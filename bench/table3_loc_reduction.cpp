//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 3: lines of code of the ten custom
/// tools when built upon NOELLE. Our NOELLE-based implementations are
/// measured from this repository; the "LLVM-only" column reports the
/// paper's numbers (re-implementing all ten tools twice is the point the
/// table argues against). The shape to reproduce: every tool lands in
/// the few-dozen-to-few-hundred-LoC range, a 33-99% reduction.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>

using benchutil::countLoC;

int main() {
  struct Row {
    const char *Tool;
    const char *Description;
    uint64_t PaperLLVMLoC;
    uint64_t PaperNoelleLoC;
    uint64_t OurLoC;
  };

  std::vector<Row> Rows = {
      {"TIME", "compare optimization for timing-speculative uarch", 510, 92,
       countLoC("src/xforms", "TimeSqueezer")},
      {"COOS", "OS-routine injection replacing hardware interrupts", 1641,
       495, countLoC("src/xforms", "COOS")},
      {"LICM", "loop invariant code motion", 2317, 170,
       countLoC("src/xforms", "LICM")},
      {"DOALL", "DOALL parallelizing compiler", 5512, 321,
       countLoC("src/xforms", "DOALL")},
      {"DEAD", "dead function elimination", 7512, 61,
       countLoC("src/xforms", "DeadFunctionEliminator")},
      {"DSWP", "DSWP parallelizing compiler", 8525, 775,
       countLoC("src/xforms", "DSWP")},
      {"HELIX", "HELIX parallelizing compiler", 15453, 958,
       countLoC("src/xforms", "HELIX")},
      {"PRVJ", "pseudo-random value generator selection", 17863, 456,
       countLoC("src/xforms", "PRVJeeves")},
      {"CARAT", "memory guard injection and optimization", 21899, 595,
       countLoC("src/xforms", "CARAT")},
      {"PERS", "speculation-minimizing parallelization (planner)", 33998,
       22706, countLoC("src/xforms", "Perspective")},
  };

  std::printf("Table 3: custom tools built upon NOELLE\n");
  std::printf("(ours measured from src/xforms; paper columns for "
              "comparison; shared parallelization utils counted "
              "separately)\n\n");
  std::vector<int> W = {7, 52, 12, 14, 10, 12};
  benchutil::printRow({"Tool", "Description", "LLVM (paper)",
                       "NOELLE (paper)", "Ours", "Reduction"},
                      W);
  benchutil::printSeparator(W);
  for (const auto &R : Rows) {
    double Reduction =
        100.0 * (1.0 - static_cast<double>(R.OurLoC) /
                           static_cast<double>(R.PaperLLVMLoC));
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%.1f%%", Reduction);
    benchutil::printRow({R.Tool, R.Description,
                         std::to_string(R.PaperLLVMLoC),
                         std::to_string(R.PaperNoelleLoC),
                         std::to_string(R.OurLoC), Buf},
                        W);
  }
  benchutil::printSeparator(W);
  benchutil::printRow(
      {"(shared)", "ParallelizationUtils (ENV/T codegen shared by 3 tools)",
       "-", "-",
       std::to_string(countLoC("src/xforms", "ParallelizationUtils")), "-"},
      W);
  benchutil::printRow(
      {"(base)", "src/baselines: the LLVM-level analyses (Alg. 1 etc.)",
       "-", "-", std::to_string(countLoC("src/baselines")), "-"},
      W);
  return 0;
}
