//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 3: the fraction of potential memory
/// dependences each analysis stack disproves, per benchmark. "LLVM" is
/// the basic intraprocedural stack; "NOELLE" adds whole-program
/// points-to and interprocedural mod/ref summaries (the SCAF/SVF role).
/// The property to reproduce: NOELLE >= LLVM everywhere, strictly more
/// overall.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/PDG.h"

#include <cstdio>

using namespace noelle;

namespace {

double disprovedPercent(const bench::Benchmark &B, const char *AAName,
                        bool Summaries) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  PDGBuildOptions Opts;
  Opts.AliasAnalysisName = AAName;
  Opts.UseModRefSummaries = Summaries;
  PDGBuilder Builder(*M, Opts);
  const auto &S = Builder.getPDG().getStats();
  if (!S.MemoryPairsQueried)
    return 0;
  return 100.0 * static_cast<double>(S.MemoryPairsDisproved) /
         static_cast<double>(S.MemoryPairsQueried);
}

} // namespace

int main() {
  std::printf("Figure 3: %% of potential memory dependences disproved\n");
  std::printf("(higher is better; NOELLE must dominate LLVM)\n\n");
  std::vector<int> W = {16, 8, 10, 10, 10};
  benchutil::printRow({"benchmark", "suite", "none", "LLVM", "NOELLE"}, W);
  benchutil::printSeparator(W);

  double SumLLVM = 0, SumNoelle = 0;
  unsigned N = 0;
  unsigned Violations = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    double None = disprovedPercent(B, "none", false);
    double LLVM = disprovedPercent(B, "llvm", false);
    double Noelle = disprovedPercent(B, "noelle", true);
    char BufN[16], BufL[16], BufO[16];
    std::snprintf(BufN, sizeof(BufN), "%.1f%%", None);
    std::snprintf(BufL, sizeof(BufL), "%.1f%%", LLVM);
    std::snprintf(BufO, sizeof(BufO), "%.1f%%", Noelle);
    benchutil::printRow({B.Name, B.Suite, BufN, BufL, BufO}, W);
    SumLLVM += LLVM;
    SumNoelle += Noelle;
    ++N;
    if (Noelle + 1e-9 < LLVM)
      ++Violations;
  }
  benchutil::printSeparator(W);
  char BufL[16], BufO[16];
  std::snprintf(BufL, sizeof(BufL), "%.1f%%", SumLLVM / N);
  std::snprintf(BufO, sizeof(BufO), "%.1f%%", SumNoelle / N);
  benchutil::printRow({"average", "", "0.0%", BufL, BufO}, W);
  std::printf("\nshape check: NOELLE < LLVM on %u of %u benchmarks "
              "(paper expects 0)\n",
              Violations, N);
  return Violations ? 1 : 0;
}
