//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates §4.5: DeadFunctionElimination reduces binary size beyond
/// what size-oriented compilation achieves (paper: 6.3% average over 41
/// benchmarks). Each kernel is linked against a small utility library
/// (the role libc-ish code plays in the paper's -Oz binaries); DEAD
/// proves most of it unreachable through the complete call graph —
/// including across indirect calls — and drops it.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "tools/NoelleTools.h"
#include "xforms/DeadFunctionEliminator.h"

#include <cstdio>

using namespace noelle;

namespace {

/// The utility library every program links against: a few helpers are
/// used by nobody (dead), one is kept alive only through a function
/// pointer in some programs.
const char *UtilityLibrary = R"(
  int util_abs(int x) { if (x < 0) return -x; return x; }
  int util_min(int a, int b) { if (a < b) return a; return b; }
  int util_max(int a, int b) { if (a > b) return a; return b; }
  int util_gcd(int a, int b) {
    while (b != 0) { int t = a % b; a = b; b = t; }
    return a;
  }
  int util_pow10(int n) {
    int r = 1;
    for (int i = 0; i < n; i = i + 1) r = r * 10;
    return r;
  }
  int util_popcount(int x) {
    int c = 0;
    while (x != 0) { c = c + (x & 1); x = x >> 1; }
    return c;
  }
  int util_reverse_bits(int x) {
    int r = 0;
    for (int i = 0; i < 32; i = i + 1) {
      r = (r << 1) | (x & 1);
      x = x >> 1;
    }
    return r;
  }
  double util_lerp(double a, double b, double t) {
    return a + (b - a) * t;
  }
  int util_clampi(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
  }
)";

} // namespace

int main() {
  std::printf("Section 4.5: binary-size reduction from "
              "DeadFunctionElimination (paper: 6.3%% average)\n\n");
  std::vector<int> W = {16, 12, 12, 12, 10};
  benchutil::printRow(
      {"benchmark", "bytes before", "bytes after", "fns removed", "saved"},
      W);
  benchutil::printSeparator(W);

  double SumSaved = 0;
  unsigned N = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    nir::Context Ctx;
    std::string Error;
    auto M = tools::wholeIR(Ctx, {B.Source, UtilityLibrary}, Error);
    if (!M) {
      std::printf("%s: link failed: %s\n", B.Name.c_str(), Error.c_str());
      return 1;
    }
    int64_t Before = tools::makeBinary(*M)->runMain();

    Noelle Noe(*M);
    DeadFunctionEliminator Tool(Noe);
    auto R = Tool.run();
    int64_t After = tools::makeBinary(*M)->runMain();
    if (Before != After) {
      std::printf("%s: DEAD changed the result!\n", B.Name.c_str());
      return 1;
    }
    double Saved = 100.0 * (1.0 - static_cast<double>(R.BinaryBytesAfter) /
                                      static_cast<double>(R.BinaryBytesBefore));
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%.1f%%", Saved);
    benchutil::printRow({B.Name, std::to_string(R.BinaryBytesBefore),
                         std::to_string(R.BinaryBytesAfter),
                         std::to_string(R.FunctionsRemoved), Buf},
                        W);
    SumSaved += Saved;
    ++N;
  }
  benchutil::printSeparator(W);
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", SumSaved / N);
  benchutil::printRow({"average", "", "", "", Buf}, W);
  std::printf("\nshape check: positive average reduction (paper: 6.3%%): "
              "%s\n",
              SumSaved > 0 ? "yes" : "NO");
  return SumSaved > 0 ? 0 : 1;
}
