//===----------------------------------------------------------------------===//
///
/// \file
/// Telemetry overhead benchmark: wall-clock cost of the metrics registry
/// and the trace recorder on the Figure-5 kernel set (PARSEC + MiBench
/// shapes), parallelized by the planner so the instrumented dispatch,
/// pool, and pipeline-queue paths are actually on the measured path.
///
/// Per kernel, four legs run interleaved (one leg after another inside
/// each repetition, so machine drift hits all legs equally), each on a
/// fresh pre-decoded engine:
///
///   off-a, off-b   telemetry disabled (Mode::Off) — two independent
///                  legs; their ratio is the disabled-mode overhead
///                  measurement (the guard branches are on both sides,
///                  so anything above the noise floor would show up)
///   metrics        Mode::Metrics — counters, gauges, histograms live
///   trace          Mode::Trace — metrics plus span recording
///
/// Reported per kernel and as geomeans: off-b/off-a (disabled),
/// metrics/off, trace/off, where "off" is min(off-a, off-b) so the
/// enabled ratios are measured against the best disabled floor. A
/// microbenchmark of the disabled fast path (ns per count() call with
/// Mode::Off) backs the kernel-level numbers. Gates: disabled geomean
/// within 1%, metrics geomean within 10% (the paper-facing "≤1%
/// disabled / ≤10% enabled" claim); `--smoke` widens both for noisy CI
/// hosts and drops to two repetitions. Writes BENCH_telemetry.json to
/// the repo root.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "noelle/Noelle.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace noelle;
namespace telemetry = noelle::telemetry;

namespace {

constexpr unsigned Cores = 4;

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum Leg { OffA = 0, OffB, Metrics, Trace, NumLegs };
const char *LegNames[NumLegs] = {"off-a", "off-b", "metrics", "trace"};
const telemetry::Mode LegModes[NumLegs] = {
    telemetry::Mode::Off, telemetry::Mode::Off, telemetry::Mode::Metrics,
    telemetry::Mode::Trace};

struct KernelResult {
  std::string Name;
  double LegUs[NumLegs] = {0, 0, 0, 0};
  double offUs() const { return std::min(LegUs[OffA], LegUs[OffB]); }
  double disabledRatio() const { return LegUs[OffB] / LegUs[OffA]; }
  double metricsRatio() const { return LegUs[Metrics] / offUs(); }
  double traceRatio() const { return LegUs[Trace] / offUs(); }
};

/// One timed execution on a fresh, fully pre-decoded engine. The mode
/// switch, the engine build, and the trace/metrics cleanup all happen
/// outside the timed region.
double timedRun(nir::Module &M, telemetry::Mode Mode, int64_t &Ret) {
  telemetry::setMode(Mode);
  nir::ExecutionEngine E(M);
  registerParallelRuntime(E);
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration())
      E.prepare(F.get());
  double T0 = nowUs();
  Ret = E.runMain();
  double Dt = nowUs() - T0;
  telemetry::setMode(telemetry::Mode::Off);
  telemetry::clearTrace();
  telemetry::resetMetrics();
  return Dt;
}

/// ns per telemetry::count() call with the registry disabled: the cost
/// of one guard branch (an atomic relaxed load) — the only thing the
/// instrumentation adds to a build that never enables telemetry.
double disabledGuardNs() {
  telemetry::setMode(telemetry::Mode::Off);
  constexpr uint64_t Calls = 10 * 1000 * 1000;
  double T0 = nowUs();
  for (uint64_t I = 0; I < Calls; ++I)
    telemetry::count(telemetry::Counter::PoolTasksRun);
  return (nowUs() - T0) * 1000.0 / Calls;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Reps = Smoke ? 2 : 9;
  // Smoke runs gate loosely: one warm repetition per leg on a shared CI
  // box measures noise as much as overhead. The committed numbers come
  // from a full run.
  const double DisabledGate = Smoke ? 1.05 : 1.01;
  const double MetricsGate = Smoke ? 1.25 : 1.10;

  const double GuardNs = disabledGuardNs();

  std::printf("Telemetry overhead on Figure-5 kernels (planner-parallelized, "
              "%u cores, best of %u interleaved reps)\n",
              Cores, Reps);
  std::printf("disabled count() guard: %.2f ns/call\n\n", GuardNs);
  std::printf("%-14s %10s %10s %10s %9s %9s %9s\n", "kernel", "off(us)",
              "metr(us)", "trace(us)", "off b/a", "metr/off", "trace/off");

  std::vector<KernelResult> Results;
  for (const auto &B : bench::getBenchmarkSuite()) {
    if (B.Suite == "SPEC")
      continue; // same kernel set as Figure 5

    // Parallelize once; every leg runs the identical transformed module.
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    {
      Noelle N(*M);
      planner::PlannerOptions PO;
      PO.MaxWorkers = Cores;
      planner::Planner P(N, PO);
      P.planAndApply();
    }

    KernelResult KR;
    KR.Name = B.Name;
    int64_t WantRet = 0;
    bool HaveWant = false;
    for (int L = 0; L < NumLegs; ++L)
      KR.LegUs[L] = 0;
    for (unsigned R = 0; R < Reps; ++R) {
      for (int LI = 0; LI < NumLegs; ++LI) {
        // Rotate the leg order every repetition so no leg always runs
        // first (or last) and inherits a systematic cache/frequency
        // advantage; with best-of-Reps per leg the rotation leaves each
        // leg sampled equally in every position.
        const int L = (LI + static_cast<int>(R)) % NumLegs;
        int64_t Ret = 0;
        double Us = timedRun(*M, LegModes[L], Ret);
        if (!HaveWant) {
          WantRet = Ret;
          HaveWant = true;
        } else if (Ret != WantRet) {
          std::fprintf(stderr, "%s [%s]: result %lld diverged from %lld\n",
                       B.Name.c_str(), LegNames[L],
                       static_cast<long long>(Ret),
                       static_cast<long long>(WantRet));
          return 1;
        }
        if (KR.LegUs[L] == 0 || Us < KR.LegUs[L])
          KR.LegUs[L] = Us;
      }
    }

    std::printf("%-14s %10.1f %10.1f %10.1f %9.3f %9.3f %9.3f\n",
                KR.Name.c_str(), KR.offUs(), KR.LegUs[Metrics],
                KR.LegUs[Trace], KR.disabledRatio(), KR.metricsRatio(),
                KR.traceRatio());
    Results.push_back(std::move(KR));
  }

  auto Geomean = [&](double (KernelResult::*F)() const) {
    double LogSum = 0;
    for (const auto &R : Results)
      LogSum += std::log((R.*F)());
    return std::exp(LogSum / Results.size());
  };
  const double DisabledGeo = Geomean(&KernelResult::disabledRatio);
  const double MetricsGeo = Geomean(&KernelResult::metricsRatio);
  const double TraceGeo = Geomean(&KernelResult::traceRatio);

  bool Pass = DisabledGeo <= DisabledGate && MetricsGeo <= MetricsGate;
  std::printf("\ngeomean overhead: disabled %.3fx (gate <= %.2f), metrics "
              "%.3fx (gate <= %.2f), trace %.3fx (reported) -- %s\n",
              DisabledGeo, DisabledGate, MetricsGeo, MetricsGate, TraceGeo,
              Pass ? "pass" : "FAIL");

  const std::string JsonPath =
      (std::filesystem::path(NOELLE_REPRO_SOURCE_DIR) /
       "BENCH_telemetry.json")
          .string();
  if (FILE *F = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(F,
                 "{\n  \"smoke\": %s,\n"
                 "  \"disabled_guard_ns_per_call\": %.2f,\n"
                 "  \"kernels\": [\n",
                 Smoke ? "true" : "false", GuardNs);
    for (size_t I = 0; I < Results.size(); ++I) {
      const auto &R = Results[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"off_us\": %.1f, "
                   "\"metrics_us\": %.1f, \"trace_us\": %.1f, "
                   "\"disabled_ratio\": %.3f, \"metrics_ratio\": %.3f, "
                   "\"trace_ratio\": %.3f}%s\n",
                   R.Name.c_str(), R.offUs(), R.LegUs[Metrics],
                   R.LegUs[Trace], R.disabledRatio(), R.metricsRatio(),
                   R.traceRatio(), I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(F,
                 "  ],\n"
                 "  \"geomean_disabled_overhead\": %.3f,\n"
                 "  \"geomean_metrics_overhead\": %.3f,\n"
                 "  \"geomean_trace_overhead\": %.3f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 DisabledGeo, MetricsGeo, TraceGeo, Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Pass ? 0 : 1;
}
