//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 4: loop invariants identified by
/// LLVM's Algorithm 1 (low-level operand/alias/dominator reasoning) vs.
/// NOELLE's Algorithm 2 (PDG-powered), per benchmark, summed over every
/// loop. The property to reproduce: NOELLE finds at least as many
/// everywhere and strictly more in total.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "baselines/LLVMBaselines.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"

#include <cstdio>

using namespace noelle;

int main() {
  std::printf("Figure 4: loop invariants identified (summed over all "
              "loops)\n\n");
  std::vector<int> W = {16, 8, 8, 8};
  benchutil::printRow({"benchmark", "suite", "LLVM", "NOELLE"}, W);
  benchutil::printSeparator(W);

  uint64_t TotalLLVM = 0, TotalNoelle = 0;
  unsigned Violations = 0;
  for (const auto &B : bench::getBenchmarkSuite()) {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    Noelle N(*M);

    uint64_t NoelleCount = 0, LLVMCount = 0;
    nir::BasicAliasAnalysis BasicAA;
    for (LoopContent *LC : N.getLoopContents()) {
      NoelleCount += LC->getInvariantManager().getInvariants().size();
      nir::DominatorTree &DT =
          N.getDominators(*LC->getLoopStructure().getFunction());
      LLVMCount += baselines::findInvariantsLLVM(LC->getLoopStructure(), DT,
                                                 BasicAA)
                       .size();
    }
    benchutil::printRow({B.Name, B.Suite, std::to_string(LLVMCount),
                         std::to_string(NoelleCount)},
                        W);
    TotalLLVM += LLVMCount;
    TotalNoelle += NoelleCount;
    if (NoelleCount < LLVMCount)
      ++Violations;
  }
  benchutil::printSeparator(W);
  benchutil::printRow({"total", "", std::to_string(TotalLLVM),
                       std::to_string(TotalNoelle)},
                      W);
  std::printf("\nshape check: NOELLE >= LLVM on every benchmark: %s; "
              "NOELLE > LLVM in total: %s\n",
              Violations ? "NO" : "yes",
              TotalNoelle > TotalLLVM ? "yes" : "NO");
  return (Violations || TotalNoelle <= TotalLLVM) ? 1 : 0;
}
