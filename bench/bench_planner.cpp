//===----------------------------------------------------------------------===//
///
/// \file
/// Planner quality harness: for every benchmark-suite kernel, compares
/// the planner's one-shot strategy (technique + worker count per loop,
/// chosen from the cost model) against the best hand-picked
/// single-technique sweep (DOALL, HELIX, or DSWP forced everywhere at
/// the default worker count — the figure-5 columns). Times use the
/// instruction-level performance model (BenchUtils.h), the same
/// currency the cost model estimates in.
///
/// Writes BENCH_planner.json. With --smoke, asserts the planner's plan
/// is within 10% of the best hand-picked time on at least 18 of the
/// kernels, that every emitted plan passes the plan audit
/// (verify::checkPlan), and that every transformed binary still
/// computes the sequential result.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "verify/PlanCheck.h"
#include "xforms/ParallelizationTechnique.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace noelle;

namespace {

constexpr unsigned Cores = 4;

struct RunResult {
  uint64_t Time = 0;
  bool ResultMatches = true;
  unsigned Parallelized = 0;
};

/// Sequential reference: result + instruction count.
std::pair<int64_t, uint64_t> runBaseline(const bench::Benchmark &B) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  nir::ExecutionEngine E(*M);
  int64_t R = E.runMain();
  return {R, E.getInstructionsExecuted()};
}

/// Forced single-technique sweep at the default worker count — the
/// hand-picked column.
RunResult runForced(const bench::Benchmark &B, TechniqueKind K,
                    int64_t Expected) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  Noelle N(*M);
  auto T = createTechnique(K, N, Cores);
  RunResult Out;
  for (const auto &D : T->run())
    Out.Parallelized += D.Parallelized;
  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  Out.ResultMatches = E.runMain() == Expected;
  Out.Time = benchutil::simulatedTime(E);
  return Out;
}

/// The planner path: plan, audit, apply, run.
RunResult runPlanner(const bench::Benchmark &B, int64_t Expected,
                     bool &PlanClean, size_t &PlanEntries) {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  Noelle N(*M);
  planner::PlannerOptions PO;
  PO.MaxWorkers = Cores;
  planner::Planner P(N, PO);
  planner::ProgramPlan Plan = P.plan();
  PlanEntries = Plan.Entries.size();
  PlanClean = verify::checkPlan(*M, Plan).clean();
  RunResult Out;
  for (const auto &D : P.apply(Plan))
    Out.Parallelized += D.Parallelized;
  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  Out.ResultMatches = E.runMain() == Expected;
  Out.Time = benchutil::simulatedTime(E);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::printf("Planner vs best hand-picked technique "
              "(%u cores, instruction-level model)\n\n",
              Cores);
  std::vector<int> W = {16, 12, 12, 10, 10, 8};
  benchutil::printRow({"benchmark", "planner", "best-hand", "hand-tech",
                       "ratio", "audit"},
                      W);
  benchutil::printSeparator(W);

  unsigned Kernels = 0, Within10 = 0, AuditClean = 0;
  bool AnyWrong = false;
  std::string JSON = "{\n  \"kernels\": [\n";
  bool FirstRow = true;

  for (const auto &B : bench::getBenchmarkSuite()) {
    auto [Expected, BaselineInstrs] = runBaseline(B);
    (void)BaselineInstrs;

    RunResult BestHand;
    const char *BestName = "none";
    bool FirstHand = true;
    for (TechniqueKind K : {TechniqueKind::DOALL, TechniqueKind::HELIX,
                            TechniqueKind::DSWP}) {
      RunResult R = runForced(B, K, Expected);
      AnyWrong |= !R.ResultMatches;
      if (FirstHand || R.Time < BestHand.Time) {
        BestHand = R;
        BestName = techniqueName(K);
        FirstHand = false;
      }
    }

    bool PlanClean = false;
    size_t PlanEntries = 0;
    RunResult Plan = runPlanner(B, Expected, PlanClean, PlanEntries);
    AnyWrong |= !Plan.ResultMatches;

    double Ratio = BestHand.Time > 0
                       ? static_cast<double>(Plan.Time) /
                             static_cast<double>(BestHand.Time)
                       : 1.0;
    bool Ok = Ratio <= 1.10;
    ++Kernels;
    Within10 += Ok;
    AuditClean += PlanClean;

    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f%s", Ratio, Ok ? "" : " SLOW");
    benchutil::printRow({B.Name, std::to_string(Plan.Time),
                         std::to_string(BestHand.Time), BestName, Buf,
                         PlanClean ? "clean" : "DIRTY"},
                        W);

    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "%s    {\"kernel\": \"%s\", \"planner_time\": %llu, "
                  "\"best_hand_time\": %llu, \"best_hand_technique\": "
                  "\"%s\", \"ratio\": %.4f, \"plan_entries\": %zu, "
                  "\"plan_audit_clean\": %s, \"within_10pct\": %s}",
                  FirstRow ? "" : ",\n", B.Name.c_str(),
                  (unsigned long long)Plan.Time,
                  (unsigned long long)BestHand.Time, BestName, Ratio,
                  PlanEntries, PlanClean ? "true" : "false",
                  Ok ? "true" : "false");
    JSON += Row;
    FirstRow = false;
  }

  benchutil::printSeparator(W);
  std::printf("\n%u/%u kernels within 10%% of the best hand-picked "
              "technique; %u/%u plans audit clean\n",
              Within10, Kernels, AuditClean, Kernels);

  char Tail[160];
  std::snprintf(Tail, sizeof(Tail),
                "\n  ],\n  \"within_10pct\": %u,\n  \"kernel_count\": %u,\n"
                "  \"plans_audit_clean\": %u\n}\n",
                Within10, Kernels, AuditClean);
  JSON += Tail;
  if (FILE *F = std::fopen("BENCH_planner.json", "w")) {
    std::fputs(JSON.c_str(), F);
    std::fclose(F);
    std::printf("wrote BENCH_planner.json\n");
  }

  if (Smoke) {
    if (AnyWrong) {
      std::printf("SMOKE FAIL: a transformed binary computed a wrong "
                  "result\n");
      return 1;
    }
    if (AuditClean != Kernels) {
      std::printf("SMOKE FAIL: %u plan(s) failed the audit\n",
                  Kernels - AuditClean);
      return 1;
    }
    if (Within10 + 2 < Kernels) {
      std::printf("SMOKE FAIL: planner within 10%% on only %u/%u "
                  "kernels (need all but 2)\n",
                  Within10, Kernels);
      return 1;
    }
    std::printf("SMOKE PASS\n");
  }
  return 0;
}
