//===----------------------------------------------------------------------===//
///
/// \file
/// PDG construction benchmark over the 20-kernel suite: serial build vs
/// the parallel per-function build, and cold build vs loading the
/// IR-embedded dependence cache. Emits BENCH_pdg.json with per-kernel
/// timings plus a summary for the largest kernel, so later PRs have a
/// perf trajectory to regress against.
///
/// Besides the individual kernels, the suite is also linked into one
/// whole-program module (the paper's noelle-whole-IR workflow — the
/// form the embedded cache is designed for) and measured as the
/// "whole_suite" entry; being the largest program, it anchors the
/// cache-speedup acceptance check.
///
/// Note the evaluation host is single-core, so the parallel build's
/// wall-clock is the serial work plus coordination overhead (the
/// interesting number there is that it stays close to serial while the
/// graphs stay bit-identical — PDGCacheTest proves identity). The
/// embedded-cache speedup is core-count independent: loading skips the
/// Andersen solve and the O(n^2) alias queries entirely.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/Parser.h"
#include "tools/NoelleTools.h"

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace noelle;
using nir::Context;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelResult {
  std::string Name;
  uint64_t Instructions = 0;
  uint64_t Edges = 0;
  double SerialUs = 0;
  double ParallelUs = 0;
  double EmbedLoadUs = 0;
  double CacheSpeedupVsSerial = 0;
};

template <typename Fn> double bestOf(unsigned Repeats, Fn &&F) {
  double Best = 1e300;
  for (unsigned R = 0; R < Repeats; ++R) {
    double T0 = nowUs();
    F();
    Best = std::min(Best, nowUs() - T0);
  }
  return Best;
}

bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

/// Prefixes every identifier in a MiniC source with \p Prefix so the
/// suite kernels can be linked into one module without their @main and
/// global-array names colliding. Renaming locals too is harmless, so no
/// scope tracking is needed — only keywords, literals, and comments are
/// left alone.
std::string prefixIdentifiers(const std::string &Src,
                              const std::string &Prefix) {
  // Keywords plus the runtime builtins every kernel may call — those
  // resolve to shared declarations, so they must keep their names.
  static const std::set<std::string> Keywords = {
      "break",     "char",   "continue", "do",       "double",
      "else",      "extern", "for",      "if",       "int",
      "return",    "void",   "while",    "sqrt",     "exp",
      "log",       "sin",    "cos",      "pow",      "fabs",
      "floor",     "malloc", "free",     "print_char",
      "clock_ns",  "abort_if_false"};
  std::string Out;
  Out.reserve(Src.size() + Src.size() / 4);
  size_t I = 0, N = Src.size();
  while (I < N) {
    char C = Src[I];
    if (C == '/' && I + 1 < N && (Src[I + 1] == '/' || Src[I + 1] == '*')) {
      bool Line = Src[I + 1] == '/';
      size_t End = Line ? Src.find('\n', I) : Src.find("*/", I + 2);
      End = End == std::string::npos ? N : End + (Line ? 1 : 2);
      Out.append(Src, I, End - I);
      I = End;
    } else if (C == '"' || C == '\'') {
      size_t End = I + 1;
      while (End < N && Src[End] != C)
        End += Src[End] == '\\' ? 2 : 1;
      End = End < N ? End + 1 : N;
      Out.append(Src, I, End - I);
      I = End;
    } else if (isIdentChar(C) && !(C >= '0' && C <= '9')) {
      size_t End = I;
      while (End < N && isIdentChar(Src[End]))
        ++End;
      std::string Ident = Src.substr(I, End - I);
      if (!Keywords.count(Ident))
        Out += Prefix;
      Out += Ident;
      I = End;
    } else if (C >= '0' && C <= '9') {
      size_t End = I;
      while (End < N && (isIdentChar(Src[End]) || Src[End] == '.'))
        ++End;
      Out.append(Src, I, End - I);
      I = End;
    } else {
      Out += C;
      ++I;
    }
  }
  return Out;
}

} // namespace

int main() {
  constexpr unsigned Repeats = 5;
  std::vector<KernelResult> Results;

  std::printf("PDG construction: serial vs parallel build, cold vs "
              "embedded-cache load (best of %u)\n\n",
              Repeats);
  std::printf("%-14s %6s %6s %12s %12s %12s %9s\n", "kernel", "insts",
              "edges", "serial(us)", "parallel(us)", "cached(us)",
              "cache-x");

  auto measure = [&](const std::string &Name, nir::Module &M) {
    KernelResult R;
    R.Name = Name;
    R.Instructions = M.getNumInstructions();

    PDGBuildOptions Serial;
    Serial.ParallelBuild = false;
    Serial.UseEmbedded = false;
    R.SerialUs = bestOf(Repeats, [&] {
      PDGBuilder Builder(M, Serial);
      R.Edges = Builder.getPDG().getEdges().size();
    });

    PDGBuildOptions Parallel;
    Parallel.ParallelBuild = true;
    Parallel.UseEmbedded = false;
    R.ParallelUs = bestOf(Repeats, [&] {
      PDGBuilder Builder(M, Parallel);
      Builder.getPDG();
    });

    // Embed once, then measure the cache-hit path (hash check + edge
    // decode; no alias analysis, no pair queries).
    tools::pdgEmbed(M);
    R.EmbedLoadUs = bestOf(Repeats, [&] {
      PDGBuilder Builder(M);
      Builder.getPDG();
      if (!Builder.wasPDGLoadedFromEmbedded()) {
        std::fprintf(stderr, "%s: embedded cache unexpectedly missed\n",
                     Name.c_str());
        std::exit(1);
      }
    });
    R.CacheSpeedupVsSerial =
        R.EmbedLoadUs > 0 ? R.SerialUs / R.EmbedLoadUs : 0;

    std::printf("%-14s %6llu %6llu %12.1f %12.1f %12.1f %8.1fx\n",
                R.Name.c_str(),
                static_cast<unsigned long long>(R.Instructions),
                static_cast<unsigned long long>(R.Edges), R.SerialUs,
                R.ParallelUs, R.EmbedLoadUs, R.CacheSpeedupVsSerial);
    Results.push_back(R);
  };

  for (const auto &B : bench::getBenchmarkSuite()) {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    measure(B.Name, *M);
  }

  // The whole suite linked as one program (noelle-whole-IR), each
  // kernel's symbols prefixed to avoid collisions. This is the module
  // the paper's pipeline embeds the PDG into, and the largest program
  // measured here.
  {
    Context Ctx;
    std::vector<std::string> Sources;
    for (const auto &B : bench::getBenchmarkSuite())
      Sources.push_back(
          prefixIdentifiers(B.Source, "k" + std::to_string(Sources.size()) +
                                          "_"));
    std::string Error;
    auto M = tools::wholeIR(Ctx, Sources, Error);
    if (!M) {
      std::fprintf(stderr, "whole-suite link failed: %s\n", Error.c_str());
      return 1;
    }
    measure("whole_suite", *M);
  }

  // Largest kernel (by instruction count) anchors the acceptance check:
  // embedded-cache load must beat the cold serial build by >= 5x.
  const KernelResult *Largest = &Results.front();
  for (const auto &R : Results)
    if (R.Instructions > Largest->Instructions)
      Largest = &R;

  bool Pass = Largest->CacheSpeedupVsSerial >= 5.0;
  std::printf("\nlargest kernel: %s (%llu instructions) — embedded load "
              "%.1fx faster than cold serial build: %s\n",
              Largest->Name.c_str(),
              static_cast<unsigned long long>(Largest->Instructions),
              Largest->CacheSpeedupVsSerial, Pass ? "pass (>=5x)" : "FAIL");

  if (FILE *F = std::fopen("BENCH_pdg.json", "w")) {
    std::fprintf(F, "{\n  \"kernels\": [\n");
    for (size_t I = 0; I < Results.size(); ++I) {
      const auto &R = Results[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"instructions\": %llu, "
                   "\"edges\": %llu, \"serial_us\": %.1f, "
                   "\"parallel_us\": %.1f, \"cached_load_us\": %.1f, "
                   "\"cache_speedup_vs_serial\": %.2f}%s\n",
                   R.Name.c_str(),
                   static_cast<unsigned long long>(R.Instructions),
                   static_cast<unsigned long long>(R.Edges), R.SerialUs,
                   R.ParallelUs, R.EmbedLoadUs, R.CacheSpeedupVsSerial,
                   I + 1 == Results.size() ? "" : ",");
    }
    std::fprintf(F,
                 "  ],\n"
                 "  \"largest_kernel\": \"%s\",\n"
                 "  \"largest_kernel_cache_speedup\": %.2f,\n"
                 "  \"largest_kernel_pass_5x\": %s\n"
                 "}\n",
                 Largest->Name.c_str(), Largest->CacheSpeedupVsSerial,
                 Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote BENCH_pdg.json\n");
  }
  return Pass ? 0 : 1;
}
