//===----------------------------------------------------------------------===//
///
/// \file
/// Race-detector precision harness: for every benchmark-suite kernel
/// under each parallelizing transform, runs the static race detector
/// twice — once with the flow-sensitive happens-before engine (all
/// discharge rules) and once in legacy mode (the single-rule
/// queue-happens-before detector it replaced) — and records how many
/// access pairs each mode had to hand to the Andersen points-to
/// fallback, which rule discharged each of the rest, and the detector's
/// wall time.
///
/// Two measurement legs per configuration:
///   - grounded: the full noelle-check path (pre-transform PDG summary
///     available), the mode users actually run;
///   - structural: detectRaces without the PDG summary, isolating the
///     ordering rules' own precision — every discharge must come from
///     happens-before or structural reasoning, not prior dependence
///     facts.
///
/// Writes BENCH_races.json. With --smoke, asserts every grounded run is
/// race-clean in both modes, that the engine never sends more pairs to
/// the fallback than legacy on any configuration, and that in total it
/// sends strictly fewer.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"
#include "verify/NoelleCheck.h"
#include "verify/RaceDetector.h"
#include "verify/TaskModel.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace noelle;

namespace {

struct ModeResult {
  verify::RaceRuleStats Stats;
  unsigned Races = 0;
  double Millis = 0;
};

struct ConfigResult {
  std::string Transform;
  unsigned Parallelized = 0;
  ModeResult GroundedHB, GroundedLegacy;
  ModeResult StructHB, StructLegacy;
};

/// Compile + transform one kernel. The returned module is only valid
/// while the context lives, so both come back together.
struct TransformedModule {
  std::unique_ptr<nir::Context> Ctx;
  std::unique_ptr<nir::Module> M;
  verify::PreTransformSnapshot Snap;
  unsigned Parallelized = 0;
};

TransformedModule transformKernel(const bench::Benchmark &B,
                                  const std::string &Which) {
  TransformedModule T;
  T.Ctx = std::make_unique<nir::Context>();
  T.M = minic::compileMiniCOrDie(*T.Ctx, B.Source);
  T.Snap = verify::captureForCheck(*T.M);
  Noelle N(*T.M);
  if (Which == "doall") {
    DOALL Tool(N);
    for (const auto &D : Tool.run())
      T.Parallelized += D.Parallelized;
  } else if (Which == "helix") {
    HELIXOptions O;
    O.MinimumEstimatedSpeedup = 0;
    HELIX Tool(N, O);
    for (const auto &D : Tool.run())
      T.Parallelized += D.Parallelized;
  } else {
    DSWPOptions O;
    O.MinimumStageWeight = 0;
    DSWP Tool(N, O);
    for (const auto &D : Tool.run())
      T.Parallelized += D.Parallelized;
  }
  return T;
}

/// Grounded leg: the full checkModule path with the PDG summary.
ModeResult runGrounded(TransformedModule &T,
                       verify::RaceDetectorOptions Opts) {
  ModeResult R;
  verify::CheckOptions CO;
  CO.RunVerifier = false;
  CO.RunLegality = false;
  CO.Races = Opts;
  CO.Races.Stats = &R.Stats;
  auto Start = std::chrono::steady_clock::now();
  verify::CheckReport Rep = verify::checkModule(*T.M, T.Snap, CO);
  auto End = std::chrono::steady_clock::now();
  R.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  R.Races = Rep.count(verify::DiagKind::DataRace);
  return R;
}

/// Structural leg: the detector alone, no PDG summary, so every
/// discharge is the ordering/structural rules' own work.
ModeResult runStructural(TransformedModule &T,
                         verify::RaceDetectorOptions Opts) {
  ModeResult R;
  Opts.Stats = &R.Stats;
  verify::CheckReport Discover;
  std::vector<verify::ParallelRegion> Regions =
      verify::discoverRegions(*T.M, Discover);
  auto Start = std::chrono::steady_clock::now();
  verify::CheckReport Rep;
  verify::detectRaces(*T.M, Regions, Rep, nullptr, Opts);
  auto End = std::chrono::steady_clock::now();
  R.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  R.Races = Rep.count(verify::DiagKind::DataRace);
  return R;
}

std::string dischargedJSON(const verify::RaceRuleStats &S) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Rule, N] : S.Discharged) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %llu", First ? "" : ", ",
                  Rule.c_str(), (unsigned long long)N);
    Out += Buf;
    First = false;
  }
  return Out + "}";
}

std::string modeJSON(const ModeResult &R) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"pairs\": %llu, \"andersen_fallback\": %llu, "
                "\"races\": %u, \"detector_ms\": %.3f, \"discharged\": ",
                (unsigned long long)R.Stats.PairsChecked,
                (unsigned long long)R.Stats.AndersenFallback, R.Races,
                R.Millis);
  return std::string(Buf) + dischargedJSON(R.Stats) + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::printf("Race detector: happens-before engine vs legacy "
              "single-rule detector\n\n");
  std::vector<int> W = {16, 7, 7, 9, 9, 11, 11, 9};
  benchutil::printRow({"benchmark", "xform", "pairs", "hb-fall",
                       "leg-fall", "hb-struct", "leg-struct", "ms"},
                      W);
  benchutil::printSeparator(W);

  uint64_t GroundedHBFall = 0, GroundedLegacyFall = 0;
  uint64_t StructHBFall = 0, StructLegacyFall = 0;
  unsigned GroundedDirty = 0, PairMismatch = 0, PerConfigRegressed = 0;
  verify::RaceRuleStats TotalDischarged;

  std::string JSON = "{\n  \"configurations\": [\n";
  bool FirstRow = true;

  for (const auto &B : bench::getBenchmarkSuite()) {
    for (const char *Which : {"doall", "helix", "dswp"}) {
      ConfigResult C;
      C.Transform = Which;
      {
        TransformedModule T = transformKernel(B, Which);
        C.Parallelized = T.Parallelized;
        C.GroundedHB = runGrounded(T, verify::RaceDetectorOptions{});
        C.GroundedLegacy =
            runGrounded(T, verify::RaceDetectorOptions::legacy());
        C.StructHB = runStructural(T, verify::RaceDetectorOptions{});
        C.StructLegacy =
            runStructural(T, verify::RaceDetectorOptions::legacy());
      }

      GroundedHBFall += C.GroundedHB.Stats.AndersenFallback;
      GroundedLegacyFall += C.GroundedLegacy.Stats.AndersenFallback;
      StructHBFall += C.StructHB.Stats.AndersenFallback;
      StructLegacyFall += C.StructLegacy.Stats.AndersenFallback;
      GroundedDirty += C.GroundedHB.Races + C.GroundedLegacy.Races;
      PairMismatch += C.GroundedHB.Stats.PairsChecked !=
                      C.GroundedLegacy.Stats.PairsChecked;
      PerConfigRegressed += C.GroundedHB.Stats.AndersenFallback >
                                C.GroundedLegacy.Stats.AndersenFallback ||
                            C.StructHB.Stats.AndersenFallback >
                                C.StructLegacy.Stats.AndersenFallback;
      TotalDischarged.merge(C.GroundedHB.Stats);

      char Ms[32];
      std::snprintf(Ms, sizeof(Ms), "%.2f", C.GroundedHB.Millis);
      benchutil::printRow(
          {B.Name, Which,
           std::to_string(C.GroundedHB.Stats.PairsChecked),
           std::to_string(C.GroundedHB.Stats.AndersenFallback),
           std::to_string(C.GroundedLegacy.Stats.AndersenFallback),
           std::to_string(C.StructHB.Stats.AndersenFallback),
           std::to_string(C.StructLegacy.Stats.AndersenFallback), Ms},
          W);

      char Head[256];
      std::snprintf(Head, sizeof(Head),
                    "%s    {\"kernel\": \"%s\", \"transform\": \"%s\", "
                    "\"parallelized\": %u,\n",
                    FirstRow ? "" : ",\n", B.Name.c_str(), Which,
                    C.Parallelized);
      JSON += Head;
      JSON += "     \"grounded_hb\": " + modeJSON(C.GroundedHB) + ",\n";
      JSON +=
          "     \"grounded_legacy\": " + modeJSON(C.GroundedLegacy) +
          ",\n";
      JSON += "     \"structural_hb\": " + modeJSON(C.StructHB) + ",\n";
      JSON += "     \"structural_legacy\": " + modeJSON(C.StructLegacy) +
              "}";
      FirstRow = false;
    }
  }

  benchutil::printSeparator(W);
  std::printf("\nAndersen fallback totals: grounded %llu (hb) vs %llu "
              "(legacy); structural %llu (hb) vs %llu (legacy)\n",
              (unsigned long long)GroundedHBFall,
              (unsigned long long)GroundedLegacyFall,
              (unsigned long long)StructHBFall,
              (unsigned long long)StructLegacyFall);
  std::printf("engine discharge profile (grounded):");
  for (const auto &[Rule, N] : TotalDischarged.Discharged)
    std::printf(" %s=%llu", Rule.c_str(), (unsigned long long)N);
  std::printf("\n");

  char Tail[512];
  std::snprintf(
      Tail, sizeof(Tail),
      "\n  ],\n  \"grounded_fallback_hb\": %llu,\n"
      "  \"grounded_fallback_legacy\": %llu,\n"
      "  \"structural_fallback_hb\": %llu,\n"
      "  \"structural_fallback_legacy\": %llu,\n"
      "  \"grounded_race_reports\": %u\n}\n",
      (unsigned long long)GroundedHBFall,
      (unsigned long long)GroundedLegacyFall,
      (unsigned long long)StructHBFall,
      (unsigned long long)StructLegacyFall, GroundedDirty);
  JSON += Tail;
  if (FILE *F = std::fopen("BENCH_races.json", "w")) {
    std::fputs(JSON.c_str(), F);
    std::fclose(F);
    std::printf("wrote BENCH_races.json\n");
  }

  if (Smoke) {
    if (GroundedDirty) {
      std::printf("SMOKE FAIL: %u race report(s) on suite kernels\n",
                  GroundedDirty);
      return 1;
    }
    if (PairMismatch) {
      std::printf("SMOKE FAIL: %u configuration(s) checked a different "
                  "pair population per mode\n",
                  PairMismatch);
      return 1;
    }
    if (PerConfigRegressed) {
      std::printf("SMOKE FAIL: %u configuration(s) where the engine "
                  "fell back more often than legacy\n",
                  PerConfigRegressed);
      return 1;
    }
    // The headline criterion: strictly fewer pairs decided by the
    // points-to fallback. The structural leg is where ordering
    // precision must show up (no PDG facts to hide behind); grounded
    // must at least not regress, and counts as strict progress too.
    bool Strict = StructHBFall < StructLegacyFall ||
                  GroundedHBFall < GroundedLegacyFall;
    if (!Strict) {
      std::printf("SMOKE FAIL: engine did not strictly reduce the "
                  "Andersen fallback (grounded %llu vs %llu, structural "
                  "%llu vs %llu)\n",
                  (unsigned long long)GroundedHBFall,
                  (unsigned long long)GroundedLegacyFall,
                  (unsigned long long)StructHBFall,
                  (unsigned long long)StructLegacyFall);
      return 1;
    }
    std::printf("SMOKE PASS\n");
  }
  return 0;
}
