//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates §4.4's SPEC observation: on the loop-carried-heavy
/// SPEC-like kernels, only NOELLE-based tools obtain (small, 1-5%)
/// speedups while gcc/icc get none — and nothing breaks, demonstrating
/// the abstractions' robustness. Speculation (outside NOELLE) would be
/// needed for more.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "baselines/ConservativeParallelizer.h"
#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/DOALL.h"
#include "xforms/HELIX.h"

#include <cstdio>

using namespace noelle;

int main() {
  constexpr unsigned Cores = 4;
  std::printf("Section 4.4: SPEC-like robustness (expect small NOELLE "
              "gains, none for gcc/icc, no breakage)\n\n");
  std::vector<int> W = {12, 10, 10, 10, 12};
  benchutil::printRow({"benchmark", "gcc", "DOALL", "HELIX", "correct?"}, W);
  benchutil::printSeparator(W);

  bool AnyWrong = false;
  for (const auto *B : bench::getSuite("SPEC")) {
    int64_t Expected;
    uint64_t BaselineInstrs;
    {
      nir::Context Ctx;
      auto M = minic::compileMiniCOrDie(Ctx, B->Source);
      nir::ExecutionEngine E(*M);
      Expected = E.runMain();
      BaselineInstrs = E.getInstructionsExecuted();
    }

    auto Measure = [&](auto Transform) {
      nir::Context Ctx;
      auto M = minic::compileMiniCOrDie(Ctx, B->Source);
      Transform(*M);
      nir::ExecutionEngine E(*M);
      registerParallelRuntime(E);
      int64_t R = E.runMain();
      double S = static_cast<double>(BaselineInstrs) /
                 static_cast<double>(benchutil::simulatedTime(E));
      return std::make_pair(S, R == Expected);
    };

    auto [GccS, GccOK] = Measure([&](nir::Module &M) {
      baselines::ConservativeOptions O;
      O.NumCores = Cores;
      baselines::ConservativeParallelizer T(M, O);
      T.run();
    });
    auto [DoallS, DoallOK] = Measure([&](nir::Module &M) {
      Noelle N(M);
      DOALLOptions O;
      O.NumCores = Cores;
      DOALL T(N, O);
      T.run();
    });
    auto [HelixS, HelixOK] = Measure([&](nir::Module &M) {
      Noelle N(M);
      HELIXOptions O;
      O.NumCores = Cores;
      HELIX T(N, O);
      T.run();
    });

    bool OK = GccOK && DoallOK && HelixOK;
    AnyWrong |= !OK;
    char B1[16], B2[16], B3[16];
    std::snprintf(B1, sizeof(B1), "%.3fx", GccS);
    std::snprintf(B2, sizeof(B2), "%.3fx", DoallS);
    std::snprintf(B3, sizeof(B3), "%.3fx", HelixS);
    benchutil::printRow({B->Name, B1, B2, B3, OK ? "yes" : "NO"}, W);
  }
  benchutil::printSeparator(W);
  std::printf("\nshape check: every SPEC-like kernel still computes the "
              "right result: %s\n",
              AnyWrong ? "NO" : "yes");
  return AnyWrong ? 1 : 0;
}
