//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 2: NOELLE's tools and their LoC. The
/// tool layer here is a library (tools/NoelleTools.*) whose functions
/// correspond 1:1 to the paper's command-line tools; per-tool LoC is
/// attributed by the sections of that library plus the subsystems each
/// tool drives.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>

using benchutil::countLoC;

int main() {
  // Whole tool-layer size, then the per-tool attribution.
  uint64_t ToolLayer = countLoC("src/tools");
  uint64_t Frontend = countLoC("src/frontend");
  uint64_t Linker = countLoC("src/ir", "Linker");
  uint64_t Profiler = countLoC("src/noelle", "Profiler");
  uint64_t Interp = countLoC("src/interp");

  struct Row {
    const char *Tool;
    const char *Description;
    uint64_t LoC;
    uint64_t PaperLoC;
  };
  std::vector<Row> Rows = {
      {"noelle-whole-IR",
       "single IR file from sources + embedded options (frontend + linker)",
       Frontend + Linker, 1522},
      {"noelle-rm-lc-dependences",
       "remove loop-carried data dependences from hot loops", 0, 0},
      {"noelle-prof-coverage", "inject/run IR profilers", Profiler, 1761},
      {"noelle-meta-prof-embed", "embed profiles into the IR", 0, 152},
      {"noelle-meta-pdg-embed", "compute and embed the PDG", 0, 451},
      {"noelle-load", "load the NOELLE layer in memory", 0, 12},
      {"noelle-arch", "describe/measure the architecture", 0, 259},
      {"noelle-linker", "link IR files preserving NOELLE metadata", Linker,
       59},
      {"noelle-bin", "standalone binary from IR (execution engine)", Interp,
       15},
  };

  std::printf("Table 2: NOELLE's tools (this reproduction vs. paper LoC)\n");
  std::printf("(0 = implemented inside tools/NoelleTools.cpp, counted once "
              "in the shared row)\n\n");
  std::vector<int> W = {26, 62, 8, 10};
  benchutil::printRow({"Tool", "Description", "LoC", "Paper LoC"}, W);
  benchutil::printSeparator(W);
  for (const auto &R : Rows)
    benchutil::printRow({R.Tool, R.Description, std::to_string(R.LoC),
                         R.PaperLoC ? std::to_string(R.PaperLoC) : "-"},
                        W);
  benchutil::printSeparator(W);
  benchutil::printRow({"(shared)", "tools/NoelleTools.{h,cpp} driver layer",
                       std::to_string(ToolLayer), "5143 total"},
                      W);
  return 0;
}
