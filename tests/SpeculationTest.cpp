//===----------------------------------------------------------------------===//
///
/// \file
/// spec-suite: the profile-guided speculative DOALL pipeline end to end.
/// Covers the memory-dependence profiler (manifested-dependence
/// recording, iteration-boundary precision, wire round-trip, content-hash
/// binding), the SpecDOALL transform with the write-log/commit runtime
/// (commit path and seeded-misspeculation rollback), the planner's
/// speculative enumeration over a real suite kernel, and the
/// `noelle-check --speculative` audits — including that each audit
/// catches a deliberately seeded violation. Registered under the ctest
/// label "spec-suite".
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "ir/IRBuilder.h"
#include "noelle/MemDepProfiler.h"
#include "noelle/Noelle.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "telemetry/Telemetry.h"
#include "verify/CheckMetadata.h"
#include "verify/NoelleCheck.h"
#include "verify/PlanCheck.h"
#include "xforms/SpecDOALL.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

uint64_t idOf(const nir::Value *V) {
  std::string S = V->getMetadata(nir::InstIDKey);
  uint64_t N = 0;
  for (char C : S)
    N = N * 10 + static_cast<uint64_t>(C - '0');
  return S.empty() ? 0 : N;
}

/// Header IDs (first instruction of each loop header) of every natural
/// loop in \p M, sorted ascending — deterministic IDs follow program
/// order, so source order is recoverable from the sort.
std::vector<uint64_t> sortedLoopHeaderIDs(nir::Module &M) {
  std::vector<uint64_t> IDs;
  Noelle N(M);
  for (LoopContent *LC : N.getLoopContents()) {
    auto &Insts = LC->getLoopStructure().getHeader()->getInstList();
    if (!Insts.empty())
      IDs.push_back(idOf(Insts.front().get()));
  }
  std::sort(IDs.begin(), IDs.end());
  return IDs;
}

// ---------------------------------------------------------------------------
// Memory-dependence profiler.
// ---------------------------------------------------------------------------

/// Three loops: a disjoint store map (no carried dependence), a true
/// recurrence (carried RAW through a[]), and an intra-iteration
/// read-modify-write of c[] that also consumes loop 1's output b[].
/// Only the middle loop may appear in the manifested-dependence set:
/// loop 3's load of b[i] hits bytes last written *before* its invocation
/// began, and its c[i] accesses pair up within one iteration — both were
/// phantom "carried" dependences under the old off-by-one iteration
/// window, which this test pins down.
const char *ProfilerSrc = R"(
  int a[64];
  int b[64];
  int c[64];
  int main() {
    for (int i = 0; i < 64; i = i + 1) b[i] = i * 2;
    for (int i = 1; i < 64; i = i + 1) a[i] = a[i-1] + 1;
    for (int i = 0; i < 64; i = i + 1) c[i] = c[i] + b[i];
    return a[63] + c[63];
  }
)";

TEST(MemDepProfilerTest, RecordsOnlyTrueCarriedDependences) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ProfilerSrc);
  nir::assignDeterministicIDs(*M);

  MemDepProfile P = profileMemDeps(*M);
  std::vector<uint64_t> Headers = sortedLoopHeaderIDs(*M);
  ASSERT_EQ(Headers.size(), 3u);

  for (uint64_t H : Headers) {
    EXPECT_TRUE(P.coversLoop(H)) << "loop " << H << " not observed";
    EXPECT_EQ(P.loopInvocations(H), 1u);
    EXPECT_GT(P.loopIterations(H), 0u);
  }

  // Every manifested dependence belongs to the recurrence loop (source
  // order: the middle header), and all of them are RAW.
  ASSERT_FALSE(P.deps().empty()) << "recurrence loop recorded no deps";
  for (const ManifestedDep &D : P.deps()) {
    EXPECT_EQ(D.HeaderID, Headers[1])
        << "phantom carried dependence on loop " << D.HeaderID;
    EXPECT_EQ(D.K, ManifestedDep::RAW);
  }
  EXPECT_TRUE(P.manifested(Headers[1], P.deps().begin()->SrcID,
                           P.deps().begin()->DstID));
}

TEST(MemDepProfilerTest, SerializationRoundTripsByteIdentically) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ProfilerSrc);
  nir::assignDeterministicIDs(*M);
  MemDepProfile P = profileMemDeps(*M);

  std::string Text = P.serialize();
  MemDepProfile Q;
  std::string Err;
  ASSERT_TRUE(MemDepProfile::deserialize(Text, Q, Err)) << Err;
  EXPECT_EQ(Q.serialize(), Text);
  EXPECT_EQ(Q.deps().size(), P.deps().size());
}

TEST(MemDepProfilerTest, EmbeddedProfileBindsToContentHash) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ProfilerSrc);
  nir::assignDeterministicIDs(*M);
  profileMemDeps(*M).embed(*M);
  ASSERT_TRUE(MemDepProfile::isEmbedded(*M));

  MemDepProfile P;
  std::string Err;
  EXPECT_TRUE(MemDepProfile::fromModule(*M, P, Err)) << Err;

  // Change the module's content (an initializer participates in the
  // hash): the strict load must refuse the now-stale binding, while the
  // lenient load — for callers whose outer protocol pins staleness —
  // still parses it.
  M->getGlobal("a")->setInitWords({7});
  MemDepProfile Stale;
  EXPECT_FALSE(MemDepProfile::fromModule(*M, Stale, Err));
  EXPECT_TRUE(MemDepProfile::fromModule(*M, Stale, Err,
                                        /*RequireHashMatch=*/false))
      << Err;
}

// ---------------------------------------------------------------------------
// SpecDOALL end to end: commit path and seeded misspeculation.
// ---------------------------------------------------------------------------

/// The seeded kernel. With mode == 0 (the profiled configuration) every
/// inner iteration touches its own data[idx]; the loop-carried PDG edges
/// on data[] never manifest, so the loop speculates. Flipping mode to 1
/// *after* the transform funnels every iteration through data[0] — the
/// profiled-absent dependence manifests, the write-log validation must
/// detect the conflict, and the dispatch must roll back to the
/// sequential clone with a byte-identical result.
const char *SeededSrc = R"(
  int mode;
  int data[2048];
  int main() {
    int total = 0;
    for (int r = 0; r < 8; r = r + 1) {
      for (int i = 0; i < 2048; i = i + 1) {
        int idx = i;
        if (mode > 0) idx = 0;
        data[idx] = data[idx] + i + r;
      }
      total = total + data[r];
    }
    print_i64(total);
    return total % 100007;
  }
)";

struct SeqResult {
  int64_t Ret = 0;
  std::string Out;
};

/// Sequential ground truth for the seeded kernel at a given mode value.
SeqResult runSeededSequential(int64_t Mode) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, SeededSrc);
  M->getGlobal("mode")->setInitWords({Mode});
  ExecutionEngine E(*M);
  SeqResult R;
  R.Ret = E.runMain();
  R.Out = E.getOutput();
  return R;
}

struct SpecModule {
  std::unique_ptr<nir::Module> M;
  verify::PreTransformSnapshot Snap;
  unsigned SpecLoops = 0;
};

/// Profile (mode = 0), snapshot, and force-transform the seeded kernel
/// with SpecDOALL. The caller owns mode's initializer from here on.
SpecModule buildSeededSpec(Context &Ctx) {
  SpecModule R;
  R.M = minic::compileMiniCOrDie(Ctx, SeededSrc);
  profileMemDeps(*R.M).embed(*R.M);
  R.Snap = verify::captureForCheck(*R.M);
  Noelle N(*R.M);
  SpecDOALL Tool(N);
  for (const auto &D : Tool.run())
    if (D.Parallelized && D.Kind == TechniqueKind::SpecDOALL)
      ++R.SpecLoops;
  return R;
}

struct SpecRun {
  int64_t Ret = 0;
  std::string Out;
  uint64_t Commits = 0;
  uint64_t Misspecs = 0;
};

SpecRun runWithTelemetry(nir::Module &M) {
  telemetry::setMode(telemetry::Mode::Metrics);
  telemetry::resetMetrics();
  ExecutionEngine E(M);
  registerParallelRuntime(E);
  SpecRun R;
  R.Ret = E.runMain();
  R.Out = E.getOutput();
  auto Snap = telemetry::snapshotMetrics();
  R.Commits = Snap.counter(telemetry::Counter::SpecCommits);
  R.Misspecs = Snap.counter(telemetry::Counter::SpecMisspeculations);
  telemetry::setMode(telemetry::Mode::Off);
  return R;
}

TEST(SpeculationTest, CommitsAndMatchesSequentialWhenProfileHolds) {
  SeqResult Seq = runSeededSequential(0);

  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u) << "seeded kernel did not speculate";

  // The transformed module passes the full audit, speculation machinery
  // included.
  verify::CheckOptions CO;
  CO.Speculative = true;
  verify::CheckReport Rep = verify::checkModule(*S.M, S.Snap, CO);
  EXPECT_TRUE(Rep.clean()) << Rep.str();

  SpecRun R = runWithTelemetry(*S.M);
  EXPECT_EQ(R.Ret, Seq.Ret);
  EXPECT_EQ(R.Out, Seq.Out);
  EXPECT_GT(R.Commits, 0u);
  EXPECT_EQ(R.Misspecs, 0u)
      << "profiled-clean input must not misspeculate";
}

TEST(SpeculationTest, SeededMisspeculationDetectsAndRollsBack) {
  SeqResult Seq = runSeededSequential(1);

  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u);

  // Flip the input *after* the transform: the dependence the profile
  // never saw now manifests on every invocation.
  S.M->getGlobal("mode")->setInitWords({1});

  SpecRun R = runWithTelemetry(*S.M);
  EXPECT_GT(R.Misspecs, 0u)
      << "conflicting writes must fail write-log validation";
  EXPECT_EQ(R.Ret, Seq.Ret)
      << "rollback must reproduce the sequential result";
  EXPECT_EQ(R.Out, Seq.Out)
      << "rollback must reproduce the sequential output byte for byte";
}

// ---------------------------------------------------------------------------
// Planner integration over a real suite kernel.
// ---------------------------------------------------------------------------

TEST(SpeculationTest, PlannerSpeculatesX264AndPreservesResult) {
  const bench::Benchmark *B = bench::findBenchmark("x264");
  ASSERT_NE(B, nullptr);

  SeqResult Seq;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B->Source);
    ExecutionEngine E(*M);
    Seq.Ret = E.runMain();
    Seq.Out = E.getOutput();
  }

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  nir::assignDeterministicIDs(*M);
  profileMemDeps(*M).embed(*M);

  Noelle N(*M);
  planner::PlannerOptions PO;
  PO.MaxWorkers = 4;
  PO.EnableSpeculation = true;
  planner::Planner P(N, PO);
  planner::ProgramPlan Plan = P.plan();

  unsigned Spec = 0;
  for (const auto &En : Plan.Entries)
    if (En.Kind == TechniqueKind::SpecDOALL)
      ++Spec;
  EXPECT_GE(Spec, 1u)
      << "the planner found no speculative candidate on x264:\n"
      << Plan.serialize();

  // Speculative entries (misspec probability, premises) survive the
  // wire format.
  planner::ProgramPlan RT;
  std::string Err;
  ASSERT_TRUE(planner::ProgramPlan::deserialize(Plan.serialize(), RT, Err))
      << Err;
  EXPECT_TRUE(RT == Plan);
  EXPECT_EQ(RT.serialize(), Plan.serialize());

  // The plan audits clean before touching the module.
  verify::CheckReport PlanRep = verify::checkPlan(*M, Plan);
  EXPECT_TRUE(PlanRep.clean()) << PlanRep.str();

  // Every entry applies — speculative ones included.
  for (const auto &D : P.apply(Plan))
    EXPECT_TRUE(D.Parallelized)
        << D.FunctionName << " loop " << D.LoopID << ": " << D.Reason;

  SpecRun R = runWithTelemetry(*M);
  EXPECT_EQ(R.Ret, Seq.Ret);
  EXPECT_EQ(R.Out, Seq.Out);
  EXPECT_GT(R.Commits, 0u) << "no speculative dispatch committed";
  EXPECT_EQ(R.Misspecs, 0u)
      << "x264 on its profiled input must not misspeculate";
}

// ---------------------------------------------------------------------------
// The --speculative audits each catch a seeded violation.
// ---------------------------------------------------------------------------

nir::Function *findSpecTask(nir::Module &M) {
  for (const auto &F : M.getFunctions())
    if (F->getMetadata(verify::TaskKindKey) == "doall-spec")
      return F.get();
  return nullptr;
}

verify::CheckReport speculativeAudit(SpecModule &S) {
  verify::CheckOptions CO;
  CO.RunVerifier = false; // the seeded corruptions target the spec audit
  CO.RunRaces = false;
  CO.Speculative = true;
  return verify::checkModule(*S.M, S.Snap, CO);
}

TEST(SpecCheckTest, CatchesUnjournaledAccess) {
  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u);
  nir::Function *Task = findSpecTask(*S.M);
  ASSERT_NE(Task, nullptr);

  // Seed a raw store into the instrumented task: it bypasses the write
  // log, so commit-time validation can neither see nor undo it.
  nir::BasicBlock *Entry = Task->getBlocks().front().get();
  ASSERT_FALSE(Entry->getInstList().empty());
  nir::IRBuilder B(Ctx, Entry);
  B.setInsertPoint(Entry->getInstList().front().get());
  B.createStore(Ctx.getInt64(7), S.M->getGlobal("data"));

  verify::CheckReport Rep = speculativeAudit(S);
  EXPECT_GE(Rep.count(verify::DiagKind::SpecUnjournaledAccess), 1u)
      << Rep.str();
}

TEST(SpecCheckTest, CatchesBrokenRecoveryPath) {
  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u);
  nir::Function *Task = findSpecTask(*S.M);
  ASSERT_NE(Task, nullptr);

  // Point the rollback link at a function that does not exist.
  Task->setMetadata(verify::TaskSpecSeqKey, "no_such_fallback");

  verify::CheckReport Rep = speculativeAudit(S);
  EXPECT_GE(Rep.count(verify::DiagKind::SpecRecoveryMissing), 1u)
      << Rep.str();
}

TEST(SpecCheckTest, CatchesFabricatedPremise) {
  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u);
  nir::Function *Task = findSpecTask(*S.M);
  ASSERT_NE(Task, nullptr);

  // Replace the recorded premises with a pair that names no loop-carried
  // memory dependence of the snapshot PDG.
  Task->setMetadata(verify::TaskSpecPremisesKey, "1:2");

  verify::CheckReport Rep = speculativeAudit(S);
  EXPECT_GE(Rep.count(verify::DiagKind::SpecPremiseUnsupported), 1u)
      << Rep.str();
}

TEST(SpecCheckTest, CleanSpecModulePassesSpeculativeAudit) {
  Context Ctx;
  SpecModule S = buildSeededSpec(Ctx);
  ASSERT_GE(S.SpecLoops, 1u);
  verify::CheckReport Rep = speculativeAudit(S);
  EXPECT_TRUE(Rep.clean()) << Rep.str();
}

} // namespace
