//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the MiniC frontend: parsing, lowering, mem2reg, and
/// end-to-end execution through the interpreter.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"

#include "analysis/LoopInfo.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nir;

namespace {

int64_t runMain(const std::string &Src, std::string *Out = nullptr) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  int64_t R = E.runMain();
  if (Out)
    *Out = E.getOutput();
  return R;
}

TEST(MiniCTest, ReturnsConstant) {
  EXPECT_EQ(runMain("int main() { return 42; }"), 42);
}

TEST(MiniCTest, Arithmetic) {
  EXPECT_EQ(runMain("int main() { return (3 + 4) * 5 - 6 / 2; }"), 32);
  EXPECT_EQ(runMain("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(runMain("int main() { return (1 << 6) | 3; }"), 67);
  EXPECT_EQ(runMain("int main() { return -7 + 2; }"), -5);
}

TEST(MiniCTest, DoubleArithmetic) {
  EXPECT_EQ(runMain("int main() { double x = 1.5; double y = 2.5; "
                    "return (int)(x * y + 0.25); }"),
            4);
}

TEST(MiniCTest, Comparisons) {
  EXPECT_EQ(runMain("int main() { return (3 < 4) + (4 <= 4) + (5 > 6); }"),
            2);
  EXPECT_EQ(runMain("int main() { return 2.5 < 3.0; }"), 1);
}

TEST(MiniCTest, ShortCircuit) {
  // The right side of && must not execute when the left is false.
  const char *Src = R"(
    int g = 0;
    int touch() { g = 1; return 1; }
    int main() {
      int r = (0 && touch());
      return g * 10 + r;
    }
  )";
  EXPECT_EQ(runMain(Src), 0);
  const char *Src2 = R"(
    int g = 0;
    int touch() { g = 1; return 0; }
    int main() {
      int r = (1 || touch());
      return g * 10 + r;
    }
  )";
  EXPECT_EQ(runMain(Src2), 1);
}

TEST(MiniCTest, IfElse) {
  const char *Src = R"(
    int classify(int x) {
      if (x < 0) return -1;
      else if (x == 0) return 0;
      return 1;
    }
    int main() { return classify(-5) * 100 + classify(0) * 10 + classify(7); }
  )";
  EXPECT_EQ(runMain(Src), -100 + 0 + 1);
}

TEST(MiniCTest, WhileLoop) {
  EXPECT_EQ(runMain("int main() { int i = 0; int s = 0; "
                    "while (i < 10) { s = s + i; i = i + 1; } return s; }"),
            45);
}

TEST(MiniCTest, DoWhileLoop) {
  EXPECT_EQ(runMain("int main() { int i = 0; int s = 0; "
                    "do { s = s + i; i = i + 1; } while (i < 5); return s; }"),
            10);
}

TEST(MiniCTest, ForLoopWithBreakContinue) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s = s + i;   // 1+3+5+7+9 = 25
      }
      return s;
    }
  )";
  EXPECT_EQ(runMain(Src), 25);
}

TEST(MiniCTest, GlobalsAndArrays) {
  const char *Src = R"(
    int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int scale = 2;
    int main() {
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) s = s + data[i] * scale;
      return s;
    }
  )";
  EXPECT_EQ(runMain(Src), 72);
}

TEST(MiniCTest, LocalArrays) {
  const char *Src = R"(
    int main() {
      int a[16];
      for (int i = 0; i < 16; i = i + 1) a[i] = i * i;
      int s = 0;
      for (int i = 0; i < 16; i = i + 1) s = s + a[i];
      return s;   // sum of squares 0..15 = 1240
    }
  )";
  EXPECT_EQ(runMain(Src), 1240);
}

TEST(MiniCTest, PointersAndMalloc) {
  const char *Src = R"(
    int main() {
      int *p = malloc(10 * 8);
      for (int i = 0; i < 10; i = i + 1) p[i] = i + 1;
      int *q = p + 5;
      return *q + p[0];   // 6 + 1
    }
  )";
  EXPECT_EQ(runMain(Src), 7);
}

TEST(MiniCTest, AddressOf) {
  const char *Src = R"(
    void bump(int *x) { *x = *x + 1; }
    int main() {
      int v = 41;
      bump(&v);
      return v;
    }
  )";
  EXPECT_EQ(runMain(Src), 42);
}

TEST(MiniCTest, Recursion) {
  const char *Src = R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(15); }
  )";
  EXPECT_EQ(runMain(Src), 610);
}

TEST(MiniCTest, FunctionPointers) {
  const char *Src = R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
    int main() {
      int (*op)(int, int) = add;
      int r = apply(op, 3, 4);
      op = mul;
      return r * 10 + apply(op, 3, 4);
    }
  )";
  EXPECT_EQ(runMain(Src), 82);
}

TEST(MiniCTest, PrintOutput) {
  std::string Out;
  runMain("int main() { print_i64(7); print_f64(2.5); return 0; }", &Out);
  EXPECT_EQ(Out, "7\n2.500000\n");
}

TEST(MiniCTest, MathLibrary) {
  EXPECT_EQ(runMain("int main() { return (int)(sqrt(81.0) + 0.5); }"), 9);
  EXPECT_EQ(runMain("int main() { return (int)(pow(2.0, 10.0) + 0.5); }"),
            1024);
}

TEST(MiniCTest, CompoundAssignment) {
  EXPECT_EQ(runMain("int main() { int x = 10; x += 5; x -= 3; return x; }"),
            12);
}

TEST(MiniCTest, CharsAndStringsViaArrays) {
  const char *Src = R"(
    char buf[4];
    int main() {
      buf[0] = 'h'; buf[1] = 'i'; buf[2] = '\n'; buf[3] = 0;
      int i = 0;
      while (buf[i] != 0) { print_char(buf[i]); i = i + 1; }
      return i;
    }
  )";
  std::string Out;
  EXPECT_EQ(runMain(Src, &Out), 3);
  EXPECT_EQ(Out, "hi\n");
}

TEST(MiniCTest, NestedLoops) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1)
        for (int j = 0; j < 10; j = j + 1)
          s = s + i * j;
      return s;   // (0+..+9)^2 = 2025
    }
  )";
  EXPECT_EQ(runMain(Src), 2025);
}

TEST(MiniCTest, Mem2RegRemovesScalarAllocas) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  Function *Main = M->getFunction("main");
  unsigned NumAllocas = 0;
  for (auto &BB : Main->getBlocks())
    for (auto &I : BB->getInstList())
      if (isa<AllocaInst>(I.get()))
        ++NumAllocas;
  EXPECT_EQ(NumAllocas, 0u);
  EXPECT_TRUE(moduleVerifies(*M));
}

TEST(MiniCTest, Mem2RegKeepsSemantics) {
  // Compile with and without mem2reg; results must agree.
  const char *Src = R"(
    int collatz(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps = steps + 1;
      }
      return steps;
    }
    int main() { return collatz(27); }
  )";
  Context Ctx1, Ctx2;
  minic::CompileOptions NoM2R;
  NoM2R.RunMem2Reg = false;
  auto M1 = minic::compileMiniCOrDie(Ctx1, Src);
  auto M2 = minic::compileMiniCOrDie(Ctx2, Src, NoM2R);
  ExecutionEngine E1(*M1), E2(*M2);
  EXPECT_EQ(E1.runMain(), E2.runMain());
  EXPECT_EQ(E1.runMain(), 111);
}

TEST(MiniCTest, WhileLoopsKeepWhileShape) {
  // The frontend must emit while-style loops (header exits), since the
  // paper's IV comparison depends on loop shape.
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  Function *Main = M->getFunction("main");
  DominatorTree DT(*Main);
  LoopInfo LI(*Main, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  LoopStructure *L = LI.getTopLevelLoops()[0];
  EXPECT_TRUE(L->isWhileForm());
  EXPECT_FALSE(L->isDoWhileForm());
}

TEST(MiniCTest, DoWhileLoopsKeepDoWhileShape) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      int i = 0;
      do { s = s + i; i = i + 1; } while (i < 10);
      return s;
    }
  )");
  Function *Main = M->getFunction("main");
  DominatorTree DT(*Main);
  LoopInfo LI(*Main, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  EXPECT_TRUE(LI.getTopLevelLoops()[0]->isDoWhileForm());
}

TEST(MiniCTest, ParseErrors) {
  Context Ctx;
  std::string Error;
  EXPECT_EQ(minic::compileMiniC(Ctx, "int main( { return 0; }", Error),
            nullptr);
  EXPECT_FALSE(Error.empty());

  Error.clear();
  EXPECT_EQ(minic::compileMiniC(Ctx, "int main() { return x; }", Error),
            nullptr);
  EXPECT_NE(Error.find("unknown"), std::string::npos);
}

TEST(MiniCTest, GeneratedIRRoundTripsThroughParser) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int sum(int *p, int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + p[i];
      return s;
    }
    int main() {
      int a[4];
      a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
      return sum(a, 4);
    }
  )");
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), 10);
}

} // namespace
