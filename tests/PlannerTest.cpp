//===----------------------------------------------------------------------===//
///
/// \file
/// Planner tests: plan determinism, cost-model monotonicity, plan
/// serialization and embedding round trips, plan auditing
/// (verify::checkPlan) of seeded-bad and stale plans, one-shot
/// plan→apply semantic preservation, nested planning, and plan-epoch
/// invalidation of the runtime's prepared-task memo.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "verify/PlanCheck.h"
#include "xforms/DOALL.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

/// A reduction kernel every technique can parallelize — hot enough
/// (4096 iterations) that the cost model's spawn overhead amortizes.
/// main is idempotent so an engine can run it twice.
const char *ReductionSrc = R"(
  int a[4096];
  int main() {
    for (int i = 0; i < 4096; i = i + 1) a[i] = (i * 7 + 3) % 97;
    int sum = 0;
    for (int i = 0; i < 4096; i = i + 1) sum = sum + a[i] * a[i];
    return sum;
  }
)";

/// A loop-carried recurrence DOALL must reject.
const char *RecurrenceSrc = R"(
  int main() {
    int x = 1;
    for (int i = 0; i < 128; i = i + 1) x = (x * 31 + 7) % 65537;
    return x;
  }
)";

int64_t runSequential(const char *Src) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  return E.runMain();
}

planner::ProgramPlan planFor(nir::Module &M, unsigned Workers = 4) {
  Noelle N(M);
  planner::PlannerOptions PO;
  PO.MaxWorkers = Workers;
  return planner::Planner(N, PO).plan();
}

} // namespace

TEST(PlannerTest, PlanIsDeterministicAcrossRuns) {
  std::string First, Second;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
    First = planFor(*M).serialize();
  }
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
    Second = planFor(*M).serialize();
  }
  EXPECT_FALSE(First.empty());
  EXPECT_EQ(First, Second) << "same source must yield a byte-identical plan";
}

TEST(PlannerTest, PlanFindsTheHotLoop) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  planner::ProgramPlan P = planFor(*M);
  ASSERT_FALSE(P.Entries.empty());
  EXPECT_NE(P.ModuleHash, 0u);
  for (const auto &E : P.Entries) {
    EXPECT_EQ(E.FunctionName, "main");
    EXPECT_GE(E.Workers, 1u);
    EXPECT_GT(E.SpeedupMilli, 1000) << "planned loops must model a speedup";
  }
}

TEST(PlannerTest, CostModelMonotonicPastTheKnee) {
  // Past the worker count the cost model prefers, adding workers must
  // never be estimated cheaper: spawn overhead grows linearly while the
  // divided body shrinks sublinearly, so ParallelTime is non-decreasing
  // after its argmin.
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  Noelle N(*M);
  DOALL Tool(N);
  LoopContent *Target = nullptr;
  Legality L;
  for (LoopContent *LC : N.getLoopContents()) {
    Legality Cur = Tool.applicable(*LC);
    if (Cur) {
      Target = LC;
      L = Cur;
      break;
    }
  }
  ASSERT_NE(Target, nullptr);

  CostQuery Q;
  Q.TripCount = 256;
  std::vector<double> Times;
  for (unsigned W = 1; W <= 32; ++W) {
    LoopPlan P;
    P.Kind = TechniqueKind::DOALL;
    P.Workers = W;
    Times.push_back(Tool.estimate(L, P, Q).ParallelTime);
  }
  size_t Knee = 0;
  for (size_t I = 1; I < Times.size(); ++I)
    if (Times[I] < Times[Knee])
      Knee = I;
  for (size_t I = Knee + 1; I < Times.size(); ++I)
    EXPECT_GE(Times[I], Times[I - 1])
        << "more workers estimated cheaper past the knee at W="
        << Knee + 1;
}

TEST(PlannerTest, SerializeRoundTripIsByteIdentical) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  planner::ProgramPlan P = planFor(*M);
  std::string Text = P.serialize();

  planner::ProgramPlan Q;
  std::string Err;
  ASSERT_TRUE(planner::ProgramPlan::deserialize(Text, Q, Err)) << Err;
  EXPECT_EQ(P, Q);
  EXPECT_EQ(Text, Q.serialize());
}

TEST(PlannerTest, EmbedReloadRoundTrip) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  planner::ProgramPlan P = planFor(*M);

  P.embed(*M);
  planner::ProgramPlan Q;
  std::string Err;
  ASSERT_TRUE(planner::ProgramPlan::fromModule(*M, Q, Err)) << Err;
  EXPECT_EQ(P, Q);
  // Metadata does not feed the structural hash, so embedding must not
  // invalidate the plan's own binding to the module.
  EXPECT_EQ(P.ModuleHash, M->getContentHash());

  planner::ProgramPlan::clean(*M);
  EXPECT_FALSE(planner::ProgramPlan::fromModule(*M, Q, Err));
}

TEST(PlannerTest, CheckPlanRejectsDOALLOnLoopCarriedDependence) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, RecurrenceSrc);
  // The planner itself refuses this loop, so seed the bad entry by
  // hand: claim DOALL on the recurrence loop's header.
  nir::assignDeterministicIDs(*M);
  Noelle N(*M);
  planner::ProgramPlan Bad;
  Bad.ModuleHash = M->getContentHash();
  bool Seeded = false;
  for (LoopContent *LC : N.getLoopContents()) {
    const nir::LoopStructure &LS = LC->getLoopStructure();
    const auto &Insts = LS.getHeader()->getInstList();
    ASSERT_FALSE(Insts.empty());
    planner::PlanEntry E;
    E.FunctionName = LS.getFunction()->getName();
    E.HeaderInstID =
        std::stoull(Insts.front()->getMetadata(nir::InstIDKey));
    E.Kind = TechniqueKind::DOALL;
    E.Workers = 4;
    Bad.Entries.push_back(E);
    Seeded = true;
    break;
  }
  ASSERT_TRUE(Seeded);

  verify::CheckReport Rep = verify::checkPlan(*M, Bad);
  EXPECT_FALSE(Rep.clean());
  EXPECT_GE(Rep.count(verify::DiagKind::PlanIllegal), 1u) << Rep.str();
}

TEST(PlannerTest, CheckPlanRejectsStaleHash) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  planner::ProgramPlan P = planFor(*M);
  ASSERT_FALSE(P.Entries.empty());
  P.ModuleHash ^= 0xdeadbeef; // plan now claims a different module

  verify::CheckReport Rep = verify::checkPlan(*M, P);
  EXPECT_GE(Rep.count(verify::DiagKind::PlanHashMismatch), 1u)
      << Rep.str();

  // apply() must refuse the stale plan rather than transform blindly.
  Noelle N(*M);
  planner::Planner Planner(N);
  for (const auto &D : Planner.apply(P)) {
    EXPECT_FALSE(D.Parallelized);
    EXPECT_FALSE(D.Reason.empty());
  }
}

TEST(PlannerTest, PlanApplyPreservesSemantics) {
  int64_t Expected = runSequential(ReductionSrc);

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
  Noelle N(*M);
  planner::Planner P(N);
  planner::ProgramPlan Plan = P.plan();
  ASSERT_FALSE(Plan.Entries.empty());
  EXPECT_TRUE(verify::checkPlan(*M, Plan).clean());

  unsigned Applied = 0;
  for (const auto &D : P.apply(Plan))
    Applied += D.Parallelized;
  EXPECT_EQ(Applied, Plan.Entries.size());

  verify::CheckReport Rep = verify::checkModule(*M, Snap);
  EXPECT_TRUE(Rep.clean()) << Rep.str();

  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected);
}

TEST(PlannerTest, NestedPlanStaysCorrect) {
  // An outer pipeline-shaped loop (two chained recurrences) carrying an
  // inner DOALL-able loop. Whether the cost model picks the nested
  // (DSWP + inner DOALL) shape depends on the measured overheads, but
  // whatever it picks must audit clean and preserve the result.
  const char *Src = R"(
    int a[64];
    int main() {
      for (int i = 0; i < 64; i = i + 1) a[i] = i % 13;
      int x = 1;
      int y = 0;
      for (int i = 0; i < 64; i = i + 1) {
        int s = 0;
        for (int j = 0; j < 64; j = j + 1) s = s + a[j] * (j + i);
        x = (x * 13 + s) % 65537;
        y = (y + x * 3) % 39916801;
      }
      return y;
    }
  )";
  int64_t Expected = runSequential(Src);

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  planner::PlannerOptions PO;
  PO.EnableNested = true;
  planner::Planner P(N, PO);
  planner::ProgramPlan Plan = P.plan();
  EXPECT_TRUE(verify::checkPlan(*M, Plan).clean());

  for (const auto &D : P.apply(Plan))
    EXPECT_TRUE(D.Parallelized) << D.Reason;
  for (const auto &E : Plan.Entries) {
    if (E.Parent >= 0) {
      EXPECT_EQ(Plan.Entries[E.Parent].Kind, TechniqueKind::DSWP);
    }
  }

  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected);
}

TEST(PlannerTest, PrepareMemoInvalidatedByEpochBump) {
  // The runtime memoizes prepared task functions per module plan epoch.
  // Re-transforming a module bumps the epoch; a bump between two runs of
  // the same engine must flush the memo, not serve stale entries.
  int64_t Expected = runSequential(ReductionSrc);

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  EXPECT_EQ(planEpochOf(*M), 0u);

  Noelle N(*M);
  planner::Planner P(N);
  unsigned Applied = 0;
  for (const auto &D : P.planAndApply())
    Applied += D.Parallelized;
  ASSERT_GE(Applied, 1u);
  uint64_t AfterApply = planEpochOf(*M);
  EXPECT_GE(AfterApply, Applied) << "every apply must bump the epoch";

  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected);

  // Simulate a re-transform between runs: bump the epoch and run the
  // same engine again. The dispatch path must re-prepare the tasks.
  bumpPlanEpoch(*M);
  EXPECT_EQ(planEpochOf(*M), AfterApply + 1);
  EXPECT_EQ(E.runMain(), Expected);
}

TEST(PlannerTest, FacadeOwnsAPlanner) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, ReductionSrc);
  Noelle N(*M);
  planner::Planner &P1 = N.getPlanner();
  planner::Planner &P2 = N.getPlanner();
  EXPECT_EQ(&P1, &P2) << "facade must memoize its planner";
  EXPECT_FALSE(P1.plan().Entries.empty());
}
