//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the telemetry layer (obs-suite): histogram percentile
/// math on hand-built bucket arrays, exact shard-merge totals under
/// concurrent writers (including after writer threads exit and their
/// shards retire), metrics/trace JSON schema, and the load-bearing
/// invariant that enabling tracing leaves DispatchRecords byte-for-byte
/// identical — the Figure-5 performance model must not see telemetry.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "noelle/Noelle.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace noelle;
namespace telemetry = noelle::telemetry;

namespace {

/// Every test starts and ends with a quiet, disabled registry so cases
/// compose in any order within the suite binary.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    telemetry::setMode(telemetry::Mode::Off);
    telemetry::resetMetrics();
    telemetry::clearTrace();
  }
};

/// Structural JSON sanity without a parser: balanced braces/brackets
/// outside strings, and an even number of unescaped quotes.
void expectBalancedJson(const std::string &S) {
  int Braces = 0, Brackets = 0;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Braces;
    else if (C == '}')
      --Braces;
    else if (C == '[')
      ++Brackets;
    else if (C == ']')
      --Brackets;
    ASSERT_GE(Braces, 0);
    ASSERT_GE(Brackets, 0);
  }
  EXPECT_FALSE(InString);
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

} // namespace

TEST_F(TelemetryTest, PercentileOfEmptyHistogramIsZero) {
  uint64_t Buckets[64] = {};
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.50), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.99), 0.0);
}

TEST_F(TelemetryTest, PercentileOfAllZeroValuesIsZero) {
  uint64_t Buckets[64] = {};
  Buckets[0] = 1000; // bucket 0 holds exact zeros
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.50), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.99), 0.0);
}

TEST_F(TelemetryTest, PercentileInterpolatesWithinOneBucket) {
  // 100 samples in bucket 4, which spans [8, 15]. Nearest-rank with
  // linear interpolation: p50 lands mid-bucket, p99 near the top.
  uint64_t Buckets[64] = {};
  Buckets[4] = 100;
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.50),
                   8.0 + 7.0 * 0.50);
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.99),
                   8.0 + 7.0 * 0.99);
}

TEST_F(TelemetryTest, PercentileCrossesBuckets) {
  // Bimodal: 50 samples of exactly 1, 50 samples in [512, 1023]. The
  // median sits in the low mode, p95 deep in the high mode.
  uint64_t Buckets[64] = {};
  Buckets[1] = 50;  // [1, 1]
  Buckets[10] = 50; // [512, 1023]
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::histogramPercentile(Buckets, 0.95),
                   512.0 + 511.0 * ((95.0 - 50.0) / 50.0));
}

TEST_F(TelemetryTest, PercentilesAreMonotonicInQ) {
  uint64_t Buckets[64] = {};
  Buckets[3] = 7;
  Buckets[8] = 21;
  Buckets[20] = 2;
  double Last = 0;
  for (double Q : {0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0}) {
    double P = telemetry::histogramPercentile(Buckets, Q);
    EXPECT_GE(P, Last) << "at q=" << Q;
    Last = P;
  }
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  ASSERT_EQ(telemetry::mode(), telemetry::Mode::Off);
  telemetry::count(telemetry::Counter::PoolTasksRun, 5);
  telemetry::record(telemetry::Hist::DecodeNs, 123);
  telemetry::gaugeSet(telemetry::Gauge::PoolWorkers, 9);
  telemetry::traceSpan("ignored", 0, 1000);
  const auto Snap = telemetry::snapshotMetrics();
  EXPECT_EQ(Snap.counter(telemetry::Counter::PoolTasksRun), 0u);
  ASSERT_NE(Snap.histogram(telemetry::Hist::DecodeNs), nullptr);
  EXPECT_EQ(Snap.histogram(telemetry::Hist::DecodeNs)->Count, 0u);
  EXPECT_EQ(telemetry::traceEventCount(), 0u);
}

TEST_F(TelemetryTest, CountersHistogramsAndResetRoundTrip) {
  telemetry::setMode(telemetry::Mode::Metrics);
  telemetry::count(telemetry::Counter::QueuePush, 3);
  telemetry::count(telemetry::Counter::QueuePush);
  telemetry::record(telemetry::Hist::QueueOccupancy, 2);
  telemetry::record(telemetry::Hist::QueueOccupancy, 10);
  telemetry::gaugeSet(telemetry::Gauge::PoolQueueDepth, 7);
  telemetry::gaugeSet(telemetry::Gauge::PoolQueueDepth, 3);

  auto Snap = telemetry::snapshotMetrics();
  EXPECT_EQ(Snap.counter(telemetry::Counter::QueuePush), 4u);
  const auto *H = Snap.histogram(telemetry::Hist::QueueOccupancy);
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 2u);
  EXPECT_EQ(H->Sum, 12u);
  bool FoundGauge = false;
  for (const auto &[Name, G] : Snap.Gauges)
    if (Name == std::string("pool.queue_depth")) {
      FoundGauge = true;
      EXPECT_EQ(G.Value, 3);
      EXPECT_EQ(G.Max, 7); // watermark survives the lower re-set
    }
  EXPECT_TRUE(FoundGauge);

  telemetry::resetMetrics();
  Snap = telemetry::snapshotMetrics();
  EXPECT_EQ(Snap.counter(telemetry::Counter::QueuePush), 0u);
  EXPECT_EQ(Snap.histogram(telemetry::Hist::QueueOccupancy)->Count, 0u);
}

TEST_F(TelemetryTest, ShardMergeIsExactAcrossThreadsAndRetirement) {
  telemetry::setMode(telemetry::Mode::Metrics);
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 10000;
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([] {
        for (uint64_t I = 0; I < PerThread; ++I) {
          telemetry::count(telemetry::Counter::PoolSteals);
          telemetry::record(telemetry::Hist::DispatchNs, I & 1023);
        }
      });
    for (auto &T : Threads)
      T.join();
  }
  // All writer threads have exited: their shards are retired. The merge
  // must still see every increment, exactly once.
  const uint64_t Want = NumThreads * PerThread;
  auto Snap = telemetry::snapshotMetrics();
  EXPECT_EQ(Snap.counter(telemetry::Counter::PoolSteals), Want);
  EXPECT_EQ(Snap.histogram(telemetry::Hist::DispatchNs)->Count, Want);
  // Snapshots are pure reads: taking another changes nothing.
  auto Snap2 = telemetry::snapshotMetrics();
  EXPECT_EQ(Snap2.counter(telemetry::Counter::PoolSteals), Want);
  EXPECT_EQ(Snap2.histogram(telemetry::Hist::DispatchNs)->Sum,
            Snap.histogram(telemetry::Hist::DispatchNs)->Sum);
}

TEST_F(TelemetryTest, MetricsJsonListsEveryMetricEvenWhenZero) {
  telemetry::setMode(telemetry::Mode::Metrics);
  telemetry::count(telemetry::Counter::DecodeMiss, 2);
  const std::string Json = telemetry::metricsJson();
  expectBalancedJson(Json);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Json.find("\"interp.decode.miss\": 2"), std::string::npos);
  // Untouched metrics still appear (stable schema), with zero values.
  EXPECT_NE(Json.find("\"pool.steals\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"noelle.pdg.fn_build_ns\""), std::string::npos);
}

TEST_F(TelemetryTest, TraceJsonIsChromeLoadableShape) {
  telemetry::setMode(telemetry::Mode::Trace);
  const uint64_t T0 = telemetry::nowNs();
  telemetry::traceSpan("unit.a", T0, T0 + 2000, {"tasks", 4, "chunk", 2});
  telemetry::traceSpan("unit.b", T0 + 500, T0 + 1500);
  std::thread([&] {
    telemetry::traceSpan("unit.worker", T0 + 100, T0 + 900);
  }).join();

  EXPECT_EQ(telemetry::traceEventCount(), 3u);
  const std::string Json = telemetry::traceJson();
  expectBalancedJson(Json);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"unit.a\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"unit.worker\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\": \"noelle\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(Json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(Json.find("\"tasks\": 4"), std::string::npos);
  EXPECT_NE(Json.find("\"chunk\": 2"), std::string::npos);

  telemetry::clearTrace();
  EXPECT_EQ(telemetry::traceEventCount(), 0u);
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(telemetry::jsonEscape("plain"), "plain");
  EXPECT_EQ(telemetry::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(telemetry::jsonEscape("tab\there"), "tab\\there");
}

TEST_F(TelemetryTest, DispatchRecordsAreByteIdenticalUnderTracing) {
  // Parallelize one suite kernel with the planner, then execute the
  // same transformed module once with telemetry off and once with full
  // tracing. The records the Figure-5 model consumes must be identical
  // in every field — including the counts the instrumented runtime
  // paths (dispatch, pool, queues) are now also reporting to telemetry.
  const bench::Benchmark *Kernel = nullptr;
  nir::Context Ctx;
  std::unique_ptr<nir::Module> M;
  for (const auto &B : bench::getBenchmarkSuite()) {
    if (B.Suite == "SPEC")
      continue;
    auto Cand = minic::compileMiniCOrDie(Ctx, B.Source);
    Noelle N(*Cand);
    planner::PlannerOptions PO;
    PO.MaxWorkers = 4;
    planner::Planner P(N, PO);
    unsigned Parallelized = 0;
    for (const auto &D : P.planAndApply())
      Parallelized += D.Parallelized;
    if (Parallelized > 0) {
      Kernel = &B;
      M = std::move(Cand);
      break;
    }
  }
  ASSERT_NE(Kernel, nullptr) << "no parallelizable kernel in the suite";

  auto RunOnce = [&](telemetry::Mode Mode, int64_t &Ret) {
    telemetry::setMode(Mode);
    nir::ExecutionEngine E(*M);
    registerParallelRuntime(E);
    Ret = E.runMain();
    telemetry::setMode(telemetry::Mode::Off);
    return E.getDispatchRecords();
  };
  int64_t RetOff = 0, RetTraced = 0;
  const auto Off = RunOnce(telemetry::Mode::Off, RetOff);
  const auto Traced = RunOnce(telemetry::Mode::Trace, RetTraced);

  EXPECT_EQ(RetOff, RetTraced);
  EXPECT_GT(telemetry::traceEventCount(), 0u);
  ASSERT_FALSE(Off.empty()) << Kernel->Name << " dispatched no regions";
  ASSERT_EQ(Off.size(), Traced.size());
  for (size_t I = 0; I < Off.size(); ++I) {
    const auto &A = Off[I], &B = Traced[I];
    EXPECT_EQ(A.NumTasks, B.NumTasks) << "record " << I;
    EXPECT_EQ(A.MaxTaskInstructions, B.MaxTaskInstructions) << "record " << I;
    EXPECT_EQ(A.TotalTaskInstructions, B.TotalTaskInstructions)
        << "record " << I;
    EXPECT_EQ(A.MaxTaskSyncOps, B.MaxTaskSyncOps) << "record " << I;
    EXPECT_EQ(A.TotalTaskSyncOps, B.TotalTaskSyncOps) << "record " << I;
    EXPECT_EQ(A.TotalSegmentInstructions, B.TotalSegmentInstructions)
        << "record " << I;
    EXPECT_EQ(A.TaskName, B.TaskName) << "record " << I;
  }
}
