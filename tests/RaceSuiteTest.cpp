//===----------------------------------------------------------------------===//
///
/// \file
/// race-suite: the full happens-before race detector over every
/// benchmark kernel under each parallelizing transform, plus the
/// planner-produced plans the noelle-parallelize driver applies. Every
/// configuration must check race-clean, and the flow-sensitive engine
/// must never leave more pairs to the Andersen fallback than the legacy
/// single-rule detector it replaced. Registered under the ctest label
/// "race-suite".
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"
#include "planner/Planner.h"
#include "verify/NoelleCheck.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;

namespace {

class RaceSuiteTest : public ::testing::TestWithParam<std::string> {};

/// One race-detector pass over an already-transformed module (verifier
/// and legality audits are covered by check-suite).
struct RaceRun {
  verify::CheckReport Rep;
  verify::RaceRuleStats Stats;
};

RaceRun raceCheck(nir::Module &M,
                  const verify::PreTransformSnapshot &Snap,
                  const verify::RaceDetectorOptions &RaceOpts) {
  RaceRun R;
  verify::CheckOptions CO;
  CO.RunVerifier = false;
  CO.RunLegality = false;
  CO.Races = RaceOpts;
  CO.Races.Stats = &R.Stats;
  R.Rep = verify::checkModule(M, Snap, CO);
  return R;
}

TEST_P(RaceSuiteTest, KernelIsRaceCleanAndEngineNeverLosesToLegacy) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  for (const char *Which : {"doall", "helix", "dswp"}) {
    // Transform once; both detector modes audit the same module so the
    // pair population is identical by construction.
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B->Source);
    verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
    Noelle N(*M);
    if (std::string(Which) == "doall") {
      DOALL Tool(N);
      Tool.run();
    } else if (std::string(Which) == "helix") {
      HELIXOptions O;
      O.MinimumEstimatedSpeedup = 0;
      HELIX Tool(N, O);
      Tool.run();
    } else {
      DSWPOptions O;
      O.MinimumStageWeight = 0;
      DSWP Tool(N, O);
      Tool.run();
    }

    RaceRun HB = raceCheck(*M, Snap, verify::RaceDetectorOptions{});
    EXPECT_EQ(HB.Rep.count(verify::DiagKind::DataRace), 0u)
        << B->Name << " under " << Which << " (HB engine):\n"
        << HB.Rep.str();

    RaceRun Legacy =
        raceCheck(*M, Snap, verify::RaceDetectorOptions::legacy());
    EXPECT_EQ(Legacy.Rep.count(verify::DiagKind::DataRace), 0u)
        << B->Name << " under " << Which << " (legacy detector):\n"
        << Legacy.Rep.str();

    // Same pair population, so the engine's fallback count must not
    // regress: every pair legacy could discharge structurally, a
    // strictly richer rule set also discharges.
    EXPECT_EQ(HB.Stats.PairsChecked, Legacy.Stats.PairsChecked)
        << B->Name << " under " << Which;
    EXPECT_LE(HB.Stats.AndersenFallback, Legacy.Stats.AndersenFallback)
        << B->Name << " under " << Which;
  }
}

TEST_P(RaceSuiteTest, PlannerPlanIsRaceClean) {
  // The plans the noelle-parallelize driver produces: plan with the
  // strategy planner, apply through the unified transform API, then run
  // the full-HB detector over the result.
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
  Noelle N(*M);
  planner::Planner P(N);
  planner::ProgramPlan Plan = P.plan();
  for (const auto &D : P.apply(Plan))
    EXPECT_TRUE(D.Parallelized)
        << B->Name << " entry in " << D.FunctionName
        << " failed to apply: " << D.Reason;

  verify::RaceRuleStats S;
  verify::CheckOptions CO;
  CO.RunVerifier = false;
  CO.RunLegality = false;
  CO.Races.Stats = &S;
  verify::CheckReport Rep = verify::checkModule(*M, Snap, CO);
  EXPECT_EQ(Rep.count(verify::DiagKind::DataRace), 0u)
      << B->Name << " (" << Plan.Entries.size() << " planned loops):\n"
      << Rep.str();
}

std::vector<std::string> allKernelNames() {
  std::vector<std::string> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, RaceSuiteTest, ::testing::ValuesIn(allKernelNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
