//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the scheduler hierarchy (SCD) and the loop builder (LB):
/// PDG-legal motion, block scheduling, preheader creation, and
/// while -> do-while rotation.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "noelle/Noelle.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::BasicBlock;
using nir::Context;
using nir::ExecutionEngine;
using nir::Function;
using nir::Instruction;

namespace {

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, RefusesToMoveAcrossMemoryDependence) {
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
global @g : i64
func @f() -> i64 {
entry:
  store i64 1, @g
  %v = load i64, @g
  store i64 2, @g
  %w = load i64, @g
  %r = add i64 %v, %w
  ret i64 %r
}
)");
  Function *F = M->getFunction("f");
  Noelle N(*M);
  Scheduler S = N.getScheduler(*F);

  // %w (4th instr) cannot move above the second store.
  std::vector<Instruction *> Insts;
  for (auto &I : F->getEntryBlock().getInstList())
    Insts.push_back(I.get());
  Instruction *SecondStore = Insts[2];
  Instruction *LoadW = Insts[3];
  EXPECT_FALSE(S.canMoveBefore(LoadW, SecondStore));
  // But %r can move nowhere useful upward past its operands either.
  EXPECT_FALSE(S.canMoveBefore(Insts[4], Insts[3]));
}

TEST(SchedulerTest, MovesIndependentInstruction) {
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
func @f(%a: i64, %b: i64) -> i64 {
entry:
  %x = add i64 %a, 1
  %y = mul i64 %b, 2
  %r = add i64 %x, %y
  ret i64 %r
}
)");
  Function *F = M->getFunction("f");
  Noelle N(*M);
  Scheduler S = N.getScheduler(*F);
  std::vector<Instruction *> Insts;
  for (auto &I : F->getEntryBlock().getInstList())
    Insts.push_back(I.get());
  // %y is independent of %x: it may move above it.
  EXPECT_TRUE(S.canMoveBefore(Insts[1], Insts[0]));
  EXPECT_TRUE(S.moveBefore(Insts[1], Insts[0]));
  EXPECT_EQ(F->getEntryBlock().front(), Insts[1]);
  EXPECT_TRUE(nir::moduleVerifies(*M));
}

TEST(SchedulerTest, BlockSchedulingPreservesSemantics) {
  const char *Src = R"(
    int a[32];
    int main() {
      int s = 0;
      for (int i = 0; i < 32; i = i + 1) {
        int u = i * 3;
        int v = i + 100;
        int w = u * v;
        a[i] = w;
        s = s + w % 7;
      }
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Expected = ExecutionEngine(*M).runMain();

  Noelle N(*M);
  Function *Main = M->getFunction("main");
  PDG &DG = N.getFunctionDG(*Main);
  nir::DominatorTree &DT = N.getDominators(*Main);
  BasicBlockScheduler Sched(DG, DT);
  // Reverse-ish rank shuffles everything the PDG allows.
  for (auto &BB : Main->getBlocks())
    Sched.schedule(BB.get(), [](const Instruction *I) {
      return -static_cast<int>(I->getKind());
    });
  EXPECT_TRUE(nir::moduleVerifies(*M));
  EXPECT_EQ(ExecutionEngine(*M).runMain(), Expected);
}

TEST(SchedulerTest, LoopSchedulerShrinksHeader) {
  // A while loop whose header computes something only the body needs.
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
global @out : [64 x i64]
func @f(%n: i64) -> i64 {
entry:
  br label header
header:
  %i = phi i64 [0, entry], [%inext, body]
  %heavy = mul i64 %i, 12345
  %c = cmp slt i64 %i, %n
  br %c, label body, label exit
body:
  %p = gep @out, i64 %i, scale 8
  store i64 %heavy, %p
  %inext = add i64 %i, 1
  br label header
exit:
  ret i64 0
}
)");
  Function *F = M->getFunction("f");
  int64_t HeaderSizeBefore = 0;
  for (auto &BB : F->getBlocks())
    if (BB->getName() == "header")
      HeaderSizeBefore = static_cast<int64_t>(BB->size());

  Noelle N(*M);
  nir::LoopInfo &LI = N.getLoopInfo(*F);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  PDG &DG = N.getFunctionDG(*F);
  LoopScheduler LS(DG, N.getDominators(*F), *LI.getTopLevelLoops()[0]);
  EXPECT_GT(LS.shrinkHeader(), 0u);
  for (auto &BB : F->getBlocks())
    if (BB->getName() == "header")
      EXPECT_LT(static_cast<int64_t>(BB->size()), HeaderSizeBefore);
  EXPECT_TRUE(nir::moduleVerifies(*M));
}

//===----------------------------------------------------------------------===//
// LoopBuilder
//===----------------------------------------------------------------------===//

TEST(LoopBuilderTest, CreatesPreheaderWhenMissing) {
  // Two out-of-loop predecessors of the header: no preheader.
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
global @out : [64 x i64]
func @f(%c: i1) -> i64 {
entry:
  br %c, label a, label b
a:
  br label header
b:
  br label header
header:
  %i = phi i64 [0, a], [5, b], [%inext, bodyblk]
  %cond = cmp slt i64 %i, 20
  br %cond, label bodyblk, label exit
bodyblk:
  %p = gep @out, i64 %i, scale 8
  store i64 %i, %p
  %inext = add i64 %i, 1
  br label header
exit:
  ret i64 %i
}
)");
  Function *F = M->getFunction("f");
  nir::DominatorTree DT(*F);
  nir::LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  ASSERT_EQ(LI.getTopLevelLoops()[0]->getPreheader(), nullptr);

  LoopBuilder LB(Ctx);
  BasicBlock *PH = LB.getOrCreatePreheader(*LI.getTopLevelLoops()[0]);
  ASSERT_NE(PH, nullptr);
  EXPECT_TRUE(nir::moduleVerifies(*M));

  // Recompute: the loop now has a preheader, and execution still works.
  nir::DominatorTree DT2(*F);
  nir::LoopInfo LI2(*F, DT2);
  EXPECT_EQ(LI2.getTopLevelLoops()[0]->getPreheader(), PH);
  ExecutionEngine E(*M);
  auto RTrue =
      E.runFunction(F, {nir::RuntimeValue::ofInt(1)});
  auto RFalse =
      E.runFunction(F, {nir::RuntimeValue::ofInt(0)});
  EXPECT_EQ(RTrue.I, 20);
  EXPECT_EQ(RFalse.I, 20);
}

TEST(LoopBuilderTest, RotatesWhileToDoWhile) {
  const char *Src = R"(
    int out[64];
    int main() {
      for (int i = 0; i < 50; i = i + 1) out[i] = i * 2;
      int s = 0;
      for (int i = 0; i < 50; i = i + 1) s = s + out[i];
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Expected = ExecutionEngine(*M).runMain();

  Function *Main = M->getFunction("main");
  nir::DominatorTree DT(*Main);
  nir::LoopInfo LI(*Main, DT);
  // Rotate the first (store) loop: it has no register live-outs.
  nir::LoopStructure *Target = nullptr;
  for (auto *L : LI.getLoopsInPreorder())
    if (L->isWhileForm() && !Target)
      Target = L;
  ASSERT_NE(Target, nullptr);

  LoopBuilder LB(Ctx);
  bool Rotated = LB.rotateWhileToDoWhile(*Target);
  ASSERT_TRUE(Rotated);
  EXPECT_TRUE(nir::moduleVerifies(*M));

  // The rotated loop is now in do-while shape.
  nir::DominatorTree DT2(*Main);
  nir::LoopInfo LI2(*Main, DT2);
  bool AnyDoWhile = false;
  for (auto *L : LI2.getLoopsInPreorder())
    AnyDoWhile |= L->isDoWhileForm();
  EXPECT_TRUE(AnyDoWhile);
  EXPECT_EQ(ExecutionEngine(*M).runMain(), Expected);
}

TEST(LoopBuilderTest, RotationRefusedWhenValuesEscape) {
  // The sum loop's accumulator is live-out: rotation must refuse.
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Function *Main = M->getFunction("main");
  nir::DominatorTree DT(*Main);
  nir::LoopInfo LI(*Main, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  LoopBuilder LB(Ctx);
  EXPECT_FALSE(LB.rotateWhileToDoWhile(*LI.getTopLevelLoops()[0]));
  EXPECT_TRUE(nir::moduleVerifies(*M));
}

} // namespace
