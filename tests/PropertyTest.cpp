//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style tests over the whole benchmark suite: IR round-trip
/// stability, verifier cleanliness after every transformation, SCCDAG
/// structural invariants, PDG metadata fidelity, and composition of
/// custom tools (LICM then DOALL then CARAT on one module).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "tools/NoelleTools.h"
#include "xforms/CARAT.h"
#include "xforms/DOALL.h"
#include "xforms/LICM.h"
#include "xforms/TimeSqueezer.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

class SuiteProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(SuiteProperty, PrintParseFixpoint) {
  // print(parse(print(M))) == print(M): the textual format is stable.
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  std::string T1 = M->str();
  auto M2 = nir::parseModuleOrDie(Ctx, T1);
  std::string T2 = M2->str();
  EXPECT_EQ(T1, T2) << B->Name;
}

TEST_P(SuiteProperty, ReparsedModuleComputesSameResult) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  int64_t R1 = ExecutionEngine(*M).runMain();
  auto M2 = nir::parseModuleOrDie(Ctx, M->str());
  EXPECT_EQ(ExecutionEngine(*M2).runMain(), R1) << B->Name;
}

TEST_P(SuiteProperty, SCCDAGInvariants) {
  // For every loop: SCCs partition the internal nodes; the DAG has no
  // self-successors; reducible SCCs expose their reduction machinery.
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  Noelle N(*M);
  for (LoopContent *LC : N.getLoopContents()) {
    auto &Dag = LC->getSCCDAG();
    size_t Covered = 0;
    for (const auto &S : Dag.getSCCs()) {
      Covered += S->size();
      EXPECT_EQ(Dag.getSuccessors(S.get()).count(S.get()), 0u)
          << B->Name << ": SCC is its own successor";
      for (auto *V : S->getNodes())
        EXPECT_EQ(Dag.sccOf(V), S.get()) << B->Name;
      if (S->getAttribute() == SCC::Attribute::Reducible) {
        EXPECT_NE(S->getReductionPhi(), nullptr) << B->Name;
        EXPECT_NE(S->getReductionUpdate(), nullptr) << B->Name;
      }
    }
    EXPECT_EQ(Covered, LC->getLoopDG().getInternalNodes().size())
        << B->Name << ": SCCs must partition the loop's nodes";
  }
}

TEST_P(SuiteProperty, PDGMetadataRoundTripsEdgeCount) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  tools::metaPDGEmbed(*M);
  PDGBuilder Fresh(*M);
  auto Rebuilt = tools::pdgFromMetadata(*M);
  EXPECT_EQ(Rebuilt->getNumEdges(), Fresh.getPDG().getNumEdges()) << B->Name;
}

TEST_P(SuiteProperty, ToolCompositionPreservesSemantics) {
  // LICM, then DOALL, then CARAT, then TimeSqueezer — all on the same
  // module; the program must still verify and compute its result.
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  int64_t Expected;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B->Source);
    Expected = ExecutionEngine(*M).runMain();
  }
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  {
    Noelle N(*M);
    LICM L(N);
    L.run();
  }
  {
    Noelle N(*M);
    DOALLOptions O;
    O.NumCores = 3;
    DOALL D(N, O);
    D.run();
  }
  {
    Noelle N(*M);
    CARAT C(N);
    C.run();
  }
  {
    Noelle N(*M);
    TimeSqueezer T(N);
    T.run();
  }
  ASSERT_TRUE(nir::moduleVerifies(*M)) << B->Name;
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  registerCARATRuntime(E);
  E.registerExternal("set_clock",
                     [](ExecutionEngine &, const nir::CallInst *,
                        const std::vector<nir::RuntimeValue> &) {
                       return nir::RuntimeValue();
                     });
  EXPECT_EQ(E.runMain(), Expected) << B->Name;
}

std::vector<const char *> names() {
  std::vector<const char *> Out;
  for (const auto &B : bench::getBenchmarkSuite())
    Out.push_back(B.Name.c_str());
  return Out;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteProperty, ::testing::ValuesIn(names()),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

} // namespace
