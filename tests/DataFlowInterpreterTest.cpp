//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the data-flow engine (DFE), the profiler (PRO), the
/// architecture descriptor (AR), and interpreter corner cases (function
/// pointers in memory, heap validity, output capture).
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/Parser.h"
#include "noelle/Architecture.h"
#include "noelle/DataFlow.h"
#include "noelle/Profiler.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;
using nir::Function;
using nir::Instruction;

namespace {

//===----------------------------------------------------------------------===//
// Data-flow engine
//===----------------------------------------------------------------------===//

TEST(DataFlowTest, LivenessAcrossBranches) {
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
func @f(%a: i64, %b: i64, %c: i1) -> i64 {
entry:
  %x = add i64 %a, 1
  br %c, label t, label e
t:
  %y = mul i64 %x, 2
  br label merge
e:
  %z = mul i64 %b, 3
  br label merge
merge:
  %r = phi i64 [%y, t], [%z, e]
  ret i64 %r
}
)");
  Function *F = M->getFunction("f");
  auto R = computeLiveness(*F);

  // %x is live out of the entry's add (used in t) but dead after %y.
  Instruction *Add = F->getEntryBlock().front();
  EXPECT_TRUE(R->out(Add).test(R->indexOf(Add)));
  // %b is live at function entry (used on the else path).
  EXPECT_TRUE(R->in(Add).test(R->indexOf(F->getArg(1))));

  // After the phi, nothing but the phi itself is live.
  Instruction *Phi = nullptr;
  for (auto &BB : F->getBlocks())
    if (BB->getName() == "merge")
      Phi = BB->front();
  ASSERT_NE(Phi, nullptr);
  auto OutVals = R->outValues(Phi);
  ASSERT_EQ(OutVals.size(), 1u);
  EXPECT_EQ(OutVals[0], Phi);
}

TEST(DataFlowTest, LivenessFixpointInLoops) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Function *F = M->getFunction("main");
  auto R = computeLiveness(*F);
  // The accumulator phi must be live around the back edge: at the latch
  // branch, both loop phis are live.
  for (auto &BB : F->getBlocks()) {
    Instruction *Term = BB->getTerminator();
    if (!Term || BB->successors().empty())
      continue;
    // No assertion on specific blocks; just exercise queries everywhere.
    (void)R->in(Term);
    (void)R->out(Term);
  }
  unsigned LivePhis = 0;
  for (auto &BB : F->getBlocks())
    for (auto &I : BB->getInstList())
      if (nir::isa<nir::PhiInst>(I.get()) && R->out(I.get()).any())
        ++LivePhis;
  EXPECT_GE(LivePhis, 2u); // i and s
}

TEST(DataFlowTest, ReachingDefinitionsAccumulate) {
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
global @g : i64
func @f(%c: i1) -> i64 {
entry:
  store i64 1, @g
  br %c, label t, label merge
t:
  store i64 2, @g
  br label merge
merge:
  %v = load i64, @g
  ret i64 %v
}
)");
  Function *F = M->getFunction("f");
  auto R = computeReachingDefinitions(*F);
  Instruction *Load = nullptr;
  for (auto &BB : F->getBlocks())
    if (BB->getName() == "merge")
      Load = BB->front();
  ASSERT_NE(Load, nullptr);
  // Both stores may reach the load.
  EXPECT_EQ(R->inValues(Load).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Profiler queries
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, CountsMatchExecution) {
  const char *Src = R"(
    int work(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + i;
      return s;
    }
    int main() {
      int t = 0;
      for (int k = 0; k < 5; k = k + 1) t = t + work(10);
      return t;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  auto P = Profiler::profileModule(*M);

  Function *Work = M->getFunction("work");
  EXPECT_EQ(P.getFunctionInvocations(Work), 5u);

  nir::DominatorTree DT(*Work);
  nir::LoopInfo LI(*Work, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  auto *L = LI.getTopLevelLoops()[0];
  EXPECT_EQ(P.getLoopInvocations(*L), 5u);
  // Header runs 11 times per invocation (10 iterations + exit check).
  EXPECT_EQ(P.getLoopTotalIterations(*L), 55u);
  EXPECT_NEAR(P.getLoopAverageIterations(*L), 11.0, 0.01);
  EXPECT_GT(P.getLoopHotness(*L), 0.3);
  EXPECT_GT(P.getFunctionHotness(*Work), P.getLoopHotness(*L) - 0.01);
}

//===----------------------------------------------------------------------===//
// Architecture
//===----------------------------------------------------------------------===//

TEST(ArchitectureTest, DescribesAndRoundTrips) {
  Architecture A(false);
  EXPECT_GE(A.getNumLogicalCores(), 1u);
  EXPECT_GE(A.getNumPhysicalCores(), 1u);
  EXPECT_GE(A.getNumNUMANodes(), 1u);
  Architecture B = Architecture::fromString(A.str());
  EXPECT_EQ(B.getNumLogicalCores(), A.getNumLogicalCores());
  EXPECT_EQ(B.getNumPhysicalCores(), A.getNumPhysicalCores());
}

TEST(ArchitectureTest, MeasuresLatencyWhenAsked) {
  Architecture A(true);
  if (A.getNumLogicalCores() > 1)
    EXPECT_GT(A.getCoreToCoreLatencyNs(0, 1), 0.0);
  else
    EXPECT_EQ(A.getCoreToCoreLatencyNs(0, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Interpreter corner cases
//===----------------------------------------------------------------------===//

TEST(InterpreterTest, FunctionPointersThroughMemory) {
  const char *Src = R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int main() {
      int r = 0;
      int (*f)(int, int) = add;
      for (int i = 0; i < 4; i = i + 1) {
        r = f(r, i + 1);
        if (i == 1) f = mul;
      }
      return r;   // ((0+1)+2)*3*4 = 36
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), 36);
}

TEST(InterpreterTest, HeapValidityMap) {
  const char *Src = R"(
    int main() {
      int *p = malloc(64);
      p[0] = 7;
      return p[0];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), 7);
  uint64_t P = E.heapAlloc(16);
  EXPECT_TRUE(E.isValidAddress(P, 16));
  EXPECT_FALSE(E.isValidAddress(0x10, 8));
}

TEST(InterpreterTest, InstructionBudgetGuard) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 1000000; i = i + 1) s = s + 1;
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine::Options Opts;
  Opts.MaxInstructions = 1000;
  ExecutionEngine E(*M, Opts);
  EXPECT_DEATH(E.runMain(), "instruction budget");
}

TEST(InterpreterTest, RecursionDepthGuard) {
  Context Ctx;
  auto M = nir::parseModuleOrDie(Ctx, R"(
func @inf(%n: i64) -> i64 {
entry:
  %r = call i64 @inf(i64 %n)
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 @inf(i64 1)
  ret i64 %r
}
)");
  ExecutionEngine::Options Opts;
  Opts.MaxCallDepth = 64;
  ExecutionEngine E(*M, Opts);
  EXPECT_DEATH(E.runMain(), "call depth");
}

TEST(InterpreterTest, NarrowMemoryAccess) {
  const char *Src = R"(
    char bytes[16];
    int main() {
      for (int i = 0; i < 16; i = i + 1) bytes[i] = i * 17;   // truncates
      int s = 0;
      for (int i = 0; i < 16; i = i + 1) s = s + bytes[i];
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  int64_t Expected = 0;
  for (int I = 0; I < 16; ++I)
    Expected += static_cast<uint8_t>(I * 17);
  EXPECT_EQ(E.runMain(), Expected);
}

} // namespace
