//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for CFG, dominators, loop info, and the alias-analysis stack.
///
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "frontend/MiniC.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace nir;

namespace {

const char *DiamondIR = R"(
func @f(%c: i1) -> i64 {
entry:
  br %c, label a, label b
a:
  br label merge
b:
  br label merge
merge:
  %x = phi i64 [1, a], [2, b]
  ret i64 %x
}
)";

TEST(CFGTest, ReversePostOrderVisitsPredsFirst) {
  Context Ctx;
  auto M = parseModuleOrDie(Ctx, DiamondIR);
  Function *F = M->getFunction("f");
  auto RPO = reversePostOrder(*F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front()->getName(), "entry");
  EXPECT_EQ(RPO.back()->getName(), "merge");
}

TEST(CFGTest, Reachability) {
  Context Ctx;
  auto M = parseModuleOrDie(Ctx, DiamondIR);
  Function *F = M->getFunction("f");
  auto Blocks = reachableBlocks(*F);
  EXPECT_EQ(Blocks.size(), 4u);
  BasicBlock *Entry = &F->getEntryBlock();
  BasicBlock *Merge = Blocks[0]->getName() == "merge" ? Blocks[0] : nullptr;
  for (auto *BB : Blocks)
    if (BB->getName() == "merge")
      Merge = BB;
  ASSERT_NE(Merge, nullptr);
  EXPECT_TRUE(isReachable(Entry, Merge));
  EXPECT_FALSE(isReachable(Merge, Entry));
}

TEST(DominatorTest, Diamond) {
  Context Ctx;
  auto M = parseModuleOrDie(Ctx, DiamondIR);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);

  std::map<std::string, BasicBlock *> BBs;
  for (auto &BB : F->getBlocks())
    BBs[BB->getName()] = BB.get();

  EXPECT_EQ(DT.getIDom(BBs["entry"]), nullptr);
  EXPECT_EQ(DT.getIDom(BBs["a"]), BBs["entry"]);
  EXPECT_EQ(DT.getIDom(BBs["b"]), BBs["entry"]);
  EXPECT_EQ(DT.getIDom(BBs["merge"]), BBs["entry"]);
  EXPECT_TRUE(DT.dominates(BBs["entry"], BBs["merge"]));
  EXPECT_FALSE(DT.dominates(BBs["a"], BBs["merge"]));
  EXPECT_TRUE(DT.dominates(BBs["a"], BBs["a"]));

  // Dominance frontier of a and b is {merge}.
  EXPECT_EQ(DT.getDominanceFrontier(BBs["a"]).count(BBs["merge"]), 1u);
  EXPECT_EQ(DT.getDominanceFrontier(BBs["b"]).count(BBs["merge"]), 1u);
}

TEST(DominatorTest, InstructionDominance) {
  Context Ctx;
  auto M = parseModuleOrDie(Ctx, DiamondIR);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  Instruction *EntryBr = F->getEntryBlock().back();
  Instruction *Phi = nullptr;
  for (auto &BB : F->getBlocks())
    if (BB->getName() == "merge")
      Phi = BB->front();
  ASSERT_NE(Phi, nullptr);
  EXPECT_TRUE(DT.dominates(EntryBr, Phi));
  EXPECT_FALSE(DT.dominates(Phi, EntryBr));
}

TEST(PostDominatorTest, Diamond) {
  Context Ctx;
  auto M = parseModuleOrDie(Ctx, DiamondIR);
  Function *F = M->getFunction("f");
  PostDominatorTree PDT(*F);
  std::map<std::string, BasicBlock *> BBs;
  for (auto &BB : F->getBlocks())
    BBs[BB->getName()] = BB.get();
  EXPECT_TRUE(PDT.postDominates(BBs["merge"], BBs["entry"]));
  EXPECT_TRUE(PDT.postDominates(BBs["merge"], BBs["a"]));
  EXPECT_FALSE(PDT.postDominates(BBs["a"], BBs["entry"]));
}

TEST(LoopInfoTest, SimpleLoop) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  Function *F = M->getFunction("main");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.getNumLoops(), 1u);
  LoopStructure *L = LI.getTopLevelLoops()[0];
  EXPECT_NE(L->getPreheader(), nullptr);
  EXPECT_EQ(L->getLatches().size(), 1u);
  EXPECT_GE(L->getExitBlocks().size(), 1u);
  EXPECT_EQ(L->getDepth(), 1u);
  EXPECT_EQ(LI.getLoopFor(L->getHeader()), L);
}

TEST(LoopInfoTest, NestedLoops) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1)
        for (int j = 0; j < 4; j = j + 1)
          s = s + i * j;
      return s;
    }
  )");
  Function *F = M->getFunction("main");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.getNumLoops(), 2u);
  ASSERT_EQ(LI.getTopLevelLoops().size(), 1u);
  LoopStructure *Outer = LI.getTopLevelLoops()[0];
  ASSERT_EQ(Outer->getSubLoops().size(), 1u);
  LoopStructure *Inner = Outer->getSubLoops()[0];
  EXPECT_EQ(Inner->getParentLoop(), Outer);
  EXPECT_EQ(Inner->getDepth(), 2u);
  EXPECT_TRUE(Outer->contains(Inner->getHeader()));
  EXPECT_FALSE(Inner->contains(Outer->getHeader()));
}

TEST(LoopInfoTest, PreorderIsOuterFirst) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) s = s + 1;
        for (int k = 0; k < 4; k = k + 1) s = s + 2;
      }
      while (s > 100) s = s - 1;
      return s;
    }
  )");
  Function *F = M->getFunction("main");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_EQ(LI.getNumLoops(), 4u);
  auto Pre = LI.getLoopsInPreorder();
  ASSERT_EQ(Pre.size(), 4u);
  // The first loop in preorder is top-level.
  EXPECT_EQ(Pre[0]->getDepth(), 1u);
}

//===----------------------------------------------------------------------===//
// Alias analysis
//===----------------------------------------------------------------------===//

/// Two distinct local arrays: basic AA must disambiguate them.
const char *TwoArraysSrc = R"(
  int main() {
    int a[8];
    int b[8];
    for (int i = 0; i < 8; i = i + 1) { a[i] = i; b[i] = 2 * i; }
    return a[3] + b[3];
  }
)";

std::pair<Value *, Value *> findTwoStorePtrs(Function *F) {
  std::vector<Value *> Ptrs;
  for (auto &BB : F->getBlocks())
    for (auto &I : BB->getInstList())
      if (auto *S = dyn_cast<StoreInst>(I.get()))
        Ptrs.push_back(S->getPointerOperand());
  assert(Ptrs.size() >= 2);
  return {Ptrs[0], Ptrs[1]};
}

TEST(AliasTest, NoAAIsAlwaysMay) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, TwoArraysSrc);
  NoAliasAnalysis AA;
  auto [P1, P2] = findTwoStorePtrs(M->getFunction("main"));
  EXPECT_EQ(AA.alias(P1, P2), AliasResult::MayAlias);
  EXPECT_EQ(AA.alias(P1, P1), AliasResult::MustAlias);
}

TEST(AliasTest, BasicAADisambiguatesDistinctArrays) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, TwoArraysSrc);
  BasicAliasAnalysis AA;
  auto [P1, P2] = findTwoStorePtrs(M->getFunction("main"));
  // a[i] and b[i] come from different allocas.
  EXPECT_EQ(AA.alias(P1, P2), AliasResult::NoAlias);
}

TEST(AliasTest, BasicAADistinctGlobalsNoAlias) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int x[4];
    int y[4];
    int main() { x[0] = 1; y[0] = 2; return x[0]; }
  )");
  BasicAliasAnalysis AA;
  auto [P1, P2] = findTwoStorePtrs(M->getFunction("main"));
  EXPECT_EQ(AA.alias(P1, P2), AliasResult::NoAlias);
}

TEST(AliasTest, BasicAAConstantOffsetsOffSameBase) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int a[8];
    int main() { a[0] = 1; a[1] = 2; return a[0]; }
  )");
  BasicAliasAnalysis AA;
  auto [P1, P2] = findTwoStorePtrs(M->getFunction("main"));
  EXPECT_EQ(AA.alias(P1, P2), AliasResult::NoAlias);
}

TEST(AliasTest, BasicAACannotDisambiguateThroughCalls) {
  // Pointers passed through a call boundary: basic (intraprocedural) AA
  // must stay conservative, while Andersen proves independence.
  const char *Src = R"(
    int A[64];
    int B[64];
    void fill(int *p, int n) {
      for (int i = 0; i < n; i = i + 1) p[i] = i;
    }
    int main() {
      fill(A, 64);
      fill(B, 64);
      return A[5] + B[5];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Function *Fill = M->getFunction("fill");
  // The store pointer inside fill against the global A.
  Value *StorePtr = nullptr;
  for (auto &BB : Fill->getBlocks())
    for (auto &I : BB->getInstList())
      if (auto *S = dyn_cast<StoreInst>(I.get()))
        StorePtr = S->getPointerOperand();
  ASSERT_NE(StorePtr, nullptr);

  BasicAliasAnalysis Basic;
  AndersenAliasAnalysis Andersen(*M);
  GlobalVariable *A = M->getGlobal("A");

  // Basic: parameter-based pointer may alias anything.
  EXPECT_EQ(Basic.alias(StorePtr, A), AliasResult::MayAlias);
  // Andersen: p may point to A or B, so against A it is still MayAlias,
  // but against an unrelated third global it is NoAlias.
  auto M2Src = Andersen.getPointsTo(StorePtr);
  EXPECT_FALSE(M2Src.empty());
}

TEST(AliasTest, AndersenProvesHeapSeparation) {
  const char *Src = R"(
    int main() {
      int *p = malloc(80);
      int *q = malloc(80);
      p[0] = 1;
      q[0] = 2;
      return p[0];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  AndersenAliasAnalysis AA(*M);
  auto [P1, P2] = findTwoStorePtrs(M->getFunction("main"));
  EXPECT_EQ(AA.alias(P1, P2), AliasResult::NoAlias);
}

TEST(AliasTest, AndersenResolvesIndirectCallees) {
  const char *Src = R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int pick(int c) { return c; }
    int main() {
      int (*f)(int, int) = add;
      if (pick(1)) f = mul;
      return f(3, 4);
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  AndersenAliasAnalysis AA(*M);
  // Find the indirect call.
  const CallInst *Indirect = nullptr;
  for (auto &BB : M->getFunction("main")->getBlocks())
    for (auto &I : BB->getInstList())
      if (auto *C = dyn_cast<CallInst>(I.get()))
        if (C->isIndirect())
          Indirect = C;
  ASSERT_NE(Indirect, nullptr);
  auto Callees = AA.getIndirectCallees(Indirect);
  // Both add and mul are possible; pick (wrong arity) is not.
  std::set<std::string> Names;
  for (auto *F : Callees)
    Names.insert(F->getName());
  EXPECT_TRUE(Names.count("add"));
  EXPECT_TRUE(Names.count("mul"));
  EXPECT_FALSE(Names.count("pick"));
}

TEST(AliasTest, ModRefQueries) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, TwoArraysSrc);
  BasicAliasAnalysis AA;
  Function *Main = M->getFunction("main");
  StoreInst *Store = nullptr;
  LoadInst *Load = nullptr;
  for (auto &BB : Main->getBlocks())
    for (auto &I : BB->getInstList()) {
      if (auto *S = dyn_cast<StoreInst>(I.get()))
        if (!Store)
          Store = S;
      if (auto *L = dyn_cast<LoadInst>(I.get()))
        if (!Load)
          Load = L;
    }
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(AA.getModRef(Store, Store->getPointerOperand()),
            ModRefResult::Mod);
}

} // namespace
