//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the optimizing interpreter: decode-time optimization
/// (constant folding into immediate opcodes, GEP flattening, phi edge
/// moves, superinstruction fusion) must be observationally invisible —
/// same results, same output, same retired-instruction counts — across
/// every dispatch tier; DispatchRecords must be identical across tiers
/// for parallelized programs; the observed tier must report the same
/// profile regardless of decode optimization; and the retirement flush
/// protocol must expose identical counts at every external-call
/// boundary.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "noelle/Profiler.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;

namespace {

/// The four engine configurations every equivalence test sweeps: decode
/// optimization on/off crossed with threaded/switch dispatch. When the
/// build has no computed-goto support the threaded rows silently run
/// the switch loop (DispatchMode::Auto semantics), which still checks
/// opt vs noopt.
std::vector<std::pair<const char *, ExecutionEngine::Options>> allConfigs() {
  std::vector<std::pair<const char *, ExecutionEngine::Options>> Out;
  for (bool Opt : {true, false})
    for (auto Mode : {ExecutionEngine::DispatchMode::Threaded,
                      ExecutionEngine::DispatchMode::Switch}) {
      ExecutionEngine::Options O;
      O.DecodeOpt = Opt;
      O.Dispatch = Mode;
      Out.push_back({Opt ? (Mode == ExecutionEngine::DispatchMode::Threaded
                                ? "threaded+opt"
                                : "switch+opt")
                         : (Mode == ExecutionEngine::DispatchMode::Threaded
                                ? "threaded+noopt"
                                : "switch+noopt"),
                     O});
    }
  return Out;
}

struct Observed {
  int64_t Ret = 0;
  std::string Output;
  uint64_t Instructions = 0;
};

/// Runs @main of \p Src under every configuration and checks that the
/// result, the captured output, and the retired-instruction count all
/// agree; returns the common observation.
Observed runAllConfigs(const char *Src) {
  Observed First;
  bool HaveFirst = false;
  for (const auto &[Name, Opts] : allConfigs()) {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M, Opts);
    Observed O;
    O.Ret = E.runMain();
    O.Output = E.getOutput();
    O.Instructions = E.getInstructionsExecuted();
    if (!HaveFirst) {
      First = O;
      HaveFirst = true;
      continue;
    }
    EXPECT_EQ(O.Ret, First.Ret) << Name;
    EXPECT_EQ(O.Output, First.Output) << Name;
    EXPECT_EQ(O.Instructions, First.Instructions) << Name;
  }
  return First;
}

//===----------------------------------------------------------------------===//
// Decode-time optimization is observationally invisible.
//===----------------------------------------------------------------------===//

TEST(InterpFoldingTest, ConstantOperandsFoldToImmediates) {
  // Every binary/compare shape with one constant operand, on both
  // sides (the non-commutative ones decode to dedicated IR variants).
  Observed O = runAllConfigs(R"(
    int main() {
      int s = 0;
      for (int i = 1; i < 200; i = i + 1) {
        s = s + i * 3;
        s = s - 100 / i;
        s = s + (1000 - i);
        s = s + i / 7 + i % 7;
        s = s + 4096 / i - 4096 % i;
        if (s > 100000) s = s - 100000;
        if (17 < i) s = s + 1;
      }
      return s;
    }
  )");
  EXPECT_NE(O.Ret, 0);
}

TEST(InterpFoldingTest, FloatImmediatesAndCasts) {
  Observed O = runAllConfigs(R"(
    int main() {
      double acc = 0.0;
      for (int i = 0; i < 100; i = i + 1) {
        double x = i * 1.5;
        acc = acc + x * 2.0 - 0.25;
        acc = acc + 10.0 / (x + 1.0);
      }
      print_f64(acc);
      return (int)acc;
    }
  )");
  EXPECT_FALSE(O.Output.empty());
}

TEST(InterpFoldingTest, GepFlatteningOnMultiDimIndexing) {
  // a[i*10+j] style addressing: the decoder folds the index arithmetic
  // into a single scaled-index address opcode and fuses it into the
  // adjacent load/store.
  Observed O = runAllConfigs(R"(
    int a[100];
    char bytes[100];
    int main() {
      for (int i = 0; i < 10; i = i + 1)
        for (int j = 0; j < 10; j = j + 1) {
          a[i * 10 + j] = i * j + 1;
          bytes[i * 10 + j] = i + j;
        }
      int s = 0;
      for (int i = 0; i < 10; i = i + 1)
        for (int j = 0; j < 10; j = j + 1)
          s = s + a[j * 10 + i] + bytes[j * 10 + i];
      return s;
    }
  )");
  EXPECT_NE(O.Ret, 0);
}

TEST(InterpFoldingTest, PhiSwapCycleSequentializes) {
  // The classic parallel-copy cycle: both loop phis read each other's
  // previous value, forcing the edge-move sequentializer through its
  // scratch-register path.
  Observed O = runAllConfigs(R"(
    int main() {
      int a = 1;
      int b = 2;
      int c = 3;
      for (int i = 0; i < 50; i = i + 1) {
        int t = a;
        a = b;
        b = c;
        c = t;
      }
      return a * 1000000 + b * 1000 + c;
    }
  )");
  // 50 rotations of (1,2,3): 50 % 3 == 2 -> (3,1,2).
  EXPECT_EQ(O.Ret, 3001002);
}

TEST(InterpFoldingTest, WrappedDivisionEdgeCases) {
  // INT64_MIN / -1 wraps (defined behavior in the interpreter), the
  // matching srem is 0, and shift amounts are masked to 6 bits. Checked
  // through runFunction so the operands stay runtime values.
  const char *Src = R"(
    int div(int a, int b) { return a / b; }
    int rem(int a, int b) { return a % b; }
    int shl(int a, int b) { return a << b; }
  )";
  for (const auto &[Name, Opts] : allConfigs()) {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M, Opts);
    int64_t Min = INT64_MIN;
    auto Call = [&](const char *F, int64_t A, int64_t B) {
      return E
          .runFunction(M->getFunction(F),
                       {RuntimeValue::ofInt(A), RuntimeValue::ofInt(B)})
          .I;
    };
    EXPECT_EQ(Call("div", Min, -1), Min) << Name;
    EXPECT_EQ(Call("rem", Min, -1), 0) << Name;
    EXPECT_EQ(Call("div", 7, 0), 0) << Name;
    EXPECT_EQ(Call("rem", 7, 0), 0) << Name;
    EXPECT_EQ(Call("shl", 1, 65), 2) << Name;
  }
}

//===----------------------------------------------------------------------===//
// DispatchRecords are identical across tiers (the Figure-5 pin).
//===----------------------------------------------------------------------===//

struct AtomicObserver : nir::ExecutionObserver {
  std::atomic<uint64_t> Blocks{0};
  void onBlockExecuted(const nir::BasicBlock *) override {
    Blocks.fetch_add(1, std::memory_order_relaxed);
  }
};

void expectSameRecords(const std::vector<nir::DispatchRecord> &A,
                       const std::vector<nir::DispatchRecord> &B,
                       const char *Tag) {
  ASSERT_EQ(A.size(), B.size()) << Tag;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].NumTasks, B[I].NumTasks) << Tag << " #" << I;
    EXPECT_EQ(A[I].MaxTaskInstructions, B[I].MaxTaskInstructions)
        << Tag << " #" << I;
    EXPECT_EQ(A[I].TotalTaskInstructions, B[I].TotalTaskInstructions)
        << Tag << " #" << I;
    EXPECT_EQ(A[I].MaxTaskSyncOps, B[I].MaxTaskSyncOps) << Tag << " #" << I;
    EXPECT_EQ(A[I].TotalTaskSyncOps, B[I].TotalTaskSyncOps)
        << Tag << " #" << I;
    EXPECT_EQ(A[I].TotalSegmentInstructions, B[I].TotalSegmentInstructions)
        << Tag << " #" << I;
  }
}

TEST(InterpDispatchTest, RecordsInvariantAcrossTiersUnderDOALLAndDSWP) {
  const char *Src = R"(
    int a[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) a[i] = (i * 37 + 11) % 101;
      int x = 1;
      int y = 0;
      for (int i = 0; i < 512; i = i + 1) {
        x = (x * 13 + a[i]) % 65537;
        y = (y + x * 3) % 39916801;
      }
      return y;
    }
  )";
  for (const char *Which : {"doall", "dswp"}) {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    Noelle N(*M);
    unsigned Parallelized = 0;
    if (std::string(Which) == "doall") {
      DOALLOptions O;
      O.NumCores = 4;
      DOALL Tool(N, O);
      for (const auto &D : Tool.run())
        Parallelized += D.Parallelized;
    } else {
      DSWPOptions O;
      O.NumCores = 2;
      O.MinimumStageWeight = 0;
      DSWP Tool(N, O);
      for (const auto &D : Tool.run())
        Parallelized += D.Parallelized;
    }
    ASSERT_GE(Parallelized, 1u) << Which;

    auto runTier = [&](ExecutionEngine::DispatchMode Mode, bool Observe) {
      ExecutionEngine E(*M, [&] {
        ExecutionEngine::Options O;
        O.Dispatch = Mode;
        return O;
      }());
      registerParallelRuntime(E);
      AtomicObserver Obs;
      if (Observe)
        E.setObserver(&Obs);
      int64_t Ret = E.runMain();
      return std::make_pair(Ret, E.getDispatchRecords());
    };

    auto [RetT, RecT] = runTier(ExecutionEngine::DispatchMode::Threaded,
                                false);
    auto [RetS, RecS] = runTier(ExecutionEngine::DispatchMode::Switch,
                                false);
    auto [RetO, RecO] = runTier(ExecutionEngine::DispatchMode::Auto, true);
    EXPECT_EQ(RetT, RetS) << Which;
    EXPECT_EQ(RetT, RetO) << Which;
    ASSERT_FALSE(RecT.empty()) << Which;
    expectSameRecords(RecT, RecS, Which);
    expectSameRecords(RecT, RecO, Which);
  }
}

//===----------------------------------------------------------------------===//
// Observer semantics under batching.
//===----------------------------------------------------------------------===//

TEST(InterpObserverTest, ProfileInvariantUnderDecodeOpt) {
  const char *Src = R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      int s = 0;
      for (int i = 0; i < 12; i = i + 1)
        if (i - (i / 2) * 2 == 0) s = s + fib(i);
      return s;
    }
  )";
  auto profile = [&](bool Opt, Context &Ctx,
                     std::unique_ptr<nir::Module> &M) {
    M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine::Options O;
    O.DecodeOpt = Opt;
    ExecutionEngine E(*M, O);
    Profiler P;
    E.setObserver(&P);
    E.runMain();
    return P.takeData();
  };
  Context CtxA, CtxB;
  std::unique_ptr<nir::Module> MA, MB;
  ProfileData A = profile(true, CtxA, MA);
  ProfileData B = profile(false, CtxB, MB);

  EXPECT_EQ(A.getTotalInstructions(), B.getTotalInstructions());
  EXPECT_GT(A.getTotalInstructions(), 0u);
  // Same program, two parses: compare block counts positionally.
  for (const auto &FA : MA->getFunctions()) {
    if (FA->isDeclaration())
      continue;
    const Function *FB = MB->getFunction(FA->getName());
    ASSERT_NE(FB, nullptr);
    EXPECT_EQ(A.getFunctionInvocations(FA.get()),
              B.getFunctionInvocations(FB));
    auto ItA = FA->getBlocks().begin();
    auto ItB = FB->getBlocks().begin();
    for (; ItA != FA->getBlocks().end(); ++ItA, ++ItB) {
      ASSERT_NE(ItB, FB->getBlocks().end());
      EXPECT_EQ(A.getBlockCount(ItA->get()), B.getBlockCount(ItB->get()))
          << FA->getName() << "/" << (*ItA)->getName();
    }
  }
}

TEST(InterpObserverTest, InstructionCountUnchangedByObserver) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 500; i = i + 1) s = s + i * i;
      return s % 1000;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  uint64_t Without, With;
  int64_t RetA, RetB;
  {
    ExecutionEngine E(*M);
    RetA = E.runMain();
    Without = E.getInstructionsExecuted();
  }
  {
    ExecutionEngine E(*M);
    AtomicObserver Obs;
    E.setObserver(&Obs);
    RetB = E.runMain();
    With = E.getInstructionsExecuted();
    EXPECT_GT(Obs.Blocks.load(), 0u);
  }
  EXPECT_EQ(RetA, RetB);
  EXPECT_EQ(Without, With);
}

//===----------------------------------------------------------------------===//
// Retirement flush protocol at external-call boundaries.
//===----------------------------------------------------------------------===//

TEST(InterpRetireTest, ExternalCallsSeeIdenticalCountsAcrossConfigs) {
  // The engine must flush retired instructions up to and including the
  // call before entering an external, so the sequence of global counts
  // seen by the external is pinned by the original instruction stream —
  // independent of fusion, folding, and dispatch tier.
  const char *Src = R"(
    extern int probe(int x);
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        a[i] = i * 3 + 1;
        s = s + a[i];
        if (i - (i / 7) * 7 == 0) s = s + probe(s);
      }
      return probe(s);
    }
  )";
  std::vector<std::vector<uint64_t>> Sequences;
  std::vector<int64_t> Rets;
  for (const auto &[Name, Opts] : allConfigs()) {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M, Opts);
    std::vector<uint64_t> Seq;
    E.registerExternal(
        "probe", [&Seq](ExecutionEngine &Eng, const nir::CallInst *,
                        const std::vector<RuntimeValue> &Args) {
          Seq.push_back(Eng.getInstructionsExecuted());
          return RuntimeValue::ofInt(Args[0].I % 11);
        });
    Rets.push_back(E.runMain());
    Sequences.push_back(std::move(Seq));
  }
  for (size_t I = 1; I < Sequences.size(); ++I) {
    EXPECT_EQ(Rets[I], Rets[0]);
    EXPECT_EQ(Sequences[I], Sequences[0]) << "config #" << I;
  }
  EXPECT_EQ(Sequences[0].size(), 11u); // 10 in-loop probes + the final one
}

} // namespace
