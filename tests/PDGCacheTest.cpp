//===----------------------------------------------------------------------===//
///
/// \file
/// The PDG construction/caching contract: the parallel per-function
/// build produces exactly the serial edge sequence on every suite
/// kernel, the embedded form survives the textual print/parse
/// round-trip, a mutated module rejects its stale cache, and the Noelle
/// manager's invalidation drops whole-program state while keeping
/// untouched functions' analyses alive.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/Constants.h"
#include "ir/IDs.h"
#include "ir/Parser.h"
#include "tools/NoelleTools.h"
#include "xforms/DOALL.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace noelle;
using nir::Context;

namespace {

/// An edge, flattened to its deterministic-ID coordinates so graphs over
/// different Module instances compare.
using EdgeKey = std::tuple<uint64_t, uint64_t, bool, int, bool, bool, bool,
                           int64_t>;

EdgeKey keyOf(const DependenceEdge<nir::Value> *E) {
  auto IDOf = [](const nir::Value *V) {
    const auto *I = nir::cast<nir::Instruction>(V);
    return std::stoull(I->getMetadata(nir::InstIDKey));
  };
  return {IDOf(E->From),
          IDOf(E->To),
          E->IsControl,
          static_cast<int>(E->Kind),
          E->IsMemory,
          E->IsLoopCarried,
          E->IsMust,
          E->Distance};
}

std::vector<EdgeKey> edgeKeysOf(const PDG &G) {
  std::vector<EdgeKey> Keys;
  for (const auto *E : G.getEdges())
    Keys.push_back(keyOf(E));
  return Keys;
}

PDGBuildOptions serialOpts() {
  PDGBuildOptions O;
  O.ParallelBuild = false;
  O.UseEmbedded = false;
  return O;
}

PDGBuildOptions parallelOpts(unsigned Parallelism) {
  PDGBuildOptions O;
  O.ParallelBuild = true;
  O.Parallelism = Parallelism;
  O.UseEmbedded = false;
  return O;
}

class PDGParallelSuite : public ::testing::TestWithParam<const char *> {};

/// The tentpole guarantee: on every suite kernel the concurrent
/// per-function build merges into the exact serial edge sequence — same
/// edges, same attributes, same insertion order, same stats.
TEST_P(PDGParallelSuite, ParallelMatchesSerial) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  nir::assignDeterministicIDs(*M);

  PDGBuilder Serial(*M, serialOpts());
  PDGBuilder Parallel(*M, parallelOpts(4));
  PDG &GS = Serial.getPDG();
  PDG &GP = Parallel.getPDG();
  EXPECT_FALSE(Parallel.wasPDGLoadedFromEmbedded());

  EXPECT_EQ(GS.getNumNodes(), GP.getNumNodes());
  auto SE = GS.getEdges();
  auto PE = GP.getEdges();
  ASSERT_EQ(SE.size(), PE.size()) << B->Name;
  for (size_t I = 0; I < SE.size(); ++I)
    EXPECT_EQ(keyOf(SE[I]), keyOf(PE[I])) << B->Name << " edge " << I;

  EXPECT_EQ(GS.getStats().MemoryPairsQueried,
            GP.getStats().MemoryPairsQueried);
  EXPECT_EQ(GS.getStats().MemoryPairsDisproved,
            GP.getStats().MemoryPairsDisproved);
}

std::vector<const char *> allBenchmarkNames() {
  std::vector<const char *> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name.c_str());
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, PDGParallelSuite,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(PDGCacheTest, EmbedPrintParseLoadRoundTrip) {
  const bench::Benchmark *B = bench::findBenchmark("blackscholes");
  ASSERT_NE(B, nullptr);
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);

  uint64_t Embedded = tools::pdgEmbed(*M);
  ASSERT_GT(Embedded, 0u);
  ASSERT_TRUE(PDG::hasEmbedded(*M));

  // Through the textual printer and back: metadata, IDs, and the cache
  // blob must all survive.
  std::string Text = M->str();
  std::string Error;
  auto M2 = nir::parseModule(Ctx, Text, Error);
  ASSERT_NE(M2, nullptr) << Error;
  ASSERT_TRUE(PDG::hasEmbedded(*M2));

  PDGBuilder Cached(*M2);
  PDG &Loaded = Cached.getPDG();
  EXPECT_TRUE(Cached.wasPDGLoadedFromEmbedded());
  EXPECT_EQ(Loaded.getEdges().size(), Embedded);
  EXPECT_EQ(Loaded.getNumNodes(), M2->getNumInstructions());

  // The loaded graph is the graph a cold build on the reparsed module
  // computes.
  PDGBuilder Fresh(*M2, serialOpts());
  EXPECT_EQ(edgeKeysOf(Loaded), edgeKeysOf(Fresh.getPDG()));

  // Stats ride along.
  EXPECT_EQ(Loaded.getStats().MemoryPairsQueried,
            Fresh.getPDG().getStats().MemoryPairsQueried);
  EXPECT_EQ(Loaded.getStats().MemoryPairsDisproved,
            Fresh.getPDG().getStats().MemoryPairsDisproved);
}

TEST(PDGCacheTest, StaleHashRejectsEmbeddedPDG) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) { a[i] = i; s = s + a[i]; }
      return s;
    }
  )");
  tools::pdgEmbed(*M);
  ASSERT_TRUE(PDG::hasEmbedded(*M));

  // Metadata is annotation, not executable structure: annotation tools
  // (profile embedding, ID assignment) must compose with the cache, not
  // invalidate it.
  nir::Instruction *First = nullptr;
  for (const auto &F : M->getFunctions()) {
    if (F->isDeclaration())
      continue;
    First = F->getBlocks().front()->getInstList().front().get();
    break;
  }
  ASSERT_NE(First, nullptr);
  First->setMetadata("test.annotation", "1");
  EXPECT_NE(PDG::loadEmbedded(*M), nullptr);

  // A change to the executable structure — here a constant operand —
  // must invalidate the cache.
  nir::User *Mutated = nullptr;
  for (const auto &F : M->getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        for (unsigned Idx = 0; !Mutated && Idx < I->getNumOperands(); ++Idx)
          if (auto *C = nir::dyn_cast<nir::ConstantInt>(I->getOperand(Idx))) {
            Mutated = I.get();
            Mutated->setOperand(
                Idx, Ctx.getConstantInt(C->getType(), C->getValue() + 1));
          }
  ASSERT_NE(Mutated, nullptr);

  EXPECT_EQ(PDG::loadEmbedded(*M), nullptr);
  PDGBuilder Builder(*M);
  PDG &G = Builder.getPDG();
  EXPECT_FALSE(Builder.wasPDGLoadedFromEmbedded());
  EXPECT_EQ(G.getNumNodes(), M->getNumInstructions());

  // metaClean strips the stale blob.
  tools::metaClean(*M);
  EXPECT_FALSE(PDG::hasEmbedded(*M));
}

/// Regression: the memoized whole-program PDG used to survive
/// invalidation, leaving transforms reading a graph over freed
/// instructions. After a parallelizing transform reshapes the module,
/// a fresh getPDG must describe the *current* IR.
TEST(PDGCacheTest, InvalidationDropsStaleWholeProgramPDG) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int a[256];
    int main() {
      for (int i = 0; i < 256; i = i + 1) a[i] = i * 3;
      int s = 0;
      for (int i = 0; i < 256; i = i + 1) s = s + a[i];
      return s;
    }
  )");
  Noelle N(*M);
  uint64_t NodesBefore = N.getPDG().getNumNodes();
  EXPECT_EQ(NodesBefore, M->getNumInstructions());

  DOALLOptions Opts;
  Opts.NumCores = 2;
  DOALL Tool(N, Opts);
  Tool.run();

  // The transform outlined loop bodies into new task functions; the
  // memoized PDG would neither cover them nor drop the erased loops.
  EXPECT_EQ(N.getPDG().getNumNodes(), M->getNumInstructions());
  EXPECT_NE(N.getPDG().getNumNodes(), NodesBefore);
}

TEST(PDGCacheTest, PerFunctionInvalidationIsSelective) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int a[32];
    int touched() {
      int s = 0;
      for (int i = 0; i < 32; i = i + 1) s = s + a[i];
      return s;
    }
    int untouched() {
      int p = 1;
      for (int i = 1; i < 6; i = i + 1) p = p * i;
      return p;
    }
    int main() { return touched() + untouched(); }
  )");
  Noelle N(*M);
  nir::Function *Touched = M->getFunction("touched");
  nir::Function *Untouched = M->getFunction("untouched");
  ASSERT_NE(Touched, nullptr);
  ASSERT_NE(Untouched, nullptr);

  auto Loops = N.getLoopContents();
  ASSERT_EQ(Loops.size(), 2u);
  nir::LoopInfo *UntouchedLI = &N.getLoopInfo(*Untouched);
  LoopContent *UntouchedLC = nullptr;
  for (LoopContent *LC : Loops)
    if (LC->getLoopStructure().getFunction() == Untouched)
      UntouchedLC = LC;
  ASSERT_NE(UntouchedLC, nullptr);

  N.invalidate(*Touched);

  // The untouched function's analyses and loop bundle are the same
  // objects; the touched function's loops are re-discovered on demand.
  EXPECT_EQ(&N.getLoopInfo(*Untouched), UntouchedLI);
  auto After = N.getLoopContents();
  ASSERT_EQ(After.size(), 2u);
  bool UntouchedSurvived = false;
  for (LoopContent *LC : After)
    if (LC == UntouchedLC)
      UntouchedSurvived = true;
  EXPECT_TRUE(UntouchedSurvived);

  // Full invalidation rebuilds everything, same shape.
  N.invalidateAll();
  EXPECT_EQ(N.getLoopContents().size(), 2u);
}

} // namespace
