//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer smoke test for the optimizer pipeline's concurrent
/// surfaces. Two racy paths matter: PDG construction (the facade builds
/// per-function dependence graphs on worker threads), which the
/// pipeline drives repeatedly through LICM and the vectorizer's
/// invalidate-and-refetch loop; and concurrent execution of the
/// optimized module, where many host threads race the first decode of a
/// function that now contains vector instructions. Both run under
/// -fsanitize=thread here.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "opt/Passes.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace noelle;
using nir::ExecutionEngine;
using nir::RuntimeValue;

namespace {

/// The init loop packs into vector stores; @sum stays in the module
/// after the inliner copies it into @main, so worker threads can race
/// its first decode (vector loads included) after main() ran once.
const char *Src = R"(
int a[1024];
int b[1024];
int c[1024];
int sum(int lo, int hi) {
  int s = 0;
  for (int i = lo; i < hi; i = i + 1) s = s + c[i];
  return s;
}
int main() {
  for (int i = 0; i < 1024; i = i + 1) {
    a[i] = i;
    b[i] = 2 * i;
  }
  for (int i = 0; i < 1024; i = i + 1) c[i] = a[i] + b[i];
  return sum(0, 1024) % 1009;
}
)";

} // namespace

int main() {
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);

  // Leg 1: the pipeline itself (parallel PDG builds under TSan).
  opt::PipelineStats S = opt::runPipeline(*M);
  if (S.VectorInstsEmitted == 0) {
    std::fprintf(stderr, "expected the vectorizer to fire\n");
    return 1;
  }

  // Leg 2: concurrent execution of the optimized module. main() runs
  // once to initialize the globals; then 8 threads race the first
  // decode of @sum and read the arrays through vector loads.
  ExecutionEngine E(*M);
  const int64_t MainRet = E.runMain();
  const int64_t Expected = 3 * (1023 * 1024 / 2); // sum of c[i] = 3i
  if (MainRet != Expected % 1009) {
    std::fprintf(stderr, "main: got %lld\n", static_cast<long long>(MainRet));
    return 1;
  }

  nir::Function *Sum = M->getFunction("sum");
  if (!Sum || Sum->isDeclaration()) {
    std::fprintf(stderr, "@sum vanished from the module\n");
    return 1;
  }
  const int Threads = 8;
  std::vector<std::thread> Pool;
  std::vector<int64_t> Results(Threads, -1);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int Round = 0; Round < 10; ++Round) {
        RuntimeValue R = E.runFunction(
            Sum, {RuntimeValue::ofInt(0), RuntimeValue::ofInt(1024)});
        Results[T] = R.I;
      }
    });
  for (auto &T : Pool)
    T.join();
  for (int T = 0; T < Threads; ++T)
    if (Results[T] != Expected) {
      std::fprintf(stderr, "thread %d: got %lld want %lld\n", T,
                   static_cast<long long>(Results[T]),
                   static_cast<long long>(Expected));
      return 1;
    }
  std::printf("opt tsan smoke: ok\n");
  return 0;
}
