//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer cross-validation of the static race detector: for a
/// subset of suite kernels under each parallelizing transform, first
/// require the happens-before detector to certify the module race-clean,
/// then actually execute the parallel tasks on worker threads under
/// -fsanitize=thread and compare against the sequential result. A TSan
/// report (or a wrong result) on a statically-clean module would mean
/// the detector discharged a pair it should not have.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

/// Small, structurally diverse kernels: an array map (DOALL shape), a
/// recurrence (HELIX segments), and a pipeline (DSWP queues). Kept
/// small so three transforms x N kernels stay fast under TSan.
const char *Kernels[] = {"crc", "sha", "adpcm", "fft"};

int runOne(const bench::Benchmark &B, const std::string &Which) {
  int64_t Expected;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B.Source);
    ExecutionEngine E(*M);
    Expected = E.runMain();
  }

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
  Noelle N(*M);
  unsigned Parallelized = 0;
  if (Which == "doall") {
    DOALL Tool(N);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else if (Which == "helix") {
    HELIXOptions O;
    O.MinimumEstimatedSpeedup = 0;
    HELIX Tool(N, O);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else {
    DSWPOptions O;
    O.MinimumStageWeight = 0;
    DSWP Tool(N, O);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  }
  if (Parallelized == 0) {
    std::printf("race-tsan: %s/%s: nothing parallelized, skipping\n",
                B.Name, Which.c_str());
    return 0;
  }

  // Static certificate first: only execute modules the detector calls
  // race-free, so any TSan report indicts the detector.
  verify::CheckOptions CO;
  CO.RunVerifier = false;
  CO.RunLegality = false;
  verify::CheckReport Rep = verify::checkModule(*M, Snap, CO);
  if (Rep.count(verify::DiagKind::DataRace) != 0) {
    std::fprintf(stderr, "race-tsan: %s/%s: statically racy:\n%s",
                 B.Name, Which.c_str(), Rep.str().c_str());
    return 1;
  }

  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  int64_t Got = E.runMain();
  if (Got != Expected) {
    std::fprintf(stderr,
                 "race-tsan: %s/%s: parallel result %lld != sequential "
                 "%lld\n",
                 B.Name, Which.c_str(), (long long)Got,
                 (long long)Expected);
    return 1;
  }
  std::printf("race-tsan: %s/%s: ok (%u loops)\n", B.Name, Which.c_str(),
              Parallelized);
  return 0;
}

} // namespace

int main() {
  int Failures = 0;
  for (const char *Name : Kernels) {
    const bench::Benchmark *B = bench::findBenchmark(Name);
    if (!B) {
      std::fprintf(stderr, "race-tsan: unknown kernel %s\n", Name);
      return 1;
    }
    for (const char *Which : {"doall", "helix", "dswp"})
      Failures += runOne(*B, Which);
  }
  if (Failures) {
    std::fprintf(stderr, "race-tsan: %d configuration(s) failed\n",
                 Failures);
    return 1;
  }
  std::printf("race-tsan: all configurations clean\n");
  return 0;
}
