//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer smoke over the telemetry layer in isolation: many
/// writer threads hammer counters, histograms, gauges, and the trace
/// recorder while a snapshot thread concurrently merges shards and
/// renders JSON — the exact concurrency shape the instrumented pool
/// and runtime produce. After all writers join, totals must be exact:
/// the lock-free shard design is allowed to be racy in time, never in
/// count.
///
/// Compiled standalone with -fsanitize=thread (tests/CMakeLists.txt),
/// so tier-1 gets genuine TSan coverage of the registry without
/// instrumenting the whole library.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace telemetry = noelle::telemetry;

namespace {

void expect(bool Cond, const char *What) {
  if (!Cond) {
    std::fprintf(stderr, "FAILED: %s\n", What);
    std::exit(1);
  }
}

} // namespace

int main() {
  telemetry::setMode(telemetry::Mode::Trace); // trace implies metrics

  constexpr unsigned NumWriters = 8;
  constexpr uint64_t OpsPerWriter = 20000;
  std::atomic<bool> Stop{false};

  // Snapshot/render thread: races the writers on purpose. Snapshots may
  // observe any intermediate total but must never tear, crash, or race.
  std::thread Reader([&] {
    uint64_t Last = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      const auto Snap = telemetry::snapshotMetrics();
      const uint64_t Now = Snap.counter(telemetry::Counter::PoolTasksRun);
      expect(Now >= Last, "counter snapshot went backwards");
      Last = Now;
      (void)telemetry::metricsJson();
      (void)telemetry::traceJson();
    }
  });

  {
    std::vector<std::thread> Writers;
    for (unsigned W = 0; W < NumWriters; ++W)
      Writers.emplace_back([W] {
        for (uint64_t I = 0; I < OpsPerWriter; ++I) {
          telemetry::count(telemetry::Counter::PoolTasksRun);
          telemetry::count(telemetry::Counter::QueuePush, 2);
          telemetry::record(telemetry::Hist::DispatchNs, (W + 1) * 64 + I % 7);
          telemetry::gaugeAdd(telemetry::Gauge::PoolQueueDepth, 1);
          telemetry::gaugeAdd(telemetry::Gauge::PoolQueueDepth, -1);
          if (I % 1000 == 0) {
            const uint64_t T0 = telemetry::nowNs();
            telemetry::traceSpan("smoke.w" + std::to_string(W), T0,
                                 T0 + 100, {"iter", static_cast<int64_t>(I)});
          }
        }
      });
    for (auto &T : Writers)
      T.join(); // writer shards retire here
  }
  Stop.store(true, std::memory_order_release);
  Reader.join();

  const auto Snap = telemetry::snapshotMetrics();
  const uint64_t WantOps = NumWriters * OpsPerWriter;
  expect(Snap.counter(telemetry::Counter::PoolTasksRun) == WantOps,
         "tasks_run total is exact after join");
  expect(Snap.counter(telemetry::Counter::QueuePush) == 2 * WantOps,
         "queue_push total is exact after join");
  const auto *H = Snap.histogram(telemetry::Hist::DispatchNs);
  expect(H && H->Count == WantOps, "histogram count is exact after join");
  expect(telemetry::traceEventCount() ==
             NumWriters * (OpsPerWriter / 1000),
         "trace recorded every span");

  // Reset under no contention must leave a clean registry.
  telemetry::resetMetrics();
  telemetry::clearTrace();
  expect(telemetry::snapshotMetrics().counter(
             telemetry::Counter::PoolTasksRun) == 0,
         "reset zeroes counters");
  expect(telemetry::traceEventCount() == 0, "clear empties the trace");

  std::printf("telemetry tsan smoke: %u writers x %llu ops, totals exact\n",
              NumWriters, static_cast<unsigned long long>(OpsPerWriter));
  return 0;
}
