//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer smoke over the speculative DOALL runtime: plan a
/// kernel with speculation enabled, apply the plan, and execute it on
/// real worker threads under -fsanitize=thread — once on the profiled
/// input (commit path: journal writes, validation, ordered commit) and
/// once with the input flipped so every dispatch conflicts (rollback
/// path: journal discard, sequential re-execution). A TSan report on
/// either path indicts the write-log/commit protocol's synchronization.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "noelle/MemDepProfiler.h"
#include "noelle/Noelle.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/SpecDOALL.h"

#include <cstdio>
#include <string>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

/// Same seeded kernel the spec-suite uses: mode == 0 keeps iteration
/// writes disjoint (the profiled configuration); mode == 1 funnels every
/// iteration through data[0], so speculation must roll back.
const char *Src = R"(
  int mode;
  int data[2048];
  int main() {
    int total = 0;
    for (int r = 0; r < 8; r = r + 1) {
      for (int i = 0; i < 2048; i = i + 1) {
        int idx = i;
        if (mode > 0) idx = 0;
        data[idx] = data[idx] + i + r;
      }
      total = total + data[r];
    }
    return total % 100007;
  }
)";

int64_t runSequential(int64_t Mode) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  M->getGlobal("mode")->setInitWords({Mode});
  ExecutionEngine E(*M);
  return E.runMain();
}

} // namespace

int main() {
  int64_t SeqClean = runSequential(0);
  int64_t SeqFlipped = runSequential(1);

  // Profile on mode == 0, then plan with speculation enabled. Fall back
  // to the forced transform if the cost model declines — the smoke's
  // target is the runtime protocol under TSan, not the planner's
  // profitability call.
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  nir::assignDeterministicIDs(*M);
  profileMemDeps(*M).embed(*M);

  Noelle N(*M);
  planner::PlannerOptions PO;
  PO.MaxWorkers = 4;
  PO.EnableSpeculation = true;
  planner::Planner P(N, PO);
  planner::ProgramPlan Plan = P.plan();

  unsigned SpecApplied = 0;
  bool PlanHadSpec = false;
  for (const auto &En : Plan.Entries)
    PlanHadSpec |= En.Kind == TechniqueKind::SpecDOALL;
  if (PlanHadSpec) {
    for (const auto &D : P.apply(Plan))
      SpecApplied += D.Parallelized && D.Kind == TechniqueKind::SpecDOALL;
  } else {
    std::printf("spec-tsan: planner declined, forcing SpecDOALL\n");
    SpecDOALL Tool(N);
    for (const auto &D : Tool.run())
      SpecApplied += D.Parallelized && D.Kind == TechniqueKind::SpecDOALL;
  }
  if (SpecApplied == 0) {
    std::fprintf(stderr, "spec-tsan: no loop speculated\n");
    return 1;
  }

  // Commit path: profiled input, worker threads, journaled accesses.
  {
    ExecutionEngine E(*M);
    registerParallelRuntime(E);
    int64_t Got = E.runMain();
    if (Got != SeqClean) {
      std::fprintf(stderr,
                   "spec-tsan: commit path returned %lld, expected %lld\n",
                   (long long)Got, (long long)SeqClean);
      return 1;
    }
  }

  // Rollback path: flip the input so validation fails on every dispatch
  // and the sequential clone re-executes.
  M->getGlobal("mode")->setInitWords({1});
  {
    ExecutionEngine E(*M);
    registerParallelRuntime(E);
    int64_t Got = E.runMain();
    if (Got != SeqFlipped) {
      std::fprintf(stderr,
                   "spec-tsan: rollback path returned %lld, expected "
                   "%lld\n",
                   (long long)Got, (long long)SeqFlipped);
      return 1;
    }
  }

  std::printf("spec-tsan: commit and rollback paths clean (%u loops)\n",
              SpecApplied);
  return 0;
}
