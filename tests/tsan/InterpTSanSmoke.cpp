//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer smoke test for the interpreter's concurrent paths.
/// Built standalone (this file + the interpreter + the thread pool + the
/// IR core) with -fsanitize=thread, mirroring how the parallel runtime
/// uses the engine: many host threads entering the same ExecutionEngine
/// at once. The racy surfaces are the lock-free decode cache (first
/// decode of a function racing lookups of it), the atomic heap bump
/// allocator, the frame registry, the thread-local retired counters
/// flushing into the global count, and captured output.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "runtime/ThreadPool.h"

#include <cstdio>
#include <thread>
#include <vector>

using nir::Context;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;

static const char *Src = R"(
module "interp-tsan"
global @table : [64 x i64]

func @fill(%t: i64) -> i64 {
entry:
  %base = mul i64 %t, 8
  br label loop
loop:
  %i = phi i64 [0, entry], [%i.next, loop]
  %idx = add i64 %base, %i
  %p = gep @table, i64 %idx, scale 8
  store i64 %idx, %p
  %i.next = add i64 %i, 1
  %cond = cmp slt i64 %i.next, 8
  br %cond, label loop, label exit
exit:
  ret i64 %t
}

func @work(%n: i64, %t: i64) -> i64 {
entry:
  br label loop
loop:
  %i = phi i64 [0, entry], [%i.next, loop]
  %acc = phi i64 [0, entry], [%acc.next, loop]
  %sq = mul i64 %i, %i
  %acc.next = add i64 %acc, %sq
  %i.next = add i64 %i, 1
  %cond = cmp slt i64 %i.next, %n
  br %cond, label loop, label exit
exit:
  %f = call i64 @fill(i64 %t)
  ret i64 %acc.next
}
)";

int main() {
  Context Ctx;
  std::string Error;
  auto M = nir::parseModule(Ctx, Src, Error);
  if (!M) {
    std::fprintf(stderr, "parse failed: %s\n", Error.c_str());
    return 1;
  }
  ExecutionEngine E(*M);
  Function *Work = M->getFunction("work");

  // First decode of @work and @fill races with concurrent callers: the
  // decode-cache publish must synchronize with the lock-free readers.
  const int Threads = 8;
  const int64_t N = 2000;
  const int64_t Expected = (N - 1) * N * (2 * N - 1) / 6;
  std::vector<std::thread> Pool;
  std::vector<int64_t> Results(Threads, -1);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      ExecutionEngine::resetThreadRetired();
      for (int Round = 0; Round < 20; ++Round) {
        RuntimeValue R = E.runFunction(
            Work, {RuntimeValue::ofInt(N), RuntimeValue::ofInt(T)});
        Results[T] = R.I;
        // The heap allocator is an atomic bump pointer.
        if (E.heapAlloc(64) == 0)
          std::abort();
      }
      if (ExecutionEngine::readThreadRetired() == 0)
        std::abort();
    });
  for (auto &T : Pool)
    T.join();

  for (int T = 0; T < Threads; ++T)
    if (Results[T] != Expected) {
      std::fprintf(stderr, "thread %d: got %lld want %lld\n", T,
                   static_cast<long long>(Results[T]),
                   static_cast<long long>(Expected));
      return 1;
    }
  if (E.getInstructionsExecuted() == 0)
    return 1;
  std::printf("interp tsan smoke: ok\n");
  return 0;
}
