//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadSanitizer smoke test for the persistent work-stealing pool.
/// Built standalone (this file + ThreadPool.cpp) with -fsanitize=thread
/// so tier-1 always races the pool's synchronization under TSan without
/// instrumenting the whole library; a non-zero exit (TSan reports fail
/// the process by default) fails the ctest entry. The full library —
/// including the parallel PDG build — goes under TSan with
/// -DNOELLE_SANITIZE=thread.
///
/// The patterns mirror the pool's two real clients:
///  - run(): blocking batches, including batches submitted from inside a
///    worker (HELIX/DSWP dispatch nests).
///  - runIndependent(): fork/join analysis batches writing disjoint
///    slots that the caller merges afterwards (parallel PDG build).
///
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include <atomic>
#include <cstdio>
#include <numeric>
#include <vector>

using nir::ThreadPool;

int main() {
  ThreadPool Pool;

  // Fork/join batches: each job fills its own slot; the caller reads
  // every slot after runIndependent returns. Any missing happens-before
  // edge between a worker's write and the caller's read is a TSan hit.
  for (int Round = 0; Round < 20; ++Round) {
    constexpr size_t N = 64;
    std::vector<uint64_t> Slots(N, 0);
    std::vector<ThreadPool::Job> Jobs;
    for (size_t I = 0; I < N; ++I)
      Jobs.push_back([&Slots, I] { Slots[I] = I * I; });
    Pool.runIndependent(std::move(Jobs), 4);
    uint64_t Sum = std::accumulate(Slots.begin(), Slots.end(), uint64_t{0});
    uint64_t Expect = (N - 1) * N * (2 * N - 1) / 6;
    if (Sum != Expect) {
      std::fprintf(stderr, "slot merge mismatch: %llu != %llu\n",
                   (unsigned long long)Sum, (unsigned long long)Expect);
      return 1;
    }
  }

  // Blocking batches with nesting: outer jobs submit inner batches from
  // worker threads, exercising pool growth and the latch lifetime.
  std::atomic<uint64_t> Counter{0};
  std::vector<ThreadPool::Job> Outer;
  for (int I = 0; I < 8; ++I)
    Outer.push_back([&Pool, &Counter] {
      std::vector<ThreadPool::Job> Inner;
      for (int J = 0; J < 8; ++J)
        Inner.push_back([&Counter] {
          Counter.fetch_add(1, std::memory_order_relaxed);
        });
      Pool.run(std::move(Inner));
    });
  Pool.run(std::move(Outer));
  if (Counter.load() != 64) {
    std::fprintf(stderr, "nested batch count mismatch: %llu\n",
                 (unsigned long long)Counter.load());
    return 1;
  }

  std::printf("tsan smoke ok: %llu threads created, %llu batches\n",
              (unsigned long long)Pool.getThreadsCreated(),
              (unsigned long long)Pool.getBatchesRun());
  return 0;
}
