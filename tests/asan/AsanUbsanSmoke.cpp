//===----------------------------------------------------------------------===//
///
/// \file
/// AddressSanitizer + UBSanitizer smoke test over the IR core and the
/// dominance verifier. Built standalone (this file + src/ir + the
/// dominator analysis) with -fsanitize=address,undefined so tier-1
/// always exercises the ownership-heavy IR layer — instruction clone and
/// erase, operand/use bookkeeping, block insertion, and the
/// DominatorTree the verifier now builds per function — under both
/// sanitizers without instrumenting the whole library. A non-zero exit
/// (sanitizer reports abort by default) fails the ctest entry. The full
/// library goes under ASan/UBSan with -DNOELLE_SANITIZE=address,undefined.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <cstdio>

using namespace nir;

int main() {
  Context Ctx;
  Module M(Ctx, "asan-smoke");

  // A diamond with a phi: builds, clones, mutates, erases, verifies.
  Function *F = M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Merge = F->createBlock("merge");

  IRBuilder B(Ctx, Entry);
  Value *Cond =
      B.createCmp(CmpInst::Pred::SLT, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Then, Else);

  B.setInsertPoint(Then);
  Value *A = B.createAdd(Ctx.getInt64(40), Ctx.getInt64(2), "a");
  B.createBr(Merge);

  B.setInsertPoint(Else);
  Value *Bv = B.createMul(Ctx.getInt64(6), Ctx.getInt64(7), "b");
  B.createBr(Merge);

  B.setInsertPoint(Merge);
  PhiInst *Phi = B.createPhi(Ctx.getInt64Ty(), "m");
  Phi->addIncoming(A, Then);
  Phi->addIncoming(Bv, Else);
  Value *Dead = B.createAdd(Phi, Ctx.getInt64(0), "dead");
  Value *Live = B.createAdd(Phi, Ctx.getInt64(1), "live");
  B.createRet(Live);

  if (!moduleVerifies(M)) {
    std::fprintf(stderr, "asan-smoke: fresh module failed verification\n");
    return 1;
  }

  // Clone + metadata churn (the paths the parallelizers hammer).
  for (const auto &BB : F->getBlocks())
    for (const auto &I : BB->getInstList()) {
      Instruction *C = I->clone();
      C->setMetadata("smoke.key", "value");
      C->removeMetadata("smoke.key");
      delete C;
    }

  // Erase an unused instruction, then stress use-list bookkeeping.
  if (auto *DeadInst = dyn_cast<Instruction>(Dead))
    DeadInst->eraseFromParent();
  if (!moduleVerifies(M)) {
    std::fprintf(stderr, "asan-smoke: module failed verification after "
                         "erase\n");
    return 1;
  }

  // Break SSA on purpose: the dominance verifier must report, not crash.
  B.setInsertPoint(Entry);
  // (A is defined in 'then'; using it in 'entry' violates dominance. The
  // builder appends after the terminator-less point, so rebuild entry.)
  Value *Bad = B.createAdd(A, Ctx.getInt64(1), "bad");
  (void)Bad;
  if (verifyModule(M).empty()) {
    std::fprintf(stderr, "asan-smoke: dominance violation not reported\n");
    return 1;
  }

  std::printf("asan-smoke: ok\n");
  return 0;
}
