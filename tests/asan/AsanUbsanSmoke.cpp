//===----------------------------------------------------------------------===//
///
/// \file
/// AddressSanitizer + UBSanitizer smoke test over the IR core and the
/// dominance verifier. Built standalone (this file + src/ir + the
/// dominator analysis) with -fsanitize=address,undefined so tier-1
/// always exercises the ownership-heavy IR layer — instruction clone and
/// erase, operand/use bookkeeping, block insertion, and the
/// DominatorTree the verifier now builds per function — under both
/// sanitizers without instrumenting the whole library. A non-zero exit
/// (sanitizer reports abort by default) fails the ctest entry. The full
/// library goes under ASan/UBSan with -DNOELLE_SANITIZE=address,undefined.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <cstdio>

using namespace nir;

/// Interpreter leg: decode (both optimization levels) and execute (every
/// dispatch tier) a program that stresses the frame and memory paths —
/// alloca'd scratch, byte-wide global accesses, recursion, and the heap
/// allocator — under ASan/UBSan.
static int runInterpreterSmoke() {
  Context Ctx;
  std::string Error;
  auto M = parseModule(Ctx, R"(
module "interp-asan"
global @bytes : [32 x i8]

func @touch(%n: i64) -> i64 {
entry:
  %c = cmp sle i64 %n, 0
  br %c, label base, label rec
base:
  ret i64 0
rec:
  %i = sub i64 %n, 1
  %p = gep @bytes, i64 %i, scale 1
  %t = trunc i64 %n to i8
  store i8 %t, %p
  %v = load i8, %p
  %ve = zext i8 %v to i64
  %sub = call i64 @touch(i64 %i)
  %r = add i64 %ve, %sub
  ret i64 %r
}
)",
                       Error);
  if (!M) {
    std::fprintf(stderr, "asan-smoke: interp parse failed: %s\n",
                 Error.c_str());
    return 1;
  }
  for (bool Opt : {true, false})
    for (auto Mode : {ExecutionEngine::DispatchMode::Threaded,
                      ExecutionEngine::DispatchMode::Switch}) {
      ExecutionEngine::Options O;
      O.DecodeOpt = Opt;
      O.Dispatch = Mode;
      ExecutionEngine E(*M, O);
      RuntimeValue R =
          E.runFunction(M->getFunction("touch"), {RuntimeValue::ofInt(32)});
      if (R.I != 32 * 33 / 2) {
        std::fprintf(stderr, "asan-smoke: interp got %lld\n",
                     static_cast<long long>(R.I));
        return 1;
      }
      if (E.heapAlloc(128) == 0 || !E.isValidAddress(E.heapAlloc(8), 8)) {
        std::fprintf(stderr, "asan-smoke: heap alloc failed\n");
        return 1;
      }
    }
  return 0;
}

int main() {
  Context Ctx;
  Module M(Ctx, "asan-smoke");

  // A diamond with a phi: builds, clones, mutates, erases, verifies.
  Function *F = M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Merge = F->createBlock("merge");

  IRBuilder B(Ctx, Entry);
  Value *Cond =
      B.createCmp(CmpInst::Pred::SLT, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Then, Else);

  B.setInsertPoint(Then);
  Value *A = B.createAdd(Ctx.getInt64(40), Ctx.getInt64(2), "a");
  B.createBr(Merge);

  B.setInsertPoint(Else);
  Value *Bv = B.createMul(Ctx.getInt64(6), Ctx.getInt64(7), "b");
  B.createBr(Merge);

  B.setInsertPoint(Merge);
  PhiInst *Phi = B.createPhi(Ctx.getInt64Ty(), "m");
  Phi->addIncoming(A, Then);
  Phi->addIncoming(Bv, Else);
  Value *Dead = B.createAdd(Phi, Ctx.getInt64(0), "dead");
  Value *Live = B.createAdd(Phi, Ctx.getInt64(1), "live");
  B.createRet(Live);

  if (!moduleVerifies(M)) {
    std::fprintf(stderr, "asan-smoke: fresh module failed verification\n");
    return 1;
  }

  // Clone + metadata churn (the paths the parallelizers hammer).
  for (const auto &BB : F->getBlocks())
    for (const auto &I : BB->getInstList()) {
      Instruction *C = I->clone();
      C->setMetadata("smoke.key", "value");
      C->removeMetadata("smoke.key");
      delete C;
    }

  // Erase an unused instruction, then stress use-list bookkeeping.
  if (auto *DeadInst = dyn_cast<Instruction>(Dead))
    DeadInst->eraseFromParent();
  if (!moduleVerifies(M)) {
    std::fprintf(stderr, "asan-smoke: module failed verification after "
                         "erase\n");
    return 1;
  }

  // Break SSA on purpose: the dominance verifier must report, not crash.
  B.setInsertPoint(Entry);
  // (A is defined in 'then'; using it in 'entry' violates dominance. The
  // builder appends after the terminator-less point, so rebuild entry.)
  Value *Bad = B.createAdd(A, Ctx.getInt64(1), "bad");
  (void)Bad;
  if (verifyModule(M).empty()) {
    std::fprintf(stderr, "asan-smoke: dominance violation not reported\n");
    return 1;
  }

  if (int Rc = runInterpreterSmoke())
    return Rc;

  std::printf("asan-smoke: ok\n");
  return 0;
}
