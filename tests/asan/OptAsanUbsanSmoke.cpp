//===----------------------------------------------------------------------===//
///
/// \file
/// AddressSanitizer + UBSanitizer smoke test over the optimizer
/// pipeline. Built standalone (this file + the IR core, analyses, the
/// Noelle facade, the frontend, the benchmark suite, and src/opt) with
/// -fsanitize=address,undefined, so tier-1 exercises the pipeline's
/// ownership-heavy mechanics — call-site splitting and body cloning in
/// the inliner, block erasure in the unroller's chain merge, the
/// vectorizer's erase-and-refetch of PDG nodes — under both sanitizers.
/// Each optimized kernel also executes, and its return value and output
/// must match the unoptimized run.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"

#include <cstdio>
#include <string>

using namespace noelle;

namespace {

/// Runs one kernel scalar and pipelined; returns false on divergence.
bool checkKernel(const bench::Benchmark &B) {
  nir::Context ScalarCtx;
  auto ScalarM = minic::compileMiniCOrDie(ScalarCtx, B.Source);
  nir::ExecutionEngine ScalarE(*ScalarM);
  const int64_t ScalarRet = ScalarE.runMain();

  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  opt::PipelineStats S = opt::runPipeline(*M);
  if (!nir::moduleVerifies(*M)) {
    std::fprintf(stderr, "%s: optimized module does not verify\n",
                 B.Name.c_str());
    return false;
  }
  nir::ExecutionEngine E(*M);
  const int64_t Ret = E.runMain();
  if (Ret != ScalarRet || E.getOutput() != ScalarE.getOutput()) {
    std::fprintf(stderr, "%s: pipeline changed behavior (ret %lld vs %lld)\n",
                 B.Name.c_str(), static_cast<long long>(Ret),
                 static_cast<long long>(ScalarRet));
    return false;
  }
  std::printf("%-14s ok (inlined=%llu unrolled=%llu vector=%llu)\n",
              B.Name.c_str(), static_cast<unsigned long long>(S.CallsInlined),
              static_cast<unsigned long long>(S.LoopsUnrolled),
              static_cast<unsigned long long>(S.VectorInstsEmitted));
  return true;
}

} // namespace

int main() {
  // A handful of kernels keeps the sanitized run fast while still
  // lighting up every pass (the first six include vectorizable loops,
  // inlinable helpers, and loop nests the unroller skips).
  const auto &Suite = bench::getBenchmarkSuite();
  const size_t N = Suite.size() < 6 ? Suite.size() : 6;
  bool AllOk = true;
  for (size_t K = 0; K < N; ++K)
    AllOk = checkKernel(Suite[K]) && AllOk;
  if (!AllOk)
    return 1;
  std::printf("opt asan+ubsan smoke: ok\n");
  return 0;
}
