//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the noelle-check static verification layer: clean transforms
/// produce clean reports, every hand-seeded violation class is caught with
/// the expected diagnostic kind, the dominance-based SSA verifier rejects
/// use-before-def, and the dataflow lints fire on their target patterns.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "verify/CheckMetadata.h"
#include "verify/NoelleCheck.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::BasicBlock;
using nir::CallInst;
using nir::CmpInst;
using nir::ConstantInt;
using nir::Context;
using nir::Function;
using nir::Instruction;
using nir::IRBuilder;
using nir::PhiInst;

namespace {

//===----------------------------------------------------------------------===//
// Harness: compile, snapshot, transform, check.
//===----------------------------------------------------------------------===//

struct Checked {
  std::unique_ptr<nir::Module> M;
  verify::PreTransformSnapshot Snap;
  unsigned Parallelized = 0;
};

Checked transform(Context &Ctx, const char *Src, const std::string &Which,
                  unsigned Cores = 4) {
  Checked C;
  C.M = minic::compileMiniCOrDie(Ctx, Src);
  C.Snap = verify::captureForCheck(*C.M);
  Noelle N(*C.M);
  if (Which == "doall") {
    DOALLOptions O;
    O.NumCores = Cores;
    DOALL Tool(N, O);
    for (const auto &D : Tool.run())
      C.Parallelized += D.Parallelized;
  } else if (Which == "helix") {
    HELIXOptions O;
    O.NumCores = Cores;
    O.MinimumEstimatedSpeedup = 0;
    HELIX Tool(N, O);
    for (const auto &D : Tool.run())
      C.Parallelized += D.Parallelized;
  } else {
    DSWPOptions O;
    O.NumCores = Cores;
    O.MinimumStageWeight = 0;
    DSWP Tool(N, O);
    for (const auto &D : Tool.run())
      C.Parallelized += D.Parallelized;
  }
  return C;
}

/// Task functions of \p M carrying the given transform-kind metadata.
std::vector<Function *> tasksOfKind(nir::Module &M, const std::string &Kind) {
  std::vector<Function *> Out;
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration() && F->getMetadata(verify::TaskKindKey) == Kind)
      Out.push_back(F.get());
  return Out;
}

/// All calls to \p Callee inside \p F.
std::vector<CallInst *> callsTo(Function &F, const std::string &Callee) {
  std::vector<CallInst *> Out;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (auto *CI = nir::dyn_cast<CallInst>(I.get()))
        if (Function *Target = CI->getCalledFunction())
          if (Target->getName() == Callee)
            Out.push_back(CI);
  return Out;
}

const char *SumReductionSrc = R"(
  int a[256];
  int main() {
    for (int i = 0; i < 256; i = i + 1) a[i] = i % 17;
    int sum = 0;
    for (int i = 0; i < 256; i = i + 1) sum = sum + a[i];
    return sum;
  }
)";

const char *HelixRecurrenceSrc = R"(
  int state[1];
  int out[256];
  int main() {
    state[0] = 7;
    for (int i = 0; i < 256; i = i + 1) {
      int s = state[0];
      state[0] = (s * 1103515245 + 12345) % 2147483647;
      int heavy = 0;
      int base = i * 17;
      heavy = heavy + (base * base) % 1013;
      heavy = heavy + ((base + 3) * (base + 7)) % 2027;
      out[i] = s % 1000 + heavy;
    }
    int total = 0;
    for (int i = 0; i < 256; i = i + 1) total = total + out[i];
    return total % 1000003;
  }
)";

const char *DswpPipelineSrc = R"(
  int src[512];
  int main() {
    for (int i = 0; i < 512; i = i + 1) src[i] = (i * 37 + 11) % 101;
    int x = 1;
    int y = 0;
    for (int i = 0; i < 512; i = i + 1) {
      x = (x * 13 + src[i]) % 65537;
      y = (y + x * 3) % 39916801;
    }
    return y;
  }
)";

//===----------------------------------------------------------------------===//
// Clean transforms produce clean reports (no false positives).
//===----------------------------------------------------------------------===//

TEST(VerifyTest, CleanDOALLReductionReportsNothing) {
  Context Ctx;
  Checked C = transform(Ctx, SumReductionSrc, "doall");
  ASSERT_GE(C.Parallelized, 1u);
  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_TRUE(Rep.clean()) << Rep.str();
}

TEST(VerifyTest, CleanHELIXRecurrenceReportsNothing) {
  Context Ctx;
  Checked C = transform(Ctx, HelixRecurrenceSrc, "helix");
  ASSERT_GE(C.Parallelized, 1u);
  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_TRUE(Rep.clean()) << Rep.str();
}

TEST(VerifyTest, CleanDSWPPipelineReportsNothing) {
  Context Ctx;
  Checked C = transform(Ctx, DswpPipelineSrc, "dswp", 2);
  ASSERT_GE(C.Parallelized, 1u);
  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_TRUE(Rep.clean()) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Seeded violations: each class is caught with the expected kind.
//===----------------------------------------------------------------------===//

TEST(VerifyTest, DroppedSsWaitIsCaught) {
  Context Ctx;
  Checked C = transform(Ctx, HelixRecurrenceSrc, "helix");
  ASSERT_GE(C.Parallelized, 1u);

  // Break one task: remove every sequential-segment entry gate it takes.
  std::vector<Function *> Tasks = tasksOfKind(*C.M, "helix");
  ASSERT_FALSE(Tasks.empty());
  std::vector<CallInst *> Waits = callsTo(*Tasks.front(), "noelle_ss_wait");
  ASSERT_FALSE(Waits.empty());
  for (CallInst *W : Waits)
    W->eraseFromParent();

  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Rep.count(verify::DiagKind::UnprotectedDependence), 1u)
      << Rep.str();
}

TEST(VerifyTest, UnpairedQueuePopIsCaught) {
  Context Ctx;
  Checked C = transform(Ctx, DswpPipelineSrc, "dswp", 2);
  ASSERT_GE(C.Parallelized, 1u);

  // Break the pipeline: delete every producer push of stage 0, leaving
  // the consumer's pops with no matching source.
  std::vector<Function *> Stages = tasksOfKind(*C.M, "dswp-stage");
  ASSERT_GE(Stages.size(), 2u);
  bool Erased = false;
  for (Function *Stage : Stages) {
    std::vector<CallInst *> Pushes = callsTo(*Stage, "noelle_queue_push");
    for (CallInst *P : Pushes) {
      P->eraseFromParent();
      Erased = true;
    }
    if (Erased)
      break;
  }
  ASSERT_TRUE(Erased);

  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Rep.count(verify::DiagKind::UnmatchedQueuePop), 1u) << Rep.str();
}

TEST(VerifyTest, UnprivatizedAccumulatorIsCaught) {
  Context Ctx;
  Checked C = transform(Ctx, SumReductionSrc, "doall");
  ASSERT_GE(C.Parallelized, 1u);

  // Break a reduction: make the task accumulator start from 1 instead of
  // the operator identity 0 (workers would each add a phantom 1).
  std::vector<Function *> Tasks = tasksOfKind(*C.M, "doall");
  ASSERT_FALSE(Tasks.empty());
  bool Corrupted = false;
  for (Function *T : Tasks) {
    BasicBlock &Entry = T->getEntryBlock();
    for (const auto &BB : T->getBlocks()) {
      for (const auto &I : BB->getInstList()) {
        auto *Phi = nir::dyn_cast<PhiInst>(I.get());
        if (!Phi)
          continue;
        for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
          if (Phi->getIncomingBlock(K) != &Entry)
            continue;
          auto *CI = nir::dyn_cast<ConstantInt>(Phi->getIncomingValue(K));
          if (CI && CI->getValue() == 0) {
            Phi->setIncomingValue(K, Ctx.getInt64(1));
            Corrupted = true;
          }
        }
      }
    }
    if (Corrupted)
      break;
  }
  ASSERT_TRUE(Corrupted);

  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Rep.count(verify::DiagKind::UnprivatizedAccumulator), 1u)
      << Rep.str();
}

//===----------------------------------------------------------------------===//
// Dominance-based SSA verification (nir::verifyModule extension).
//===----------------------------------------------------------------------===//

TEST(VerifyTest, UseBeforeDefAcrossBlocksIsCaught) {
  // entry --cond--> side | merge; 'side' defines %d; 'merge' uses %d.
  // The definition does not dominate the use.
  Context Ctx;
  nir::Module M(Ctx, "broken");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Merge = F->createBlock("merge");

  IRBuilder B(Ctx, Entry);
  nir::Value *Cond =
      B.createCmp(CmpInst::Pred::EQ, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Side, Merge);

  B.setInsertPoint(Side);
  nir::Value *D = B.createAdd(Ctx.getInt64(1), Ctx.getInt64(2), "d");
  B.createBr(Merge);

  B.setInsertPoint(Merge);
  nir::Value *U = B.createAdd(D, Ctx.getInt64(1), "u");
  B.createRet(U);

  std::vector<std::string> Errs = nir::verifyModule(M);
  ASSERT_FALSE(Errs.empty());
  bool Found = false;
  for (const std::string &E : Errs)
    Found = Found || E.find("not dominated") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(VerifyTest, DiamondWithPhiVerifies) {
  // The same CFG becomes legal when 'merge' receives %d through a phi
  // whose other edge carries a constant.
  Context Ctx;
  nir::Module M(Ctx, "diamond");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Merge = F->createBlock("merge");

  IRBuilder B(Ctx, Entry);
  nir::Value *Cond =
      B.createCmp(CmpInst::Pred::EQ, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Side, Merge);

  B.setInsertPoint(Side);
  nir::Value *D = B.createAdd(Ctx.getInt64(1), Ctx.getInt64(2), "d");
  B.createBr(Merge);

  B.setInsertPoint(Merge);
  PhiInst *Phi = B.createPhi(Ctx.getInt64Ty(), "m");
  Phi->addIncoming(D, Side);
  Phi->addIncoming(Ctx.getInt64(0), Entry);
  B.createRet(Phi);

  EXPECT_TRUE(nir::moduleVerifies(M)) << nir::verifyModule(M).front();
}

TEST(VerifyTest, PhiUsingValueFromWrongEdgeIsCaught) {
  // The phi routes %d along the entry edge, where it was never computed.
  Context Ctx;
  nir::Module M(Ctx, "wrongedge");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Merge = F->createBlock("merge");

  IRBuilder B(Ctx, Entry);
  nir::Value *Cond =
      B.createCmp(CmpInst::Pred::EQ, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Side, Merge);

  B.setInsertPoint(Side);
  nir::Value *D = B.createAdd(Ctx.getInt64(1), Ctx.getInt64(2), "d");
  B.createBr(Merge);

  B.setInsertPoint(Merge);
  PhiInst *Phi = B.createPhi(Ctx.getInt64Ty(), "m");
  Phi->addIncoming(Ctx.getInt64(0), Side);
  Phi->addIncoming(D, Entry); // %d does not dominate entry's terminator
  B.createRet(Phi);

  std::vector<std::string> Errs = nir::verifyModule(M);
  ASSERT_FALSE(Errs.empty());
  bool Found = false;
  for (const std::string &E : Errs)
    Found = Found || E.find("incoming edge") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(VerifyTest, TransformedModulesStillSatisfyDominance) {
  // The stronger verifier must not reject what the parallelizers emit.
  for (const char *Which : {"doall", "helix", "dswp"}) {
    Context Ctx;
    Checked C = transform(Ctx, DswpPipelineSrc, Which, 2);
    std::vector<std::string> Errs = nir::verifyModule(*C.M);
    EXPECT_TRUE(Errs.empty())
        << Which << ": " << (Errs.empty() ? "" : Errs.front());
  }
}

//===----------------------------------------------------------------------===//
// Dataflow lint pack.
//===----------------------------------------------------------------------===//

TEST(VerifyTest, LintFlagsUninitializedRead) {
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  IRBuilder B(Ctx, F->createBlock("entry"));
  nir::Value *Slot = B.createAlloca(Ctx.getInt64Ty(), "slot");
  nir::Value *V = B.createLoad(Ctx.getInt64Ty(), Slot, "v");
  B.createRet(V);

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_GE(Rep.count(verify::DiagKind::UninitializedRead), 1u) << Rep.str();
}

TEST(VerifyTest, LintAcceptsStoreBeforeLoad) {
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  IRBuilder B(Ctx, F->createBlock("entry"));
  nir::Value *Slot = B.createAlloca(Ctx.getInt64Ty(), "slot");
  B.createStore(Ctx.getInt64(42), Slot);
  nir::Value *V = B.createLoad(Ctx.getInt64Ty(), Slot, "v");
  B.createRet(V);

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_EQ(Rep.count(verify::DiagKind::UninitializedRead), 0u) << Rep.str();
}

TEST(VerifyTest, LintFlagsStoreOnlyOnOnePath) {
  // entry --cond--> init | use; only the 'init' path stores.
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Init = F->createBlock("init");
  BasicBlock *Use = F->createBlock("use");

  IRBuilder B(Ctx, Entry);
  nir::Value *Slot = B.createAlloca(Ctx.getInt64Ty(), "slot");
  nir::Value *Cond =
      B.createCmp(CmpInst::Pred::EQ, Ctx.getInt64(1), Ctx.getInt64(2), "c");
  B.createCondBr(Cond, Init, Use);

  B.setInsertPoint(Init);
  B.createStore(Ctx.getInt64(7), Slot);
  B.createBr(Use);

  B.setInsertPoint(Use);
  nir::Value *V = B.createLoad(Ctx.getInt64Ty(), Slot, "v");
  B.createRet(V);

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_GE(Rep.count(verify::DiagKind::UninitializedRead), 1u) << Rep.str();
}

TEST(VerifyTest, LintFlagsDeadStore) {
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  IRBuilder B(Ctx, F->createBlock("entry"));
  nir::Value *Slot = B.createAlloca(Ctx.getInt64Ty(), "slot");
  B.createStore(Ctx.getInt64(42), Slot); // never read
  B.createRet(Ctx.getInt64(0));

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_GE(Rep.count(verify::DiagKind::DeadStore), 1u) << Rep.str();
}

TEST(VerifyTest, LintFlagsUncheckedHeapHandle) {
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *Malloc = M.createFunction(
      Ctx.getFunctionTy(Ctx.getPtrTy(), {Ctx.getInt64Ty()}), "malloc");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  IRBuilder B(Ctx, F->createBlock("entry"));
  nir::Value *P = B.createCall(Malloc, {Ctx.getInt64(8)}, "p");
  nir::Value *V = B.createLoad(Ctx.getInt64Ty(), P, "v"); // no null check
  B.createRet(V);

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_GE(Rep.count(verify::DiagKind::NullDeref), 1u) << Rep.str();
}

TEST(VerifyTest, LintAcceptsNullCheckedHeapHandle) {
  Context Ctx;
  nir::Module M(Ctx, "lint");
  Function *Malloc = M.createFunction(
      Ctx.getFunctionTy(Ctx.getPtrTy(), {Ctx.getInt64Ty()}), "malloc");
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Ok = F->createBlock("ok");
  BasicBlock *Fail = F->createBlock("fail");

  IRBuilder B(Ctx, Entry);
  nir::Value *P = B.createCall(Malloc, {Ctx.getInt64(8)}, "p");
  nir::Value *IsNull =
      B.createCmp(CmpInst::Pred::EQ, P, Ctx.getInt64(0), "isnull");
  B.createCondBr(IsNull, Fail, Ok);

  B.setInsertPoint(Fail);
  B.createRet(Ctx.getInt64(-1));

  B.setInsertPoint(Ok);
  nir::Value *V = B.createLoad(Ctx.getInt64Ty(), P, "v");
  B.createRet(V);

  verify::CheckReport Rep;
  verify::lintModule(M, verify::LintOptions{}, Rep);
  EXPECT_EQ(Rep.count(verify::DiagKind::NullDeref), 0u) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Race detector: a task writing a fixed shared slot races with itself.
//===----------------------------------------------------------------------===//

TEST(VerifyTest, QueueHappensBeforeDischargesCrossStagePair) {
  // Seed a W/R pair across DSWP stages that only the queue
  // happens-before rule can discharge: the producer writes a fresh
  // global before any of its pushes, the consumer reads it after its
  // first pop. The instructions carry no provenance, so the PDG cannot
  // ground them; points-to says they alias; with the queue-HB rule off
  // the pair must surface as a race, with it on the report stays clean.
  Context Ctx;
  Checked C = transform(Ctx, DswpPipelineSrc, "dswp", 2);
  ASSERT_GE(C.Parallelized, 1u);

  std::vector<Function *> Stages = tasksOfKind(*C.M, "dswp-stage");
  ASSERT_GE(Stages.size(), 2u);
  Function *Producer = nullptr;
  Function *Consumer = nullptr;
  for (Function *S : Stages) {
    bool Pushes = !callsTo(*S, "noelle_queue_push").empty();
    bool Pops = !callsTo(*S, "noelle_queue_pop").empty();
    if (Pushes && !Pops)
      Producer = S;
    if (Pops)
      Consumer = S;
  }
  ASSERT_NE(Producer, nullptr);
  ASSERT_NE(Consumer, nullptr);
  ASSERT_NE(Producer, Consumer);

  nir::GlobalVariable *G =
      C.M->createGlobal(Ctx.getInt64Ty(), "seeded_hb_slot");
  IRBuilder B(Ctx);
  // The store precedes every push: it sits in the producer's entry
  // block, which no push can reach again.
  B.setInsertPoint(Producer->getEntryBlock().getInstList().front().get());
  B.createStore(Ctx.getInt64(1), G);
  // The load is dominated by the consumer's first pop.
  std::vector<CallInst *> Pops = callsTo(*Consumer, "noelle_queue_pop");
  ASSERT_FALSE(Pops.empty());
  CallInst *Pop = Pops.front();
  BasicBlock *PB = Pop->getParent();
  Instruction *After = nullptr;
  for (auto It = PB->getInstList().begin(); It != PB->getInstList().end();
       ++It)
    if (It->get() == Pop) {
      After = std::next(It)->get();
      break;
    }
  ASSERT_NE(After, nullptr);
  B.setInsertPoint(After);
  B.createLoad(Ctx.getInt64Ty(), G, "seeded.hb.read");

  verify::CheckReport On = verify::checkModule(*C.M, C.Snap);
  EXPECT_EQ(On.count(verify::DiagKind::DataRace), 0u) << On.str();

  verify::CheckOptions NoHB;
  NoHB.Races.UseQueueHB = false;
  verify::CheckReport Off = verify::checkModule(*C.M, C.Snap, NoHB);
  EXPECT_GE(Off.count(verify::DiagKind::DataRace), 1u) << Off.str();
}

TEST(VerifyTest, SharedSlotWriteInDoallTaskIsARace) {
  Context Ctx;
  Checked C = transform(Ctx, SumReductionSrc, "doall");
  ASSERT_GE(C.Parallelized, 1u);

  // Seed a conflict: every worker stores its task ID to env slot 0.
  std::vector<Function *> Tasks = tasksOfKind(*C.M, "doall");
  ASSERT_FALSE(Tasks.empty());
  Function *T = Tasks.front();
  BasicBlock &Entry = T->getEntryBlock();
  ASSERT_FALSE(Entry.getInstList().empty());
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry.getInstList().front().get());
  nir::Value *Slot =
      B.createGEP(T->getArg(0), Ctx.getInt64(0), 8, "seeded.slot");
  B.createStore(T->getArg(1), Slot);

  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Rep.count(verify::DiagKind::DataRace), 1u) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Happens-before engine: seeded violations per discharge rule, each with
// a legal counterpart that checks clean.
//===----------------------------------------------------------------------===//

/// The producer stage (pushes, never pops) and a consumer stage (pops)
/// of a 2-stage DSWP pipeline.
void findPipelineEnds(nir::Module &M, Function *&Producer,
                      Function *&Consumer) {
  Producer = Consumer = nullptr;
  for (Function *S : tasksOfKind(M, "dswp-stage")) {
    bool Pushes = !callsTo(*S, "noelle_queue_push").empty();
    bool Pops = !callsTo(*S, "noelle_queue_pop").empty();
    if (Pushes && !Pops)
      Producer = S;
    if (Pops && !Pushes)
      Consumer = S;
  }
}

/// The instruction immediately after \p I in its block (null at the end).
Instruction *instAfter(Instruction *I) {
  BasicBlock *BB = I->getParent();
  for (auto It = BB->getInstList().begin(); It != BB->getInstList().end();
       ++It)
    if (It->get() == I) {
      auto Next = std::next(It);
      return Next == BB->getInstList().end() ? nullptr : Next->get();
    }
  return nullptr;
}

/// True if \p P walks through GEPs to the global named \p Name.
bool rootsAtGlobal(const nir::Value *P, const std::string &Name) {
  while (const auto *G = nir::dyn_cast<nir::GEPInst>(P))
    P = G->getBase();
  const auto *GV = nir::dyn_cast<nir::GlobalVariable>(P);
  return GV && GV->getName() == Name;
}

TEST(VerifyTest, SecondProducerOnJoinedQueueIsCaught) {
  // Legal counterpart first: the queue-HB seeding (store before the
  // producer's pushes, load after the consumer's pop) checks clean.
  // Then inject a rogue second push onto the consumer's queue: a pop
  // may now be satisfied by the unattributed producer without ordering
  // against the real one, so the queue's coverage argument collapses
  // and the seeded pair must surface as a race.
  Context Ctx;
  Checked C = transform(Ctx, DswpPipelineSrc, "dswp", 2);
  ASSERT_GE(C.Parallelized, 1u);

  Function *Producer = nullptr, *Consumer = nullptr;
  findPipelineEnds(*C.M, Producer, Consumer);
  ASSERT_NE(Producer, nullptr);
  ASSERT_NE(Consumer, nullptr);

  nir::GlobalVariable *G =
      C.M->createGlobal(Ctx.getInt64Ty(), "seeded_join_slot");
  IRBuilder B(Ctx);
  B.setInsertPoint(Producer->getEntryBlock().getInstList().front().get());
  B.createStore(Ctx.getInt64(1), G);
  std::vector<CallInst *> Pops = callsTo(*Consumer, "noelle_queue_pop");
  ASSERT_FALSE(Pops.empty());
  CallInst *Pop = Pops.front();
  Instruction *After = instAfter(Pop);
  ASSERT_NE(After, nullptr);
  B.setInsertPoint(After);
  B.createLoad(Ctx.getInt64Ty(), G, "seeded.join.read");

  verify::CheckReport On = verify::checkModule(*C.M, C.Snap);
  EXPECT_EQ(On.count(verify::DiagKind::DataRace), 0u) << On.str();

  // Rogue producer: push onto the same queue right before the pop.
  Function *PushFn = C.M->getFunction("noelle_queue_push");
  ASSERT_NE(PushFn, nullptr);
  B.setInsertPoint(Pop);
  B.createCall(PushFn, {Pop->getArg(0), Ctx.getInt64(0)});

  verify::CheckReport Off = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Off.count(verify::DiagKind::DataRace), 1u) << Off.str();
}

const char *ThreeStagePipelineSrc = R"(
  int src[512];
  int main() {
    for (int i = 0; i < 512; i = i + 1) src[i] = (i * 37 + 11) % 101;
    int a = 1;
    int b = 0;
    int c = 0;
    for (int i = 0; i < 512; i = i + 1) {
      a = (a * 13 + src[i]) % 65537;
      b = (b + a * 3) % 39916801;
      c = (c + b * 7) % 1000003;
    }
    return c;
  }
)";

TEST(VerifyTest, MultiQueueJoinDischargesChainedStages) {
  // A 3-recurrence chain a -> b -> c splits into three DSWP stages
  // connected by two queues (the IV skeleton is replicated, not
  // queued). A store in the first stage's entry is ordered before a
  // load behind the last stage's pop only transitively: q_a's pop
  // acquires the store, the middle stage's push on q_b carries it on.
  // The one-hop single-producer slice (legacy QueueHB) cannot prove
  // that, so disabling the join rule must surface the pair.
  Context Ctx;
  Checked C = transform(Ctx, ThreeStagePipelineSrc, "dswp", 3);
  ASSERT_GE(C.Parallelized, 1u);
  std::vector<Function *> Stages = tasksOfKind(*C.M, "dswp-stage");
  if (Stages.size() < 3)
    GTEST_SKIP() << "pipeline did not split into 3 stages";

  Function *First = nullptr, *Last = nullptr;
  findPipelineEnds(*C.M, First, Last);
  ASSERT_NE(First, nullptr);
  ASSERT_NE(Last, nullptr);

  nir::GlobalVariable *G =
      C.M->createGlobal(Ctx.getInt64Ty(), "seeded_chain_slot");
  IRBuilder B(Ctx);
  B.setInsertPoint(First->getEntryBlock().getInstList().front().get());
  B.createStore(Ctx.getInt64(1), G);
  std::vector<CallInst *> Pops = callsTo(*Last, "noelle_queue_pop");
  ASSERT_FALSE(Pops.empty());
  Instruction *After = instAfter(Pops.front());
  ASSERT_NE(After, nullptr);
  B.setInsertPoint(After);
  B.createLoad(Ctx.getInt64Ty(), G, "seeded.chain.read");

  verify::RaceRuleStats S;
  verify::CheckOptions On;
  On.Races.Stats = &S;
  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap, On);
  EXPECT_EQ(Rep.count(verify::DiagKind::DataRace), 0u) << Rep.str();
  EXPECT_GE(S.Discharged["multi-queue-join"], 1u);

  verify::CheckOptions NoJoin;
  NoJoin.Races.UseMultiQueueJoin = false;
  verify::CheckReport Off = verify::checkModule(*C.M, C.Snap, NoJoin);
  EXPECT_GE(Off.count(verify::DiagKind::DataRace), 1u) << Off.str();
}

TEST(VerifyTest, PopHoistedOutOfLoopPhaseIsCaught) {
  // Loop-phase rule: a store right before the k-th push is ordered
  // before the load behind the k-th pop when both queue ops sit in
  // lockstep loop copies. The seeded pair borrows the origin IDs of the
  // snapshot's src-init store and src load — the PDG relates them
  // intra-iteration only (the dependence crosses two loops, so it is
  // not loop-carried) — which is exactly the rule's precondition. The
  // queue rule cannot discharge it (the store does not precede every
  // push execution), pinning the discharge on loop-phase. Hoisting the
  // pop out of its loop breaks the k-th/k-th pairing and must race.
  Context Ctx;
  Checked C = transform(Ctx, DswpPipelineSrc, "dswp", 2);
  ASSERT_GE(C.Parallelized, 1u);

  // Origin IDs from the snapshot: the store into src[] (init loop) and
  // the load of src[] (main loop).
  nir::Context SnapCtx;
  std::string Err;
  auto SnapM = nir::parseModule(SnapCtx, C.Snap.IRText, Err);
  ASSERT_NE(SnapM, nullptr) << Err;
  Function *SnapMain = SnapM->getFunction("main");
  ASSERT_NE(SnapMain, nullptr);
  std::string StoreId, LoadId;
  for (const auto &BB : SnapMain->getBlocks())
    for (const auto &I : BB->getInstList()) {
      if (const auto *St = nir::dyn_cast<nir::StoreInst>(I.get()))
        if (StoreId.empty() && rootsAtGlobal(St->getPointerOperand(), "src"))
          StoreId = St->getMetadata(nir::InstIDKey);
      if (const auto *Ld = nir::dyn_cast<nir::LoadInst>(I.get()))
        if (LoadId.empty() && rootsAtGlobal(Ld->getPointerOperand(), "src"))
          LoadId = Ld->getMetadata(nir::InstIDKey);
    }
  ASSERT_FALSE(StoreId.empty());
  ASSERT_FALSE(LoadId.empty());

  Function *Producer = nullptr, *Consumer = nullptr;
  findPipelineEnds(*C.M, Producer, Consumer);
  ASSERT_NE(Producer, nullptr);
  ASSERT_NE(Consumer, nullptr);
  std::vector<CallInst *> Pushes = callsTo(*Producer, "noelle_queue_push");
  ASSERT_FALSE(Pushes.empty());
  CallInst *Push = Pushes.front();
  CallInst *Pop = nullptr;
  for (CallInst *P : callsTo(*Consumer, "noelle_queue_pop"))
    if (P->getMetadata(verify::CheckQueueKey) ==
        Push->getMetadata(verify::CheckQueueKey))
      Pop = P;
  ASSERT_NE(Pop, nullptr);

  nir::GlobalVariable *G =
      C.M->createGlobal(Ctx.getInt64Ty(), "seeded_phase_slot");
  IRBuilder B(Ctx);
  B.setInsertPoint(Push);
  Instruction *SeedStore = B.createStore(Ctx.getInt64(1), G);
  SeedStore->setMetadata(verify::CheckOrigKey, StoreId);
  Instruction *After = instAfter(Pop);
  ASSERT_NE(After, nullptr);
  B.setInsertPoint(After);
  auto *SeedLoad = nir::cast<Instruction>(
      B.createLoad(Ctx.getInt64Ty(), G, "seeded.phase.read"));
  SeedLoad->setMetadata(verify::CheckOrigKey, LoadId);

  verify::CheckReport On = verify::checkModule(*C.M, C.Snap);
  EXPECT_EQ(On.count(verify::DiagKind::DataRace), 0u) << On.str();

  // Only the loop-phase rule discharges this pair.
  verify::CheckOptions NoPhase;
  NoPhase.Races.UseLoopPhase = false;
  verify::CheckReport Pinned = verify::checkModule(*C.M, C.Snap, NoPhase);
  EXPECT_GE(Pinned.count(verify::DiagKind::DataRace), 1u) << Pinned.str();

  // Violation: hoist the pop out of the consumer loop (to just after
  // its queue-handle def). The k-th store is no longer ordered with
  // anything the consumer does per iteration.
  auto *Handle = nir::dyn_cast<Instruction>(Pop->getArg(0));
  ASSERT_NE(Handle, nullptr);
  Instruction *HandleNext = instAfter(Handle);
  ASSERT_NE(HandleNext, nullptr);
  ASSERT_NE(Pop->getParent(), Handle->getParent())
      << "pop already outside the loop";
  Pop->moveBefore(HandleNext);

  verify::CheckReport Off = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Off.count(verify::DiagKind::DataRace), 1u) << Off.str();
}

const char *TwoSegmentHelixSrc = R"(
  int s1[1];
  int s2[1];
  int out[256];
  int main() {
    s1[0] = 7;
    s2[0] = 3;
    for (int i = 0; i < 256; i = i + 1) {
      int a = s1[0];
      s1[0] = (a * 1103515245 + 12345) % 2147483647;
      int b = s2[0];
      s2[0] = (b * 69069 + 1) % 2147483647;
      int heavy = 0;
      int base = i * 17;
      heavy = heavy + (base * base) % 1013;
      heavy = heavy + ((base + 3) * (base + 7)) % 2027;
      out[i] = (a + b) % 1000 + heavy;
    }
    int total = 0;
    for (int i = 0; i < 256; i = i + 1) total = total + out[i];
    return total % 1000003;
  }
)";

TEST(VerifyTest, MissingSsSignalOnCrossSegmentPairIsCaught) {
  // Two independent memory recurrences (s1, s2) become two HELIX
  // sequential segments. Legal module: clean, with cross-segment pairs
  // (an s1 access vs an s2 access — ordered within a worker's
  // iteration, conflict-free across iterations per the PDG) discharged
  // by the cross-segment rule. Deleting segment 0's ss_signal leaks the
  // segment past the gate protocol: the leak check must void segment
  // 0's protection and surface its recurrence as a race.
  Context Ctx;
  Checked C = transform(Ctx, TwoSegmentHelixSrc, "helix");
  ASSERT_GE(C.Parallelized, 1u);
  std::vector<Function *> Tasks = tasksOfKind(*C.M, "helix");
  ASSERT_FALSE(Tasks.empty());
  ASSERT_EQ(Tasks.front()->getMetadata(verify::TaskSegmentsKey), "2");

  verify::RaceRuleStats S;
  verify::CheckOptions On;
  On.Races.Stats = &S;
  verify::CheckReport Rep = verify::checkModule(*C.M, C.Snap, On);
  EXPECT_EQ(Rep.count(verify::DiagKind::DataRace), 0u) << Rep.str();
  EXPECT_GE(S.Discharged["cross-segment"], 1u);

  // Violation: drop every signal that closes segment 0.
  bool Erased = false;
  for (CallInst *Sig : callsTo(*Tasks.front(), "noelle_ss_signal")) {
    auto *Seg = nir::dyn_cast<ConstantInt>(Sig->getArg(1));
    if (Seg && Seg->getValue() == 0) {
      Sig->eraseFromParent();
      Erased = true;
    }
  }
  ASSERT_TRUE(Erased);

  verify::CheckReport Off = verify::checkModule(*C.M, C.Snap);
  EXPECT_GE(Off.count(verify::DiagKind::DataRace), 1u) << Off.str();
}

TEST(VerifyTest, RaceReportsDedupeByOriginPair) {
  // Duplicating a racing clone must not duplicate its diagnostic: both
  // copies carry the same origin ID, so the second report of the same
  // unordered origin pair is suppressed and counted.
  Context Ctx;
  Checked C = transform(Ctx, HelixRecurrenceSrc, "helix");
  ASSERT_GE(C.Parallelized, 1u);
  std::vector<Function *> Tasks = tasksOfKind(*C.M, "helix");
  ASSERT_FALSE(Tasks.empty());
  Function *T = Tasks.front();
  for (CallInst *Sig : callsTo(*T, "noelle_ss_signal"))
    Sig->eraseFromParent();

  verify::RaceRuleStats S1;
  verify::CheckOptions O1;
  O1.Races.Stats = &S1;
  verify::CheckReport Rep1 = verify::checkModule(*C.M, C.Snap, O1);
  uint64_t Races1 = Rep1.count(verify::DiagKind::DataRace);
  ASSERT_GE(Races1, 1u) << Rep1.str();

  // Clone the racing recurrence store (clone() keeps its provenance).
  Instruction *Racing = nullptr;
  for (const auto &BB : T->getBlocks())
    for (const auto &I : BB->getInstList())
      if (auto *St = nir::dyn_cast<nir::StoreInst>(I.get()))
        if (verify::originOf(St) &&
            rootsAtGlobal(St->getPointerOperand(), "state"))
          Racing = St;
  ASSERT_NE(Racing, nullptr);
  Instruction *Dup = Racing->clone();
  Dup->insertBefore(Racing);

  verify::RaceRuleStats S2;
  verify::CheckOptions O2;
  O2.Races.Stats = &S2;
  verify::CheckReport Rep2 = verify::checkModule(*C.M, C.Snap, O2);
  EXPECT_GE(S2.DuplicatesSuppressed, 1u);
  // The duplicate adds at most one new origin pair (its W/W self pair);
  // every pair it repeats is suppressed.
  EXPECT_LE(Rep2.count(verify::DiagKind::DataRace), Races1 + 1) << Rep2.str();
}

} // namespace
