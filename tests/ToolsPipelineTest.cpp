//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the noelle-* tool layer: the Figure-1 pipeline
/// (whole-IR -> profile -> embed -> rm-lc-deps -> pdg-embed -> load ->
/// transform -> bin) end to end.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "runtime/ParallelRuntime.h"
#include "tools/NoelleTools.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;

namespace {

TEST(ToolsTest, WholeIRLinksMultipleSources) {
  Context Ctx;
  std::string Error;
  std::vector<std::string> Sources = {
      R"( extern int helper(int x);
          int main() { return helper(20) + 2; } )",
      R"( int helper(int x) { return x * 2; } )"};
  auto M = tools::wholeIR(Ctx, Sources, Error);
  ASSERT_NE(M, nullptr) << Error;
  EXPECT_FALSE(M->getFunction("helper")->isDeclaration());
  EXPECT_EQ(M->getModuleMetadata("noelle.opt.level"), "O3");
  auto E = tools::makeBinary(*M);
  EXPECT_EQ(E->runMain(), 42);
}

TEST(ToolsTest, ProfileEmbedRoundTrip) {
  Context Ctx;
  std::string Error;
  auto M = tools::wholeIR(Ctx, {R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 100; i = i + 1) s = s + i;
      return s;
    }
  )"},
                          Error);
  ASSERT_NE(M, nullptr) << Error;
  auto P = tools::profCoverage(*M);
  EXPECT_GT(P.getTotalInstructions(), 0u);
  tools::metaProfEmbed(*M, P);

  // Print + reparse: the profile must survive.
  auto M2 = nir::parseModuleOrDie(Ctx, M->str());
  EXPECT_TRUE(ProfileData::isEmbedded(*M2));
  auto P2 = ProfileData::fromMetadata(*M2);
  EXPECT_EQ(P2.getTotalInstructions(), P.getTotalInstructions());
}

TEST(ToolsTest, PDGEmbedAndReconstruct) {
  Context Ctx;
  std::string Error;
  auto M = tools::wholeIR(Ctx, {R"(
    int buf[16];
    int main() {
      int s = 0;
      for (int i = 0; i < 16; i = i + 1) {
        buf[i] = i;
        s = s + buf[i];
      }
      return s;
    }
  )"},
                          Error);
  ASSERT_NE(M, nullptr) << Error;

  tools::metaPDGEmbed(*M);
  ASSERT_TRUE(tools::hasPDGMetadata(*M));

  // Fresh PDG vs reconstructed-from-metadata PDG: same edge count.
  PDGBuilder Fresh(*M);
  uint64_t FreshEdges = Fresh.getPDG().getNumEdges();
  auto Rebuilt = tools::pdgFromMetadata(*M);
  EXPECT_EQ(Rebuilt->getNumEdges(), FreshEdges);

  // And it survives serialization.
  auto M2 = nir::parseModuleOrDie(Ctx, M->str());
  ASSERT_TRUE(tools::hasPDGMetadata(*M2));
  auto Rebuilt2 = tools::pdgFromMetadata(*M2);
  EXPECT_EQ(Rebuilt2->getNumEdges(), FreshEdges);
}

TEST(ToolsTest, MetaCleanStripsEverything) {
  Context Ctx;
  std::string Error;
  auto M = tools::wholeIR(Ctx, {"int main() { return 7; }"}, Error);
  ASSERT_NE(M, nullptr) << Error;
  auto P = tools::profCoverage(*M);
  tools::metaProfEmbed(*M, P);
  tools::metaPDGEmbed(*M);
  tools::metaClean(*M);
  EXPECT_FALSE(tools::hasPDGMetadata(*M));
  EXPECT_FALSE(ProfileData::isEmbedded(*M));
  // No noelle.* metadata may remain on any instruction.
  for (const auto &F : M->getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        for (const auto &[K, V] : I->getAllMetadata())
          EXPECT_NE(K.rfind("noelle.", 0), 0u) << K;
}

TEST(ToolsTest, Figure1PipelineEndToEnd) {
  // The HELIX compilation flow from Figure 1, condensed: whole-IR,
  // profile, embed, rm-lc-dependences, re-profile, pdg-embed, load,
  // HELIX, bin.
  Context Ctx;
  std::string Error;
  auto M = tools::wholeIR(Ctx, {R"(
    int out[200];
    int main() {
      int x = 7;
      for (int i = 0; i < 200; i = i + 1) {
        x = (x * 1103515245 + 12345) % 1000000007;
        out[i] = x % 91 + i;
      }
      int t = 0;
      for (int i = 0; i < 200; i = i + 1) t = t + out[i];
      return t % 1000033;
    }
  )"},
                          Error);
  ASSERT_NE(M, nullptr) << Error;

  int64_t Expected = tools::makeBinary(*M)->runMain();

  auto P = tools::profCoverage(*M);
  tools::metaProfEmbed(*M, P);
  tools::rmLCDependences(*M);
  tools::metaClean(*M);
  auto P2 = tools::profCoverage(*M);
  tools::metaProfEmbed(*M, P2);
  tools::metaPDGEmbed(*M);

  auto Arch = tools::archDescribe(false);
  auto N = tools::load(*M);
  HELIXOptions HO;
  HO.NumCores = std::min(4u, Arch.getNumLogicalCores() * 4);
  HELIX Tool(*N, HO);
  unsigned Done = 0;
  for (const auto &D : Tool.run())
    Done += D.Parallelized;
  EXPECT_GE(Done, 1u);

  auto E = tools::makeBinary(*M);
  EXPECT_EQ(E->runMain(), Expected);
}

TEST(ToolsTest, RmLCDependencesReducesWork) {
  Context Ctx;
  std::string Error;
  const char *Src = R"(
    int out[100];
    int main() {
      int k = 13;
      int s = 0;
      for (int i = 0; i < 100; i = i + 1) {
        int heavy = k * k * k + 17;   // invariant
        out[i] = heavy + i;
        s = s + out[i];
      }
      return s;
    }
  )";
  auto M = tools::wholeIR(Ctx, {Src}, Error);
  ASSERT_NE(M, nullptr) << Error;
  int64_t Expected = tools::makeBinary(*M)->runMain();
  unsigned Moved = tools::rmLCDependences(*M);
  EXPECT_GT(Moved, 0u);
  EXPECT_EQ(tools::makeBinary(*M)->runMain(), Expected);
}

} // namespace
