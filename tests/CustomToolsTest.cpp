//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the non-parallelizing custom tools: LICM, DEAD, CARAT,
/// TimeSqueezer, COOS, PRVJeeves, Perspective-lite, and the
/// gcc/icc-style baselines.
///
//===----------------------------------------------------------------------===//

#include "baselines/ConservativeParallelizer.h"
#include "baselines/LLVMBaselines.h"
#include "frontend/MiniC.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/CARAT.h"
#include "xforms/COOS.h"
#include "xforms/DeadFunctionEliminator.h"
#include "xforms/LICM.h"
#include "xforms/Perspective.h"
#include "xforms/PRVJeeves.h"
#include "xforms/TimeSqueezer.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;
using nir::Function;
using nir::Instruction;

namespace {

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

TEST(LICMTest, HoistsInvariantComputation) {
  const char *Src = R"(
    int out[64];
    int main() {
      int k = 21;
      for (int i = 0; i < 64; i = i + 1) {
        int t = k * k + 7;     // invariant
        out[i] = t + i;
      }
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) s = s + out[i];
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Before;
  {
    ExecutionEngine E(*M);
    Before = E.runMain();
  }
  uint64_t InstrsBefore;
  {
    ExecutionEngine E(*M);
    E.runMain();
    InstrsBefore = E.getInstructionsExecuted();
  }
  Noelle N(*M);
  LICM Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.InstructionsHoisted, 0u);
  EXPECT_TRUE(nir::moduleVerifies(*M));
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), Before);
  EXPECT_LT(E.getInstructionsExecuted(), InstrsBefore)
      << "hoisting must reduce dynamic instructions";
}

TEST(LICMTest, HoistsInvariantLoadOfUnmodifiedGlobal) {
  const char *Src = R"(
    int cfg[4];
    int out[64];
    int main() {
      cfg[0] = 9;
      for (int i = 0; i < 64; i = i + 1) out[i] = cfg[0] * i;
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) s = s + out[i];
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Before;
  {
    ExecutionEngine E(*M);
    Before = E.runMain();
  }
  Noelle N(*M);
  LICM Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.InstructionsHoisted, 0u)
      << "the PDG-powered LICM must hoist the cfg[0] load";
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), Before);
}

TEST(LICMTest, NoelleBeatsAlgorithm1OnInvariantCount) {
  // The Figure-4 property: Algorithm 2 (PDG) finds at least as many
  // invariants as Algorithm 1 (low-level), and strictly more here.
  // The load of cfg[0] happens behind a pointer parameter: LLVM's
  // intraprocedural AA cannot separate dst from cfg, NOELLE's
  // whole-program points-to can.
  const char *Src = R"(
    int cfg[4];
    int out[64];
    void work(int *dst, int n) {
      for (int i = 0; i < n; i = i + 1) {
        dst[i] = cfg[0] * i + cfg[1];
      }
    }
    int main() {
      cfg[0] = 5;
      cfg[1] = 2;
      work(out, 64);
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) s = s + out[i];
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  LoopContent *LC = nullptr;
  for (LoopContent *Cand : N.getLoopContents())
    if (Cand->getLoopStructure().getFunction()->getName() == "work")
      LC = Cand;
  ASSERT_NE(LC, nullptr);
  unsigned NoelleCount =
      static_cast<unsigned>(LC->getInvariantManager().getInvariants().size());

  nir::BasicAliasAnalysis BasicAA;
  nir::DominatorTree DT(*M->getFunction("work"));
  unsigned LLVMCount = static_cast<unsigned>(
      baselines::findInvariantsLLVM(LC->getLoopStructure(), DT, BasicAA)
          .size());
  EXPECT_GT(NoelleCount, LLVMCount);
}

//===----------------------------------------------------------------------===//
// DeadFunctionEliminator
//===----------------------------------------------------------------------===//

TEST(DeadTest, RemovesUnreachableFunctions) {
  const char *Src = R"(
    int used(int x) { return x * 2; }
    int dead1(int x) { return x + 1; }
    int dead2(int x) { return dead1(x) * 3; }   // dead island
    int main() { return used(21); }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DeadFunctionEliminator Tool(N);
  auto R = Tool.run();
  EXPECT_EQ(R.FunctionsRemoved, 2u);
  EXPECT_LT(R.BinaryBytesAfter, R.BinaryBytesBefore);
  EXPECT_TRUE(nir::moduleVerifies(*M));
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), 42);
}

TEST(DeadTest, KeepsIndirectlyCallableFunctions) {
  // handler is only ever called through a pointer: the complete call
  // graph must keep it alive.
  const char *Src = R"(
    int handler(int x) { return x + 5; }
    int other(int x) { return x - 1; }
    int main() {
      int (*f)(int) = handler;
      return f(37);
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DeadFunctionEliminator Tool(N);
  Tool.run();
  EXPECT_NE(M->getFunction("handler"), nullptr)
      << "indirect callee must survive";
  ExecutionEngine E(*M);
  EXPECT_EQ(E.runMain(), 42);
}

//===----------------------------------------------------------------------===//
// CARAT
//===----------------------------------------------------------------------===//

TEST(CARATTest, GuardsUnprovenAccessesAndPreservesSemantics) {
  const char *Src = R"(
    int data[128];
    int sum(int *p, int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + p[i];
      return s;
    }
    int main() {
      for (int i = 0; i < 128; i = i + 1) data[i] = i;
      return sum(data, 128);
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Before;
  {
    ExecutionEngine E(*M);
    Before = E.runMain();
  }
  Noelle N(*M);
  CARAT Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.GuardsInjected, 0u);
  EXPECT_TRUE(nir::moduleVerifies(*M));
  ExecutionEngine E(*M);
  registerCARATRuntime(E);
  EXPECT_EQ(E.runMain(), Before);
}

TEST(CARATTest, SkipsProvablyValidAccesses) {
  // Constant in-bounds indexes into a global need no guard.
  const char *Src = R"(
    int g[8];
    int main() {
      g[0] = 1; g[1] = 2; g[7] = 3;
      return g[0] + g[1] + g[7];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  CARAT Tool(N);
  auto R = Tool.run();
  EXPECT_EQ(R.GuardsInjected, 0u);
}

TEST(CARATTest, HoistsInvariantAddressGuards) {
  const char *Src = R"(
    int cell[1];
    int consume(int *p, int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        s = s + *p;          // invariant address, guard hoists
      }
      return s;
    }
    int main() {
      cell[0] = 3;
      return consume(cell, 50);
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  CARAT Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.GuardsHoisted, 0u);
  ExecutionEngine E(*M);
  registerCARATRuntime(E);
  EXPECT_EQ(E.runMain(), 150);
}

//===----------------------------------------------------------------------===//
// TimeSqueezer
//===----------------------------------------------------------------------===//

TEST(TimeSqueezerTest, CanonicalizesAndSaves) {
  const char *Src = R"(
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        if (10 < a[i]) s = s + 1;       // constant on the left
        s = s + a[i] * 3;
      }
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Before;
  {
    ExecutionEngine E(*M);
    Before = E.runMain();
  }
  Noelle N(*M);
  TimeSqueezer Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.ComparesCanonicalized, 0u);
  EXPECT_GT(R.ClockChangesInjected, 0u);
  EXPECT_LT(R.SqueezedCycles, R.BaselineCycles)
      << "clock squeezing must beat the fixed worst-case clock";
  ExecutionEngine E(*M);
  E.registerExternal("set_clock",
                     [](ExecutionEngine &, const nir::CallInst *,
                        const std::vector<nir::RuntimeValue> &) {
                       return nir::RuntimeValue();
                     });
  EXPECT_EQ(E.runMain(), Before);
}

//===----------------------------------------------------------------------===//
// COOS
//===----------------------------------------------------------------------===//

TEST(COOSTest, InjectsTicksIntoLoops) {
  const char *Src = R"(
    int main() {
      int s = 0;
      int i = 0;
      while (s < 100000) {     // potentially unbounded for the analysis
        s = s + i % 7 + 1;
        i = i + 1;
      }
      return i;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  int64_t Before;
  {
    ExecutionEngine E(*M);
    uint64_t Ticks = 0;
    registerCOOSRuntime(E, &Ticks);
    Before = E.runMain();
  }
  Noelle N(*M);
  COOS Tool(N);
  auto R = Tool.run();
  EXPECT_GT(R.TicksInjected, 0u);
  EXPECT_GE(R.LoopsInstrumented, 1u);

  ExecutionEngine E(*M);
  uint64_t Ticks = 0;
  registerCOOSRuntime(E, &Ticks);
  EXPECT_EQ(E.runMain(), Before);
  EXPECT_GT(Ticks, 0u) << "the injected callbacks must fire at runtime";
}

TEST(COOSTest, BoundsStraightLineGaps) {
  // A long straight-line block must be broken up by ticks.
  std::string Body;
  for (int I = 0; I < 50; ++I)
    Body += "      x = x * 3 + " + std::to_string(I) + "; x = x % 100003;\n";
  std::string Src = "    int main() {\n      int x = 1;\n" + Body +
                    "      return x;\n    }\n";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  COOSOptions Opts;
  Opts.Quantum = 32;
  COOS Tool(N, Opts);
  auto R = Tool.run();
  EXPECT_GT(R.TicksInjected, 0u);
  EXPECT_LE(R.MaxGapAfter, 2 * Opts.Quantum)
      << "no straight-line region may exceed ~the quantum";
}

//===----------------------------------------------------------------------===//
// PRVJeeves
//===----------------------------------------------------------------------===//

const char *PRVJSrc = R"(
  int prvg_next(int seed) {          // generic: expensive path
    int s = seed;
    s = (s * 1103515245 + 12345) % 2147483647;
    s = (s * 1103515245 + 12345) % 2147483647;
    s = (s * 1103515245 + 12345) % 2147483647;
    if (s < 0) s = -s;
    return s;
  }
  int prvg_lcg_next(int seed) {      // cheap
    int s = (seed * 1103515245 + 12345) % 2147483647;
    if (s < 0) s = -s;
    return s;
  }
  int prvg_mt_next(int seed) {       // high quality (modeled)
    int s = seed;
    s = (s * 6364136223846793005 + 1442695040888963407) % 2147483647;
    s = (s * 6364136223846793005 + 1442695040888963407) % 2147483647;
    s = (s * 6364136223846793005 + 1442695040888963407) % 2147483647;
    s = (s * 6364136223846793005 + 1442695040888963407) % 2147483647;
    if (s < 0) s = -s;
    return s;
  }
  double monte(int n) {              // needs quality: feeds doubles
    int seed = 7;
    double acc = 0.0;
    for (int i = 0; i < n; i = i + 1) {
      seed = prvg_next(seed);
      acc = acc + (double)(seed % 1000) / 1000.0;
    }
    return acc / (double)n;
  }
  int shuffleish(int n) {            // integer-only: LCG suffices
    int seed = 3;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      seed = prvg_next(seed);
      acc = (acc + seed % 97) % 100003;
    }
    return acc;
  }
  int main() {
    double m = monte(200);
    int s = shuffleish(200);
    return s + (int)(m * 10.0);
  }
)";

TEST(PRVJeevesTest, SelectsGeneratorsByConsumption) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, PRVJSrc);
  Noelle N(*M);
  PRVJeeves Tool(N);
  auto R = Tool.run();
  EXPECT_EQ(R.SitesAnalyzed, 2u);
  EXPECT_EQ(R.DowngradedToLCG, 1u) << "integer-only site takes the LCG";
  EXPECT_EQ(R.PinnedToMT, 1u) << "double-consuming site keeps quality";
  EXPECT_TRUE(nir::moduleVerifies(*M));
  // Still runs (values differ by design — generator selection changes
  // the stream, as in the real tool).
  ExecutionEngine E(*M);
  E.runMain();
}

TEST(PRVJeevesTest, LCGSelectionSavesInstructions) {
  Context Ctx1, Ctx2;
  auto M1 = minic::compileMiniCOrDie(Ctx1, PRVJSrc);
  auto M2 = minic::compileMiniCOrDie(Ctx2, PRVJSrc);
  Noelle N(*M2);
  PRVJeeves Tool(N);
  Tool.run();
  ExecutionEngine E1(*M1), E2(*M2);
  E1.runMain();
  E2.runMain();
  EXPECT_LT(E2.getInstructionsExecuted(), E1.getInstructionsExecuted())
      << "selecting the cheap generator must reduce dynamic work";
}

//===----------------------------------------------------------------------===//
// Perspective-lite
//===----------------------------------------------------------------------===//

TEST(PerspectiveTest, PlansSpeculationForApparentDeps) {
  // p and q never alias at runtime, but the compiler cannot prove it:
  // the loop-carried dependence is apparent -> speculable.
  const char *Src = R"(
    int A[256];
    int B[256];
    int touch(int *p, int *q, int n) {
      int s = 0;
      for (int i = 1; i < n; i = i + 1) {
        p[i] = q[i - 1] + 1;    // apparent cross-iteration dep if p==q
        s = s + p[i];
      }
      return s;
    }
    int main() { return touch(A, B, 256); }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  // Weak analysis so the dependence stays apparent.
  NoelleOptions Opts;
  Opts.PDGOptions.AliasAnalysisName = "llvm";
  Opts.PDGOptions.UseModRefSummaries = false;
  Noelle N(*M, Opts);
  Perspective Tool(N);
  bool FoundSpeculable = false;
  for (const auto &Plan : Tool.planAll())
    for (const auto &R : Plan.Remedies)
      if (R.TheKind == Remedy::Kind::SpeculateApparentDep)
        FoundSpeculable = true;
  EXPECT_TRUE(FoundSpeculable);
}

TEST(PerspectiveTest, MustRecurrenceIsUnresolvable) {
  const char *Src = R"(
    int a[128];
    int main() {
      a[0] = 1;
      for (int i = 1; i < 128; i = i + 1) a[i] = a[i - 1] * 2 % 10007;
      return a[127];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  Perspective Tool(N);
  bool SawPlan = false;
  for (const auto &Plan : Tool.planAll()) {
    if (Plan.AlreadyDOALL || Plan.Remedies.empty())
      continue;
    SawPlan = true;
    EXPECT_FALSE(Plan.PlannableWithSpeculation &&
                 Plan.Remedies.size() == 1)
        << "a real recurrence must not look fully speculable";
  }
  EXPECT_TRUE(SawPlan);
}

//===----------------------------------------------------------------------===//
// Conservative (gcc/icc-like) baselines
//===----------------------------------------------------------------------===//

TEST(BaselineTest, ConservativeParallelizerRejectsWhileLoops) {
  // The same loop NOELLE's DOALL handles: the conservative model cannot
  // even find the IV because the loop is while-shaped.
  const char *Src = R"(
    int a[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) a[i] = i * 3;
      return a[100];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  baselines::ConservativeParallelizer Tool(*M);
  for (const auto &D : Tool.run()) {
    EXPECT_FALSE(D.Parallelized);
    EXPECT_NE(D.Reason.find("do-while"), std::string::npos);
  }
}

TEST(BaselineTest, LLVMIVDetectionNeedsDoWhileShape) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;   // while shape
      int j = 0;
      do { s = s + j; j = j + 1; } while (j < 10);    // do-while shape
      return s;
    }
  )");
  Function *Main = M->getFunction("main");
  nir::DominatorTree DT(*Main);
  nir::LoopInfo LI(*Main, DT);
  ASSERT_EQ(LI.getNumLoops(), 2u);
  unsigned Found = 0;
  for (auto *L : LI.getLoopsInPreorder())
    if (baselines::findGoverningIVLLVM(*L))
      ++Found;
  EXPECT_EQ(Found, 1u) << "LLVM-style detection sees only the do-while IV";
}

} // namespace
