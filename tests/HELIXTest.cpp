//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for HELIX: loops with sequential SCCs parallelize
/// with sequential segments, and cross-iteration order is preserved.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

struct HELIXResult {
  int64_t Sequential = 0;
  int64_t Parallel = 0;
  unsigned LoopsParallelized = 0;
  unsigned Segments = 0;
};

HELIXResult runBoth(const char *Src, unsigned Cores) {
  HELIXResult R;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M);
    R.Sequential = E.runMain();
  }
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
    Noelle N(*M);
    HELIXOptions Opts;
    Opts.NumCores = Cores;
    Opts.MinimumEstimatedSpeedup = 0; // tests force the transformation
    HELIX Tool(N, Opts);
    for (const auto &D : Tool.run())
      if (D.Parallelized) {
        ++R.LoopsParallelized;
        R.Segments += D.NumSequentialSegments;
      }
    verify::CheckReport Rep = verify::checkModule(*M, Snap);
    EXPECT_TRUE(Rep.clean()) << Rep.str();
    ExecutionEngine E(*M);
    registerParallelRuntime(E);
    R.Parallel = E.runMain();
  }
  return R;
}

TEST(HELIXTest, MemoryRecurrenceWithParallelWork) {
  // state[0] evolves sequentially (a linear congruential walk) while the
  // expensive part of each iteration is independent: HELIX territory.
  const char *Src = R"(
    int state[1];
    int out[256];
    int main() {
      state[0] = 7;
      for (int i = 0; i < 256; i = i + 1) {
        int s = state[0];
        state[0] = (s * 1103515245 + 12345) % 2147483647;
        int heavy = 0;
        int base = i * 17;
        heavy = heavy + (base * base) % 1013;
        heavy = heavy + ((base + 3) * (base + 7)) % 2027;
        out[i] = s % 1000 + heavy;
      }
      int total = 0;
      for (int i = 0; i < 256; i = i + 1) total = total + out[i];
      return total % 1000003;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_GE(R.Segments, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(HELIXTest, RegisterRecurrenceSpilledThroughSharedSlot) {
  // x evolves as a register recurrence; its cross-iteration order is
  // enforced by a sequential segment with a spilled slot.
  const char *Src = R"(
    int out[128];
    int main() {
      int x = 1;
      for (int i = 0; i < 128; i = i + 1) {
        x = (x * 3 + 1) % 65537;
        out[i] = x;
      }
      int t = 0;
      for (int i = 0; i < 128; i = i + 1) t = t + out[i];
      return t % 100003;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(HELIXTest, RecurrenceLiveOutReadsFinalState) {
  const char *Src = R"(
    int main() {
      int x = 5;
      for (int i = 0; i < 64; i = i + 1) {
        x = (x * 7 + 11) % 10007;
      }
      return x;   // final state of the recurrence
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(HELIXTest, ReductionPlusRecurrence) {
  const char *Src = R"(
    int main() {
      int x = 3;
      int sum = 0;
      for (int i = 0; i < 200; i = i + 1) {
        x = (x * 5 + 1) % 9973;
        sum = sum + i * 2;     // independent reduction
      }
      return (x * 100000 + sum) % 1000000007;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(HELIXTest, RejectsConditionalSequentialWork) {
  // The recurrence only advances under a data-dependent condition:
  // wait/signal cannot bracket it once per iteration.
  const char *Src = R"(
    int a[64];
    int main() {
      int x = 1;
      for (int i = 0; i < 64; i = i + 1) {
        if (a[i] > 0) { x = x * 3 + i; }
        a[i] = x;
      }
      return x;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  HELIX Tool(N);
  for (const auto &D : Tool.run())
    EXPECT_FALSE(D.Parallelized) << D.FunctionName << " loop " << D.LoopID;
}

TEST(HELIXTest, ThreadSweepPreservesSemantics) {
  const char *Src = R"(
    int out[300];
    int main() {
      int x = 9;
      for (int i = 0; i < 300; i = i + 1) {
        x = (x * 1103515245 + 12345) % 1000000007;
        out[i] = x % 97 + i;
      }
      int t = 0;
      for (int i = 0; i < 300; i = i + 1) t = t + out[i];
      return t % 1000033;
    }
  )";
  int64_t Expected = runBoth(Src, 1).Sequential;
  for (unsigned Cores : {2u, 3u, 4u, 8u}) {
    auto R = runBoth(Src, Cores);
    EXPECT_EQ(R.Parallel, Expected) << "cores=" << Cores;
  }
}

TEST(HELIXTest, SegmentWorkIsMeasured) {
  const char *Src = R"(
    int out[100];
    int main() {
      int x = 2;
      for (int i = 0; i < 100; i = i + 1) {
        x = (x * 13 + 7) % 30011;
        out[i] = x + i;
      }
      int t = 0;
      for (int i = 0; i < 100; i = i + 1) t = t + out[i];
      return t % 65599;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  HELIXOptions Opts;
  Opts.NumCores = 4;
  Opts.MinimumEstimatedSpeedup = 0; // force, to observe segment work
  HELIX Tool(N, Opts);
  unsigned Done = 0;
  for (const auto &D : Tool.run())
    Done += D.Parallelized;
  ASSERT_GE(Done, 1u);
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  E.runMain();
  bool SawSegmentWork = false;
  for (const auto &R : E.getDispatchRecords())
    if (R.TotalSegmentInstructions > 0)
      SawSegmentWork = true;
  EXPECT_TRUE(SawSegmentWork)
      << "HELIX dispatches must report serialized segment work";
}

} // namespace
