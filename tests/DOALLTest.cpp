//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the DOALL parallelizer: loops transform, the
/// parallel runtime executes them, and results match sequential runs at
/// every thread count.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "xforms/DOALL.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

/// Runs a source sequentially, then DOALL-parallelized with \p Cores,
/// and returns (sequential result, parallel result, #parallelized).
struct DOALLResult {
  int64_t Sequential = 0;
  int64_t Parallel = 0;
  unsigned LoopsParallelized = 0;
  std::string SeqOutput, ParOutput;
};

DOALLResult runBoth(const char *Src, unsigned Cores) {
  DOALLResult R;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M);
    R.Sequential = E.runMain();
    R.SeqOutput = E.getOutput();
  }
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
    Noelle N(*M);
    DOALLOptions Opts;
    Opts.NumCores = Cores;
    DOALL Tool(N, Opts);
    for (const auto &D : Tool.run())
      if (D.Parallelized)
        ++R.LoopsParallelized;
    verify::CheckReport Rep = verify::checkModule(*M, Snap);
    EXPECT_TRUE(Rep.clean()) << Rep.str();
    ExecutionEngine E(*M);
    registerParallelRuntime(E);
    R.Parallel = E.runMain();
    R.ParOutput = E.getOutput();
  }
  return R;
}

TEST(DOALLTest, ParallelizesIndependentArrayLoop) {
  const char *Src = R"(
    int a[4096];
    int b[4096];
    int main() {
      for (int i = 0; i < 4096; i = i + 1) b[i] = 0;
      for (int i = 0; i < 4096; i = i + 1) a[i] = i * 3 + 1;
      int s = 0;
      for (int i = 0; i < 4096; i = i + 1) s = s + a[i];
      return s % 100007;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 2u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DOALLTest, SumReduction) {
  const char *Src = R"(
    int a[1000];
    int main() {
      for (int i = 0; i < 1000; i = i + 1) a[i] = i;
      int s = 5;                      // nonzero initial accumulator
      for (int i = 0; i < 1000; i = i + 1) s = s + a[i];
      return s;                        // 5 + 499500
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_EQ(R.Sequential, 499505);
  EXPECT_EQ(R.Parallel, 499505);
}

TEST(DOALLTest, ProductReduction) {
  const char *Src = R"(
    int main() {
      int p = 3;
      for (int i = 0; i < 10; i = i + 1) p = p * 2;
      return p;                        // 3 * 1024
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_EQ(R.Sequential, 3072);
  EXPECT_EQ(R.Parallel, 3072);
}

TEST(DOALLTest, DoubleReduction) {
  const char *Src = R"(
    double x[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) x[i] = (double)i * 0.5;
      double s = 0.0;
      for (int i = 0; i < 512; i = i + 1) s = s + x[i];
      return (int)s;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DOALLTest, RespectsLoopCarriedDependence) {
  // A recurrence must NOT be parallelized.
  const char *Src = R"(
    int a[256];
    int main() {
      a[0] = 1;
      for (int i = 1; i < 256; i = i + 1) a[i] = a[i - 1] + i;
      return a[255];
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DOALL Tool(N);
  unsigned Parallelized = 0;
  std::string RecurrenceReason;
  for (const auto &D : Tool.run()) {
    if (D.Parallelized)
      ++Parallelized;
    else
      RecurrenceReason = D.Reason;
  }
  EXPECT_EQ(Parallelized, 0u);
  EXPECT_FALSE(RecurrenceReason.empty());
}

TEST(DOALLTest, RejectsEscapingPartialSums) {
  const char *Src = R"(
    int a[64];
    int b[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        s = s + a[i];
        b[i] = s;      // partial sums observable -> sequential
      }
      return s;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DOALL Tool(N);
  for (const auto &D : Tool.run())
    EXPECT_FALSE(D.Parallelized);
}

TEST(DOALLTest, NegativeStepLoop) {
  const char *Src = R"(
    int a[2048];
    int main() {
      for (int i = 2047; i >= 0; i = i - 1) a[i] = i * 2;
      int s = 0;
      for (int i = 0; i < 2048; i = i + 1) s = s + a[i];
      return s % 65521;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DOALLTest, StridedLoop) {
  const char *Src = R"(
    int a[4096];
    int main() {
      for (int i = 0; i < 4096; i = i + 4) a[i] = i;
      int s = 0;
      for (int i = 0; i < 4096; i = i + 1) s = s + a[i];
      return s % 99991;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DOALLTest, NotEqualExitTest) {
  const char *Src = R"(
    int a[1024];
    int main() {
      int i = 0;
      while (i != 1024) { a[i] = 7 * i; i = i + 1; }
      int s = 0;
      for (int j = 0; j < 1024; j = j + 1) s = s + a[j];
      return s % 131071;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_GE(R.LoopsParallelized, 2u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

class DOALLThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DOALLThreadSweep, MatrixScaleMatchesAtEveryWidth) {
  // Property: the transformed program computes the same result at any
  // thread count, including more threads than iterations.
  const char *Src = R"(
    int m[900];
    int main() {
      for (int i = 0; i < 900; i = i + 1) m[i] = i % 31;
      int s = 0;
      for (int i = 0; i < 900; i = i + 1) s = s + m[i] * 3;
      return s;
    }
  )";
  auto R = runBoth(Src, GetParam());
  EXPECT_EQ(R.Sequential, R.Parallel) << "cores=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, DOALLThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 1024));

TEST(DOALLTest, NestedLoopParallelizesOuterOnly) {
  const char *Src = R"(
    int m[64];
    int main() {
      for (int i = 0; i < 8; i = i + 1)
        for (int j = 0; j < 8; j = j + 1)
          m[i * 8 + j] = i + j;
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) s = s + m[i];
      return s;
    }
  )";
  auto R = runBoth(Src, 4);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DOALLTest, PerformanceModelShowsSpeedup) {
  // The evaluation host may be single-core, so speedup is computed with
  // the instruction-level performance model: per-task retired
  // instructions are recorded by every dispatch, and the parallel "time"
  // is serial work + the max per-task work of each region.
  const char *Src = R"(
    double out[200];
    int main() {
      for (int i = 0; i < 200; i = i + 1) {
        double acc = 0.0;
        for (int k = 0; k < 2000; k = k + 1) {
          acc = acc + (double)((i * 7 + k * 13) % 97) * 0.25;
        }
        out[i] = acc;
      }
      double total = 0.0;
      for (int i = 0; i < 200; i = i + 1) total = total + out[i];
      return (int)total;
    }
  )";
  // Sequential instruction count.
  uint64_t SeqInstrs;
  int64_t SeqResult;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M);
    SeqResult = E.runMain();
    SeqInstrs = E.getInstructionsExecuted();
  }
  // Parallel: simulated time = total - taskWork + sum(maxTaskWork).
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DOALLOptions Opts;
  Opts.NumCores = 4;
  DOALL Tool(N, Opts);
  unsigned Parallelized = 0;
  for (const auto &D : Tool.run())
    Parallelized += D.Parallelized;
  ASSERT_GE(Parallelized, 1u);

  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), SeqResult);

  uint64_t Total = E.getInstructionsExecuted();
  uint64_t TaskTotal = 0, CriticalPath = 0;
  for (const auto &R : E.getDispatchRecords()) {
    TaskTotal += R.TotalTaskInstructions;
    CriticalPath += R.MaxTaskInstructions;
  }
  ASSERT_GT(TaskTotal, 0u);
  uint64_t SimulatedParallel = Total - TaskTotal + CriticalPath;
  double Speedup =
      static_cast<double>(SeqInstrs) / static_cast<double>(SimulatedParallel);
  EXPECT_GT(Speedup, 2.5) << "4-core DOALL on a balanced loop should "
                             "approach 4x; got "
                          << Speedup;
}

} // namespace
