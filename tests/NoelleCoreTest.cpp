//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for NOELLE's abstractions: PDG, aSCCDAG, invariants, induction
/// variables, reductions, environments, forest, and the demand-driven
/// Noelle manager.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "noelle/Noelle.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::Function;
using nir::Instruction;
using nir::LoopInfo;
using nir::LoopStructure;

namespace {

/// Compiles and returns the single top-level loop of @main (or the named
/// function).
struct LoopFixture {
  Context Ctx;
  std::unique_ptr<nir::Module> M;
  std::unique_ptr<Noelle> N;
  LoopContent *LC = nullptr;

  explicit LoopFixture(const char *Src, const char *FnName = "main") {
    M = minic::compileMiniCOrDie(Ctx, Src);
    N = std::make_unique<Noelle>(*M);
    for (LoopContent *Cand : N->getLoopContents())
      if (Cand->getLoopStructure().getFunction()->getName() == FnName &&
          !LC)
        LC = Cand;
    assert(LC && "fixture source has no loop");
  }
};

//===----------------------------------------------------------------------===//
// PDG
//===----------------------------------------------------------------------===//

TEST(PDGTest, RegisterDepsFollowDefUse) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  // Every internal node with operands has incoming register edges.
  bool FoundRegEdge = false;
  for (auto *E : DG.getEdges())
    if (!E->IsControl && !E->IsMemory)
      FoundRegEdge = true;
  EXPECT_TRUE(FoundRegEdge);
}

TEST(PDGTest, MemoryDepWhenSameLocation) {
  LoopFixture F(R"(
    int buf[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        buf[0] = i;        // store to fixed slot
        s = s + buf[0];    // load from the same slot
      }
      return s;
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  bool FoundRAWMem = false;
  for (auto *E : DG.getEdges())
    if (E->IsMemory && E->Kind == DataDepKind::RAW)
      FoundRAWMem = true;
  EXPECT_TRUE(FoundRAWMem);
}

TEST(PDGTest, NoMemoryDepAcrossDistinctArrays) {
  LoopFixture F(R"(
    int a[64];
    int b[64];
    int main() {
      for (int i = 0; i < 64; i = i + 1) {
        a[i] = i;
        b[i] = 2 * i;
      }
      return a[0] + b[0];
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  // The two stores must not depend on each other.
  std::vector<Instruction *> Stores;
  for (nir::Value *V : DG.getInternalNodes())
    if (nir::isa<nir::StoreInst>(V))
      Stores.push_back(nir::cast<nir::StoreInst>(V));
  ASSERT_EQ(Stores.size(), 2u);
  for (auto *E : DG.getOutEdges(Stores[0]))
    EXPECT_NE(E->To, static_cast<nir::Value *>(Stores[1]));
}

TEST(PDGTest, ControlDependences) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) s = s + i;
      }
      return s;
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  bool FoundControl = false;
  for (auto *E : DG.getEdges())
    if (E->IsControl)
      FoundControl = true;
  EXPECT_TRUE(FoundControl);
}

TEST(PDGTest, LoopCarriedRegisterDep) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  bool FoundCarried = false;
  for (auto *E : DG.getEdges())
    if (E->IsLoopCarried && !E->IsMemory)
      FoundCarried = true;
  EXPECT_TRUE(FoundCarried);
}

TEST(PDGTest, IVIndexedArrayStoreIsNotLoopCarried) {
  LoopFixture F(R"(
    int a[128];
    int main() {
      for (int i = 0; i < 128; i = i + 1) a[i] = i * 3;
      return a[5];
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  for (auto *E : DG.getEdges()) {
    if (!E->IsMemory)
      continue;
    auto *FromI = nir::dyn_cast<Instruction>(E->From);
    auto *ToI = nir::dyn_cast<Instruction>(E->To);
    if (FromI && ToI && F.LC->getLoopStructure().contains(FromI) &&
        F.LC->getLoopStructure().contains(ToI))
      EXPECT_FALSE(E->IsLoopCarried)
          << "a[i] self-dependence should not be loop-carried";
  }
}

TEST(PDGTest, RecurrenceIsLoopCarried) {
  LoopFixture F(R"(
    int a[128];
    int main() {
      for (int i = 1; i < 128; i = i + 1) a[i] = a[i - 1] + 1;
      return a[100];
    }
  )");
  PDG &DG = F.LC->getLoopDG();
  bool CarriedMem = false;
  for (auto *E : DG.getEdges())
    if (E->IsMemory && E->IsLoopCarried)
      CarriedMem = true;
  EXPECT_TRUE(CarriedMem);
}

TEST(PDGTest, NoelleDisprovesMoreThanLLVMConfig) {
  const char *Src = R"(
    int A[256];
    int B[256];
    int C[256];
    void fill(int *p, int n, int k) {
      for (int i = 0; i < n; i = i + 1) p[i] = i * k;
    }
    int main() {
      int s = 0;
      for (int i = 0; i < 256; i = i + 1) {
        fill(A, 256, 1);      // writes only A or B (never C)
        s = s + C[i];         // NOELLE can prove fill does not touch C
        C[i] = s;
      }
      return s;
    }
  )";
  Context Ctx1, Ctx2;
  auto M1 = minic::compileMiniCOrDie(Ctx1, Src);
  auto M2 = minic::compileMiniCOrDie(Ctx2, Src);

  PDGBuildOptions LLVMOpts;
  LLVMOpts.AliasAnalysisName = "llvm";
  LLVMOpts.UseModRefSummaries = false;
  PDGBuilder LLVMBuilder(*M1, LLVMOpts);
  LLVMBuilder.getPDG();

  PDGBuildOptions NoelleOpts; // defaults: andersen + summaries
  PDGBuilder NoelleBuilder(*M2, NoelleOpts);
  NoelleBuilder.getPDG();

  const auto &SL = LLVMBuilder.getPDG().getStats();
  const auto &SN = NoelleBuilder.getPDG().getStats();
  EXPECT_EQ(SL.MemoryPairsQueried, SN.MemoryPairsQueried);
  EXPECT_GT(SN.MemoryPairsDisproved, SL.MemoryPairsDisproved)
      << "NOELLE's AA stack must disprove strictly more dependences";
}

//===----------------------------------------------------------------------===//
// aSCCDAG
//===----------------------------------------------------------------------===//

TEST(SCCDAGTest, ReductionSCCIsReducible) {
  LoopFixture F(R"(
    int a[256];
    int main() {
      int s = 0;
      for (int i = 0; i < 256; i = i + 1) s = s + a[i];
      return s;
    }
  )");
  SCCDAG &Dag = F.LC->getSCCDAG();
  unsigned Reducible = 0, Sequential = 0;
  for (const auto &S : Dag.getSCCs()) {
    if (S->getAttribute() == SCC::Attribute::Reducible)
      ++Reducible;
    if (S->getAttribute() == SCC::Attribute::Sequential &&
        S->size() > 1) {
      // The only multi-node sequential cycle should be the IV.
      bool HasPhi = false;
      for (auto *V : S->getNodes())
        if (nir::isa<nir::PhiInst>(V))
          HasPhi = true;
      EXPECT_TRUE(HasPhi);
      ++Sequential;
    }
  }
  EXPECT_EQ(Reducible, 1u) << "the sum accumulation must be reducible";
}

TEST(SCCDAGTest, IndependentSCCsForDOALLBody) {
  LoopFixture F(R"(
    int a[256];
    int b[256];
    int main() {
      for (int i = 0; i < 256; i = i + 1) b[i] = a[i] * 2;
      return b[0];
    }
  )");
  SCCDAG &Dag = F.LC->getSCCDAG();
  // The loads/stores of the body must sit in Independent SCCs; only the
  // IV cycle may be sequential.
  for (const auto &S : Dag.getSCCs()) {
    if (S->getAttribute() != SCC::Attribute::Sequential)
      continue;
    for (auto *V : S->getNodes())
      EXPECT_FALSE(nir::isa<nir::StoreInst>(V))
          << "stores must not be in sequential SCCs for a DOALL loop";
  }
}

TEST(SCCDAGTest, TopologicalOrderRespectsEdges) {
  LoopFixture F(R"(
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        int t = a[i] * 2;
        s = s + t;
      }
      return s;
    }
  )");
  SCCDAG &Dag = F.LC->getSCCDAG();
  auto Order = Dag.getTopologicalOrder();
  std::map<SCC *, size_t> Pos;
  for (size_t I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;
  for (const auto &S : Dag.getSCCs())
    for (SCC *Succ : Dag.getSuccessors(S.get()))
      EXPECT_LT(Pos[S.get()], Pos[Succ]);
}

TEST(SCCDAGTest, IsAcyclic) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      int p = 1;
      for (int i = 0; i < 32; i = i + 1) {
        s = s + i;
        p = p * 2;
      }
      return s + p;
    }
  )");
  SCCDAG &Dag = F.LC->getSCCDAG();
  // DFS from each SCC must not return to itself.
  for (const auto &S : Dag.getSCCs()) {
    std::set<SCC *> Seen;
    std::vector<SCC *> Work(Dag.getSuccessors(S.get()).begin(),
                            Dag.getSuccessors(S.get()).end());
    while (!Work.empty()) {
      SCC *Cur = Work.back();
      Work.pop_back();
      EXPECT_NE(Cur, S.get()) << "SCCDAG has a cycle";
      if (!Seen.insert(Cur).second)
        continue;
      for (SCC *Next : Dag.getSuccessors(Cur))
        Work.push_back(Next);
    }
  }
}

//===----------------------------------------------------------------------===//
// Invariants (Algorithm 2)
//===----------------------------------------------------------------------===//

TEST(InvariantTest, DetectsArithmeticInvariant) {
  LoopFixture F(R"(
    int main() {
      int n = 100;
      int k = 3;
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        int t = k * 7 + 2;   // invariant
        s = s + t + i;       // varies
      }
      return s;
    }
  )");
  auto &Inv = F.LC->getInvariantManager();
  auto Invariants = Inv.getInvariants();
  EXPECT_FALSE(Invariants.empty());
  // The IV update must not be invariant.
  auto &IVs = F.LC->getIVManager();
  ASSERT_FALSE(IVs.getInductionVariables().empty());
  EXPECT_FALSE(Inv.isLoopInvariant(
      IVs.getInductionVariables()[0]->getStepInstruction()));
}

TEST(InvariantTest, LoadFromUnmodifiedMemoryIsInvariant) {
  LoopFixture F(R"(
    int cfg[4];
    int out[64];
    int main() {
      for (int i = 0; i < 64; i = i + 1) {
        out[i] = cfg[0] * i;   // cfg never written in the loop
      }
      return out[3];
    }
  )");
  auto &Inv = F.LC->getInvariantManager();
  bool FoundInvariantLoad = false;
  for (Instruction *I : Inv.getInvariants())
    if (nir::isa<nir::LoadInst>(I))
      FoundInvariantLoad = true;
  EXPECT_TRUE(FoundInvariantLoad)
      << "PDG-powered invariance must see through unmodified memory";
}

TEST(InvariantTest, LoadFromModifiedMemoryIsVariant) {
  LoopFixture F(R"(
    int cfg[4];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) {
        s = s + cfg[0];
        cfg[0] = i;          // modified inside the loop
      }
      return s;
    }
  )");
  auto &Inv = F.LC->getInvariantManager();
  for (Instruction *I : Inv.getInvariants())
    EXPECT_FALSE(nir::isa<nir::LoadInst>(I))
        << "load from written memory must not be invariant";
}

//===----------------------------------------------------------------------===//
// Induction variables
//===----------------------------------------------------------------------===//

TEST(IVTest, DetectsIVInWhileShapedLoop) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i;
      return s;
    }
  )");
  auto &IVs = F.LC->getIVManager();
  ASSERT_EQ(IVs.getInductionVariables().size(), 1u);
  auto *IV = IVs.getInductionVariables()[0].get();
  EXPECT_TRUE(IV->hasConstantStep());
  EXPECT_EQ(IV->getConstantStep(), 1);
  ASSERT_NE(IVs.getGoverningIV(), nullptr);
  EXPECT_EQ(IVs.getGoverningIV(), IV);
}

TEST(IVTest, DetectsNegativeStep) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      for (int i = 100; i > 0; i = i - 1) s = s + i;
      return s;
    }
  )");
  auto &IVs = F.LC->getIVManager();
  ASSERT_EQ(IVs.getInductionVariables().size(), 1u);
  EXPECT_EQ(IVs.getInductionVariables()[0]->getConstantStep(), -1);
  EXPECT_NE(IVs.getGoverningIV(), nullptr);
}

TEST(IVTest, MultipleIVs) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      int j = 100;
      for (int i = 0; i < 50; i = i + 2) {
        s = s + j;
        j = j + 3;
      }
      return s;
    }
  )");
  auto &IVs = F.LC->getIVManager();
  EXPECT_EQ(IVs.getInductionVariables().size(), 2u);
  ASSERT_NE(IVs.getGoverningIV(), nullptr);
  EXPECT_EQ(IVs.getGoverningIV()->getConstantStep(), 2);
}

TEST(IVTest, GoverningIVInDoWhileLoop) {
  LoopFixture F(R"(
    int main() {
      int s = 0;
      int i = 0;
      do { s = s + i; i = i + 1; } while (i < 10);
      return s;
    }
  )");
  auto &IVs = F.LC->getIVManager();
  ASSERT_FALSE(IVs.getInductionVariables().empty());
  EXPECT_NE(IVs.getGoverningIV(), nullptr)
      << "NOELLE detects governing IVs regardless of loop shape";
}

//===----------------------------------------------------------------------===//
// Reductions
//===----------------------------------------------------------------------===//

TEST(ReductionTest, SumAndProduct) {
  LoopFixture F(R"(
    int a[32];
    int main() {
      int s = 0;
      int p = 1;
      for (int i = 0; i < 32; i = i + 1) {
        s = s + a[i];
        p = p * 2;
      }
      return s + p;
    }
  )");
  auto &RM = F.LC->getReductionManager();
  ASSERT_EQ(RM.getReductions().size(), 2u);
  std::set<nir::BinaryInst::Op> Ops;
  for (const auto &R : RM.getReductions())
    Ops.insert(R.Op);
  EXPECT_TRUE(Ops.count(nir::BinaryInst::Op::Add));
  EXPECT_TRUE(Ops.count(nir::BinaryInst::Op::Mul));
}

TEST(ReductionTest, IdentityValues) {
  LoopFixture F(R"(
    int a[32];
    int main() {
      int s = 0;
      for (int i = 0; i < 32; i = i + 1) s = s + a[i];
      return s;
    }
  )");
  auto &RM = F.LC->getReductionManager();
  ASSERT_EQ(RM.getReductions().size(), 1u);
  const auto &R = RM.getReductions()[0];
  auto *Id = nir::dyn_cast<nir::ConstantInt>(R.getIdentity(F.Ctx));
  ASSERT_NE(Id, nullptr);
  EXPECT_EQ(Id->getValue(), 0);
}

TEST(ReductionTest, NonAssociativeUpdateIsNotReduction) {
  LoopFixture F(R"(
    int a[32];
    int main() {
      int s = 1;
      for (int i = 0; i < 32; i = i + 1) s = s / 2 + a[i];
      return s;
    }
  )");
  auto &RM = F.LC->getReductionManager();
  EXPECT_TRUE(RM.getReductions().empty());
}

TEST(ReductionTest, IntermediateUseBlocksReduction) {
  LoopFixture F(R"(
    int a[32];
    int b[32];
    int main() {
      int s = 0;
      for (int i = 0; i < 32; i = i + 1) {
        s = s + a[i];
        b[i] = s;     // observes intermediate sums
      }
      return s;
    }
  )");
  auto &RM = F.LC->getReductionManager();
  EXPECT_TRUE(RM.getReductions().empty())
      << "a reduction whose partial values escape cannot be reordered";
}

//===----------------------------------------------------------------------===//
// Environment
//===----------------------------------------------------------------------===//

TEST(EnvironmentTest, LiveInsAndLiveOuts) {
  LoopFixture F(R"(
    int compute(int n, int k) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + i * k;
      return s;
    }
    int main() { return compute(10, 3); }
  )",
                "compute");
  auto &Env = F.LC->getEnvironment();
  // live-ins: n and k (arguments used in the loop).
  EXPECT_EQ(Env.getLiveIns().size(), 2u);
  // live-outs: the sum (used by the return).
  ASSERT_EQ(Env.getLiveOuts().size(), 1u);
  EXPECT_GE(Env.indexOfLiveOut(Env.getLiveOuts()[0]), 0);
  EXPECT_EQ(Env.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Forest
//===----------------------------------------------------------------------===//

TEST(ForestTest, RemoveNodeReattachesChildren) {
  Forest<int> F;
  int A = 1, B = 2, C = 3, D = 4;
  auto *NA = F.addNode(&A, nullptr);
  auto *NB = F.addNode(&B, NA);
  auto *NC = F.addNode(&C, NB);
  auto *ND = F.addNode(&D, NB);
  EXPECT_EQ(F.size(), 4u);

  F.removeNode(NB);
  EXPECT_EQ(F.size(), 3u);
  // C and D re-attach to A.
  EXPECT_EQ(NC->Parent, NA);
  EXPECT_EQ(ND->Parent, NA);
  EXPECT_EQ(NA->Children.size(), 2u);
}

TEST(ForestTest, PostorderVisitsChildrenFirst) {
  Forest<int> F;
  int A = 1, B = 2, C = 3;
  auto *NA = F.addNode(&A, nullptr);
  F.addNode(&B, NA);
  F.addNode(&C, NA);
  std::vector<int> Order;
  F.visitPostorder([&](Forest<int>::Node *N) { Order.push_back(*N->Payload); });
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order.back(), 1);
}

TEST(ForestTest, LoopNestingForest) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1)
        for (int j = 0; j < 4; j = j + 1)
          s = s + i * j;
      return s;
    }
  )");
  Noelle N(*M);
  auto &F = N.getLoopForest();
  ASSERT_EQ(F.getRoots().size(), 1u);
  EXPECT_EQ(F.getRoots()[0]->Children.size(), 1u);
  EXPECT_EQ(F.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Noelle manager
//===----------------------------------------------------------------------===//

TEST(NoelleTest, TracksRequestedAbstractions) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) s = s + i;
      return s;
    }
  )");
  Noelle N(*M);
  EXPECT_TRUE(N.getRequestedAbstractions().empty());
  N.getPDG();
  EXPECT_TRUE(N.getRequestedAbstractions().contains(Abstraction::PDG));
  EXPECT_FALSE(N.getRequestedAbstractions().contains(Abstraction::CG));
  EXPECT_TRUE(N.getRequestedAbstractions().names().count("PDG"));
  N.getCallGraph();
  EXPECT_TRUE(N.getRequestedAbstractions().contains(Abstraction::CG));
  N.resetRequestTracking();
  EXPECT_TRUE(N.getRequestedAbstractions().empty());
}

TEST(NoelleTest, HotnessFiltersLoops) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10000; i = i + 1) s = s + i;   // hot
      for (int i = 0; i < 2; i = i + 1) s = s + 1;       // cold
      return s;
    }
  )");
  // Profile, embed, then load through Noelle with a hotness bar.
  auto Prof = Profiler::profileModule(*M);
  Prof.embed(*M);

  NoelleOptions Opts;
  Opts.MinimumLoopHotness = 0.5;
  Noelle N(*M, Opts);
  auto Hot = N.getLoopContents();
  ASSERT_EQ(Hot.size(), 1u);

  NoelleOptions All;
  Noelle N2(*M, All);
  EXPECT_EQ(N2.getLoopContents().size(), 2u);
}

} // namespace
