//===----------------------------------------------------------------------===//
///
/// \file
/// check-suite: runs noelle-check over every benchmark kernel under each
/// parallelizing transform. A clean suite means the transforms discharge
/// every loop-carried dependence they claim to handle and introduce no
/// statically detectable data race — on any kernel, not just the unit
/// fixtures. Registered under the ctest label "check-suite".
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "noelle/Noelle.h"
#include "opt/Passes.h"
#include "verify/NoelleCheck.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;

namespace {

class CheckSuiteTest : public ::testing::TestWithParam<std::string> {};

verify::CheckReport checkKernel(const bench::Benchmark &B,
                                const std::string &Which,
                                unsigned &Parallelized,
                                bool Optimize = false) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  if (Optimize)
    opt::runPipeline(*M);
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
  Noelle N(*M);
  Parallelized = 0;
  if (Which == "doall") {
    DOALL Tool(N);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else if (Which == "helix") {
    HELIXOptions O;
    O.MinimumEstimatedSpeedup = 0;
    HELIX Tool(N, O);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else {
    DSWPOptions O;
    O.MinimumStageWeight = 0;
    DSWP Tool(N, O);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  }
  return verify::checkModule(*M, Snap);
}

TEST_P(CheckSuiteTest, KernelIsCleanUnderAllTransforms) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  for (const char *Which : {"doall", "helix", "dswp"}) {
    unsigned Parallelized = 0;
    verify::CheckReport Rep = checkKernel(*B, Which, Parallelized);
    EXPECT_TRUE(Rep.clean()) << B->Name << " under " << Which << " ("
                             << Parallelized << " loops parallelized):\n"
                             << Rep.str();
  }
}

// Same audit, but the optimizer pipeline runs first so the transforms
// see inlined, unrolled, and vectorized loops — the production order in
// which noelle-opt feeds the parallelizers.
TEST_P(CheckSuiteTest, OptimizedKernelIsCleanUnderAllTransforms) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  for (const char *Which : {"doall", "helix", "dswp"}) {
    unsigned Parallelized = 0;
    verify::CheckReport Rep =
        checkKernel(*B, Which, Parallelized, /*Optimize=*/true);
    EXPECT_TRUE(Rep.clean()) << B->Name << " (optimized) under " << Which
                             << " (" << Parallelized
                             << " loops parallelized):\n"
                             << Rep.str();
  }
}

std::vector<std::string> allKernelNames() {
  std::vector<std::string> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, CheckSuiteTest, ::testing::ValuesIn(allKernelNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
