//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parallel runtime primitives: the persistent
/// work-stealing thread pool (worker reuse, forward progress for
/// blocking jobs), the per-engine blocking queues under producer/
/// consumer contention, sequential-segment gate ordering, chunked
/// dispatch coverage, and the heap allocator's bounds check.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "runtime/ParallelRuntime.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace noelle;
using nir::BlockingQueue;
using nir::Context;
using nir::ExecutionEngine;
using nir::ThreadPool;

namespace {

int64_t runWithRuntime(const char *Src, ExecutionEngine **OutEngine,
                       std::unique_ptr<ExecutionEngine> &Keep,
                       std::unique_ptr<nir::Module> &KeepM, Context &Ctx) {
  KeepM = minic::compileMiniCOrDie(Ctx, Src);
  Keep = std::make_unique<ExecutionEngine>(*KeepM);
  registerParallelRuntime(*Keep);
  if (OutEngine)
    *OutEngine = Keep.get();
  return Keep->runMain();
}

int64_t runWithRuntime(const char *Src) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  return E.runMain();
}

//===----------------------------------------------------------------------===//
// ThreadPool unit tests
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsAllJobsAndBlocksUntilDone) {
  ThreadPool Pool;
  std::atomic<int> Count{0};
  std::vector<ThreadPool::Job> Jobs;
  for (int I = 0; I < 64; ++I)
    Jobs.push_back([&Count] { Count.fetch_add(1); });
  Pool.run(std::move(Jobs));
  // run() is a barrier: every job has finished once it returns.
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, ReusesWorkersAcrossBatches) {
  ThreadPool Pool;
  std::vector<ThreadPool::Job> Warm;
  for (int I = 0; I < 8; ++I)
    Warm.push_back([] {});
  Pool.run(std::move(Warm));
  uint64_t AfterWarmup = Pool.getThreadsCreated();
  EXPECT_GE(AfterWarmup, 1u);

  for (int Batch = 0; Batch < 50; ++Batch) {
    std::vector<ThreadPool::Job> Jobs;
    for (int I = 0; I < 8; ++I)
      Jobs.push_back([] {});
    Pool.run(std::move(Jobs));
  }
  // Same peak concurrency -> the pool must not have created any thread
  // after warm-up.
  EXPECT_EQ(Pool.getThreadsCreated(), AfterWarmup);
  EXPECT_EQ(Pool.getBatchesRun(), 51u);
}

TEST(ThreadPoolTest, InterdependentBlockingJobsMakeProgress) {
  // Jobs that block on each other (the HELIX/DSWP shape): each job J
  // waits for flag J-1 before setting flag J. A pool without the
  // forward-progress guarantee deadlocks here on a small machine.
  ThreadPool Pool;
  constexpr int N = 16;
  std::vector<std::atomic<int>> Flags(N);
  for (auto &F : Flags)
    F.store(0);
  std::vector<ThreadPool::Job> Jobs;
  for (int J = N - 1; J >= 0; --J) // worst-case enqueue order
    Jobs.push_back([&Flags, J] {
      if (J > 0)
        while (Flags[J - 1].load(std::memory_order_acquire) == 0)
          std::this_thread::yield();
      Flags[J].store(1, std::memory_order_release);
    });
  Pool.run(std::move(Jobs));
  for (auto &F : Flags)
    EXPECT_EQ(F.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentBatchesFromMultipleThreads) {
  // Nested/concurrent dispatches (a HELIX region inside a DSWP stage)
  // issue run() from worker threads; the pool must keep all batches
  // progressing.
  ThreadPool Pool;
  std::atomic<int> Count{0};
  std::vector<ThreadPool::Job> Outer;
  for (int I = 0; I < 4; ++I)
    Outer.push_back([&Pool, &Count] {
      std::vector<ThreadPool::Job> Inner;
      for (int J = 0; J < 4; ++J)
        Inner.push_back([&Count] { Count.fetch_add(1); });
      Pool.run(std::move(Inner));
    });
  Pool.run(std::move(Outer));
  EXPECT_EQ(Count.load(), 16);
}

//===----------------------------------------------------------------------===//
// BlockingQueue unit tests
//===----------------------------------------------------------------------===//

TEST(BlockingQueueTest, ProducerConsumerStress) {
  // Two producers, two consumers, tiny capacity so both the full and
  // the empty wait paths are exercised constantly.
  BlockingQueue Q(8);
  constexpr int64_t PerProducer = 1000;
  std::atomic<int64_t> Sum{0};
  std::atomic<int64_t> Received{0};

  auto Producer = [&Q] {
    for (int64_t V = 0; V < PerProducer; ++V)
      Q.push(V);
  };
  auto Consumer = [&] {
    while (Received.fetch_add(1) < 2 * PerProducer)
      Sum.fetch_add(Q.pop());
  };

  std::thread P1(Producer), P2(Producer);
  std::thread C1(Consumer), C2(Consumer);
  P1.join();
  P2.join();
  C1.join();
  C2.join();
  EXPECT_EQ(Sum.load(), 2 * (PerProducer * (PerProducer - 1) / 2));
}

//===----------------------------------------------------------------------===//
// Engine-level runtime tests (MiniC programs through the interpreter)
//===----------------------------------------------------------------------===//

TEST(RuntimeTest, QueueStressThroughInterpreter) {
  // 2 producer tasks and 2 consumer tasks share one capacity-8 queue,
  // so both the queue-full and queue-empty wait paths run constantly.
  // Producers push disjoint ranges covering 0..999; consumers split
  // them arbitrarily but the sum of both partitions is fixed.
  const char *Src = R"(
    extern int *noelle_queue_create(int capacity);
    extern void noelle_queue_push(int *q, int v);
    extern int noelle_queue_pop(int *q);
    extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                                int n);
    int sums[2];
    void task(int *q, int t, int n) {
      if (t < 2) {
        int i = 0;
        while (i < 500) {
          noelle_queue_push(q, t * 500 + i);
          i = i + 1;
        }
      } else {
        int i = 0;
        int s = 0;
        while (i < 500) {
          s = s + noelle_queue_pop(q);
          i = i + 1;
        }
        sums[t - 2] = s;
      }
      return;
    }
    int main() {
      int *q = noelle_queue_create(8);
      noelle_dispatch(task, q, 4);
      return sums[0] + sums[1];
    }
  )";
  EXPECT_EQ(runWithRuntime(Src), 999 * 1000 / 2);
}

TEST(RuntimeTest, SequentialSegmentOrderingUnderContention) {
  // 4 tasks x 16 iterations increment a NON-atomic global inside a
  // sequential segment. Only the gate's ordering (ss_wait parks until
  // the counter reaches this task's turn) makes this race-free; any
  // lost update or misordering changes the result.
  const char *Src = R"(
    extern int *noelle_ss_create(int count);
    extern void noelle_ss_wait(int *gates, int ss, int iter);
    extern void noelle_ss_signal(int *gates, int ss, int iter);
    extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                                int n);
    int counter;
    void task(int *gates, int t, int n) {
      int i = t;
      while (i < 64) {
        noelle_ss_wait(gates, 0, i);
        counter = counter + 1;
        noelle_ss_signal(gates, 0, i);
        i = i + n;
      }
      return;
    }
    int main() {
      int *gates = noelle_ss_create(1);
      noelle_dispatch(task, gates, 4);
      return counter;
    }
  )";
  for (int Round = 0; Round < 5; ++Round)
    EXPECT_EQ(runWithRuntime(Src), 64);
}

TEST(RuntimeTest, WorkersAreReusedAcrossDispatches) {
  const char *Src = R"(
    extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                                int n);
    int env[1];
    void task(int *env, int t, int n) { return; }
    int main() {
      noelle_dispatch(task, env, 4);
      return 0;
    }
  )";
  Context Ctx;
  std::unique_ptr<nir::Module> M;
  std::unique_ptr<ExecutionEngine> E;
  ExecutionEngine *EP = nullptr;
  runWithRuntime(Src, &EP, E, M, Ctx);
  uint64_t AfterFirst = EP->getThreadPool().getThreadsCreated();
  EXPECT_GE(AfterFirst, 1u);
  for (int I = 0; I < 10; ++I)
    EP->runMain();
  // Repeated dispatches of the same width must not create new threads.
  EXPECT_EQ(EP->getThreadPool().getThreadsCreated(), AfterFirst);
}

TEST(RuntimeTest, ChunkedDispatchCoversEveryTaskExactlyOnce) {
  // 13 tasks, grain 3 (doesn't divide evenly): every logical task index
  // must run exactly once, regardless of which runner claims the chunk.
  const char *Src = R"(
    extern void noelle_dispatch_chunked(void (*task)(int *, int, int),
                                        int *env, int n, int grain);
    int hits[13];
    void task(int *env, int t, int n) {
      hits[t] = hits[t] + 1;
      return;
    }
    int main() {
      noelle_dispatch_chunked(task, hits, 13, 3);
      int i = 0;
      int bad = 0;
      while (i < 13) {
        if (hits[i] != 1) { bad = bad + 1; }
        i = i + 1;
      }
      return bad;
    }
  )";
  EXPECT_EQ(runWithRuntime(Src), 0);
}

TEST(RuntimeTest, ChunkedDispatchMatchesStaticResults) {
  // Same reduction computed via static and chunked dispatch must agree.
  const char *StaticSrc = R"(
    extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                                int n);
    int acc[4];
    void task(int *env, int t, int n) {
      int i = t;
      int s = 0;
      while (i < 1000) { s = s + i * i; i = i + n; }
      acc[t] = s;
      return;
    }
    int main() {
      noelle_dispatch(task, acc, 4);
      return acc[0] + acc[1] + acc[2] + acc[3];
    }
  )";
  const char *ChunkedSrc = R"(
    extern void noelle_dispatch_chunked(void (*task)(int *, int, int),
                                        int *env, int n, int grain);
    int acc[4];
    void task(int *env, int t, int n) {
      int i = t;
      int s = 0;
      while (i < 1000) { s = s + i * i; i = i + n; }
      acc[t] = s;
      return;
    }
    int main() {
      noelle_dispatch_chunked(task, acc, 4, 2);
      return acc[0] + acc[1] + acc[2] + acc[3];
    }
  )";
  EXPECT_EQ(runWithRuntime(StaticSrc), runWithRuntime(ChunkedSrc));
}

TEST(RuntimeTest, QueueRegistryIsPerEngine) {
  // Queues are owned by the engine that created them, not by a
  // process-global singleton: a fresh engine starts with an empty
  // registry even after another engine created queues.
  const char *Src = R"(
    extern int *noelle_queue_create(int capacity);
    int main() {
      noelle_queue_create(4);
      noelle_queue_create(4);
      return 0;
    }
  )";
  Context Ctx1;
  auto M1 = minic::compileMiniCOrDie(Ctx1, Src);
  ExecutionEngine E1(*M1);
  registerParallelRuntime(E1);
  E1.runMain();
  EXPECT_EQ(E1.getQueueRegistry().size(), 2u);

  Context Ctx2;
  auto M2 = minic::compileMiniCOrDie(Ctx2, Src);
  ExecutionEngine E2(*M2);
  registerParallelRuntime(E2);
  E2.runMain();
  // With the old global registry this would observe E1's queues too.
  EXPECT_EQ(E2.getQueueRegistry().size(), 2u);
}

TEST(RuntimeTest, HeapAllocIsRaceFreeUnderConcurrentAllocation) {
  // Hammer the engine's bump allocator (malloc -> heapAlloc) from 4
  // pooled tasks; blocks must be disjoint. With the old
  // fetch_add-then-check scheme, racing allocations near the heap end
  // could both commit and hand out overlapping memory.
  const char *Src = R"(
    extern void noelle_dispatch(void (*task)(int *, int, int), int *env,
                                int n);
    int ok[4];
    void task(int *env, int t, int n) {
      int i = 0;
      int good = 1;
      while (i < 200) {
        int *p = malloc(16);
        p[0] = t * 1000 + i;
        p[1] = t * 1000 - i;
        if (p[0] != t * 1000 + i) { good = 0; }
        if (p[1] != t * 1000 - i) { good = 0; }
        i = i + 1;
      }
      ok[t] = good;
      return;
    }
    int main() {
      noelle_dispatch(task, ok, 4);
      return ok[0] + ok[1] + ok[2] + ok[3];
    }
  )";
  EXPECT_EQ(runWithRuntime(Src), 4);
}

} // namespace
