//===----------------------------------------------------------------------===//
///
/// \file
/// planner-suite: the full one-shot pipeline — plan, audit the plan
/// (noelle-check --plan semantics), apply, audit the transformed module,
/// execute — over every benchmark kernel. A clean suite means the
/// planner only ever emits plans the verifier accepts and the applied
/// plans preserve every kernel's sequential result. Registered under the
/// ctest label "planner-suite".
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "planner/Feedback.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "verify/PlanCheck.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

class PlannerSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PlannerSuiteTest, PlanApplyCheckExecute) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);

  int64_t Expected;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, B->Source);
    ExecutionEngine E(*M);
    Expected = E.runMain();
  }

  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
  Noelle N(*M);
  planner::Planner P(N);

  // Plan, then audit the plan before touching the module.
  planner::ProgramPlan Plan = P.plan();
  verify::CheckReport PlanRep = verify::checkPlan(*M, Plan);
  EXPECT_TRUE(PlanRep.clean())
      << B->Name << " plan audit:\n" << PlanRep.str();

  // Every planned entry must actually apply — the plan is a promise.
  for (const auto &D : P.apply(Plan))
    EXPECT_TRUE(D.Parallelized)
        << B->Name << " entry in " << D.FunctionName
        << " failed to apply: " << D.Reason;

  // The transformed module must pass the post-transform audit.
  verify::CheckReport Rep = verify::checkModule(*M, Snap);
  EXPECT_TRUE(Rep.clean()) << B->Name << " ("
                           << Plan.Entries.size()
                           << " planned loops):\n" << Rep.str();

  // And still compute the sequential result.
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected) << B->Name;

  // Feedback: measured speedups from the run's DispatchRecords flow
  // back into the plan. Every top-level entry that dispatched must be
  // measurable (the record→origin→entry join holds), and a measured
  // plan must still round-trip through the wire format.
  planner::FeedbackResult FB = planner::applyMeasuredSpeedups(
      Plan, *M, E.getDispatchRecords());
  if (!E.getDispatchRecords().empty())
    EXPECT_GT(FB.EntriesMeasured, 0u)
        << B->Name << ": no dispatch record mapped back to a plan entry";
  // Shortfalls (measured < 0.8x of the estimate) are a warning metric,
  // not a failure: the estimate comes from static weights, the
  // measurement from real records, and honest disagreement is exactly
  // what the planner.feedback.speedup_shortfall counter exists to
  // surface.
  for (const auto &En : Plan.Entries)
    if (En.MeasuredMilli != 0 &&
        static_cast<double>(En.MeasuredMilli) <
            0.8 * static_cast<double>(En.SpeedupMilli))
      std::fprintf(stderr,
                   "[planner-feedback] %s %s: measured %lldm < 0.8x "
                   "planned %lldm\n",
                   B->Name.c_str(), En.FunctionName.c_str(),
                   static_cast<long long>(En.MeasuredMilli),
                   static_cast<long long>(En.SpeedupMilli));
  planner::ProgramPlan RT;
  std::string Err;
  ASSERT_TRUE(planner::ProgramPlan::deserialize(Plan.serialize(), RT, Err))
      << Err;
  EXPECT_TRUE(RT == Plan) << B->Name << ": measured plan round-trip";
}

std::vector<std::string> allKernelNames() {
  std::vector<std::string> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PlannerSuiteTest, ::testing::ValuesIn(allKernelNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
