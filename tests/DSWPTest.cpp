//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for DSWP: pipeline-stage partitioning, queue-based
/// value forwarding, and semantic preservation.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "xforms/DSWP.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

struct DSWPResult {
  int64_t Sequential = 0;
  int64_t Parallel = 0;
  unsigned LoopsParallelized = 0;
  unsigned Stages = 0;
  unsigned Queues = 0;
};

DSWPResult runBoth(const char *Src, unsigned Cores) {
  DSWPResult R;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M);
    R.Sequential = E.runMain();
  }
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);
    Noelle N(*M);
    DSWPOptions Opts;
    Opts.NumCores = Cores;
    Opts.MinimumStageWeight = 0; // tests force the transformation
    DSWP Tool(N, Opts);
    for (const auto &D : Tool.run())
      if (D.Parallelized) {
        ++R.LoopsParallelized;
        R.Stages += D.NumStages;
        R.Queues += D.NumQueues;
      }
    verify::CheckReport Rep = verify::checkModule(*M, Snap);
    EXPECT_TRUE(Rep.clean()) << Rep.str();
    ExecutionEngine E(*M);
    registerParallelRuntime(E);
    R.Parallel = E.runMain();
  }
  return R;
}

TEST(DSWPTest, TwoStagePipelineWithRecurrences) {
  // Stage 1: a sequential pointer-chase-like recurrence produces values;
  // stage 2: a second recurrence consumes them. Neither stage is DOALL,
  // but they pipeline.
  const char *Src = R"(
    int src[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) src[i] = (i * 37 + 11) % 101;
      int x = 1;
      int y = 0;
      for (int i = 0; i < 512; i = i + 1) {
        x = (x * 13 + src[i]) % 65537;    // stage 1 (recurrence on x)
        y = (y + x * 3) % 39916801;       // stage 2 (recurrence on y, consumes x)
      }
      return y;
    }
  )";
  auto R = runBoth(Src, 2);
  EXPECT_GE(R.LoopsParallelized, 1u);
  EXPECT_GE(R.Stages, 2u);
  EXPECT_GE(R.Queues, 1u);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DSWPTest, RespectsBackwardDependences) {
  // y feeds back into x: a pipeline would need a backward queue.
  const char *Src = R"(
    int main() {
      int x = 1;
      int y = 0;
      for (int i = 0; i < 64; i = i + 1) {
        x = (x + y) % 1013;
        y = (y * 3 + x) % 2027;
      }
      return x + y;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DSWP Tool(N);
  for (const auto &D : Tool.run())
    EXPECT_FALSE(D.Parallelized) << "merged recurrences cannot pipeline";
}

TEST(DSWPTest, MemoryStagesStayTogether) {
  // The store and the dependent load must land in one stage; with the
  // independent compute that still leaves two stages.
  const char *Src = R"(
    int scratch[1];
    int out[256];
    int main() {
      scratch[0] = 3;
      int acc = 0;
      for (int i = 0; i < 256; i = i + 1) {
        int s = scratch[0];
        scratch[0] = (s * 5 + i) % 10007;    // memory recurrence
        acc = (acc + s * s) % 1000003;       // consumes s
      }
      return acc;
    }
  )";
  auto R = runBoth(Src, 2);
  EXPECT_EQ(R.Sequential, R.Parallel);
}

TEST(DSWPTest, ThreadSweepPreservesSemantics) {
  const char *Src = R"(
    int src[300];
    int main() {
      for (int i = 0; i < 300; i = i + 1) src[i] = i * i % 211;
      int x = 2;
      int y = 5;
      for (int i = 0; i < 300; i = i + 1) {
        x = (x * 31 + src[i]) % 524287;
        y = (y + x) % 1000033;
      }
      return y;
    }
  )";
  int64_t Expected = 0;
  {
    Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Src);
    ExecutionEngine E(*M);
    Expected = E.runMain();
  }
  for (unsigned Cores : {2u, 3u, 4u}) {
    auto R = runBoth(Src, Cores);
    EXPECT_EQ(R.Parallel, Expected) << "cores=" << Cores;
  }
}

TEST(DSWPTest, QueueOpsAreCountedForTheModel) {
  const char *Src = R"(
    int src[100];
    int main() {
      for (int i = 0; i < 100; i = i + 1) src[i] = i;
      int x = 1;
      int y = 0;
      for (int i = 0; i < 100; i = i + 1) {
        x = (x * 3 + src[i]) % 9973;
        y = (y + x) % 99991;
      }
      return y;
    }
  )";
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Src);
  Noelle N(*M);
  DSWPOptions Opts;
  Opts.NumCores = 2;
  Opts.MinimumStageWeight = 0;
  DSWP Tool(N, Opts);
  unsigned Done = 0;
  for (const auto &D : Tool.run())
    Done += D.Parallelized;
  ASSERT_GE(Done, 1u);
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  E.runMain();
  bool SawQueueTraffic = false;
  for (const auto &R : E.getDispatchRecords())
    if (R.TotalTaskSyncOps > 0)
      SawQueueTraffic = true;
  EXPECT_TRUE(SawQueueTraffic);
}

} // namespace
