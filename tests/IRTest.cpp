//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the NIR substrate: types, values, use lists, building,
/// printing, parsing round-trips, the verifier, and the linker.
///
//===----------------------------------------------------------------------===//

#include "ir/IDs.h"
#include "ir/IRBuilder.h"
#include "ir/Linker.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nir;

namespace {

TEST(TypeTest, PrimitiveSizesAndNames) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt64Ty()->getStoreSize(), 8u);
  EXPECT_EQ(Ctx.getInt32Ty()->getStoreSize(), 4u);
  EXPECT_EQ(Ctx.getInt8Ty()->getStoreSize(), 1u);
  EXPECT_EQ(Ctx.getDoubleTy()->getStoreSize(), 8u);
  EXPECT_EQ(Ctx.getPtrTy()->getStoreSize(), 8u);
  EXPECT_EQ(Ctx.getInt64Ty()->str(), "i64");
  EXPECT_EQ(Ctx.getPtrTy()->str(), "ptr");
}

TEST(TypeTest, ArrayTypesAreUniqued) {
  Context Ctx;
  Type *A = Ctx.getArrayTy(Ctx.getInt64Ty(), 10);
  Type *B = Ctx.getArrayTy(Ctx.getInt64Ty(), 10);
  Type *C = Ctx.getArrayTy(Ctx.getInt64Ty(), 11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A->getStoreSize(), 80u);
  EXPECT_EQ(A->str(), "[10 x i64]");
}

TEST(TypeTest, FunctionTypesAreUniqued) {
  Context Ctx;
  std::vector<Type *> P = {Ctx.getInt64Ty(), Ctx.getPtrTy()};
  Type *A = Ctx.getFunctionTy(Ctx.getVoidTy(), P);
  Type *B = Ctx.getFunctionTy(Ctx.getVoidTy(), P);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->getNumParams(), 2u);
}

TEST(ConstantTest, IntsAreInterned) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt64(42), Ctx.getInt64(42));
  EXPECT_NE(Ctx.getInt64(42), Ctx.getInt64(43));
  EXPECT_NE(static_cast<Value *>(Ctx.getInt64(1)),
            static_cast<Value *>(Ctx.getInt32(1)));
  EXPECT_EQ(Ctx.getInt64(-7)->getValue(), -7);
}

/// Builds: func @f(%n: i64) -> i64 { entry: %x = add %n, 1; ret %x }
std::unique_ptr<Module> buildSimpleModule(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "m");
  Type *FnTy = Ctx.getFunctionTy(Ctx.getInt64Ty(), {Ctx.getInt64Ty()});
  Function *F = M->createFunction(FnTy, "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *X = B.createAdd(F->getArg(0), B.getInt64(1), "x");
  B.createRet(X);
  return M;
}

TEST(ValueTest, UseListsTrackOperands) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  Function *F = M->getFunction("f");
  Argument *N = F->getArg(0);
  EXPECT_EQ(N->getNumUses(), 1u);
  Instruction *Add = F->getEntryBlock().front();
  EXPECT_EQ(Add->getOperand(0), N);
  EXPECT_EQ(N->users().size(), 1u);
  EXPECT_EQ(N->users()[0], Add);
}

TEST(ValueTest, ReplaceAllUsesWith) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  Function *F = M->getFunction("f");
  Argument *N = F->getArg(0);
  Value *C = Ctx.getInt64(100);
  N->replaceAllUsesWith(C);
  EXPECT_EQ(N->getNumUses(), 0u);
  Instruction *Add = F->getEntryBlock().front();
  EXPECT_EQ(Add->getOperand(0), C);
}

TEST(ValueTest, EraseInstruction) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  Function *F = M->getFunction("f");
  Instruction *Add = F->getEntryBlock().front();
  Instruction *Ret = F->getEntryBlock().back();
  Ret->eraseFromParent();
  Add->replaceAllUsesWith(Ctx.getUndef(Add->getType()));
  Add->eraseFromParent();
  EXPECT_EQ(F->getEntryBlock().size(), 0u);
}

TEST(InstructionTest, CloneCopiesOperandsAndMetadata) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  Function *F = M->getFunction("f");
  Instruction *Add = F->getEntryBlock().front();
  Add->setMetadata("k", "v");
  Instruction *C = Add->clone();
  EXPECT_EQ(C->getOperand(0), Add->getOperand(0));
  EXPECT_EQ(C->getMetadata("k"), "v");
  EXPECT_EQ(C->getParent(), nullptr);
  C->replaceUsesOfWith(Add->getOperand(0), Ctx.getInt64(5));
  EXPECT_EQ(C->getOperand(0), Ctx.getInt64(5));
  delete C;
}

TEST(InstructionTest, MoveBefore) {
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Function *F =
      M->createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = B.createAdd(B.getInt64(1), B.getInt64(2), "a");
  Value *C = B.createMul(B.getInt64(3), B.getInt64(4), "c");
  B.createRet(C);
  // Move mul before add.
  cast<Instruction>(C)->moveBefore(cast<Instruction>(A));
  EXPECT_EQ(BB->front(), C);
}

TEST(BasicBlockTest, SuccessorsAndPredecessors) {
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Function *F =
      M->createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(Ctx.getTrue(), Then, Else);
  B.setInsertPoint(Then);
  B.createRetVoid();
  B.setInsertPoint(Else);
  B.createRetVoid();

  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Then);
  EXPECT_EQ(Succs[1], Else);
  ASSERT_EQ(Then->predecessors().size(), 1u);
  EXPECT_EQ(Then->predecessors()[0], Entry);
}

TEST(BasicBlockTest, SplitBefore) {
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Function *F =
      M->createFunction(Ctx.getFunctionTy(Ctx.getInt64Ty(), {}), "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = B.createAdd(B.getInt64(1), B.getInt64(2), "a");
  Instruction *MulI = B.createMul(B.getInt64(3), B.getInt64(4), "c");
  B.createRet(A);

  BasicBlock *Tail = BB->splitBefore(MulI, "tail");
  EXPECT_EQ(F->getNumBlocks(), 2u);
  EXPECT_EQ(BB->size(), 2u); // add + br
  EXPECT_EQ(Tail->size(), 2u); // mul + ret
  EXPECT_EQ(MulI->getParent(), Tail);
  ASSERT_EQ(BB->successors().size(), 1u);
  EXPECT_EQ(BB->successors()[0], Tail);
  EXPECT_TRUE(moduleVerifies(*M));
}

TEST(PhiTest, IncomingManagement) {
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Function *F =
      M->createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}), "f");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C = F->createBlock("c");
  IRBuilder B(Ctx, C);
  PhiInst *P = B.createPhi(Ctx.getInt64Ty(), "p");
  P->addIncoming(Ctx.getInt64(1), A);
  P->addIncoming(Ctx.getInt64(2), C);
  EXPECT_EQ(P->getNumIncoming(), 2u);
  EXPECT_EQ(P->getIncomingValueForBlock(A), Ctx.getInt64(1));
  EXPECT_EQ(P->getBlockIndex(C), 1);
  P->removeIncoming(0);
  EXPECT_EQ(P->getNumIncoming(), 1u);
  EXPECT_EQ(P->getIncomingValue(0), Ctx.getInt64(2));
  EXPECT_EQ(P->getIncomingBlock(0), C);
}

TEST(PrinterParserTest, RoundTripSimple) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  std::string Text = M->str();
  std::string Error;
  auto M2 = parseModule(Ctx, Text, Error);
  ASSERT_NE(M2, nullptr) << Error;
  EXPECT_EQ(M2->str(), Text);
}

TEST(PrinterParserTest, ParseRichProgram) {
  Context Ctx;
  const char *Text = R"(
module "rich"
meta "opt" = "O3"
global @data : [8 x i64] = [1, 2, 3, 4, 5, 6, 7, 8]
declare @print_i64(i64) -> void

func @sum(%n: i64) -> i64 {
entry:
  br label loop
loop:
  %i = phi i64 [0, entry], [%i.next, loop]
  %acc = phi i64 [0, entry], [%acc.next, loop]
  %p = gep @data, i64 %i, scale 8
  %v = load i64, %p
  %acc.next = add i64 %acc, %v
  %i.next = add i64 %i, 1
  %cond = cmp slt i64 %i.next, %n
  br %cond, label loop, label exit
exit:
  call void @print_i64(i64 %acc.next)
  ret i64 %acc.next
}
)";
  std::string Error;
  auto M = parseModule(Ctx, Text, Error);
  ASSERT_NE(M, nullptr) << Error;
  EXPECT_TRUE(moduleVerifies(*M));
  EXPECT_EQ(M->getName(), "rich");
  EXPECT_EQ(M->getModuleMetadata("opt"), "O3");
  ASSERT_NE(M->getGlobal("data"), nullptr);
  EXPECT_EQ(M->getGlobal("data")->getInitWords().size(), 8u);
  Function *Sum = M->getFunction("sum");
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(Sum->getNumBlocks(), 3u);

  // Round-trip again.
  std::string Text2 = M->str();
  auto M2 = parseModule(Ctx, Text2, Error);
  ASSERT_NE(M2, nullptr) << Error;
  EXPECT_EQ(M2->str(), Text2);
}

TEST(PrinterParserTest, MetadataRoundTrips) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  Function *F = M->getFunction("f");
  F->getEntryBlock().front()->setMetadata("noelle.id", "7");
  F->setMetadata("hot", "yes");
  std::string Error;
  auto M2 = parseModule(Ctx, M->str(), Error);
  ASSERT_NE(M2, nullptr) << Error;
  Function *F2 = M2->getFunction("f");
  EXPECT_EQ(F2->getMetadata("hot"), "yes");
  EXPECT_EQ(F2->getEntryBlock().front()->getMetadata("noelle.id"), "7");
}

TEST(PrinterParserTest, ErrorsAreReported) {
  Context Ctx;
  std::string Error;
  EXPECT_EQ(parseModule(Ctx, "func @f() -> i64 {\nentry:\n  ret i64 %nope\n}",
                        Error),
            nullptr);
  EXPECT_NE(Error.find("nope"), std::string::npos);

  Error.clear();
  EXPECT_EQ(parseModule(Ctx, "garbage top level", Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(PrinterParserTest, NegativeAndFloatConstants) {
  Context Ctx;
  const char *Text = R"(
func @f() -> double {
entry:
  %x = fadd double -1.5, 2.25
  %y = add i64 -42, 1
  %z = sitofp i64 %y to double
  %w = fmul double %x, %z
  ret double %w
}
)";
  std::string Error;
  auto M = parseModule(Ctx, Text, Error);
  ASSERT_NE(M, nullptr) << Error;
  auto M2 = parseModule(Ctx, M->str(), Error);
  ASSERT_NE(M2, nullptr) << Error;
  EXPECT_EQ(M->str(), M2->str());
}

TEST(VerifierTest, CatchesMissingTerminator) {
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Function *F =
      M->createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}), "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  B.createAdd(B.getInt64(1), B.getInt64(2));
  auto Errors = verifyModule(*M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, CatchesPhiMissingPredecessor) {
  Context Ctx;
  const char *Text = R"(
func @f(%c: i1) -> i64 {
entry:
  br %c, label a, label b
a:
  br label merge
b:
  br label merge
merge:
  %x = phi i64 [1, a]
  ret i64 %x
}
)";
  std::string Error;
  auto M = parseModule(Ctx, Text, Error);
  ASSERT_NE(M, nullptr) << Error;
  auto Errors = verifyModule(*M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("missing an incoming value"), std::string::npos);
}

TEST(LinkerTest, LinksDeclarationToDefinition) {
  Context Ctx;
  std::string Error;
  auto A = parseModule(Ctx, R"(
declare @g(i64) -> i64
func @f(%x: i64) -> i64 {
entry:
  %r = call i64 @g(i64 %x)
  ret i64 %r
}
)",
                       Error);
  ASSERT_NE(A, nullptr) << Error;
  auto B = parseModule(Ctx, R"(
func @g(%x: i64) -> i64 {
entry:
  %r = mul i64 %x, 2
  ret i64 %r
}
)",
                       Error);
  ASSERT_NE(B, nullptr) << Error;

  auto Linked = linkModules(Ctx, {A.get(), B.get()}, Error);
  ASSERT_NE(Linked, nullptr) << Error;
  Function *G = Linked->getFunction("g");
  ASSERT_NE(G, nullptr);
  EXPECT_FALSE(G->isDeclaration());
  EXPECT_TRUE(moduleVerifies(*Linked));
}

TEST(LinkerTest, RejectsDuplicateDefinitions) {
  Context Ctx;
  std::string Error;
  const char *Text = R"(
func @f() -> i64 {
entry:
  ret i64 1
}
)";
  auto A = parseModule(Ctx, Text, Error);
  auto B = parseModule(Ctx, Text, Error);
  auto Linked = linkModules(Ctx, {A.get(), B.get()}, Error);
  EXPECT_EQ(Linked, nullptr);
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(IDsTest, AssignAndIndex) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  assignDeterministicIDs(*M);
  auto Index = buildInstructionIndex(*M);
  EXPECT_EQ(Index.size(), 2u); // add + ret
  EXPECT_EQ(Index[0]->getOpcodeName(), "add");
  clearDeterministicIDs(*M);
  EXPECT_TRUE(buildInstructionIndex(*M).empty());
}

TEST(IDsTest, IDsSurviveRoundTrip) {
  Context Ctx;
  auto M = buildSimpleModule(Ctx);
  assignDeterministicIDs(*M);
  std::string Error;
  auto M2 = parseModule(Ctx, M->str(), Error);
  ASSERT_NE(M2, nullptr) << Error;
  auto Index = buildInstructionIndex(*M2);
  EXPECT_EQ(Index.size(), 2u);
}

} // namespace
