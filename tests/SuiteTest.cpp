//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the benchmark suite: every kernel compiles, verifies, runs
/// deterministically, and keeps its result under each parallelizer.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

int64_t runSequential(const bench::Benchmark &B) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B.Source);
  ExecutionEngine E(*M);
  return E.runMain();
}

class SuiteBenchmark : public ::testing::TestWithParam<const char *> {};

TEST_P(SuiteBenchmark, CompilesVerifiesAndRunsDeterministically) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  Context Ctx;
  std::string Error;
  auto M = minic::compileMiniC(Ctx, B->Source, Error);
  ASSERT_NE(M, nullptr) << B->Name << ": " << Error;
  EXPECT_TRUE(nir::moduleVerifies(*M)) << B->Name;
  int64_t R1 = runSequential(*B);
  int64_t R2 = runSequential(*B);
  EXPECT_EQ(R1, R2) << B->Name << " is nondeterministic";
}

TEST_P(SuiteBenchmark, DOALLPreservesResult) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  int64_t Expected = runSequential(*B);
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  Noelle N(*M);
  DOALLOptions Opts;
  Opts.NumCores = 4;
  DOALL Tool(N, Opts);
  Tool.run();
  ASSERT_TRUE(nir::moduleVerifies(*M)) << B->Name;
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected) << B->Name;
}

TEST_P(SuiteBenchmark, HELIXPreservesResult) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  int64_t Expected = runSequential(*B);
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  Noelle N(*M);
  HELIXOptions Opts;
  Opts.NumCores = 4;
  HELIX Tool(N, Opts);
  Tool.run();
  ASSERT_TRUE(nir::moduleVerifies(*M)) << B->Name;
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected) << B->Name;
}

TEST_P(SuiteBenchmark, DSWPPreservesResult) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  int64_t Expected = runSequential(*B);
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, B->Source);
  Noelle N(*M);
  DSWPOptions Opts;
  Opts.NumCores = 2;
  DSWP Tool(N, Opts);
  Tool.run();
  ASSERT_TRUE(nir::moduleVerifies(*M)) << B->Name;
  ExecutionEngine E(*M);
  registerParallelRuntime(E);
  EXPECT_EQ(E.runMain(), Expected) << B->Name;
}

std::vector<const char *> allBenchmarkNames() {
  std::vector<const char *> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name.c_str());
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteBenchmark,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(SuiteTest, CoversThreeSuites) {
  EXPECT_GE(bench::getSuite("PARSEC").size(), 5u);
  EXPECT_GE(bench::getSuite("MiBench").size(), 6u);
  EXPECT_GE(bench::getSuite("SPEC").size(), 4u);
}

} // namespace
