//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the NIR optimizer pipeline: every suite
/// kernel runs with the pipeline off and on (and with the vectorizer
/// off and on), and the observable behavior — return value and printed
/// output, byte for byte — must not change. Unit tests pin down that
/// the unroller and vectorizer actually fire on the shapes they target,
/// so a silently inert pipeline cannot pass.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace noelle;
using nir::Context;
using nir::ExecutionEngine;

namespace {

struct RunResult {
  int64_t Ret = 0;
  std::string Output;
};

RunResult runWith(const std::string &Source,
                  const opt::PipelineOptions *Opts,
                  opt::PipelineStats *StatsOut = nullptr) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Source);
  if (Opts) {
    auto S = opt::runPipeline(*M, *Opts);
    if (StatsOut)
      *StatsOut = std::move(S);
    EXPECT_TRUE(nir::moduleVerifies(*M));
  }
  ExecutionEngine E(*M);
  RunResult R;
  R.Ret = E.runMain();
  R.Output = E.getOutput();
  return R;
}

class OptDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(OptDifferential, PipelinePreservesBehavior) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  RunResult Base = runWith(B->Source, nullptr);
  opt::PipelineOptions Opts;
  RunResult Piped = runWith(B->Source, &Opts);
  EXPECT_EQ(Base.Ret, Piped.Ret) << B->Name;
  EXPECT_EQ(Base.Output, Piped.Output) << B->Name;
}

TEST_P(OptDifferential, VectorizerPreservesBehavior) {
  const bench::Benchmark *B = bench::findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  opt::PipelineOptions NoSLP;
  NoSLP.EnableSLP = false;
  RunResult Scalar = runWith(B->Source, &NoSLP);
  opt::PipelineOptions WithSLP;
  RunResult Vector = runWith(B->Source, &WithSLP);
  EXPECT_EQ(Scalar.Ret, Vector.Ret) << B->Name;
  EXPECT_EQ(Scalar.Output, Vector.Output) << B->Name;
}

std::vector<const char *> allBenchmarkNames() {
  std::vector<const char *> Names;
  for (const auto &B : bench::getBenchmarkSuite())
    Names.push_back(B.Name.c_str());
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, OptDifferential,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

// A shape the whole pipeline should light up on: constant-trip-count
// loop over disjoint global arrays with an inlinable helper.
const char *VectorizableKernel = R"(
int a[1024];
int b[1024];
int c[1024];
int scale(int x) { return x * 3; }
int main() {
  for (int i = 0; i < 1024; i = i + 1) {
    a[i] = i;
    b[i] = scale(i);
  }
  for (int i = 0; i < 1024; i = i + 1) c[i] = a[i] + b[i];
  int s = 0;
  for (int i = 0; i < 1024; i = i + 1) s = s + c[i];
  print_i64(s);
  return s % 1009;
}
)";

TEST(OptPipeline, PassesFireOnVectorizableShape) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, VectorizableKernel);
  opt::PipelineOptions Opts;
  opt::PipelineStats S = opt::runPipeline(*M, Opts);
  EXPECT_TRUE(nir::moduleVerifies(*M));
  EXPECT_GE(S.CallsInlined, 1u) << "scale() should inline";
  EXPECT_GE(S.LoopsUnrolled, 1u) << "constant-trip loops should unroll";
  EXPECT_GE(S.VectorInstsEmitted, 1u) << "adjacent stores should pack";
  EXPECT_GE(S.StoresVectorized, 4u);
  // The optimized module must still compute the same answer.
  ExecutionEngine E(*M);
  const int64_t Got = E.runMain();
  RunResult Base = runWith(VectorizableKernel, nullptr);
  EXPECT_EQ(Got, Base.Ret);
  EXPECT_EQ(E.getOutput(), Base.Output);
}

TEST(OptPipeline, StatsRecordPerPassAbstractions) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, VectorizableKernel);
  opt::PipelineStats S = opt::runPipeline(*M);
  bool SawLICM = false, SawSLP = false;
  for (const auto &[Pass, Set] : S.PassAbstractions) {
    if (Pass == "licm") {
      SawLICM = true;
      EXPECT_TRUE(Set.contains(Abstraction::INV));
      EXPECT_TRUE(Set.contains(Abstraction::FR));
    }
    if (Pass == "slp") {
      SawSLP = true;
      EXPECT_TRUE(Set.contains(Abstraction::PDG));
    }
  }
  EXPECT_TRUE(SawLICM);
  EXPECT_TRUE(SawSLP);
}

TEST(OptPipeline, DCERemovesVectorizedScalarResidue) {
  Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, VectorizableKernel);
  opt::PipelineStats S = opt::runPipeline(*M);
  if (S.VectorInstsEmitted == 0)
    GTEST_SKIP() << "vectorizer did not fire";
  EXPECT_GT(S.DCERemoved, 0u);
}

} // namespace
