//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small program, load NOELLE, and explore its
/// core abstractions — the PDG, the loop bundle (L), the aSCCDAG, and
/// the call graph.
///
/// Build & run:  ./build/examples/example_quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "noelle/Noelle.h"

#include <cstdio>

using namespace noelle;

int main() {
  // 1) Compile a program to NIR (the LLVM-IR stand-in of this repo).
  const char *Source = R"(
    int data[64];
    int scale(int x) { return x * 3; }
    int main() {
      int sum = 0;
      for (int i = 0; i < 64; i = i + 1) {
        data[i] = scale(i);
        sum = sum + data[i];
      }
      return sum;
    }
  )";
  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Source);
  std::printf("compiled: %llu IR instructions\n",
              static_cast<unsigned long long>(M->getNumInstructions()));

  // 2) Load NOELLE. Abstractions are computed on demand: nothing has
  //    been analyzed yet.
  Noelle N(*M);

  // 3) The whole-program PDG.
  PDG &G = N.getPDG();
  std::printf("PDG: %llu nodes, %llu edges (%llu memory pairs queried, "
              "%llu disproved)\n",
              static_cast<unsigned long long>(G.getNumNodes()),
              static_cast<unsigned long long>(G.getNumEdges()),
              static_cast<unsigned long long>(G.getStats().MemoryPairsQueried),
              static_cast<unsigned long long>(
                  G.getStats().MemoryPairsDisproved));

  // 4) Loops, bundled with their dependence graph, aSCCDAG, invariants,
  //    induction variables, and reductions.
  for (LoopContent *LC : N.getLoopContents()) {
    auto &LS = LC->getLoopStructure();
    std::printf("loop in @%s (header %s):\n",
                LS.getFunction()->getName().c_str(),
                LS.getHeader()->getName().c_str());
    std::printf("  %zu SCCs in the aSCCDAG:", LC->getSCCDAG().getSCCs().size());
    unsigned Seq = 0, Red = 0, Ind = 0;
    for (const auto &S : LC->getSCCDAG().getSCCs()) {
      switch (S->getAttribute()) {
      case SCC::Attribute::Independent:
        ++Ind;
        break;
      case SCC::Attribute::Sequential:
        ++Seq;
        break;
      case SCC::Attribute::Reducible:
        ++Red;
        break;
      }
    }
    std::printf(" %u independent, %u sequential, %u reducible\n", Ind, Seq,
                Red);
    std::printf("  %zu induction variable(s); governing IV: %s\n",
                LC->getIVManager().getInductionVariables().size(),
                LC->getIVManager().getGoverningIV() ? "yes" : "no");
    std::printf("  %zu invariant instruction(s), %zu reduction(s)\n",
                LC->getInvariantManager().getInvariants().size(),
                LC->getReductionManager().getReductions().size());
    std::printf("  environment: %zu live-in(s), %zu live-out(s)\n",
                LC->getEnvironment().getLiveIns().size(),
                LC->getEnvironment().getLiveOuts().size());
  }

  // 5) The complete call graph.
  CallGraph &CG = N.getCallGraph();
  std::printf("call graph: %zu edges, %zu island(s)\n",
              CG.getEdges().size(), CG.getIslands().size());

  // 6) What did this session actually compute? The demand-driven manager
  //    tracked every request (this is how bench/table4 regenerates the
  //    paper's Table 4).
  std::printf("abstractions requested:");
  for (const auto &A : N.getRequestedAbstractions().names())
    std::printf(" %s", A.c_str());
  std::printf("\n");
  return 0;
}
