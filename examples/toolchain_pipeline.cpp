//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1, as a program: a custom compilation flow built
/// from NOELLE's tools. Two source files go through noelle-whole-IR,
/// profiling, profile embedding, loop-carried-dependence reduction,
/// PDG embedding, a full serialize/reparse round-trip (proving the
/// dependence cache survives on disk), noelle-load, the HELIX
/// transformation, and noelle-bin.
///
/// Build & run:  ./build/examples/example_toolchain_pipeline
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "tools/NoelleTools.h"
#include "xforms/HELIX.h"

#include <cstdio>

using namespace noelle;

int main() {
  // Two translation units, as Figure 1's "Source code 1..N".
  std::vector<std::string> Sources = {
      R"( extern int mix(int x, int i);
          int out[400];
          int main() {
            int state = 17;
            for (int i = 0; i < 400; i = i + 1) {
              state = mix(state, i);
              out[i] = state % 211 + i;
            }
            int t = 0;
            for (int i = 0; i < 400; i = i + 1) t = t + out[i];
            return t % 1000003;
          } )",
      R"( int mix(int x, int i) {
            return (x * 1103515245 + 12345 + i) % 1000000007;
          } )"};

  std::printf("[1] noelle-whole-IR: compiling and linking %zu sources\n",
              Sources.size());
  nir::Context Ctx;
  std::string Error;
  auto M = tools::wholeIR(Ctx, Sources, Error);
  if (!M) {
    std::printf("error: %s\n", Error.c_str());
    return 1;
  }
  int64_t Expected = tools::makeBinary(*M)->runMain();
  std::printf("    whole program: %llu instructions, reference result %lld\n",
              static_cast<unsigned long long>(M->getNumInstructions()),
              static_cast<long long>(Expected));

  std::printf("[2] noelle-prof-coverage + noelle-meta-prof-embed\n");
  auto Profile = tools::profCoverage(*M);
  tools::metaProfEmbed(*M, Profile);
  std::printf("    %llu dynamic instructions profiled\n",
              static_cast<unsigned long long>(
                  Profile.getTotalInstructions()));

  std::printf("[3] noelle-rm-lc-dependences\n");
  unsigned Moved = tools::rmLCDependences(*M);
  std::printf("    %u instruction(s) moved out of loops\n", Moved);

  std::printf("[4] noelle-meta-clean + re-profile + re-embed\n");
  tools::metaClean(*M);
  auto Profile2 = tools::profCoverage(*M);
  tools::metaProfEmbed(*M, Profile2);

  std::printf("[5] noelle-pdg-embed: whole-program PDG -> module cache\n");
  uint64_t Edges = tools::pdgEmbed(*M);
  std::printf("    embedded %llu dependence edges (%s)\n",
              static_cast<unsigned long long>(Edges),
              tools::hasPDGMetadata(*M) ? "cache present" : "missing?");

  std::printf("[6] serialize -> reparse: the IR file between tool runs\n");
  std::string Text = M->str();
  auto Reloaded = nir::parseModule(Ctx, Text, Error);
  if (!Reloaded) {
    std::printf("error: %s\n", Error.c_str());
    return 1;
  }
  M = std::move(Reloaded);
  PDGBuilder CacheCheck(*M);
  uint64_t LoadedEdges = CacheCheck.getPDG().getEdges().size();
  std::printf("    %zu bytes of IR; PDG %s, %llu edges\n", Text.size(),
              CacheCheck.wasPDGLoadedFromEmbedded()
                  ? "loaded from the embedded cache"
                  : "REBUILT (cache miss!)",
              static_cast<unsigned long long>(LoadedEdges));
  if (!CacheCheck.wasPDGLoadedFromEmbedded() || LoadedEdges != Edges)
    return 1;

  std::printf("[7] noelle-arch\n");
  auto Arch = tools::archDescribe(false);
  std::printf("    %u logical cores / %u physical cores\n",
              Arch.getNumLogicalCores(), Arch.getNumPhysicalCores());

  std::printf("[8] noelle-load + HELIX transformation\n");
  auto N = tools::load(*M);
  HELIXOptions HO;
  HO.NumCores = 4;
  HO.MinimumEstimatedSpeedup = 0; // demo: always transform
  HELIX Tool(*N, HO);
  for (const auto &D : Tool.run())
    std::printf("    @%s loop %u: %s%s%s\n", D.FunctionName.c_str(),
                D.LoopID,
                D.Parallelized ? "parallelized" : "skipped",
                D.Parallelized ? "" : " — ", D.Reason.c_str());

  std::printf("[9] noelle-linker + noelle-bin: running the parallel "
              "binary\n");
  auto Engine = tools::makeBinary(*M);
  int64_t Result = Engine->runMain();
  std::printf("    result %lld (%s)\n", static_cast<long long>(Result),
              Result == Expected ? "matches the sequential build"
                                 : "WRONG");
  return Result == Expected ? 0 : 1;
}
