//===----------------------------------------------------------------------===//
///
/// \file
/// Parallelization walkthrough: take a numeric kernel, let the three
/// NOELLE-based parallelizers (DOALL, HELIX, DSWP) decide what they can
/// do with each loop, execute the transformed program on the parallel
/// runtime, and report modeled speedups — the Figure-5 flow on one
/// program.
///
/// Build & run:  ./build/examples/example_parallelize_kernel
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"

#include <cstdio>

using namespace noelle;

namespace {

const char *Kernel = R"(
  double in[1024];
  double out[1024];
  int main() {
    for (int i = 0; i < 1024; i = i + 1)
      in[i] = (double)((i * 13) % 97) * 0.125;
    // The hot loop: independent per-element work plus a sum reduction.
    double checksum = 0.0;
    for (int i = 0; i < 1024; i = i + 1) {
      double x = in[i];
      double y = x * x - 2.0 * x + sqrt(x + 1.0);
      out[i] = y;
      checksum = checksum + y;
    }
    return (int)checksum;
  }
)";

uint64_t simulatedTime(const nir::ExecutionEngine &E) {
  uint64_t Total = E.getInstructionsExecuted();
  uint64_t TaskTotal = 0, Critical = 0;
  for (const auto &R : E.getDispatchRecords()) {
    TaskTotal += R.TotalTaskInstructions;
    Critical += std::max(R.MaxTaskInstructions, R.TotalSegmentInstructions) +
                R.NumTasks * 500;
  }
  return Total - TaskTotal + Critical;
}

} // namespace

int main() {
  // Sequential reference.
  int64_t Expected;
  uint64_t BaselineInstrs;
  {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Kernel);
    nir::ExecutionEngine E(*M);
    Expected = E.runMain();
    BaselineInstrs = E.getInstructionsExecuted();
  }
  std::printf("sequential: result=%lld, %llu instructions\n",
              static_cast<long long>(Expected),
              static_cast<unsigned long long>(BaselineInstrs));

  auto Report = [&](const char *Name, nir::Module &M,
                    unsigned Parallelized) {
    nir::ExecutionEngine E(M);
    registerParallelRuntime(E);
    int64_t R = E.runMain();
    uint64_t Sim = simulatedTime(E);
    std::printf("%-6s: %u loop(s) parallelized, result=%lld (%s), modeled "
                "speedup %.2fx\n",
                Name, Parallelized, static_cast<long long>(R),
                R == Expected ? "correct" : "WRONG",
                static_cast<double>(BaselineInstrs) /
                    static_cast<double>(Sim));
  };

  {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Kernel);
    Noelle N(*M);
    DOALLOptions O;
    O.NumCores = 4;
    DOALL T(N, O);
    unsigned K = 0;
    for (const auto &D : T.run()) {
      if (D.Parallelized)
        ++K;
      else
        std::printf("DOALL skipped %s loop %u: %s\n",
                    D.FunctionName.c_str(), D.LoopID, D.Reason.c_str());
    }
    Report("DOALL", *M, K);
  }
  {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Kernel);
    Noelle N(*M);
    HELIXOptions O;
    O.NumCores = 4;
    HELIX T(N, O);
    unsigned K = 0;
    for (const auto &D : T.run())
      K += D.Parallelized;
    Report("HELIX", *M, K);
  }
  {
    nir::Context Ctx;
    auto M = minic::compileMiniCOrDie(Ctx, Kernel);
    Noelle N(*M);
    DSWPOptions O;
    O.NumCores = 2;
    DSWP T(N, O);
    unsigned K = 0;
    for (const auto &D : T.run())
      K += D.Parallelized;
    Report("DSWP", *M, K);
  }
  return 0;
}
