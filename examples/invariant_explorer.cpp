//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant explorer: the paper's Section 2.5 in executable form. For
/// each loop of a program, compare LLVM's Algorithm 1 (low-level
/// operand/alias/dominator reasoning) against NOELLE's Algorithm 2
/// (PDG-powered) invariant detection, then run LICM and show the dynamic
/// instruction savings.
///
/// Build & run:  ./build/examples/example_invariant_explorer
///
//===----------------------------------------------------------------------===//

#include "baselines/LLVMBaselines.h"
#include "frontend/MiniC.h"
#include "interp/Interpreter.h"
#include "xforms/LICM.h"

#include <cstdio>

using namespace noelle;

int main() {
  const char *Source = R"(
    int table[16];
    int out[256];
    void kernel(int *dst, int n) {
      for (int i = 0; i < n; i = i + 1) {
        int base = table[0] * 100 + table[1];  // invariant loads + math
        int idx = i % 16;
        dst[i] = base + table[idx] * i;
      }
    }
    int main() {
      for (int t = 0; t < 16; t = t + 1) table[t] = t * t + 1;
      kernel(out, 256);
      int s = 0;
      for (int i = 0; i < 256; i = i + 1) s = s + out[i];
      return s % 1000003;
    }
  )";

  nir::Context Ctx;
  auto M = minic::compileMiniCOrDie(Ctx, Source);

  // Reference run.
  int64_t Expected;
  uint64_t InstrsBefore;
  {
    nir::ExecutionEngine E(*M);
    Expected = E.runMain();
    InstrsBefore = E.getInstructionsExecuted();
  }
  std::printf("reference: result=%lld, %llu dynamic instructions\n\n",
              static_cast<long long>(Expected),
              static_cast<unsigned long long>(InstrsBefore));

  // Per-loop comparison of the two algorithms.
  Noelle N(*M);
  nir::BasicAliasAnalysis BasicAA;
  for (LoopContent *LC : N.getLoopContents()) {
    auto &LS = LC->getLoopStructure();
    auto &DT = N.getDominators(*LS.getFunction());
    auto LLVMInv = baselines::findInvariantsLLVM(LS, DT, BasicAA);
    auto NoelleInv = LC->getInvariantManager().getInvariants();
    std::printf("loop @%s/%s: Algorithm 1 (LLVM) finds %zu invariants, "
                "Algorithm 2 (NOELLE) finds %zu\n",
                LS.getFunction()->getName().c_str(),
                LS.getHeader()->getName().c_str(), LLVMInv.size(),
                NoelleInv.size());
    for (nir::Instruction *I : NoelleInv) {
      bool AlsoLLVM = false;
      for (nir::Instruction *J : LLVMInv)
        AlsoLLVM |= I == J;
      if (!AlsoLLVM)
        std::printf("    only Algorithm 2: %s %s\n",
                    I->getOpcodeName().c_str(), I->getName().c_str());
    }
  }

  // Apply LICM and measure.
  LICM Tool(N);
  auto R = Tool.run();
  nir::ExecutionEngine E(*M);
  int64_t After = E.runMain();
  std::printf("\nLICM hoisted %u instruction(s) across %u loop(s)\n",
              R.InstructionsHoisted, R.LoopsVisited);
  std::printf("after LICM: result=%lld (%s), %llu dynamic instructions "
              "(%.1f%% saved)\n",
              static_cast<long long>(After),
              After == Expected ? "correct" : "WRONG",
              static_cast<unsigned long long>(E.getInstructionsExecuted()),
              100.0 * (1.0 - static_cast<double>(E.getInstructionsExecuted()) /
                                 static_cast<double>(InstrsBefore)));
  return After == Expected ? 0 : 1;
}
