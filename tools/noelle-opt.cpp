//===----------------------------------------------------------------------===//
///
/// \file
/// noelle-opt: command-line driver for the NIR optimizer pipeline.
///
/// Usage:
///   noelle-opt [options] <kernel-name | minic-file | nir-file>
///
/// The input is compiled (a benchmark-suite kernel by name, a MiniC
/// source file, or parsed NIR text for files ending in .nir), the
/// pipeline runs, and the optimized module prints to stdout (or runs,
/// with --run).
///
/// Options:
///   --no-inline --no-gvn --no-dce --no-licm --no-unroll --no-slp
///                         disable one pass
///   --unroll-factor=N     preferred unroll factor (4)
///   --run                 execute main() after optimizing; print the
///                         program output and return value
///   --stats               print pass statistics and per-pass
///                         abstraction requests to stderr as one JSON
///                         object (the metrics-snapshot shape)
///   --metrics=<path>      enable the telemetry registry and write its
///                         JSON snapshot to <path> on exit
///   --no-print            suppress printing the optimized module
///   --list                list benchmark kernels and exit
///
/// Exit status: 0 on success, 2 on usage/compile errors.
///
//===----------------------------------------------------------------------===//

#include "ToolDriver.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

using namespace noelle;

int main(int argc, char **argv) {
  opt::PipelineOptions Opts;
  bool Run = false, Stats = false, Print = true;
  std::string Input, MetricsPath;

  for (int I = 1; I < argc; ++I) {
    const std::string A = argv[I];
    if (A == "--no-inline")
      Opts.EnableInline = false;
    else if (A == "--no-gvn")
      Opts.EnableGVN = false;
    else if (A == "--no-dce")
      Opts.EnableDCE = false;
    else if (A == "--no-licm")
      Opts.EnableLICM = false;
    else if (A == "--no-unroll")
      Opts.EnableUnroll = false;
    else if (A == "--no-slp")
      Opts.EnableSLP = false;
    else if (A.rfind("--unroll-factor=", 0) == 0)
      Opts.UnrollFactor =
          static_cast<unsigned>(std::atoi(A.c_str() + std::strlen("--unroll-factor=")));
    else if (A == "--run")
      Run = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--no-print")
      Print = false;
    else if (tooldriver::parseMetricsOpt(A, MetricsPath))
      ;
    else if (A == "--list") {
      tooldriver::listKernels();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "noelle-opt: unknown option '%s'\n", A.c_str());
      return 2;
    } else {
      Input = A;
    }
  }
  if (Input.empty()) {
    std::fprintf(stderr,
                 "usage: noelle-opt [options] <kernel|file.minic|file.nir>\n");
    return 2;
  }

  nir::Context Ctx;
  auto M = tooldriver::loadInputModule("noelle-opt", Ctx, Input);
  if (!M)
    return 2;
  if (!nir::moduleVerifies(*M)) {
    std::fprintf(stderr, "noelle-opt: input module does not verify\n");
    return 2;
  }

  const opt::PipelineStats S = opt::runPipeline(*M, Opts);

  if (Stats) {
    // Machine-readable, mirroring the metrics-snapshot shape: pipeline
    // counters under "counters", per-pass abstraction requests under
    // "passes".
    namespace telemetry = noelle::telemetry;
    telemetry::JsonObject Counters;
    Counters.add("opt.inlined", S.CallsInlined)
        .add("opt.gvn", S.GVNReplaced)
        .add("opt.dce", S.DCERemoved)
        .add("opt.hoisted", S.InstructionsHoisted)
        .add("opt.unrolled", S.LoopsUnrolled)
        .add("opt.vector_insts", S.VectorInstsEmitted)
        .add("opt.stores_packed", S.StoresVectorized);
    telemetry::JsonObject Passes;
    for (const auto &[Pass, Set] : S.PassAbstractions) {
      std::string Names;
      for (const auto &Name : Set.names())
        Names += (Names.empty() ? "" : ",") + Name;
      Passes.add(Pass, Names);
    }
    telemetry::JsonObject Root;
    Root.add("tool", std::string("noelle-opt"))
        .addRaw("counters", Counters.str())
        .addRaw("passes", Passes.str());
    std::fprintf(stderr, "%s\n", Root.str().c_str());
  }

  if (Print)
    M->print(std::cout);
  if (Run) {
    nir::ExecutionEngine E(*M);
    const int64_t R = E.runMain();
    std::fputs(E.getOutput().c_str(), stdout);
    std::printf("main() = %lld\n", (long long)R);
  }
  if (!tooldriver::writeMetricsIfRequested("noelle-opt", MetricsPath))
    return 2;
  return 0;
}
