//===----------------------------------------------------------------------===//
///
/// \file
/// Shared command-line plumbing for the noelle-* tools: kernel listing,
/// input resolution (benchmark kernel by name, MiniC source file, or
/// parsed .nir text), option-parsing helpers, and plan lookup (an
/// explicit plan file, or the plan embedded in the module's metadata
/// next to the PDG cache). Header-only so each tool stays a single
/// translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_TOOLDRIVER_H
#define TOOLS_TOOLDRIVER_H

#include "benchmarks/Suite.h"
#include "frontend/MiniC.h"
#include "ir/Parser.h"
#include "planner/Plan.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace noelle {
namespace tooldriver {

/// Prints the benchmark-suite kernels (--list).
inline void listKernels() {
  for (const auto &B : bench::getBenchmarkSuite())
    std::printf("%-24s %s\n", B.Name.c_str(), B.Suite.c_str());
}

/// Resolves \p Input to MiniC source: benchmark kernel by name first,
/// readable file second. Errors print under \p Tool's name.
inline bool resolveSource(const char *Tool, const std::string &Input,
                          std::string &Source) {
  if (const bench::Benchmark *B = bench::findBenchmark(Input)) {
    Source = B->Source;
    return true;
  }
  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr,
                 "%s: '%s' is neither a benchmark kernel nor a "
                 "readable file (try --list)\n",
                 Tool, Input.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Source = SS.str();
  return true;
}

/// Materializes \p Input as a module: a benchmark kernel or MiniC file
/// compiles; a file ending in .nir parses as IR text.
inline std::unique_ptr<nir::Module>
loadInputModule(const char *Tool, nir::Context &Ctx,
                const std::string &Input) {
  if (const bench::Benchmark *B = bench::findBenchmark(Input)) {
    std::string Error;
    auto M = minic::compileMiniC(Ctx, B->Source, Error);
    if (!M)
      std::fprintf(stderr, "%s: %s: %s\n", Tool, Input.c_str(),
                   Error.c_str());
    return M;
  }
  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "%s: cannot open '%s'\n", Tool, Input.c_str());
    return nullptr;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Error;
  auto M = Input.size() > 4 && Input.rfind(".nir") == Input.size() - 4
               ? nir::parseModule(Ctx, SS.str(), Error)
               : minic::compileMiniC(Ctx, SS.str(), Error);
  if (!M)
    std::fprintf(stderr, "%s: %s: %s\n", Tool, Input.c_str(),
                 Error.c_str());
  return M;
}

/// Matches "--key=" options carrying an unsigned value; returns false
/// when \p Arg does not start with \p Prefix.
inline bool parseUnsignedOpt(const std::string &Arg, const char *Prefix,
                             unsigned &Out) {
  size_t L = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = static_cast<unsigned>(std::atoi(Arg.c_str() + L));
  return true;
}

/// Matches "--key=" options carrying a string value.
inline bool parseStringOpt(const std::string &Arg, const char *Prefix,
                           std::string &Out) {
  size_t L = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = Arg.substr(L);
  return true;
}

/// Matches the shared "--metrics=<path>" flag. On match, switches the
/// telemetry layer to (at least) metrics mode so the counters the run
/// touches are live; the snapshot is written by writeMetricsIfRequested
/// at tool exit.
inline bool parseMetricsOpt(const std::string &Arg, std::string &Path) {
  if (!parseStringOpt(Arg, "--metrics=", Path))
    return false;
  if (telemetry::mode() == telemetry::Mode::Off)
    telemetry::setMode(telemetry::Mode::Metrics);
  return true;
}

/// Writes the canonical metrics snapshot (telemetry::metricsJson) to
/// \p Path when nonempty. Returns false (after printing) on I/O errors.
inline bool writeMetricsIfRequested(const char *Tool,
                                    const std::string &Path) {
  if (Path.empty())
    return true;
  if (!telemetry::writeFile(Path, telemetry::metricsJson() + "\n")) {
    std::fprintf(stderr, "%s: cannot write metrics to '%s'\n", Tool,
                 Path.c_str());
    return false;
  }
  return true;
}

/// Loads the plan to operate on: an explicit plan file when given,
/// otherwise the plan embedded in \p M's metadata. Hash binding is not
/// checked here — that is checkPlan's first audit.
inline bool loadPlan(const std::string &PlanFile, const nir::Module &M,
                     planner::ProgramPlan &Out, std::string &Err) {
  if (!PlanFile.empty()) {
    std::ifstream In(PlanFile);
    if (!In) {
      Err = "cannot open '" + PlanFile + "'";
      return false;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    return planner::ProgramPlan::deserialize(SS.str(), Out, Err);
  }
  return planner::ProgramPlan::fromModule(M, Out, Err);
}

} // namespace tooldriver
} // namespace noelle

#endif // TOOLS_TOOLDRIVER_H
