//===----------------------------------------------------------------------===//
///
/// \file
/// noelle-check: PDG-grounded parallelization-legality verifier and static
/// race detector (command-line driver).
///
/// Usage:
///   noelle-check [options] <kernel-name | minic-file>
///
/// The input is compiled (a benchmark-suite kernel by name, or a MiniC
/// source file), a pre-transform snapshot is captured (IR text plus the
/// embedded PDG cache), the requested parallelizing transforms run, and
/// the transformed module is checked:
///   - structural + dominance SSA verification (nir::verifyModule);
///   - legality: every loop-carried dependence of the original loop must
///     be discharged by a legal mechanism of the transform that claimed
///     it (IV rebase, recognized reduction, sequential-segment coverage,
///     queue transport, stage co-location);
///   - static race detection over the generated task functions.
///
/// Options:
///   --transform=doall|helix|dswp|spec|all
///                                      which transform(s) to audit (all;
///                                      "spec" profiles the module first
///                                      and runs speculative DOALL)
///   --speculative                      audit the speculation machinery:
///                                      journal coverage, recovery path,
///                                      premise evidence. Defaults the
///                                      transform list to "spec"; in
///                                      --plan mode, profiles the module
///                                      and enumerates speculative plan
///                                      entries
///   --cores=N                          worker count (4)
///   --opt                              run the optimizer pipeline before
///                                      the transforms (noelle-opt order)
///   --lint                             also run the dataflow lint pack
///   --no-races                         skip the race detector
///   --race-rules=<list>                comma list of race discharge rules
///                                      to enable: queue-hb,
///                                      multi-queue-join, loop-phase,
///                                      segment-order, cross-segment;
///                                      or "all" (default), "legacy"
///                                      (the pre-engine single-rule
///                                      detector), "none"
///   --stats                            print per-rule discharge counts,
///                                      Andersen-fallback counts, and
///                                      detector wall time as one JSON
///                                      object (the metrics-snapshot
///                                      shape)
///   --metrics=<path>                   enable the telemetry registry
///                                      and write its JSON snapshot to
///                                      <path> on exit
///   --no-legality                      skip the legality checker
///   --plan                             audit a parallelization plan
///                                      instead of transform results:
///                                      verify the planner's plan (or
///                                      --plan-file's) against the module
///   --plan-file=<path>                 serialized plan to audit
///                                      (implies --plan)
///   --list                             list benchmark kernels and exit
///
/// Exit status: 0 when every requested check is clean, 1 when any
/// diagnostic was produced, 2 on usage/compile errors.
///
//===----------------------------------------------------------------------===//

#include "ToolDriver.h"

#include "frontend/MiniC.h"
#include "noelle/MemDepProfiler.h"
#include "noelle/Noelle.h"
#include "opt/Passes.h"
#include "planner/Planner.h"
#include "verify/NoelleCheck.h"
#include "verify/PlanCheck.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"
#include "xforms/SpecDOALL.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace noelle;

namespace {

struct CLIOptions {
  std::vector<std::string> Transforms;
  bool Speculative = false;
  unsigned Cores = 4;
  bool Optimize = false;
  bool Lint = false;
  bool Races = true;
  bool Legality = true;
  bool Stats = false;
  bool PlanMode = false;
  std::string PlanFile;
  std::string MetricsPath;
  std::string Input;
  verify::RaceDetectorOptions RaceOpts;
};

void printUsage() {
  std::fprintf(stderr,
               "usage: noelle-check [--transform=doall|helix|dswp|spec|all] "
               "[--speculative] [--cores=N] [--opt] [--lint] [--no-races] "
               "[--race-rules=LIST] [--stats] [--metrics=F] "
               "[--no-legality] [--plan] [--plan-file=F] "
               "[--list] <kernel-name | minic-file>\n");
}

/// Parses the --race-rules value: "all", "legacy", "none", or a comma
/// list of rule names to enable (every other rule disabled).
bool parseRaceRules(const std::string &List,
                    verify::RaceDetectorOptions &O) {
  if (List == "all") {
    O = verify::RaceDetectorOptions{};
    return true;
  }
  if (List == "legacy") {
    O = verify::RaceDetectorOptions::legacy();
    return true;
  }
  O = verify::RaceDetectorOptions{};
  O.UseQueueHB = O.UseMultiQueueJoin = O.UseLoopPhase = false;
  O.UseSegmentOrder = O.UseCrossSegment = false;
  if (List == "none")
    return true;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string Tok = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Tok == "queue-hb") {
      O.UseQueueHB = true;
    } else if (Tok == "multi-queue-join") {
      O.UseQueueHB = O.UseMultiQueueJoin = true;
    } else if (Tok == "loop-phase") {
      O.UseLoopPhase = true;
    } else if (Tok == "segment-order") {
      O.UseSegmentOrder = true;
    } else if (Tok == "cross-segment") {
      O.UseCrossSegment = true;
    } else {
      std::fprintf(stderr, "noelle-check: unknown race rule '%s'\n",
                   Tok.c_str());
      return false;
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CLIOptions &Opts) {
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    if (Arg == "--list") {
      tooldriver::listKernels();
      std::exit(0);
    }
    if (Arg.rfind("--transform=", 0) == 0) {
      std::string T = Arg.substr(12);
      if (T == "all") {
        Opts.Transforms = {"doall", "helix", "dswp"};
      } else if (T == "doall" || T == "helix" || T == "dswp" ||
                 T == "spec") {
        Opts.Transforms.push_back(T);
      } else {
        std::fprintf(stderr, "noelle-check: unknown transform '%s'\n",
                     T.c_str());
        return false;
      }
      continue;
    }
    if (Arg.rfind("--cores=", 0) == 0) {
      Opts.Cores = static_cast<unsigned>(std::atoi(Arg.c_str() + 8));
      if (Opts.Cores == 0) {
        std::fprintf(stderr, "noelle-check: --cores must be positive\n");
        return false;
      }
      continue;
    }
    if (Arg == "--speculative") {
      Opts.Speculative = true;
      continue;
    }
    if (Arg == "--plan") {
      Opts.PlanMode = true;
      continue;
    }
    if (tooldriver::parseStringOpt(Arg, "--plan-file=", Opts.PlanFile)) {
      Opts.PlanMode = true;
      continue;
    }
    if (Arg == "--opt") {
      Opts.Optimize = true;
      continue;
    }
    if (Arg == "--lint") {
      Opts.Lint = true;
      continue;
    }
    if (Arg == "--no-races") {
      Opts.Races = false;
      continue;
    }
    if (Arg.rfind("--race-rules=", 0) == 0) {
      if (!parseRaceRules(Arg.substr(13), Opts.RaceOpts))
        return false;
      continue;
    }
    if (Arg == "--stats") {
      Opts.Stats = true;
      continue;
    }
    if (tooldriver::parseMetricsOpt(Arg, Opts.MetricsPath))
      continue;
    if (Arg == "--no-legality") {
      Opts.Legality = false;
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "noelle-check: unknown option '%s'\n", Arg.c_str());
      return false;
    }
    if (!Opts.Input.empty()) {
      std::fprintf(stderr, "noelle-check: multiple inputs\n");
      return false;
    }
    Opts.Input = Arg;
  }
  if (Opts.Input.empty()) {
    printUsage();
    return false;
  }
  // --speculative with no explicit --transform audits the speculative
  // pipeline alone; with explicit transforms it just arms the audit.
  if (Opts.Transforms.empty())
    Opts.Transforms = Opts.Speculative
                          ? std::vector<std::string>{"spec"}
                          : std::vector<std::string>{"doall", "helix",
                                                     "dswp"};
  return true;
}

/// Plan-audit mode: computes (or loads) a plan for the module and
/// verifies it — hash binding, entry well-formedness, loop existence,
/// and per-entry technique legality — without transforming anything.
unsigned checkPlanMode(const std::string &Source, const CLIOptions &Opts) {
  nir::Context Ctx;
  std::string Error;
  auto M = minic::compileMiniC(Ctx, Source, Error);
  if (!M) {
    std::fprintf(stderr, "noelle-check: compile error: %s\n", Error.c_str());
    return 1;
  }
  if (Opts.Optimize)
    opt::runPipeline(*M);

  // Speculative plan entries need the profile both to be enumerated and
  // to re-derive their premises during the audit. Embedding is hash-
  // neutral (the content hash is metadata-agnostic), so a --plan-file's
  // hash binding still holds.
  if (Opts.Speculative)
    profileMemDeps(*M).embed(*M);

  planner::ProgramPlan Plan;
  if (!Opts.PlanFile.empty()) {
    std::string Err;
    if (!tooldriver::loadPlan(Opts.PlanFile, *M, Plan, Err)) {
      std::fprintf(stderr, "noelle-check: %s\n", Err.c_str());
      return 1;
    }
  } else {
    Noelle N(*M);
    planner::PlannerOptions PO;
    PO.MaxWorkers = Opts.Cores;
    PO.EnableSpeculation = Opts.Speculative;
    Plan = planner::Planner(N, PO).plan();
  }

  verify::CheckReport Rep = verify::checkPlan(*M, Plan);
  std::printf("== plan: %zu entr%s, %zu finding(s)\n", Plan.Entries.size(),
              Plan.Entries.size() == 1 ? "y" : "ies",
              Rep.diagnostics().size());
  if (!Rep.clean())
    std::printf("%s", Rep.str().c_str());
  return static_cast<unsigned>(Rep.diagnostics().size());
}

/// Compiles, transforms, and checks one (source, transform) pair.
/// Returns the number of diagnostics.
unsigned checkOne(const std::string &Source, const std::string &Transform,
                  const CLIOptions &Opts) {
  nir::Context Ctx;
  std::string Error;
  auto M = minic::compileMiniC(Ctx, Source, Error);
  if (!M) {
    std::fprintf(stderr, "noelle-check: compile error: %s\n", Error.c_str());
    return 1;
  }

  // With --opt the pipeline runs first, so the parallelizers (and the
  // legality snapshot) see the optimized loops — the production order.
  if (Opts.Optimize)
    opt::runPipeline(*M);

  // Speculation needs its evidence base before the snapshot: profile the
  // original module and embed the result, so both the snapshot text and
  // the transformed module carry it.
  if (Transform == "spec")
    profileMemDeps(*M).embed(*M);

  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);

  Noelle N(*M);
  unsigned Parallelized = 0;
  if (Transform == "spec") {
    DOALLOptions DO;
    DO.NumCores = Opts.Cores;
    SpecDOALL Tool(N, DO);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else if (Transform == "doall") {
    DOALLOptions DO;
    DO.NumCores = Opts.Cores;
    DOALL Tool(N, DO);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else if (Transform == "helix") {
    HELIXOptions HO;
    HO.NumCores = Opts.Cores;
    HO.MinimumEstimatedSpeedup = 0.0;
    HELIX Tool(N, HO);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  } else { // dswp
    DSWPOptions SO;
    SO.NumCores = Opts.Cores;
    SO.MinimumStageWeight = 0;
    DSWP Tool(N, SO);
    for (const auto &D : Tool.run())
      Parallelized += D.Parallelized;
  }

  verify::CheckOptions CO;
  CO.RunLegality = Opts.Legality;
  CO.RunRaces = Opts.Races;
  CO.Speculative = Opts.Speculative || Transform == "spec";
  CO.Races = Opts.RaceOpts;
  verify::RaceRuleStats Stats;
  if (Opts.Stats)
    CO.Races.Stats = &Stats;
  auto T0 = std::chrono::steady_clock::now();
  verify::CheckReport Rep = verify::checkModule(*M, Snap, CO);
  auto T1 = std::chrono::steady_clock::now();
  if (Opts.Lint)
    verify::lintModule(*M, verify::LintOptions{}, Rep);

  std::printf("== %s: %u loop(s) parallelized, %zu finding(s)\n",
              Transform.c_str(), Parallelized, Rep.diagnostics().size());
  if (!Rep.clean())
    std::printf("%s", Rep.str().c_str());
  if (Opts.Stats) {
    // Machine-readable, mirroring the metrics-snapshot shape: detector
    // counters under "counters", per-rule discharges under "discharged".
    namespace telemetry = noelle::telemetry;
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    telemetry::JsonObject Counters;
    Counters.add("race.pairs_checked", Stats.PairsChecked)
        .add("race.andersen_fallback", Stats.AndersenFallback)
        .add("race.races_reported", Stats.RacesReported)
        .add("race.duplicates_suppressed", Stats.DuplicatesSuppressed);
    telemetry::JsonObject Discharged;
    for (const auto &[Rule, N] : Stats.Discharged)
      Discharged.add(Rule, N);
    telemetry::JsonObject Root;
    Root.add("tool", std::string("noelle-check"))
        .add("transform", Transform)
        .add("check_ms", Ms)
        .addRaw("counters", Counters.str())
        .addRaw("discharged", Discharged.str());
    std::printf("%s\n", Root.str().c_str());
  }
  return static_cast<unsigned>(Rep.diagnostics().size());
}

} // namespace

int main(int Argc, char **Argv) {
  CLIOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  std::string Source;
  if (!tooldriver::resolveSource("noelle-check", Opts.Input, Source))
    return 2;

  unsigned Findings = 0;
  if (Opts.PlanMode)
    Findings = checkPlanMode(Source, Opts);
  else
    for (const std::string &T : Opts.Transforms)
      Findings += checkOne(Source, T, Opts);

  if (Findings == 0)
    std::printf("noelle-check: clean\n");
  if (!tooldriver::writeMetricsIfRequested("noelle-check",
                                           Opts.MetricsPath))
    return 2;
  return Findings == 0 ? 0 : 1;
}
