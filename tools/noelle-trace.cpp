//===----------------------------------------------------------------------===//
///
/// \file
/// noelle-trace: run a kernel under the full parallelization pipeline
/// with the telemetry layer in trace mode and export what happened —
/// a Chrome trace_event JSON timeline (chrome://tracing, Perfetto) of
/// per-worker task/chunk spans, DSWP queue operations, and HELIX
/// sequential-segment stalls, plus the metrics-registry snapshot.
///
/// Usage:
///   noelle-trace [options] --run <kernel-name | minic-file | nir-file>
///
/// Options:
///   --run <input>        parallelize and execute the input (the planner
///                        picks techniques, as noelle-parallelize does)
///   --trace=<path>       write the Chrome trace JSON (default:
///                        trace.json)
///   --metrics=<path>     also write the metrics snapshot JSON
///   --summary            print a human-readable digest (span count,
///                        dispatches, steals, stall time) to stdout
///   --cores=N            worker-count ceiling for the planner (4)
///   --technique=K        skip the planner: force doall|helix|dswp on
///                        every eligible loop (e.g. --technique=dswp to
///                        see pipeline stage/queue spans on a kernel the
///                        planner would DOALL)
///   --observe            execute through the observed tier so fused-
///                        superinstruction fire counts populate (slower)
///   --no-transform       trace the sequential run (no parallelization)
///   --list               list benchmark kernels and exit
///
/// Exit status: 0 on success, 1 when the run produced audit findings,
/// 2 on usage/compile/IO errors.
///
//===----------------------------------------------------------------------===//

#include "ToolDriver.h"

#include "interp/Interpreter.h"
#include "noelle/Noelle.h"
#include "planner/Feedback.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"

#include <cstdio>
#include <string>

using namespace noelle;
namespace telemetry = noelle::telemetry;

namespace {

struct CLIOptions {
  std::string Input;
  std::string TracePath = "trace.json";
  std::string MetricsPath;
  std::string ForcedTechnique; // empty = free planner
  bool Summary = false;
  bool Observe = false;
  bool Transform = true;
  unsigned Cores = 4;
};

void printUsage() {
  std::fprintf(stderr,
               "usage: noelle-trace [--trace=F] [--metrics=F] [--summary] "
               "[--cores=N] [--technique=doall|helix|dswp] [--observe] "
               "[--no-transform] [--list] "
               "--run <kernel|file.minic|file.nir>\n");
}

bool parseArgs(int Argc, char **Argv, CLIOptions &O) {
  bool SawRun = false;
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    if (Arg == "--list") {
      tooldriver::listKernels();
      std::exit(0);
    }
    if (Arg == "--run") {
      SawRun = true;
      continue;
    }
    if (tooldriver::parseStringOpt(Arg, "--trace=", O.TracePath))
      continue;
    if (tooldriver::parseStringOpt(Arg, "--metrics=", O.MetricsPath))
      continue;
    if (tooldriver::parseUnsignedOpt(Arg, "--cores=", O.Cores)) {
      if (O.Cores == 0) {
        std::fprintf(stderr, "noelle-trace: --cores must be positive\n");
        return false;
      }
      continue;
    }
    if (tooldriver::parseStringOpt(Arg, "--technique=",
                                   O.ForcedTechnique)) {
      TechniqueKind K;
      if (!techniqueFromName(O.ForcedTechnique, K)) {
        std::fprintf(stderr, "noelle-trace: unknown technique '%s'\n",
                     O.ForcedTechnique.c_str());
        return false;
      }
      continue;
    }
    if (Arg == "--summary") {
      O.Summary = true;
      continue;
    }
    if (Arg == "--observe") {
      O.Observe = true;
      continue;
    }
    if (Arg == "--no-transform") {
      O.Transform = false;
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "noelle-trace: unknown option '%s'\n",
                   Arg.c_str());
      return false;
    }
    if (!O.Input.empty()) {
      std::fprintf(stderr, "noelle-trace: multiple inputs\n");
      return false;
    }
    O.Input = Arg;
  }
  if (O.Input.empty() || !SawRun) {
    printUsage();
    return false;
  }
  return true;
}

/// Keeps the engine in the observed tier without perturbing anything:
/// the tier's accounting is byte-identical, it just runs unbatched (and
/// charges interp.fuse.fired per executed block).
class NullObserver : public nir::ExecutionObserver {};

} // namespace

int main(int Argc, char **Argv) {
  CLIOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  // Trace mode before any instrumented code runs; a stricter
  // NOELLE_TELEMETRY=trace in the environment is already equivalent.
  telemetry::setMode(telemetry::Mode::Trace);
  if (!telemetry::traceEnabled()) {
    std::fprintf(stderr,
                 "noelle-trace: telemetry is compiled out "
                 "(NOELLE_TELEMETRY_DISABLED); nothing to record\n");
    return 2;
  }

  nir::Context Ctx;
  auto M = tooldriver::loadInputModule("noelle-trace", Ctx, O.Input);
  if (!M)
    return 2;

  unsigned Parallelized = 0;
  planner::ProgramPlan Plan;
  if (O.Transform) {
    Noelle N(*M);
    if (!O.ForcedTechnique.empty()) {
      // Forced mode: one technique on every eligible loop — no plan, so
      // the measured-speedup feedback has nothing to write back to.
      TechniqueKind K;
      techniqueFromName(O.ForcedTechnique, K);
      auto T = createTechnique(K, N, O.Cores);
      for (const auto &D : T->run())
        Parallelized += D.Parallelized;
    } else {
      planner::PlannerOptions PO;
      PO.MaxWorkers = O.Cores;
      planner::Planner P(N, PO);
      Plan = P.plan();
      for (const auto &D : P.apply(Plan))
        Parallelized += D.Parallelized;
    }
  }

  nir::ExecutionEngine E(*M);
  registerParallelRuntime(E);
  NullObserver Obs;
  if (O.Observe)
    E.setObserver(&Obs);
  const int64_t R = E.runMain();
  std::fputs(E.getOutput().c_str(), stdout);
  std::printf("main() = %lld\n", (long long)R);

  if (O.Transform)
    planner::applyMeasuredSpeedups(Plan, *M, E.getDispatchRecords());

  if (!telemetry::writeFile(O.TracePath, telemetry::traceJson() + "\n")) {
    std::fprintf(stderr, "noelle-trace: cannot write trace to '%s'\n",
                 O.TracePath.c_str());
    return 2;
  }
  if (!O.MetricsPath.empty() &&
      !telemetry::writeFile(O.MetricsPath,
                            telemetry::metricsJson() + "\n")) {
    std::fprintf(stderr, "noelle-trace: cannot write metrics to '%s'\n",
                 O.MetricsPath.c_str());
    return 2;
  }

  if (O.Summary) {
    telemetry::MetricsSnapshot S = telemetry::snapshotMetrics();
    std::printf("noelle-trace: %zu span(s) -> %s\n",
                telemetry::traceEventCount(), O.TracePath.c_str());
    std::printf("  loops parallelized:   %u\n", Parallelized);
    std::printf("  dispatches:           %llu static, %llu chunked "
                "(%llu chunks)\n",
                (unsigned long long)S.counter(
                    telemetry::Counter::DispatchStatic),
                (unsigned long long)S.counter(
                    telemetry::Counter::DispatchChunked),
                (unsigned long long)S.counter(
                    telemetry::Counter::DispatchChunks));
    std::printf("  pool tasks / steals:  %llu / %llu\n",
                (unsigned long long)S.counter(
                    telemetry::Counter::PoolTasksRun),
                (unsigned long long)S.counter(
                    telemetry::Counter::PoolSteals));
    std::printf("  queue push / pop:     %llu / %llu\n",
                (unsigned long long)S.counter(
                    telemetry::Counter::QueuePush),
                (unsigned long long)S.counter(
                    telemetry::Counter::QueuePop));
    if (const telemetry::HistSnapshot *H =
            S.histogram(telemetry::Hist::SSWaitStallNs))
      std::printf("  ss_wait stalls:       %llu (%llu ns total)\n",
                  (unsigned long long)H->Count,
                  (unsigned long long)H->Sum);
    for (const auto &En : Plan.Entries)
      if (En.MeasuredMilli != 0)
        std::printf("  %s loop@%llu:  est %.2fx, measured %.2fx\n",
                    En.FunctionName.c_str(),
                    (unsigned long long)En.HeaderInstID,
                    static_cast<double>(En.SpeedupMilli) / 1000.0,
                    static_cast<double>(En.MeasuredMilli) / 1000.0);
  }
  return 0;
}
