//===----------------------------------------------------------------------===//
///
/// \file
/// noelle-parallelize: the one-shot automatic parallelization driver.
///
/// Usage:
///   noelle-parallelize [options] <kernel-name | minic-file | nir-file>
///
/// The input is materialized, a pre-transform snapshot is captured, the
/// planner picks a strategy for every hot loop (technique, worker
/// count, chunk grain — from profile data and the cost model), the plan
/// is audited (`noelle-check --plan` semantics), applied, the result is
/// audited against the snapshot, and optionally executed.
///
/// Options:
///   --cores=N            worker-count search ceiling (4)
///   --speculate          let the planner consider profile-guided
///                        speculative DOALL: a memory-dependence profile
///                        is collected (by running main()) and embedded
///                        when the module carries none, speculative
///                        candidates join the enumeration, and the
///                        post-transform audit includes the
///                        --speculative checks
///   --technique=K        skip the planner: force doall|helix|dswp|
///                        spec-doall on every eligible loop (the legacy
///                        per-tool sweep)
///   --plan-file=<path>   apply a previously saved plan instead of
///                        computing one
///   --plan-only          stop after planning: print the plan, do not
///                        transform
///   --emit-plan          print the plan before applying it
///   --save-plan          embed the plan in the module's metadata
///   --overheads=<json>   derive spawn cost from a BENCH_runtime.json
///   --no-nested          do not plan DOALL loops inside DSWP stages
///   --no-profile         plan from static defaults (no profile runs)
///   --no-check           skip the plan audit and the post-transform
///                        legality/race audit
///   --opt                run the optimizer pipeline first
///   --run                execute main() after transforming
///   --metrics=<path>     enable the telemetry registry and write its
///                        JSON snapshot to <path> on exit
///   --print              print the transformed module to stdout
///   --list               list benchmark kernels and exit
///
/// Exit status: 0 clean, 1 when any audit finding or failed plan entry,
/// 2 on usage/compile errors.
///
//===----------------------------------------------------------------------===//

#include "ToolDriver.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "noelle/MemDepProfiler.h"
#include "noelle/Noelle.h"
#include "opt/Passes.h"
#include "planner/Feedback.h"
#include "planner/Planner.h"
#include "runtime/ParallelRuntime.h"
#include "verify/NoelleCheck.h"
#include "verify/PlanCheck.h"

#include <iostream>

using namespace noelle;

namespace {

struct CLIOptions {
  unsigned Cores = 4;
  std::string ForcedTechnique; // empty = free planner
  std::string PlanFile;
  std::string OverheadsFile;
  bool PlanOnly = false;
  bool EmitPlan = false;
  bool SavePlan = false;
  bool Nested = true;
  bool Profile = true;
  bool Speculate = false;
  bool Check = true;
  bool Optimize = false;
  bool Run = false;
  bool Print = false;
  std::string MetricsPath;
  std::string Input;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: noelle-parallelize [--cores=N] [--speculate] "
      "[--technique=doall|helix|dswp|spec-doall] [--plan-file=F] "
      "[--plan-only] [--emit-plan] [--save-plan] "
      "[--overheads=F] [--no-nested] [--no-profile] [--no-check] "
      "[--opt] [--run] [--print] [--list] <kernel|file.minic|file.nir>\n");
}

bool parseArgs(int Argc, char **Argv, CLIOptions &O) {
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    if (Arg == "--list") {
      tooldriver::listKernels();
      std::exit(0);
    }
    if (tooldriver::parseUnsignedOpt(Arg, "--cores=", O.Cores)) {
      if (O.Cores == 0) {
        std::fprintf(stderr,
                     "noelle-parallelize: --cores must be positive\n");
        return false;
      }
      continue;
    }
    if (tooldriver::parseStringOpt(Arg, "--technique=",
                                   O.ForcedTechnique)) {
      TechniqueKind K2;
      if (!techniqueFromName(O.ForcedTechnique, K2)) {
        std::fprintf(stderr,
                     "noelle-parallelize: unknown technique '%s'\n",
                     O.ForcedTechnique.c_str());
        return false;
      }
      continue;
    }
    if (tooldriver::parseStringOpt(Arg, "--plan-file=", O.PlanFile))
      continue;
    if (tooldriver::parseStringOpt(Arg, "--overheads=", O.OverheadsFile))
      continue;
    if (Arg == "--plan-only") {
      O.PlanOnly = true;
      continue;
    }
    if (Arg == "--emit-plan") {
      O.EmitPlan = true;
      continue;
    }
    if (Arg == "--save-plan") {
      O.SavePlan = true;
      continue;
    }
    if (Arg == "--speculate") {
      O.Speculate = true;
      continue;
    }
    if (Arg == "--no-nested") {
      O.Nested = false;
      continue;
    }
    if (Arg == "--no-profile") {
      O.Profile = false;
      continue;
    }
    if (Arg == "--no-check") {
      O.Check = false;
      continue;
    }
    if (Arg == "--opt") {
      O.Optimize = true;
      continue;
    }
    if (Arg == "--run") {
      O.Run = true;
      continue;
    }
    if (Arg == "--print") {
      O.Print = true;
      continue;
    }
    if (tooldriver::parseMetricsOpt(Arg, O.MetricsPath))
      continue;
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "noelle-parallelize: unknown option '%s'\n",
                   Arg.c_str());
      return false;
    }
    if (!O.Input.empty()) {
      std::fprintf(stderr, "noelle-parallelize: multiple inputs\n");
      return false;
    }
    O.Input = Arg;
  }
  if (O.Input.empty()) {
    printUsage();
    return false;
  }
  return true;
}

void printDecisions(const std::vector<Decision> &Decisions) {
  unsigned Parallelized = 0;
  for (const Decision &D : Decisions) {
    if (D.Parallelized) {
      ++Parallelized;
      std::printf("  %s loop %u in @%s: %s, %u worker(s)\n",
                  techniqueName(D.Kind), D.LoopID,
                  D.FunctionName.c_str(), "parallelized", D.Workers);
    } else {
      std::printf("  %s loop %u in @%s: skipped (%s)\n",
                  techniqueName(D.Kind), D.LoopID,
                  D.FunctionName.c_str(), D.Reason.c_str());
    }
  }
  std::printf("noelle-parallelize: %u loop(s) parallelized\n",
              Parallelized);
}

} // namespace

int main(int Argc, char **Argv) {
  CLIOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  nir::Context Ctx;
  auto M = tooldriver::loadInputModule("noelle-parallelize", Ctx, O.Input);
  if (!M)
    return 2;
  if (O.Optimize)
    opt::runPipeline(*M);

  // Speculation (planner enumeration or a forced spec-doall sweep) needs
  // the memory-dependence profile. Collect and embed it before the
  // snapshot: embedding is hash-neutral, and the IDs it is keyed by are
  // the same ones captureForCheck assigns.
  bool WantSpec = O.Speculate || O.ForcedTechnique == "spec-doall";
  if (WantSpec && !MemDepProfile::isEmbedded(*M))
    profileMemDeps(*M).embed(*M);

  // Snapshot before anything mutates code: the audit's ground truth,
  // and the source of the deterministic IDs plans are keyed by.
  verify::PreTransformSnapshot Snap = verify::captureForCheck(*M);

  Noelle N(*M);

  // Forced mode: the legacy per-tool sweep over every eligible loop.
  if (!O.ForcedTechnique.empty()) {
    TechniqueKind K;
    techniqueFromName(O.ForcedTechnique, K);
    auto T = createTechnique(K, N, O.Cores);
    std::vector<Decision> Decisions = T->run();
    printDecisions(Decisions);
    if (O.Check) {
      verify::CheckOptions CO;
      CO.Speculative = WantSpec;
      verify::CheckReport Rep = verify::checkModule(*M, Snap, CO);
      if (!Rep.clean()) {
        std::printf("%s", Rep.str().c_str());
        return 1;
      }
    }
    if (O.Print)
      M->print(std::cout);
    if (O.Run) {
      nir::ExecutionEngine E(*M);
      registerParallelRuntime(E);
      const int64_t R = E.runMain();
      std::fputs(E.getOutput().c_str(), stdout);
      std::printf("main() = %lld\n", (long long)R);
    }
    if (!tooldriver::writeMetricsIfRequested("noelle-parallelize",
                                             O.MetricsPath))
      return 2;
    return 0;
  }

  planner::PlannerOptions PO;
  PO.MaxWorkers = O.Cores;
  PO.EnableNested = O.Nested;
  PO.UseProfiles = O.Profile;
  PO.EnableSpeculation = O.Speculate;
  if (!O.OverheadsFile.empty()) {
    std::string Err;
    if (!planner::loadMeasuredOverheads(O.OverheadsFile, PO.Overheads,
                                        Err)) {
      std::fprintf(stderr, "noelle-parallelize: %s\n", Err.c_str());
      return 2;
    }
  }
  planner::Planner Planner(N, PO);

  planner::ProgramPlan Plan;
  if (!O.PlanFile.empty()) {
    std::string Err;
    if (!tooldriver::loadPlan(O.PlanFile, *M, Plan, Err)) {
      std::fprintf(stderr, "noelle-parallelize: %s\n", Err.c_str());
      return 2;
    }
  } else {
    Plan = Planner.plan();
  }

  if (O.EmitPlan || O.PlanOnly)
    std::fputs(Plan.serialize().c_str(), stdout);
  if (O.SavePlan)
    Plan.embed(*M);

  if (O.Check) {
    verify::CheckReport PlanRep = verify::checkPlan(*M, Plan);
    if (!PlanRep.clean()) {
      std::printf("%s", PlanRep.str().c_str());
      return 1;
    }
  }
  if (O.PlanOnly) {
    if (O.Print)
      M->print(std::cout);
    if (!tooldriver::writeMetricsIfRequested("noelle-parallelize",
                                             O.MetricsPath))
      return 2;
    return 0;
  }

  std::vector<Decision> Decisions = Planner.apply(Plan);
  printDecisions(Decisions);
  bool AnyEntryFailed = false;
  for (const Decision &D : Decisions)
    AnyEntryFailed |= !D.Parallelized;

  if (O.Check) {
    verify::CheckOptions CO;
    CO.Speculative = WantSpec;
    verify::CheckReport Rep = verify::checkModule(*M, Snap, CO);
    if (!Rep.clean()) {
      std::printf("%s", Rep.str().c_str());
      return 1;
    }
  }

  if (O.Print)
    M->print(std::cout);
  if (O.Run) {
    nir::ExecutionEngine E(*M);
    registerParallelRuntime(E);
    const int64_t R = E.runMain();
    std::fputs(E.getOutput().c_str(), stdout);
    std::printf("main() = %lld\n", (long long)R);

    // Close the loop: annotate the plan with the speedups the run
    // actually delivered (PlanEntry::MeasuredMilli), and refresh the
    // embedded copy so a saved plan records both numbers.
    planner::FeedbackResult FB = planner::applyMeasuredSpeedups(
        Plan, *M, E.getDispatchRecords());
    if (FB.EntriesMeasured > 0) {
      std::printf("noelle-parallelize: measured %u plan entr%s"
                  " (%u below 0.8x of estimate)\n",
                  FB.EntriesMeasured,
                  FB.EntriesMeasured == 1 ? "y" : "ies", FB.Shortfalls);
      if (O.SavePlan)
        Plan.embed(*M);
    }
  }
  if (!tooldriver::writeMetricsIfRequested("noelle-parallelize",
                                           O.MetricsPath))
    return 2;
  return AnyEntryFailed ? 1 : 0;
}
