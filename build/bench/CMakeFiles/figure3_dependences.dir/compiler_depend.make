# Empty compiler generated dependencies file for figure3_dependences.
# This may be replaced when dependencies are built.
