file(REMOVE_RECURSE
  "CMakeFiles/figure3_dependences.dir/figure3_dependences.cpp.o"
  "CMakeFiles/figure3_dependences.dir/figure3_dependences.cpp.o.d"
  "figure3_dependences"
  "figure3_dependences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_dependences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
