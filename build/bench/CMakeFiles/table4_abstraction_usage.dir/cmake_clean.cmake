file(REMOVE_RECURSE
  "CMakeFiles/table4_abstraction_usage.dir/table4_abstraction_usage.cpp.o"
  "CMakeFiles/table4_abstraction_usage.dir/table4_abstraction_usage.cpp.o.d"
  "table4_abstraction_usage"
  "table4_abstraction_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_abstraction_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
