# Empty compiler generated dependencies file for table4_abstraction_usage.
# This may be replaced when dependencies are built.
