# Empty compiler generated dependencies file for sec44_spec_robustness.
# This may be replaced when dependencies are built.
