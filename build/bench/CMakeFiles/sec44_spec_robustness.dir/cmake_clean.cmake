file(REMOVE_RECURSE
  "CMakeFiles/sec44_spec_robustness.dir/sec44_spec_robustness.cpp.o"
  "CMakeFiles/sec44_spec_robustness.dir/sec44_spec_robustness.cpp.o.d"
  "sec44_spec_robustness"
  "sec44_spec_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_spec_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
