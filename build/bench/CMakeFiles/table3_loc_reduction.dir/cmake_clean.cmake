file(REMOVE_RECURSE
  "CMakeFiles/table3_loc_reduction.dir/table3_loc_reduction.cpp.o"
  "CMakeFiles/table3_loc_reduction.dir/table3_loc_reduction.cpp.o.d"
  "table3_loc_reduction"
  "table3_loc_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_loc_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
