file(REMOVE_RECURSE
  "CMakeFiles/sec43_iv_counts.dir/sec43_iv_counts.cpp.o"
  "CMakeFiles/sec43_iv_counts.dir/sec43_iv_counts.cpp.o.d"
  "sec43_iv_counts"
  "sec43_iv_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_iv_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
