# Empty compiler generated dependencies file for sec43_iv_counts.
# This may be replaced when dependencies are built.
