file(REMOVE_RECURSE
  "CMakeFiles/figure5_speedups.dir/figure5_speedups.cpp.o"
  "CMakeFiles/figure5_speedups.dir/figure5_speedups.cpp.o.d"
  "figure5_speedups"
  "figure5_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
