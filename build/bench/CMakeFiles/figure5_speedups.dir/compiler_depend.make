# Empty compiler generated dependencies file for figure5_speedups.
# This may be replaced when dependencies are built.
