file(REMOVE_RECURSE
  "CMakeFiles/ablation_pdg_precision.dir/ablation_pdg_precision.cpp.o"
  "CMakeFiles/ablation_pdg_precision.dir/ablation_pdg_precision.cpp.o.d"
  "ablation_pdg_precision"
  "ablation_pdg_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pdg_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
