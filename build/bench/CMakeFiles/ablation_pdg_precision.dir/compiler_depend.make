# Empty compiler generated dependencies file for ablation_pdg_precision.
# This may be replaced when dependencies are built.
