# Empty compiler generated dependencies file for table2_tools.
# This may be replaced when dependencies are built.
