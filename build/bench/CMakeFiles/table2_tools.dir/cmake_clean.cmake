file(REMOVE_RECURSE
  "CMakeFiles/table2_tools.dir/table2_tools.cpp.o"
  "CMakeFiles/table2_tools.dir/table2_tools.cpp.o.d"
  "table2_tools"
  "table2_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
