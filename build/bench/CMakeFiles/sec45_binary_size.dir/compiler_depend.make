# Empty compiler generated dependencies file for sec45_binary_size.
# This may be replaced when dependencies are built.
