file(REMOVE_RECURSE
  "CMakeFiles/sec45_binary_size.dir/sec45_binary_size.cpp.o"
  "CMakeFiles/sec45_binary_size.dir/sec45_binary_size.cpp.o.d"
  "sec45_binary_size"
  "sec45_binary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_binary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
