# Empty compiler generated dependencies file for micro_noelle.
# This may be replaced when dependencies are built.
