file(REMOVE_RECURSE
  "CMakeFiles/micro_noelle.dir/micro_noelle.cpp.o"
  "CMakeFiles/micro_noelle.dir/micro_noelle.cpp.o.d"
  "micro_noelle"
  "micro_noelle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_noelle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
