# Empty compiler generated dependencies file for table1_abstractions.
# This may be replaced when dependencies are built.
