file(REMOVE_RECURSE
  "CMakeFiles/table1_abstractions.dir/table1_abstractions.cpp.o"
  "CMakeFiles/table1_abstractions.dir/table1_abstractions.cpp.o.d"
  "table1_abstractions"
  "table1_abstractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_abstractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
