file(REMOVE_RECURSE
  "CMakeFiles/figure4_invariants.dir/figure4_invariants.cpp.o"
  "CMakeFiles/figure4_invariants.dir/figure4_invariants.cpp.o.d"
  "figure4_invariants"
  "figure4_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
