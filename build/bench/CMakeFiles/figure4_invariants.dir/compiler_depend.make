# Empty compiler generated dependencies file for figure4_invariants.
# This may be replaced when dependencies are built.
