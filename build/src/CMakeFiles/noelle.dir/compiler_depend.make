# Empty compiler generated dependencies file for noelle.
# This may be replaced when dependencies are built.
