file(REMOVE_RECURSE
  "libnoelle.a"
)
