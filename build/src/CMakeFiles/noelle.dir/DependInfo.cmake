
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AliasAnalysis.cpp" "src/CMakeFiles/noelle.dir/analysis/AliasAnalysis.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/analysis/AliasAnalysis.cpp.o.d"
  "/root/repo/src/analysis/CFG.cpp" "src/CMakeFiles/noelle.dir/analysis/CFG.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/analysis/CFG.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/noelle.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/noelle.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/baselines/ConservativeParallelizer.cpp" "src/CMakeFiles/noelle.dir/baselines/ConservativeParallelizer.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/baselines/ConservativeParallelizer.cpp.o.d"
  "/root/repo/src/baselines/LLVMBaselines.cpp" "src/CMakeFiles/noelle.dir/baselines/LLVMBaselines.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/baselines/LLVMBaselines.cpp.o.d"
  "/root/repo/src/benchmarks/Suite.cpp" "src/CMakeFiles/noelle.dir/benchmarks/Suite.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/benchmarks/Suite.cpp.o.d"
  "/root/repo/src/frontend/Mem2Reg.cpp" "src/CMakeFiles/noelle.dir/frontend/Mem2Reg.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/frontend/Mem2Reg.cpp.o.d"
  "/root/repo/src/frontend/MiniCCodegen.cpp" "src/CMakeFiles/noelle.dir/frontend/MiniCCodegen.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/frontend/MiniCCodegen.cpp.o.d"
  "/root/repo/src/frontend/MiniCParser.cpp" "src/CMakeFiles/noelle.dir/frontend/MiniCParser.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/frontend/MiniCParser.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/noelle.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/noelle.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Context.cpp" "src/CMakeFiles/noelle.dir/ir/Context.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Context.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/noelle.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/IDs.cpp" "src/CMakeFiles/noelle.dir/ir/IDs.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/IDs.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/noelle.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Linker.cpp" "src/CMakeFiles/noelle.dir/ir/Linker.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Linker.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/noelle.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/noelle.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/noelle.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Utils.cpp" "src/CMakeFiles/noelle.dir/ir/Utils.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Utils.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/CMakeFiles/noelle.dir/ir/Value.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Value.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/noelle.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/noelle/Architecture.cpp" "src/CMakeFiles/noelle.dir/noelle/Architecture.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Architecture.cpp.o.d"
  "/root/repo/src/noelle/CallGraph.cpp" "src/CMakeFiles/noelle.dir/noelle/CallGraph.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/CallGraph.cpp.o.d"
  "/root/repo/src/noelle/DataFlow.cpp" "src/CMakeFiles/noelle.dir/noelle/DataFlow.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/DataFlow.cpp.o.d"
  "/root/repo/src/noelle/Environment.cpp" "src/CMakeFiles/noelle.dir/noelle/Environment.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Environment.cpp.o.d"
  "/root/repo/src/noelle/InductionVariables.cpp" "src/CMakeFiles/noelle.dir/noelle/InductionVariables.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/InductionVariables.cpp.o.d"
  "/root/repo/src/noelle/Invariants.cpp" "src/CMakeFiles/noelle.dir/noelle/Invariants.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Invariants.cpp.o.d"
  "/root/repo/src/noelle/LoopBuilder.cpp" "src/CMakeFiles/noelle.dir/noelle/LoopBuilder.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/LoopBuilder.cpp.o.d"
  "/root/repo/src/noelle/Noelle.cpp" "src/CMakeFiles/noelle.dir/noelle/Noelle.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Noelle.cpp.o.d"
  "/root/repo/src/noelle/PDG.cpp" "src/CMakeFiles/noelle.dir/noelle/PDG.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/PDG.cpp.o.d"
  "/root/repo/src/noelle/Profiler.cpp" "src/CMakeFiles/noelle.dir/noelle/Profiler.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Profiler.cpp.o.d"
  "/root/repo/src/noelle/Reduction.cpp" "src/CMakeFiles/noelle.dir/noelle/Reduction.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Reduction.cpp.o.d"
  "/root/repo/src/noelle/SCCDAG.cpp" "src/CMakeFiles/noelle.dir/noelle/SCCDAG.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/SCCDAG.cpp.o.d"
  "/root/repo/src/noelle/Scheduler.cpp" "src/CMakeFiles/noelle.dir/noelle/Scheduler.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/noelle/Scheduler.cpp.o.d"
  "/root/repo/src/runtime/ParallelRuntime.cpp" "src/CMakeFiles/noelle.dir/runtime/ParallelRuntime.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/runtime/ParallelRuntime.cpp.o.d"
  "/root/repo/src/tools/NoelleTools.cpp" "src/CMakeFiles/noelle.dir/tools/NoelleTools.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/tools/NoelleTools.cpp.o.d"
  "/root/repo/src/xforms/CARAT.cpp" "src/CMakeFiles/noelle.dir/xforms/CARAT.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/CARAT.cpp.o.d"
  "/root/repo/src/xforms/COOS.cpp" "src/CMakeFiles/noelle.dir/xforms/COOS.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/COOS.cpp.o.d"
  "/root/repo/src/xforms/DOALL.cpp" "src/CMakeFiles/noelle.dir/xforms/DOALL.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/DOALL.cpp.o.d"
  "/root/repo/src/xforms/DSWP.cpp" "src/CMakeFiles/noelle.dir/xforms/DSWP.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/DSWP.cpp.o.d"
  "/root/repo/src/xforms/DeadFunctionEliminator.cpp" "src/CMakeFiles/noelle.dir/xforms/DeadFunctionEliminator.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/DeadFunctionEliminator.cpp.o.d"
  "/root/repo/src/xforms/HELIX.cpp" "src/CMakeFiles/noelle.dir/xforms/HELIX.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/HELIX.cpp.o.d"
  "/root/repo/src/xforms/LICM.cpp" "src/CMakeFiles/noelle.dir/xforms/LICM.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/LICM.cpp.o.d"
  "/root/repo/src/xforms/PRVJeeves.cpp" "src/CMakeFiles/noelle.dir/xforms/PRVJeeves.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/PRVJeeves.cpp.o.d"
  "/root/repo/src/xforms/ParallelizationUtils.cpp" "src/CMakeFiles/noelle.dir/xforms/ParallelizationUtils.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/ParallelizationUtils.cpp.o.d"
  "/root/repo/src/xforms/Perspective.cpp" "src/CMakeFiles/noelle.dir/xforms/Perspective.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/Perspective.cpp.o.d"
  "/root/repo/src/xforms/TimeSqueezer.cpp" "src/CMakeFiles/noelle.dir/xforms/TimeSqueezer.cpp.o" "gcc" "src/CMakeFiles/noelle.dir/xforms/TimeSqueezer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
