# Empty compiler generated dependencies file for example_invariant_explorer.
# This may be replaced when dependencies are built.
