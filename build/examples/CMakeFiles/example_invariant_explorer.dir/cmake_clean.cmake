file(REMOVE_RECURSE
  "CMakeFiles/example_invariant_explorer.dir/invariant_explorer.cpp.o"
  "CMakeFiles/example_invariant_explorer.dir/invariant_explorer.cpp.o.d"
  "example_invariant_explorer"
  "example_invariant_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_invariant_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
