file(REMOVE_RECURSE
  "CMakeFiles/example_parallelize_kernel.dir/parallelize_kernel.cpp.o"
  "CMakeFiles/example_parallelize_kernel.dir/parallelize_kernel.cpp.o.d"
  "example_parallelize_kernel"
  "example_parallelize_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallelize_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
