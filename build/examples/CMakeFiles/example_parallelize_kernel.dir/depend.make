# Empty dependencies file for example_parallelize_kernel.
# This may be replaced when dependencies are built.
