file(REMOVE_RECURSE
  "CMakeFiles/example_toolchain_pipeline.dir/toolchain_pipeline.cpp.o"
  "CMakeFiles/example_toolchain_pipeline.dir/toolchain_pipeline.cpp.o.d"
  "example_toolchain_pipeline"
  "example_toolchain_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_toolchain_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
