# Empty dependencies file for example_toolchain_pipeline.
# This may be replaced when dependencies are built.
