
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/noelle_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/CustomToolsTest.cpp" "tests/CMakeFiles/noelle_tests.dir/CustomToolsTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/CustomToolsTest.cpp.o.d"
  "/root/repo/tests/DOALLTest.cpp" "tests/CMakeFiles/noelle_tests.dir/DOALLTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/DOALLTest.cpp.o.d"
  "/root/repo/tests/DSWPTest.cpp" "tests/CMakeFiles/noelle_tests.dir/DSWPTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/DSWPTest.cpp.o.d"
  "/root/repo/tests/DataFlowInterpreterTest.cpp" "tests/CMakeFiles/noelle_tests.dir/DataFlowInterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/DataFlowInterpreterTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/noelle_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/HELIXTest.cpp" "tests/CMakeFiles/noelle_tests.dir/HELIXTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/HELIXTest.cpp.o.d"
  "/root/repo/tests/IRTest.cpp" "tests/CMakeFiles/noelle_tests.dir/IRTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/IRTest.cpp.o.d"
  "/root/repo/tests/NoelleCoreTest.cpp" "tests/CMakeFiles/noelle_tests.dir/NoelleCoreTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/NoelleCoreTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/noelle_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SchedulerLoopBuilderTest.cpp" "tests/CMakeFiles/noelle_tests.dir/SchedulerLoopBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/SchedulerLoopBuilderTest.cpp.o.d"
  "/root/repo/tests/SuiteTest.cpp" "tests/CMakeFiles/noelle_tests.dir/SuiteTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/SuiteTest.cpp.o.d"
  "/root/repo/tests/ToolsPipelineTest.cpp" "tests/CMakeFiles/noelle_tests.dir/ToolsPipelineTest.cpp.o" "gcc" "tests/CMakeFiles/noelle_tests.dir/ToolsPipelineTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/noelle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
