file(REMOVE_RECURSE
  "CMakeFiles/noelle_tests.dir/AnalysisTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/AnalysisTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/CustomToolsTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/CustomToolsTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/DOALLTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/DOALLTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/DSWPTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/DSWPTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/DataFlowInterpreterTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/DataFlowInterpreterTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/FrontendTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/FrontendTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/HELIXTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/HELIXTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/IRTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/IRTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/NoelleCoreTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/NoelleCoreTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/PropertyTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/SchedulerLoopBuilderTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/SchedulerLoopBuilderTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/SuiteTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/SuiteTest.cpp.o.d"
  "CMakeFiles/noelle_tests.dir/ToolsPipelineTest.cpp.o"
  "CMakeFiles/noelle_tests.dir/ToolsPipelineTest.cpp.o.d"
  "noelle_tests"
  "noelle_tests.pdb"
  "noelle_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noelle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
