# Empty compiler generated dependencies file for noelle_tests.
# This may be replaced when dependencies are built.
