#include "ir/Module.h"

#include "ir/Instructions.h"

#include <cstring>
#include <map>
#include <set>
#include <sstream>

using namespace nir;

Function *Module::createFunction(Type *FnTy, const std::string &Name) {
  assert(!getFunction(Name) && "function with this name already exists");
  auto F = std::make_unique<Function>(FnTy, Name);
  Function *Raw = F.get();
  Raw->setParent(this);
  Functions.push_back(std::move(F));
  return Raw;
}

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  // Neutralize the body first: replace produced values with undef for
  // any (necessarily dead) users, then drop every operand reference so
  // blocks and instructions can be destroyed in any order (branches
  // reference blocks; phis reference values across blocks).
  for (auto &BB : F->getBlocks())
    for (auto &I : BB->getInstList())
      if (I->hasUses())
        I->replaceAllUsesWith(getContext().getUndef(I->getType()));
  for (auto &BB : F->getBlocks())
    for (auto &I : BB->getInstList())
      I->dropAllOperands();
  while (!F->getBlocks().empty())
    F->eraseBlock(F->getBlocks().back().get());
  for (auto It = Functions.begin(), E = Functions.end(); It != E; ++It)
    if (It->get() == F) {
      assert(!F->hasUses() && "erasing a function that is still referenced");
      Functions.erase(It);
      return;
    }
  assert(false && "function not found in module");
}

GlobalVariable *Module::createGlobal(Type *ValueTy, const std::string &Name) {
  assert(!getGlobal(Name) && "global with this name already exists");
  auto G =
      std::make_unique<GlobalVariable>(Ctx.getPtrTy(), ValueTy, Name);
  GlobalVariable *Raw = G.get();
  Raw->setParent(this);
  Globals.push_back(std::move(G));
  return Raw;
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->getName() == Name)
      return G.get();
  return nullptr;
}

uint64_t Module::getNumInstructions() const {
  uint64_t N = 0;
  for (const auto &F : Functions)
    N += F->getNumInstructions();
  return N;
}

//===----------------------------------------------------------------------===//
// Textual printer.
//===----------------------------------------------------------------------===//

namespace {

/// Assigns unique printable names to every value in a function.
class ValueNamer {
public:
  explicit ValueNamer(const Function &F) {
    for (unsigned I = 0; I < F.getNumArgs(); ++I)
      assign(F.getArg(I));
    for (const auto &BB : F.getBlocks()) {
      assignBlock(BB.get());
      for (const auto &Inst : BB->getInstList())
        if (!Inst->getType()->isVoid())
          assign(Inst.get());
    }
  }

  std::string nameOf(const Value *V) const {
    auto It = Names.find(V);
    assert(It != Names.end() && "value was never named");
    return It->second;
  }

  std::string blockName(const BasicBlock *BB) const { return nameOf(BB); }

private:
  void assign(const Value *V) { Names[V] = unique(V->getName(), "v"); }
  void assignBlock(const BasicBlock *BB) {
    Names[BB] = unique(BB->getName(), "bb");
  }

  std::string unique(const std::string &Hint, const char *Fallback) {
    std::string Base = Hint.empty() ? Fallback : Hint;
    std::string Candidate = Base;
    unsigned Suffix = 0;
    while (Used.count(Candidate))
      Candidate = Base + "." + std::to_string(++Suffix);
    Used.insert(Candidate);
    return Candidate;
  }

  std::map<const Value *, std::string> Names;
  std::set<std::string> Used;
};

std::string escapeString(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Renders an operand reference. Constants are printed bare because the
/// surrounding instruction syntax fixes the expected type.
std::string operandRef(const Value *V, const ValueNamer &Namer) {
  if (auto *CI = dyn_cast<ConstantInt>(V))
    return std::to_string(CI->getValue());
  if (auto *CF = dyn_cast<ConstantFP>(V)) {
    std::ostringstream OS;
    OS.precision(17);
    double D = CF->getValue();
    OS << D;
    std::string S = OS.str();
    // Guarantee a float-looking token so the parser round-trips the type.
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos &&
        S.find("inf") == std::string::npos &&
        S.find("nan") == std::string::npos)
      S += ".0";
    return S;
  }
  if (isa<UndefValue>(V))
    return "undef";
  if (isa<GlobalVariable>(V) || isa<Function>(V))
    return "@" + V->getName();
  if (auto *BB = dyn_cast<BasicBlock>(V))
    return Namer.blockName(BB);
  return "%" + Namer.nameOf(V);
}

/// Type of \p V as printed in operand positions: function values decay to
/// "ptr" so that function pointers round-trip.
std::string printedTypeOf(const Value *V) {
  return V->getType()->isFunction() ? "ptr" : V->getType()->str();
}

void printMetadata(std::ostream &OS, const Value &V, const char *Indent) {
  for (const auto &[K, Val] : V.getAllMetadata())
    OS << Indent << "!\"" << escapeString(K) << "\" = \"" << escapeString(Val)
       << "\"\n";
}

void printInstruction(std::ostream &OS, const Instruction &I,
                      const ValueNamer &Namer) {
  OS << "  ";
  if (!I.getType()->isVoid())
    OS << "%" << Namer.nameOf(&I) << " = ";

  auto Ref = [&](const Value *V) { return operandRef(V, Namer); };

  switch (I.getKind()) {
  case Value::Kind::Alloca:
    OS << "alloca " << cast<AllocaInst>(&I)->getAllocatedType()->str();
    break;
  case Value::Kind::Load: {
    auto &L = *cast<LoadInst>(&I);
    OS << "load " << L.getType()->str() << ", " << Ref(L.getPointerOperand());
    break;
  }
  case Value::Kind::Store: {
    auto &S = *cast<StoreInst>(&I);
    OS << "store " << printedTypeOf(S.getValueOperand()) << " "
       << Ref(S.getValueOperand()) << ", " << Ref(S.getPointerOperand());
    break;
  }
  case Value::Kind::GEP: {
    auto &G = *cast<GEPInst>(&I);
    OS << "gep " << Ref(G.getBase()) << ", "
       << G.getIndex()->getType()->str() << " " << Ref(G.getIndex())
       << ", scale " << G.getScale();
    break;
  }
  case Value::Kind::Binary: {
    auto &B = *cast<BinaryInst>(&I);
    OS << BinaryInst::opName(B.getOp()) << " " << B.getType()->str() << " "
       << Ref(B.getLHS()) << ", " << Ref(B.getRHS());
    break;
  }
  case Value::Kind::Cmp: {
    auto &C = *cast<CmpInst>(&I);
    OS << "cmp " << CmpInst::predName(C.getPred()) << " "
       << C.getLHS()->getType()->str() << " " << Ref(C.getLHS()) << ", "
       << Ref(C.getRHS());
    break;
  }
  case Value::Kind::Cast: {
    auto &C = *cast<CastInst>(&I);
    OS << CastInst::opName(C.getOp()) << " "
       << printedTypeOf(C.getValueOperand()) << " "
       << Ref(C.getValueOperand()) << " to " << C.getType()->str();
    break;
  }
  case Value::Kind::Select: {
    auto &S = *cast<SelectInst>(&I);
    OS << "select " << Ref(S.getCondition()) << ", " << S.getType()->str()
       << " " << Ref(S.getTrueValue()) << ", " << Ref(S.getFalseValue());
    break;
  }
  case Value::Kind::Phi: {
    auto &P = *cast<PhiInst>(&I);
    OS << "phi " << P.getType()->str();
    for (unsigned K = 0, E = P.getNumIncoming(); K != E; ++K) {
      OS << (K ? ", " : " ") << "[" << Ref(P.getIncomingValue(K)) << ", "
         << Namer.blockName(P.getIncomingBlock(K)) << "]";
    }
    break;
  }
  case Value::Kind::Branch: {
    auto &B = *cast<BranchInst>(&I);
    if (B.isConditional())
      OS << "br " << Ref(B.getCondition()) << ", label "
         << Namer.blockName(B.getSuccessor(0)) << ", label "
         << Namer.blockName(B.getSuccessor(1));
    else
      OS << "br label " << Namer.blockName(B.getSuccessor(0));
    break;
  }
  case Value::Kind::Call: {
    auto &C = *cast<CallInst>(&I);
    OS << "call " << C.getType()->str() << " ";
    if (auto *F = C.getCalledFunction())
      OS << "@" << F->getName();
    else
      OS << Ref(C.getCalleeOperand());
    OS << "(";
    for (unsigned K = 0, E = C.getNumArgs(); K != E; ++K) {
      if (K)
        OS << ", ";
      OS << printedTypeOf(C.getArg(K)) << " " << Ref(C.getArg(K));
    }
    OS << ")";
    break;
  }
  case Value::Kind::Ret: {
    auto &R = *cast<RetInst>(&I);
    if (R.hasReturnValue())
      OS << "ret " << printedTypeOf(R.getReturnValue()) << " "
         << Ref(R.getReturnValue());
    else
      OS << "ret void";
    break;
  }
  case Value::Kind::Unreachable:
    OS << "unreachable";
    break;
  case Value::Kind::VLoad: {
    auto &L = *cast<VLoadInst>(&I);
    OS << "vload " << L.getType()->str() << ", "
       << Ref(L.getPointerOperand());
    break;
  }
  case Value::Kind::VStore: {
    auto &S = *cast<VStoreInst>(&I);
    OS << "vstore " << S.getValueOperand()->getType()->str() << " "
       << Ref(S.getValueOperand()) << ", " << Ref(S.getPointerOperand());
    break;
  }
  case Value::Kind::VBinary: {
    auto &B = *cast<VBinaryInst>(&I);
    OS << "v" << BinaryInst::opName(B.getOp()) << " " << B.getType()->str()
       << " " << Ref(B.getLHS()) << ", " << Ref(B.getRHS());
    break;
  }
  case Value::Kind::VExtract: {
    auto &E = *cast<VExtractInst>(&I);
    OS << "vextract " << E.getVectorOperand()->getType()->str() << " "
       << Ref(E.getVectorOperand()) << ", " << E.getLane();
    break;
  }
  case Value::Kind::VPack: {
    auto &P = *cast<VPackInst>(&I);
    OS << "vpack " << P.getType()->str();
    for (unsigned K = 0, E = P.getNumLanes(); K != E; ++K)
      OS << (K ? ", " : " ") << Ref(P.getLaneOperand(K));
    break;
  }
  default:
    assert(false && "unknown instruction kind in printer");
  }

  // Inline metadata, printed as !"k"="v" suffixes.
  for (const auto &[K, V] : I.getAllMetadata())
    OS << " !\"" << escapeString(K) << "\"=\"" << escapeString(V) << "\"";
  OS << "\n";
}

} // namespace

void Module::print(std::ostream &OS) const {
  OS << "module \"" << escapeString(Name) << "\"\n";
  for (const auto &[K, V] : ModuleMetadata)
    OS << "meta \"" << escapeString(K) << "\" = \"" << escapeString(V)
       << "\"\n";
  printBody(OS);
}

void Module::printBody(std::ostream &OS) const {
  for (const auto &G : Globals) {
    OS << "global @" << G->getName() << " : " << G->getValueType()->str();
    if (!G->getInitWords().empty()) {
      OS << " = [";
      for (size_t I = 0; I < G->getInitWords().size(); ++I) {
        if (I)
          OS << ", ";
        OS << G->getInitWords()[I];
      }
      OS << "]";
    }
    OS << "\n";
  }

  for (const auto &F : Functions) {
    if (!F->isDeclaration())
      continue;
    OS << "declare @" << F->getName() << "(";
    for (unsigned I = 0; I < F->getNumArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << F->getArg(I)->getType()->str();
    }
    OS << ") -> " << F->getReturnType()->str() << "\n";
  }

  for (const auto &F : Functions) {
    if (F->isDeclaration())
      continue;
    ValueNamer Namer(*F);
    OS << "\nfunc @" << F->getName() << "(";
    for (unsigned I = 0; I < F->getNumArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << "%" << Namer.nameOf(F->getArg(I)) << ": "
         << F->getArg(I)->getType()->str();
    }
    OS << ") -> " << F->getReturnType()->str() << " {\n";
    printMetadata(OS, *F, "  ");
    for (const auto &BB : F->getBlocks()) {
      OS << Namer.blockName(BB.get()) << ":\n";
      for (const auto &I : BB->getInstList())
        printInstruction(OS, *I, Namer);
    }
    OS << "}\n";
  }
}

std::string Module::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

namespace {

/// Incremental FNV-1a over the module's structural content, folded one
/// 64-bit word at a time (byte-at-a-time FNV is a serial multiply chain
/// eight times as long for the same input). A direct IR walk rather
/// than a hash of the printed text: verifying an embedded cache must be
/// much cheaper than the analyses it skips, and printing a module costs
/// more than building its PDG for small programs.
struct ContentHasher {
  uint64_t H = 14695981039346656037ull;

  void word(uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  }
  void str(const std::string &S) {
    word(S.size());
    const char *P = S.data();
    size_t N = S.size();
    while (N >= 8) {
      uint64_t W;
      std::memcpy(&W, P, 8);
      word(W);
      P += 8;
      N -= 8;
    }
    if (N) {
      uint64_t W = 0;
      std::memcpy(&W, P, N);
      word(W);
    }
  }
  void type(const Type *T) {
    // Types are interned in the Context, but pointer identity is not
    // stable across print/parse; digest the canonical spelling, cached.
    auto It = TypeHash.find(T);
    if (It == TypeHash.end()) {
      ContentHasher TH;
      TH.str(T->str());
      It = TypeHash.emplace(T, TH.H).first;
    }
    word(It->second);
  }
  std::map<const Type *, uint64_t> TypeHash;
};

} // namespace

uint64_t Module::getContentHash() const {
  ContentHasher HS;

  for (const auto &G : Globals) {
    HS.str(G->getName());
    HS.type(G->getValueType());
    HS.word(G->getInitWords().size());
    for (uint64_t W : G->getInitWords())
      HS.word(W);
  }

  for (const auto &F : Functions) {
    HS.str(F->getName());
    HS.word(F->isDeclaration() ? 1 : 0);
    HS.word(F->getNumArgs());
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      HS.type(F->getArg(I)->getType());
    HS.type(F->getReturnType());
    if (F->isDeclaration())
      continue;

    // Positional identity for function-local values: stable across the
    // print/parse round-trip, unlike pointers or value names. Stored in
    // each value's scratch slot — a map here would cost more than the
    // rest of the walk combined.
    uint32_t Next = 0;
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      F->getArg(I)->setScratchIndex(Next++);
    for (const auto &BB : F->getBlocks()) {
      BB->setScratchIndex(Next++);
      for (const auto &I : BB->getInstList())
        I->setScratchIndex(Next++);
    }

    for (const auto &BB : F->getBlocks()) {
      HS.word(BB->getInstList().size());
      for (const auto &I : BB->getInstList()) {
        HS.word(static_cast<uint64_t>(I->getKind()));
        HS.type(I->getType());
        // Kind-specific payload not visible through operands.
        switch (I->getKind()) {
        case Value::Kind::Alloca:
          HS.type(cast<AllocaInst>(I.get())->getAllocatedType());
          break;
        case Value::Kind::GEP:
          HS.word(cast<GEPInst>(I.get())->getScale());
          break;
        case Value::Kind::Binary:
          HS.word(static_cast<uint64_t>(
              cast<BinaryInst>(I.get())->getOp()));
          break;
        case Value::Kind::Cmp:
          HS.word(static_cast<uint64_t>(
              cast<CmpInst>(I.get())->getPred()));
          break;
        case Value::Kind::Cast:
          HS.word(static_cast<uint64_t>(
              cast<CastInst>(I.get())->getOp()));
          break;
        case Value::Kind::VBinary:
          HS.word(static_cast<uint64_t>(
              cast<VBinaryInst>(I.get())->getOp()));
          break;
        case Value::Kind::VExtract:
          HS.word(cast<VExtractInst>(I.get())->getLane());
          break;
        default:
          break;
        }
        const auto &Ops = I->operands();
        HS.word(Ops.size());
        for (const Value *Op : Ops) {
          HS.word(static_cast<uint64_t>(Op->getKind()));
          switch (Op->getKind()) {
          case Value::Kind::ConstantInt:
            HS.word(static_cast<uint64_t>(
                cast<ConstantInt>(Op)->getValue()));
            break;
          case Value::Kind::ConstantFP: {
            double D = cast<ConstantFP>(Op)->getValue();
            uint64_t BitPattern;
            static_assert(sizeof(BitPattern) == sizeof(D));
            std::memcpy(&BitPattern, &D, sizeof(D));
            HS.word(BitPattern);
            break;
          }
          case Value::Kind::Undef:
            HS.type(Op->getType());
            break;
          case Value::Kind::GlobalVariable:
          case Value::Kind::Function:
            HS.str(Op->getName());
            break;
          default: // arguments, blocks, instructions: positional
            HS.word(Op->getScratchIndex());
            break;
          }
        }
      }
    }
  }
  return HS.H;
}
