//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the NIR textual format produced by Module::print. Supports
/// round-tripping: parse(print(M)) is structurally identical to M.
///
//===----------------------------------------------------------------------===//

#ifndef IR_PARSER_H
#define IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace nir {

/// Parses \p Text into a new Module. On failure returns null and fills
/// \p Error with a line-numbered diagnostic.
std::unique_ptr<Module> parseModule(Context &Ctx, const std::string &Text,
                                    std::string &Error);

/// Convenience overload that asserts on parse errors; for tests and
/// internal fixtures.
std::unique_ptr<Module> parseModuleOrDie(Context &Ctx,
                                         const std::string &Text);

} // namespace nir

#endif // IR_PARSER_H
