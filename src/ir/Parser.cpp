#include "ir/Parser.h"

#include "ir/Instructions.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

using namespace nir;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  End,
  Ident,     // foo, label names, keywords
  LocalRef,  // %name
  GlobalRef, // @name
  Integer,   // 42, -7
  Float,     // 3.5, -1e9
  String,    // "..."
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Colon,
  Equals,
  Bang,
  Arrow, // ->
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t IntVal = 0;
  double FloatVal = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    T.Line = Line;
    if (Pos >= Text.size()) {
      T.Kind = TokKind::End;
      return T;
    }
    char C = Text[Pos];
    if (C == '%' || C == '@') {
      ++Pos;
      T.Kind = C == '%' ? TokKind::LocalRef : TokKind::GlobalRef;
      T.Text = lexIdentBody();
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.') {
      T.Kind = TokKind::Ident;
      T.Text = lexIdentBody();
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[Pos + 1])) ||
          Text[Pos + 1] == '.'))) {
      return lexNumber();
    }
    if (C == '"')
      return lexString();
    ++Pos;
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      T.Kind = TokKind::RParen;
      return T;
    case '[':
      T.Kind = TokKind::LBracket;
      return T;
    case ']':
      T.Kind = TokKind::RBracket;
      return T;
    case '{':
      T.Kind = TokKind::LBrace;
      return T;
    case '}':
      T.Kind = TokKind::RBrace;
      return T;
    case ',':
      T.Kind = TokKind::Comma;
      return T;
    case ':':
      T.Kind = TokKind::Colon;
      return T;
    case '=':
      T.Kind = TokKind::Equals;
      return T;
    case '!':
      T.Kind = TokKind::Bang;
      return T;
    case '-':
      if (Pos < Text.size() && Text[Pos] == '>') {
        ++Pos;
        T.Kind = TokKind::Arrow;
        return T;
      }
      break;
    default:
      break;
    }
    T.Kind = TokKind::End;
    T.Text = std::string(1, C);
    return T;
  }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string lexIdentBody() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  Token lexNumber() {
    Token T;
    T.Line = Line;
    size_t Start = Pos;
    if (Text[Pos] == '-')
      ++Pos;
    bool IsFloat = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E') {
        IsFloat = true;
        ++Pos;
        if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-') &&
            (C == 'e' || C == 'E'))
          ++Pos;
      } else {
        break;
      }
    }
    std::string S = Text.substr(Start, Pos - Start);
    if (IsFloat) {
      T.Kind = TokKind::Float;
      T.FloatVal = std::strtod(S.c_str(), nullptr);
    } else {
      T.Kind = TokKind::Integer;
      T.IntVal = std::strtoll(S.c_str(), nullptr, 10);
    }
    return T;
  }

  Token lexString() {
    Token T;
    T.Line = Line;
    T.Kind = TokKind::String;
    ++Pos; // opening quote
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        if (E == 'n')
          T.Text += '\n';
        else
          T.Text += E;
      } else {
        T.Text += C;
      }
    }
    if (Pos < Text.size())
      ++Pos; // closing quote
    return T;
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

/// Placeholder for a %value referenced before its definition.
class ForwardRef : public Value {
public:
  explicit ForwardRef(Type *Ty) : Value(Kind::Undef, Ty) {}
};

class Parser {
public:
  Parser(Context &Ctx, const std::string &Text) : Ctx(Ctx) {
    Lexer Lex(Text);
    for (;;) {
      Token T = Lex.next();
      Toks.push_back(T);
      if (T.Kind == TokKind::End)
        break;
    }
  }

  std::unique_ptr<Module> run(std::string &Error) {
    auto M = std::make_unique<Module>(Ctx);
    TheModule = M.get();
    while (!failed() && peek().Kind != TokKind::End) {
      const Token &T = peek();
      if (T.Kind == TokKind::Ident && T.Text == "module") {
        advance();
        M->setName(expectString("module name"));
      } else if (T.Kind == TokKind::Ident && T.Text == "meta") {
        advance();
        std::string K = expectString("metadata key");
        expect(TokKind::Equals, "=");
        std::string V = expectString("metadata value");
        M->setModuleMetadata(K, V);
      } else if (T.Kind == TokKind::Ident && T.Text == "global") {
        parseGlobal();
      } else if (T.Kind == TokKind::Ident && T.Text == "declare") {
        parseDeclare();
      } else if (T.Kind == TokKind::Ident && T.Text == "func") {
        parseFunction();
      } else {
        fail("unexpected token at top level: '" + T.Text + "'");
      }
    }
    if (failed()) {
      Error = ErrorMsg;
      return nullptr;
    }
    return M;
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token advance() { return Toks[std::min(Cursor++, Toks.size() - 1)]; }

  bool failed() const { return !ErrorMsg.empty(); }

  void fail(const std::string &Msg) {
    if (ErrorMsg.empty()) {
      std::ostringstream OS;
      OS << "line " << peek().Line << ": " << Msg;
      ErrorMsg = OS.str();
    }
  }

  Token expect(TokKind K, const char *What) {
    if (peek().Kind != K) {
      fail(std::string("expected ") + What);
      return Token{};
    }
    return advance();
  }

  std::string expectString(const char *What) {
    return expect(TokKind::String, What).Text;
  }

  std::string expectIdent(const char *What) {
    return expect(TokKind::Ident, What).Text;
  }

  bool consumeIdent(const char *Kw) {
    if (peek().Kind == TokKind::Ident && peek().Text == Kw) {
      advance();
      return true;
    }
    return false;
  }

  Type *parseType() {
    if (peek().Kind == TokKind::LBracket) {
      advance();
      Token N = expect(TokKind::Integer, "array length");
      if (!consumeIdent("x"))
        fail("expected 'x' in array type");
      Type *Elem = parseType();
      expect(TokKind::RBracket, "]");
      if (failed())
        return Ctx.getInt64Ty();
      return Ctx.getArrayTy(Elem, static_cast<uint64_t>(N.IntVal));
    }
    std::string Name = expectIdent("type");
    if (Name == "void")
      return Ctx.getVoidTy();
    if (Name == "i1")
      return Ctx.getInt1Ty();
    if (Name == "i8")
      return Ctx.getInt8Ty();
    if (Name == "i32")
      return Ctx.getInt32Ty();
    if (Name == "i64")
      return Ctx.getInt64Ty();
    if (Name == "double")
      return Ctx.getDoubleTy();
    if (Name == "ptr")
      return Ctx.getPtrTy();
    // Vector types are single identifiers: v<lanes><elem>, e.g. v4i64,
    // v2double, v8i32.
    if (Name.size() > 2 && Name[0] == 'v' && Name[1] >= '2' &&
        Name[1] <= '8') {
      uint64_t Lanes = static_cast<uint64_t>(Name[1] - '0');
      std::string Elem = Name.substr(2);
      Type *ElemTy = nullptr;
      if (Elem == "i32")
        ElemTy = Ctx.getInt32Ty();
      else if (Elem == "i64")
        ElemTy = Ctx.getInt64Ty();
      else if (Elem == "double")
        ElemTy = Ctx.getDoubleTy();
      if (ElemTy)
        return Ctx.getVectorTy(ElemTy, Lanes);
    }
    fail("unknown type '" + Name + "'");
    return Ctx.getInt64Ty();
  }

  void parseGlobal() {
    advance(); // 'global'
    std::string Name = expect(TokKind::GlobalRef, "@name").Text;
    expect(TokKind::Colon, ":");
    Type *ValueTy = parseType();
    if (failed())
      return;
    GlobalVariable *G = TheModule->getGlobal(Name);
    if (G) {
      // Re-declaration (e.g. while linking): types must agree.
      if (G->getValueType() != ValueTy) {
        fail("conflicting types for global @" + Name);
        return;
      }
    } else {
      G = TheModule->createGlobal(ValueTy, Name);
    }
    if (peek().Kind == TokKind::Equals) {
      advance();
      expect(TokKind::LBracket, "[");
      std::vector<int64_t> Words;
      if (peek().Kind != TokKind::RBracket) {
        for (;;) {
          Token V = advance();
          if (V.Kind == TokKind::Integer)
            Words.push_back(V.IntVal);
          else if (V.Kind == TokKind::Float) {
            int64_t Bits;
            double D = V.FloatVal;
            static_assert(sizeof(Bits) == sizeof(D));
            std::memcpy(&Bits, &D, sizeof(Bits));
            Words.push_back(Bits);
          } else {
            fail("expected constant in global initializer");
            return;
          }
          if (peek().Kind != TokKind::Comma)
            break;
          advance();
        }
      }
      expect(TokKind::RBracket, "]");
      if (!G->getInitWords().empty() && G->getInitWords() != Words) {
        fail("conflicting initializers for global @" + Name);
        return;
      }
      G->setInitWords(std::move(Words));
    }
  }

  void parseDeclare() {
    advance(); // 'declare'
    std::string Name = expect(TokKind::GlobalRef, "@name").Text;
    expect(TokKind::LParen, "(");
    std::vector<Type *> Params;
    if (peek().Kind != TokKind::RParen) {
      for (;;) {
        Params.push_back(parseType());
        if (peek().Kind != TokKind::Comma)
          break;
        advance();
      }
    }
    expect(TokKind::RParen, ")");
    expect(TokKind::Arrow, "->");
    Type *Ret = parseType();
    if (failed())
      return;
    Type *FnTy = Ctx.getFunctionTy(Ret, Params);
    if (Function *Existing = TheModule->getFunction(Name)) {
      // Re-declaration (e.g. while linking): types must agree.
      if (Existing->getFunctionType() != FnTy)
        fail("conflicting types for function @" + Name);
      return;
    }
    TheModule->createFunction(FnTy, Name);
  }

  void parseFunction() {
    advance(); // 'func'
    std::string Name = expect(TokKind::GlobalRef, "@name").Text;
    expect(TokKind::LParen, "(");
    std::vector<Type *> Params;
    std::vector<std::string> ParamNames;
    if (peek().Kind != TokKind::RParen) {
      for (;;) {
        std::string PName = expect(TokKind::LocalRef, "%param").Text;
        expect(TokKind::Colon, ":");
        Params.push_back(parseType());
        ParamNames.push_back(PName);
        if (peek().Kind != TokKind::Comma)
          break;
        advance();
      }
    }
    expect(TokKind::RParen, ")");
    expect(TokKind::Arrow, "->");
    Type *Ret = parseType();
    expect(TokKind::LBrace, "{");
    if (failed())
      return;

    Function *F = TheModule->getFunction(Name);
    if (F) {
      if (!F->isDeclaration()) {
        fail("redefinition of function @" + Name);
        return;
      }
    } else {
      F = TheModule->createFunction(Ctx.getFunctionTy(Ret, Params), Name);
    }
    CurFn = F;
    Locals.clear();
    Pending.clear();
    BlockMap.clear();

    for (unsigned I = 0; I < F->getNumArgs(); ++I) {
      F->getArg(I)->setName(ParamNames[I]);
      Locals[ParamNames[I]] = F->getArg(I);
    }

    // Pre-scan for labels so blocks exist (in definition order) before any
    // branch references them.
    for (size_t I = Cursor; I < Toks.size(); ++I) {
      if (Toks[I].Kind == TokKind::RBrace)
        break;
      if (Toks[I].Kind == TokKind::Ident && I + 1 < Toks.size() &&
          Toks[I + 1].Kind == TokKind::Colon &&
          // Exclude "%x : T" param-like patterns (none in bodies) and
          // ensure it's a line-leading label: previous token ends a line.
          isLabelPosition(I)) {
        if (!BlockMap.count(Toks[I].Text))
          BlockMap[Toks[I].Text] = F->createBlock(Toks[I].Text);
      }
    }

    BasicBlock *CurBB = nullptr;
    while (!failed() && peek().Kind != TokKind::RBrace &&
           peek().Kind != TokKind::End) {
      if (peek().Kind == TokKind::Ident && peek(1).Kind == TokKind::Colon &&
          BlockMap.count(peek().Text)) {
        CurBB = BlockMap[peek().Text];
        advance();
        advance();
        continue;
      }
      if (peek().Kind == TokKind::Bang) {
        // Function-level metadata: !"k" = "v"
        advance();
        std::string K = expectString("metadata key");
        expect(TokKind::Equals, "=");
        std::string V = expectString("metadata value");
        F->setMetadata(K, V);
        continue;
      }
      if (!CurBB) {
        fail("instruction before any block label");
        return;
      }
      parseInstruction(CurBB);
    }
    expect(TokKind::RBrace, "}");

    for (auto &[Nm, FR] : Pending) {
      if (FR->hasUses()) {
        fail("use of undefined value %" + Nm);
        FR->replaceAllUsesWith(Ctx.getUndef(FR->getType()));
      }
      delete FR;
    }
    Pending.clear();
  }

  /// A token at index \p I is a label if it starts a line (different line
  /// from the previous non-end token) or begins the body.
  bool isLabelPosition(size_t I) const {
    if (I == 0)
      return true;
    const Token &Prev = Toks[I - 1];
    return Prev.Kind == TokKind::LBrace || Prev.Line < Toks[I].Line;
  }

  Value *lookupOperand(const std::string &Name, Type *ExpectedTy) {
    auto It = Locals.find(Name);
    if (It != Locals.end())
      return It->second;
    auto P = Pending.find(Name);
    if (P != Pending.end())
      return P->second;
    auto *FR = new ForwardRef(ExpectedTy);
    Pending[Name] = FR;
    return FR;
  }

  void defineLocal(const std::string &Name, Value *V) {
    if (Locals.count(Name)) {
      fail("redefinition of %" + Name);
      return;
    }
    Locals[Name] = V;
    auto P = Pending.find(Name);
    if (P != Pending.end()) {
      P->second->replaceAllUsesWith(V);
      delete P->second;
      Pending.erase(P);
    }
  }

  /// Parses an operand whose type is known from context.
  Value *parseOperand(Type *ExpectedTy) {
    const Token &T = peek();
    switch (T.Kind) {
    case TokKind::LocalRef:
      advance();
      return lookupOperand(T.Text, ExpectedTy);
    case TokKind::GlobalRef: {
      advance();
      if (auto *G = TheModule->getGlobal(T.Text))
        return G;
      if (auto *F = TheModule->getFunction(T.Text))
        return F;
      fail("unknown global @" + T.Text);
      return Ctx.getUndef(ExpectedTy);
    }
    case TokKind::Integer:
      advance();
      if (ExpectedTy->isDouble())
        return Ctx.getConstantFP(static_cast<double>(T.IntVal));
      if (ExpectedTy->isInteger())
        return Ctx.getConstantInt(ExpectedTy, T.IntVal);
      fail("integer literal where non-integer operand expected");
      return Ctx.getUndef(ExpectedTy);
    case TokKind::Float:
      advance();
      if (!ExpectedTy->isDouble()) {
        fail("float literal where non-double operand expected");
        return Ctx.getUndef(ExpectedTy);
      }
      return Ctx.getConstantFP(T.FloatVal);
    case TokKind::Ident:
      if (T.Text == "undef") {
        advance();
        return Ctx.getUndef(ExpectedTy);
      }
      if (T.Text == "true" || T.Text == "false") {
        advance();
        return Ctx.getInt1(T.Text == "true");
      }
      fail("unexpected identifier '" + T.Text + "' as operand");
      return Ctx.getUndef(ExpectedTy);
    default:
      fail("expected operand");
      return Ctx.getUndef(ExpectedTy);
    }
  }

  BasicBlock *parseBlockRef() {
    std::string Name = expectIdent("block label");
    auto It = BlockMap.find(Name);
    if (It == BlockMap.end()) {
      fail("unknown block label '" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  void parseInstruction(BasicBlock *BB) {
    std::string ResultName;
    bool HasResult = false;
    if (peek().Kind == TokKind::LocalRef) {
      ResultName = advance().Text;
      expect(TokKind::Equals, "=");
      HasResult = true;
    }
    std::string Op = expectIdent("opcode");
    if (failed())
      return;

    Instruction *I = parseOpcode(Op, BB);
    if (failed() || !I)
      return;
    BB->push_back(std::unique_ptr<Instruction>(I));

    if (HasResult) {
      I->setName(ResultName);
      defineLocal(ResultName, I);
    }

    // Optional trailing metadata suffixes: !"k"="v".
    while (peek().Kind == TokKind::Bang) {
      advance();
      std::string K = expectString("metadata key");
      expect(TokKind::Equals, "=");
      std::string V = expectString("metadata value");
      I->setMetadata(K, V);
    }
  }

  Instruction *parseOpcode(const std::string &Op, BasicBlock *BB) {
    using BOp = BinaryInst::Op;
    using COp = CastInst::Op;

    static const std::map<std::string, BOp> BinOps = {
        {"add", BOp::Add},   {"sub", BOp::Sub},   {"mul", BOp::Mul},
        {"sdiv", BOp::SDiv}, {"srem", BOp::SRem}, {"and", BOp::And},
        {"or", BOp::Or},     {"xor", BOp::Xor},   {"shl", BOp::Shl},
        {"ashr", BOp::AShr}, {"fadd", BOp::FAdd}, {"fsub", BOp::FSub},
        {"fmul", BOp::FMul}, {"fdiv", BOp::FDiv}};
    static const std::map<std::string, COp> CastOps = {
        {"sext", COp::SExt},         {"zext", COp::ZExt},
        {"trunc", COp::Trunc},       {"sitofp", COp::SIToFP},
        {"fptosi", COp::FPToSI},     {"ptrtoint", COp::PtrToInt},
        {"inttoptr", COp::IntToPtr}, {"bitcast", COp::Bitcast}};
    static const std::map<std::string, CmpInst::Pred> Preds = {
        {"eq", CmpInst::Pred::EQ},   {"ne", CmpInst::Pred::NE},
        {"slt", CmpInst::Pred::SLT}, {"sle", CmpInst::Pred::SLE},
        {"sgt", CmpInst::Pred::SGT}, {"sge", CmpInst::Pred::SGE},
        {"feq", CmpInst::Pred::FEQ}, {"fne", CmpInst::Pred::FNE},
        {"flt", CmpInst::Pred::FLT}, {"fle", CmpInst::Pred::FLE},
        {"fgt", CmpInst::Pred::FGT}, {"fge", CmpInst::Pred::FGE}};

    if (Op == "alloca") {
      Type *Ty = parseType();
      return new AllocaInst(Ctx.getPtrTy(), Ty);
    }
    if (Op == "load") {
      Type *Ty = parseType();
      expect(TokKind::Comma, ",");
      Value *Ptr = parseOperand(Ctx.getPtrTy());
      return new LoadInst(Ty, Ptr);
    }
    if (Op == "store") {
      Type *Ty = parseType();
      Value *V = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Value *Ptr = parseOperand(Ctx.getPtrTy());
      return new StoreInst(Ctx.getVoidTy(), V, Ptr);
    }
    if (Op == "gep") {
      Value *Base = parseOperand(Ctx.getPtrTy());
      expect(TokKind::Comma, ",");
      Type *IdxTy = parseType();
      Value *Idx = parseOperand(IdxTy);
      expect(TokKind::Comma, ",");
      if (!consumeIdent("scale"))
        fail("expected 'scale' in gep");
      Token S = expect(TokKind::Integer, "scale value");
      return new GEPInst(Ctx.getPtrTy(), Base, Idx,
                         static_cast<uint64_t>(S.IntVal));
    }
    if (auto It = BinOps.find(Op); It != BinOps.end()) {
      Type *Ty = parseType();
      Value *L = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Value *R = parseOperand(Ty);
      return new BinaryInst(It->second, L, R);
    }
    if (Op == "cmp") {
      std::string PredName = expectIdent("cmp predicate");
      auto It = Preds.find(PredName);
      if (It == Preds.end()) {
        fail("unknown cmp predicate '" + PredName + "'");
        return nullptr;
      }
      Type *Ty = parseType();
      Value *L = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Value *R = parseOperand(Ty);
      return new CmpInst(Ctx.getInt1Ty(), It->second, L, R);
    }
    if (auto It = CastOps.find(Op); It != CastOps.end()) {
      Type *SrcTy = parseType();
      Value *V = parseOperand(SrcTy);
      if (!consumeIdent("to"))
        fail("expected 'to' in cast");
      Type *DstTy = parseType();
      return new CastInst(It->second, V, DstTy);
    }
    if (Op == "select") {
      Value *C = parseOperand(Ctx.getInt1Ty());
      expect(TokKind::Comma, ",");
      Type *Ty = parseType();
      Value *T = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Value *F = parseOperand(Ty);
      return new SelectInst(C, T, F);
    }
    if (Op == "phi") {
      Type *Ty = parseType();
      auto *P = new PhiInst(Ty);
      for (;;) {
        expect(TokKind::LBracket, "[");
        Value *V = parseOperand(Ty);
        expect(TokKind::Comma, ",");
        BasicBlock *In = parseBlockRef();
        expect(TokKind::RBracket, "]");
        if (failed()) {
          delete P;
          return nullptr;
        }
        P->addIncoming(V, In);
        if (peek().Kind != TokKind::Comma)
          break;
        advance();
      }
      return P;
    }
    if (Op == "br") {
      if (consumeIdent("label")) {
        BasicBlock *T = parseBlockRef();
        if (failed())
          return nullptr;
        return new BranchInst(Ctx.getVoidTy(), T);
      }
      Value *C = parseOperand(Ctx.getInt1Ty());
      expect(TokKind::Comma, ",");
      if (!consumeIdent("label"))
        fail("expected 'label'");
      BasicBlock *T = parseBlockRef();
      expect(TokKind::Comma, ",");
      if (!consumeIdent("label"))
        fail("expected 'label'");
      BasicBlock *E = parseBlockRef();
      if (failed())
        return nullptr;
      return new BranchInst(Ctx.getVoidTy(), C, T, E);
    }
    if (Op == "call") {
      Type *RetTy = parseType();
      Value *Callee = nullptr;
      if (peek().Kind == TokKind::GlobalRef) {
        std::string Name = advance().Text;
        Callee = TheModule->getFunction(Name);
        if (!Callee) {
          fail("call to unknown function @" + Name);
          return nullptr;
        }
      } else {
        Callee = parseOperand(Ctx.getPtrTy());
      }
      expect(TokKind::LParen, "(");
      std::vector<Value *> Args;
      if (peek().Kind != TokKind::RParen) {
        for (;;) {
          Type *ArgTy = parseType();
          Args.push_back(parseOperand(ArgTy));
          if (peek().Kind != TokKind::Comma)
            break;
          advance();
        }
      }
      expect(TokKind::RParen, ")");
      return new CallInst(RetTy, Callee, Args);
    }
    if (Op == "ret") {
      if (consumeIdent("void"))
        return new RetInst(Ctx.getVoidTy());
      Type *Ty = parseType();
      Value *V = parseOperand(Ty);
      return new RetInst(Ctx.getVoidTy(), V);
    }
    if (Op == "unreachable")
      return new UnreachableInst(Ctx.getVoidTy());
    if (Op == "vload") {
      Type *Ty = parseType();
      expect(TokKind::Comma, ",");
      Value *Ptr = parseOperand(Ctx.getPtrTy());
      if (failed() || !Ty->isVector()) {
        if (!failed())
          fail("vload requires a vector type");
        return nullptr;
      }
      return new VLoadInst(Ty, Ptr);
    }
    if (Op == "vstore") {
      Type *Ty = parseType();
      if (failed() || !Ty->isVector()) {
        if (!failed())
          fail("vstore requires a vector type");
        return nullptr;
      }
      Value *V = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Value *Ptr = parseOperand(Ctx.getPtrTy());
      if (failed())
        return nullptr;
      return new VStoreInst(Ctx.getVoidTy(), V, Ptr);
    }
    if (Op == "vextract") {
      Type *Ty = parseType();
      if (failed() || !Ty->isVector()) {
        if (!failed())
          fail("vextract requires a vector type");
        return nullptr;
      }
      Value *V = parseOperand(Ty);
      expect(TokKind::Comma, ",");
      Token L = expect(TokKind::Integer, "lane index");
      if (failed())
        return nullptr;
      if (L.IntVal < 0 ||
          static_cast<uint64_t>(L.IntVal) >= Ty->getVectorNumLanes()) {
        fail("vextract lane out of range");
        return nullptr;
      }
      return new VExtractInst(V, static_cast<uint64_t>(L.IntVal));
    }
    if (Op == "vpack") {
      Type *Ty = parseType();
      if (failed() || !Ty->isVector()) {
        if (!failed())
          fail("vpack requires a vector type");
        return nullptr;
      }
      std::vector<Value *> Lanes;
      for (uint64_t K = 0; K < Ty->getVectorNumLanes(); ++K) {
        if (K)
          expect(TokKind::Comma, ",");
        Lanes.push_back(parseOperand(Ty->getVectorElementType()));
        if (failed())
          return nullptr;
      }
      return new VPackInst(Ty, Lanes);
    }
    // Lane-wise vector arithmetic: 'v' + a scalar binop name (vadd...).
    if (Op.size() > 1 && Op[0] == 'v') {
      if (auto It = BinOps.find(Op.substr(1)); It != BinOps.end()) {
        Type *Ty = parseType();
        if (failed() || !Ty->isVector()) {
          if (!failed())
            fail("vector binop requires a vector type");
          return nullptr;
        }
        Value *L = parseOperand(Ty);
        expect(TokKind::Comma, ",");
        Value *R = parseOperand(Ty);
        if (failed())
          return nullptr;
        return new VBinaryInst(It->second, L, R);
      }
    }

    fail("unknown opcode '" + Op + "'");
    return nullptr;
  }

  Context &Ctx;
  Module *TheModule = nullptr;
  Function *CurFn = nullptr;
  std::vector<Token> Toks;
  size_t Cursor = 0;
  std::string ErrorMsg;
  std::map<std::string, Value *> Locals;
  std::map<std::string, ForwardRef *> Pending;
  std::map<std::string, BasicBlock *> BlockMap;
};

} // namespace

std::unique_ptr<Module> nir::parseModule(Context &Ctx,
                                         const std::string &Text,
                                         std::string &Error) {
  Parser P(Ctx, Text);
  return P.run(Error);
}

std::unique_ptr<Module> nir::parseModuleOrDie(Context &Ctx,
                                              const std::string &Text) {
  std::string Error;
  auto M = parseModule(Ctx, Text, Error);
  if (!M) {
    std::fprintf(stderr, "IR parse error: %s\n", Error.c_str());
    std::abort();
  }
  return M;
}
