#include "ir/Instruction.h"

#include "ir/Instructions.h"
#include "ir/Module.h"

using namespace nir;

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

Module *Instruction::getModule() const {
  Function *F = getFunction();
  return F ? F->getParent() : nullptr;
}

bool Instruction::mayReadFromMemory() const {
  switch (getKind()) {
  case Kind::Load:
  case Kind::VLoad:
    return true;
  case Kind::Call: {
    // Calls conservatively read memory unless marked pure via metadata.
    return getMetadata("noelle.pure") != "true";
  }
  default:
    return false;
  }
}

bool Instruction::mayWriteToMemory() const {
  switch (getKind()) {
  case Kind::Store:
  case Kind::VStore:
    return true;
  case Kind::Call:
    return getMetadata("noelle.pure") != "true" &&
           getMetadata("noelle.readonly") != "true";
  default:
    return false;
  }
}

bool Instruction::mayHaveSideEffects() const {
  return mayWriteToMemory() || isTerminator() || getKind() == Kind::Call;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction is not linked into a block");
  assert(!hasUses() && "erasing an instruction that still has users");
  auto It = Parent->findIter(this);
  Parent->getInstList().erase(It); // unique_ptr destroys *this.
}

Instruction *Instruction::removeFromParent() {
  assert(Parent && "instruction is not linked into a block");
  auto It = Parent->findIter(this);
  Instruction *Raw = It->release();
  Parent->getInstList().erase(It);
  Raw->Parent = nullptr;
  return Raw;
}

void Instruction::moveBefore(Instruction *Pos) {
  assert(Pos->getParent() && "destination instruction is unlinked");
  Instruction *Self = removeFromParent();
  Self->insertBefore(Pos);
}

void Instruction::moveBeforeTerminator(BasicBlock *BB) {
  Instruction *Term = BB->getTerminator();
  Instruction *Self = Parent ? removeFromParent() : this;
  if (Term)
    Self->insertBefore(Term);
  else
    Self->insertAtEnd(BB);
}

void Instruction::insertBefore(Instruction *Pos) {
  assert(!Parent && "instruction is already linked");
  BasicBlock *BB = Pos->getParent();
  assert(BB && "insertion point is unlinked");
  BB->insert(Pos, std::unique_ptr<Instruction>(this));
}

void Instruction::insertAtEnd(BasicBlock *BB) {
  assert(!Parent && "instruction is already linked");
  BB->push_back(std::unique_ptr<Instruction>(this));
}

Instruction *Instruction::getNextInst() const {
  assert(Parent && "instruction is not linked into a block");
  auto It = Parent->findIter(this);
  ++It;
  return It == Parent->getInstList().end() ? nullptr : It->get();
}

Instruction *Instruction::getPrevInst() const {
  assert(Parent && "instruction is not linked into a block");
  auto It = Parent->findIter(this);
  if (It == Parent->getInstList().begin())
    return nullptr;
  --It;
  return It->get();
}

Instruction *Instruction::clone() const {
  Instruction *New = nullptr;
  switch (getKind()) {
  case Kind::Alloca: {
    auto *A = cast<AllocaInst>(this);
    New = new AllocaInst(getType(), A->getAllocatedType());
    break;
  }
  case Kind::Load: {
    auto *L = cast<LoadInst>(this);
    New = new LoadInst(getType(), L->getPointerOperand());
    break;
  }
  case Kind::Store: {
    auto *S = cast<StoreInst>(this);
    New = new StoreInst(getType(), S->getValueOperand(),
                        S->getPointerOperand());
    break;
  }
  case Kind::GEP: {
    auto *G = cast<GEPInst>(this);
    New = new GEPInst(getType(), G->getBase(), G->getIndex(), G->getScale());
    break;
  }
  case Kind::Binary: {
    auto *B = cast<BinaryInst>(this);
    New = new BinaryInst(B->getOp(), B->getLHS(), B->getRHS());
    break;
  }
  case Kind::Cmp: {
    auto *C = cast<CmpInst>(this);
    New = new CmpInst(getType(), C->getPred(), C->getLHS(), C->getRHS());
    break;
  }
  case Kind::Cast: {
    auto *C = cast<CastInst>(this);
    New = new CastInst(C->getOp(), C->getValueOperand(), getType());
    break;
  }
  case Kind::Select: {
    auto *S = cast<SelectInst>(this);
    New = new SelectInst(S->getCondition(), S->getTrueValue(),
                         S->getFalseValue());
    break;
  }
  case Kind::Phi: {
    auto *P = cast<PhiInst>(this);
    auto *NewPhi = new PhiInst(getType());
    for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
      NewPhi->addIncoming(P->getIncomingValue(I), P->getIncomingBlock(I));
    New = NewPhi;
    break;
  }
  case Kind::Branch: {
    auto *B = cast<BranchInst>(this);
    if (B->isConditional())
      New = new BranchInst(getType(), B->getCondition(), B->getSuccessor(0),
                           B->getSuccessor(1));
    else
      New = new BranchInst(getType(), B->getSuccessor(0));
    break;
  }
  case Kind::Call: {
    auto *C = cast<CallInst>(this);
    std::vector<Value *> Args;
    for (unsigned I = 0, E = C->getNumArgs(); I != E; ++I)
      Args.push_back(C->getArg(I));
    New = new CallInst(getType(), C->getCalleeOperand(), Args);
    break;
  }
  case Kind::Ret: {
    auto *R = cast<RetInst>(this);
    if (R->hasReturnValue())
      New = new RetInst(getType(), R->getReturnValue());
    else
      New = new RetInst(getType());
    break;
  }
  case Kind::Unreachable:
    New = new UnreachableInst(getType());
    break;
  case Kind::VLoad: {
    auto *L = cast<VLoadInst>(this);
    New = new VLoadInst(getType(), L->getPointerOperand());
    break;
  }
  case Kind::VStore: {
    auto *S = cast<VStoreInst>(this);
    New = new VStoreInst(getType(), S->getValueOperand(),
                         S->getPointerOperand());
    break;
  }
  case Kind::VBinary: {
    auto *B = cast<VBinaryInst>(this);
    New = new VBinaryInst(B->getOp(), B->getLHS(), B->getRHS());
    break;
  }
  case Kind::VExtract: {
    auto *E = cast<VExtractInst>(this);
    New = new VExtractInst(E->getVectorOperand(), E->getLane());
    break;
  }
  case Kind::VPack: {
    auto *P = cast<VPackInst>(this);
    std::vector<Value *> Lanes;
    for (unsigned I = 0, E = P->getNumLanes(); I != E; ++I)
      Lanes.push_back(P->getLaneOperand(I));
    New = new VPackInst(getType(), Lanes);
    break;
  }
  default:
    assert(false && "unknown instruction kind in clone");
    return nullptr;
  }
  New->setName(getName());
  for (const auto &[K, V] : getAllMetadata())
    New->setMetadata(K, V);
  return New;
}

std::string Instruction::getOpcodeName() const {
  switch (getKind()) {
  case Kind::Alloca:
    return "alloca";
  case Kind::Load:
    return "load";
  case Kind::Store:
    return "store";
  case Kind::GEP:
    return "gep";
  case Kind::Binary:
    return BinaryInst::opName(cast<BinaryInst>(this)->getOp());
  case Kind::Cmp:
    return std::string("cmp ") +
           CmpInst::predName(cast<CmpInst>(this)->getPred());
  case Kind::Cast:
    return CastInst::opName(cast<CastInst>(this)->getOp());
  case Kind::Select:
    return "select";
  case Kind::Phi:
    return "phi";
  case Kind::Branch:
    return "br";
  case Kind::Call:
    return "call";
  case Kind::Ret:
    return "ret";
  case Kind::Unreachable:
    return "unreachable";
  case Kind::VLoad:
    return "vload";
  case Kind::VStore:
    return "vstore";
  case Kind::VBinary:
    return std::string("v") +
           BinaryInst::opName(cast<VBinaryInst>(this)->getOp());
  case Kind::VExtract:
    return "vextract";
  case Kind::VPack:
    return "vpack";
  default:
    return "<unknown>";
  }
}

//===----------------------------------------------------------------------===//
// Out-of-line members of concrete instructions.
//===----------------------------------------------------------------------===//

const char *BinaryInst::opName(Op O) {
  switch (O) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::SDiv:
    return "sdiv";
  case Op::SRem:
    return "srem";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::AShr:
    return "ashr";
  case Op::FAdd:
    return "fadd";
  case Op::FSub:
    return "fsub";
  case Op::FMul:
    return "fmul";
  case Op::FDiv:
    return "fdiv";
  }
  return "<binop>";
}

CmpInst::Pred CmpInst::getSwappedPred(Pred P) {
  switch (P) {
  case Pred::EQ:
  case Pred::NE:
  case Pred::FEQ:
  case Pred::FNE:
    return P;
  case Pred::SLT:
    return Pred::SGT;
  case Pred::SLE:
    return Pred::SGE;
  case Pred::SGT:
    return Pred::SLT;
  case Pred::SGE:
    return Pred::SLE;
  case Pred::FLT:
    return Pred::FGT;
  case Pred::FLE:
    return Pred::FGE;
  case Pred::FGT:
    return Pred::FLT;
  case Pred::FGE:
    return Pred::FLE;
  }
  return P;
}

CmpInst::Pred CmpInst::getInversePred(Pred P) {
  switch (P) {
  case Pred::EQ:
    return Pred::NE;
  case Pred::NE:
    return Pred::EQ;
  case Pred::SLT:
    return Pred::SGE;
  case Pred::SLE:
    return Pred::SGT;
  case Pred::SGT:
    return Pred::SLE;
  case Pred::SGE:
    return Pred::SLT;
  case Pred::FEQ:
    return Pred::FNE;
  case Pred::FNE:
    return Pred::FEQ;
  case Pred::FLT:
    return Pred::FGE;
  case Pred::FLE:
    return Pred::FGT;
  case Pred::FGT:
    return Pred::FLE;
  case Pred::FGE:
    return Pred::FLT;
  }
  return P;
}

const char *CmpInst::predName(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "slt";
  case Pred::SLE:
    return "sle";
  case Pred::SGT:
    return "sgt";
  case Pred::SGE:
    return "sge";
  case Pred::FEQ:
    return "feq";
  case Pred::FNE:
    return "fne";
  case Pred::FLT:
    return "flt";
  case Pred::FLE:
    return "fle";
  case Pred::FGT:
    return "fgt";
  case Pred::FGE:
    return "fge";
  }
  return "<pred>";
}

const char *CastInst::opName(Op O) {
  switch (O) {
  case Op::SExt:
    return "sext";
  case Op::ZExt:
    return "zext";
  case Op::Trunc:
    return "trunc";
  case Op::SIToFP:
    return "sitofp";
  case Op::FPToSI:
    return "fptosi";
  case Op::PtrToInt:
    return "ptrtoint";
  case Op::IntToPtr:
    return "inttoptr";
  case Op::Bitcast:
    return "bitcast";
  }
  return "<cast>";
}

BasicBlock *PhiInst::getIncomingBlock(unsigned I) const {
  return cast<BasicBlock>(getOperand(2 * I + 1));
}

void PhiInst::setIncomingBlock(unsigned I, BasicBlock *BB) {
  setOperand(2 * I + 1, BB);
}

void PhiInst::addIncoming(Value *V, BasicBlock *BB) {
  assert(V->getType() == getType() && "phi incoming type mismatch");
  addOperand(V);
  addOperand(BB);
}

void PhiInst::removeIncoming(unsigned I) {
  unsigned N = getNumIncoming();
  assert(I < N && "incoming index out of range");
  // Shift subsequent pairs down, then drop the last pair.
  for (unsigned J = I; J + 1 < N; ++J) {
    setOperand(2 * J, getOperand(2 * (J + 1)));
    setOperand(2 * J + 1, getOperand(2 * (J + 1) + 1));
  }
  removeLastOperand();
  removeLastOperand();
}

Value *PhiInst::getIncomingValueForBlock(const BasicBlock *BB) const {
  int Idx = getBlockIndex(BB);
  assert(Idx >= 0 && "block is not an incoming edge of this phi");
  return getIncomingValue(static_cast<unsigned>(Idx));
}

int PhiInst::getBlockIndex(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return static_cast<int>(I);
  return -1;
}

BranchInst::BranchInst(Type *VoidTy, BasicBlock *Target)
    : Instruction(Kind::Branch, VoidTy) {
  addOperand(Target);
}

BranchInst::BranchInst(Type *VoidTy, Value *Cond, BasicBlock *Then,
                       BasicBlock *Else)
    : Instruction(Kind::Branch, VoidTy) {
  addOperand(Cond);
  addOperand(Then);
  addOperand(Else);
}

BasicBlock *BranchInst::getSuccessor(unsigned I) const {
  assert(I < getNumSuccessors() && "successor index out of range");
  return cast<BasicBlock>(getOperand(isConditional() ? I + 1 : 0));
}

void BranchInst::setSuccessor(unsigned I, BasicBlock *BB) {
  assert(I < getNumSuccessors() && "successor index out of range");
  setOperand(isConditional() ? I + 1 : 0, BB);
}

Function *CallInst::getCalledFunction() const {
  return dyn_cast<Function>(getCalleeOperand());
}
