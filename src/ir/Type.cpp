#include "ir/Type.h"

#include <sstream>

using namespace nir;

uint64_t Type::getStoreSize() const {
  switch (TheKind) {
  case Kind::Void:
    return 0;
  case Kind::Int1:
  case Kind::Int8:
    return 1;
  case Kind::Int32:
    return 4;
  case Kind::Int64:
  case Kind::Double:
  case Kind::Ptr:
  case Kind::Function:
    return 8;
  case Kind::Array:
  case Kind::Vector:
    return ArrayLength * ContainedTypes[0]->getStoreSize();
  }
  return 0;
}

std::string Type::str() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Int1:
    return "i1";
  case Kind::Int8:
    return "i8";
  case Kind::Int32:
    return "i32";
  case Kind::Int64:
    return "i64";
  case Kind::Double:
    return "double";
  case Kind::Ptr:
    return "ptr";
  case Kind::Array: {
    std::ostringstream OS;
    OS << "[" << ArrayLength << " x " << ContainedTypes[0]->str() << "]";
    return OS.str();
  }
  case Kind::Vector: {
    std::ostringstream OS;
    OS << "v" << ArrayLength << ContainedTypes[0]->str();
    return OS.str();
  }
  case Kind::Function: {
    std::ostringstream OS;
    OS << ContainedTypes[0]->str() << "(";
    for (size_t I = 0; I < ParamTypes.size(); ++I) {
      if (I)
        OS << ", ";
      OS << ParamTypes[I]->str();
    }
    OS << ")";
    return OS.str();
  }
  }
  return "<?>";
}
