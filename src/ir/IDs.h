//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic IDs for instructions, basic blocks, and functions —
/// NOELLE's "IDs" abstraction. IDs are stored as metadata so they survive
/// printing, parsing, and linking, letting tools (noelle-meta-pdg-embed)
/// reference instructions across pipeline stages.
///
//===----------------------------------------------------------------------===//

#ifndef IR_IDS_H
#define IR_IDS_H

#include "ir/Module.h"

#include <cstdint>
#include <map>

namespace nir {

/// Metadata keys used for deterministic IDs.
inline constexpr const char *InstIDKey = "noelle.inst.id";
inline constexpr const char *BlockIDKey = "noelle.bb.id";
inline constexpr const char *FunctionIDKey = "noelle.fn.id";

/// Assigns fresh deterministic IDs to every function, block, and
/// instruction of \p M in program order, replacing any existing IDs.
void assignDeterministicIDs(Module &M);

/// Removes all deterministic IDs from \p M.
void clearDeterministicIDs(Module &M);

/// Index from instruction ID to instruction for a module whose IDs were
/// previously assigned. Instructions without IDs are skipped.
std::map<uint64_t, Instruction *> buildInstructionIndex(Module &M);

} // namespace nir

#endif // IR_IDS_H
