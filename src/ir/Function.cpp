#include "ir/Function.h"

#include "ir/Module.h"

using namespace nir;

BasicBlock *Function::createBlock(const std::string &Name) {
  assert(Parent && "createBlock requires the function to be in a module");
  Type *VoidTy = Parent->getContext().getVoidTy();
  return insertBlock(std::make_unique<BasicBlock>(VoidTy, Name));
}

BasicBlock *Function::insertBlock(std::unique_ptr<BasicBlock> BB,
                                  BasicBlock *Pos) {
  BasicBlock *Raw = BB.get();
  Raw->setParent(this);
  if (!Pos) {
    Blocks.push_back(std::move(BB));
    return Raw;
  }
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It)
    if (It->get() == Pos) {
      Blocks.insert(It, std::move(BB));
      return Raw;
    }
  assert(false && "insertion position not found in function");
  return Raw;
}

void Function::eraseBlock(BasicBlock *BB) {
  // Drop instructions in reverse to release operand uses before defs die.
  while (!BB->getInstList().empty()) {
    Instruction *Last = BB->getInstList().back().get();
    assert(!Last->hasUses() && "erasing a block whose values are still used");
    Last->eraseFromParent();
  }
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It)
    if (It->get() == BB) {
      Blocks.erase(It);
      return;
    }
  assert(false && "block not found in its parent function");
}

uint64_t Function::getNumInstructions() const {
  uint64_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}
