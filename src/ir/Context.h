//===----------------------------------------------------------------------===//
///
/// \file
/// Context owns and uniques all types and primitive constants for a
/// compilation session, mirroring LLVMContext.
///
//===----------------------------------------------------------------------===//

#ifndef IR_CONTEXT_H
#define IR_CONTEXT_H

#include "ir/Type.h"

#include <map>
#include <memory>
#include <vector>

namespace nir {

class ConstantInt;
class ConstantFP;
class UndefValue;

/// Owns types and interned constants. Every Module is created against a
/// Context, and all IR entities of that module live as long as the Context
/// plus their Module.
class Context {
public:
  Context();
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Type *getVoidTy() { return &VoidTy; }
  Type *getInt1Ty() { return &Int1Ty; }
  Type *getInt8Ty() { return &Int8Ty; }
  Type *getInt32Ty() { return &Int32Ty; }
  Type *getInt64Ty() { return &Int64Ty; }
  Type *getDoubleTy() { return &DoubleTy; }
  Type *getPtrTy() { return &PtrTy; }

  /// Returns the uniqued array type [NumElements x Elem].
  Type *getArrayTy(Type *Elem, uint64_t NumElements);

  /// Returns the uniqued vector type of \p Lanes lanes of \p Elem.
  /// Elements are limited to i32, i64, and double; lane counts to 2-8.
  Type *getVectorTy(Type *Elem, uint64_t Lanes);

  /// Returns the uniqued function type Ret(Params...).
  Type *getFunctionTy(Type *Ret, const std::vector<Type *> &Params);

  /// Returns the interned integer constant of the given type and value.
  ConstantInt *getConstantInt(Type *Ty, int64_t Value);

  /// Returns the interned floating-point constant.
  ConstantFP *getConstantFP(double Value);

  /// Returns the interned undef value of the given type.
  UndefValue *getUndef(Type *Ty);

  /// Shorthands for common constants.
  ConstantInt *getInt64(int64_t V) { return getConstantInt(&Int64Ty, V); }
  ConstantInt *getInt32(int64_t V) { return getConstantInt(&Int32Ty, V); }
  ConstantInt *getInt1(bool V) { return getConstantInt(&Int1Ty, V); }
  ConstantInt *getTrue() { return getInt1(true); }
  ConstantInt *getFalse() { return getInt1(false); }

private:
  Type VoidTy;
  Type Int1Ty;
  Type Int8Ty;
  Type Int32Ty;
  Type Int64Ty;
  Type DoubleTy;
  Type PtrTy;

  std::vector<std::unique_ptr<Type>> OwnedTypes;
  std::map<std::pair<Type *, uint64_t>, Type *> ArrayTypes;
  std::map<std::pair<Type *, uint64_t>, Type *> VectorTypes;
  std::map<std::pair<Type *, std::vector<Type *>>, Type *> FunctionTypes;
  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>> IntConsts;
  std::map<double, std::unique_ptr<ConstantFP>> FPConsts;
  std::map<Type *, std::unique_ptr<UndefValue>> Undefs;
};

} // namespace nir

#endif // IR_CONTEXT_H
