#include "ir/Value.h"

using namespace nir;

Value::~Value() {
  assert(Uses.empty() && "destroying a value that still has users");
}

std::vector<User *> Value::users() const {
  std::vector<User *> Result;
  for (const auto &U : Uses)
    if (std::find(Result.begin(), Result.end(), U.TheUser) == Result.end())
      Result.push_back(U.TheUser);
  return Result;
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self would loop forever");
  // setOperand mutates Uses; iterate over a snapshot.
  auto Snapshot = Uses;
  for (const auto &U : Snapshot)
    U.TheUser->setOperand(U.OperandIdx, New);
}
