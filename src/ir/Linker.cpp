#include "ir/Linker.h"

#include "ir/Parser.h"

#include <set>

using namespace nir;

std::unique_ptr<Module>
nir::linkModules(Context &Ctx, const std::vector<const Module *> &Mods,
                 std::string &Error) {
  // Conflict detection up front, so diagnostics mention symbol names rather
  // than parse positions.
  std::set<std::string> DefinedFns;
  std::set<std::string> InitializedGlobals;
  for (const Module *M : Mods) {
    for (const auto &F : M->getFunctions()) {
      if (F->isDeclaration())
        continue;
      if (!DefinedFns.insert(F->getName()).second) {
        Error = "duplicate definition of function @" + F->getName();
        return nullptr;
      }
    }
    for (const auto &G : M->getGlobals()) {
      if (G->getInitWords().empty())
        continue;
      if (!InitializedGlobals.insert(G->getName()).second) {
        Error = "duplicate initialized global @" + G->getName();
        return nullptr;
      }
    }
  }

  // Linking by print + reparse: the textual format round-trips losslessly
  // (including metadata), and the parser resolves declarations against
  // definitions regardless of order.
  std::string Combined;
  for (const Module *M : Mods)
    Combined += M->str() + "\n";

  auto Linked = parseModule(Ctx, Combined, Error);
  if (!Linked)
    return nullptr;

  // Merge module metadata explicitly: later modules win.
  for (const Module *M : Mods)
    for (const auto &[K, V] : M->getAllModuleMetadata())
      Linked->setModuleMetadata(K, V);
  if (!Mods.empty())
    Linked->setName(Mods.front()->getName() + ".linked");
  return Linked;
}
