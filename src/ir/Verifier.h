//===----------------------------------------------------------------------===//
///
/// \file
/// IR verifier: structural well-formedness checks run after parsing and
/// after every transformation in tests.
///
//===----------------------------------------------------------------------===//

#ifndef IR_VERIFIER_H
#define IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace nir {

/// Checks structural invariants of \p M:
///  - every block ends in exactly one terminator (and only at the end);
///  - phis appear only at block starts and cover each predecessor exactly
///    once;
///  - every instruction operand that is an instruction belongs to the same
///    function;
///  - SSA dominance: every use is dominated by its definition (phi uses are
///    checked on the incoming edge); unreachable blocks are skipped;
///  - entry blocks have no predecessors via branches.
/// Returns all violations found; empty means the module verified.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience predicate.
bool moduleVerifies(const Module &M);

} // namespace nir

#endif // IR_VERIFIER_H
