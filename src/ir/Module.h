//===----------------------------------------------------------------------===//
///
/// \file
/// Module: a whole program (or linkable fragment) of NIR — functions,
/// globals, and module-level metadata such as compilation options.
///
//===----------------------------------------------------------------------===//

#ifndef IR_MODULE_H
#define IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"

#include <ostream>

namespace nir {

/// The top-level IR container.
class Module {
public:
  explicit Module(Context &Ctx, const std::string &Name = "module")
      : Ctx(Ctx), Name(Name) {}

  /// Drops every operand reference in the whole module first, so functions
  /// and globals that reference each other can be destroyed in any order.
  ~Module() {
    for (auto &F : Functions)
      for (auto &BB : F->getBlocks())
        for (auto &I : BB->getInstList())
          I->dropAllOperands();
  }

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }

  /// Creates a function with the given type; a body makes it a definition.
  Function *createFunction(Type *FnTy, const std::string &Name);

  /// Finds a function by name, or null.
  Function *getFunction(const std::string &Name) const;

  /// Unlinks and destroys \p F. It must have no remaining users.
  void eraseFunction(Function *F);

  /// Creates a global variable with the given pointee layout.
  GlobalVariable *createGlobal(Type *ValueTy, const std::string &Name);

  /// Finds a global by name, or null.
  GlobalVariable *getGlobal(const std::string &Name) const;

  const std::vector<std::unique_ptr<Function>> &getFunctions() const {
    return Functions;
  }
  const std::vector<std::unique_ptr<GlobalVariable>> &getGlobals() const {
    return Globals;
  }

  /// Module-level named metadata (e.g. link options, embedded profiles).
  void setModuleMetadata(const std::string &Key, const std::string &V) {
    ModuleMetadata[Key] = V;
  }
  std::string getModuleMetadata(const std::string &Key) const {
    auto It = ModuleMetadata.find(Key);
    return It == ModuleMetadata.end() ? std::string() : It->second;
  }
  bool hasModuleMetadata(const std::string &Key) const {
    return ModuleMetadata.count(Key) != 0;
  }
  void removeModuleMetadata(const std::string &Key) {
    ModuleMetadata.erase(Key);
  }
  const std::map<std::string, std::string> &getAllModuleMetadata() const {
    return ModuleMetadata;
  }

  /// Total instruction count over all function definitions.
  uint64_t getNumInstructions() const;

  /// Prints the module in textual IR form.
  void print(std::ostream &OS) const;

  /// Prints only the module body — globals, declarations, and function
  /// definitions (with their instruction- and function-level metadata) —
  /// omitting the module header and module-level metadata.
  void printBody(std::ostream &OS) const;

  /// A deterministic 64-bit digest (FNV-1a) of the module's executable
  /// structure: globals, function signatures, instructions (kinds,
  /// types, operands by position, kind-specific payload). Computed by
  /// walking the IR directly — no printing — so verifying a cache
  /// against it stays far cheaper than the analyses the cache skips.
  /// Stable across print/parse round-trips (local values are identified
  /// positionally); value names and all metadata are deliberately
  /// excluded — names are semantically irrelevant, and metadata is
  /// annotation, so annotation tools (profile embedding, instruction
  /// IDs, the PDG blob itself) compose with hash-keyed caches instead
  /// of invalidating them.
  uint64_t getContentHash() const;

  /// Renders the module as a string (the "serialized binary" for size
  /// measurements).
  std::string str() const;

private:
  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<std::string, std::string> ModuleMetadata;
};

} // namespace nir

#endif // IR_MODULE_H
