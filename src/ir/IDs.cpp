#include "ir/IDs.h"

#include <string>

using namespace nir;

void nir::assignDeterministicIDs(Module &M) {
  uint64_t FnID = 0, BBID = 0, InstID = 0;
  for (const auto &F : M.getFunctions()) {
    F->setMetadata(FunctionIDKey, std::to_string(FnID++));
    for (const auto &BB : F->getBlocks()) {
      BB->setMetadata(BlockIDKey, std::to_string(BBID++));
      for (const auto &I : BB->getInstList())
        I->setMetadata(InstIDKey, std::to_string(InstID++));
    }
  }
}

void nir::clearDeterministicIDs(Module &M) {
  for (const auto &F : M.getFunctions()) {
    F->removeMetadata(FunctionIDKey);
    for (const auto &BB : F->getBlocks()) {
      BB->removeMetadata(BlockIDKey);
      for (const auto &I : BB->getInstList())
        I->removeMetadata(InstIDKey);
    }
  }
}

std::map<uint64_t, Instruction *> nir::buildInstructionIndex(Module &M) {
  std::map<uint64_t, Instruction *> Index;
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        std::string ID = I->getMetadata(InstIDKey);
        if (!ID.empty())
          Index[std::stoull(ID)] = I.get();
      }
  return Index;
}
