//===----------------------------------------------------------------------===//
///
/// \file
/// Module linker: merges NIR modules into one whole-program module while
/// preserving NOELLE metadata (substrate of noelle-whole-IR and
/// noelle-linker).
///
//===----------------------------------------------------------------------===//

#ifndef IR_LINKER_H
#define IR_LINKER_H

#include "ir/Module.h"

#include <memory>

namespace nir {

/// Links the given modules into a single whole-program module:
///  - declarations in one module bind to definitions in another;
///  - duplicate function definitions or duplicate initialized globals are
///    an error;
///  - module metadata merges key-wise, later modules winning on conflicts.
/// Returns null and fills \p Error on failure.
std::unique_ptr<Module> linkModules(Context &Ctx,
                                    const std::vector<const Module *> &Mods,
                                    std::string &Error);

} // namespace nir

#endif // IR_LINKER_H
