//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: a straight-line instruction sequence ending (when complete)
/// in a terminator, plus CFG navigation helpers.
///
//===----------------------------------------------------------------------===//

#ifndef IR_BASICBLOCK_H
#define IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>
#include <memory>

namespace nir {

class Function;

/// A node of the control-flow graph. Owns its instructions.
class BasicBlock : public Value {
public:
  using InstListT = std::list<std::unique_ptr<Instruction>>;

  BasicBlock(Type *VoidTy, const std::string &Name)
      : Value(Kind::BasicBlock, VoidTy) {
    setName(Name);
  }

  /// Releases all operand references held by this block's instructions, so
  /// that blocks can be destroyed in any order.
  ~BasicBlock() override {
    for (auto &I : Insts)
      I->dropAllOperands();
  }

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  /// Appends \p I (taking ownership) and returns it.
  Instruction *push_back(std::unique_ptr<Instruction> I);

  /// Inserts \p I (taking ownership) before \p Pos and returns it.
  Instruction *insert(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Iteration over instructions in program order.
  InstListT &getInstList() { return Insts; }
  const InstListT &getInstList() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block terminator, or null if the block is still under
  /// construction.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  /// The first instruction that is not a phi, or null in an empty block.
  Instruction *getFirstNonPhi() const;

  /// Successor blocks, from the terminator.
  std::vector<BasicBlock *> successors() const;

  /// Predecessor blocks, derived from this block's uses in terminators.
  std::vector<BasicBlock *> predecessors() const;

  /// Unlinks and destroys this block. It must have no users.
  void eraseFromParent();

  /// Splits this block before \p Pos: instructions from \p Pos onward move
  /// to a new block named \p NewName, this block gets an unconditional
  /// branch to it, and phis/CFG users are left untouched (callers fix
  /// successor phis if needed). Returns the new block.
  BasicBlock *splitBefore(Instruction *Pos, const std::string &NewName);

  static bool classof(const Value *V) {
    return V->getKind() == Kind::BasicBlock;
  }

private:
  friend class Instruction;
  InstListT::iterator findIter(const Instruction *I);

  Function *Parent = nullptr;
  InstListT Insts;
};

} // namespace nir

#endif // IR_BASICBLOCK_H
