#include "ir/BasicBlock.h"

#include "ir/Function.h"
#include "ir/Instructions.h"

using namespace nir;

Instruction *BasicBlock::push_back(std::unique_ptr<Instruction> I) {
  Instruction *Raw = I.get();
  Raw->setParent(this);
  Insts.push_back(std::move(I));
  return Raw;
}

Instruction *BasicBlock::insert(Instruction *Pos,
                                std::unique_ptr<Instruction> I) {
  Instruction *Raw = I.get();
  Raw->setParent(this);
  Insts.insert(findIter(Pos), std::move(I));
  return Raw;
}

Instruction *BasicBlock::getFirstNonPhi() const {
  for (const auto &I : Insts)
    if (!isa<PhiInst>(I.get()))
      return I.get();
  return nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  Instruction *Term = getTerminator();
  if (auto *Br = dyn_cast_or_null<BranchInst>(Term))
    for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
      Result.push_back(Br->getSuccessor(I));
  return Result;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Result;
  for (const auto &U : uses()) {
    auto *Br = dyn_cast<BranchInst>(U.TheUser);
    if (!Br)
      continue; // Phi references are not CFG edges.
    BasicBlock *Pred = Br->getParent();
    if (std::find(Result.begin(), Result.end(), Pred) == Result.end())
      Result.push_back(Pred);
  }
  return Result;
}

void BasicBlock::eraseFromParent() {
  assert(Parent && "block is not linked into a function");
  Parent->eraseBlock(this);
}

BasicBlock *BasicBlock::splitBefore(Instruction *Pos,
                                    const std::string &NewName) {
  assert(Pos->getParent() == this && "split point not in this block");
  Function *F = Parent;
  assert(F && "cannot split an unlinked block");

  auto NewBB = std::make_unique<BasicBlock>(getType(), NewName);
  BasicBlock *NewRaw = NewBB.get();

  // Insert the new block right after this one.
  BasicBlock *After = nullptr;
  bool FoundSelf = false;
  for (auto &B : F->getBlocks()) {
    if (FoundSelf) {
      After = B.get();
      break;
    }
    if (B.get() == this)
      FoundSelf = true;
  }
  F->insertBlock(std::move(NewBB), After);

  // Move [Pos, end) to the new block.
  auto It = findIter(Pos);
  while (It != Insts.end()) {
    std::unique_ptr<Instruction> Owned = std::move(*It);
    It = Insts.erase(It);
    Owned->setParent(NewRaw);
    NewRaw->getInstList().push_back(std::move(Owned));
  }

  // Terminate this block with a jump to the new one.
  push_back(std::make_unique<BranchInst>(getType(), NewRaw));
  return NewRaw;
}

BasicBlock::InstListT::iterator BasicBlock::findIter(const Instruction *I) {
  for (auto It = Insts.begin(), E = Insts.end(); It != E; ++It)
    if (It->get() == I)
      return It;
  assert(false && "instruction not found in its parent block");
  return Insts.end();
}
