//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction: base class for all NIR instructions, with parent-block
/// linkage, list manipulation, and memory-behaviour queries.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTION_H
#define IR_INSTRUCTION_H

#include "ir/Value.h"

namespace nir {

class BasicBlock;
class Function;
class Module;

/// An operation inside a BasicBlock. Ownership lives in the parent block's
/// instruction list; the parent pointer is maintained by the block.
class Instruction : public User {
public:
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// The function containing this instruction, or null if unlinked.
  Function *getFunction() const;

  /// The module containing this instruction, or null if unlinked.
  Module *getModule() const;

  /// True for branch / return / unreachable.
  bool isTerminator() const {
    return getKind() == Kind::Branch || getKind() == Kind::Ret ||
           getKind() == Kind::Unreachable;
  }

  /// True if executing this instruction may read from memory.
  bool mayReadFromMemory() const;

  /// True if executing this instruction may write to memory.
  bool mayWriteToMemory() const;

  /// True if this reads or writes memory.
  bool mayReadOrWriteMemory() const {
    return mayReadFromMemory() || mayWriteToMemory();
  }

  /// True if this instruction has side effects beyond producing a value
  /// (stores, calls to unknown functions, terminators).
  bool mayHaveSideEffects() const;

  /// Unlinks this instruction from its parent block and destroys it.
  /// All operand uses are dropped; the instruction must have no users.
  void eraseFromParent();

  /// Unlinks from the parent block without destroying; ownership passes to
  /// the caller.
  Instruction *removeFromParent();

  /// Moves this instruction immediately before \p Pos (possibly in another
  /// block).
  void moveBefore(Instruction *Pos);

  /// Moves this instruction to the end of \p BB, before its terminator if
  /// one exists.
  void moveBeforeTerminator(BasicBlock *BB);

  /// Inserts this (currently unlinked) instruction before \p Pos.
  void insertBefore(Instruction *Pos);

  /// Inserts this (currently unlinked) instruction at the end of \p BB.
  void insertAtEnd(BasicBlock *BB);

  /// The instruction after this one in its block, or null if last.
  Instruction *getNextInst() const;

  /// The instruction before this one in its block, or null if first.
  Instruction *getPrevInst() const;

  /// Creates an unlinked copy of this instruction with identical operands
  /// and metadata. The caller owns the result.
  Instruction *clone() const;

  /// Human-readable opcode name ("load", "add", ...).
  std::string getOpcodeName() const;

  static bool classof(const Value *V) {
    return V->getKind() >= Kind::InstFirst && V->getKind() <= Kind::InstLast;
  }

protected:
  Instruction(Kind K, Type *Ty) : User(K, Ty) {}

private:
  BasicBlock *Parent = nullptr;
};

} // namespace nir

#endif // IR_INSTRUCTION_H
