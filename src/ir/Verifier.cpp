#include "ir/Verifier.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"

#include <set>
#include <sstream>

using namespace nir;

namespace {

void verifyFunction(const Function &F, std::vector<std::string> &Out) {
  auto Report = [&](const std::string &Msg) {
    Out.push_back("@" + F.getName() + ": " + Msg);
  };

  std::set<const BasicBlock *> Blocks;
  for (const auto &BB : F.getBlocks())
    Blocks.insert(BB.get());

  for (const auto &BB : F.getBlocks()) {
    const std::string BBName = BB->getName().empty() ? "<bb>" : BB->getName();

    if (BB->empty()) {
      Report("block '" + BBName + "' is empty");
      continue;
    }
    if (!BB->getTerminator())
      Report("block '" + BBName + "' lacks a terminator");

    bool SeenNonPhi = false;
    unsigned Index = 0;
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction &I = *IPtr;
      ++Index;

      if (I.getParent() != BB.get())
        Report("instruction with stale parent link in '" + BBName + "'");

      if (I.isTerminator() && Index != BB->size())
        Report("terminator in the middle of block '" + BBName + "'");

      if (isa<PhiInst>(&I)) {
        if (SeenNonPhi)
          Report("phi after non-phi in block '" + BBName + "'");
      } else {
        SeenNonPhi = true;
      }

      for (const auto *Op : I.operands()) {
        if (!Op) {
          Report("null operand in block '" + BBName + "'");
          continue;
        }
        if (const auto *OpInst = dyn_cast<Instruction>(Op)) {
          if (!OpInst->getParent() ||
              OpInst->getParent()->getParent() != &F)
            Report("operand instruction from another function in '" +
                   BBName + "'");
        }
        if (const auto *OpBB = dyn_cast<BasicBlock>(Op)) {
          if (!Blocks.count(OpBB))
            Report("reference to a block outside this function in '" +
                   BBName + "'");
        }
      }

      if (const auto *Phi = dyn_cast<PhiInst>(&I)) {
        auto Preds = BB->predecessors();
        std::set<const BasicBlock *> PredSet(Preds.begin(), Preds.end());
        std::set<const BasicBlock *> Incoming;
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          const BasicBlock *In = Phi->getIncomingBlock(K);
          if (!Incoming.insert(In).second)
            Report("phi has duplicate incoming block in '" + BBName + "'");
          if (!PredSet.count(In))
            Report("phi incoming block is not a predecessor in '" + BBName +
                   "'");
        }
        for (const auto *P : PredSet)
          if (!Incoming.count(P))
            Report("phi is missing an incoming value for a predecessor in '" +
                   BBName + "'");
      }
    }
  }

  // The entry block must not be a branch target (loops need a preheader
  // above them; our frontend guarantees this and transformations keep it).
  if (!F.getBlocks().empty()) {
    const BasicBlock &Entry = F.getEntryBlock();
    if (!Entry.predecessors().empty())
      Report("entry block has predecessors");
  }
}

/// Dominance-based SSA verification: every use of an instruction must be
/// dominated by its definition. Phi uses are checked against the incoming
/// edge — the definition must dominate the incoming block's terminator —
/// since a phi observes its operand on the edge, not at the phi itself.
/// Blocks unreachable from the entry are skipped; their instructions can
/// never execute and the iterative dominator algorithm assigns them no
/// position in the tree.
void verifyDominance(const Function &F, std::vector<std::string> &Out) {
  if (F.getBlocks().empty())
    return;

  auto Report = [&](const std::string &Msg) {
    Out.push_back("@" + F.getName() + ": " + Msg);
  };

  // DominatorTree mutates nothing but takes Function& for CFG walks.
  DominatorTree DT(const_cast<Function &>(F));

  for (const auto &BB : F.getBlocks()) {
    if (!DT.isReachableFromEntry(BB.get()))
      continue;
    const std::string BBName = BB->getName().empty() ? "<bb>" : BB->getName();
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction &I = *IPtr;

      if (const auto *Phi = dyn_cast<PhiInst>(&I)) {
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          const auto *OpInst = dyn_cast<Instruction>(Phi->getIncomingValue(K));
          if (!OpInst || !OpInst->getParent() ||
              OpInst->getParent()->getParent() != &F)
            continue;
          const BasicBlock *In = Phi->getIncomingBlock(K);
          if (!In || !DT.isReachableFromEntry(const_cast<BasicBlock *>(In)))
            continue;
          const Instruction *EdgeTerm = In->getTerminator();
          if (!EdgeTerm)
            continue; // Reported structurally already.
          if (!DT.dominates(OpInst, EdgeTerm))
            Report("phi in '" + BBName +
                   "' uses a value that does not dominate the incoming edge "
                   "from '" +
                   (In->getName().empty() ? "<bb>" : In->getName()) + "'");
        }
        continue;
      }

      for (const auto *Op : I.operands()) {
        const auto *OpInst = Op ? dyn_cast<Instruction>(Op) : nullptr;
        if (!OpInst || !OpInst->getParent() ||
            OpInst->getParent()->getParent() != &F)
          continue;
        if (!DT.isReachableFromEntry(OpInst->getParent()))
          continue;
        if (!DT.dominates(OpInst, &I))
          Report("use in block '" + BBName +
                 "' is not dominated by its definition" +
                 (OpInst->hasName() ? " of '%" + OpInst->getName() + "'"
                                    : std::string()));
      }
    }
  }
}

} // namespace

std::vector<std::string> nir::verifyModule(const Module &M) {
  std::vector<std::string> Out;
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration()) {
      verifyFunction(*F, Out);
      verifyDominance(*F, Out);
    }
  return Out;
}

bool nir::moduleVerifies(const Module &M) { return verifyModule(M).empty(); }
