#include "ir/Verifier.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"

#include <set>
#include <sstream>

using namespace nir;

namespace {

void verifyFunction(const Function &F, std::vector<std::string> &Out) {
  auto Report = [&](const std::string &Msg) {
    Out.push_back("@" + F.getName() + ": " + Msg);
  };

  // Vector values cannot cross function boundaries (no vector arguments
  // or returns): the interpreter ABI passes scalars only.
  for (unsigned A = 0, E = F.getNumArgs(); A != E; ++A)
    if (F.getArg(A)->getType()->isVector())
      Report("vector-typed function argument");
  if (F.getReturnType()->isVector())
    Report("vector-typed return type");

  std::set<const BasicBlock *> Blocks;
  for (const auto &BB : F.getBlocks())
    Blocks.insert(BB.get());

  for (const auto &BB : F.getBlocks()) {
    const std::string BBName = BB->getName().empty() ? "<bb>" : BB->getName();

    if (BB->empty()) {
      Report("block '" + BBName + "' is empty");
      continue;
    }
    if (!BB->getTerminator())
      Report("block '" + BBName + "' lacks a terminator");

    bool SeenNonPhi = false;
    unsigned Index = 0;
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction &I = *IPtr;
      ++Index;

      if (I.getParent() != BB.get())
        Report("instruction with stale parent link in '" + BBName + "'");

      if (I.isTerminator() && Index != BB->size())
        Report("terminator in the middle of block '" + BBName + "'");

      if (isa<PhiInst>(&I)) {
        if (SeenNonPhi)
          Report("phi after non-phi in block '" + BBName + "'");
      } else {
        SeenNonPhi = true;
      }

      for (const auto *Op : I.operands()) {
        if (!Op) {
          Report("null operand in block '" + BBName + "'");
          continue;
        }
        if (const auto *OpInst = dyn_cast<Instruction>(Op)) {
          if (!OpInst->getParent() ||
              OpInst->getParent()->getParent() != &F)
            Report("operand instruction from another function in '" +
                   BBName + "'");
        }
        if (const auto *OpBB = dyn_cast<BasicBlock>(Op)) {
          if (!Blocks.count(OpBB))
            Report("reference to a block outside this function in '" +
                   BBName + "'");
        }
      }

      // Vector IR constraints: lane widths, operand agreement, and the
      // placement rules (no vector phis/selects/calls/rets — vector
      // values live entirely inside straight-line superword regions).
      if (I.getType()->isVector()) {
        uint64_t Lanes = I.getType()->getVectorNumLanes();
        if (Lanes < 2 || Lanes > 8)
          Report("vector value with lane count outside [2, 8] in '" +
                 BBName + "'");
        if (!isa<VLoadInst>(&I) && !isa<VBinaryInst>(&I) &&
            !isa<VPackInst>(&I))
          Report("vector-typed result on a non-vector instruction in '" +
                 BBName + "'");
      }
      // Vector operands must be instruction results: there are no vector
      // constants, undefs, or arguments in NIR.
      for (const auto *Op : I.operands())
        if (Op && Op->getType()->isVector() && !isa<Instruction>(Op))
          Report("vector operand that is not an instruction result in '" +
                 BBName + "'");
      switch (I.getKind()) {
      case Value::Kind::VLoad:
        break;
      case Value::Kind::VStore: {
        const auto *S = cast<VStoreInst>(&I);
        if (!S->getValueOperand()->getType()->isVector())
          Report("vstore of a non-vector value in '" + BBName + "'");
        break;
      }
      case Value::Kind::VBinary: {
        const auto *B = cast<VBinaryInst>(&I);
        if (B->getLHS()->getType() != I.getType() ||
            B->getRHS()->getType() != I.getType())
          Report("vbinary operand type mismatch in '" + BBName + "'");
        if (I.getType()->isVector()) {
          bool FPElem = I.getType()->getVectorElementType()->isDouble();
          if (FPElem != B->isFloatingPoint())
            Report("vbinary op does not match element type in '" + BBName +
                   "'");
        }
        break;
      }
      case Value::Kind::VExtract: {
        const auto *E = cast<VExtractInst>(&I);
        Type *VecTy = E->getVectorOperand()->getType();
        if (!VecTy->isVector())
          Report("vextract from a non-vector value in '" + BBName + "'");
        else if (E->getLane() >= VecTy->getVectorNumLanes())
          Report("vextract lane out of range in '" + BBName + "'");
        else if (I.getType() != VecTy->getVectorElementType())
          Report("vextract result type mismatch in '" + BBName + "'");
        break;
      }
      case Value::Kind::VPack: {
        const auto *P = cast<VPackInst>(&I);
        if (!I.getType()->isVector() ||
            P->getNumLanes() != I.getType()->getVectorNumLanes())
          Report("vpack arity does not match its lane count in '" + BBName +
                 "'");
        break;
      }
      default:
        // Scalar instructions must not consume vector values except
        // through vextract/vstore (no vector phis, selects, calls, rets,
        // branches, or address operands).
        for (const auto *Op : I.operands())
          if (Op && Op->getType()->isVector())
            Report("vector operand on scalar instruction '" +
                   I.getOpcodeName() + "' in '" + BBName + "'");
        break;
      }

      if (const auto *Phi = dyn_cast<PhiInst>(&I)) {
        auto Preds = BB->predecessors();
        std::set<const BasicBlock *> PredSet(Preds.begin(), Preds.end());
        std::set<const BasicBlock *> Incoming;
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          const BasicBlock *In = Phi->getIncomingBlock(K);
          if (!Incoming.insert(In).second)
            Report("phi has duplicate incoming block in '" + BBName + "'");
          if (!PredSet.count(In))
            Report("phi incoming block is not a predecessor in '" + BBName +
                   "'");
        }
        for (const auto *P : PredSet)
          if (!Incoming.count(P))
            Report("phi is missing an incoming value for a predecessor in '" +
                   BBName + "'");
      }
    }
  }

  // The entry block must not be a branch target (loops need a preheader
  // above them; our frontend guarantees this and transformations keep it).
  if (!F.getBlocks().empty()) {
    const BasicBlock &Entry = F.getEntryBlock();
    if (!Entry.predecessors().empty())
      Report("entry block has predecessors");
  }
}

/// Dominance-based SSA verification: every use of an instruction must be
/// dominated by its definition. Phi uses are checked against the incoming
/// edge — the definition must dominate the incoming block's terminator —
/// since a phi observes its operand on the edge, not at the phi itself.
/// Blocks unreachable from the entry are skipped; their instructions can
/// never execute and the iterative dominator algorithm assigns them no
/// position in the tree.
void verifyDominance(const Function &F, std::vector<std::string> &Out) {
  if (F.getBlocks().empty())
    return;

  auto Report = [&](const std::string &Msg) {
    Out.push_back("@" + F.getName() + ": " + Msg);
  };

  // DominatorTree mutates nothing but takes Function& for CFG walks.
  DominatorTree DT(const_cast<Function &>(F));

  for (const auto &BB : F.getBlocks()) {
    if (!DT.isReachableFromEntry(BB.get()))
      continue;
    const std::string BBName = BB->getName().empty() ? "<bb>" : BB->getName();
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction &I = *IPtr;

      if (const auto *Phi = dyn_cast<PhiInst>(&I)) {
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          const auto *OpInst = dyn_cast<Instruction>(Phi->getIncomingValue(K));
          if (!OpInst || !OpInst->getParent() ||
              OpInst->getParent()->getParent() != &F)
            continue;
          const BasicBlock *In = Phi->getIncomingBlock(K);
          if (!In || !DT.isReachableFromEntry(const_cast<BasicBlock *>(In)))
            continue;
          const Instruction *EdgeTerm = In->getTerminator();
          if (!EdgeTerm)
            continue; // Reported structurally already.
          if (!DT.dominates(OpInst, EdgeTerm))
            Report("phi in '" + BBName +
                   "' uses a value that does not dominate the incoming edge "
                   "from '" +
                   (In->getName().empty() ? "<bb>" : In->getName()) + "'");
        }
        continue;
      }

      for (const auto *Op : I.operands()) {
        const auto *OpInst = Op ? dyn_cast<Instruction>(Op) : nullptr;
        if (!OpInst || !OpInst->getParent() ||
            OpInst->getParent()->getParent() != &F)
          continue;
        if (!DT.isReachableFromEntry(OpInst->getParent()))
          continue;
        if (!DT.dominates(OpInst, &I))
          Report("use in block '" + BBName +
                 "' is not dominated by its definition" +
                 (OpInst->hasName() ? " of '%" + OpInst->getName() + "'"
                                    : std::string()));
      }
    }
  }
}

} // namespace

std::vector<std::string> nir::verifyModule(const Module &M) {
  std::vector<std::string> Out;
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration()) {
      verifyFunction(*F, Out);
      verifyDominance(*F, Out);
    }
  return Out;
}

bool nir::moduleVerifies(const Module &M) { return verifyModule(M).empty(); }
