//===----------------------------------------------------------------------===//
///
/// \file
/// Function: a named, typed code object owning its arguments and basic
/// blocks. Functions without blocks are declarations resolved by name in
/// the interpreter's external-function bridge.
///
//===----------------------------------------------------------------------===//

#ifndef IR_FUNCTION_H
#define IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Constants.h"

#include <list>
#include <memory>

namespace nir {

class Module;

/// A function definition or declaration. The Value type is the function
/// type; taking the address of a Function yields a ptr-typed value via the
/// frontend (function values may be stored/loaded for indirect calls).
class Function : public Value {
public:
  using BlockListT = std::list<std::unique_ptr<BasicBlock>>;

  Function(Type *FnTy, const std::string &Name)
      : Value(Kind::Function, FnTy) {
    setName(Name);
    auto &Params = FnTy->getParamTypes();
    Args.reserve(Params.size());
    for (unsigned I = 0; I < Params.size(); ++I)
      Args.push_back(
          std::make_unique<Argument>(Params[I], "arg" + std::to_string(I), I));
  }

  /// Drops every operand reference inside this function first, so blocks,
  /// arguments, and cross-block values can be destroyed in any order.
  ~Function() override {
    for (auto &BB : Blocks)
      for (auto &I : BB->getInstList())
        I->dropAllOperands();
  }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  Type *getFunctionType() const { return getType(); }
  Type *getReturnType() const { return getType()->getReturnType(); }

  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }

  /// True if this function has no body (external / runtime function).
  bool isDeclaration() const { return Blocks.empty(); }

  BasicBlock &getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return *Blocks.front();
  }

  /// Appends a new empty block and returns it.
  BasicBlock *createBlock(const std::string &Name);

  /// Inserts \p BB (taking ownership) before \p Pos (or at the end when
  /// \p Pos is null).
  BasicBlock *insertBlock(std::unique_ptr<BasicBlock> BB,
                          BasicBlock *Pos = nullptr);

  /// Unlinks and destroys \p BB.
  void eraseBlock(BasicBlock *BB);

  BlockListT &getBlocks() { return Blocks; }
  const BlockListT &getBlocks() const { return Blocks; }
  size_t getNumBlocks() const { return Blocks.size(); }

  /// Total number of instructions across all blocks.
  uint64_t getNumInstructions() const;

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Function;
  }

private:
  Module *Parent = nullptr;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListT Blocks;
};

} // namespace nir

#endif // IR_FUNCTION_H
