//===----------------------------------------------------------------------===//
///
/// \file
/// The NIR type system: primitive types (void, i1, i8, i32, i64, double),
/// an opaque pointer type, array types, and function types. Types are
/// uniqued and owned by a Context.
///
//===----------------------------------------------------------------------===//

#ifndef IR_TYPE_H
#define IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace nir {

class Context;

/// A uniqued, immutable type. Obtain instances through Context.
class Type {
public:
  enum class Kind {
    Void,
    Int1,
    Int8,
    Int32,
    Int64,
    Double,
    Ptr,      ///< Opaque pointer (modern-LLVM style).
    Array,    ///< [N x Elem]; used for globals and allocas.
    Function, ///< Ret(Args...).
    Vector,   ///< vNelem (e.g. v4i64): N lanes of a scalar element.
  };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isInteger() const {
    return TheKind == Kind::Int1 || TheKind == Kind::Int8 ||
           TheKind == Kind::Int32 || TheKind == Kind::Int64;
  }
  bool isDouble() const { return TheKind == Kind::Double; }
  bool isPointer() const { return TheKind == Kind::Ptr; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isFunction() const { return TheKind == Kind::Function; }
  bool isVector() const { return TheKind == Kind::Vector; }

  /// Bit width for integer types.
  unsigned getIntegerBitWidth() const {
    switch (TheKind) {
    case Kind::Int1:
      return 1;
    case Kind::Int8:
      return 8;
    case Kind::Int32:
      return 32;
    case Kind::Int64:
      return 64;
    default:
      assert(false && "not an integer type");
      return 0;
    }
  }

  /// Size in bytes when stored in memory (the interpreter's ABI).
  uint64_t getStoreSize() const;

  /// Array element type; valid only for arrays.
  Type *getArrayElementType() const {
    assert(isArray() && "not an array type");
    return ContainedTypes[0];
  }

  /// Array element count; valid only for arrays.
  uint64_t getArrayNumElements() const {
    assert(isArray() && "not an array type");
    return ArrayLength;
  }

  /// Vector element type; valid only for vectors.
  Type *getVectorElementType() const {
    assert(isVector() && "not a vector type");
    return ContainedTypes[0];
  }

  /// Vector lane count; valid only for vectors.
  uint64_t getVectorNumLanes() const {
    assert(isVector() && "not a vector type");
    return ArrayLength;
  }

  /// Function return type; valid only for function types.
  Type *getReturnType() const {
    assert(isFunction() && "not a function type");
    return ContainedTypes[0];
  }

  /// Function parameter types; valid only for function types.
  const std::vector<Type *> &getParamTypes() const {
    assert(isFunction() && "not a function type");
    return ParamTypes;
  }

  unsigned getNumParams() const {
    return static_cast<unsigned>(getParamTypes().size());
  }

  /// Renders the type in textual IR syntax (e.g. "i64", "[16 x double]").
  std::string str() const;

private:
  friend class Context;
  explicit Type(Kind K) : TheKind(K) {}

  Kind TheKind;
  std::vector<Type *> ContainedTypes; ///< [elem] for arrays, [ret] for fns.
  std::vector<Type *> ParamTypes;     ///< Function parameters.
  uint64_t ArrayLength = 0;
};

} // namespace nir

#endif // IR_TYPE_H
