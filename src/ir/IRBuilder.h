//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: convenience factory that creates instructions at an insertion
/// point, mirroring llvm::IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef IR_IRBUILDER_H
#define IR_IRBUILDER_H

#include "ir/Instructions.h"
#include "ir/Module.h"

namespace nir {

/// Creates instructions at a (block, position) insertion point. The
/// position is either "append to block end" or "before an instruction".
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}

  IRBuilder(Context &Ctx, BasicBlock *BB) : Ctx(Ctx) { setInsertPoint(BB); }

  Context &getContext() const { return Ctx; }

  /// Append new instructions at the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBlock = BB;
    InsertBefore = nullptr;
  }

  /// Insert new instructions before \p I.
  void setInsertPoint(Instruction *I) {
    InsertBlock = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBlock; }

  AllocaInst *createAlloca(Type *AllocatedTy, const std::string &Name = "") {
    return insert(new AllocaInst(Ctx.getPtrTy(), AllocatedTy), Name);
  }

  LoadInst *createLoad(Type *Ty, Value *Ptr, const std::string &Name = "") {
    return insert(new LoadInst(Ty, Ptr), Name);
  }

  StoreInst *createStore(Value *Val, Value *Ptr) {
    return insert(new StoreInst(Ctx.getVoidTy(), Val, Ptr), "");
  }

  GEPInst *createGEP(Value *Base, Value *Index, uint64_t Scale,
                     const std::string &Name = "") {
    return insert(new GEPInst(Ctx.getPtrTy(), Base, Index, Scale), Name);
  }

  BinaryInst *createBinary(BinaryInst::Op Op, Value *L, Value *R,
                           const std::string &Name = "") {
    return insert(new BinaryInst(Op, L, R), Name);
  }

  BinaryInst *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(BinaryInst::Op::Add, L, R, Name);
  }
  BinaryInst *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(BinaryInst::Op::Sub, L, R, Name);
  }
  BinaryInst *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(BinaryInst::Op::Mul, L, R, Name);
  }
  BinaryInst *createFAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(BinaryInst::Op::FAdd, L, R, Name);
  }
  BinaryInst *createFMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(BinaryInst::Op::FMul, L, R, Name);
  }

  CmpInst *createCmp(CmpInst::Pred P, Value *L, Value *R,
                     const std::string &Name = "") {
    return insert(new CmpInst(Ctx.getInt1Ty(), P, L, R), Name);
  }

  CastInst *createCast(CastInst::Op Op, Value *V, Type *DestTy,
                       const std::string &Name = "") {
    return insert(new CastInst(Op, V, DestTy), Name);
  }

  SelectInst *createSelect(Value *C, Value *T, Value *F,
                           const std::string &Name = "") {
    return insert(new SelectInst(C, T, F), Name);
  }

  PhiInst *createPhi(Type *Ty, const std::string &Name = "") {
    return insert(new PhiInst(Ty), Name);
  }

  BranchInst *createBr(BasicBlock *Target) {
    return insert(new BranchInst(Ctx.getVoidTy(), Target), "");
  }

  BranchInst *createCondBr(Value *Cond, BasicBlock *Then, BasicBlock *Else) {
    return insert(new BranchInst(Ctx.getVoidTy(), Cond, Then, Else), "");
  }

  CallInst *createCall(Function *Callee, const std::vector<Value *> &Args,
                       const std::string &Name = "") {
    return insert(
        new CallInst(Callee->getReturnType(), Callee, Args), Name);
  }

  CallInst *createIndirectCall(Type *RetTy, Value *Callee,
                               const std::vector<Value *> &Args,
                               const std::string &Name = "") {
    return insert(new CallInst(RetTy, Callee, Args), Name);
  }

  RetInst *createRet(Value *V) {
    return insert(new RetInst(Ctx.getVoidTy(), V), "");
  }

  RetInst *createRetVoid() {
    return insert(new RetInst(Ctx.getVoidTy()), "");
  }

  UnreachableInst *createUnreachable() {
    return insert(new UnreachableInst(Ctx.getVoidTy()), "");
  }

  VLoadInst *createVLoad(Type *VecTy, Value *Ptr,
                         const std::string &Name = "") {
    return insert(new VLoadInst(VecTy, Ptr), Name);
  }

  VStoreInst *createVStore(Value *Vec, Value *Ptr) {
    return insert(new VStoreInst(Ctx.getVoidTy(), Vec, Ptr), "");
  }

  VBinaryInst *createVBinary(VBinaryInst::Op Op, Value *L, Value *R,
                             const std::string &Name = "") {
    return insert(new VBinaryInst(Op, L, R), Name);
  }

  VExtractInst *createVExtract(Value *Vec, uint64_t Lane,
                               const std::string &Name = "") {
    return insert(new VExtractInst(Vec, Lane), Name);
  }

  VPackInst *createVPack(Type *VecTy, const std::vector<Value *> &Lanes,
                         const std::string &Name = "") {
    return insert(new VPackInst(VecTy, Lanes), Name);
  }

  ConstantInt *getInt64(int64_t V) { return Ctx.getInt64(V); }
  ConstantInt *getInt1(bool V) { return Ctx.getInt1(V); }
  ConstantFP *getDouble(double V) { return Ctx.getConstantFP(V); }

private:
  template <typename InstT> InstT *insert(InstT *I, const std::string &Name) {
    assert(InsertBlock && "no insertion point set");
    if (!Name.empty())
      I->setName(Name);
    if (InsertBefore)
      InsertBlock->insert(InsertBefore, std::unique_ptr<Instruction>(I));
    else
      InsertBlock->push_back(std::unique_ptr<Instruction>(I));
    return I;
  }

  Context &Ctx;
  BasicBlock *InsertBlock = nullptr;
  Instruction *InsertBefore = nullptr;
};

} // namespace nir

#endif // IR_IRBUILDER_H
