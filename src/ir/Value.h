//===----------------------------------------------------------------------===//
///
/// \file
/// Value and User: the base of the NIR class hierarchy with def-use
/// tracking. Every operand link is recorded on the used Value so that
/// replaceAllUsesWith and user iteration work as in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef IR_VALUE_H
#define IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace nir {

class User;

/// Base class of everything that can appear as an operand: constants,
/// arguments, globals, functions, basic blocks, and instructions.
class Value {
public:
  /// Discriminator for LLVM-style RTTI. Instruction kinds must stay
  /// contiguous between InstFirst and InstLast.
  enum class Kind {
    Argument,
    BasicBlock,
    Function,
    GlobalVariable,
    ConstantInt,
    ConstantFP,
    Undef,
    // --- instructions ---
    InstFirst,
    Alloca = InstFirst,
    Load,
    Store,
    GEP,
    Binary,
    Cmp,
    Cast,
    Select,
    Phi,
    Branch,
    Call,
    Ret,
    Unreachable,
    // Vector instructions (appended so pre-vector kind numerals — and the
    // content hashes derived from them — stay stable).
    VLoad,
    VStore,
    VBinary,
    VExtract,
    VPack,
    InstLast = VPack,
  };

  /// One recorded use of this value: which user, at which operand slot.
  struct UseRecord {
    User *TheUser;
    unsigned OperandIdx;
  };

  virtual ~Value();

  Kind getKind() const { return TheKind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }
  bool hasName() const { return !Name.empty(); }

  /// All (user, operand-slot) pairs that reference this value.
  const std::vector<UseRecord> &uses() const { return Uses; }

  /// Deduplicated list of users.
  std::vector<User *> users() const;

  unsigned getNumUses() const { return static_cast<unsigned>(Uses.size()); }
  bool hasUses() const { return !Uses.empty(); }

  /// Rewrites every use of this value to refer to \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Attached string metadata (used for profiles, PDG embedding, IDs).
  void setMetadata(const std::string &Key, const std::string &V) {
    Metadata[Key] = V;
  }
  /// Returns the metadata string for \p Key, or empty if absent.
  std::string getMetadata(const std::string &Key) const {
    auto It = Metadata.find(Key);
    return It == Metadata.end() ? std::string() : It->second;
  }
  bool hasMetadata(const std::string &Key) const {
    return Metadata.count(Key) != 0;
  }
  void removeMetadata(const std::string &Key) { Metadata.erase(Key); }
  const std::map<std::string, std::string> &getAllMetadata() const {
    return Metadata;
  }
  void clearMetadata() { Metadata.clear(); }

  /// Analysis scratch slot: a per-value integer an analysis pass may use
  /// for O(1) value-to-index maps during a single walk (e.g. the
  /// module content hash numbers function-local values positionally).
  /// No value is preserved between users — every pass must write before
  /// it reads, and must not hold the slot across calls into other code.
  uint32_t getScratchIndex() const { return ScratchIndex; }
  void setScratchIndex(uint32_t I) const { ScratchIndex = I; }

  static bool classof(const Value *) { return true; }

protected:
  Value(Kind K, Type *Ty) : TheKind(K), Ty(Ty) {}

private:
  friend class User;
  void addUse(User *U, unsigned Idx) { Uses.push_back({U, Idx}); }
  void removeUse(User *U, unsigned Idx) {
    auto It = std::find_if(Uses.begin(), Uses.end(), [&](const UseRecord &R) {
      return R.TheUser == U && R.OperandIdx == Idx;
    });
    assert(It != Uses.end() && "removing a use that was never recorded");
    Uses.erase(It);
  }

  Kind TheKind;
  Type *Ty;
  std::string Name;
  std::vector<UseRecord> Uses;
  std::map<std::string, std::string> Metadata;
  /// See getScratchIndex(). Mutable: scratch state, not value identity —
  /// const analyses over const IR still need their walk-local indices.
  mutable uint32_t ScratchIndex = 0;
};

/// A Value that references other Values as operands.
class User : public Value {
public:
  ~User() override { dropAllOperands(); }

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  Value *getOperand(unsigned Idx) const {
    assert(Idx < Operands.size() && "operand index out of range");
    return Operands[Idx];
  }

  /// Replaces the operand at \p Idx, updating use lists on both sides.
  void setOperand(unsigned Idx, Value *V) {
    assert(Idx < Operands.size() && "operand index out of range");
    if (Operands[Idx])
      Operands[Idx]->removeUse(this, Idx);
    Operands[Idx] = V;
    if (V)
      V->addUse(this, Idx);
  }

  /// Replaces every operand equal to \p Old with \p New.
  void replaceUsesOfWith(Value *Old, Value *New) {
    for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
      if (Operands[I] == Old)
        setOperand(I, New);
  }

  const std::vector<Value *> &operands() const { return Operands; }

  static bool classof(const Value *V) {
    return V->getKind() >= Kind::InstFirst && V->getKind() <= Kind::InstLast;
  }

protected:
  User(Kind K, Type *Ty) : Value(K, Ty) {}

  /// Appends an operand slot.
  void addOperand(Value *V) {
    Operands.push_back(V);
    if (V)
      V->addUse(this, static_cast<unsigned>(Operands.size() - 1));
  }

  /// Removes the trailing operand slot.
  void removeLastOperand() {
    assert(!Operands.empty() && "no operand to remove");
    if (Operands.back())
      Operands.back()->removeUse(this,
                                 static_cast<unsigned>(Operands.size() - 1));
    Operands.pop_back();
  }

  /// Detaches all operands (used by the destructor and by bulk teardown in
  /// BasicBlock/Function/Module destructors).
public:
  void dropAllOperands() {
    for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
      if (Operands[I]) {
        Operands[I]->removeUse(this, I);
        Operands[I] = nullptr;
      }
  }

private:
  std::vector<Value *> Operands;
};

} // namespace nir

#endif // IR_VALUE_H
