#include "ir/Utils.h"

#include "ir/Instructions.h"
#include "ir/Module.h"

#include <set>

using namespace nir;

unsigned nir::removeUnreachableBlocks(Function &F) {
  if (F.isDeclaration())
    return 0;

  // Reachability from the entry.
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work = {&F.getEntryBlock()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    for (BasicBlock *Succ : BB->successors())
      Work.push_back(Succ);
  }

  std::vector<BasicBlock *> Dead;
  for (auto &BB : F.getBlocks())
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  if (Dead.empty())
    return 0;

  // Remove phi edges coming from dead blocks.
  for (BasicBlock *BB : Reachable)
    for (auto &I : BB->getInstList()) {
      auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi)
        continue;
      for (int K = static_cast<int>(Phi->getNumIncoming()) - 1; K >= 0; --K)
        if (!Reachable.count(Phi->getIncomingBlock(K)))
          Phi->removeIncoming(static_cast<unsigned>(K));
    }

  // Detach dead instructions from each other, then delete blocks.
  Context &Ctx = F.getParent()->getContext();
  for (BasicBlock *BB : Dead)
    for (auto &I : BB->getInstList())
      if (I->hasUses())
        I->replaceAllUsesWith(Ctx.getUndef(I->getType()));
  for (BasicBlock *BB : Dead)
    for (auto &I : BB->getInstList())
      I->dropAllOperands();
  for (BasicBlock *BB : Dead) {
    while (!BB->getInstList().empty())
      BB->getInstList().pop_back();
    F.eraseBlock(BB);
  }
  return static_cast<unsigned>(Dead.size());
}

unsigned nir::removeDeadInstructions(Function &F) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &BB : F.getBlocks()) {
      std::vector<Instruction *> Dead;
      for (auto &I : BB->getInstList()) {
        if (I->hasUses() || I->isTerminator())
          continue;
        if (I->mayWriteToMemory() || isa<CallInst>(I.get()))
          continue;
        Dead.push_back(I.get());
      }
      for (Instruction *I : Dead) {
        I->eraseFromParent();
        ++Removed;
        Changed = true;
      }
    }
  }
  return Removed;
}

void nir::cloneFunctionBody(Function &Src, Function &Dst,
                            std::map<const Value *, Value *> &ValueMap) {
  assert(Dst.getBlocks().empty() && "destination must be empty");

  for (unsigned I = 0; I < Src.getNumArgs() && I < Dst.getNumArgs(); ++I)
    ValueMap[Src.getArg(I)] = Dst.getArg(I);

  // First pass: create blocks and cloned instructions (operands still
  // reference the originals).
  for (const auto &BB : Src.getBlocks()) {
    BasicBlock *NewBB = Dst.createBlock(BB->getName());
    ValueMap[BB.get()] = NewBB;
    for (const auto &I : BB->getInstList()) {
      Instruction *Cloned = I->clone();
      NewBB->push_back(std::unique_ptr<Instruction>(Cloned));
      ValueMap[I.get()] = Cloned;
    }
  }

  // Second pass: remap operands.
  for (const auto &BB : Dst.getBlocks())
    for (const auto &I : BB->getInstList())
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx) {
        auto It = ValueMap.find(I->getOperand(OpIdx));
        if (It != ValueMap.end())
          I->setOperand(OpIdx, It->second);
      }
}
