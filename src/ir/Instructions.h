//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete instruction classes of NIR: memory (alloca/load/store/gep),
/// arithmetic, comparisons, casts, select, phi, control flow, and calls.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTIONS_H
#define IR_INSTRUCTIONS_H

#include "ir/Constants.h"
#include "ir/Instruction.h"

namespace nir {

class BasicBlock;
class Function;

/// Reserves stack storage with the layout of the allocated type; yields a
/// pointer to it. Allocation happens once per function activation.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *PtrTy, Type *AllocatedTy)
      : Instruction(Kind::Alloca, PtrTy), AllocatedTy(AllocatedTy) {}

  Type *getAllocatedType() const { return AllocatedTy; }
  uint64_t getAllocationSize() const { return AllocatedTy->getStoreSize(); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Alloca; }

private:
  Type *AllocatedTy;
};

/// Reads a value of the result type from the pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Type *LoadedTy, Value *Ptr) : Instruction(Kind::Load, LoadedTy) {
    assert(Ptr->getType()->isPointer() && "load requires a pointer operand");
    addOperand(Ptr);
  }

  Value *getPointerOperand() const { return getOperand(0); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Load; }
};

/// Writes the value operand through the pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(Type *VoidTy, Value *Val, Value *Ptr)
      : Instruction(Kind::Store, VoidTy) {
    assert(Ptr->getType()->isPointer() && "store requires a pointer operand");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Store; }
};

/// Pointer arithmetic: result = base + index * scale (bytes).
class GEPInst : public Instruction {
public:
  GEPInst(Type *PtrTy, Value *Base, Value *Index, uint64_t Scale)
      : Instruction(Kind::GEP, PtrTy), Scale(Scale) {
    assert(Base->getType()->isPointer() && "gep base must be a pointer");
    assert(Index->getType()->isInteger() && "gep index must be an integer");
    addOperand(Base);
    addOperand(Index);
  }

  Value *getBase() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }
  uint64_t getScale() const { return Scale; }

  static bool classof(const Value *V) { return V->getKind() == Kind::GEP; }

private:
  uint64_t Scale;
};

/// Two-operand arithmetic and bitwise operations.
class BinaryInst : public Instruction {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
  };

  BinaryInst(Op TheOp, Value *LHS, Value *RHS)
      : Instruction(Kind::Binary, LHS->getType()), TheOp(TheOp) {
    assert(LHS->getType() == RHS->getType() &&
           "binary operands must share a type");
    addOperand(LHS);
    addOperand(RHS);
  }

  Op getOp() const { return TheOp; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  bool isFloatingPoint() const { return TheOp >= Op::FAdd; }

  /// True for add/mul/and/or/xor/fadd/fmul.
  bool isCommutative() const {
    switch (TheOp) {
    case Op::Add:
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::FAdd:
    case Op::FMul:
      return true;
    default:
      return false;
    }
  }

  /// True for operations that form a reduction when self-accumulating
  /// (associative + commutative).
  bool isAssociative() const {
    switch (TheOp) {
    case Op::Add:
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    // FP reductions are allowed as in -ffast-math, matching the paper's
    // parallelizing transformations.
    case Op::FAdd:
    case Op::FMul:
      return true;
    default:
      return false;
    }
  }

  static const char *opName(Op O);

  static bool classof(const Value *V) { return V->getKind() == Kind::Binary; }

private:
  Op TheOp;
};

/// Integer and floating comparisons, yielding i1.
class CmpInst : public Instruction {
public:
  enum class Pred { EQ, NE, SLT, SLE, SGT, SGE, FEQ, FNE, FLT, FLE, FGT, FGE };

  CmpInst(Type *I1Ty, Pred P, Value *LHS, Value *RHS)
      : Instruction(Kind::Cmp, I1Ty), ThePred(P) {
    addOperand(LHS);
    addOperand(RHS);
  }

  Pred getPred() const { return ThePred; }
  void setPred(Pred P) { ThePred = P; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  /// The predicate with operands swapped (e.g. SLT -> SGT).
  static Pred getSwappedPred(Pred P);

  /// The logically negated predicate (e.g. SLT -> SGE).
  static Pred getInversePred(Pred P);

  static const char *predName(Pred P);

  static bool classof(const Value *V) { return V->getKind() == Kind::Cmp; }

private:
  Pred ThePred;
};

/// Value conversions between integer widths, double, and pointers.
class CastInst : public Instruction {
public:
  enum class Op { SExt, ZExt, Trunc, SIToFP, FPToSI, PtrToInt, IntToPtr, Bitcast };

  CastInst(Op TheOp, Value *Val, Type *DestTy)
      : Instruction(Kind::Cast, DestTy), TheOp(TheOp) {
    addOperand(Val);
  }

  Op getOp() const { return TheOp; }
  Value *getValueOperand() const { return getOperand(0); }

  static const char *opName(Op O);

  static bool classof(const Value *V) { return V->getKind() == Kind::Cast; }

private:
  Op TheOp;
};

/// Ternary select: cond ? true-value : false-value.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Kind::Select, TrueV->getType()) {
    assert(TrueV->getType() == FalseV->getType() &&
           "select arms must share a type");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Select; }
};

/// SSA phi node. Operands alternate [value0, block0, value1, block1, ...].
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(Kind::Phi, Ty) {}

  unsigned getNumIncoming() const { return getNumOperands() / 2; }

  Value *getIncomingValue(unsigned I) const { return getOperand(2 * I); }
  BasicBlock *getIncomingBlock(unsigned I) const;

  void setIncomingValue(unsigned I, Value *V) { setOperand(2 * I, V); }
  void setIncomingBlock(unsigned I, BasicBlock *BB);

  void addIncoming(Value *V, BasicBlock *BB);

  /// Removes the incoming edge at index \p I.
  void removeIncoming(unsigned I);

  /// The incoming value for predecessor \p BB; asserts if absent.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;

  /// Index of the incoming edge from \p BB, or -1.
  int getBlockIndex(const BasicBlock *BB) const;

  static bool classof(const Value *V) { return V->getKind() == Kind::Phi; }
};

/// Conditional or unconditional branch.
/// Unconditional: operands = [target]. Conditional: [cond, then, else].
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(Type *VoidTy, BasicBlock *Target);

  /// Conditional branch.
  BranchInst(Type *VoidTy, Value *Cond, BasicBlock *Then, BasicBlock *Else);

  bool isConditional() const { return getNumOperands() == 3; }

  Value *getCondition() const {
    assert(isConditional() && "no condition on an unconditional branch");
    return getOperand(0);
  }
  void setCondition(Value *C) {
    assert(isConditional());
    setOperand(0, C);
  }

  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const;
  void setSuccessor(unsigned I, BasicBlock *BB);

  static bool classof(const Value *V) { return V->getKind() == Kind::Branch; }
};

/// Direct or indirect call. Operands = [callee, args...].
class CallInst : public Instruction {
public:
  CallInst(Type *RetTy, Value *Callee, const std::vector<Value *> &Args)
      : Instruction(Kind::Call, RetTy) {
    addOperand(Callee);
    for (auto *A : Args)
      addOperand(A);
  }

  Value *getCalleeOperand() const { return getOperand(0); }

  /// The statically-known callee, or null for indirect calls.
  Function *getCalledFunction() const;

  bool isIndirect() const { return getCalledFunction() == nullptr; }

  unsigned getNumArgs() const { return getNumOperands() - 1; }
  Value *getArg(unsigned I) const { return getOperand(I + 1); }
  void setArg(unsigned I, Value *V) { setOperand(I + 1, V); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Call; }
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  explicit RetInst(Type *VoidTy) : Instruction(Kind::Ret, VoidTy) {}
  RetInst(Type *VoidTy, Value *RetVal) : Instruction(Kind::Ret, VoidTy) {
    addOperand(RetVal);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) { return V->getKind() == Kind::Ret; }
};

/// Marks an unreachable program point.
class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(Type *VoidTy)
      : Instruction(Kind::Unreachable, VoidTy) {}

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Unreachable;
  }
};

//===----------------------------------------------------------------------===//
// Vector instructions. A vector value is N consecutive lanes of one scalar
// element type (i32, i64, or double); memory accesses touch
// lanes * elementSize contiguous bytes starting at the pointer operand.
//===----------------------------------------------------------------------===//

/// Reads a whole vector from contiguous memory at the pointer operand.
class VLoadInst : public Instruction {
public:
  VLoadInst(Type *VecTy, Value *Ptr) : Instruction(Kind::VLoad, VecTy) {
    assert(VecTy->isVector() && "vload requires a vector result type");
    assert(Ptr->getType()->isPointer() && "vload requires a pointer operand");
    addOperand(Ptr);
  }

  Value *getPointerOperand() const { return getOperand(0); }
  uint64_t getAccessSize() const { return getType()->getStoreSize(); }

  static bool classof(const Value *V) { return V->getKind() == Kind::VLoad; }
};

/// Writes a whole vector to contiguous memory at the pointer operand.
class VStoreInst : public Instruction {
public:
  VStoreInst(Type *VoidTy, Value *Vec, Value *Ptr)
      : Instruction(Kind::VStore, VoidTy) {
    assert(Vec->getType()->isVector() && "vstore requires a vector value");
    assert(Ptr->getType()->isPointer() && "vstore requires a pointer operand");
    addOperand(Vec);
    addOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }
  uint64_t getAccessSize() const {
    return getValueOperand()->getType()->getStoreSize();
  }

  static bool classof(const Value *V) { return V->getKind() == Kind::VStore; }
};

/// Lane-wise two-operand arithmetic on vectors; reuses BinaryInst::Op.
class VBinaryInst : public Instruction {
public:
  using Op = BinaryInst::Op;

  VBinaryInst(Op TheOp, Value *LHS, Value *RHS)
      : Instruction(Kind::VBinary, LHS->getType()), TheOp(TheOp) {
    assert(LHS->getType()->isVector() && "vbinary operands must be vectors");
    assert(LHS->getType() == RHS->getType() &&
           "vbinary operands must share a type");
    addOperand(LHS);
    addOperand(RHS);
  }

  Op getOp() const { return TheOp; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatingPoint() const { return TheOp >= Op::FAdd; }

  static bool classof(const Value *V) { return V->getKind() == Kind::VBinary; }

private:
  Op TheOp;
};

/// Extracts one scalar lane from a vector.
class VExtractInst : public Instruction {
public:
  VExtractInst(Value *Vec, uint64_t Lane)
      : Instruction(Kind::VExtract,
                    Vec->getType()->getVectorElementType()),
        Lane(Lane) {
    assert(Lane < Vec->getType()->getVectorNumLanes() &&
           "vextract lane out of range");
    addOperand(Vec);
  }

  Value *getVectorOperand() const { return getOperand(0); }
  uint64_t getLane() const { return Lane; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::VExtract;
  }

private:
  uint64_t Lane;
};

/// Builds a vector from N scalar operands (one per lane, lane 0 first).
class VPackInst : public Instruction {
public:
  VPackInst(Type *VecTy, const std::vector<Value *> &Lanes)
      : Instruction(Kind::VPack, VecTy) {
    assert(VecTy->isVector() && "vpack requires a vector result type");
    assert(Lanes.size() == VecTy->getVectorNumLanes() &&
           "vpack needs one operand per lane");
    for (Value *L : Lanes) {
      assert(L->getType() == VecTy->getVectorElementType() &&
             "vpack lane type mismatch");
      addOperand(L);
    }
  }

  Value *getLaneOperand(unsigned I) const { return getOperand(I); }
  unsigned getNumLanes() const { return getNumOperands(); }

  static bool classof(const Value *V) { return V->getKind() == Kind::VPack; }
};

} // namespace nir

#endif // IR_INSTRUCTIONS_H
