#include "ir/Context.h"

#include "ir/Constants.h"

using namespace nir;

Context::Context()
    : VoidTy(Type::Kind::Void), Int1Ty(Type::Kind::Int1),
      Int8Ty(Type::Kind::Int8), Int32Ty(Type::Kind::Int32),
      Int64Ty(Type::Kind::Int64), DoubleTy(Type::Kind::Double),
      PtrTy(Type::Kind::Ptr) {}

Context::~Context() = default;

Type *Context::getArrayTy(Type *Elem, uint64_t NumElements) {
  auto Key = std::make_pair(Elem, NumElements);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  auto *T = new Type(Type::Kind::Array);
  T->ContainedTypes.push_back(Elem);
  T->ArrayLength = NumElements;
  OwnedTypes.emplace_back(T);
  ArrayTypes[Key] = T;
  return T;
}

Type *Context::getVectorTy(Type *Elem, uint64_t Lanes) {
  assert((Elem == &Int32Ty || Elem == &Int64Ty || Elem == &DoubleTy) &&
         "vector elements must be i32, i64, or double");
  assert(Lanes >= 2 && Lanes <= 8 && "vector lane count must be in [2, 8]");
  auto Key = std::make_pair(Elem, Lanes);
  auto It = VectorTypes.find(Key);
  if (It != VectorTypes.end())
    return It->second;
  auto *T = new Type(Type::Kind::Vector);
  T->ContainedTypes.push_back(Elem);
  T->ArrayLength = Lanes;
  OwnedTypes.emplace_back(T);
  VectorTypes[Key] = T;
  return T;
}

Type *Context::getFunctionTy(Type *Ret, const std::vector<Type *> &Params) {
  auto Key = std::make_pair(Ret, Params);
  auto It = FunctionTypes.find(Key);
  if (It != FunctionTypes.end())
    return It->second;
  auto *T = new Type(Type::Kind::Function);
  T->ContainedTypes.push_back(Ret);
  T->ParamTypes = Params;
  OwnedTypes.emplace_back(T);
  FunctionTypes[Key] = T;
  return T;
}

ConstantInt *Context::getConstantInt(Type *Ty, int64_t Value) {
  assert(Ty->isInteger() && "integer constant requires an integer type");
  auto Key = std::make_pair(Ty, Value);
  auto It = IntConsts.find(Key);
  if (It != IntConsts.end())
    return It->second.get();
  auto *C = new ConstantInt(Ty, Value);
  IntConsts[Key] = std::unique_ptr<ConstantInt>(C);
  return C;
}

ConstantFP *Context::getConstantFP(double Value) {
  auto It = FPConsts.find(Value);
  if (It != FPConsts.end())
    return It->second.get();
  auto *C = new ConstantFP(&DoubleTy, Value);
  FPConsts[Value] = std::unique_ptr<ConstantFP>(C);
  return C;
}

UndefValue *Context::getUndef(Type *Ty) {
  auto It = Undefs.find(Ty);
  if (It != Undefs.end())
    return It->second.get();
  auto *U = new UndefValue(Ty);
  Undefs[Ty] = std::unique_ptr<UndefValue>(U);
  return U;
}
