//===----------------------------------------------------------------------===//
///
/// \file
/// CFG-mutation utilities shared by the frontend and the loop builder.
///
//===----------------------------------------------------------------------===//

#ifndef IR_UTILS_H
#define IR_UTILS_H

#include "ir/Function.h"

#include <map>

namespace nir {

/// Deletes every block not reachable from the entry, fixing up phis in
/// surviving blocks. Returns the number of blocks removed.
unsigned removeUnreachableBlocks(Function &F);

/// Removes trivially dead instructions (no users, no side effects),
/// iterating to a fixed point. Returns the number removed.
unsigned removeDeadInstructions(Function &F);

/// Clones \p Src's body into \p Dst (which must be an empty definition
/// with the same signature), remapping arguments. Extra mappings (e.g.
/// replacing loads of live-ins) can be seeded via \p ValueMap.
void cloneFunctionBody(Function &Src, Function &Dst,
                       std::map<const Value *, Value *> &ValueMap);

} // namespace nir

#endif // IR_UTILS_H
