//===----------------------------------------------------------------------===//
///
/// \file
/// Constant values: integers, floating point, undef, and global variables.
/// Primitive constants are interned by Context; globals are owned by their
/// Module.
///
//===----------------------------------------------------------------------===//

#ifndef IR_CONSTANTS_H
#define IR_CONSTANTS_H

#include "ir/Value.h"

#include <cstdint>
#include <vector>

namespace nir {

class Module;

/// An integer constant of type i1/i8/i32/i64.
class ConstantInt : public Value {
public:
  int64_t getValue() const { return Val; }
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantInt;
  }

private:
  friend class Context;
  ConstantInt(Type *Ty, int64_t Val) : Value(Kind::ConstantInt, Ty), Val(Val) {
    assert(Ty->isInteger() && "ConstantInt requires an integer type");
  }
  int64_t Val;
};

/// A double-precision floating point constant.
class ConstantFP : public Value {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantFP;
  }

private:
  friend class Context;
  ConstantFP(Type *Ty, double Val) : Value(Kind::ConstantFP, Ty), Val(Val) {}
  double Val;
};

/// An undefined value of a given type.
class UndefValue : public Value {
public:
  static bool classof(const Value *V) { return V->getKind() == Kind::Undef; }

private:
  friend class Context;
  explicit UndefValue(Type *Ty) : Value(Kind::Undef, Ty) {}
};

/// A module-level variable. Its Value type is ptr (its address); the
/// pointee layout is described by the value type. Storage is
/// zero-initialized unless initializer words are provided.
class GlobalVariable : public Value {
public:
  GlobalVariable(Type *PtrTy, Type *ValueTy, const std::string &Name)
      : Value(Kind::GlobalVariable, PtrTy), ValueTy(ValueTy) {
    setName(Name);
  }

  /// The layout of the storage this global names.
  Type *getValueType() const { return ValueTy; }

  /// Storage size in bytes.
  uint64_t getStoreSize() const { return ValueTy->getStoreSize(); }

  /// Optional initializer, one 64-bit word per 8-byte slot (doubles are
  /// bit-cast). Empty means zero-initialized.
  const std::vector<int64_t> &getInitWords() const { return InitWords; }
  void setInitWords(std::vector<int64_t> Words) {
    InitWords = std::move(Words);
  }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::GlobalVariable;
  }

private:
  Type *ValueTy;
  std::vector<int64_t> InitWords;
  Module *Parent = nullptr;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, const std::string &Name, unsigned ArgNo)
      : Value(Kind::Argument, Ty), ArgNo(ArgNo) {
    setName(Name);
  }

  unsigned getArgNo() const { return ArgNo; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Argument;
  }

private:
  unsigned ArgNo;
};

} // namespace nir

#endif // IR_CONSTANTS_H
