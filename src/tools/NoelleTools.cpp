#include "tools/NoelleTools.h"

#include "frontend/MiniC.h"
#include "ir/IDs.h"
#include "ir/Linker.h"
#include "runtime/ParallelRuntime.h"
#include "xforms/LICM.h"

#include <sstream>

using namespace noelle;
using nir::Instruction;
using nir::Module;

std::unique_ptr<Module>
tools::wholeIR(nir::Context &Ctx, const std::vector<std::string> &Sources,
               std::string &Error) {
  std::vector<std::unique_ptr<Module>> Units;
  std::vector<const Module *> Raw;
  for (size_t I = 0; I < Sources.size(); ++I) {
    minic::CompileOptions Opts;
    Opts.ModuleName = "tu" + std::to_string(I);
    auto M = minic::compileMiniC(Ctx, Sources[I], Error, Opts);
    if (!M)
      return nullptr;
    Raw.push_back(M.get());
    Units.push_back(std::move(M));
  }
  auto Linked = nir::linkModules(Ctx, Raw, Error);
  if (!Linked)
    return nullptr;
  // The compilation options later stages honor (the real tool embeds
  // clang flags and libraries-to-link here).
  Linked->setModuleMetadata("noelle.link.runtime", "parallel");
  Linked->setModuleMetadata("noelle.opt.level", "O3");
  nir::assignDeterministicIDs(*Linked);
  return Linked;
}

ProfileData tools::profCoverage(Module &M) {
  return Profiler::profileModule(M);
}

void tools::metaProfEmbed(Module &M, const ProfileData &P) { P.embed(M); }

namespace {
constexpr const char *PDGDepsKey = "noelle.pdg.deps";
constexpr const char *PDGEmbeddedKey = "noelle.pdg.embedded";

/// Edge encoding: "<toID>:<flags>[:<kind>]" where flags is a string of
/// c(ontrol) m(emory) l(oop-carried) M(ust) characters.
std::string encodeEdge(uint64_t ToID, const DependenceEdge<nir::Value> &E) {
  std::ostringstream OS;
  OS << ToID << ":";
  if (E.IsControl)
    OS << "c";
  if (E.IsMemory)
    OS << "m";
  if (E.IsLoopCarried)
    OS << "l";
  if (E.IsMust)
    OS << "M";
  OS << ":"
     << (E.Kind == DataDepKind::RAW   ? "raw"
         : E.Kind == DataDepKind::WAW ? "waw"
                                      : "war");
  return OS.str();
}
} // namespace

void tools::metaPDGEmbed(Module &M, const PDGBuildOptions &Opts) {
  nir::assignDeterministicIDs(M);
  PDGBuilder Builder(M, Opts);
  PDG &G = Builder.getPDG();

  // Group out-edges per source instruction.
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        std::ostringstream OS;
        bool First = true;
        for (const auto *E : G.getOutEdges(I.get())) {
          const auto *To = nir::dyn_cast<Instruction>(E->To);
          if (!To)
            continue;
          std::string ToID = To->getMetadata(nir::InstIDKey);
          if (ToID.empty())
            continue;
          if (!First)
            OS << ",";
          First = false;
          OS << encodeEdge(std::stoull(ToID), *E);
        }
        std::string Payload = OS.str();
        if (!Payload.empty())
          I->setMetadata(PDGDepsKey, Payload);
      }
  M.setModuleMetadata(PDGEmbeddedKey, "true");
}

uint64_t tools::pdgEmbed(Module &M, const PDGBuildOptions &Opts) {
  // Never load a stale cache into the builder that is about to refresh
  // it: drop the old blob first, then build (in parallel) and embed.
  PDG::clearEmbedded(M);
  PDGBuilder Builder(M, Opts);
  PDG &G = Builder.getPDG();
  G.embed(M);
  return G.getEdges().size();
}

bool tools::hasPDGMetadata(const Module &M) {
  return M.hasModuleMetadata(PDGEmbeddedKey) || PDG::hasEmbedded(M);
}

std::unique_ptr<PDG> tools::pdgFromMetadata(Module &M) {
  assert(hasPDGMetadata(M) && "no embedded PDG");
  auto Index = nir::buildInstructionIndex(M);
  auto G = std::make_unique<PDG>();
  for (const auto &[ID, I] : Index)
    G->addNode(I, /*Internal=*/true);

  for (const auto &[ID, I] : Index) {
    std::string Payload = I->getMetadata(PDGDepsKey);
    if (Payload.empty())
      continue;
    std::istringstream IS(Payload);
    std::string Item;
    while (std::getline(IS, Item, ',')) {
      // <toID>:<flags>:<kind>
      size_t C1 = Item.find(':');
      size_t C2 = Item.find(':', C1 + 1);
      if (C1 == std::string::npos || C2 == std::string::npos)
        continue;
      uint64_t ToID = std::stoull(Item.substr(0, C1));
      std::string Flags = Item.substr(C1 + 1, C2 - C1 - 1);
      std::string Kind = Item.substr(C2 + 1);
      auto ToIt = Index.find(ToID);
      if (ToIt == Index.end())
        continue;
      DependenceEdge<nir::Value> E;
      E.From = I;
      E.To = ToIt->second;
      E.IsControl = Flags.find('c') != std::string::npos;
      E.IsMemory = Flags.find('m') != std::string::npos;
      E.IsLoopCarried = Flags.find('l') != std::string::npos;
      E.IsMust = Flags.find('M') != std::string::npos;
      E.Kind = Kind == "raw"   ? DataDepKind::RAW
               : Kind == "waw" ? DataDepKind::WAW
                               : DataDepKind::WAR;
      G->addEdge(E);
    }
  }
  return G;
}

void tools::metaClean(Module &M) {
  ProfileData::clean(M);
  M.removeModuleMetadata(PDGEmbeddedKey);
  M.removeModuleMetadata("noelle.pdg.embedded");
  PDG::clearEmbedded(M);
  for (const auto &F : M.getFunctions()) {
    std::vector<std::string> Doomed;
    for (const auto &[K, V] : F->getAllMetadata())
      if (K.rfind("noelle.", 0) == 0)
        Doomed.push_back(K);
    for (const auto &K : Doomed)
      F->removeMetadata(K);
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        std::vector<std::string> DoomedI;
        for (const auto &[K, V] : I->getAllMetadata())
          if (K.rfind("noelle.", 0) == 0)
            DoomedI.push_back(K);
        for (const auto &K : DoomedI)
          I->removeMetadata(K);
      }
  }
}

unsigned tools::rmLCDependences(Module &M, double MinimumHotness) {
  NoelleOptions Opts;
  Opts.MinimumLoopHotness = MinimumHotness;
  Noelle N(M, Opts);
  LICM Tool(N);
  return Tool.run().InstructionsHoisted;
}

Architecture tools::archDescribe(bool Measure) {
  return Architecture(Measure);
}

std::unique_ptr<Noelle> tools::load(Module &M, NoelleOptions Opts) {
  return std::make_unique<Noelle>(M, Opts);
}

std::unique_ptr<nir::ExecutionEngine> tools::makeBinary(Module &M) {
  auto Engine = std::make_unique<nir::ExecutionEngine>(M);
  if (M.getModuleMetadata("noelle.link.runtime") == "parallel")
    registerParallelRuntime(*Engine);
  return Engine;
}
