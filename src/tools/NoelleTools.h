//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's tool layer (the paper's Table 2): the pieces users chain
/// into custom compilation flows like Figure 1's HELIX pipeline. Each
/// function mirrors one noelle-* command-line tool:
///
///   noelle-whole-IR          wholeIR()          sources -> one module
///   noelle-prof-coverage     profCoverage()     run profilers
///   noelle-meta-prof-embed   metaProfEmbed()    profiles -> metadata
///   noelle-meta-pdg-embed    metaPDGEmbed()     PDG -> inst metadata
///   noelle-pdg-embed         pdgEmbed()         PDG -> module cache
///   noelle-meta-clean        metaClean()        strip NOELLE metadata
///   noelle-rm-lc-dependences rmLCDependences()  reduce loop-carried deps
///   noelle-arch              archDescribe()     machine description
///   noelle-load              load()             abstractions in memory
///   noelle-linker            (ir/Linker.h)      module linking
///   noelle-bin               makeBinary()       executable image
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_NOELLETOOLS_H
#define TOOLS_NOELLETOOLS_H

#include "interp/Interpreter.h"
#include "noelle/Noelle.h"

#include <memory>
#include <string>
#include <vector>

namespace noelle {
namespace tools {

/// noelle-whole-IR: compiles every MiniC source and links the results
/// into a single whole-program module, embedding the "compilation
/// options" (module metadata) the later stages read. Returns null and
/// fills \p Error on failure.
std::unique_ptr<nir::Module> wholeIR(nir::Context &Ctx,
                                     const std::vector<std::string> &Sources,
                                     std::string &Error);

/// noelle-prof-coverage: runs the instruction/branch/loop profilers over
/// the module's training execution (@main with its baked-in input).
ProfileData profCoverage(nir::Module &M);

/// noelle-meta-prof-embed: writes a collected profile into IR metadata.
void metaProfEmbed(nir::Module &M, const ProfileData &P);

/// noelle-meta-pdg-embed: computes the PDG under the given options and
/// embeds every dependence edge as instruction metadata (keyed by
/// deterministic instruction IDs), so later stages can rebuild the PDG
/// without re-running the expensive alias analyses.
void metaPDGEmbed(nir::Module &M, const PDGBuildOptions &Opts = {});

/// noelle-pdg-embed: computes the whole-program PDG under the given
/// options and serializes it into module-level metadata together with a
/// content hash of the IR (PDG::embed). Unlike metaPDGEmbed, the cache
/// survives the textual print/parse round-trip as one self-verifying
/// blob: a later PDGBuilder (or noelle-load) checks the hash and loads
/// the graph instead of re-running the alias analyses — and silently
/// falls back to a fresh build when the IR changed underneath it.
/// Returns the number of edges embedded.
uint64_t pdgEmbed(nir::Module &M, const PDGBuildOptions &Opts = {});

/// True if \p M carries an embedded PDG.
bool hasPDGMetadata(const nir::Module &M);

/// Rebuilds the PDG from embedded metadata (no alias analyses run).
std::unique_ptr<PDG> pdgFromMetadata(nir::Module &M);

/// noelle-meta-clean: removes every noelle.* metadata entry.
void metaClean(nir::Module &M);

/// noelle-rm-lc-dependences: reduces loop-carried data dependences in
/// hot loops (hoisting invariant work out of loops removes the carried
/// memory dependences it participates in). Returns how many
/// instructions moved.
unsigned rmLCDependences(nir::Module &M, double MinimumHotness = 0.0);

/// noelle-arch: measures/describes the machine.
Architecture archDescribe(bool Measure);

/// noelle-load: the NOELLE layer, in memory, demand-driven.
std::unique_ptr<Noelle> load(nir::Module &M, NoelleOptions Opts = {});

/// noelle-bin: packages the module into an executable image (an engine
/// with the runtime installed), honoring the link options embedded by
/// wholeIR.
std::unique_ptr<nir::ExecutionEngine> makeBinary(nir::Module &M);

} // namespace tools
} // namespace noelle

#endif // TOOLS_NOELLETOOLS_H
