#include "runtime/ParallelRuntime.h"

#include "ir/Instructions.h"
#include "noelle/Architecture.h"
#include "runtime/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace noelle;
using nir::CallInst;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;
using nir::ThreadPool;
namespace telemetry = noelle::telemetry;

namespace {

/// Synchronization operations performed by the calling thread inside the
/// current task (ss waits/signals + queue pushes/pops); feeds the
/// performance model.
thread_local uint64_t ThreadSyncOps = 0;

/// Segment-work accounting: noelle_ss_wait checkpoints the thread's
/// retired-instruction counter; noelle_ss_signal accumulates the delta.
thread_local uint64_t ThreadSegmentWork = 0;
thread_local uint64_t ThreadSegmentCheckpoint = 0;

/// Per-engine memo of prepared task entries, shared by the dispatch
/// externals registered on that engine. A plan whose parallel region
/// sits inside an outer loop dispatches the same task function many
/// times; resolving the decoded form once per plan (instead of once per
/// dispatch) keeps the re-dispatch path free of decode-cache traffic.
/// Guarded by a mutex because nested parallelism can dispatch from
/// several worker threads at once.
struct PrepareMemo {
  std::mutex Lock;
  /// Plan epoch the memo's entries were prepared under. UINT64_MAX marks
  /// a fresh memo so the first dispatch always records the real epoch.
  uint64_t Epoch = UINT64_MAX;
  std::map<Function *, ExecutionEngine::PreparedFunction> Map;

  ExecutionEngine::PreparedFunction resolve(ExecutionEngine &E,
                                            Function *Task) {
    std::lock_guard<std::mutex> G(Lock);
    // Re-transforming the module under a new plan bumps its epoch;
    // cached decoded entries from the old plan may point at replaced or
    // deleted task bodies, so the whole memo is invalid.
    uint64_t Cur = planEpochOf(*Task->getParent());
    if (Cur != Epoch) {
      Map.clear();
      Epoch = Cur;
    }
    auto It = Map.find(Task);
    if (It != Map.end()) {
      telemetry::count(telemetry::Counter::PrepareMemoHit);
      return It->second;
    }
    telemetry::count(telemetry::Counter::PrepareMemoMiss);
    ExecutionEngine::PreparedFunction P = E.prepare(Task);
    Map.emplace(Task, P);
    return P;
  }
};

/// Shared dispatch implementation. Tasks run on the engine's persistent
/// pool; the caller blocks on the batch's completion latch instead of
/// joining freshly spawned threads.
///
/// Grain == 0: static dispatch — one pool job per task, and the pool
/// guarantees every task holds a worker simultaneously (HELIX gates and
/// DSWP queues block across tasks).
///
/// Grain > 0: chunked dynamic scheduling for DOALL — a small set of
/// runner jobs grab chunks of `Grain` consecutive task indices from a
/// shared atomic counter until the index space [0, NumTasks) drains.
/// Tasks must not block on each other in this mode.
///
/// Either way the DispatchRecord is accounted per logical task, exactly
/// as the spawn-per-region runtime did: task t's instruction/sync/
/// segment counts depend only on (env, t, numTasks), so Figure-5 model
/// inputs are byte-identical across scheduling strategies.
void runDispatch(ExecutionEngine &E, PrepareMemo &Memo, Function *Task,
                 uint64_t EnvPtr, int64_t NumTasks, int64_t Grain) {
  nir::DispatchRecord Rec;
  Rec.TaskName = Task->getName();
  if (NumTasks <= 0) {
    E.recordDispatch(Rec);
    return;
  }
  telemetry::count(Grain <= 0 ? telemetry::Counter::DispatchStatic
                              : telemetry::Counter::DispatchChunked);
  const uint64_t DispatchT0 =
      telemetry::metricsEnabled() ? telemetry::nowNs() : 0;
  size_t N = static_cast<size_t>(NumTasks);
  std::vector<uint64_t> Work(N, 0), Sync(N, 0), Seg(N, 0);

  // Resolve the task function's decoded form once per plan (memoized
  // across dispatches); every task invocation then skips the
  // decode-cache lookup entirely.
  ExecutionEngine::PreparedFunction Prepared = Memo.resolve(E, Task);

  auto RunOne = [&, EnvPtr, NumTasks](int64_t T) {
    ExecutionEngine::resetThreadRetired();
    ThreadSyncOps = 0;
    ThreadSegmentWork = 0;
    E.runPrepared(Prepared, {RuntimeValue::ofPtr(EnvPtr),
                             RuntimeValue::ofInt(T),
                             RuntimeValue::ofInt(NumTasks)});
    Work[static_cast<size_t>(T)] = ExecutionEngine::readThreadRetired();
    Sync[static_cast<size_t>(T)] = ThreadSyncOps;
    Seg[static_cast<size_t>(T)] = ThreadSegmentWork;
  };

  // Static dispatches (HELIX workers, DSWP stages) carry few tasks, so a
  // per-task span named after the task function is affordable; chunked
  // DOALL traces at chunk granularity instead (below).
  auto RunOneTraced = [&](int64_t T) {
    if (telemetry::traceEnabled()) {
      uint64_t T0 = telemetry::nowNs();
      RunOne(T);
      telemetry::traceSpan(Task->getName(), T0, telemetry::nowNs(),
                           {"task", T, "tasks", NumTasks});
    } else {
      RunOne(T);
    }
  };

  ThreadPool &Pool = E.getThreadPool();
  std::vector<ThreadPool::Job> Jobs;
  std::atomic<int64_t> NextChunk{0};
  if (Grain <= 0) {
    Jobs.reserve(N);
    for (int64_t T = 0; T < NumTasks; ++T)
      Jobs.push_back([&RunOneTraced, T] { RunOneTraced(T); });
  } else {
    // Runner count: one per host core is enough, since runners never
    // block and each drains chunks until the counter is exhausted. A
    // plan may cap this lower (worker-count hint); absent or
    // non-positive metadata leaves the default untouched.
    int64_t RunnerCap = std::max(1u, Architecture::hostLogicalCores());
    if (const nir::Module *M = Task->getParent();
        M && M->hasModuleMetadata(PlanRunnersKey)) {
      int64_t Hint =
          std::strtoll(M->getModuleMetadata(PlanRunnersKey).c_str(),
                       nullptr, 10);
      if (Hint > 0)
        RunnerCap = Hint;
    }
    int64_t Runners = std::min<int64_t>(NumTasks, RunnerCap);
    Jobs.reserve(static_cast<size_t>(Runners));
    for (int64_t R = 0; R < Runners; ++R)
      Jobs.push_back([&RunOne, &NextChunk, NumTasks, Grain] {
        for (;;) {
          int64_t Base =
              NextChunk.fetch_add(Grain, std::memory_order_relaxed);
          if (Base >= NumTasks)
            break;
          int64_t End = std::min(Base + Grain, NumTasks);
          telemetry::count(telemetry::Counter::DispatchChunks);
          if (telemetry::traceEnabled()) {
            uint64_t T0 = telemetry::nowNs();
            for (int64_t T = Base; T < End; ++T)
              RunOne(T);
            telemetry::traceSpan("doall.chunk", T0, telemetry::nowNs(),
                                 {"base", Base, "end", End});
          } else {
            for (int64_t T = Base; T < End; ++T)
              RunOne(T);
          }
        }
      });
  }
  Pool.run(std::move(Jobs)); // blocks on the completion latch

  if (DispatchT0) {
    uint64_t T1 = telemetry::nowNs();
    telemetry::record(telemetry::Hist::DispatchNs, T1 - DispatchT0);
    telemetry::traceSpan("dispatch", DispatchT0, T1,
                         {"tasks", NumTasks, "grain", Grain});
  }

  Rec.NumTasks = static_cast<uint64_t>(NumTasks);
  for (size_t T = 0; T < Work.size(); ++T) {
    Rec.MaxTaskInstructions = std::max(Rec.MaxTaskInstructions, Work[T]);
    Rec.TotalTaskInstructions += Work[T];
    Rec.MaxTaskSyncOps = std::max(Rec.MaxTaskSyncOps, Sync[T]);
    Rec.TotalTaskSyncOps += Sync[T];
    Rec.TotalSegmentInstructions += Seg[T];
  }
  E.recordDispatch(Rec);
}

/// Spin briefly before parking: gate latencies are usually a few
/// iterations of a peer task, but HELIX must not burn a core per gate
/// when the producer is descheduled.
inline void gateWait(std::atomic<int64_t> *Gate, int64_t Iter) {
  int64_t Cur = Gate->load(std::memory_order_acquire);
  unsigned Spins = 0;
  while (Cur < Iter) {
    if (Spins < 256) {
      ++Spins;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    } else {
#if defined(__cpp_lib_atomic_wait)
      // Park until the gate value changes (futex-backed); signal calls
      // notify_all after every store.
      Gate->wait(Cur, std::memory_order_acquire);
#else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
#endif
    }
    Cur = Gate->load(std::memory_order_acquire);
  }
}

} // namespace

uint64_t noelle::planEpochOf(const nir::Module &M) {
  if (!M.hasModuleMetadata(PlanEpochKey))
    return 0;
  return std::strtoull(M.getModuleMetadata(PlanEpochKey).c_str(), nullptr,
                       10);
}

void noelle::bumpPlanEpoch(nir::Module &M) {
  M.setModuleMetadata(PlanEpochKey, std::to_string(planEpochOf(M) + 1));
}

void noelle::registerParallelRuntime(ExecutionEngine &Engine) {
  // One memo per engine, shared by both dispatch entry points; its
  // lifetime is tied to the registered closures.
  auto Memo = std::make_shared<PrepareMemo>();

  Engine.registerExternal(
      "noelle_dispatch",
      [Memo](ExecutionEngine &E, const CallInst *,
             const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        if (!Task) {
          std::fprintf(stderr, "noelle_dispatch: invalid task pointer\n");
          std::abort();
        }
        runDispatch(E, *Memo, Task, A[1].P, A[2].I, /*Grain=*/0);
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_dispatch_chunked",
      [Memo](ExecutionEngine &E, const CallInst *,
             const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        if (!Task) {
          std::fprintf(stderr,
                       "noelle_dispatch_chunked: invalid task pointer\n");
          std::abort();
        }
        runDispatch(E, *Memo, Task, A[1].P, A[2].I,
                    std::max<int64_t>(A[3].I, 1));
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_create",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        int64_t Count = A[0].I;
        uint64_t Addr =
            E.heapAlloc(static_cast<uint64_t>(Count) * sizeof(int64_t));
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(Addr);
        for (int64_t I = 0; I < Count; ++I)
          Gates[I].store(0, std::memory_order_relaxed);
        return RuntimeValue::ofPtr(Addr);
      });

  Engine.registerExternal(
      "noelle_ss_wait",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        ++ThreadSyncOps;
        ThreadSegmentCheckpoint = ExecutionEngine::readThreadRetired();
        // Stall time is only measured when the gate is not already open,
        // so the common fast path stays a single acquire load.
        if (telemetry::metricsEnabled() &&
            Gates[SS].load(std::memory_order_acquire) < Iter) {
          uint64_t T0 = telemetry::nowNs();
          gateWait(&Gates[SS], Iter);
          uint64_t T1 = telemetry::nowNs();
          telemetry::count(telemetry::Counter::SSWaitStalled);
          telemetry::record(telemetry::Hist::SSWaitStallNs, T1 - T0);
          telemetry::traceSpan("helix.ss_stall", T0, T1,
                               {"ss", SS, "iter", Iter});
        } else {
          telemetry::count(telemetry::Counter::SSWaitFast);
          gateWait(&Gates[SS], Iter);
        }
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_signal",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        Gates[SS].store(Iter + 1, std::memory_order_release);
#if defined(__cpp_lib_atomic_wait)
        Gates[SS].notify_all();
#endif
        ThreadSegmentWork +=
            ExecutionEngine::readThreadRetired() - ThreadSegmentCheckpoint;
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_create",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        nir::BlockingQueue *Q = E.getQueueRegistry().create(
            static_cast<size_t>(std::max<int64_t>(A[0].I, 1)));
        return RuntimeValue::ofPtr(reinterpret_cast<uint64_t>(Q));
      });

  Engine.registerExternal(
      "noelle_queue_push",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        telemetry::count(telemetry::Counter::QueuePush);
        auto *Q = reinterpret_cast<nir::BlockingQueue *>(A[0].P);
        if (telemetry::traceEnabled()) {
          uint64_t T0 = telemetry::nowNs();
          Q->push(A[1].I);
          telemetry::traceSpan("dswp.queue_push", T0, telemetry::nowNs());
        } else {
          Q->push(A[1].I);
        }
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_pop",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        telemetry::count(telemetry::Counter::QueuePop);
        auto *Q = reinterpret_cast<nir::BlockingQueue *>(A[0].P);
        if (telemetry::traceEnabled()) {
          uint64_t T0 = telemetry::nowNs();
          int64_t V = Q->pop();
          telemetry::traceSpan("dswp.queue_pop", T0, telemetry::nowNs());
          return RuntimeValue::ofInt(V);
        }
        return RuntimeValue::ofInt(Q->pop());
      });
}

void noelle::declareParallelRuntime(nir::Module &M) {
  nir::Context &Ctx = M.getContext();
  auto Declare = [&](const char *Name, nir::Type *Ret,
                     std::vector<nir::Type *> Params) {
    if (M.getFunction(Name))
      return;
    M.createFunction(Ctx.getFunctionTy(Ret, Params), Name);
  };
  nir::Type *V = Ctx.getVoidTy();
  nir::Type *I = Ctx.getInt64Ty();
  nir::Type *P = Ctx.getPtrTy();
  Declare("noelle_dispatch", V, {P, P, I});
  Declare("noelle_dispatch_chunked", V, {P, P, I, I});
  Declare("noelle_ss_create", P, {I});
  Declare("noelle_ss_wait", V, {P, I, I});
  Declare("noelle_ss_signal", V, {P, I, I});
  Declare("noelle_queue_create", P, {I});
  Declare("noelle_queue_push", V, {P, I});
  Declare("noelle_queue_pop", I, {P});
}
