#include "runtime/ParallelRuntime.h"

#include "ir/Instructions.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

using namespace noelle;
using nir::CallInst;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;

namespace {

/// A bounded blocking queue carrying 64-bit payloads (DSWP's inter-core
/// channel). Handles are stable heap pointers owned by a registry so IR
/// code can hold them as opaque ptr values.
class BlockingQueue {
public:
  explicit BlockingQueue(size_t Capacity) : Capacity(Capacity) {}

  void push(int64_t V) {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Items.size() < Capacity; });
    Items.push_back(V);
    NotEmpty.notify_one();
  }

  int64_t pop() {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return !Items.empty(); });
    int64_t V = Items.front();
    Items.pop_front();
    NotFull.notify_one();
    return V;
  }

private:
  size_t Capacity;
  std::mutex M;
  std::condition_variable NotFull, NotEmpty;
  std::deque<int64_t> Items;
};

/// Registry keeping queue objects alive for the engine's lifetime.
struct QueueRegistry {
  std::mutex M;
  std::vector<std::unique_ptr<BlockingQueue>> Queues;

  BlockingQueue *create(size_t Capacity) {
    std::lock_guard<std::mutex> Lock(M);
    Queues.push_back(std::make_unique<BlockingQueue>(Capacity));
    return Queues.back().get();
  }
};

QueueRegistry &queues() {
  static QueueRegistry R;
  return R;
}

/// Synchronization operations performed by the calling thread inside the
/// current task (ss waits/signals + queue pushes/pops); feeds the
/// performance model.
thread_local uint64_t ThreadSyncOps = 0;

/// Segment-work accounting: noelle_ss_wait checkpoints the thread's
/// retired-instruction counter; noelle_ss_signal accumulates the delta.
thread_local uint64_t ThreadSegmentWork = 0;
thread_local uint64_t ThreadSegmentCheckpoint = 0;

} // namespace

void noelle::registerParallelRuntime(ExecutionEngine &Engine) {
  Engine.registerExternal(
      "noelle_dispatch",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        if (!Task) {
          std::fprintf(stderr, "noelle_dispatch: invalid task pointer\n");
          std::abort();
        }
        uint64_t EnvPtr = A[1].P;
        int64_t NumTasks = A[2].I;
        std::vector<std::thread> Threads;
        std::vector<uint64_t> Work(static_cast<size_t>(NumTasks), 0);
        std::vector<uint64_t> Sync(static_cast<size_t>(NumTasks), 0);
        std::vector<uint64_t> Seg(static_cast<size_t>(NumTasks), 0);
        Threads.reserve(static_cast<size_t>(NumTasks));
        for (int64_t T = 0; T < NumTasks; ++T) {
          Threads.emplace_back([&, T] {
            ExecutionEngine::resetThreadRetired();
            ThreadSyncOps = 0;
            ThreadSegmentWork = 0;
            E.runFunction(Task, {RuntimeValue::ofPtr(EnvPtr),
                                 RuntimeValue::ofInt(T),
                                 RuntimeValue::ofInt(NumTasks)});
            Work[static_cast<size_t>(T)] =
                ExecutionEngine::readThreadRetired();
            Sync[static_cast<size_t>(T)] = ThreadSyncOps;
            Seg[static_cast<size_t>(T)] = ThreadSegmentWork;
          });
        }
        for (auto &Th : Threads)
          Th.join();
        nir::DispatchRecord Rec;
        Rec.NumTasks = static_cast<uint64_t>(NumTasks);
        for (size_t T = 0; T < Work.size(); ++T) {
          Rec.MaxTaskInstructions =
              std::max(Rec.MaxTaskInstructions, Work[T]);
          Rec.TotalTaskInstructions += Work[T];
          Rec.MaxTaskSyncOps = std::max(Rec.MaxTaskSyncOps, Sync[T]);
          Rec.TotalTaskSyncOps += Sync[T];
          Rec.TotalSegmentInstructions += Seg[T];
        }
        E.recordDispatch(Rec);
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_create",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        int64_t Count = A[0].I;
        uint64_t Addr =
            E.heapAlloc(static_cast<uint64_t>(Count) * sizeof(int64_t));
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(Addr);
        for (int64_t I = 0; I < Count; ++I)
          Gates[I].store(0, std::memory_order_relaxed);
        return RuntimeValue::ofPtr(Addr);
      });

  Engine.registerExternal(
      "noelle_ss_wait",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        ++ThreadSyncOps;
        unsigned Spins = 0;
        ThreadSegmentCheckpoint = ExecutionEngine::readThreadRetired();
        while (Gates[SS].load(std::memory_order_acquire) < Iter) {
          if (++Spins > 1024) {
            std::this_thread::yield();
            Spins = 0;
          }
        }
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_signal",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        Gates[SS].store(Iter + 1, std::memory_order_release);
        ThreadSegmentWork +=
            ExecutionEngine::readThreadRetired() - ThreadSegmentCheckpoint;
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_create",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        BlockingQueue *Q =
            queues().create(static_cast<size_t>(std::max<int64_t>(A[0].I, 1)));
        return RuntimeValue::ofPtr(reinterpret_cast<uint64_t>(Q));
      });

  Engine.registerExternal(
      "noelle_queue_push",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        reinterpret_cast<BlockingQueue *>(A[0].P)->push(A[1].I);
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_pop",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        return RuntimeValue::ofInt(
            reinterpret_cast<BlockingQueue *>(A[0].P)->pop());
      });
}

void noelle::declareParallelRuntime(nir::Module &M) {
  nir::Context &Ctx = M.getContext();
  auto Declare = [&](const char *Name, nir::Type *Ret,
                     std::vector<nir::Type *> Params) {
    if (M.getFunction(Name))
      return;
    M.createFunction(Ctx.getFunctionTy(Ret, Params), Name);
  };
  nir::Type *V = Ctx.getVoidTy();
  nir::Type *I = Ctx.getInt64Ty();
  nir::Type *P = Ctx.getPtrTy();
  Declare("noelle_dispatch", V, {P, P, I});
  Declare("noelle_ss_create", P, {I});
  Declare("noelle_ss_wait", V, {P, I, I});
  Declare("noelle_ss_signal", V, {P, I, I});
  Declare("noelle_queue_create", P, {I});
  Declare("noelle_queue_push", V, {P, I});
  Declare("noelle_queue_pop", I, {P});
}
