#include "runtime/ParallelRuntime.h"

#include "ir/Instructions.h"
#include "noelle/Architecture.h"
#include "runtime/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace noelle;
using nir::CallInst;
using nir::ExecutionEngine;
using nir::Function;
using nir::RuntimeValue;
using nir::ThreadPool;
namespace telemetry = noelle::telemetry;

namespace {

/// Synchronization operations performed by the calling thread inside the
/// current task (ss waits/signals + queue pushes/pops); feeds the
/// performance model.
thread_local uint64_t ThreadSyncOps = 0;

/// Per-logical-task write-log/read-set journal backing speculative
/// DOALL. Speculative task clones route every (non-task-private) load
/// and store through the noelle_spec_* externals; stores are deferred
/// into Pending (byte-granular, read-your-own-writes), and the byte
/// ranges touched are accumulated for the commit-time conflict check.
/// Ranges coalesce with the most recent entry (stride-1 access streams
/// collapse), and are sorted/merged once at validation.
struct SpecJournal {
  /// Deferred writes: final value of every byte this task stored.
  std::unordered_map<uint64_t, uint8_t> Pending;
  /// Byte ranges [lo, hi) read / written, in access order.
  std::vector<std::pair<uint64_t, uint64_t>> Reads;
  std::vector<std::pair<uint64_t, uint64_t>> Writes;

  static void note(std::vector<std::pair<uint64_t, uint64_t>> &V,
                   uint64_t Lo, uint64_t Hi) {
    if (!V.empty() && Lo >= V.back().first && Lo <= V.back().second) {
      if (Hi > V.back().second)
        V.back().second = Hi;
      return;
    }
    V.push_back({Lo, Hi});
  }
};

/// Journal of the speculative task currently executing on this thread
/// (null outside speculative dispatches — the spec externals then
/// degrade to plain memory accesses, so a speculative task body stays
/// executable standalone).
thread_local SpecJournal *CurSpecJournal = nullptr;

/// Reads \p Bytes bytes at \p Addr through the current journal:
/// journaled bytes win over memory (read-your-own-writes), and the
/// range is recorded as read.
void specLoadBytes(uint64_t Addr, unsigned Bytes, uint8_t *Out) {
  SpecJournal *J = CurSpecJournal;
  if (!J) {
    std::memcpy(Out, reinterpret_cast<const void *>(Addr), Bytes);
    return;
  }
  SpecJournal::note(J->Reads, Addr, Addr + Bytes);
  for (unsigned I = 0; I < Bytes; ++I) {
    auto It = J->Pending.find(Addr + I);
    Out[I] = It != J->Pending.end()
                 ? It->second
                 : *reinterpret_cast<const uint8_t *>(Addr + I);
  }
}

/// Defers a store of \p Bytes bytes into the current journal (or writes
/// through when no speculative dispatch is active).
void specStoreBytes(uint64_t Addr, unsigned Bytes, const uint8_t *Src) {
  SpecJournal *J = CurSpecJournal;
  if (!J) {
    std::memcpy(reinterpret_cast<void *>(Addr), Src, Bytes);
    return;
  }
  SpecJournal::note(J->Writes, Addr, Addr + Bytes);
  for (unsigned I = 0; I < Bytes; ++I)
    J->Pending[Addr + I] = Src[I];
}

/// Sorts and merges a journal's range list into disjoint ascending
/// intervals.
std::vector<std::pair<uint64_t, uint64_t>>
normalizeRanges(std::vector<std::pair<uint64_t, uint64_t>> V) {
  std::sort(V.begin(), V.end());
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  for (const auto &R : V) {
    if (!Out.empty() && R.first <= Out.back().second)
      Out.back().second = std::max(Out.back().second, R.second);
    else
      Out.push_back(R);
  }
  return Out;
}

/// True when two disjoint-sorted interval lists share any byte.
bool rangesIntersect(const std::vector<std::pair<uint64_t, uint64_t>> &A,
                     const std::vector<std::pair<uint64_t, uint64_t>> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I].second <= B[J].first)
      ++I;
    else if (B[J].second <= A[I].first)
      ++J;
    else
      return true;
  }
  return false;
}

/// Segment-work accounting: noelle_ss_wait checkpoints the thread's
/// retired-instruction counter; noelle_ss_signal accumulates the delta.
thread_local uint64_t ThreadSegmentWork = 0;
thread_local uint64_t ThreadSegmentCheckpoint = 0;

/// Per-engine memo of prepared task entries, shared by the dispatch
/// externals registered on that engine. A plan whose parallel region
/// sits inside an outer loop dispatches the same task function many
/// times; resolving the decoded form once per plan (instead of once per
/// dispatch) keeps the re-dispatch path free of decode-cache traffic.
/// Guarded by a mutex because nested parallelism can dispatch from
/// several worker threads at once.
struct PrepareMemo {
  std::mutex Lock;
  /// Plan epoch the memo's entries were prepared under. UINT64_MAX marks
  /// a fresh memo so the first dispatch always records the real epoch.
  uint64_t Epoch = UINT64_MAX;
  std::map<Function *, ExecutionEngine::PreparedFunction> Map;

  ExecutionEngine::PreparedFunction resolve(ExecutionEngine &E,
                                            Function *Task) {
    std::lock_guard<std::mutex> G(Lock);
    // Re-transforming the module under a new plan bumps its epoch;
    // cached decoded entries from the old plan may point at replaced or
    // deleted task bodies, so the whole memo is invalid.
    uint64_t Cur = planEpochOf(*Task->getParent());
    if (Cur != Epoch) {
      Map.clear();
      Epoch = Cur;
    }
    auto It = Map.find(Task);
    if (It != Map.end()) {
      telemetry::count(telemetry::Counter::PrepareMemoHit);
      return It->second;
    }
    telemetry::count(telemetry::Counter::PrepareMemoMiss);
    ExecutionEngine::PreparedFunction P = E.prepare(Task);
    Map.emplace(Task, P);
    return P;
  }
};

/// Shared dispatch implementation. Tasks run on the engine's persistent
/// pool; the caller blocks on the batch's completion latch instead of
/// joining freshly spawned threads.
///
/// Grain == 0: static dispatch — one pool job per task, and the pool
/// guarantees every task holds a worker simultaneously (HELIX gates and
/// DSWP queues block across tasks).
///
/// Grain > 0: chunked dynamic scheduling for DOALL — a small set of
/// runner jobs grab chunks of `Grain` consecutive task indices from a
/// shared atomic counter until the index space [0, NumTasks) drains.
/// Tasks must not block on each other in this mode.
///
/// Either way the DispatchRecord is accounted per logical task, exactly
/// as the spawn-per-region runtime did: task t's instruction/sync/
/// segment counts depend only on (env, t, numTasks), so Figure-5 model
/// inputs are byte-identical across scheduling strategies.
/// \p Journals, when non-null, points at NumTasks speculative journals;
/// logical task T runs with Journals[T] installed as the thread's
/// current journal so the noelle_spec_* externals defer its stores.
/// Accounting is unchanged — the misspeculation-free speculative path
/// produces the same DispatchRecord a plain dispatch of the same task
/// would.
void runDispatch(ExecutionEngine &E, PrepareMemo &Memo, Function *Task,
                 uint64_t EnvPtr, int64_t NumTasks, int64_t Grain,
                 SpecJournal *Journals = nullptr) {
  nir::DispatchRecord Rec;
  Rec.TaskName = Task->getName();
  if (NumTasks <= 0) {
    E.recordDispatch(Rec);
    return;
  }
  telemetry::count(Grain <= 0 ? telemetry::Counter::DispatchStatic
                              : telemetry::Counter::DispatchChunked);
  const uint64_t DispatchT0 =
      telemetry::metricsEnabled() ? telemetry::nowNs() : 0;
  size_t N = static_cast<size_t>(NumTasks);
  std::vector<uint64_t> Work(N, 0), Sync(N, 0), Seg(N, 0);

  // Resolve the task function's decoded form once per plan (memoized
  // across dispatches); every task invocation then skips the
  // decode-cache lookup entirely.
  ExecutionEngine::PreparedFunction Prepared = Memo.resolve(E, Task);

  auto RunOne = [&, EnvPtr, NumTasks, Journals](int64_t T) {
    ExecutionEngine::resetThreadRetired();
    ThreadSyncOps = 0;
    ThreadSegmentWork = 0;
    if (Journals)
      CurSpecJournal = &Journals[static_cast<size_t>(T)];
    E.runPrepared(Prepared, {RuntimeValue::ofPtr(EnvPtr),
                             RuntimeValue::ofInt(T),
                             RuntimeValue::ofInt(NumTasks)});
    if (Journals)
      CurSpecJournal = nullptr;
    Work[static_cast<size_t>(T)] = ExecutionEngine::readThreadRetired();
    Sync[static_cast<size_t>(T)] = ThreadSyncOps;
    Seg[static_cast<size_t>(T)] = ThreadSegmentWork;
  };

  // Static dispatches (HELIX workers, DSWP stages) carry few tasks, so a
  // per-task span named after the task function is affordable; chunked
  // DOALL traces at chunk granularity instead (below).
  auto RunOneTraced = [&](int64_t T) {
    if (telemetry::traceEnabled()) {
      uint64_t T0 = telemetry::nowNs();
      RunOne(T);
      telemetry::traceSpan(Task->getName(), T0, telemetry::nowNs(),
                           {"task", T, "tasks", NumTasks});
    } else {
      RunOne(T);
    }
  };

  ThreadPool &Pool = E.getThreadPool();
  std::vector<ThreadPool::Job> Jobs;
  std::atomic<int64_t> NextChunk{0};
  if (Grain <= 0) {
    Jobs.reserve(N);
    for (int64_t T = 0; T < NumTasks; ++T)
      Jobs.push_back([&RunOneTraced, T] { RunOneTraced(T); });
  } else {
    // Runner count: one per host core is enough, since runners never
    // block and each drains chunks until the counter is exhausted. A
    // plan may cap this lower (worker-count hint); absent or
    // non-positive metadata leaves the default untouched.
    int64_t RunnerCap = std::max(1u, Architecture::hostLogicalCores());
    if (const nir::Module *M = Task->getParent();
        M && M->hasModuleMetadata(PlanRunnersKey)) {
      int64_t Hint =
          std::strtoll(M->getModuleMetadata(PlanRunnersKey).c_str(),
                       nullptr, 10);
      if (Hint > 0)
        RunnerCap = Hint;
    }
    int64_t Runners = std::min<int64_t>(NumTasks, RunnerCap);
    Jobs.reserve(static_cast<size_t>(Runners));
    for (int64_t R = 0; R < Runners; ++R)
      Jobs.push_back([&RunOne, &NextChunk, NumTasks, Grain] {
        for (;;) {
          int64_t Base =
              NextChunk.fetch_add(Grain, std::memory_order_relaxed);
          if (Base >= NumTasks)
            break;
          int64_t End = std::min(Base + Grain, NumTasks);
          telemetry::count(telemetry::Counter::DispatchChunks);
          if (telemetry::traceEnabled()) {
            uint64_t T0 = telemetry::nowNs();
            for (int64_t T = Base; T < End; ++T)
              RunOne(T);
            telemetry::traceSpan("doall.chunk", T0, telemetry::nowNs(),
                                 {"base", Base, "end", End});
          } else {
            for (int64_t T = Base; T < End; ++T)
              RunOne(T);
          }
        }
      });
  }
  Pool.run(std::move(Jobs)); // blocks on the completion latch

  if (DispatchT0) {
    uint64_t T1 = telemetry::nowNs();
    telemetry::record(telemetry::Hist::DispatchNs, T1 - DispatchT0);
    telemetry::traceSpan("dispatch", DispatchT0, T1,
                         {"tasks", NumTasks, "grain", Grain});
  }

  Rec.NumTasks = static_cast<uint64_t>(NumTasks);
  for (size_t T = 0; T < Work.size(); ++T) {
    Rec.MaxTaskInstructions = std::max(Rec.MaxTaskInstructions, Work[T]);
    Rec.TotalTaskInstructions += Work[T];
    Rec.MaxTaskSyncOps = std::max(Rec.MaxTaskSyncOps, Sync[T]);
    Rec.TotalTaskSyncOps += Sync[T];
    Rec.TotalSegmentInstructions += Seg[T];
  }
  E.recordDispatch(Rec);
}

/// Spin briefly before parking: gate latencies are usually a few
/// iterations of a peer task, but HELIX must not burn a core per gate
/// when the producer is descheduled.
inline void gateWait(std::atomic<int64_t> *Gate, int64_t Iter) {
  int64_t Cur = Gate->load(std::memory_order_acquire);
  unsigned Spins = 0;
  while (Cur < Iter) {
    if (Spins < 256) {
      ++Spins;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    } else {
#if defined(__cpp_lib_atomic_wait)
      // Park until the gate value changes (futex-backed); signal calls
      // notify_all after every store.
      Gate->wait(Cur, std::memory_order_acquire);
#else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
#endif
    }
    Cur = Gate->load(std::memory_order_acquire);
  }
}

} // namespace

uint64_t noelle::planEpochOf(const nir::Module &M) {
  if (!M.hasModuleMetadata(PlanEpochKey))
    return 0;
  return std::strtoull(M.getModuleMetadata(PlanEpochKey).c_str(), nullptr,
                       10);
}

void noelle::bumpPlanEpoch(nir::Module &M) {
  M.setModuleMetadata(PlanEpochKey, std::to_string(planEpochOf(M) + 1));
}

void noelle::registerParallelRuntime(ExecutionEngine &Engine) {
  // One memo per engine, shared by both dispatch entry points; its
  // lifetime is tied to the registered closures.
  auto Memo = std::make_shared<PrepareMemo>();

  Engine.registerExternal(
      "noelle_dispatch",
      [Memo](ExecutionEngine &E, const CallInst *,
             const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        if (!Task) {
          std::fprintf(stderr, "noelle_dispatch: invalid task pointer\n");
          std::abort();
        }
        runDispatch(E, *Memo, Task, A[1].P, A[2].I, /*Grain=*/0);
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_dispatch_chunked",
      [Memo](ExecutionEngine &E, const CallInst *,
             const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        if (!Task) {
          std::fprintf(stderr,
                       "noelle_dispatch_chunked: invalid task pointer\n");
          std::abort();
        }
        runDispatch(E, *Memo, Task, A[1].P, A[2].I,
                    std::max<int64_t>(A[3].I, 1));
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_dispatch_spec",
      [Memo](ExecutionEngine &E, const CallInst *,
             const std::vector<RuntimeValue> &A) {
        Function *Task = E.decodeFunction(A[0].P);
        Function *Seq = E.decodeFunction(A[1].P);
        if (!Task || !Seq) {
          std::fprintf(stderr,
                       "noelle_dispatch_spec: invalid task pointer\n");
          std::abort();
        }
        uint64_t EnvPtr = A[2].P;
        int64_t NumTasks = A[3].I;
        int64_t Grain = A[4].I;
        if (NumTasks <= 0) {
          nir::DispatchRecord Rec;
          Rec.TaskName = Task->getName();
          E.recordDispatch(Rec);
          return RuntimeValue();
        }

        // Speculative run: every task defers its stores into a private
        // journal, so memory stays pristine until validation passes.
        std::vector<SpecJournal> Journals(static_cast<size_t>(NumTasks));
        runDispatch(E, *Memo, Task, EnvPtr, NumTasks, Grain,
                    Journals.data());

        // Validate: the speculation fails iff any task's written bytes
        // overlap another task's read or written bytes — exactly the
        // loop-carried dependences the plan speculated away manifesting
        // across the task partition.
        const uint64_t ValT0 =
            telemetry::traceEnabled() ? telemetry::nowNs() : 0;
        std::vector<std::vector<std::pair<uint64_t, uint64_t>>> R, W;
        R.reserve(Journals.size());
        W.reserve(Journals.size());
        for (const SpecJournal &J : Journals) {
          R.push_back(normalizeRanges(J.Reads));
          W.push_back(normalizeRanges(J.Writes));
        }
        bool Conflict = false;
        for (size_t I = 0; I < Journals.size() && !Conflict; ++I)
          for (size_t J = I + 1; J < Journals.size() && !Conflict; ++J)
            Conflict = rangesIntersect(W[I], W[J]) ||
                       rangesIntersect(W[I], R[J]) ||
                       rangesIntersect(W[J], R[I]);

        if (!Conflict) {
          // Commit: journals hold disjoint written bytes (no write-write
          // overlap), so replay order across tasks is immaterial.
          for (const SpecJournal &J : Journals)
            for (const auto &KV : J.Pending)
              *reinterpret_cast<uint8_t *>(KV.first) = KV.second;
          telemetry::count(telemetry::Counter::SpecCommits);
          if (ValT0)
            telemetry::traceSpan("spec.commit", ValT0, telemetry::nowNs(),
                                 {"tasks", NumTasks});
          return RuntimeValue();
        }

        // Misspeculate: discard every journal (memory was never touched)
        // and re-execute the region sequentially on this thread via the
        // uninstrumented clone. Output and memory end up byte-identical
        // to a never-parallelized run.
        telemetry::count(telemetry::Counter::SpecMisspeculations);
        if (ValT0)
          telemetry::traceSpan("spec.rollback", ValT0, telemetry::nowNs(),
                               {"tasks", NumTasks});
        Journals.clear();
        E.runFunction(Seq, {RuntimeValue::ofPtr(EnvPtr),
                            RuntimeValue::ofInt(0),
                            RuntimeValue::ofInt(1)});
        return RuntimeValue();
      });

  // Typed speculative memory accessors. Width/extension semantics match
  // the interpreter's raw Ld/St opcodes exactly (i8 zero-extends, i32
  // sign-extends), so an instrumented task computes the same values its
  // uninstrumented original would.
  Engine.registerExternal(
      "noelle_spec_load_i8",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B;
        specLoadBytes(A[0].P, 1, &B);
        return RuntimeValue::ofInt(static_cast<int64_t>(B));
      });
  Engine.registerExternal(
      "noelle_spec_load_i32",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B[4];
        specLoadBytes(A[0].P, 4, B);
        int32_t V;
        std::memcpy(&V, B, 4);
        return RuntimeValue::ofInt(static_cast<int64_t>(V));
      });
  Engine.registerExternal(
      "noelle_spec_load_i64",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B[8];
        specLoadBytes(A[0].P, 8, B);
        int64_t V;
        std::memcpy(&V, B, 8);
        return RuntimeValue::ofInt(V);
      });
  Engine.registerExternal(
      "noelle_spec_load_f64",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B[8];
        specLoadBytes(A[0].P, 8, B);
        double V;
        std::memcpy(&V, B, 8);
        return RuntimeValue::ofFloat(V);
      });
  Engine.registerExternal(
      "noelle_spec_store_i8",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B = static_cast<uint8_t>(A[1].I);
        specStoreBytes(A[0].P, 1, &B);
        return RuntimeValue();
      });
  Engine.registerExternal(
      "noelle_spec_store_i32",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        int32_t V = static_cast<int32_t>(A[1].I);
        uint8_t B[4];
        std::memcpy(B, &V, 4);
        specStoreBytes(A[0].P, 4, B);
        return RuntimeValue();
      });
  Engine.registerExternal(
      "noelle_spec_store_i64",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B[8];
        std::memcpy(B, &A[1].I, 8);
        specStoreBytes(A[0].P, 8, B);
        return RuntimeValue();
      });
  Engine.registerExternal(
      "noelle_spec_store_f64",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        uint8_t B[8];
        std::memcpy(B, &A[1].F, 8);
        specStoreBytes(A[0].P, 8, B);
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_create",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        int64_t Count = A[0].I;
        uint64_t Addr =
            E.heapAlloc(static_cast<uint64_t>(Count) * sizeof(int64_t));
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(Addr);
        for (int64_t I = 0; I < Count; ++I)
          Gates[I].store(0, std::memory_order_relaxed);
        return RuntimeValue::ofPtr(Addr);
      });

  Engine.registerExternal(
      "noelle_ss_wait",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        ++ThreadSyncOps;
        ThreadSegmentCheckpoint = ExecutionEngine::readThreadRetired();
        // Stall time is only measured when the gate is not already open,
        // so the common fast path stays a single acquire load.
        if (telemetry::metricsEnabled() &&
            Gates[SS].load(std::memory_order_acquire) < Iter) {
          uint64_t T0 = telemetry::nowNs();
          gateWait(&Gates[SS], Iter);
          uint64_t T1 = telemetry::nowNs();
          telemetry::count(telemetry::Counter::SSWaitStalled);
          telemetry::record(telemetry::Hist::SSWaitStallNs, T1 - T0);
          telemetry::traceSpan("helix.ss_stall", T0, T1,
                               {"ss", SS, "iter", Iter});
        } else {
          telemetry::count(telemetry::Counter::SSWaitFast);
          gateWait(&Gates[SS], Iter);
        }
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_ss_signal",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        auto *Gates = reinterpret_cast<std::atomic<int64_t> *>(A[0].P);
        int64_t SS = A[1].I;
        int64_t Iter = A[2].I;
        Gates[SS].store(Iter + 1, std::memory_order_release);
#if defined(__cpp_lib_atomic_wait)
        Gates[SS].notify_all();
#endif
        ThreadSegmentWork +=
            ExecutionEngine::readThreadRetired() - ThreadSegmentCheckpoint;
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_create",
      [](ExecutionEngine &E, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        nir::BlockingQueue *Q = E.getQueueRegistry().create(
            static_cast<size_t>(std::max<int64_t>(A[0].I, 1)));
        return RuntimeValue::ofPtr(reinterpret_cast<uint64_t>(Q));
      });

  Engine.registerExternal(
      "noelle_queue_push",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        telemetry::count(telemetry::Counter::QueuePush);
        auto *Q = reinterpret_cast<nir::BlockingQueue *>(A[0].P);
        if (telemetry::traceEnabled()) {
          uint64_t T0 = telemetry::nowNs();
          Q->push(A[1].I);
          telemetry::traceSpan("dswp.queue_push", T0, telemetry::nowNs());
        } else {
          Q->push(A[1].I);
        }
        return RuntimeValue();
      });

  Engine.registerExternal(
      "noelle_queue_pop",
      [](ExecutionEngine &, const CallInst *,
         const std::vector<RuntimeValue> &A) {
        ++ThreadSyncOps;
        telemetry::count(telemetry::Counter::QueuePop);
        auto *Q = reinterpret_cast<nir::BlockingQueue *>(A[0].P);
        if (telemetry::traceEnabled()) {
          uint64_t T0 = telemetry::nowNs();
          int64_t V = Q->pop();
          telemetry::traceSpan("dswp.queue_pop", T0, telemetry::nowNs());
          return RuntimeValue::ofInt(V);
        }
        return RuntimeValue::ofInt(Q->pop());
      });
}

void noelle::declareParallelRuntime(nir::Module &M) {
  nir::Context &Ctx = M.getContext();
  auto Declare = [&](const char *Name, nir::Type *Ret,
                     std::vector<nir::Type *> Params) {
    if (M.getFunction(Name))
      return;
    M.createFunction(Ctx.getFunctionTy(Ret, Params), Name);
  };
  nir::Type *V = Ctx.getVoidTy();
  nir::Type *I = Ctx.getInt64Ty();
  nir::Type *P = Ctx.getPtrTy();
  nir::Type *D = Ctx.getDoubleTy();
  Declare("noelle_dispatch", V, {P, P, I});
  Declare("noelle_dispatch_chunked", V, {P, P, I, I});
  Declare("noelle_dispatch_spec", V, {P, P, P, I, I});
  Declare("noelle_spec_load_i8", I, {P});
  Declare("noelle_spec_load_i32", I, {P});
  Declare("noelle_spec_load_i64", I, {P});
  Declare("noelle_spec_load_f64", D, {P});
  Declare("noelle_spec_store_i8", V, {P, I});
  Declare("noelle_spec_store_i32", V, {P, I});
  Declare("noelle_spec_store_i64", V, {P, I});
  Declare("noelle_spec_store_f64", V, {P, D});
  Declare("noelle_ss_create", P, {I});
  Declare("noelle_ss_wait", V, {P, I, I});
  Declare("noelle_ss_signal", V, {P, I, I});
  Declare("noelle_queue_create", P, {I});
  Declare("noelle_queue_push", V, {P, I});
  Declare("noelle_queue_pop", I, {P});
}
