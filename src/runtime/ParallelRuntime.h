//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel runtime backing NOELLE's parallelizers: task dispatch
/// onto the engine's persistent work-stealing thread pool (DOALL/HELIX/
/// DSWP), HELIX sequential-segment synchronization, and DSWP inter-core
/// queues. Transformed IR calls these as external functions;
/// registerParallelRuntime installs them into an ExecutionEngine.
///
/// IR-visible API (all i64/ptr):
///   noelle_dispatch(ptr task, ptr env, i64 numTasks) -> void
///       Runs task(env, t, numTasks) for t in [0, numTasks), one pool
///       worker per task (tasks may block on each other), and returns
///       once all complete. Workers persist across dispatches.
///   noelle_dispatch_chunked(ptr task, ptr env, i64 numTasks,
///                           i64 grain) -> void
///       DOALL's dynamically scheduled form: pool runners grab chunks of
///       `grain` consecutive task indices from a shared atomic counter
///       and run task(env, t, numTasks) for each. Tasks must not block
///       on one another. Per-task DispatchRecord accounting is identical
///       to noelle_dispatch.
///   noelle_dispatch_spec(ptr task, ptr seq, ptr env, i64 numTasks,
///                        i64 grain) -> void
///       Speculative DOALL dispatch. Runs task(env, t, numTasks) like
///       noelle_dispatch_chunked, but each logical task defers its
///       stores into a private write-log journal (the task body routes
///       memory accesses through the noelle_spec_* accessors below) and
///       records the byte ranges it read/wrote. At the join the runtime
///       validates the speculation: if no task's written bytes overlap
///       another task's read or written bytes, the journals commit and
///       execution is indistinguishable from a legal DOALL; otherwise
///       all journals are discarded (memory was never touched) and the
///       region re-executes sequentially via seq(env, 0, 1), the
///       uninstrumented clone — output byte-identical to a
///       never-parallelized run. grain <= 0 selects static dispatch.
///   noelle_spec_load_i8/i32/i64/f64(ptr) -> i64/f64
///   noelle_spec_store_i8/i32/i64/f64(ptr, v) -> void
///       Journal-aware memory accessors used inside speculative tasks;
///       width and extension semantics match the raw Ld/St opcodes (i8
///       zero-extends, i32 sign-extends). Loads see the task's own
///       deferred writes; outside a speculative dispatch they degrade
///       to plain memory accesses.
///   noelle_ss_create(i64 count) -> ptr
///       Allocates `count` sequential-segment gates, all at iteration 0.
///   noelle_ss_wait(ptr gates, i64 ss, i64 iteration) -> void
///       Blocks until gate `ss` reaches `iteration` (bounded spin, then
///       futex-style parking; never burns a core unboundedly).
///   noelle_ss_signal(ptr gates, i64 ss, i64 iteration) -> void
///       Marks gate `ss` as having completed `iteration` (sets it to
///       iteration + 1) and wakes parked waiters.
///   noelle_queue_create(i64 capacity) -> ptr
///       Queue handles are owned by the engine's QueueRegistry and die
///       with the engine.
///   noelle_queue_push(ptr q, i64 v) -> void   (blocking)
///   noelle_queue_pop(ptr q) -> i64            (blocking)
///
//===----------------------------------------------------------------------===//

#ifndef RUNTIME_PARALLELRUNTIME_H
#define RUNTIME_PARALLELRUNTIME_H

#include "interp/Interpreter.h"

namespace noelle {

/// Module string-metadata key holding the monotonically increasing plan
/// epoch. Every successful technique apply() bumps it; the runtime's
/// prepared-task memo compares epochs on each dispatch and drops its
/// cached decoded entries on mismatch, so re-transforming a module under
/// a new plan never executes stale task bodies.
inline constexpr const char *PlanEpochKey = "noelle.plan.epoch";

/// Optional module string metadata capping the number of chunked-
/// dispatch runner jobs (a planner worker-count hint). Absent or
/// non-positive, runners default to one per host logical core —
/// identical to the pre-planner behavior, including DispatchRecords.
inline constexpr const char *PlanRunnersKey = "noelle.plan.runners";

/// Current plan epoch of \p M (0 when the module was never transformed).
uint64_t planEpochOf(const nir::Module &M);

/// Advances \p M's plan epoch. Called by every technique apply() that
/// mutates the module; module metadata does not feed the content hash,
/// so bumping never invalidates the PDG cache or an embedded plan.
void bumpPlanEpoch(nir::Module &M);

/// Installs the parallel-runtime externals into \p Engine. Must be
/// called before running a module transformed by DOALL/HELIX/DSWP.
void registerParallelRuntime(nir::ExecutionEngine &Engine);

/// Declares the runtime functions in \p M (no-ops when already
/// declared) so transformed code can call them.
void declareParallelRuntime(nir::Module &M);

} // namespace noelle

#endif // RUNTIME_PARALLELRUNTIME_H
