#include "runtime/ThreadPool.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace nir;
namespace telemetry = noelle::telemetry;

/// Completion latch for one batch. Heap-allocated and shared with every
/// wrapped job so a worker finishing the last job can never touch a
/// latch the waiter has already destroyed.
struct ThreadPool::Latch {
  explicit Latch(size_t N) : Count(N) {}

  void countDown() {
    if (Count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> Lock(M);
      CV.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Count.load(std::memory_order_acquire) == 0; });
  }

  std::atomic<size_t> Count;
  std::mutex M;
  std::condition_variable CV;
};

ThreadPool::ThreadPool() : Workers(MaxWorkers) {
  Threads.reserve(64);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    ShuttingDown = true;
  }
  WorkCV.notify_all();
  for (auto &T : Threads)
    T.join();
}

void ThreadPool::ensureWorkers(unsigned Target) {
  Target = std::min(Target, MaxWorkers);
  unsigned Cur = NumWorkers.load(std::memory_order_relaxed);
  while (Cur < Target) {
    Workers[Cur] = std::make_unique<Worker>();
    Threads.emplace_back(&ThreadPool::workerLoop, this, Cur);
    ThreadsCreated.fetch_add(1, std::memory_order_relaxed);
    ++Cur;
    // Publish the slot before the count so lock-free readers of
    // NumWorkers always see an initialized Worker.
    NumWorkers.store(Cur, std::memory_order_release);
  }
  telemetry::gaugeSet(telemetry::Gauge::PoolWorkers, Cur);
}

bool ThreadPool::tryTake(unsigned Self, Job &Out) {
  unsigned N = NumWorkers.load(std::memory_order_acquire);
  if (N == 0)
    return false;
  // Own deque first (front: most recently assigned batch order), then
  // steal from the back of the others.
  for (unsigned K = 0; K < N; ++K) {
    unsigned I = (Self + K) % N;
    Worker &W = *Workers[I];
    std::lock_guard<std::mutex> Lock(W.M);
    if (W.Jobs.empty())
      continue;
    if (I == Self) {
      Out = std::move(W.Jobs.front());
      W.Jobs.pop_front();
    } else {
      Out = std::move(W.Jobs.back());
      W.Jobs.pop_back();
      telemetry::count(telemetry::Counter::PoolSteals);
    }
    uint64_t Prev = QueuedJobs.fetch_sub(1, std::memory_order_relaxed);
    telemetry::gaugeSet(telemetry::Gauge::PoolQueueDepth,
                        static_cast<int64_t>(Prev) - 1);
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  for (;;) {
    Job J;
    if (tryTake(Index, J)) {
      telemetry::count(telemetry::Counter::PoolTasksRun);
      if (telemetry::traceEnabled()) {
        uint64_t T0 = telemetry::nowNs();
        J();
        telemetry::traceSpan("pool.task", T0, telemetry::nowNs());
      } else {
        J();
      }
      continue;
    }
    std::unique_lock<std::mutex> Lock(PoolMutex);
    if (ShuttingDown)
      return;
    if (QueuedJobs.load(std::memory_order_relaxed) > 0)
      continue; // Raced with a producer; rescan the deques.
    telemetry::count(telemetry::Counter::PoolParks);
    WorkCV.wait(Lock, [&] {
      return ShuttingDown ||
             QueuedJobs.load(std::memory_order_relaxed) > 0;
    });
    telemetry::count(telemetry::Counter::PoolUnparks);
    if (ShuttingDown)
      return;
  }
}

void ThreadPool::run(std::vector<Job> Jobs) {
  if (Jobs.empty())
    return;
  size_t N = Jobs.size();
  BatchesRun.fetch_add(1, std::memory_order_relaxed);

  // Grow the pool to cover every simultaneously outstanding job (see the
  // forward-progress guarantee in the header).
  uint64_t NowOutstanding =
      OutstandingJobs.fetch_add(N, std::memory_order_acq_rel) + N;
  if (NowOutstanding > MaxWorkers) {
    std::fprintf(stderr,
                 "ThreadPool: %llu outstanding blocking jobs exceed the "
                 "%u-worker cap\n",
                 static_cast<unsigned long long>(NowOutstanding), MaxWorkers);
    std::abort();
  }
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    ensureWorkers(static_cast<unsigned>(NowOutstanding));
  }

  auto L = std::make_shared<Latch>(N);
  // Enqueue-time stamp per job feeds the dispatch-to-start latency
  // histogram; zero (telemetry off) skips both clock reads.
  const bool Stamp = telemetry::metricsEnabled();
  std::vector<Job> Wrapped;
  Wrapped.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Wrapped.push_back([this, L, EnqNs = Stamp ? telemetry::nowNs() : 0,
                       J = std::move(Jobs[I])]() mutable {
      if (EnqNs)
        telemetry::record(telemetry::Hist::DispatchToStartNs,
                          telemetry::nowNs() - EnqNs);
      J();
      OutstandingJobs.fetch_sub(1, std::memory_order_acq_rel);
      L->countDown();
    });
  enqueue(std::move(Wrapped));

  L->wait();
}

void ThreadPool::enqueue(std::vector<Job> &&Wrapped) {
  size_t N = Wrapped.size();
  unsigned NW = NumWorkers.load(std::memory_order_acquire);
  unsigned Cursor = PushCursor.fetch_add(static_cast<unsigned>(N),
                                         std::memory_order_relaxed);
  for (size_t I = 0; I < N; ++I) {
    Worker &W = *Workers[(Cursor + I) % NW];
    {
      std::lock_guard<std::mutex> Lock(W.M);
      W.Jobs.push_back(std::move(Wrapped[I]));
    }
    uint64_t Now = QueuedJobs.fetch_add(1, std::memory_order_release) + 1;
    telemetry::gaugeSet(telemetry::Gauge::PoolQueueDepth,
                        static_cast<int64_t>(Now));
  }
  {
    // Pair with the idle-wait predicate so no worker misses the wakeup.
    std::lock_guard<std::mutex> Lock(PoolMutex);
  }
  WorkCV.notify_all();
}

void ThreadPool::runIndependent(std::vector<Job> Jobs, unsigned Parallelism) {
  if (Jobs.empty())
    return;
  size_t N = Jobs.size();
  BatchesRun.fetch_add(1, std::memory_order_relaxed);

  // Size the pool to the machine, not to the batch: independent jobs
  // never block, so Parallelism workers drain any backlog. Reserve slack
  // for blocking jobs already outstanding (they may be parked on queues
  // and must keep their workers).
  unsigned Want = Parallelism ? Parallelism : std::thread::hardware_concurrency();
  Want = std::max(1u, std::min<unsigned>(Want, static_cast<unsigned>(N)));
  uint64_t Blocking = OutstandingJobs.load(std::memory_order_acquire);
  unsigned Target = static_cast<unsigned>(
      std::min<uint64_t>(Blocking + Want, MaxWorkers));
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    ensureWorkers(Target);
  }

  auto L = std::make_shared<Latch>(N);
  const bool Stamp = telemetry::metricsEnabled();
  std::vector<Job> Wrapped;
  Wrapped.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Wrapped.push_back([L, EnqNs = Stamp ? telemetry::nowNs() : 0,
                       J = std::move(Jobs[I])]() mutable {
      if (EnqNs)
        telemetry::record(telemetry::Hist::DispatchToStartNs,
                          telemetry::nowNs() - EnqNs);
      J();
      L->countDown();
    });
  enqueue(std::move(Wrapped));

  L->wait();
}

ThreadPool &nir::analysisThreadPool() {
  static ThreadPool Pool;
  return Pool;
}
