//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent runtime primitives owned by an ExecutionEngine: a
/// work-stealing thread pool that keeps workers alive across parallel
/// region invocations (so noelle_dispatch pays an enqueue + latch wait
/// instead of a thread create/join per region), the blocking queue used
/// as DSWP's inter-core channel, and the per-engine registry that owns
/// queue objects for the engine's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef RUNTIME_THREADPOOL_H
#define RUNTIME_THREADPOOL_H

#include "telemetry/Telemetry.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nir {

/// A pool of long-lived worker threads with one task deque per worker
/// and work stealing between them.
///
/// Forward-progress guarantee: jobs submitted through run() may block on
/// each other indefinitely (HELIX sequential-segment gates, DSWP queue
/// pops), so the pool grows its worker count to cover the peak number of
/// simultaneously outstanding jobs. Every job therefore eventually holds
/// a worker even when all other jobs are blocked. Workers are never
/// retired before the pool is destroyed, so repeated dispatches of the
/// same width create no threads after the first ("warm-up") dispatch.
class ThreadPool {
public:
  using Job = std::function<void()>;

  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs every job to completion and blocks the caller on a completion
  /// latch. Safe to call from a worker thread (nested batches are
  /// covered by the forward-progress guarantee above).
  void run(std::vector<Job> Jobs);

  /// Analysis-side submission API: runs jobs that never block on each
  /// other (pure fork/join work such as per-function PDG construction).
  /// Unlike run(), the pool grows only to \p Parallelism workers (0 =
  /// hardware concurrency), not to one worker per job, so a module with
  /// hundreds of functions does not spawn hundreds of threads. Jobs must
  /// not wait on other jobs of the same batch and must not be submitted
  /// from inside a pool worker.
  void runIndependent(std::vector<Job> Jobs, unsigned Parallelism = 0);

  /// Worker threads currently alive.
  unsigned getWorkerCount() const {
    return NumWorkers.load(std::memory_order_acquire);
  }
  /// Monotonic count of threads ever created; stable across repeated
  /// dispatches after warm-up (the reuse tests assert on this).
  uint64_t getThreadsCreated() const {
    return ThreadsCreated.load(std::memory_order_relaxed);
  }
  /// Number of run() batches dispatched so far.
  uint64_t getBatchesRun() const {
    return BatchesRun.load(std::memory_order_relaxed);
  }

  /// Hard cap on workers. The spawn-per-region runtime this pool
  /// replaces created NumTasks threads per dispatch, so any dispatch
  /// shape it survived fits far below this bound.
  static constexpr unsigned MaxWorkers = 1024;

private:
  struct Worker {
    std::mutex M;
    std::deque<Job> Jobs;
  };
  struct Latch;

  void workerLoop(unsigned Index);
  bool tryTake(unsigned Self, Job &Out);
  /// Grows the pool to \p Target workers. Caller holds PoolMutex.
  void ensureWorkers(unsigned Target);
  /// Enqueues pre-wrapped jobs round-robin and wakes the workers.
  void enqueue(std::vector<Job> &&Wrapped);

  /// Fixed-capacity slot table so workers can index it without locking
  /// while ensureWorkers publishes new slots (slot first, then count
  /// with release ordering).
  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> NumWorkers{0};
  std::atomic<uint64_t> ThreadsCreated{0};
  std::atomic<uint64_t> BatchesRun{0};
  /// Jobs enqueued or running across all batches; drives pool growth.
  std::atomic<uint64_t> OutstandingJobs{0};
  /// Jobs sitting in deques (not yet taken); the idle-wait predicate.
  std::atomic<uint64_t> QueuedJobs{0};
  /// Round-robin placement cursor for new batches.
  std::atomic<unsigned> PushCursor{0};
  std::mutex PoolMutex;
  std::condition_variable WorkCV;
  bool ShuttingDown = false;
};

/// The process-wide pool shared by compile-time analyses (parallel PDG
/// construction). Distinct from the per-engine runtime pools: analysis
/// jobs are pure fork/join work submitted through runIndependent(), so
/// one shared pool sized to the machine is the right lifetime.
ThreadPool &analysisThreadPool();

/// A bounded blocking queue carrying 64-bit payloads (DSWP's inter-core
/// channel). Handles are stable heap pointers owned by a QueueRegistry
/// so IR code can hold them as opaque ptr values.
class BlockingQueue {
public:
  explicit BlockingQueue(size_t Capacity) : Capacity(Capacity) {}

  void push(int64_t V) {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Items.size() < Capacity; });
    Items.push_back(V);
    // Occupancy sampled under the queue lock: the size after a push (and
    // before a pop) is the channel's instantaneous depth.
    noelle::telemetry::record(noelle::telemetry::Hist::QueueOccupancy,
                              Items.size());
    NotEmpty.notify_one();
  }

  int64_t pop() {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return !Items.empty(); });
    noelle::telemetry::record(noelle::telemetry::Hist::QueueOccupancy,
                              Items.size());
    int64_t V = Items.front();
    Items.pop_front();
    NotFull.notify_one();
    return V;
  }

private:
  size_t Capacity;
  std::mutex M;
  std::condition_variable NotFull, NotEmpty;
  std::deque<int64_t> Items;
};

/// Owns the queues created by one engine's parallel runtime; destroyed
/// with the engine so queues no longer leak across engine instances.
class QueueRegistry {
public:
  BlockingQueue *create(size_t Capacity) {
    std::lock_guard<std::mutex> Lock(M);
    Queues.push_back(std::make_unique<BlockingQueue>(Capacity));
    return Queues.back().get();
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Queues.size();
  }

private:
  mutable std::mutex M;
  std::vector<std::unique_ptr<BlockingQueue>> Queues;
};

} // namespace nir

#endif // RUNTIME_THREADPOOL_H
