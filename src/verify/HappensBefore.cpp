#include "verify/HappensBefore.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "noelle/DataFlow.h"
#include "verify/CheckMetadata.h"

#include <algorithm>
#include <cassert>

using namespace noelle;
using namespace noelle::verify;
using nir::BasicBlock;
using nir::BitVector;
using nir::CallInst;
using nir::Function;
using nir::Instruction;

namespace {

std::string calleeName(const Instruction *I) {
  const auto *Call = nir::dyn_cast<CallInst>(I);
  if (!Call || !Call->getCalledFunction())
    return "";
  return Call->getCalledFunction()->getName();
}

bool isQueueCall(const Instruction *I) {
  std::string N = calleeName(I);
  return N == "noelle_queue_push" || N == "noelle_queue_pop";
}

bool isSyncCall(const Instruction *I) {
  std::string N = calleeName(I);
  return N == "noelle_queue_push" || N == "noelle_queue_pop" ||
         N == "noelle_ss_wait" || N == "noelle_ss_signal";
}

} // namespace

const char *noelle::verify::hbRuleName(HBRule R) {
  switch (R) {
  case HBRule::None:
    return "none";
  case HBRule::QueueHB:
    return "queue-hb";
  case HBRule::MultiQueueJoin:
    return "multi-queue-join";
  case HBRule::LoopPhase:
    return "loop-phase";
  case HBRule::SegmentOrder:
    return "segment-order";
  case HBRule::CrossSegment:
    return "cross-segment";
  }
  return "none";
}

/// Lazily built per-task analysis state. Everything keys off the task
/// function, which is unique per TaskInfo.
struct HappensBeforeEngine::TaskState {
  const TaskInfo *T = nullptr;

  std::unique_ptr<nir::DominatorTree> DT;
  std::unique_ptr<nir::LoopInfo> LI;
  std::map<const BasicBlock *, uint64_t> PhaseKeys;
  bool LoopsBuilt = false;

  /// Forward all-paths "completed sync events" dataflow: IN(I) holds the
  /// bit of every queue/gate call guaranteed executed on each path from
  /// entry to I.
  std::unique_ptr<DataFlowResult> Completed;
  std::map<const Instruction *, unsigned> EventIdx;
  bool CompletedBuilt = false;

  std::map<const Instruction *, BitVector> Held;
  BitVector Leaked;
  bool HeldBuilt = false;

  std::map<const BasicBlock *, std::set<const BasicBlock *>> ReachCache;

  nir::DominatorTree &domTree() {
    if (!DT)
      DT = std::make_unique<nir::DominatorTree>(*T->Fn);
    return *DT;
  }

  void buildLoops() {
    if (LoopsBuilt)
      return;
    LoopsBuilt = true;
    LI = std::make_unique<nir::LoopInfo>(*T->Fn, domTree());
    PhaseKeys = computeLoopPhaseKeys(*T->Fn);
  }

  void buildCompleted() {
    if (CompletedBuilt)
      return;
    CompletedBuilt = true;
    DataFlowProblem P;
    P.Forward = true;
    P.MeetIsUnion = false;
    P.BoundaryAllOnes = false;
    for (const auto &BB : T->Fn->getBlocks())
      for (const auto &IPtr : BB->getInstList())
        if (isSyncCall(IPtr.get())) {
          EventIdx[IPtr.get()] = static_cast<unsigned>(P.Universe.size());
          P.Universe.push_back(IPtr.get());
        }
    if (P.Universe.empty())
      return;
    P.Transfer = [this](const Instruction *I, const DataFlowResult &R,
                        BitVector &Gen, BitVector &Kill) {
      (void)Kill;
      if (EventIdx.count(I))
        Gen.set(R.indexOf(I));
    };
    Completed = DataFlowEngine().solve(*T->Fn, P);
  }

  void buildHeld() {
    if (HeldBuilt)
      return;
    HeldBuilt = true;
    Held = computeGuaranteedSegments(*T);
    unsigned NumSegs = std::max(1u, T->NumSegments);
    Leaked = BitVector(NumSegs);
    buildLoops();
    // Segment-protocol leak check: a segment still held at a loop latch
    // or a return means some path re-enters the wait (or leaves the
    // task) without the matching signal — the gate protocol is broken
    // and that segment orders nothing.
    auto NoteLeaks = [&](const Instruction *At) {
      auto It = Held.find(At);
      if (It == Held.end())
        return;
      for (unsigned S = 0; S < It->second.size() && S < NumSegs; ++S)
        if (It->second.test(S))
          Leaked.set(S);
    };
    for (nir::LoopStructure *L : LI->getLoopsInPreorder())
      for (BasicBlock *Latch : L->getLatches())
        if (Instruction *Term = Latch->getTerminator())
          NoteLeaks(Term);
    for (const auto &BB : T->Fn->getBlocks())
      if (Instruction *Term = BB->getTerminator())
        if (nir::dyn_cast<nir::RetInst>(Term))
          NoteLeaks(Term);
  }
};

/// Region-wide push/pop site lists for one queue.
struct HappensBeforeEngine::QueueSites {
  std::vector<std::pair<const TaskInfo *, const TaskInfo::QueueOp *>> Pushes;
  std::vector<std::pair<const TaskInfo *, const TaskInfo::QueueOp *>> Pops;
  /// Number of distinct tasks pushing this queue.
  unsigned producerTasks() const {
    std::set<const TaskInfo *> S;
    for (const auto &P : Pushes)
      S.insert(P.first);
    return static_cast<unsigned>(S.size());
  }
};

HappensBeforeEngine::HappensBeforeEngine(const ParallelRegion &R,
                                         const PDGDependenceSummary *Deps,
                                         Config C)
    : R(R), Deps(Deps), Cfg(C) {}

HappensBeforeEngine::~HappensBeforeEngine() = default;

HappensBeforeEngine::TaskState &
HappensBeforeEngine::stateFor(const TaskInfo &T) {
  auto It = States.find(&T);
  if (It == States.end()) {
    auto TS = std::make_unique<TaskState>();
    TS->T = &T;
    It = States.emplace(&T, std::move(TS)).first;
  }
  return *It->second;
}

const std::map<unsigned, HappensBeforeEngine::QueueSites> &
HappensBeforeEngine::queueSites() {
  if (Queues)
    return *Queues;
  Queues = std::make_unique<std::map<unsigned, QueueSites>>();
  std::set<const Instruction *> Attributed;
  for (const TaskInfo &T : R.Tasks)
    for (const TaskInfo::QueueOp &Op : T.QueueOps) {
      Attributed.insert(Op.Call);
      auto &QS = (*Queues)[Op.Queue];
      if (Op.IsPush)
        QS.Pushes.push_back({&T, &Op});
      else
        QS.Pops.push_back({&T, &Op});
    }
  // A queue call the model cannot attribute to a queue (no provenance
  // metadata) could push or pop anything; queue-based ordering would be
  // unsound, so its presence disables the rules for the whole region.
  for (const TaskInfo &T : R.Tasks)
    for (const auto &BB : T.Fn->getBlocks())
      for (const auto &IPtr : BB->getInstList())
        if (isQueueCall(IPtr.get()) && !Attributed.count(IPtr.get()))
          UnknownQueueOps = true;
  return *Queues;
}

bool HappensBeforeEngine::mayFollow(const Instruction *Earlier,
                                    const Instruction *Later, TaskState &TS) {
  const BasicBlock *EB = Earlier->getParent();
  const BasicBlock *LB = Later->getParent();
  auto ReachIt = TS.ReachCache.find(EB);
  if (ReachIt == TS.ReachCache.end()) {
    std::set<const BasicBlock *> Seen;
    std::vector<const BasicBlock *> Work;
    for (BasicBlock *S : EB->successors())
      if (Seen.insert(S).second)
        Work.push_back(S);
    while (!Work.empty()) {
      const BasicBlock *Cur = Work.back();
      Work.pop_back();
      for (BasicBlock *S : Cur->successors())
        if (Seen.insert(S).second)
          Work.push_back(S);
    }
    ReachIt = TS.ReachCache.emplace(EB, std::move(Seen)).first;
  }
  const auto &Reach = ReachIt->second;
  if (EB != LB)
    return Reach.count(LB) != 0;
  if (Reach.count(EB))
    return true; // block inside a cycle: any relative order recurs
  for (const auto &IPtr : EB->getInstList()) {
    if (IPtr.get() == Earlier)
      return true;
    if (IPtr.get() == Later)
      return false;
  }
  return true; // unreachable: neither found
}

bool HappensBeforeEngine::completedBefore(const Instruction *Ev,
                                          const Instruction *At,
                                          TaskState &TS) {
  if (!Cfg.FlowSensitive)
    return TS.domTree().dominates(Ev, At);
  TS.buildCompleted();
  auto It = TS.EventIdx.find(Ev);
  if (!TS.Completed || It == TS.EventIdx.end())
    return false;
  return TS.Completed->in(At).test(It->second);
}

HBRule HappensBeforeEngine::orderedCrossTask(const Instruction *A,
                                             const TaskInfo &TA,
                                             const Instruction *B,
                                             const TaskInfo &TB) {
  if (R.selfConcurrent() || &TA == &TB)
    return HBRule::None;
  if (HBRule Rl = queueOrdered(A, TA, B, TB); Rl != HBRule::None)
    return Rl;
  if (HBRule Rl = queueOrdered(B, TB, A, TA); Rl != HBRule::None)
    return Rl;
  if (loopPhaseOrdered(A, TA, B, TB) || loopPhaseOrdered(B, TB, A, TA))
    return HBRule::LoopPhase;
  return HBRule::None;
}

/// One direction of the queue rule: find a pop in Post's task that is
/// guaranteed complete before Post and transitively ordered after every
/// execution of Pre. The fact base starts from push sites in Pre's task
/// that can never follow Pre, covers a queue once every one of its push
/// sites region-wide is in the base (so any pop return implies all
/// producers passed Pre), and — with joins enabled — extends the base
/// through pops of covered queues into downstream producers.
HBRule HappensBeforeEngine::queueOrdered(const Instruction *Pre,
                                         const TaskInfo &PreT,
                                         const Instruction *Post,
                                         const TaskInfo &PostT) {
  if (!Cfg.QueueHB)
    return HBRule::None;
  const auto &QS = queueSites();
  if (UnknownQueueOps || QS.empty())
    return HBRule::None;

  TaskState &PreTS = stateFor(PreT);
  std::set<const TaskInfo::QueueOp *> Seed;
  for (const auto &Entry : QS)
    for (const auto &P : Entry.second.Pushes)
      if (P.first == &PreT && !mayFollow(P.second->Call, Pre, PreTS))
        Seed.insert(P.second);

  auto Discharges = [&](bool Join) -> bool {
    std::set<const TaskInfo::QueueOp *> Before = Seed;
    std::set<unsigned> Covered;
    std::vector<std::pair<const TaskInfo *, const CallInst *>> Acquired;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &Entry : QS) {
        if (Covered.count(Entry.first) || Entry.second.Pushes.empty())
          continue;
        if (!Join && Entry.second.producerTasks() > 1)
          continue; // legacy slice: single-producer queues only
        bool All = true;
        for (const auto &P : Entry.second.Pushes)
          if (!Before.count(P.second)) {
            All = false;
            break;
          }
        if (!All)
          continue;
        Covered.insert(Entry.first);
        for (const auto &O : Entry.second.Pops)
          Acquired.push_back({O.first, O.second->Call});
        Changed = true;
      }
      if (!Join)
        break; // no transitive extension without joins
      for (const auto &Entry : QS)
        for (const auto &P : Entry.second.Pushes) {
          if (Before.count(P.second))
            continue;
          for (const auto &Acq : Acquired)
            if (Acq.first == P.first &&
                completedBefore(Acq.second, P.second->Call,
                                stateFor(*P.first))) {
              Before.insert(P.second);
              Changed = true;
              break;
            }
        }
    }
    TaskState &PostTS = stateFor(PostT);
    for (const auto &Acq : Acquired)
      if (Acq.first == &PostT && completedBefore(Acq.second, Post, PostTS))
        return true;
    return false;
  };

  // Attribute precisely: a pair the one-hop single-producer slice
  // already proves is QueueHB; anything needing joins, chains, or a
  // multi-producer cover is MultiQueueJoin.
  if (Discharges(/*Join=*/false))
    return HBRule::QueueHB;
  if (Cfg.MultiQueueJoin && Discharges(/*Join=*/true))
    return HBRule::MultiQueueJoin;
  return HBRule::None;
}

/// Phase ordering through a one-push/one-pop queue whose ops sit in
/// lockstep loops: the k-th pop returns only after the k-th push, so an
/// access dominating the push is ordered before the k-th consumer
/// iteration's accesses. Requires the pair's conflicts to be
/// intra-iteration only (no loop-carried memory dependence between the
/// origins) and both queue ops to run on every iteration of their loop
/// (they dominate the latches), so push/pop counts track the shared
/// original iteration space — the loops are matched by the re-based IV
/// phis' origin IDs (the TaskModel phase key).
bool HappensBeforeEngine::loopPhaseOrdered(const Instruction *Pre,
                                           const TaskInfo &PreT,
                                           const Instruction *Post,
                                           const TaskInfo &PostT) {
  if (!Cfg.LoopPhase || !Deps)
    return false;
  const auto &QS = queueSites();
  if (UnknownQueueOps)
    return false;
  auto OA = originOf(Pre);
  auto OB = originOf(Post);
  if (!OA || !OB)
    return false;
  if (Deps->LoopCarriedMemDeps.count({*OA, *OB}))
    return false;

  TaskState &PreTS = stateFor(PreT);
  TaskState &PostTS = stateFor(PostT);
  PreTS.buildLoops();
  PostTS.buildLoops();

  auto PhaseKeyOf = [](TaskState &TS, const Instruction *I) -> uint64_t {
    auto It = TS.PhaseKeys.find(I->getParent());
    return It == TS.PhaseKeys.end() ? 0 : It->second;
  };
  auto EveryIteration = [](TaskState &TS, const Instruction *I) {
    nir::LoopStructure *L = TS.LI->getLoopFor(I->getParent());
    if (!L)
      return false;
    for (BasicBlock *Latch : L->getLatches())
      if (!TS.DT->dominates(I, Latch->getTerminator()))
        return false;
    return true;
  };

  for (const auto &Entry : QS) {
    if (Entry.second.Pushes.size() != 1 || Entry.second.Pops.size() != 1)
      continue;
    const auto &P = Entry.second.Pushes.front();
    const auto &O = Entry.second.Pops.front();
    if (P.first != &PreT || O.first != &PostT)
      continue;
    uint64_t PK = P.second->PhaseKey;
    if (PK == 0 || PK != O.second->PhaseKey)
      continue; // not in lockstep loops
    // Anchors inside the same loop iteration as their queue op.
    if (PhaseKeyOf(PreTS, Pre) != PK ||
        PreTS.LI->getLoopFor(Pre->getParent()) !=
            PreTS.LI->getLoopFor(P.second->Call->getParent()))
      continue;
    if (PhaseKeyOf(PostTS, Post) != PK ||
        PostTS.LI->getLoopFor(Post->getParent()) !=
            PostTS.LI->getLoopFor(O.second->Call->getParent()))
      continue;
    if (!PreTS.domTree().dominates(Pre, P.second->Call) ||
        !PostTS.domTree().dominates(O.second->Call, Post))
      continue;
    if (!EveryIteration(PreTS, P.second->Call) ||
        !EveryIteration(PostTS, O.second->Call))
      continue;
    return true;
  }
  return false;
}

HBRule HappensBeforeEngine::segmentOrdered(const Instruction *A,
                                           const Instruction *B,
                                           const TaskInfo &T) {
  if (R.Kind != "helix")
    return HBRule::None;
  TaskState &TS = stateFor(T);
  TS.buildHeld();
  auto ItA = TS.Held.find(A);
  auto ItB = TS.Held.find(B);
  if (ItA == TS.Held.end() || ItB == TS.Held.end())
    return HBRule::None;
  BitVector HA = ItA->second;
  BitVector HB = ItB->second;
  if (Cfg.FlowSensitive)
    for (unsigned S = 0; S < TS.Leaked.size(); ++S)
      if (TS.Leaked.test(S) && S < HA.size()) {
        HA.reset(S);
        HB.reset(S);
      }
  if (Cfg.SegmentOrder) {
    BitVector Common = HA;
    Common.intersectWith(HB);
    if (Common.any())
      return HBRule::SegmentOrder;
  }
  // Distinct segments: gate sequencing orders segment entries within an
  // iteration, and a worker's own iteration is program-ordered, so a
  // pair whose conflicts the snapshot PDG limits to one iteration can
  // never overlap.
  if (Cfg.CrossSegment && Deps && HA.any() && HB.any()) {
    auto OA = originOf(A);
    auto OB = originOf(B);
    if (OA && OB && !Deps->LoopCarriedMemDeps.count({*OA, *OB}))
      return HBRule::CrossSegment;
  }
  return HBRule::None;
}
