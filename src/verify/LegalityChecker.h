//===----------------------------------------------------------------------===//
///
/// \file
/// The parallelization-legality checker: proves that every loop-carried
/// dependence of the pre-transform PDG is discharged by a legal
/// mechanism in the generated tasks — IV re-basing with worker-scaled
/// strides (DOALL/HELIX), reduction privatization into per-worker lanes,
/// HELIX sequential-segment wait/signal coverage (path-sensitive, via
/// the data-flow engine), or DSWP stage co-location and queues. Undischarged
/// dependences are reported as structured diagnostics naming both
/// endpoint instructions.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_LEGALITYCHECKER_H
#define VERIFY_LEGALITYCHECKER_H

#include "noelle/Noelle.h"
#include "verify/Diagnostic.h"
#include "verify/TaskModel.h"

namespace noelle {
namespace verify {

/// Audits every parallel region of \p Regions (recovered from the
/// transformed module) against the pre-transform loops of \p Snapshot.
/// \p Snapshot must be built over the captured pre-transform IR, whose
/// instructions carry the deterministic IDs the task metadata refers to.
void checkLegality(Noelle &Snapshot,
                   const std::vector<ParallelRegion> &Regions,
                   CheckReport &Rep);

} // namespace verify
} // namespace noelle

#endif // VERIFY_LEGALITYCHECKER_H
