//===----------------------------------------------------------------------===//
///
/// \file
/// Plan auditing (`noelle-check --plan`): verifies a ProgramPlan
/// against the pre-transform module it claims to describe, before
/// anything is applied. A clean report means the plan's hash binds to
/// this module, every entry names a real loop, every entry is
/// structurally well formed (workers, parent links, nesting kinds),
/// and — the substantive part — every named technique is legally
/// applicable to its loop per the same legality analyses the
/// transforms run. A seeded bad plan (say, DOALL on a loop-carried
/// dependence) fails here without ever mutating IR.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_PLANCHECK_H
#define VERIFY_PLANCHECK_H

#include "planner/Plan.h"
#include "verify/Diagnostic.h"

namespace noelle {
namespace verify {

/// Audits \p P against \p M (the pre-transform module). Read-only: no
/// IDs are assigned and no code changes — a plan referencing IDs the
/// module lacks reports PlanLoopNotFound.
CheckReport checkPlan(nir::Module &M, const planner::ProgramPlan &P);

} // namespace verify
} // namespace noelle

#endif // VERIFY_PLANCHECK_H
