#include "verify/SpecCheck.h"

#include "ir/IDs.h"
#include "ir/Instructions.h"
#include "noelle/MemDepProfiler.h"
#include "noelle/Noelle.h"

#include <map>
#include <set>
#include <string>

using namespace noelle;
using namespace noelle::verify;
using nir::CallInst;
using nir::Function;
using nir::Instruction;

namespace {

uint64_t idOf(const nir::Value *V) {
  std::string S = V->getMetadata(nir::InstIDKey);
  if (S.empty())
    return 0;
  uint64_t N = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return 0;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

void report(CheckReport &Rep, DiagKind K, std::string Msg,
            const Instruction *Site, const std::string &InFn) {
  Diagnostic D;
  D.Kind = K;
  D.Message = std::move(Msg);
  if (Site)
    D.First = describe(Site);
  D.InFunction = InFn;
  Rep.add(std::move(D));
}

/// True for the journal accessors declared by declareParallelRuntime.
bool isJournalAccessor(const std::string &Name) {
  return Name.rfind("noelle_spec_", 0) == 0;
}

/// Every memory effect of a speculative task must be a journal call:
/// raw accesses bypass validation and rollback.
void auditJournalCoverage(const TaskInfo &T, CheckReport &Rep) {
  for (const auto &BB : T.Fn->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      Instruction *I = IPtr.get();
      if (nir::isa<nir::LoadInst>(I) || nir::isa<nir::StoreInst>(I) ||
          nir::isa<nir::VLoadInst>(I) || nir::isa<nir::VStoreInst>(I)) {
        report(Rep, DiagKind::SpecUnjournaledAccess,
               "raw memory access in a speculative task bypasses the "
               "write log: commit-time validation cannot see it and "
               "rollback cannot undo it",
               I, T.Fn->getName());
        continue;
      }
      if (const auto *Call = nir::dyn_cast<CallInst>(I)) {
        Function *Callee = Call->getCalledFunction();
        std::string Name = Callee ? Callee->getName() : std::string();
        if (Name.empty() ||
            (!isJournalAccessor(Name) && !isSpecPureExternal(Name)))
          report(Rep, DiagKind::SpecUnjournaledAccess,
                 "speculative task calls '" + Name +
                     "', which is neither a journal accessor nor a pure "
                     "math external: its effects escape the write log",
                 I, T.Fn->getName());
      }
    }
}

/// The rollback target: present, tagged, and running raw (uninstrumented)
/// accesses — it re-executes after the journal was discarded.
void auditRecoveryPath(nir::Module &M, const TaskInfo &T,
                       CheckReport &Rep) {
  std::string SeqName = T.Fn->getMetadata(TaskSpecSeqKey);
  if (SeqName.empty()) {
    report(Rep, DiagKind::SpecRecoveryMissing,
           "speculative task records no sequential fallback "
           "(noelle.task.spec.seq): misspeculation would have no "
           "recovery path",
           nullptr, T.Fn->getName());
    return;
  }
  Function *Seq = M.getFunction(SeqName);
  if (!Seq || Seq->isDeclaration()) {
    report(Rep, DiagKind::SpecRecoveryMissing,
           "sequential fallback '" + SeqName +
               "' does not exist in the module",
           nullptr, T.Fn->getName());
    return;
  }
  if (Seq->getMetadata(TaskKindKey) != "doall-spec-seq")
    report(Rep, DiagKind::SpecRecoveryMissing,
           "sequential fallback '" + SeqName +
               "' is not tagged doall-spec-seq (the runtime cannot "
               "distinguish it from a concurrent task)",
           nullptr, T.Fn->getName());
  for (const auto &BB : Seq->getBlocks())
    for (const auto &IPtr : BB->getInstList())
      if (const auto *Call = nir::dyn_cast<CallInst>(IPtr.get())) {
        Function *Callee = Call->getCalledFunction();
        if (Callee && isJournalAccessor(Callee->getName())) {
          report(Rep, DiagKind::SpecRecoveryMissing,
                 "sequential fallback '" + SeqName +
                     "' is itself instrumented: rollback re-execution "
                     "would journal into a dispatch that already "
                     "discarded its logs",
                 IPtr.get(), SeqName);
          return;
        }
      }
}

/// Premises against the evidence: the profile must have observed the
/// loop without the speculated pair manifesting, and each premise must
/// name a real loop-carried memory dependence of the snapshot PDG.
void auditPremises(const TaskInfo &T, uint64_t Origin, bool HasProfile,
                   const MemDepProfile &Profile, LoopContent *SnapLoop,
                   CheckReport &Rep) {
  auto Premises = parseSpecPremises(T.Fn);
  if (Premises.empty()) {
    report(Rep, DiagKind::SpecPremiseUnsupported,
           "speculative task records no premises: static DOALL should "
           "have applied instead, or the task was mis-tagged",
           nullptr, T.Fn->getName());
    return;
  }
  if (!HasProfile) {
    report(Rep, DiagKind::SpecPremiseUnsupported,
           "module carries no memory-dependence profile: the premises "
           "have no evidence base",
           nullptr, T.Fn->getName());
    return;
  }
  if (!Profile.coversLoop(Origin)) {
    report(Rep, DiagKind::SpecPremiseUnsupported,
           "the profile never observed loop " + std::to_string(Origin) +
               ": absence of dependences is not evidence here",
           nullptr, T.Fn->getName());
    return;
  }

  // Directed loop-carried memory edges of the snapshot loop, by ID.
  std::set<std::pair<uint64_t, uint64_t>> Edges;
  if (SnapLoop)
    for (auto *E : SnapLoop->getLoopDG().getEdges()) {
      if (!E->IsLoopCarried || !E->IsMemory)
        continue;
      uint64_t A = idOf(E->From), B = idOf(E->To);
      if (A && B)
        Edges.insert({A, B});
    }

  for (const auto &[A, B] : Premises) {
    if (Profile.manifested(Origin, A, B))
      report(Rep, DiagKind::SpecPremiseUnsupported,
             "premise " + std::to_string(A) + ":" + std::to_string(B) +
                 " is contradicted by the profile: the dependence "
                 "manifested during the profiled run",
             nullptr, T.Fn->getName());
    if (SnapLoop && !Edges.count({A, B}))
      report(Rep, DiagKind::SpecPremiseUnsupported,
             "premise " + std::to_string(A) + ":" + std::to_string(B) +
                 " matches no loop-carried memory dependence of the "
                 "snapshot PDG (stale or fabricated premise)",
             nullptr, T.Fn->getName());
  }
}

} // namespace

void noelle::verify::checkSpeculation(
    nir::Module &M, Noelle &Snapshot,
    const std::vector<ParallelRegion> &Regions, CheckReport &Rep) {
  // The profile travels in the transformed module's metadata; its hash
  // binding is to the pre-transform code, which the transforms changed,
  // so load leniently — staleness is the premise audit's job.
  MemDepProfile Profile;
  std::string ProfErr;
  bool HasProfile =
      MemDepProfile::fromModule(M, Profile, ProfErr,
                                /*RequireHashMatch=*/false);

  std::map<uint64_t, LoopContent *> ByOrigin;
  for (LoopContent *LC : Snapshot.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    if (LS.getHeader()->getInstList().empty())
      continue;
    if (uint64_t Id = idOf(LS.getHeader()->getInstList().front().get()))
      ByOrigin[Id] = LC;
  }

  for (const ParallelRegion &R : Regions) {
    if (R.Kind != "doall-spec")
      continue;
    auto It = ByOrigin.find(R.Origin);
    LoopContent *SnapLoop = It == ByOrigin.end() ? nullptr : It->second;
    for (const TaskInfo &T : R.Tasks) {
      auditJournalCoverage(T, Rep);
      auditRecoveryPath(M, T, Rep);
      auditPremises(T, R.Origin, HasProfile, Profile, SnapLoop, Rep);
    }
  }
}
