//===----------------------------------------------------------------------===//
///
/// \file
/// Data-flow lint pack built on noelle::DataFlowEngine: three whole-
/// function checks phrased as bitvector problems.
///
///  - uninitialized-read: a load from a stack slot that is not
///    definitely-stored on every path from entry (forward, meet =
///    intersection).
///  - dead-store: a store to a non-escaping stack slot with no
///    subsequent read on any path (backward, meet = union — slot
///    liveness).
///  - null-deref: a dereference of an allocator-returned handle on a
///    path where it was never compared against null (forward, meet =
///    intersection).
///
/// These are lints, not proofs: the analyses are path-insensitive at
/// branch granularity, so correlated conditions can produce warnings on
/// code that never misbehaves. They are therefore reported separately
/// from the legality/race verdicts (opt-in via noelle-check --lint).
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_DATAFLOWLINT_H
#define VERIFY_DATAFLOWLINT_H

#include "ir/Module.h"
#include "verify/Diagnostic.h"

namespace noelle {
namespace verify {

struct LintOptions {
  bool UninitializedRead = true;
  bool DeadStore = true;
  bool NullDeref = true;
};

/// Runs the enabled lints over every defined function of \p M.
void lintModule(nir::Module &M, const LintOptions &Opts, CheckReport &Rep);

/// Single-function entry point (used by tests).
void lintFunction(nir::Function &F, const LintOptions &Opts,
                  CheckReport &Rep);

} // namespace verify
} // namespace noelle

#endif // VERIFY_DATAFLOWLINT_H
