//===----------------------------------------------------------------------===//
///
/// \file
/// noelle-check: the PDG-grounded parallelization-legality verifier.
///
/// Usage pattern (also what the noelle-check CLI and the check-suite
/// tests drive):
///
///   PreTransformSnapshot Snap = captureForCheck(M);  // before transforms
///   DOALL(N, Opts).run();                            // any transforms
///   CheckReport Rep = checkModule(M, Snap);          // audit the result
///
/// captureForCheck assigns deterministic instruction IDs, embeds the
/// PDG into the module (noelle-pdg-embed), and snapshots the IR text.
/// The transforms propagate the IDs into their task functions as
/// provenance metadata (CheckMetadata.h); checkModule re-parses the
/// snapshot in a fresh context, rebuilds the Noelle abstractions over it
/// (loading the embedded PDG via its content hash), recovers the
/// parallel regions of the transformed module, and audits every
/// pre-transform loop-carried dependence against the generated code.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_NOELLECHECK_H
#define VERIFY_NOELLECHECK_H

#include "ir/Module.h"
#include "verify/DataFlowLint.h"
#include "verify/Diagnostic.h"
#include "verify/RaceDetector.h"

namespace noelle {
namespace verify {

/// The pre-transform state checkModule audits against.
struct PreTransformSnapshot {
  std::string IRText;    ///< printed module, IDs assigned, PDG embedded
  uint64_t PDGEdges = 0; ///< edges embedded by noelle-pdg-embed
};

/// Prepares \p M for later checking: assigns deterministic IDs, embeds
/// the PDG (noelle-pdg-embed), and captures the IR text. Must run before
/// the parallelizing transforms.
PreTransformSnapshot captureForCheck(nir::Module &M);

struct CheckOptions {
  bool RunVerifier = true; ///< nir::verifyModule incl. SSA dominance
  bool RunLegality = true; ///< dependence-discharge audit
  bool RunRaces = true;    ///< static race detection
  /// Audit the speculation machinery of "doall-spec" regions (journal
  /// coverage, recovery path, premise evidence — verify/SpecCheck.h).
  /// Off by default: modules without speculative tasks have nothing to
  /// audit, and the pass needs the embedded memory-dependence profile.
  bool Speculative = false;
  RaceDetectorOptions Races; ///< rule toggles for the race detector
};

/// Audits the transformed module \p M against \p Snap. Returns every
/// violation found; a clean report means every pre-transform loop-carried
/// dependence is provably discharged and no racing access pair was found.
CheckReport checkModule(nir::Module &M, const PreTransformSnapshot &Snap,
                        const CheckOptions &Opts = {});

} // namespace verify
} // namespace noelle

#endif // VERIFY_NOELLECHECK_H
