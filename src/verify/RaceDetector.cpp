#include "verify/RaceDetector.h"

#include "analysis/AliasAnalysis.h"
#include "ir/Function.h"
#include "verify/CheckMetadata.h"
#include "verify/HappensBefore.h"

#include <algorithm>
#include <optional>
#include <set>

using namespace noelle;
using namespace noelle::verify;
using nir::AliasAnalysis;
using nir::AliasResult;
using nir::AndersenAliasAnalysis;
using nir::BasicBlock;
using nir::CallInst;
using nir::Function;
using nir::Instruction;
using nir::LoadInst;
using nir::StoreInst;
using nir::Value;

namespace {

/// One memory access issued (directly or through a defined callee) by a
/// task. \p Anchor is always an instruction of the task function, so
/// ordering and HELIX segment facts can be evaluated there; \p Ptr may
/// live in a callee body. A null \p Ptr is a wildcard (indirect call
/// with unknown effects).
struct Access {
  const Instruction *Anchor = nullptr;
  const Value *Ptr = nullptr;
  bool IsWrite = false;
  const TaskInfo *Task = nullptr;
  uint64_t Size = 8; // byte extent; superword accesses exceed one granule
};

bool isRuntimeCall(const Function *F) {
  return F && F->getName().rfind("noelle_", 0) == 0;
}

/// Collects the loads/stores a defined function performs, transitively,
/// attributed to \p Anchor. Indirect or external non-runtime calls
/// degrade to a wildcard write.
void summarizeCallee(Function *Callee, const Instruction *Anchor,
                     const TaskInfo &T, std::set<const Function *> &Visited,
                     std::vector<Access> &Out) {
  if (!Visited.insert(Callee).second)
    return;
  for (const auto &BB : Callee->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction *I = IPtr.get();
      nir::MemAccess Acc;
      if (nir::memoryAccessOf(I, Acc)) {
        Out.push_back({Anchor, Acc.Ptr, Acc.IsWrite, &T,
                       nir::accessGranule(Acc.Size)});
      } else if (const auto *C = nir::dyn_cast<CallInst>(I)) {
        Function *F = C->getCalledFunction();
        if (isRuntimeCall(F))
          continue;
        if (F && !F->isDeclaration())
          summarizeCallee(F, Anchor, T, Visited, Out);
        else if (!F)
          Out.push_back({Anchor, nullptr, true, &T});
        // External declarations (the interpreter's externals: printf,
        // malloc, ...) touch no user-visible shared state.
      }
    }
}

std::vector<Access> collectAccesses(const TaskInfo &T) {
  std::vector<Access> Out;
  for (const auto &BB : T.Fn->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction *I = IPtr.get();
      nir::MemAccess Acc;
      if (nir::memoryAccessOf(I, Acc)) {
        Out.push_back(
            {I, Acc.Ptr, Acc.IsWrite, &T, nir::accessGranule(Acc.Size)});
      } else if (const auto *C = nir::dyn_cast<CallInst>(I)) {
        Function *F = C->getCalledFunction();
        if (isRuntimeCall(F))
          continue; // Queues/gates/dispatch synchronize, they don't race.
        if (F && !F->isDeclaration()) {
          std::set<const Function *> Visited;
          summarizeCallee(F, I, T, Visited, Out);
        } else if (!F) {
          Out.push_back({I, nullptr, true, &T});
        }
      }
    }
  return Out;
}

class RegionRaceScan {
public:
  RegionRaceScan(const ParallelRegion &R, AliasAnalysis &AA,
                 const PDGDependenceSummary *Deps,
                 const RaceDetectorOptions &Opts, CheckReport &Rep,
                 RaceRuleStats &S)
      : R(R), AA(AA), Deps(Deps), Opts(Opts), Rep(Rep), S(S),
        HB(R, Deps, configFrom(Opts)) {}

  void run() {
    std::vector<std::vector<Access>> PerTask;
    for (const TaskInfo &T : R.Tasks)
      PerTask.push_back(collectAccesses(T));

    if (R.selfConcurrent()) {
      // Every worker runs the same body: any two accesses of the single
      // task — including an access against itself — may overlap in time.
      for (const auto &Accs : PerTask)
        for (size_t A = 0; A < Accs.size(); ++A)
          for (size_t B = A; B < Accs.size(); ++B)
            checkPair(Accs[A], Accs[B]);
    } else {
      // DSWP: one worker per stage; races need two distinct stages.
      for (size_t TA = 0; TA < PerTask.size(); ++TA)
        for (size_t TB = TA + 1; TB < PerTask.size(); ++TB)
          for (const Access &A : PerTask[TA])
            for (const Access &B : PerTask[TB])
              checkPair(A, B);
    }
  }

private:
  static HappensBeforeEngine::Config configFrom(const RaceDetectorOptions &O) {
    HappensBeforeEngine::Config C;
    C.QueueHB = O.UseQueueHB;
    C.MultiQueueJoin = O.UseMultiQueueJoin;
    C.LoopPhase = O.UseLoopPhase;
    C.SegmentOrder = O.UseSegmentOrder;
    C.CrossSegment = O.UseCrossSegment;
    C.FlowSensitive = O.FlowSensitive;
    return C;
  }

  void discharge(const char *Rule) { ++S.Discharged[Rule]; }

  void checkPair(const Access &A, const Access &B) {
    ++S.PairsChecked;
    if (!A.IsWrite && !B.IsWrite) {
      discharge("read-read");
      return;
    }

    // Ordering rules run before pointer reasoning: they order the
    // accesses in time, so even a wildcard (unknown side effects) pair
    // is discharged. Cross-task queue/phase rules apply to DSWP stages;
    // segment rules to a HELIX task against its concurrent copies.
    if (!R.selfConcurrent() && A.Task != B.Task) {
      HBRule Rl = HB.orderedCrossTask(A.Anchor, *A.Task, B.Anchor, *B.Task);
      if (Rl != HBRule::None) {
        discharge(hbRuleName(Rl));
        return;
      }
    }
    if (Opts.FlowSensitive && R.selfConcurrent() && A.Task == B.Task) {
      HBRule Rl = HB.segmentOrdered(A.Anchor, B.Anchor, *A.Task);
      if (Rl != HBRule::None) {
        discharge(hbRuleName(Rl));
        return;
      }
    }

    if (!A.Ptr || !B.Ptr) {
      reportRace(A, B, "call with unknown side effects overlaps another "
                       "access");
      return;
    }

    PtrClass CA = classifyPointer(A.Ptr, *A.Task);
    PtrClass CB = classifyPointer(B.Ptr, *B.Task);

    // Task-private allocas cannot be shared across workers.
    if (isTaskLocal(CA, *A.Task) || isTaskLocal(CB, *B.Task)) {
      discharge("task-local");
      return;
    }

    // PDG grounding: when both accesses are clones of snapshot
    // instructions, the pre-transform PDG already decided whether they
    // can touch the same memory. For DOALL/HELIX, distinct workers run
    // distinct iterations, so only a loop-carried dependence relates
    // them; within one worker, program order covers intra-iteration
    // dependences. For DSWP stages, any memory dependence matters.
    if (Deps) {
      auto OA = originOf(A.Anchor);
      auto OB = originOf(B.Anchor);
      if (OA && OB) {
        const auto &Relevant =
            R.selfConcurrent() ? Deps->LoopCarriedMemDeps : Deps->MemDeps;
        if (!Relevant.count({*OA, *OB})) {
          discharge("pdg-independent");
          return;
        }
      }
    }

    bool EnvA = CA.S == PtrClass::EnvConst || CA.S == PtrClass::EnvLane ||
                CA.S == PtrClass::EnvDyn;
    bool EnvB = CB.S == PtrClass::EnvConst || CB.S == PtrClass::EnvLane ||
                CB.S == PtrClass::EnvDyn;
    if (EnvA && EnvB) {
      if (!envMayOverlap(CA, CB, *A.Task)) {
        discharge("env-disjoint");
        return;
      }
      if (!Opts.FlowSensitive && lateSegment(A, B))
        return;
      reportRace(A, B, "both workers touch the same environment slot");
      return;
    }
    if (EnvA != EnvB) {
      // The env alloca is disjoint from every named object.
      discharge("env-disjoint");
      return;
    }

    // Iteration partitioning: a DOALL/HELIX access whose address is
    // derived from the task ID (through the re-based IV) hits a
    // different element in every worker — each worker's chunk of the
    // re-based iteration space is exclusive, with chunk handoff fenced
    // by the dispatch counter.
    if (Opts.FlowSensitive && iterPartitioned(A, B)) {
      discharge("iter-partition");
      return;
    }

    ++S.AndersenFallback;
    if (AA.alias(A.Ptr, A.Size, B.Ptr, B.Size) == AliasResult::NoAlias) {
      discharge("alias-none");
      return;
    }
    if (!Opts.FlowSensitive) {
      if (iterPartitioned(A, B)) {
        discharge("iter-partition");
        return;
      }
      if (lateSegment(A, B))
        return;
    }
    reportRace(A, B, "accesses may alias and nothing orders them");
  }

  bool iterPartitioned(const Access &A, const Access &B) {
    return R.selfConcurrent() && sliceContains(A.Ptr, A.Task->TaskIDArg) &&
           sliceContains(B.Ptr, B.Task->TaskIDArg);
  }

  /// Legacy placement of the segment check (after pointer reasoning).
  bool lateSegment(const Access &A, const Access &B) {
    if (A.Task != B.Task)
      return false;
    HBRule Rl = HB.segmentOrdered(A.Anchor, B.Anchor, *A.Task);
    if (Rl == HBRule::None)
      return false;
    discharge(hbRuleName(Rl));
    return true;
  }

  bool isTaskLocal(const PtrClass &C, const TaskInfo &T) const {
    if (C.S != PtrClass::Object || !C.Base)
      return false;
    const auto *AI = nir::dyn_cast<nir::AllocaInst>(C.Base);
    return AI && AI->getFunction() == T.Fn;
  }

  /// Structural disjointness of environment accesses. Lane accesses span
  /// [Slot, Slot + Workers); constant slots are points; dynamic indexes
  /// overlap everything.
  bool envMayOverlap(const PtrClass &A, const PtrClass &B,
                     const TaskInfo &T) const {
    if (A.S == PtrClass::EnvDyn || B.S == PtrClass::EnvDyn)
      return true;
    int64_t W = static_cast<int64_t>(T.Workers);
    if (A.S == PtrClass::EnvConst && B.S == PtrClass::EnvConst)
      return A.Slot == B.Slot;
    if (A.S == PtrClass::EnvLane && B.S == PtrClass::EnvLane) {
      if (A.Slot == B.Slot)
        return false; // Same lane family: distinct workers, distinct lanes.
      int64_t D = A.Slot > B.Slot ? A.Slot - B.Slot : B.Slot - A.Slot;
      return D < W; // Distinct families racing only if ranges overlap.
    }
    const PtrClass &Lane = A.S == PtrClass::EnvLane ? A : B;
    const PtrClass &Const = A.S == PtrClass::EnvLane ? B : A;
    return Const.Slot >= Lane.Slot && Const.Slot < Lane.Slot + W;
  }

  void reportRace(const Access &A, const Access &B,
                  const std::string &Why) {
    // One source-level race per region: clone pairs realizing the same
    // unordered origin pair collapse into the first report.
    auto OA = originOf(A.Anchor);
    auto OB = originOf(B.Anchor);
    if (OA && OB) {
      auto [Lo, Hi] = std::minmax(*OA, *OB);
      if (!ReportedOrigins.insert({Lo, Hi}).second) {
        ++S.DuplicatesSuppressed;
        return;
      }
    }
    ++S.RacesReported;
    Diagnostic D;
    D.Kind = DiagKind::DataRace;
    const char *Shape = A.IsWrite && B.IsWrite ? "write/write" : "read/write";
    D.Message = std::string(Shape) + " race between concurrent workers: " +
                Why;
    D.First = describe(A.Anchor);
    D.Second = describe(B.Anchor);
    D.InFunction = A.Task->Fn->getName();
    Rep.add(std::move(D));
  }

  const ParallelRegion &R;
  AliasAnalysis &AA;
  const PDGDependenceSummary *Deps;
  const RaceDetectorOptions &Opts;
  CheckReport &Rep;
  RaceRuleStats &S;
  HappensBeforeEngine HB;
  std::set<std::pair<uint64_t, uint64_t>> ReportedOrigins;
};

} // namespace

void noelle::verify::detectRaces(nir::Module &M,
                                 const std::vector<ParallelRegion> &Regions,
                                 CheckReport &Rep,
                                 const PDGDependenceSummary *Deps,
                                 const RaceDetectorOptions &Opts) {
  if (Regions.empty())
    return;
  RaceRuleStats Local;
  RaceRuleStats &S = Opts.Stats ? *Opts.Stats : Local;
  AndersenAliasAnalysis AA(M);
  for (const ParallelRegion &R : Regions) {
    // Speculative regions have no raw shared accesses to race on: every
    // load/store was rewritten into a journal call, commits are
    // serialized by the dispatcher, and cross-worker conflicts are the
    // runtime validator's job (audited by verify/SpecCheck.h instead).
    if (R.Kind == "doall-spec")
      continue;
    RegionRaceScan(R, AA, Deps, Opts, Rep, S).run();
  }
}
