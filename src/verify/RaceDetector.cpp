#include "verify/RaceDetector.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/Dominators.h"
#include "ir/Function.h"
#include "verify/CheckMetadata.h"

#include <optional>
#include <set>

using namespace noelle;
using namespace noelle::verify;
using nir::AliasAnalysis;
using nir::AliasResult;
using nir::AndersenAliasAnalysis;
using nir::BasicBlock;
using nir::CallInst;
using nir::Function;
using nir::Instruction;
using nir::LoadInst;
using nir::StoreInst;
using nir::Value;

namespace {

/// One memory access issued (directly or through a defined callee) by a
/// task. \p Anchor is always an instruction of the task function, so
/// HELIX segment protection can be evaluated there; \p Ptr may live in a
/// callee body. A null \p Ptr is a wildcard (indirect call with unknown
/// effects).
struct Access {
  const Instruction *Anchor = nullptr;
  const Value *Ptr = nullptr;
  bool IsWrite = false;
  const TaskInfo *Task = nullptr;
  uint64_t Size = 8; // byte extent; superword accesses exceed one granule
};

bool isRuntimeCall(const Function *F) {
  return F && F->getName().rfind("noelle_", 0) == 0;
}

/// The snapshot instruction this clone came from, when the transform
/// recorded provenance.
std::optional<uint64_t> originOf(const Instruction *I) {
  std::string S = I->getMetadata(CheckOrigKey);
  if (S.empty())
    return std::nullopt;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

/// Collects the loads/stores a defined function performs, transitively,
/// attributed to \p Anchor. Indirect or external non-runtime calls
/// degrade to a wildcard write.
void summarizeCallee(Function *Callee, const Instruction *Anchor,
                     const TaskInfo &T, std::set<const Function *> &Visited,
                     std::vector<Access> &Out) {
  if (!Visited.insert(Callee).second)
    return;
  for (const auto &BB : Callee->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction *I = IPtr.get();
      nir::MemAccess Acc;
      if (nir::memoryAccessOf(I, Acc)) {
        Out.push_back({Anchor, Acc.Ptr, Acc.IsWrite, &T,
                       nir::accessGranule(Acc.Size)});
      } else if (const auto *C = nir::dyn_cast<CallInst>(I)) {
        Function *F = C->getCalledFunction();
        if (isRuntimeCall(F))
          continue;
        if (F && !F->isDeclaration())
          summarizeCallee(F, Anchor, T, Visited, Out);
        else if (!F)
          Out.push_back({Anchor, nullptr, true, &T});
        // External declarations (the interpreter's externals: printf,
        // malloc, ...) touch no user-visible shared state.
      }
    }
}

std::vector<Access> collectAccesses(const TaskInfo &T) {
  std::vector<Access> Out;
  for (const auto &BB : T.Fn->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      const Instruction *I = IPtr.get();
      nir::MemAccess Acc;
      if (nir::memoryAccessOf(I, Acc)) {
        Out.push_back(
            {I, Acc.Ptr, Acc.IsWrite, &T, nir::accessGranule(Acc.Size)});
      } else if (const auto *C = nir::dyn_cast<CallInst>(I)) {
        Function *F = C->getCalledFunction();
        if (isRuntimeCall(F))
          continue; // Queues/gates/dispatch synchronize, they don't race.
        if (F && !F->isDeclaration()) {
          std::set<const Function *> Visited;
          summarizeCallee(F, I, T, Visited, Out);
        } else if (!F) {
          Out.push_back({I, nullptr, true, &T});
        }
      }
    }
  return Out;
}

class RegionRaceScan {
public:
  RegionRaceScan(const ParallelRegion &R, AliasAnalysis &AA,
                 const PDGDependenceSummary *Deps,
                 const RaceDetectorOptions &Opts, CheckReport &Rep)
      : R(R), AA(AA), Deps(Deps), Opts(Opts), Rep(Rep) {}

  void run() {
    std::vector<std::vector<Access>> PerTask;
    for (const TaskInfo &T : R.Tasks)
      PerTask.push_back(collectAccesses(T));

    if (R.selfConcurrent()) {
      // Every worker runs the same body: any two accesses of the single
      // task — including an access against itself — may overlap in time.
      for (const auto &Accs : PerTask)
        for (size_t A = 0; A < Accs.size(); ++A)
          for (size_t B = A; B < Accs.size(); ++B)
            checkPair(Accs[A], Accs[B]);
    } else {
      // DSWP: one worker per stage; races need two distinct stages.
      for (size_t TA = 0; TA < PerTask.size(); ++TA)
        for (size_t TB = TA + 1; TB < PerTask.size(); ++TB)
          for (const Access &A : PerTask[TA])
            for (const Access &B : PerTask[TB])
              checkPair(A, B);
    }
  }

private:
  void checkPair(const Access &A, const Access &B) {
    if (!A.IsWrite && !B.IsWrite)
      return;
    // Queue happens-before runs before pointer reasoning: it orders the
    // accesses in time, so even a wildcard (unknown side effects) pair
    // is discharged. DSWP only — a queue cannot order a task against a
    // concurrent copy of itself.
    if (Opts.UseQueueHB && !R.selfConcurrent() && A.Task != B.Task &&
        (orderedByQueue(A, B) || orderedByQueue(B, A)))
      return;
    if (!A.Ptr || !B.Ptr) {
      reportRace(A, B, "call with unknown side effects overlaps another "
                       "access");
      return;
    }

    PtrClass CA = classifyPointer(A.Ptr, *A.Task);
    PtrClass CB = classifyPointer(B.Ptr, *B.Task);

    // Task-private allocas cannot be shared across workers.
    if (isTaskLocal(CA, *A.Task) || isTaskLocal(CB, *B.Task))
      return;

    // PDG grounding: when both accesses are clones of snapshot
    // instructions, the pre-transform PDG already decided whether they
    // can touch the same memory. For DOALL/HELIX, distinct workers run
    // distinct iterations, so only a loop-carried dependence relates
    // them; within one worker, program order covers intra-iteration
    // dependences. For DSWP stages, any memory dependence matters.
    if (Deps) {
      auto OA = originOf(A.Anchor);
      auto OB = originOf(B.Anchor);
      if (OA && OB) {
        const auto &Relevant =
            R.selfConcurrent() ? Deps->LoopCarriedMemDeps : Deps->MemDeps;
        if (!Relevant.count({*OA, *OB}))
          return;
      }
    }

    bool EnvA = CA.S == PtrClass::EnvConst || CA.S == PtrClass::EnvLane ||
                CA.S == PtrClass::EnvDyn;
    bool EnvB = CB.S == PtrClass::EnvConst || CB.S == PtrClass::EnvLane ||
                CB.S == PtrClass::EnvDyn;
    if (EnvA && EnvB) {
      if (!envMayOverlap(CA, CB, *A.Task))
        return;
      if (protectedBySegment(A, B))
        return;
      reportRace(A, B, "both workers touch the same environment slot");
      return;
    }
    if (EnvA != EnvB)
      return; // The env alloca is disjoint from every named object.

    if (AA.alias(A.Ptr, A.Size, B.Ptr, B.Size) == AliasResult::NoAlias)
      return;
    // Iteration partitioning: a DOALL/HELIX access whose address is
    // derived from the task ID (through the re-based IV) hits a
    // different element in every worker.
    if (R.selfConcurrent() && sliceContains(A.Ptr, A.Task->TaskIDArg) &&
        sliceContains(B.Ptr, B.Task->TaskIDArg))
      return;
    if (protectedBySegment(A, B))
      return;
    reportRace(A, B, "accesses may alias and nothing orders them");
  }

  /// Queue happens-before, one direction: every execution of \p Pre's
  /// anchor precedes every push of some queue q whose only producer is
  /// Pre's task, and \p Post's anchor is dominated by a pop of q in
  /// Post's task. Then Pre ⟶ push ⟶ (blocking FIFO) ⟶ pop ⟶ Post, so the
  /// pair can never overlap in time.
  bool orderedByQueue(const Access &Pre, const Access &Post) {
    for (unsigned Q : connectingQueues(Pre.Task, Post.Task)) {
      bool PreOk = true;
      for (const TaskInfo::QueueOp &Op : Pre.Task->QueueOps)
        if (Op.IsPush && Op.Queue == Q && mayFollow(Op.Call, Pre.Anchor)) {
          PreOk = false;
          break;
        }
      if (!PreOk)
        continue;
      const nir::DominatorTree &DT = domTreeFor(*Post.Task);
      for (const TaskInfo::QueueOp &Op : Post.Task->QueueOps)
        if (!Op.IsPush && Op.Queue == Q && DT.dominates(Op.Call, Post.Anchor))
          return true;
    }
    return false;
  }

  /// Queues with at least one push in \p Producer, at least one pop in
  /// \p Consumer, and no push anywhere else in the region (a second
  /// producer could satisfy the pop without ordering against the first).
  const std::vector<unsigned> &connectingQueues(const TaskInfo *Producer,
                                                const TaskInfo *Consumer) {
    auto Key = std::make_pair(Producer, Consumer);
    auto It = ConnectingCache.find(Key);
    if (It != ConnectingCache.end())
      return It->second;
    std::set<unsigned> Pushed, Popped, PushedElsewhere;
    for (const TaskInfo::QueueOp &Op : Producer->QueueOps)
      if (Op.IsPush)
        Pushed.insert(Op.Queue);
    for (const TaskInfo::QueueOp &Op : Consumer->QueueOps)
      if (!Op.IsPush)
        Popped.insert(Op.Queue);
    for (const TaskInfo &T : R.Tasks) {
      if (&T == Producer)
        continue;
      for (const TaskInfo::QueueOp &Op : T.QueueOps)
        if (Op.IsPush)
          PushedElsewhere.insert(Op.Queue);
    }
    std::vector<unsigned> Qs;
    for (unsigned Q : Pushed)
      if (Popped.count(Q) && !PushedElsewhere.count(Q))
        Qs.push_back(Q);
    return ConnectingCache.emplace(Key, std::move(Qs)).first->second;
  }

  /// May \p Later execute after \p Earlier in the same thread? Same
  /// block: yes if Earlier comes first in block order, or the block can
  /// re-enter itself; otherwise CFG reachability through at least one
  /// edge decides.
  bool mayFollow(const Instruction *Earlier, const Instruction *Later) {
    const BasicBlock *EB = Earlier->getParent();
    const BasicBlock *LB = Later->getParent();
    const auto &Reach = reachableFrom(EB);
    if (EB != LB)
      return Reach.count(LB) != 0;
    if (Reach.count(EB))
      return true; // block inside a cycle: any relative order recurs
    for (const auto &IPtr : EB->getInstList()) {
      if (IPtr.get() == Earlier)
        return true;
      if (IPtr.get() == Later)
        return false;
    }
    return true; // unreachable: neither found
  }

  const std::set<const BasicBlock *> &reachableFrom(const BasicBlock *BB) {
    auto It = ReachCache.find(BB);
    if (It != ReachCache.end())
      return It->second;
    std::set<const BasicBlock *> Seen;
    std::vector<const BasicBlock *> Work;
    for (BasicBlock *S : BB->successors())
      if (Seen.insert(S).second)
        Work.push_back(S);
    while (!Work.empty()) {
      const BasicBlock *Cur = Work.back();
      Work.pop_back();
      for (BasicBlock *S : Cur->successors())
        if (Seen.insert(S).second)
          Work.push_back(S);
    }
    return ReachCache.emplace(BB, std::move(Seen)).first->second;
  }

  const nir::DominatorTree &domTreeFor(const TaskInfo &T) {
    auto It = DomCache.find(T.Fn);
    if (It == DomCache.end())
      It = DomCache.emplace(T.Fn, std::make_unique<nir::DominatorTree>(*T.Fn))
               .first;
    return *It->second;
  }

  bool isTaskLocal(const PtrClass &C, const TaskInfo &T) const {
    if (C.S != PtrClass::Object || !C.Base)
      return false;
    const auto *AI = nir::dyn_cast<nir::AllocaInst>(C.Base);
    return AI && AI->getFunction() == T.Fn;
  }

  /// Structural disjointness of environment accesses. Lane accesses span
  /// [Slot, Slot + Workers); constant slots are points; dynamic indexes
  /// overlap everything.
  bool envMayOverlap(const PtrClass &A, const PtrClass &B,
                     const TaskInfo &T) const {
    if (A.S == PtrClass::EnvDyn || B.S == PtrClass::EnvDyn)
      return true;
    int64_t W = static_cast<int64_t>(T.Workers);
    if (A.S == PtrClass::EnvConst && B.S == PtrClass::EnvConst)
      return A.Slot == B.Slot;
    if (A.S == PtrClass::EnvLane && B.S == PtrClass::EnvLane) {
      if (A.Slot == B.Slot)
        return false; // Same lane family: distinct workers, distinct lanes.
      int64_t D = A.Slot > B.Slot ? A.Slot - B.Slot : B.Slot - A.Slot;
      return D < W; // Distinct families racing only if ranges overlap.
    }
    const PtrClass &Lane = A.S == PtrClass::EnvLane ? A : B;
    const PtrClass &Const = A.S == PtrClass::EnvLane ? B : A;
    return Const.Slot >= Lane.Slot && Const.Slot < Lane.Slot + W;
  }

  /// HELIX: two accesses both under a common guaranteed sequential
  /// segment are totally ordered by the gates.
  bool protectedBySegment(const Access &A, const Access &B) {
    if (R.Kind != "helix")
      return false;
    const auto &HeldA = heldFor(*A.Task);
    const auto &HeldB = heldFor(*B.Task);
    auto ItA = HeldA.find(A.Anchor);
    auto ItB = HeldB.find(B.Anchor);
    if (ItA == HeldA.end() || ItB == HeldB.end())
      return false;
    nir::BitVector Common = ItA->second;
    Common.intersectWith(ItB->second);
    return Common.any();
  }

  const std::map<const Instruction *, nir::BitVector> &
  heldFor(const TaskInfo &T) {
    auto It = HeldCache.find(&T);
    if (It == HeldCache.end())
      It = HeldCache.emplace(&T, computeGuaranteedSegments(T)).first;
    return It->second;
  }

  void reportRace(const Access &A, const Access &B,
                  const std::string &Why) {
    Diagnostic D;
    D.Kind = DiagKind::DataRace;
    const char *Shape = A.IsWrite && B.IsWrite ? "write/write" : "read/write";
    D.Message = std::string(Shape) + " race between concurrent workers: " +
                Why;
    D.First = describe(A.Anchor);
    D.Second = describe(B.Anchor);
    D.InFunction = A.Task->Fn->getName();
    Rep.add(std::move(D));
  }

  const ParallelRegion &R;
  AliasAnalysis &AA;
  const PDGDependenceSummary *Deps;
  const RaceDetectorOptions &Opts;
  CheckReport &Rep;
  std::map<const TaskInfo *,
           std::map<const Instruction *, nir::BitVector>>
      HeldCache;
  std::map<std::pair<const TaskInfo *, const TaskInfo *>,
           std::vector<unsigned>>
      ConnectingCache;
  std::map<const BasicBlock *, std::set<const BasicBlock *>> ReachCache;
  std::map<Function *, std::unique_ptr<nir::DominatorTree>> DomCache;
};

} // namespace

void noelle::verify::detectRaces(nir::Module &M,
                                 const std::vector<ParallelRegion> &Regions,
                                 CheckReport &Rep,
                                 const PDGDependenceSummary *Deps,
                                 const RaceDetectorOptions &Opts) {
  if (Regions.empty())
    return;
  AndersenAliasAnalysis AA(M);
  for (const ParallelRegion &R : Regions)
    RegionRaceScan(R, AA, Deps, Opts, Rep).run();
}
