#include "verify/LegalityChecker.h"

#include "ir/IDs.h"

#include <optional>

using namespace noelle;
using namespace noelle::verify;
using nir::BinaryInst;
using nir::ConstantFP;
using nir::ConstantInt;
using nir::Instruction;
using nir::PhiInst;
using nir::StoreInst;
using nir::Value;

namespace {

std::optional<uint64_t> idOf(const Value *V) {
  std::string S = V->getMetadata(nir::InstIDKey);
  if (S.empty())
    return std::nullopt;
  uint64_t N = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

bool isIVSCC(const SCC *S, InductionVariableManager &IVs) {
  for (const auto &IV : IVs.getInductionVariables())
    if (IV->getSCC() == S || S->contains(IV->getPhi()))
      return true;
  return false;
}

/// Numeric equality of two constants across IR contexts (the snapshot
/// and the transformed module never share Constant pointers).
bool sameConstant(const Value *A, const Value *B) {
  if (const auto *AI = nir::dyn_cast<ConstantInt>(A)) {
    const auto *BI = nir::dyn_cast<ConstantInt>(B);
    return BI && AI->getValue() == BI->getValue();
  }
  if (const auto *AF = nir::dyn_cast<ConstantFP>(A)) {
    const auto *BF = nir::dyn_cast<ConstantFP>(B);
    return BF && AF->getValue() == BF->getValue();
  }
  return false;
}

/// The constant amount operand of a normalized IV update
/// add/sub(phi, amount), or nullopt.
std::optional<int64_t> updateAmount(const BinaryInst *Upd) {
  for (const Value *Op : Upd->operands())
    if (const auto *C = nir::dyn_cast<ConstantInt>(Op))
      return C->getValue();
  return std::nullopt;
}

class RegionAuditor {
public:
  RegionAuditor(const ParallelRegion &R, LoopContent &LC, CheckReport &Rep)
      : R(R), LC(LC), Rep(Rep), LS(LC.getLoopStructure()),
        Dag(LC.getSCCDAG()), RM(LC.getReductionManager()),
        IVs(LC.getIVManager()), Env(LC.getEnvironment()) {}

  void run() {
    if (R.Kind == "doall" || R.Kind == "helix" || R.Kind == "doall-spec") {
      for (const TaskInfo &T : R.Tasks) {
        checkIVRebase(T);
        checkReductions(T);
      }
    }
    checkLoopCarriedEdges();
    if (R.Kind == "dswp") {
      checkQueuePairing();
      checkStageRegisterDeps();
    }
  }

private:
  void report(DiagKind K, std::string Msg, const Instruction *First,
              const Instruction *Second, const std::string &InFn) {
    Diagnostic D;
    D.Kind = K;
    D.Message = std::move(Msg);
    if (First)
      D.First = describe(First);
    if (Second)
      D.Second = describe(Second);
    D.InFunction = InFn;
    Rep.add(std::move(D));
  }

  /// DOALL/HELIX: every IV's clone must start at start + f(taskID) and
  /// step by the original amount scaled by the worker count; otherwise
  /// workers execute overlapping iterations.
  void checkIVRebase(const TaskInfo &T) {
    for (const auto &IV : IVs.getInductionVariables()) {
      auto PhiId = idOf(IV->getPhi());
      auto StepId = idOf(IV->getStepInstruction());
      if (!PhiId || !StepId)
        continue; // Snapshot lacks IDs; reported as MissingMetadata.

      auto PhiIt = T.Clones.find(*PhiId);
      auto StepIt = T.Clones.find(*StepId);
      if (PhiIt == T.Clones.end() || StepIt == T.Clones.end()) {
        report(DiagKind::IVNotRebased,
               "induction variable has no clone in the task",
               IV->getPhi(), nullptr, T.Fn->getName());
        continue;
      }
      const auto *ClonedPhi = nir::dyn_cast<PhiInst>(PhiIt->second.front());
      const auto *ClonedUpd =
          nir::dyn_cast<BinaryInst>(StepIt->second.front());
      if (!ClonedPhi || !ClonedUpd) {
        report(DiagKind::IVNotRebased,
               "induction variable clone lost its phi/update shape",
               IV->getPhi(), nullptr, T.Fn->getName());
        continue;
      }

      Value *EntryIn = ClonedPhi->getIncomingValueForBlock(
          &T.Fn->getEntryBlock());
      if (!EntryIn || !sliceContains(EntryIn, T.TaskIDArg)) {
        report(DiagKind::IVNotRebased,
               "induction variable start is not offset by the task ID",
               IV->getPhi(), IV->getStepInstruction(), T.Fn->getName());
        continue;
      }
      auto OrigAmt =
          updateAmount(nir::cast<BinaryInst>(IV->getStepInstruction()));
      auto NewAmt = updateAmount(ClonedUpd);
      if (OrigAmt && NewAmt &&
          *NewAmt != *OrigAmt * static_cast<int64_t>(T.Workers)) {
        report(DiagKind::IVNotRebased,
               "induction variable stride is not scaled by the worker "
               "count (expected " +
                   std::to_string(*OrigAmt * (int64_t)T.Workers) + ", got " +
                   std::to_string(*NewAmt) + ")",
               IV->getPhi(), IV->getStepInstruction(), T.Fn->getName());
      }
    }
  }

  /// DOALL/HELIX: live-out reduction accumulators must be privatized —
  /// the cloned accumulator starts from the operator identity, and the
  /// partial result is stored into a per-worker environment lane.
  void checkReductions(const TaskInfo &T) {
    for (Instruction *Out : Env.getLiveOuts()) {
      const ReductionVariable *RV = nullptr;
      for (const auto &Cand : RM.getReductions())
        if (Out == Cand.Phi || Out == Cand.Update)
          RV = &Cand;
      if (!RV)
        continue; // HELIX segment state lives in spill slots instead.

      auto PhiId = idOf(RV->Phi);
      if (!PhiId)
        continue;
      auto PhiIt = T.Clones.find(*PhiId);
      const PhiInst *ClonedPhi =
          PhiIt == T.Clones.end()
              ? nullptr
              : nir::dyn_cast<PhiInst>(PhiIt->second.front());
      if (!ClonedPhi) {
        report(DiagKind::UnprivatizedAccumulator,
               "reduction accumulator has no phi clone in the task",
               RV->Phi, nullptr, T.Fn->getName());
        continue;
      }

      Value *Identity =
          RV->getIdentity(LS.getFunction()->getParent()->getContext());
      Value *EntryIn =
          ClonedPhi->getIncomingValueForBlock(&T.Fn->getEntryBlock());
      if (!EntryIn || !sameConstant(Identity, EntryIn)) {
        report(DiagKind::UnprivatizedAccumulator,
               "reduction accumulator does not start from the operator "
               "identity in the task (workers would double-count the "
               "initial value or share state)",
               RV->Phi, RV->Update, T.Fn->getName());
        continue;
      }

      // The partial result must land in a per-worker lane.
      auto OutId = idOf(Out);
      bool LaneStore = false;
      for (const auto &BB : T.Fn->getBlocks())
        for (const auto &IPtr : BB->getInstList()) {
          const auto *St = nir::dyn_cast<StoreInst>(IPtr.get());
          if (!St)
            continue;
          const Value *Stored = St->getValueOperand();
          bool IsPartial = false;
          if (OutId)
            for (const Instruction *Clone : T.realizationsOf(*OutId))
              if (Stored == Clone || sliceContains(Stored, Clone))
                IsPartial = true;
          if (!IsPartial)
            continue;
          PtrClass PC = classifyPointer(St->getPointerOperand(), T);
          if (PC.S == PtrClass::EnvLane ||
              (PC.S == PtrClass::EnvConst && !R.selfConcurrent()))
            LaneStore = true;
        }
      if (!LaneStore) {
        report(DiagKind::UnprivatizedAccumulator,
               "reduction partial result is not stored into a per-worker "
               "environment lane",
               RV->Phi, Out, T.Fn->getName());
      }
    }
  }

  /// Audits every loop-carried dependence of the pre-transform PDG.
  void checkLoopCarriedEdges() {
    for (auto *E : LC.getLoopDG().getEdges()) {
      if (!E->IsLoopCarried)
        continue;
      auto *From = nir::dyn_cast<Instruction>(E->From);
      auto *To = nir::dyn_cast<Instruction>(E->To);
      if (!From || !To || !LS.contains(From) || !LS.contains(To))
        continue;
      SCC *SF = Dag.sccOf(From);
      SCC *ST = Dag.sccOf(To);
      // IV and reduction cycles are audited structurally above; DSWP
      // instead relies on stage co-location for every cycle (IV SCCs are
      // replicated into each stage), so it audits them uniformly here.
      if (R.Kind != "dswp" && SF && SF == ST &&
          (isIVSCC(SF, IVs) || RM.getReductionFor(SF)))
        continue;

      auto FromId = idOf(From);
      auto ToId = idOf(To);
      if (!FromId || !ToId)
        continue;

      if (R.Kind == "doall")
        auditDoallEdge(*E, From, To, *FromId, *ToId);
      else if (R.Kind == "doall-spec")
        auditSpecEdge(*E, From, To, *FromId, *ToId);
      else if (R.Kind == "helix")
        auditHelixEdge(*E, From, To, *FromId, *ToId);
      else
        auditDswpEdge(*E, From, To, *FromId, *ToId);
    }
  }

  template <typename EdgeT>
  std::string edgeNoun(const EdgeT &E) const {
    std::string S = E.IsMemory ? "loop-carried memory dependence"
                               : "loop-carried register dependence";
    if (E.IsControl)
      S = "loop-carried control dependence";
    return S;
  }

  template <typename EdgeT>
  void auditDoallEdge(const EdgeT &E, Instruction *From, Instruction *To,
                      uint64_t FromId, uint64_t ToId) {
    // DOALL has no synchronization: any surviving loop-carried
    // dependence outside IV/reduction cycles is a violation if both
    // endpoints execute in the task.
    for (const TaskInfo &T : R.Tasks) {
      if (!T.realizes(FromId) || !T.realizes(ToId))
        continue;
      report(DiagKind::UnprotectedDependence,
             edgeNoun(E) + " survives in a DOALL task with no discharging "
                           "mechanism (not an IV or reduction cycle)",
             From, To, T.Fn->getName());
    }
  }

  template <typename EdgeT>
  void auditSpecEdge(const EdgeT &E, Instruction *From, Instruction *To,
                     uint64_t FromId, uint64_t ToId) {
    // Speculative DOALL discharges a surviving loop-carried memory
    // dependence by premise: the task records the speculated-away pair
    // and the runtime validates it at commit. Anything not recorded as a
    // premise is exactly as unprotected as in plain DOALL — control and
    // register carried dependences can never be premises.
    for (const TaskInfo &T : R.Tasks) {
      if (!T.realizes(FromId) || !T.realizes(ToId))
        continue;
      if (E.IsMemory && !E.IsControl) {
        bool Covered = false;
        for (const auto &[A, B] : specPremises(T))
          if ((A == FromId && B == ToId) || (A == ToId && B == FromId))
            Covered = true;
        if (Covered)
          continue;
      }
      report(DiagKind::UnprotectedDependence,
             edgeNoun(E) + " survives in a speculative DOALL task without "
                           "a recorded premise (the runtime would never "
                           "validate it)",
             From, To, T.Fn->getName());
    }
  }

  template <typename EdgeT>
  void auditHelixEdge(const EdgeT &E, Instruction *From, Instruction *To,
                      uint64_t FromId, uint64_t ToId) {
    for (const TaskInfo &T : R.Tasks) {
      auto RealF = T.realizationsOf(FromId);
      auto RealT = T.realizationsOf(ToId);
      if (RealF.empty() || RealT.empty())
        continue; // The dependence cannot manifest in this task.
      const auto &Held = heldSegments(T);
      nir::BitVector Common(std::max(1u, T.NumSegments),
                            T.NumSegments != 0);
      for (const Instruction *I : RealF)
        Common.intersectWith(Held.at(I));
      for (const Instruction *I : RealT)
        Common.intersectWith(Held.at(I));
      if (Common.none()) {
        report(DiagKind::UnprotectedDependence,
               edgeNoun(E) + " is not covered by a sequential segment: no "
                             "noelle_ss_wait gate is guaranteed to be held "
                             "at both endpoints on every path",
               From, To, T.Fn->getName());
      }
    }
  }

  template <typename EdgeT>
  void auditDswpEdge(const EdgeT &E, Instruction *From, Instruction *To,
                     uint64_t FromId, uint64_t ToId) {
    // Queues transport same-iteration values, so a loop-carried
    // dependence is only safe when some single stage owns clones of both
    // endpoints (the stage replays the cycle sequentially).
    for (const TaskInfo &T : R.Tasks)
      if (T.Clones.count(FromId) && T.Clones.count(ToId))
        return;
    bool Manifests = false;
    for (const TaskInfo &T : R.Tasks)
      if (T.realizes(FromId) || T.realizes(ToId))
        Manifests = true;
    if (!Manifests)
      return;
    report(DiagKind::UnprotectedDependence,
           edgeNoun(E) + " crosses DSWP stages: no single stage owns both "
                         "endpoints, and queues only carry same-iteration "
                         "values",
           From, To, R.Tasks.empty() ? R.SrcFn : R.Tasks[0].Fn->getName());
  }

  /// Every DSWP queue index must have at least one push and one pop, in
  /// different stages.
  void checkQueuePairing() {
    std::map<unsigned, std::vector<const TaskInfo::QueueOp *>> Pushes, Pops;
    std::map<unsigned, const TaskInfo *> PushTask, PopTask;
    for (const TaskInfo &T : R.Tasks)
      for (const auto &Op : T.QueueOps) {
        (Op.IsPush ? Pushes : Pops)[Op.Queue].push_back(&Op);
        (Op.IsPush ? PushTask : PopTask)[Op.Queue] = &T;
      }
    for (const auto &[Q, Ops] : Pops)
      if (!Pushes.count(Q))
        report(DiagKind::UnmatchedQueuePop,
               "queue " + std::to_string(Q) +
                   " is popped but never pushed: the consumer stage would "
                   "block forever (or read stale data)",
               Ops.front()->Call, nullptr,
               PopTask.at(Q)->Fn->getName());
    for (const auto &[Q, Ops] : Pushes)
      if (!Pops.count(Q))
        report(DiagKind::UnmatchedQueuePush,
               "queue " + std::to_string(Q) +
                   " is pushed but never popped: the value never reaches "
                   "its consumer and the queue fills up",
               Ops.front()->Call, nullptr,
               PushTask.at(Q)->Fn->getName());
  }

  /// Intra-iteration register dependences must reach the consuming stage
  /// either by local cloning (replicated producer) or through a queue pop
  /// of the producer's value.
  void checkStageRegisterDeps() {
    for (auto *E : LC.getLoopDG().getEdges()) {
      if (E->IsLoopCarried || E->IsControl || E->IsMemory)
        continue;
      auto *From = nir::dyn_cast<Instruction>(E->From);
      auto *To = nir::dyn_cast<Instruction>(E->To);
      if (!From || !To || !LS.contains(From) || !LS.contains(To))
        continue;
      auto FromId = idOf(From);
      auto ToId = idOf(To);
      if (!FromId || !ToId)
        continue;
      for (const TaskInfo &T : R.Tasks) {
        if (!T.Clones.count(*ToId))
          continue;
        if (T.realizes(*FromId) || T.popsValue(*FromId))
          continue;
        report(DiagKind::UnprotectedDependence,
               "register dependence is severed across DSWP stages: the "
               "consuming stage neither clones the producer nor pops its "
               "value from a queue",
               From, To, T.Fn->getName());
      }
    }
  }

  const std::vector<std::pair<uint64_t, uint64_t>> &
  specPremises(const TaskInfo &T) {
    auto It = PremiseCache.find(&T);
    if (It == PremiseCache.end())
      It = PremiseCache.emplace(&T, parseSpecPremises(T.Fn)).first;
    return It->second;
  }

  const std::map<const Instruction *, nir::BitVector> &
  heldSegments(const TaskInfo &T) {
    auto It = HeldCache.find(&T);
    if (It == HeldCache.end())
      It = HeldCache.emplace(&T, computeGuaranteedSegments(T)).first;
    return It->second;
  }

  const ParallelRegion &R;
  LoopContent &LC;
  CheckReport &Rep;
  nir::LoopStructure &LS;
  SCCDAG &Dag;
  ReductionManager &RM;
  InductionVariableManager &IVs;
  Environment &Env;
  std::map<const TaskInfo *,
           std::map<const Instruction *, nir::BitVector>>
      HeldCache;
  std::map<const TaskInfo *, std::vector<std::pair<uint64_t, uint64_t>>>
      PremiseCache;
};

} // namespace

void noelle::verify::checkLegality(Noelle &Snapshot,
                                   const std::vector<ParallelRegion> &Regions,
                                   CheckReport &Rep) {
  std::map<uint64_t, LoopContent *> ByOrigin;
  for (LoopContent *LCPtr : Snapshot.getLoopContents()) {
    nir::LoopStructure &LS = LCPtr->getLoopStructure();
    if (LS.getHeader()->getInstList().empty())
      continue;
    if (auto Id = idOf(LS.getHeader()->getInstList().front().get()))
      ByOrigin[*Id] = LCPtr;
  }

  for (const ParallelRegion &R : Regions) {
    auto It = ByOrigin.find(R.Origin);
    if (It == ByOrigin.end()) {
      Diagnostic D;
      D.Kind = DiagKind::MissingMetadata;
      D.Message = "no pre-transform loop with origin ID " +
                  std::to_string(R.Origin) +
                  " exists in the snapshot; the region cannot be audited";
      D.InFunction = R.SrcFn;
      Rep.add(std::move(D));
      continue;
    }
    RegionAuditor(R, *It->second, Rep).run();
  }
}
