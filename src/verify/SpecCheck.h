//===----------------------------------------------------------------------===//
///
/// \file
/// The --speculative audit (noelle-check --speculative): verifies the
/// validation/recovery machinery of speculative DOALL regions, on top of
/// the ordinary legality audit. For every "doall-spec" task it checks
/// that
///   - every memory effect is journaled: no raw load/store survives in
///     the task body, and every call is a noelle_spec_* accessor or a
///     pure math external (anything else escapes the write log, so the
///     commit-time validation could neither see it nor roll it back);
///   - the recovery path exists: the noelle.task.spec.seq metadata names
///     a sequential fallback clone that is present, tagged
///     "doall-spec-seq", and itself uninstrumented;
///   - the recorded premises are supported by the evidence: the task
///     records at least one premise, the module carries a
///     memory-dependence profile that observed the loop, no premise pair
///     ever manifested in that profile, and every premise matches a
///     loop-carried memory dependence of the pre-transform PDG.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_SPECCHECK_H
#define VERIFY_SPECCHECK_H

#include "ir/Module.h"
#include "verify/Diagnostic.h"
#include "verify/TaskModel.h"

namespace noelle {

class Noelle;

namespace verify {

/// Audits the speculative regions of \p M (the transformed module)
/// against \p Snapshot (the Noelle abstractions over the pre-transform
/// snapshot, for the PDG) and the memory-dependence profile embedded in
/// \p M. Regions of other kinds are ignored.
void checkSpeculation(nir::Module &M, Noelle &Snapshot,
                      const std::vector<ParallelRegion> &Regions,
                      CheckReport &Rep);

} // namespace verify
} // namespace noelle

#endif // VERIFY_SPECCHECK_H
