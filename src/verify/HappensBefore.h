//===----------------------------------------------------------------------===//
///
/// \file
/// Region-wide happens-before engine for the static race detector. Models
/// the synchronization the parallelizing transforms emit — queue push/pop
/// (DSWP), sequential-segment gates `noelle_ss_wait`/`noelle_ss_signal`
/// (HELIX), and the dispatch entry/exit fences bounding every region — as
/// per-task event sets, and answers "can these two anchors ever run
/// concurrently?" with the discharge rule that proves they cannot.
///
/// The engine runs a flow-sensitive all-paths dataflow (on the shared
/// DataFlowEngine) computing, at each program point, the set of sync
/// events guaranteed to have completed on every path from task entry.
/// On top of that fact base it implements:
///
///  - QueueHB: release/acquire ordering through a single queue
///    (producer-side anchor precedes every push; a pop guaranteed
///    complete before the consumer-side anchor).
///  - MultiQueueJoin: the transitive closure of QueueHB through queue
///    chains and multi-producer joins — a queue is "covered" once every
///    push site region-wide is known ordered after the anchor, and
///    covered queues extend the fact base through their pops.
///  - LoopPhase: k-th-push/k-th-pop matching for queue ops sitting in
///    lockstep loops (keyed by the re-based IVs TaskModel tracks), which
///    orders per-iteration accesses across pipelined DSWP stages.
///  - SegmentOrder / CrossSegment: flow-sensitive HELIX gate protection,
///    same-segment mutual exclusion and cross-segment partial orders,
///    gated by a segment-protocol leak check (a segment whose wait is not
///    matched by a signal on every cyclic path protects nothing).
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_HAPPENSBEFORE_H
#define VERIFY_HAPPENSBEFORE_H

#include "verify/TaskModel.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

namespace noelle {
namespace verify {

/// Memory-dependence summary recovered from the pre-transform snapshot's
/// embedded PDG: unordered pairs of original instruction IDs with a
/// memory dependence between them (and the loop-carried subset). Pairs
/// are stored symmetrically; membership is direction-free.
struct PDGDependenceSummary {
  std::set<std::pair<uint64_t, uint64_t>> MemDeps;
  std::set<std::pair<uint64_t, uint64_t>> LoopCarriedMemDeps;
};

/// The discharge rule that proved a pair of accesses ordered (or
/// mutually excluded). Recorded per pair for diagnostics and stats.
enum class HBRule {
  None,           ///< no ordering established
  QueueHB,        ///< single-queue release/acquire ordering
  MultiQueueJoin, ///< ordering through queue chains / multi-producer joins
  LoopPhase,      ///< k-th push matched with k-th pop in lockstep loops
  SegmentOrder,   ///< same HELIX segment held at both anchors
  CrossSegment,   ///< distinct segments, conflicts intra-iteration only
};

/// Stable kebab-case name for stats keys and diagnostics.
const char *hbRuleName(HBRule R);

/// Per-region happens-before engine. Owns per-task dominator trees, loop
/// info, completed-event dataflows, and gate dataflows; all built lazily
/// and cached for the lifetime of the engine (one region scan).
class HappensBeforeEngine {
public:
  struct Config {
    bool QueueHB = true;        ///< any queue-based ordering at all
    bool MultiQueueJoin = true; ///< chains, joins, multi-producer queues
    bool LoopPhase = true;      ///< lockstep k-th push / k-th pop matching
    bool SegmentOrder = true;   ///< same-segment gate protection
    bool CrossSegment = true;   ///< cross-segment intra-iteration orders
    /// Flow-sensitive mode: acquire facts come from the all-paths
    /// completed-event dataflow and segment facts are leak-gated. When
    /// false the engine reproduces the PR-4 structural shortcut
    /// (dominating pop, no leak check).
    bool FlowSensitive = true;
  };

  HappensBeforeEngine(const ParallelRegion &R,
                      const PDGDependenceSummary *Deps, Config C);
  ~HappensBeforeEngine();

  HappensBeforeEngine(const HappensBeforeEngine &) = delete;
  HappensBeforeEngine &operator=(const HappensBeforeEngine &) = delete;

  /// Cross-task ordering (DSWP): the rule proving anchor \p A in \p TA
  /// and anchor \p B in \p TB can never overlap in time, in either
  /// direction, or HBRule::None. Tasks must be distinct members of the
  /// region and not self-concurrent.
  HBRule orderedCrossTask(const nir::Instruction *A, const TaskInfo &TA,
                          const nir::Instruction *B, const TaskInfo &TB);

  /// HELIX gate protection for two anchors of the self-concurrent task
  /// \p T: SegmentOrder when a common segment is guaranteed held at both
  /// anchors, CrossSegment when each anchor holds some (distinct)
  /// segment and the snapshot PDG shows the pair's conflicts are
  /// intra-iteration only. Leak-gated in flow-sensitive mode.
  HBRule segmentOrdered(const nir::Instruction *A, const nir::Instruction *B,
                        const TaskInfo &T);

private:
  struct TaskState;
  struct QueueSites;

  TaskState &stateFor(const TaskInfo &T);
  const std::map<unsigned, QueueSites> &queueSites();

  /// True if \p Later may execute after (or concurrently re-execute with)
  /// \p Earlier: CFG reachability from Earlier's block, or same-block
  /// order, or a shared cycle.
  bool mayFollow(const nir::Instruction *Earlier,
                 const nir::Instruction *Later, TaskState &TS);

  /// True if sync event \p Ev has completed on every path from task
  /// entry to \p At (flow-sensitive mode), or dominates \p At (legacy).
  bool completedBefore(const nir::Instruction *Ev, const nir::Instruction *At,
                       TaskState &TS);

  HBRule queueOrdered(const nir::Instruction *Pre, const TaskInfo &PreT,
                      const nir::Instruction *Post, const TaskInfo &PostT);
  bool loopPhaseOrdered(const nir::Instruction *Pre, const TaskInfo &PreT,
                        const nir::Instruction *Post, const TaskInfo &PostT);

  const ParallelRegion &R;
  const PDGDependenceSummary *Deps;
  Config Cfg;

  std::map<const TaskInfo *, std::unique_ptr<TaskState>> States;
  std::unique_ptr<std::map<unsigned, QueueSites>> Queues;
  /// Raw noelle_queue_push/pop calls without queue provenance metadata
  /// exist in the region: queue reasoning is unsound, disable it.
  bool UnknownQueueOps = false;
};

} // namespace verify
} // namespace noelle

#endif // VERIFY_HAPPENSBEFORE_H
