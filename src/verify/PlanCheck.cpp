#include "verify/PlanCheck.h"

#include "ir/IDs.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"
#include "xforms/SpecDOALL.h"

#include <algorithm>
#include <map>
#include <set>

using namespace noelle;
using namespace noelle::verify;
using planner::PlanEntry;
using planner::ProgramPlan;

namespace {

std::string entryLabel(const PlanEntry &E, size_t Idx) {
  return "entry " + std::to_string(Idx) + " (fn=" + E.FunctionName +
         " header=" + std::to_string(E.HeaderInstID) +
         " kind=" + techniqueName(E.Kind) + ")";
}

/// Finds the loop an entry names: the loop of \p N whose header
/// contains the instruction carrying the entry's deterministic ID, in
/// the named function.
LoopContent *findLoop(Noelle &N, const PlanEntry &E) {
  std::string Want = std::to_string(E.HeaderInstID);
  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    if (LS.getFunction()->getName() != E.FunctionName)
      continue;
    const auto &Insts = LS.getHeader()->getInstList();
    if (!Insts.empty() &&
        Insts.front()->getMetadata(nir::InstIDKey) == Want)
      return LC;
  }
  return nullptr;
}

/// The legality analysis behind one plan entry, under the planner's
/// conventions (per-tool profitability thresholds neutralized — the
/// plan already encodes the profitability decision) and the entry's
/// own worker count.
Legality entryLegality(Noelle &N, const PlanEntry &E, LoopContent &LC) {
  switch (E.Kind) {
  case TechniqueKind::DOALL: {
    DOALLOptions O;
    O.NumCores = std::max(1u, E.Workers);
    return DOALL(N, O).applicable(LC);
  }
  case TechniqueKind::HELIX: {
    HELIXOptions O;
    O.NumCores = std::max(1u, E.Workers);
    O.MinimumEstimatedSpeedup = 0;
    return HELIX(N, O).applicable(LC);
  }
  case TechniqueKind::DSWP: {
    DSWPOptions O;
    O.NumCores = std::max(1u, E.Workers);
    O.MinimumStageWeight = 0;
    return DSWP(N, O).applicable(LC);
  }
  case TechniqueKind::SpecDOALL: {
    DOALLOptions O;
    O.NumCores = std::max(1u, E.Workers);
    return SpecDOALL(N, O).applicable(LC);
  }
  }
  return Legality();
}

} // namespace

CheckReport noelle::verify::checkPlan(nir::Module &M,
                                      const ProgramPlan &P) {
  CheckReport Rep;

  if (P.ModuleHash != 0 && P.ModuleHash != M.getContentHash()) {
    Diagnostic D;
    D.Kind = DiagKind::PlanHashMismatch;
    D.Message = "plan was computed for a different module (plan hash " +
                std::to_string(P.ModuleHash) + ", module hash " +
                std::to_string(M.getContentHash()) + ")";
    Rep.add(std::move(D));
    return Rep; // nothing below is meaningful against other code
  }

  Noelle N(M);

  std::set<uint64_t> SeenLoops;
  std::map<size_t, LoopContent *> EntryLoop;

  for (size_t I = 0; I < P.Entries.size(); ++I) {
    const PlanEntry &E = P.Entries[I];

    auto Malformed = [&](const std::string &Why) {
      Diagnostic D;
      D.Kind = DiagKind::PlanMalformed;
      D.Message = entryLabel(E, I) + ": " + Why;
      D.InFunction = E.FunctionName;
      Rep.add(std::move(D));
    };

    if (E.Workers < 1) {
      Malformed("worker count must be at least 1");
      continue;
    }
    if (E.ChunkGrain < 1) {
      Malformed("chunk grain must be at least 1");
      continue;
    }
    if (!SeenLoops.insert(E.HeaderInstID).second) {
      Malformed("another entry already claims this loop");
      continue;
    }
    if (E.Parent >= 0) {
      if (static_cast<size_t>(E.Parent) >= P.Entries.size() ||
          static_cast<size_t>(E.Parent) == I) {
        Malformed("parent index out of range");
        continue;
      }
      const PlanEntry &Parent = P.Entries[static_cast<size_t>(E.Parent)];
      if (Parent.Kind != TechniqueKind::DSWP) {
        Malformed("parent entry is not a DSWP pipeline");
        continue;
      }
      if (Parent.Parent >= 0) {
        Malformed("parent entry is itself nested");
        continue;
      }
      if (E.Kind != TechniqueKind::DOALL) {
        Malformed("nested entries must be DOALL");
        continue;
      }
    }

    LoopContent *LC = findLoop(N, E);
    if (!LC) {
      Diagnostic D;
      D.Kind = DiagKind::PlanLoopNotFound;
      D.Message = entryLabel(E, I) +
                  ": no loop with this header instruction ID";
      D.InFunction = E.FunctionName;
      Rep.add(std::move(D));
      continue;
    }
    EntryLoop[I] = LC;

    // A nested entry's loop must really sit immediately inside its
    // parent entry's loop (pre-transform nesting mirrors the stage
    // containment apply() relies on).
    if (E.Parent >= 0) {
      auto ParentIt = EntryLoop.find(static_cast<size_t>(E.Parent));
      if (ParentIt == EntryLoop.end() ||
          LC->getLoopStructure().getParentLoop() !=
              &ParentIt->second->getLoopStructure()) {
        Malformed("nested loop is not immediately inside its parent "
                  "entry's loop");
        continue;
      }
    }

    Legality L = entryLegality(N, E, *LC);
    if (!L) {
      Diagnostic D;
      D.Kind = DiagKind::PlanIllegal;
      D.Message = entryLabel(E, I) + ": " + techniqueName(E.Kind) +
                  " is not applicable: " + L.Reason;
      D.InFunction = E.FunctionName;
      Rep.add(std::move(D));
      continue;
    }

    // Speculative entries must record exactly the premises the module's
    // embedded memory-dependence profile still supports: a premise the
    // re-derivation no longer yields means the module or its profile
    // changed under the plan, and the runtime would be validating
    // different dependences than the plan was costed on.
    if (E.Kind == TechniqueKind::SpecDOALL) {
      auto Want = E.Premises;
      auto Got = L.SpecPremises;
      std::sort(Want.begin(), Want.end());
      std::sort(Got.begin(), Got.end());
      if (Want != Got) {
        Diagnostic D;
        D.Kind = DiagKind::PlanIllegal;
        D.Message =
            entryLabel(E, I) +
            ": speculative premises do not match the profile evidence "
            "(plan records " +
            std::to_string(Want.size()) + ", re-derivation yields " +
            std::to_string(Got.size()) + ")";
        D.InFunction = E.FunctionName;
        Rep.add(std::move(D));
      }
    }
  }
  return Rep;
}
