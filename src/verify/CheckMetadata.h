//===----------------------------------------------------------------------===//
///
/// \file
/// The metadata contract between the parallelizing transforms and the
/// static verification layer (noelle-check). Transforms annotate the
/// task functions they generate with enough provenance for the checker
/// to map every task instruction back to the pre-transform loop and
/// audit it against the embedded PDG:
///
///   on the task function (function-level metadata):
///     noelle.task          "true"            (pre-existing task marker)
///     noelle.task.kind     doall | helix | dswp-stage | dswp-pipeline
///     noelle.task.origin   instruction ID of the source loop header's
///                          first instruction (identifies the loop in
///                          the pre-transform snapshot)
///     noelle.task.srcfn    name of the function the loop came from
///     noelle.task.workers  worker count (doall/helix)
///     noelle.task.stage    this stage's index        (dswp-stage)
///     noelle.task.stages   total number of stages    (dswp)
///     noelle.task.segments number of sequential segments (helix)
///
///   on task instructions (instruction-level metadata):
///     noelle.check.orig    ID of the original instruction this one is
///                          a clone of (replaces the clone's inherited
///                          noelle.inst.id, which would otherwise
///                          duplicate the original's)
///     noelle.check.spill   ID of the recurrence phi whose value this
///                          HELIX spill load/store transports
///     noelle.check.queue   DSWP queue index of this push/pop call
///     noelle.check.queue.orig  ID of the value the queue transports
///
/// IDs are only emitted when the pre-transform IR carried deterministic
/// IDs (ir/IDs.h) — i.e. when the pipeline ran verify::captureForCheck
/// (or noelle-pdg-embed) before transforming. Without IDs the transforms
/// still tag kinds and counts, and the checker reports the tasks as
/// unauditable instead of guessing.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_CHECKMETADATA_H
#define VERIFY_CHECKMETADATA_H

#include <string>

namespace noelle {
namespace verify {

inline constexpr const char *TaskKindKey = "noelle.task.kind";
inline constexpr const char *TaskOriginKey = "noelle.task.origin";
inline constexpr const char *TaskSrcFnKey = "noelle.task.srcfn";
inline constexpr const char *TaskWorkersKey = "noelle.task.workers";
inline constexpr const char *TaskStageKey = "noelle.task.stage";
inline constexpr const char *TaskStagesKey = "noelle.task.stages";
inline constexpr const char *TaskSegmentsKey = "noelle.task.segments";
/// Speculative DOALL ("doall-spec" tasks): the name of the
/// uninstrumented sequential fallback clone the runtime re-executes on
/// misspeculation, and the speculated-away loop-carried memory edges as
/// "srcID:dstID" pairs joined with ','.
inline constexpr const char *TaskSpecSeqKey = "noelle.task.spec.seq";
inline constexpr const char *TaskSpecPremisesKey =
    "noelle.task.spec.premises";

/// Externals a speculative ("doall-spec") task may call: pure math with
/// no memory effects and no observable output. Everything else (print_*,
/// malloc/free, clock_ns, defined functions, the runtime itself) either
/// touches memory outside the write log or commits an effect the
/// rollback cannot undo. Shared by the SpecDOALL transform (which
/// refuses loops calling anything else) and the --speculative audit
/// (which re-checks the shipped task bodies).
inline bool isSpecPureExternal(const std::string &Name) {
  return Name == "sqrt" || Name == "fabs" || Name == "exp" ||
         Name == "log" || Name == "sin" || Name == "cos" ||
         Name == "pow" || Name == "floor";
}

inline constexpr const char *CheckOrigKey = "noelle.check.orig";
inline constexpr const char *CheckSpillKey = "noelle.check.spill";
inline constexpr const char *CheckQueueKey = "noelle.check.queue";
inline constexpr const char *CheckQueueOrigKey = "noelle.check.queue.orig";

} // namespace verify
} // namespace noelle

#endif // VERIFY_CHECKMETADATA_H
