#include "verify/NoelleCheck.h"

#include "ir/IDs.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "noelle/Noelle.h"
#include "tools/NoelleTools.h"
#include "verify/LegalityChecker.h"
#include "verify/RaceDetector.h"
#include "verify/SpecCheck.h"
#include "verify/TaskModel.h"

using namespace noelle;
using namespace noelle::verify;

PreTransformSnapshot noelle::verify::captureForCheck(nir::Module &M) {
  PreTransformSnapshot Snap;
  // noelle-pdg-embed assigns fresh deterministic IDs and serializes the
  // PDG keyed by the module's content hash; both travel in the text.
  Snap.PDGEdges = tools::pdgEmbed(M);
  Snap.IRText = M.str();
  return Snap;
}

CheckReport noelle::verify::checkModule(nir::Module &M,
                                        const PreTransformSnapshot &Snap,
                                        const CheckOptions &Opts) {
  CheckReport Rep;

  if (Opts.RunVerifier) {
    for (const std::string &Err : nir::verifyModule(M)) {
      Diagnostic D;
      D.Kind = DiagKind::SSAViolation;
      D.Message = Err;
      Rep.add(std::move(D));
    }
  }

  if (!Opts.RunLegality && !Opts.RunRaces && !Opts.Speculative)
    return Rep;

  std::vector<ParallelRegion> Regions = discoverRegions(M, Rep);

  // Both the legality audit and the race detector are grounded in the
  // pre-transform snapshot: legality walks its loop-carried edges, the
  // race detector uses the PDG's proven-independent pairs to discipline
  // the points-to fallback.
  nir::Context SnapCtx;
  std::string ParseErr;
  auto SnapM = nir::parseModule(SnapCtx, Snap.IRText, ParseErr);
  if (!SnapM) {
    Diagnostic D;
    D.Kind = DiagKind::MissingMetadata;
    D.Message = "pre-transform snapshot does not parse: " + ParseErr;
    Rep.add(std::move(D));
    return Rep;
  }
  // The snapshot carries its own PDG cache; the default build options
  // load it after the content hash matches.
  Noelle SnapNoelle(*SnapM);

  if (Opts.RunLegality)
    checkLegality(SnapNoelle, Regions, Rep);

  if (Opts.Speculative)
    checkSpeculation(M, SnapNoelle, Regions, Rep);

  if (Opts.RunRaces) {
    // The snapshot's whole-program PDG (embedded or rebuilt) carries no
    // loop-carried refinement — only loop-scoped PDGs are refined at
    // build time. The race detector's grounded discharge hinges on the
    // distinction (for DOALL/HELIX only loop-carried dependences relate
    // distinct workers), so recover the flags first.
    SnapNoelle.refinePDGLoopCarried();
    PDGDependenceSummary Deps;
    auto IdOf = [](const nir::Value *V) -> uint64_t {
      const auto *I = nir::dyn_cast<nir::Instruction>(V);
      if (!I)
        return 0;
      std::string S = I->getMetadata(nir::InstIDKey);
      if (S.empty())
        return 0;
      uint64_t N = 0;
      for (char C : S) {
        if (C < '0' || C > '9')
          return 0;
        N = N * 10 + static_cast<uint64_t>(C - '0');
      }
      return N;
    };
    for (const auto *E : SnapNoelle.getPDG().getEdges()) {
      if (!E->IsMemory)
        continue;
      uint64_t F = IdOf(E->From), T = IdOf(E->To);
      if (!F || !T)
        continue;
      Deps.MemDeps.insert({F, T});
      Deps.MemDeps.insert({T, F});
      if (E->IsLoopCarried) {
        Deps.LoopCarriedMemDeps.insert({F, T});
        Deps.LoopCarriedMemDeps.insert({T, F});
      }
    }
    detectRaces(M, Regions, Rep, &Deps, Opts.Races);
  }

  return Rep;
}
