#include "verify/DataFlowLint.h"

#include "analysis/AliasAnalysis.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "noelle/DataFlow.h"
#include "verify/TaskModel.h"

#include <set>

using namespace noelle;
using namespace noelle::verify;
using nir::AllocaInst;
using nir::CallInst;
using nir::CastInst;
using nir::CmpInst;
using nir::ConstantInt;
using nir::Function;
using nir::GEPInst;
using nir::Instruction;
using nir::LoadInst;
using nir::StoreInst;
using nir::Value;

namespace {

/// Chases a pointer through casts and geps to its base value.
const Value *underlyingBase(const Value *P) {
  while (true) {
    if (const auto *C = nir::dyn_cast<CastInst>(P)) {
      P = C->getValueOperand();
      continue;
    }
    if (const auto *G = nir::dyn_cast<GEPInst>(P)) {
      P = G->getBase();
      continue;
    }
    return P;
  }
}

/// True if the slot's address leaves the function's direct load/store
/// view: passed to a call, stored somewhere as a value, or returned.
/// Escaped slots can be read or written by code the lint cannot see.
bool escapes(const AllocaInst *A) {
  for (const auto &U : A->uses()) {
    const auto *User =
        nir::dyn_cast<Instruction>(static_cast<const Value *>(U.TheUser));
    if (!User)
      continue;
    if (nir::isa<CallInst>(User))
      return true;
    if (const auto *S = nir::dyn_cast<StoreInst>(User)) {
      if (S->getValueOperand() == A)
        return true;
      continue;
    }
    if (nir::isa<nir::RetInst>(User))
      return true;
    // Casts/geps of the address: escape if any derived value does.
    if (nir::isa<CastInst>(User) || nir::isa<GEPInst>(User)) {
      for (const auto &U2 : User->uses()) {
        const auto *User2 = nir::dyn_cast<Instruction>(
            static_cast<const Value *>(U2.TheUser));
        if (User2 && (nir::isa<CallInst>(User2) ||
                      (nir::isa<StoreInst>(User2) &&
                       nir::cast<StoreInst>(User2)->getValueOperand() ==
                           static_cast<const Value *>(User))))
          return true;
      }
    }
  }
  return false;
}

void addDiag(CheckReport &Rep, DiagKind K, std::string Msg,
             const Instruction *Site, const Instruction *Slot,
             Function &F) {
  Diagnostic D;
  D.Kind = K;
  D.Message = std::move(Msg);
  D.First = describe(Site);
  if (Slot)
    D.Second = describe(Slot);
  D.InFunction = F.getName();
  Rep.add(std::move(D));
}

/// Forward all-paths "definitely initialized" facts per alloca; a load
/// from a slot outside IN(load) may read garbage.
void lintUninitializedReads(Function &F, CheckReport &Rep) {
  DataFlowProblem P;
  P.Forward = true;
  P.MeetIsUnion = false;
  P.BoundaryAllOnes = false;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (nir::isa<AllocaInst>(I.get()))
        P.Universe.push_back(I.get());
  if (P.Universe.empty())
    return;

  P.Transfer = [](const Instruction *I, const DataFlowResult &R,
                  nir::BitVector &Gen, nir::BitVector &Kill) {
    nir::MemAccess Acc;
    if (nir::memoryAccessOf(I, Acc) && Acc.IsWrite) {
      const Value *Base = underlyingBase(Acc.Ptr);
      if (R.hasIndex(Base))
        Gen.set(R.indexOf(Base));
    } else if (nir::isa<CallInst>(I)) {
      // A call receiving the address may initialize the slot; assume it
      // does (the lint stays conservative about reporting).
      for (const Value *Op : I->operands()) {
        const Value *Base = underlyingBase(Op);
        if (R.hasIndex(Base))
          Gen.set(R.indexOf(Base));
      }
    }
  };
  auto DF = DataFlowEngine().solve(F, P);

  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList()) {
      nir::MemAccess Acc;
      if (!nir::memoryAccessOf(I.get(), Acc) || Acc.IsWrite)
        continue;
      const Value *Base = underlyingBase(Acc.Ptr);
      if (!DF->hasIndex(Base))
        continue;
      if (!DF->in(I.get()).test(DF->indexOf(Base)))
        addDiag(Rep, DiagKind::UninitializedRead,
                "load may read a stack slot before any store to it",
                I.get(), nir::cast<Instruction>(Base), F);
    }
}

/// Backward slot liveness; a store to a non-escaping slot that is dead
/// in OUT(store) is never read.
void lintDeadStores(Function &F, CheckReport &Rep) {
  DataFlowProblem P;
  P.Forward = false;
  P.MeetIsUnion = true;
  P.BoundaryAllOnes = false;
  std::set<const Value *> Escaped;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (const auto *A = nir::dyn_cast<AllocaInst>(I.get())) {
        P.Universe.push_back(I.get());
        if (escapes(A))
          Escaped.insert(A);
      }
  if (P.Universe.empty())
    return;

  P.Transfer = [](const Instruction *I, const DataFlowResult &R,
                  nir::BitVector &Gen, nir::BitVector &Kill) {
    nir::MemAccess Acc;
    if (nir::memoryAccessOf(I, Acc) && !Acc.IsWrite) {
      const Value *Base = underlyingBase(Acc.Ptr);
      if (R.hasIndex(Base))
        Gen.set(R.indexOf(Base));
    } else if (nir::isa<StoreInst>(I)) {
      // A direct whole-slot scalar store shadows earlier stores; stores
      // through geps may be partial, so they do not kill (nor do vector
      // stores, whose extent need not match the slot).
      const Value *Ptr = nir::cast<StoreInst>(I)->getPointerOperand();
      if (R.hasIndex(Ptr))
        Kill.set(R.indexOf(Ptr));
    } else if (nir::isa<CallInst>(I)) {
      for (const Value *Op : I->operands()) {
        const Value *Base = underlyingBase(Op);
        if (R.hasIndex(Base))
          Gen.set(R.indexOf(Base));
      }
    }
  };
  auto DF = DataFlowEngine().solve(F, P);

  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList()) {
      const auto *S = nir::dyn_cast<StoreInst>(I.get());
      if (!S)
        continue;
      // Only direct stores to the slot itself: gep'd element stores into
      // arrays are usually read through differently-shaped geps.
      const Value *Ptr = S->getPointerOperand();
      if (!DF->hasIndex(Ptr) || Escaped.count(Ptr))
        continue;
      if (!DF->out(S).test(DF->indexOf(Ptr)))
        addDiag(Rep, DiagKind::DeadStore,
                "store to a stack slot is never read afterwards",
                S, nir::cast<Instruction>(Ptr), F);
    }
}

/// Forward all-paths "compared against null" facts per allocator call; a
/// dereference of an unchecked handle crashes when the allocation fails.
void lintNullDerefs(Function &F, CheckReport &Rep) {
  DataFlowProblem P;
  P.Forward = true;
  P.MeetIsUnion = false;
  P.BoundaryAllOnes = false;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (const auto *C = nir::dyn_cast<CallInst>(I.get()))
        if (C->getCalledFunction() &&
            C->getCalledFunction()->getName() == "malloc")
          P.Universe.push_back(I.get());
  if (P.Universe.empty())
    return;

  P.Transfer = [](const Instruction *I, const DataFlowResult &R,
                  nir::BitVector &Gen, nir::BitVector &Kill) {
    const auto *Cmp = nir::dyn_cast<CmpInst>(I);
    if (!Cmp)
      return;
    // handle == null / handle != null (either operand order, possibly
    // through casts).
    for (const Value *Side : {Cmp->getLHS(), Cmp->getRHS()}) {
      const Value *Other =
          Side == Cmp->getLHS() ? Cmp->getRHS() : Cmp->getLHS();
      const auto *CI = nir::dyn_cast<ConstantInt>(Other);
      bool OtherIsNull = CI && CI->getValue() == 0;
      if (!OtherIsNull)
        continue;
      const Value *Handle = Side;
      while (const auto *Cast = nir::dyn_cast<CastInst>(Handle))
        Handle = Cast->getValueOperand();
      if (R.hasIndex(Handle))
        Gen.set(R.indexOf(Handle));
    }
  };
  auto DF = DataFlowEngine().solve(F, P);

  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList()) {
      nir::MemAccess Acc;
      if (!nir::memoryAccessOf(I.get(), Acc))
        continue;
      const Value *Ptr = Acc.Ptr;
      const Value *Base = underlyingBase(Ptr);
      if (!DF->hasIndex(Base))
        continue;
      if (!DF->in(I.get()).test(DF->indexOf(Base)))
        addDiag(Rep, DiagKind::NullDeref,
                "heap handle is dereferenced without a null check on some "
                "path from its allocation",
                I.get(), nir::cast<Instruction>(Base), F);
    }
}

} // namespace

void noelle::verify::lintFunction(Function &F, const LintOptions &Opts,
                                  CheckReport &Rep) {
  if (F.isDeclaration())
    return;
  if (Opts.UninitializedRead)
    lintUninitializedReads(F, Rep);
  if (Opts.DeadStore)
    lintDeadStores(F, Rep);
  if (Opts.NullDeref)
    lintNullDerefs(F, Rep);
}

void noelle::verify::lintModule(nir::Module &M, const LintOptions &Opts,
                                CheckReport &Rep) {
  for (const auto &F : M.getFunctions())
    lintFunction(*F, Opts, Rep);
}
