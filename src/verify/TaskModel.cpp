#include "verify/TaskModel.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IDs.h"
#include "noelle/DataFlow.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>

using namespace noelle;
using namespace noelle::verify;
using nir::BasicBlock;
using nir::CallInst;
using nir::Function;
using nir::Instruction;
using nir::Value;

namespace {

/// Parses a decimal metadata value; nullopt when absent or malformed.
std::optional<uint64_t> parseIdMetadata(const Value *V,
                                        const char *Key) {
  std::string S = V->getMetadata(Key);
  if (S.empty())
    return std::nullopt;
  uint64_t N = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

unsigned parseCount(const Value *V, const char *Key, unsigned Default) {
  auto N = parseIdMetadata(V, Key);
  return N ? static_cast<unsigned>(*N) : Default;
}

const char *calleeName(const Instruction *I) {
  const auto *Call = nir::dyn_cast<CallInst>(I);
  if (!Call)
    return "";
  Function *Callee = Call->getCalledFunction();
  return Callee ? Callee->getName().c_str() : "";
}

} // namespace

std::vector<Instruction *> TaskInfo::realizationsOf(uint64_t Id) const {
  std::vector<Instruction *> Out;
  if (auto It = Clones.find(Id); It != Clones.end())
    Out.insert(Out.end(), It->second.begin(), It->second.end());
  if (auto It = Spills.find(Id); It != Spills.end())
    Out.insert(Out.end(), It->second.begin(), It->second.end());
  return Out;
}

bool TaskInfo::popsValue(uint64_t Id) const {
  for (const QueueOp &Op : QueueOps)
    if (!Op.IsPush && Op.Orig == Id)
      return true;
  return false;
}

std::vector<ParallelRegion>
noelle::verify::discoverRegions(nir::Module &M, CheckReport &Rep) {
  // Group decoded tasks by (source function, origin instruction).
  std::map<std::pair<std::string, uint64_t>, ParallelRegion> Regions;

  for (const auto &FPtr : M.getFunctions()) {
    Function *F = FPtr.get();
    if (F->isDeclaration() || F->getMetadata("noelle.task") != "true")
      continue;

    TaskInfo T;
    T.Fn = F;
    T.Kind = F->getMetadata(TaskKindKey);
    if (T.Kind == "dswp-pipeline")
      continue; // Dispatch trampoline: no loop body, nothing to audit.
    if (T.Kind == "doall-spec-seq")
      continue; // Speculation recovery clone: runs alone after rollback,
                // never concurrently; the --speculative audit reaches it
                // through the spec task's noelle.task.spec.seq link.

    auto Origin = parseIdMetadata(F, TaskOriginKey);
    if (T.Kind.empty() || !Origin) {
      Diagnostic D;
      D.Kind = DiagKind::MissingMetadata;
      D.Message = "task function lacks provenance metadata (" +
                  std::string(T.Kind.empty() ? TaskKindKey : TaskOriginKey) +
                  "); it cannot be audited";
      D.InFunction = F->getName();
      Rep.add(std::move(D));
      continue;
    }
    if (F->getNumArgs() < 2) {
      Diagnostic D;
      D.Kind = DiagKind::MissingMetadata;
      D.Message = "task function does not take (env, taskID) arguments";
      D.InFunction = F->getName();
      Rep.add(std::move(D));
      continue;
    }
    T.Origin = *Origin;
    T.Workers = parseCount(F, TaskWorkersKey, 1);
    T.Stage = parseCount(F, TaskStageKey, 0);
    T.NumStages = parseCount(F, TaskStagesKey, 0);
    T.NumSegments = parseCount(F, TaskSegmentsKey, 0);
    T.EnvArg = F->getArg(0);
    T.TaskIDArg = F->getArg(1);

    for (const auto &BB : F->getBlocks())
      for (const auto &IPtr : BB->getInstList()) {
        Instruction *I = IPtr.get();
        if (auto Id = parseIdMetadata(I, CheckOrigKey))
          T.Clones[*Id].push_back(I);
        if (auto Id = parseIdMetadata(I, CheckSpillKey))
          T.Spills[*Id].push_back(I);
        if (auto QOrig = parseIdMetadata(I, CheckQueueOrigKey)) {
          TaskInfo::QueueOp Op;
          Op.Call = nir::cast<CallInst>(I);
          Op.Queue = parseCount(I, CheckQueueKey, 0);
          Op.Orig = *QOrig;
          Op.IsPush = std::string(calleeName(I)) == "noelle_queue_push";
          T.QueueOps.push_back(Op);
        }
      }

    if (!T.QueueOps.empty()) {
      auto Keys = computeLoopPhaseKeys(*F);
      for (TaskInfo::QueueOp &Op : T.QueueOps)
        if (auto It = Keys.find(Op.Call->getParent()); It != Keys.end())
          Op.PhaseKey = It->second;
    }

    std::string BaseKind =
        T.Kind == "dswp-stage" ? std::string("dswp") : T.Kind;
    auto Key = std::make_pair(F->getMetadata(TaskSrcFnKey), T.Origin);
    ParallelRegion &R = Regions[Key];
    R.Kind = BaseKind;
    R.SrcFn = Key.first;
    R.Origin = T.Origin;
    R.Tasks.push_back(std::move(T));
  }

  std::vector<ParallelRegion> Out;
  for (auto &[Key, R] : Regions) {
    std::sort(R.Tasks.begin(), R.Tasks.end(),
              [](const TaskInfo &A, const TaskInfo &B) {
                return A.Stage < B.Stage;
              });
    Out.push_back(std::move(R));
  }
  return Out;
}

std::optional<uint64_t> noelle::verify::originOf(const Instruction *I) {
  return parseIdMetadata(I, CheckOrigKey);
}

std::vector<std::pair<uint64_t, uint64_t>>
noelle::verify::parseSpecPremises(const Function *F) {
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  std::string Text = F->getMetadata(TaskSpecPremisesKey);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Tok = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    size_t Colon = Tok.find(':');
    if (Colon != std::string::npos) {
      uint64_t A = std::strtoull(Tok.substr(0, Colon).c_str(), nullptr, 10);
      uint64_t B = std::strtoull(Tok.substr(Colon + 1).c_str(), nullptr, 10);
      if (A && B)
        Out.push_back({A, B});
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Out;
}

std::map<const BasicBlock *, uint64_t>
noelle::verify::computeLoopPhaseKeys(Function &F) {
  std::map<const BasicBlock *, uint64_t> Keys;
  nir::DominatorTree DT(F);
  nir::LoopInfo LI(F, DT);
  // Preorder visits outer loops before inner ones, so assigning each
  // loop's key to all its blocks leaves every block with its innermost
  // enclosing loop's key.
  for (nir::LoopStructure *L : LI.getLoopsInPreorder()) {
    // Prefer the governing IV: the keyed header phi feeding an exiting
    // branch's condition (directly, or through one arithmetic hop for
    // rotated loops that test the incremented value). Stage clones of
    // the same source loop carry different recurrence phis alongside
    // the IV, but the exit test always resolves to the same source phi.
    auto KeyedHeaderPhi = [&](const Value *V) -> uint64_t {
      const auto *Phi = nir::dyn_cast<nir::PhiInst>(V);
      if (!Phi || Phi->getParent() != L->getHeader())
        return 0;
      return parseIdMetadata(Phi, CheckOrigKey).value_or(0);
    };
    uint64_t Key = 0;
    for (BasicBlock *Ex : L->getExitingBlocks()) {
      const auto *Br = nir::dyn_cast<nir::BranchInst>(Ex->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      const auto *Cond = nir::dyn_cast<Instruction>(Br->getCondition());
      if (!Cond)
        continue;
      for (const Value *Op : Cond->operands()) {
        if ((Key = KeyedHeaderPhi(Op)))
          break;
        if (const auto *OpI = nir::dyn_cast<Instruction>(Op);
            OpI && !nir::isa<nir::PhiInst>(OpI))
          for (const Value *Hop : OpI->operands())
            if ((Key = KeyedHeaderPhi(Hop)))
              break;
        if (Key)
          break;
      }
      if (Key)
        break;
    }
    // Fallback: the smallest keyed header phi. A phi origin is unique
    // to one source loop header, so equal keys still certify clones of
    // the same source loop.
    if (!Key)
      for (const auto &IPtr : L->getHeader()->getInstList()) {
        if (!nir::isa<nir::PhiInst>(IPtr.get()))
          break;
        if (auto Id = parseIdMetadata(IPtr.get(), CheckOrigKey))
          if (Key == 0 || *Id < Key)
            Key = *Id;
      }
    for (BasicBlock *BB : L->getBlocks())
      Keys[BB] = Key;
  }
  return Keys;
}

bool noelle::verify::sliceContains(const Value *Root, const Value *Target) {
  std::set<const Value *> Visited;
  std::deque<const Value *> Work{Root};
  while (!Work.empty()) {
    const Value *V = Work.front();
    Work.pop_front();
    if (V == Target)
      return true;
    if (!Visited.insert(V).second)
      continue;
    if (const auto *I = nir::dyn_cast<Instruction>(V)) {
      if (const auto *Phi = nir::dyn_cast<nir::PhiInst>(I)) {
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K)
          Work.push_back(Phi->getIncomingValue(K));
        continue;
      }
      // Loads and calls end the register slice: their result is data,
      // not an address recurrence over the task ID.
      if (nir::isa<nir::LoadInst>(I) || nir::isa<CallInst>(I))
        continue;
      for (const Value *Op : I->operands())
        Work.push_back(Op);
    }
  }
  return false;
}

PtrClass noelle::verify::classifyPointer(const Value *P, const TaskInfo &T) {
  PtrClass Out;

  // Peel pointer casts.
  while (const auto *C = nir::dyn_cast<nir::CastInst>(P))
    P = C->getValueOperand();

  if (P == T.EnvArg) {
    Out.S = PtrClass::EnvConst;
    Out.Slot = 0;
    return Out;
  }

  if (const auto *G = nir::dyn_cast<nir::GEPInst>(P)) {
    const Value *Base = G->getBase();
    while (const auto *C = nir::dyn_cast<nir::CastInst>(Base))
      Base = C->getValueOperand();
    if (Base == T.EnvArg) {
      const Value *Idx = G->getIndex();
      if (const auto *CI = nir::dyn_cast<nir::ConstantInt>(Idx)) {
        Out.S = PtrClass::EnvConst;
        Out.Slot = CI->getValue();
        return Out;
      }
      // The lane pattern the transforms emit: add(constBase, f(taskID)).
      if (const auto *B = nir::dyn_cast<nir::BinaryInst>(Idx)) {
        if (B->getOp() == nir::BinaryInst::Op::Add) {
          const nir::ConstantInt *CBase = nullptr;
          const Value *Var = nullptr;
          if ((CBase = nir::dyn_cast<nir::ConstantInt>(B->getLHS())))
            Var = B->getRHS();
          else if ((CBase = nir::dyn_cast<nir::ConstantInt>(B->getRHS())))
            Var = B->getLHS();
          if (CBase && Var && sliceContains(Var, T.TaskIDArg)) {
            Out.S = PtrClass::EnvLane;
            Out.Slot = CBase->getValue();
            return Out;
          }
        }
      }
      Out.S = PtrClass::EnvDyn;
      return Out;
    }
    // Non-env gep: classify by its underlying object.
    PtrClass Inner = classifyPointer(Base, T);
    if (Inner.S == PtrClass::Object || Inner.S == PtrClass::Unknown)
      return Inner;
    // gep over an env-slot pointer value would have loaded it first, so
    // this is unreachable for env shapes; stay conservative.
    Out.S = PtrClass::EnvDyn;
    return Out;
  }

  if (nir::isa<nir::GlobalVariable>(P) || nir::isa<nir::AllocaInst>(P)) {
    Out.S = PtrClass::Object;
    Out.Base = P;
    return Out;
  }
  return Out; // Unknown
}

std::map<const Instruction *, nir::BitVector>
noelle::verify::computeGuaranteedSegments(const TaskInfo &T) {
  // Universe: the noelle_ss_wait calls of the task, one bit each. The
  // transfer generates a wait's bit at its call and kills every wait bit
  // of the segment a noelle_ss_signal releases. Meeting with
  // intersection makes IN(I) the waits guaranteed held on all paths.
  DataFlowProblem P;
  P.Forward = true;
  P.MeetIsUnion = false;
  P.BoundaryAllOnes = false;

  auto SegOf = [](const Instruction *I) -> std::optional<uint64_t> {
    const auto *Call = nir::dyn_cast<CallInst>(I);
    if (!Call || Call->getNumArgs() < 2)
      return std::nullopt;
    const auto *CI = nir::dyn_cast<nir::ConstantInt>(Call->getArg(1));
    if (!CI)
      return std::nullopt;
    return static_cast<uint64_t>(CI->getValue());
  };

  std::map<const Instruction *, uint64_t> WaitSeg, SignalSeg;
  for (const auto &BB : T.Fn->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      std::string Name = calleeName(IPtr.get());
      if (Name != "noelle_ss_wait" && Name != "noelle_ss_signal")
        continue;
      auto Seg = SegOf(IPtr.get());
      if (!Seg)
        continue;
      if (Name == "noelle_ss_wait") {
        WaitSeg[IPtr.get()] = *Seg;
        P.Universe.push_back(IPtr.get());
      } else {
        SignalSeg[IPtr.get()] = *Seg;
      }
    }

  std::map<const Instruction *, nir::BitVector> Result;
  unsigned NumSegs = T.NumSegments;
  if (P.Universe.empty() || NumSegs == 0) {
    nir::BitVector Empty(std::max(1u, NumSegs));
    for (const auto &BB : T.Fn->getBlocks())
      for (const auto &IPtr : BB->getInstList())
        Result[IPtr.get()] = Empty;
    return Result;
  }

  P.Transfer = [&](const Instruction *I, const DataFlowResult &R,
                   nir::BitVector &Gen, nir::BitVector &Kill) {
    if (auto It = WaitSeg.find(I); It != WaitSeg.end())
      Gen.set(R.indexOf(I));
    if (auto It = SignalSeg.find(I); It != SignalSeg.end())
      for (const Value *W : R.getUniverse())
        if (WaitSeg.at(nir::cast<Instruction>(W)) == It->second)
          Kill.set(R.indexOf(W));
  };

  auto DF = DataFlowEngine().solve(*T.Fn, P);
  for (const auto &BB : T.Fn->getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      nir::BitVector Held(NumSegs);
      DF->in(IPtr.get()).forEachSetBit([&](unsigned Bit) {
        uint64_t Seg =
            WaitSeg.at(nir::cast<Instruction>(DF->getUniverse()[Bit]));
        if (Seg < NumSegs)
          Held.set(static_cast<unsigned>(Seg));
      });
      Result[IPtr.get()] = Held;
    }
  return Result;
}

std::string noelle::verify::describe(const Instruction *I) {
  std::string S;
  if (I->hasName())
    S += "%" + I->getName() + " = ";
  S += I->getOpcodeName();
  std::string Id = I->getMetadata(nir::InstIDKey);
  if (Id.empty())
    Id = I->getMetadata(CheckOrigKey);
  if (!Id.empty())
    S += " [id " + Id + "]";
  if (I->getFunction())
    S += " in @" + I->getFunction()->getName();
  return S;
}
