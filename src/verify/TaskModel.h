//===----------------------------------------------------------------------===//
///
/// \file
/// The checker's model of transformed code: parallel regions recovered
/// from task-function metadata, realization indices mapping original
/// instruction IDs to their clones/spills/queue transports in each task,
/// pointer classification against the environment layout, backward
/// slicing, and the HELIX guaranteed-active-segment dataflow.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_TASKMODEL_H
#define VERIFY_TASKMODEL_H

#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/BitVector.h"
#include "verify/CheckMetadata.h"
#include "verify/Diagnostic.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace noelle {
namespace verify {

/// One generated task function, with its provenance metadata decoded and
/// its instructions indexed by the original instruction they realize.
struct TaskInfo {
  nir::Function *Fn = nullptr;
  std::string Kind;   ///< doall | helix | dswp-stage | dswp-pipeline |
                      ///< doall-spec
  uint64_t Origin = 0;
  unsigned Workers = 1;     ///< concurrent executions of this function
  unsigned Stage = 0;       ///< dswp-stage index
  unsigned NumStages = 0;   ///< dswp total
  unsigned NumSegments = 0; ///< helix sequential segments

  nir::Argument *EnvArg = nullptr;
  nir::Argument *TaskIDArg = nullptr;

  /// Original instruction ID -> clones of it in this task.
  std::map<uint64_t, std::vector<nir::Instruction *>> Clones;
  /// Original recurrence-phi ID -> HELIX spill loads/stores transporting
  /// its value through the shared environment slot.
  std::map<uint64_t, std::vector<nir::Instruction *>> Spills;

  struct QueueOp {
    nir::CallInst *Call = nullptr;
    unsigned Queue = 0;   ///< queue index within the region
    uint64_t Orig = 0;    ///< ID of the transported original value
    bool IsPush = false;
    /// Phase key of the op's innermost enclosing loop: the origin ID of
    /// the governing IV phi (see computeLoopPhaseKeys), shared by
    /// lockstep loop copies across DSWP stages. 0 when the op is not in
    /// a loop or the loop has no keyed header phi.
    uint64_t PhaseKey = 0;
  };
  std::vector<QueueOp> QueueOps;

  /// All instructions realizing original ID \p Id in this task: clones
  /// plus (for HELIX recurrences) spill accesses.
  std::vector<nir::Instruction *> realizationsOf(uint64_t Id) const;

  /// True if \p Id has any clone or spill realization here.
  bool realizes(uint64_t Id) const {
    return Clones.count(Id) || Spills.count(Id);
  }

  /// True if a consumer-side pop transports original ID \p Id into this
  /// task (a legal realization of intra-iteration register deps only).
  bool popsValue(uint64_t Id) const;
};

/// A parallelized source loop: the set of task functions generated from
/// it. DOALL/HELIX regions hold one task run by `Workers` workers; DSWP
/// regions hold one task per stage (each run once) plus the dispatch
/// trampoline (kept aside — it touches no shared memory).
struct ParallelRegion {
  std::string Kind; ///< doall | helix | dswp | doall-spec
  std::string SrcFn;
  uint64_t Origin = 0;
  std::vector<TaskInfo> Tasks; ///< dswp: ordered by stage index
  /// True when every worker pair of the same task runs concurrently
  /// (DOALL/HELIX); DSWP stages run one worker each.
  bool selfConcurrent() const { return Kind != "dswp"; }
};

/// Recovers the parallel regions of \p M from task metadata. Tasks whose
/// provenance cannot be decoded are reported as MissingMetadata and
/// excluded (they cannot be audited).
std::vector<ParallelRegion> discoverRegions(nir::Module &M,
                                            CheckReport &Rep);

/// True if the backward def slice of \p Root (through instruction
/// operands, including phi incomings) contains \p Target.
bool sliceContains(const nir::Value *Root, const nir::Value *Target);

/// The snapshot instruction \p I was cloned from, when the transform
/// recorded provenance (CheckOrigKey metadata).
std::optional<uint64_t> originOf(const nir::Instruction *I);

/// The speculated-away loop-carried memory edges recorded on a
/// "doall-spec" task (TaskSpecPremisesKey, "src:dst" pairs joined with
/// ','). Malformed or zero-ID pairs are dropped.
std::vector<std::pair<uint64_t, uint64_t>>
parseSpecPremises(const nir::Function *F);

/// For every block of \p F, the phase key of its innermost enclosing
/// natural loop: the origin ID of the governing IV phi (the header phi
/// feeding the loop's exit condition), falling back to the smallest
/// origin ID among the header's keyed phis. Two loops (in different
/// task functions) with the same nonzero key are clones of the same
/// source loop — lockstep DSWP stage copies iterate the same re-based
/// induction space. Blocks outside loops, or in loops with no keyed
/// header phi, map to 0.
std::map<const nir::BasicBlock *, uint64_t>
computeLoopPhaseKeys(nir::Function &F);

/// Classification of an accessed pointer inside a task function.
struct PtrClass {
  enum Shape {
    EnvConst, ///< environment slot with a constant index
    EnvLane,  ///< env slot indexed base + f(taskID) (per-worker lane)
    EnvDyn,   ///< environment-based, index not understood
    Object,   ///< rooted at a named object (global or alloca)
    Unknown,  ///< loaded/computed pointer — only alias queries apply
  } S = Unknown;
  int64_t Slot = 0; ///< EnvConst: slot index; EnvLane: first lane's slot
  const nir::Value *Base = nullptr; ///< Object: the root value
};

/// Classifies \p P against \p T's environment argument.
PtrClass classifyPointer(const nir::Value *P, const TaskInfo &T);

/// HELIX: for every instruction of \p T.Fn, the set of sequential
/// segments guaranteed to be held (its noelle_ss_wait executed on every
/// path from function entry, with no noelle_ss_signal since). Solved as
/// a forward all-paths (meet = intersection) problem on the DataFlow
/// engine. Bit k of the result corresponds to segment k.
std::map<const nir::Instruction *, nir::BitVector>
computeGuaranteedSegments(const TaskInfo &T);

/// Renders an instruction for diagnostics: "%name = opcode [id N]".
std::string describe(const nir::Instruction *I);

} // namespace verify
} // namespace noelle

#endif // VERIFY_TASKMODEL_H
