//===----------------------------------------------------------------------===//
///
/// \file
/// Static race detection over generated task functions: flags W/W and
/// R/W pairs that concurrently running workers may issue against the
/// same shared memory. Per-worker environment lanes and iteration-
/// partitioned accesses (addresses derived from the task ID) are proven
/// disjoint structurally; HELIX accesses under a common sequential-
/// segment gate are proven ordered; everything else falls back to the
/// Andersen points-to analysis.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_RACEDETECTOR_H
#define VERIFY_RACEDETECTOR_H

#include "ir/Module.h"
#include "verify/Diagnostic.h"
#include "verify/TaskModel.h"

#include <set>
#include <utility>

namespace noelle {
namespace verify {

/// Memory dependences of the pre-transform PDG, keyed by the
/// deterministic instruction IDs both endpoints carried when the
/// snapshot was taken (and which the transforms propagate into their
/// clones as provenance). The PDG is conservative — it records an edge
/// whenever it cannot prove independence — so the ABSENCE of an edge
/// between two cloned accesses is a proof that they never touch the
/// same location, which is exactly the grounding the points-to fallback
/// lacks (Andersen is array-element- and flow-insensitive). Pairs are
/// stored symmetrically.
struct PDGDependenceSummary {
  /// Any memory dependence (RAW/WAW/WAR, carried or not).
  std::set<std::pair<uint64_t, uint64_t>> MemDeps;
  /// The loop-carried subset: the only dependences that relate distinct
  /// iterations, i.e. distinct DOALL/HELIX workers.
  std::set<std::pair<uint64_t, uint64_t>> LoopCarriedMemDeps;
};

/// Tuning knobs for detectRaces. Defaults match production behavior;
/// tests disable individual rules to pin which one discharged a pair.
struct RaceDetectorOptions {
  /// Discharge cross-stage DSWP access pairs ordered by a connecting
  /// queue's happens-before: with TA the queue's only producer, an
  /// access of TA that precedes every push is ordered before any
  /// consumer access dominated by a pop (push completion ⟶ pop return
  /// carries release/acquire ordering in the runtime).
  bool UseQueueHB = true;
};

/// Scans the parallel regions of \p M (the transformed module) for data
/// races between concurrently executing workers. DOALL/HELIX workers run
/// the same task body against themselves; DSWP stages run concurrently
/// with each other. When \p Deps is provided, access pairs whose origin
/// instructions the pre-transform PDG proved independent are skipped;
/// without it the detector falls back to purely structural + points-to
/// reasoning.
void detectRaces(nir::Module &M,
                 const std::vector<ParallelRegion> &Regions,
                 CheckReport &Rep,
                 const PDGDependenceSummary *Deps = nullptr,
                 const RaceDetectorOptions &Opts = {});

} // namespace verify
} // namespace noelle

#endif // VERIFY_RACEDETECTOR_H
