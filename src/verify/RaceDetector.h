//===----------------------------------------------------------------------===//
///
/// \file
/// Static race detection over generated task functions: flags W/W and
/// R/W pairs that concurrently running workers may issue against the
/// same shared memory. Pairs ordered by the happens-before engine
/// (queue release/acquire chains, lockstep loop phases, HELIX segment
/// gates) are discharged first; per-worker environment lanes and
/// iteration-partitioned accesses (addresses derived from the task ID)
/// are proven disjoint structurally; everything else falls back to the
/// Andersen points-to analysis. Every discharged pair records which
/// rule proved it.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_RACEDETECTOR_H
#define VERIFY_RACEDETECTOR_H

#include "ir/Module.h"
#include "verify/Diagnostic.h"
#include "verify/HappensBefore.h"
#include "verify/TaskModel.h"

#include <cstdint>
#include <map>
#include <string>

namespace noelle {
namespace verify {

/// Per-run counters: how many pairs each discharge rule proved safe, how
/// many fell through to the points-to fallback, and what was reported.
/// Attribution is first-match in rule order, so the counts partition the
/// checked pairs.
struct RaceRuleStats {
  uint64_t PairsChecked = 0;
  /// Pairs no structural or ordering rule discharged — they were decided
  /// by the Andersen alias query (the detector's least precise step).
  uint64_t AndersenFallback = 0;
  uint64_t RacesReported = 0;
  /// Race reports suppressed because the same unordered origin-ID pair
  /// was already reported for the region.
  uint64_t DuplicatesSuppressed = 0;
  /// Discharge-rule name -> pairs it proved safe. Keys are the
  /// hbRuleName() strings plus the structural rules: "read-read",
  /// "task-local", "pdg-independent", "env-disjoint", "iter-partition",
  /// "alias-none".
  std::map<std::string, uint64_t> Discharged;

  void merge(const RaceRuleStats &O) {
    PairsChecked += O.PairsChecked;
    AndersenFallback += O.AndersenFallback;
    RacesReported += O.RacesReported;
    DuplicatesSuppressed += O.DuplicatesSuppressed;
    for (const auto &[K, V] : O.Discharged)
      Discharged[K] += V;
  }
};

/// Tuning knobs for detectRaces. Defaults enable the full flow-sensitive
/// happens-before engine; tests and the `--race-rules` CLI flag disable
/// individual rules to pin which one discharged a pair, and legacy()
/// reproduces the single-rule detector this engine replaced.
struct RaceDetectorOptions {
  /// Queue release/acquire ordering (push completion ⟶ pop return).
  bool UseQueueHB = true;
  /// Transitive ordering through queue chains and multi-producer joins.
  bool UseMultiQueueJoin = true;
  /// k-th push / k-th pop matching for queue ops in lockstep loops.
  bool UseLoopPhase = true;
  /// Same-segment HELIX gate protection.
  bool UseSegmentOrder = true;
  /// Cross-segment partial orders for intra-iteration-only conflicts.
  bool UseCrossSegment = true;
  /// Flow-sensitive mode: ordering facts come from the all-paths
  /// completed-event dataflow, segment protection is gated by the
  /// segment-protocol leak check, and ordering rules run before pointer
  /// classification. When false the detector reproduces the structural
  /// single-rule pipeline (dominating pop, late segment check).
  bool FlowSensitive = true;
  /// When set, per-rule counters are accumulated here.
  RaceRuleStats *Stats = nullptr;

  /// The pre-engine detector: single-queue/single-producer happens-
  /// before with a dominating pop, flow-insensitive segment protection.
  /// The bench harness compares the engine's precision against this.
  static RaceDetectorOptions legacy() {
    RaceDetectorOptions O;
    O.UseMultiQueueJoin = false;
    O.UseLoopPhase = false;
    O.UseCrossSegment = false;
    O.FlowSensitive = false;
    return O;
  }
};

/// Scans the parallel regions of \p M (the transformed module) for data
/// races between concurrently executing workers. DOALL/HELIX workers run
/// the same task body against themselves; DSWP stages run concurrently
/// with each other. When \p Deps is provided, access pairs whose origin
/// instructions the pre-transform PDG proved independent are skipped;
/// without it the detector falls back to purely structural + points-to
/// reasoning.
void detectRaces(nir::Module &M,
                 const std::vector<ParallelRegion> &Regions,
                 CheckReport &Rep,
                 const PDGDependenceSummary *Deps = nullptr,
                 const RaceDetectorOptions &Opts = {});

} // namespace verify
} // namespace noelle

#endif // VERIFY_RACEDETECTOR_H
