//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics of the static verification layer (noelle-check).
/// Every finding names the instructions involved and the dependence or
/// property that was violated, so tests can assert on the exact failure
/// class and users can map a report back to IR.
///
//===----------------------------------------------------------------------===//

#ifndef VERIFY_DIAGNOSTIC_H
#define VERIFY_DIAGNOSTIC_H

#include <sstream>
#include <string>
#include <vector>

namespace noelle {
namespace verify {

/// Failure classes reported by the checker.
enum class DiagKind {
  /// A loop-carried dependence of the pre-transform PDG is not discharged
  /// by any legal mechanism (privatization, reduction, chunking,
  /// sequential-segment gates, or queues).
  UnprotectedDependence,
  /// An induction variable of a DOALL/HELIX task was not re-based on the
  /// task ID (workers would execute overlapping iterations).
  IVNotRebased,
  /// A reduction accumulator is not privatized: the task's accumulator
  /// does not start from the operator identity, or the partial result is
  /// not stored into a per-worker environment lane.
  UnprivatizedAccumulator,
  /// A DSWP queue has a consumer pop with no matching producer push.
  UnmatchedQueuePop,
  /// A DSWP queue has a producer push with no matching consumer pop.
  UnmatchedQueuePush,
  /// Two accesses from concurrently running workers may touch the same
  /// shared memory without synchronization, at least one of them a write.
  DataRace,
  /// The module failed SSA/structural verification (nir::verifyModule),
  /// including the dominance-based use-before-def checks.
  SSAViolation,
  /// Lint: a load may read a stack slot on a path where nothing stored
  /// to it.
  UninitializedRead,
  /// Lint: a store to a non-escaping stack slot whose value is never
  /// read.
  DeadStore,
  /// Lint: a heap handle returned by an allocator is dereferenced on a
  /// path where it was never null-checked.
  NullDeref,
  /// The checker could not map a task back to its source loop (missing
  /// or inconsistent transform metadata) — itself a verification failure,
  /// since unattributable tasks cannot be audited.
  MissingMetadata,
  /// A plan's module content hash does not match the module under audit
  /// (the plan was computed for different code).
  PlanHashMismatch,
  /// A plan entry names a loop the module does not contain (bad
  /// function name or header instruction ID).
  PlanLoopNotFound,
  /// A plan entry's technique is not legally applicable to the loop it
  /// names (e.g. DOALL on a loop-carried dependence).
  PlanIllegal,
  /// A plan entry is structurally invalid: zero workers, a dangling or
  /// non-DSWP parent link, a nested entry that is not DOALL, or two
  /// entries claiming the same loop.
  PlanMalformed,
  /// A speculative task contains a memory effect that bypasses the write
  /// log: a raw load/store, or a call to anything other than the journal
  /// accessors and pure math externals. Misspeculation validation cannot
  /// see (and rollback cannot undo) such an access.
  SpecUnjournaledAccess,
  /// A speculative task's recovery path is broken: the sequential
  /// fallback clone is missing, mis-tagged, or itself instrumented (so
  /// re-execution after rollback would journal into a dead dispatch).
  SpecRecoveryMissing,
  /// A speculative premise is not supported by the evidence: the task
  /// records no premises, no profile is embedded, the speculated pair
  /// actually manifested in the profile, or the premise matches no
  /// loop-carried memory dependence of the snapshot PDG.
  SpecPremiseUnsupported,
};

inline const char *diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::UnprotectedDependence:
    return "unprotected-dependence";
  case DiagKind::IVNotRebased:
    return "iv-not-rebased";
  case DiagKind::UnprivatizedAccumulator:
    return "unprivatized-accumulator";
  case DiagKind::UnmatchedQueuePop:
    return "unmatched-queue-pop";
  case DiagKind::UnmatchedQueuePush:
    return "unmatched-queue-push";
  case DiagKind::DataRace:
    return "data-race";
  case DiagKind::SSAViolation:
    return "ssa-violation";
  case DiagKind::UninitializedRead:
    return "uninitialized-read";
  case DiagKind::DeadStore:
    return "dead-store";
  case DiagKind::NullDeref:
    return "null-deref";
  case DiagKind::MissingMetadata:
    return "missing-metadata";
  case DiagKind::PlanHashMismatch:
    return "plan-hash-mismatch";
  case DiagKind::PlanLoopNotFound:
    return "plan-loop-not-found";
  case DiagKind::PlanIllegal:
    return "plan-illegal";
  case DiagKind::PlanMalformed:
    return "plan-malformed";
  case DiagKind::SpecUnjournaledAccess:
    return "spec-unjournaled-access";
  case DiagKind::SpecRecoveryMissing:
    return "spec-recovery-missing";
  case DiagKind::SpecPremiseUnsupported:
    return "spec-premise-unsupported";
  }
  return "unknown";
}

/// One finding. Location strings are rendered eagerly ("@fn: %name = add
/// ...") because the checker inspects several modules (the pre-transform
/// snapshot and the transformed IR) whose instructions outlive each
/// other differently.
struct Diagnostic {
  DiagKind Kind;
  std::string Message;
  /// The two instructions involved (the dependence endpoints, the racing
  /// pair, ...); Second may be empty for single-site findings.
  std::string First, Second;
  /// The task/function the finding is anchored in.
  std::string InFunction;

  std::string str() const {
    std::ostringstream OS;
    OS << "[" << diagKindName(Kind) << "] " << Message;
    if (!InFunction.empty())
      OS << " (in @" << InFunction << ")";
    if (!First.empty())
      OS << "\n    first:  " << First;
    if (!Second.empty())
      OS << "\n    second: " << Second;
    return OS.str();
  }
};

/// The result of one checkModule / lintModule run.
class CheckReport {
public:
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool clean() const { return Diags.empty(); }

  unsigned count(DiagKind K) const {
    unsigned N = 0;
    for (const auto &D : Diags)
      if (D.Kind == K)
        ++N;
    return N;
  }

  std::string str() const {
    if (Diags.empty())
      return "noelle-check: no violations\n";
    std::ostringstream OS;
    OS << "noelle-check: " << Diags.size() << " violation"
       << (Diags.size() == 1 ? "" : "s") << "\n";
    for (const auto &D : Diags)
      OS << "  " << D.str() << "\n";
    return OS.str();
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace verify
} // namespace noelle

#endif // VERIFY_DIAGNOSTIC_H
