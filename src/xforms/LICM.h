//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-invariant code motion built on NOELLE (Table 3: LICM, 170 LoC vs
/// 2317 in LLVM). Walks the loop forest innermost-first (FR), asks the
/// PDG-backed invariant manager (INV) what can move, and uses the loop
/// builder (LB) to hoist into preheaders.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_LICM_H
#define XFORMS_LICM_H

#include "noelle/Noelle.h"

namespace noelle {

struct LICMResult {
  unsigned LoopsVisited = 0;
  unsigned InstructionsHoisted = 0;
};

class LICM {
public:
  explicit LICM(Noelle &N) : N(N) {}

  /// Hoists invariant instructions of every loop to its preheader,
  /// innermost loops first so invariants bubble outward across passes.
  /// Delegates to the pipeline's LICM pass (opt::runLICM).
  LICMResult run();

private:
  Noelle &N;
};

} // namespace noelle

#endif // XFORMS_LICM_H
