#include "xforms/CARAT.h"

#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>
#include <set>

using namespace noelle;
using nir::Function;
using nir::GEPInst;
using nir::Instruction;
using nir::IRBuilder;
using nir::LoadInst;
using nir::StoreInst;

namespace {

/// An address whose base is a global or alloca with a constant in-bounds
/// offset is statically valid — no guard needed.
bool isProvablyValid(const nir::Value *Ptr) {
  int64_t Offset = 0;
  const nir::Value *Base = Ptr;
  while (const auto *G = nir::dyn_cast<GEPInst>(Base)) {
    const auto *CI = nir::dyn_cast<nir::ConstantInt>(G->getIndex());
    if (!CI)
      return false; // Variable index: bounds unknown statically.
    Offset += CI->getValue() * static_cast<int64_t>(G->getScale());
    Base = G->getBase();
  }
  uint64_t Size = 0;
  if (const auto *GV = nir::dyn_cast<nir::GlobalVariable>(Base))
    Size = GV->getStoreSize();
  else if (const auto *A = nir::dyn_cast<nir::AllocaInst>(Base))
    Size = A->getAllocationSize();
  else
    return false;
  return Offset >= 0 && static_cast<uint64_t>(Offset) + 8 <= Size;
}

/// The pointer a memory instruction dereferences, or null.
nir::Value *pointerOf(Instruction *I) {
  if (auto *L = nir::dyn_cast<LoadInst>(I))
    return L->getPointerOperand();
  if (auto *S = nir::dyn_cast<StoreInst>(I))
    return S->getPointerOperand();
  return nullptr;
}

} // namespace

CARATResult CARAT::run() {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::aSCCDAG);
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::DFE);
  N.noteRequest(Abstraction::PRO);
  N.noteRequest(Abstraction::L);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::SCD);
  N.noteRequest(Abstraction::LS);

  nir::Module &M = N.getModule();
  nir::Context &Ctx = M.getContext();
  CARATResult R;

  // Declare the guard.
  Function *Guard = M.getFunction("carat_guard");
  if (!Guard)
    Guard = M.createFunction(
        Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy(), Ctx.getInt64Ty()}),
        "carat_guard");

  // Loop-invariance data, for hoisting guards of invariant addresses.
  auto Loops = N.getLoopContents();

  std::set<Function *> Mutated;
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration() || F.get() == Guard)
      continue;
    uint64_t GuardsBefore = R.GuardsInjected;

    // Collect the accesses needing guards, with per-pointer redundancy
    // elimination: along one block, the second access to the same
    // pointer SSA value is already covered (the DFE-style availability
    // argument: carat_guard dominates it and no call invalidates the
    // mapping between them in our runtime model).
    struct PendingGuard {
      Instruction *Access;
      nir::Value *Ptr;
      LoopContent *InvariantInLoop; // hoistable when non-null
    };
    std::vector<PendingGuard> Pending;

    for (const auto &BB : F->getBlocks()) {
      std::set<const nir::Value *> CoveredInBlock;
      for (const auto &I : BB->getInstList()) {
        nir::Value *Ptr = pointerOf(I.get());
        if (!Ptr)
          continue;
        if (isProvablyValid(Ptr))
          continue;
        if (CoveredInBlock.count(Ptr)) {
          ++R.GuardsElidedRedundant;
          continue;
        }
        CoveredInBlock.insert(Ptr);

        PendingGuard P;
        P.Access = I.get();
        P.Ptr = Ptr;
        P.InvariantInLoop = nullptr;
        for (LoopContent *LC : Loops) {
          nir::LoopStructure &LS = LC->getLoopStructure();
          if (LS.getFunction() != F.get() || !LS.contains(I.get()))
            continue;
          if (LS.getPreheader() &&
              LC->getInvariantManager().isLoopInvariant(Ptr))
            P.InvariantInLoop = LC;
        }
        Pending.push_back(P);
      }
    }

    // Emit guards: invariant addresses hoist to the preheader (one
    // dynamic check per loop invocation instead of per iteration).
    std::set<std::pair<LoopContent *, const nir::Value *>> HoistedAlready;
    IRBuilder B(Ctx);
    for (const auto &P : Pending) {
      if (P.InvariantInLoop) {
        auto Key = std::make_pair(P.InvariantInLoop, (const nir::Value *)P.Ptr);
        if (HoistedAlready.count(Key)) {
          ++R.GuardsElidedRedundant;
          continue;
        }
        HoistedAlready.insert(Key);
        // Hoist only if the pointer value is available in the preheader
        // (defined outside the loop); invariant-but-in-loop pointers
        // stay in place.
        const auto *PtrInst = nir::dyn_cast<Instruction>(P.Ptr);
        nir::LoopStructure &LS = P.InvariantInLoop->getLoopStructure();
        if (!PtrInst || !LS.contains(PtrInst)) {
          B.setInsertPoint(LS.getPreheader()->getTerminator());
          B.createCall(Guard, {P.Ptr, Ctx.getInt64(8)});
          ++R.GuardsInjected;
          ++R.GuardsHoisted;
          continue;
        }
      }
      B.setInsertPoint(P.Access);
      B.createCall(Guard, {P.Ptr, Ctx.getInt64(8)});
      ++R.GuardsInjected;
    }
    if (R.GuardsInjected != GuardsBefore)
      Mutated.insert(F.get());
  }

  for (Function *F : Mutated)
    N.invalidate(*F);
  assert(nir::moduleVerifies(M) && "CARAT broke the IR");
  return R;
}

void noelle::registerCARATRuntime(nir::ExecutionEngine &Engine) {
  Engine.registerExternal(
      "carat_guard",
      [](nir::ExecutionEngine &E, const nir::CallInst *,
         const std::vector<nir::RuntimeValue> &A) {
        if (!E.isValidAddress(A[0].P, static_cast<uint64_t>(A[1].I))) {
          std::fprintf(stderr,
                       "carat_guard: invalid access to %p (size %lld)\n",
                       reinterpret_cast<void *>(A[0].P),
                       static_cast<long long>(A[1].I));
          std::abort();
        }
        return nir::RuntimeValue();
      });
}
