#include "xforms/LICM.h"

#include "opt/Passes.h"

using namespace noelle;

// The hoisting logic lives in the optimizer pipeline (opt::runLICM, see
// src/opt/LICM.cpp); this class survives as a thin adapter for tools
// that drive LICM standalone through the xforms interface.
LICMResult LICM::run() {
  opt::PipelineStats S;
  opt::runLICM(N, S);
  LICMResult R;
  R.LoopsVisited = static_cast<unsigned>(S.LoopsVisited);
  R.InstructionsHoisted = static_cast<unsigned>(S.InstructionsHoisted);
  return R;
}
