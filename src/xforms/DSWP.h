//===----------------------------------------------------------------------===//
///
/// \file
/// The DSWP custom tool: decoupled software pipelining. SCCs of the loop
/// dependence graph are partitioned into pipeline stages; every stage
/// replicates the loop's control skeleton (IV + exit test) and values
/// crossing stages flow through unidirectional blocking queues, keeping
/// all instances of an SCC on one core (Section 3; MICRO'05).
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_DSWP_H
#define XFORMS_DSWP_H

#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct DSWPOptions {
  unsigned NumCores = 4;   ///< maximum number of pipeline stages
  unsigned QueueCapacity = 128;
  double MinimumHotness = 0.0;
  /// Decline pipelines whose average per-iteration stage weight (in
  /// instructions) is below this: fine-grained stages cannot amortize
  /// queue operations. Set to 0 to force pipelining regardless.
  uint64_t MinimumStageWeight = 30;
};

struct DSWPDecision {
  std::string FunctionName;
  unsigned LoopID = 0;
  bool Parallelized = false;
  unsigned NumStages = 0;
  unsigned NumQueues = 0;
  std::string Reason;
};

class DSWP {
public:
  DSWP(Noelle &N, DSWPOptions Opts = {}) : N(N), Opts(Opts) {}

  bool parallelizeLoop(LoopContent &LC, DSWPDecision &D);

  std::vector<DSWPDecision> run();

private:
  Noelle &N;
  DSWPOptions Opts;
};

} // namespace noelle

#endif // XFORMS_DSWP_H
