//===----------------------------------------------------------------------===//
///
/// \file
/// The DSWP custom tool: decoupled software pipelining. SCCs of the loop
/// dependence graph are partitioned into pipeline stages; every stage
/// replicates the loop's control skeleton (IV + exit test) and values
/// crossing stages flow through unidirectional blocking queues, keeping
/// all instances of an SCC on one core (Section 3; MICRO'05).
/// Implements the unified ParallelizationTechnique interface.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_DSWP_H
#define XFORMS_DSWP_H

#include "xforms/ParallelizationTechnique.h"
#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct DSWPOptions {
  unsigned NumCores = 4;   ///< maximum number of pipeline stages
  unsigned QueueCapacity = 128;
  double MinimumHotness = 0.0;
  /// Decline pipelines whose average per-iteration stage weight (in
  /// instructions) is below this: fine-grained stages cannot amortize
  /// queue operations. Set to 0 to force pipelining regardless.
  uint64_t MinimumStageWeight = 30;
};

class DSWP : public ParallelizationTechnique {
public:
  DSWP(Noelle &N, DSWPOptions Opts = {})
      : ParallelizationTechnique(N), Opts(Opts) {}

  TechniqueKind getKind() const override { return TechniqueKind::DSWP; }

  Legality applicable(LoopContent &LC) override;

  TechniqueCost estimate(const Legality &L, const LoopPlan &P,
                         const CostQuery &Q) const override;

  bool apply(LoopContent &LC, const LoopPlan &P, Decision &D) override;

  LoopPlan defaultPlan() const override {
    return {TechniqueKind::DSWP, Opts.NumCores, 1};
  }
  double minimumHotness() const override { return Opts.MinimumHotness; }

private:
  /// A cross-stage register dependence carried by one queue.
  struct QueueSpec {
    Instruction *Def;
    unsigned FromStage;
    unsigned ToStage;
  };

  /// The pipeline plan analysis computes and codegen consumes.
  struct PipelineAnalysis {
    unsigned NumStages = 0;
    std::vector<QueueSpec> Queues;
    /// instruction -> owning stage (replicated skeleton members absent).
    std::map<const Instruction *, unsigned> StageOf;
    // Shape facts for the cost model.
    unsigned NumGroups = 0;       ///< mergeable SCC groups (stage ceiling)
    uint64_t TotalWeight = 0;     ///< per-iteration pipeline work
    uint64_t MaxGroupWeight = 0;  ///< heaviest unsplittable group
  };

  /// Partitions \p LC into a pipeline of at most \p Workers stages.
  /// Pure analysis — never mutates IR. Returns false (with \p Reason)
  /// when the loop cannot (or should not, per MinimumStageWeight) be
  /// pipelined.
  bool analyze(LoopContent &LC, unsigned Workers, PipelineAnalysis &A,
               std::string &Reason);

  DSWPOptions Opts;
};

} // namespace noelle

#endif // XFORMS_DSWP_H
