//===----------------------------------------------------------------------===//
///
/// \file
/// Time-Squeezer (Table 3: TIME): code generation for timing-speculative
/// micro-architectures (ISCA'19/DAC'18). On such hardware each
/// instruction class sustains a different clock period; the compiler
/// (1) canonicalizes compare instructions (constant operands to the
/// right, cheapest predicate forms) because comparators set the critical
/// path, (2) reorders instructions inside blocks so same-period
/// instructions cluster (SCD), and (3) injects set_clock(period) calls
/// at cluster boundaries. Uses DFE, L, FR for region selection and
/// ISL + PDG for compare analysis, per the paper's Table 4.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_TIMESQUEEZER_H
#define XFORMS_TIMESQUEEZER_H

#include "noelle/Noelle.h"

namespace noelle {

struct TimeSqueezerResult {
  unsigned ComparesCanonicalized = 0;
  unsigned InstructionsRescheduled = 0;
  unsigned ClockChangesInjected = 0;
  /// Modeled cycles with one fixed worst-case clock vs. the squeezed
  /// schedule (per static instruction; benches weight by profile).
  uint64_t BaselineCycles = 0;
  uint64_t SqueezedCycles = 0;
};

/// The modeled clock period (in tenths of ns) each instruction class
/// needs on the timing-speculative machine.
unsigned clockPeriodOf(const nir::Instruction *I);

class TimeSqueezer {
public:
  explicit TimeSqueezer(Noelle &N) : N(N) {}

  TimeSqueezerResult run();

private:
  Noelle &N;
};

} // namespace noelle

#endif // XFORMS_TIMESQUEEZER_H
