//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery of the parallelizing custom tools (DOALL, HELIX,
/// DSWP): loop-to-task extraction with environment marshalling, the ENV
/// array layout, and caller-side loop replacement. This is the code the
/// paper's parallelizers build from the T/ENV/LB abstractions.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_PARALLELIZATIONUTILS_H
#define XFORMS_PARALLELIZATIONUTILS_H

#include "noelle/Noelle.h"

namespace noelle {

/// The result of cloning a loop into a task function.
struct ClonedLoopTask {
  nir::Function *TaskFn = nullptr;
  /// original value -> task value (live-in loads, cloned instructions,
  /// cloned blocks).
  std::map<const Value *, Value *> ValueMap;
  /// The task block every loop exit was redirected to (before its
  /// terminating ret).
  nir::BasicBlock *ExitBlock = nullptr;
  /// Task arguments.
  nir::Argument *EnvArg = nullptr;
  nir::Argument *TaskIDArg = nullptr;
  nir::Argument *NumTasksArg = nullptr;
};

/// Environment array layout used by all parallelizers:
///   slots [0 .. numLiveIns)                      live-in values
///   slots [numLiveIns .. numLiveIns+K*killanes)  per-task live-out lanes
/// where each live-out owns `Lanes` consecutive slots.
struct EnvLayout {
  const Environment *Env = nullptr;
  unsigned Lanes = 1; ///< one lane per task for privatized live-outs

  unsigned liveInSlot(const Value *V) const {
    int Idx = Env->indexOfLiveIn(V);
    assert(Idx >= 0 && "value is not a live-in");
    return static_cast<unsigned>(Idx);
  }
  unsigned liveOutSlot(const Instruction *I, unsigned Lane) const {
    int Idx = Env->indexOfLiveOut(I);
    assert(Idx >= 0 && "value is not a live-out");
    return static_cast<unsigned>(Env->getLiveIns().size()) +
           static_cast<unsigned>(Idx) * Lanes + Lane;
  }
  unsigned totalSlots() const {
    return static_cast<unsigned>(Env->getLiveIns().size()) +
           static_cast<unsigned>(Env->getLiveOuts().size()) * Lanes;
  }
};

/// Creates an empty task function `Name`(ptr env, i64 taskID,
/// i64 numTasks) -> void with an entry block.
nir::Function *createTaskFunction(nir::Module &M, const std::string &Name);

/// Clones loop \p LS into a fresh task function:
///  - entry block loads every live-in from the environment;
///  - loop blocks are cloned with values/blocks remapped;
///  - every exit edge is redirected to a single task exit block ending
///    in `ret void`.
/// The caller then specializes the clone (IV re-basing, reduction
/// privatization, segment synchronization...).
ClonedLoopTask cloneLoopIntoTask(nir::LoopStructure &LS,
                                 const EnvLayout &Layout,
                                 const std::string &Name);

/// Emits caller-side code that replaces loop \p LS with:
///   env = alloca [slots x i64]; store live-ins;
///   call noelle_dispatch(@task, env, NumTasks);
/// in a new "dispatch" block, rewires the preheader to it and the
/// dispatch block to the loop's unique exit block, and removes the now
/// unreachable loop body. Returns the dispatch block positioned before
/// its terminator so callers can append live-out reads via the builder.
/// Exit-block phis fed only by the removed loop are folded. The loop
/// must have a preheader and exactly one exit block.
///
/// When \p ChunkGrain > 0 the call is emitted against
/// noelle_dispatch_chunked(@task, env, NumTasks, ChunkGrain) instead:
/// the runtime schedules the NumTasks logical tasks dynamically in
/// chunks of ChunkGrain indices (DOALL only — tasks must not block on
/// one another).
///
/// When \p SpecSeqFn is non-null the dispatch is speculative:
/// noelle_dispatch_spec(@task, @seq, env, NumTasks, ChunkGrain) runs
/// the instrumented task under write-log journals and falls back to
/// \p SpecSeqFn (the uninstrumented sequential clone) on conflict.
nir::BasicBlock *replaceLoopWithDispatch(nir::LoopStructure &LS,
                                         const EnvLayout &Layout,
                                         nir::Function *TaskFn,
                                         unsigned NumTasks,
                                         unsigned ChunkGrain = 0,
                                         nir::Function *SpecSeqFn = nullptr);

/// After live-out uses have been rewritten, patches phis in the loop's
/// exit block (the dispatch block contributes the substituted value) and
/// deletes the now-unreachable loop body.
void finalizeLoopRemoval(nir::LoopStructure &LS, nir::BasicBlock *Dispatch);

/// Stores \p V into environment slot \p Slot (env base pointer \p Env)
/// at the builder's insertion point.
void emitEnvStore(nir::IRBuilder &B, Value *Env, unsigned Slot, Value *V);

/// Loads a value of type \p Ty from environment slot \p Slot.
Value *emitEnvLoad(nir::IRBuilder &B, Value *Env, unsigned Slot,
                   nir::Type *Ty, const std::string &Name = "");

} // namespace noelle

#endif // XFORMS_PARALLELIZATIONUTILS_H
