//===----------------------------------------------------------------------===//
///
/// \file
/// The unified transform API shared by every parallelizing custom tool.
/// DOALL, HELIX, and DSWP implement one interface —
///
///   applicable(LoopContent&)           -> Legality
///   estimate(Legality, LoopPlan, Cost) -> TechniqueCost
///   apply(LoopContent&, LoopPlan&)     -> Decision
///
/// — with typed per-technique option structs (DOALLOptions, HELIXOptions,
/// DSWPOptions) carrying their thresholds. The planner (src/planner)
/// enumerates techniques through this interface, costs candidates from
/// profiler data, and picks per-loop strategies; `run()` is the
/// technique-forced whole-module sweep (what figure 5's per-tool columns
/// drive), implemented once on the base class via the planner.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_PARALLELIZATIONTECHNIQUE_H
#define XFORMS_PARALLELIZATIONTECHNIQUE_H

#include "noelle/Noelle.h"

#include <memory>

namespace noelle {

enum class TechniqueKind : uint8_t { DOALL, HELIX, DSWP, SpecDOALL };

/// The lowercase names used in task metadata, plan serialization, and
/// CLI flags ("doall" / "helix" / "dswp" / "spec-doall").
const char *techniqueName(TechniqueKind K);
bool techniqueFromName(const std::string &Name, TechniqueKind &K);

/// The result of an applicability query: whether the technique can
/// legally transform the loop, why not otherwise, and the shape facts
/// the cost model consumes (all per loop iteration or per invocation).
struct Legality {
  bool Ok = false;
  std::string Reason; ///< set when !Ok

  /// Executable work per iteration: non-phi, non-terminator instruction
  /// count over the loop body (every technique fills this).
  uint64_t BodyWeight = 0;

  /// Loads + stores per iteration (DOALL fills this alongside
  /// BodyWeight); speculative DOALL charges its journal instrumentation
  /// per memory access.
  uint64_t MemOpWeight = 0;

  /// Speculative DOALL: the loop-carried memory dependences admitted on
  /// the profile's never-manifested evidence, as (srcID, dstID)
  /// deterministic-instruction-ID pairs. Empty for static techniques.
  std::vector<std::pair<uint64_t, uint64_t>> SpecPremises;

  // HELIX: sequential segments.
  unsigned NumSegments = 0;
  /// Total segment member count (phis included — what the legacy
  /// profitability estimate charged).
  uint64_t SegmentWeight = 0;

  // DSWP: pipeline shape at the technique's default worker count.
  unsigned NumStages = 0;
  unsigned NumQueues = 0;
  /// Mergeable SCC groups — the ceiling on pipeline stages.
  unsigned NumGroups = 0;
  uint64_t TotalPipelineWeight = 0;
  uint64_t MaxGroupWeight = 0;
  /// Queue operations (pushes + pops) of the busiest stage, per
  /// iteration. The pipeline's throughput charge: queue traffic on
  /// non-bottleneck stages overlaps with the bottleneck's compute.
  unsigned MaxStageQueueOps = 0;

  explicit operator bool() const { return Ok; }
};

/// What the planner decided for one loop: which technique, how many
/// workers, and (DOALL) the dynamic-dispatch chunk grain.
struct LoopPlan {
  TechniqueKind Kind = TechniqueKind::DOALL;
  unsigned Workers = 4;
  unsigned ChunkGrain = 1;
};

/// Profile-derived inputs to a cost estimate, in interpreter-instruction
/// units (the figure-5 performance model's currency). Defaults mirror
/// bench/BenchUtils.h PerfModel so modeled and measured time agree.
struct CostQuery {
  double TripCount = 128.0;      ///< average iterations per invocation
  double Invocations = 1.0;      ///< loop invocations over the whole run
  double SpawnCostPerTask = 500; ///< pool dispatch+park per task
  double SyncCost = 20;          ///< one gate wait/signal or queue op
  /// Dynamic-to-static work ratio for one iteration. Legality weights
  /// count each instruction of the loop body once, but a body that
  /// contains a nested loop executes those instructions per inner trip;
  /// profile block counts recover the true per-iteration work as
  /// BodyScale × static weight. 1.0 = trust the static count.
  double BodyScale = 1.0;
  /// Retired-instruction scale: dynamic instructions the interpreter
  /// retires per iteration (phis and terminators included) over the
  /// static BodyWeight. SpawnCostPerTask/SyncCost are measured in
  /// retired units, so estimates competing in the marginal zone where
  /// spawn cost rivals body work (speculative DOALL's territory) use
  /// this scale to price the body in the same currency. The static
  /// techniques keep the BodyWeight convention — their decisions never
  /// hinge on the unit mismatch, and their plans must stay
  /// byte-identical.
  double RetiredScale = 1.0;
  /// Speculative DOALL: modeled probability that one dispatch of the
  /// loop misspeculates and re-executes sequentially. The planner
  /// derives it from the profile's evidence (rule of succession over
  /// observed invocations); 0 disables the rollback charge.
  double MisspecProbability = 0.0;
  /// Extra interpreter work per instrumented memory access (the spec
  /// accessor call, its cast, and the journal bookkeeping it models).
  double SpecAccessCost = 2.0;
};

/// Modeled per-invocation execution time under a plan.
struct TechniqueCost {
  double SequentialTime = 0;
  double ParallelTime = 0;
  double speedup() const {
    return ParallelTime > 0 ? SequentialTime / ParallelTime : 0;
  }
};

/// Why a loop was accepted or rejected, unified across techniques.
/// Loops are identified by name because parallelization invalidates
/// LoopStructure objects.
struct Decision {
  std::string FunctionName;
  unsigned LoopID = 0;
  TechniqueKind Kind = TechniqueKind::DOALL;
  bool Parallelized = false;
  std::string Reason;
  unsigned Workers = 0;
  unsigned NumSequentialSegments = 0; ///< HELIX
  unsigned NumStages = 0;             ///< DSWP
  unsigned NumQueues = 0;             ///< DSWP
  /// Speculative DOALL: the premises the transform committed to (copied
  /// from Legality.SpecPremises so plans can record them).
  std::vector<std::pair<uint64_t, uint64_t>> SpecPremises;
};

/// Base class of the parallelizing custom tools.
class ParallelizationTechnique {
public:
  explicit ParallelizationTechnique(Noelle &N) : N(N) {}
  virtual ~ParallelizationTechnique() = default;

  virtual TechniqueKind getKind() const = 0;

  /// Pure legality + shape query; never mutates IR.
  virtual Legality applicable(LoopContent &LC) = 0;

  /// Models the loop's execution time under \p P from profile inputs
  /// \p Q and the shape facts of \p L (which must come from a
  /// successful applicable() on the same loop).
  virtual TechniqueCost estimate(const Legality &L, const LoopPlan &P,
                                 const CostQuery &Q) const = 0;

  /// Transforms one loop under \p P, filling \p D. Returns false
  /// (leaving the IR untouched) when the loop cannot be parallelized.
  virtual bool apply(LoopContent &LC, const LoopPlan &P, Decision &D) = 0;

  /// The technique's legacy profitability gate, honored by the forced
  /// sweep (run()) but not by the free planner, which gates on
  /// estimate() instead. Default: always profitable.
  virtual bool profitable(LoopContent &LC, const Legality &L,
                          std::string &Reason) {
    (void)LC;
    (void)L;
    (void)Reason;
    return true;
  }

  /// The plan this technique's options imply (worker count, chunk).
  virtual LoopPlan defaultPlan() const = 0;

  /// Hotness floor from the technique's options (needs PRO when > 0).
  virtual double minimumHotness() const = 0;

  /// Applies this technique to every eligible loop (outermost first;
  /// loops nested in an already parallelized loop are skipped) — the
  /// technique-forced planner sweep. Returns decisions.
  std::vector<Decision> run();

  Noelle &getNoelle() const { return N; }

protected:
  Noelle &N;
};

/// Factory over the three techniques with default options at
/// \p NumCores workers (legacy thresholds; pass options directly to the
/// concrete classes for anything finer).
std::unique_ptr<ParallelizationTechnique>
createTechnique(TechniqueKind K, Noelle &N, unsigned NumCores = 4);

} // namespace noelle

#endif // XFORMS_PARALLELIZATIONTECHNIQUE_H
