#include "xforms/TimeSqueezer.h"

#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "ir/Verifier.h"

#include <set>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CmpInst;
using nir::Function;
using nir::Instruction;
using nir::IRBuilder;

unsigned noelle::clockPeriodOf(const Instruction *I) {
  switch (I->getKind()) {
  case nir::Value::Kind::Cmp:
  case nir::Value::Kind::Select:
  case nir::Value::Kind::Phi:
  case nir::Value::Kind::Branch:
    return 10; // comparator/control: fast path
  case nir::Value::Kind::Binary: {
    const auto *B = nir::cast<BinaryInst>(I);
    switch (B->getOp()) {
    case BinaryInst::Op::Mul:
    case BinaryInst::Op::FMul:
      return 20;
    case BinaryInst::Op::SDiv:
    case BinaryInst::Op::SRem:
    case BinaryInst::Op::FDiv:
      return 30;
    default:
      return 10;
    }
  }
  case nir::Value::Kind::Load:
  case nir::Value::Kind::Store:
    return 25;
  case nir::Value::Kind::Call:
    return 30;
  default:
    return 10;
  }
}

TimeSqueezerResult TimeSqueezer::run() {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::DFE);
  N.noteRequest(Abstraction::SCD);
  N.noteRequest(Abstraction::ISL);
  N.noteRequest(Abstraction::L);
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::LS);

  nir::Module &M = N.getModule();
  nir::Context &Ctx = M.getContext();
  TimeSqueezerResult R;

  Function *SetClock = M.getFunction("set_clock");
  if (!SetClock)
    SetClock = M.createFunction(
        Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt64Ty()}), "set_clock");

  std::set<Function *> Mutated;
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration() || F.get() == SetClock)
      continue;
    uint64_t CanonBefore = R.ComparesCanonicalized;
    uint64_t SchedBefore = R.InstructionsRescheduled;
    uint64_t ClockBefore = R.ClockChangesInjected;

    // (1) Compare canonicalization: constants move to the right-hand
    // side so the comparator's fast input carries the variable operand
    // (the ISL/PDG pass of the original tool analyzes which compares
    // share dependences; here every compare is an island of one).
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        auto *Cmp = nir::dyn_cast<CmpInst>(I.get());
        if (!Cmp)
          continue;
        bool LHSConst = nir::isa<nir::ConstantInt>(Cmp->getLHS()) ||
                        nir::isa<nir::ConstantFP>(Cmp->getLHS());
        bool RHSConst = nir::isa<nir::ConstantInt>(Cmp->getRHS()) ||
                        nir::isa<nir::ConstantFP>(Cmp->getRHS());
        if (LHSConst && !RHSConst) {
          nir::Value *L = Cmp->getLHS();
          nir::Value *Rv = Cmp->getRHS();
          Cmp->setOperand(0, Rv);
          Cmp->setOperand(1, L);
          Cmp->setPred(CmpInst::getSwappedPred(Cmp->getPred()));
          ++R.ComparesCanonicalized;
        }
      }

    // (2) Cluster same-period instructions with the basic-block
    // scheduler so the clock changes rarely.
    Scheduler Sched = N.getScheduler(*F);
    PDG &FnDG = N.getFunctionDG(*F);
    nir::DominatorTree &DT = N.getDominators(*F);
    BasicBlockScheduler BBSched(FnDG, DT);
    for (const auto &BB : F->getBlocks())
      R.InstructionsRescheduled += BBSched.schedule(
          BB.get(), [](const Instruction *I) {
            return static_cast<int>(clockPeriodOf(I));
          });
    (void)Sched;

    // (3) Clock-change injection at period boundaries, and the modeled
    // cycle accounting: the baseline machine runs everything at the
    // worst-case period; the squeezed machine switches (paying one fast
    // cycle per switch).
    for (const auto &BB : F->getBlocks()) {
      // Collect the run-length clusters first.
      std::vector<std::pair<Instruction *, unsigned>> Anchors;
      unsigned Current = 0;
      unsigned WorstPeriod = 0;
      std::vector<unsigned> Periods;
      for (const auto &I : BB->getInstList()) {
        if (nir::isa<nir::PhiInst>(I.get()))
          continue;
        unsigned P = clockPeriodOf(I.get());
        Periods.push_back(P);
        WorstPeriod = std::max(WorstPeriod, P);
        if (P != Current) {
          Anchors.push_back({I.get(), P});
          Current = P;
        }
      }
      for (unsigned P : Periods) {
        R.BaselineCycles += 30; // one fixed worst-case period
        R.SqueezedCycles += P;
      }
      // Injecting before the anchor of each new cluster.
      for (auto &[Anchor, P] : Anchors) {
        if (Anchor->isTerminator())
          continue;
        IRBuilder B(Ctx);
        B.setInsertPoint(Anchor);
        auto *Call = B.createCall(SetClock, {Ctx.getInt64(P)});
        Call->setMetadata("noelle.pure", "true"); // no memory effect
        ++R.ClockChangesInjected;
        R.SqueezedCycles += 10; // switching cost
      }
    }
    if (R.ComparesCanonicalized != CanonBefore ||
        R.InstructionsRescheduled != SchedBefore ||
        R.ClockChangesInjected != ClockBefore)
      Mutated.insert(F.get());
  }

  for (Function *F : Mutated)
    N.invalidate(*F);
  assert(nir::moduleVerifies(M) && "TimeSqueezer broke the IR");
  return R;
}
