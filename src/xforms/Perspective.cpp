#include "xforms/Perspective.h"

#include "ir/Instructions.h"

using namespace noelle;
using nir::Instruction;

std::vector<PerspectivePlan> Perspective::planAll() {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::aSCCDAG);

  std::vector<PerspectivePlan> Plans;
  DOALL Doall(N);

  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    PerspectivePlan Plan;
    Plan.FunctionName = LS.getFunction()->getName();
    Plan.LoopID = LS.getID();

    if (Doall.applicable(*LC)) {
      Plan.AlreadyDOALL = true;
      Plans.push_back(std::move(Plan));
      continue;
    }

    // Inventory of the loop-carried dependences outside IV/reduction
    // cycles: each is a remedy candidate. Apparent (may) dependences can
    // be speculated; must dependences are real obstacles.
    auto &Dag = LC->getSCCDAG();
    auto &RM = LC->getReductionManager();
    auto &IVs = LC->getIVManager();
    bool AnyUnresolvable = false;
    for (auto *E : LC->getLoopDG().getEdges()) {
      if (!E->IsLoopCarried)
        continue;
      auto *From = nir::dyn_cast<Instruction>(E->From);
      auto *To = nir::dyn_cast<Instruction>(E->To);
      if (!From || !To || !LS.contains(From) || !LS.contains(To))
        continue;
      SCC *SF = Dag.sccOf(From);
      bool Handled = false;
      for (const auto &IV : IVs.getInductionVariables())
        if (IV->getSCC() == SF || SF->contains(IV->getPhi()))
          Handled = true;
      if (RM.getReductionFor(SF))
        Handled = true;
      if (Handled)
        continue;

      Remedy R;
      if (E->IsMemory && !E->IsMust) {
        R.TheKind = Remedy::Kind::SpeculateApparentDep;
        R.Description = "speculate apparent " +
                        std::string(E->Kind == DataDepKind::RAW   ? "RAW"
                                    : E->Kind == DataDepKind::WAW ? "WAW"
                                                                  : "WAR") +
                        " memory dependence (" + From->getOpcodeName() +
                        " -> " + To->getOpcodeName() + ")";
      } else if (E->IsMemory && E->Kind != DataDepKind::RAW) {
        R.TheKind = Remedy::Kind::Privatize;
        R.Description = "privatize the object behind a must " +
                        std::string(E->Kind == DataDepKind::WAW ? "WAW"
                                                                : "WAR") +
                        " dependence";
      } else {
        R.TheKind = Remedy::Kind::Unresolvable;
        R.Description = "register/must RAW recurrence (" +
                        From->getOpcodeName() + " -> " +
                        To->getOpcodeName() + ")";
        AnyUnresolvable = true;
      }
      Plan.Remedies.push_back(std::move(R));
    }

    Plan.PlannableWithSpeculation =
        !Plan.Remedies.empty() && !AnyUnresolvable;
    Plans.push_back(std::move(Plan));
  }
  return Plans;
}
