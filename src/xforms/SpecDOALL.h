//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-guided speculative DOALL. Parallelizes loops whose blocking
/// loop-carried memory dependences were *never observed to manifest* in
/// the embedded memory-dependence profile (noelle/MemDepProfiler.h):
/// the static discharge is replaced by a runtime write-log/commit
/// protocol. The task clone's loads and stores are routed through the
/// noelle_spec_* journal accessors, an uninstrumented sequential clone
/// is kept as the recovery path, and the region dispatches through
/// noelle_dispatch_spec, which validates each worker's write ranges
/// against every other worker's read/write sets at the join and rolls
/// back to the sequential clone on conflict.
///
/// Restrictions of the v1 protocol (all checked in applicable()):
///  - the profile must have observed the loop (no evidence, no
///    speculation);
///  - no live-out values (the journaled tasks publish results only
///    through memory);
///  - no allocas, vector memory ops, or calls other than pure math
///    externals in the loop body (the journal covers exactly the
///    scalar accesses the transform can see and rewrite).
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_SPECDOALL_H
#define XFORMS_SPECDOALL_H

#include "noelle/MemDepProfiler.h"
#include "xforms/DOALL.h"

namespace noelle {

class SpecDOALL : public DOALL {
public:
  SpecDOALL(Noelle &N, DOALLOptions Opts = {}) : DOALL(N, Opts) {}

  TechniqueKind getKind() const override {
    return TechniqueKind::SpecDOALL;
  }

  Legality applicable(LoopContent &LC) override;

  TechniqueCost estimate(const Legality &L, const LoopPlan &P,
                         const CostQuery &Q) const override;

  LoopPlan defaultPlan() const override {
    return {TechniqueKind::SpecDOALL, Opts.NumCores,
            std::max(1u, Opts.ChunkGrain)};
  }

protected:
  const char *taskKind() const override { return "doall-spec"; }

  bool mayIgnoreCarriedDep(LoopContent &LC, const PDG::EdgeT &E,
                           Legality &L) override;

  nir::Function *prepareSpeculation(LoopContent &LC,
                                    const EnvLayout &Layout,
                                    ClonedLoopTask &Task) override;

private:
  /// Loads the embedded profile once per module transform session.
  bool loadProfile();

  bool ProfileLoaded = false;
  bool ProfileValid = false;
  MemDepProfile Profile;
};

/// Rewrites every load/store in \p TaskFn into the matching
/// noelle_spec_load_* / noelle_spec_store_* call (declared via
/// declareParallelRuntime), preserving the original width and extension
/// semantics with explicit casts and carrying the replaced access's
/// provenance (noelle.check.orig) onto the call. Exposed for tests.
void instrumentSpeculativeTask(nir::Function &TaskFn);

} // namespace noelle

#endif // XFORMS_SPECDOALL_H
