#include "xforms/HELIX.h"

#include "analysis/Dominators.h"
#include "ir/IDs.h"
#include "ir/Instructions.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/CheckMetadata.h"

#include <algorithm>
#include <cmath>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CmpInst;
using nir::DominatorTree;
using nir::Function;
using nir::IRBuilder;
using nir::Instruction;
using nir::PhiInst;

namespace {

bool isIVSCC(const SCC *S, InductionVariableManager &IVs) {
  for (const auto &IV : IVs.getInductionVariables())
    if (IV->getSCC() == S || S->contains(IV->getPhi()))
      return true;
  return false;
}

/// Program-order position of an instruction inside its function
/// (block-major). Used to order segment members.
uint64_t positionOf(const Instruction *I) {
  uint64_t Pos = 0;
  const Function *F = I->getFunction();
  for (const auto &BB : F->getBlocks())
    for (const auto &Inst : BB->getInstList()) {
      if (Inst.get() == I)
        return Pos;
      ++Pos;
    }
  assert(false && "instruction not found");
  return Pos;
}

} // namespace

bool HELIX::computeSegments(
    LoopContent &LC, std::vector<std::vector<Instruction *>> &SegmentsOut,
    std::string &Reason) {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::aSCCDAG);
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::RD);
  N.noteRequest(Abstraction::DFE);
  N.noteRequest(Abstraction::SCD);
  nir::LoopStructure &LS = LC.getLoopStructure();

  if (!LS.getPreheader()) {
    Reason = "no preheader";
    return false;
  }
  if (LS.getExitBlocks().size() != 1 || LS.getExitingBlocks().size() != 1) {
    Reason = "multiple exits";
    return false;
  }
  for (BasicBlock *Pred : LS.getExitBlocks()[0]->predecessors())
    if (!LS.contains(Pred)) {
      Reason = "exit block has non-loop predecessors";
      return false;
    }
  // Sequential segments must run after the iteration is known to
  // execute, so the exit test has to be in the header (while form).
  if (LS.getExitingBlocks()[0] != LS.getHeader()) {
    Reason = "loop is not in while form (header must be the exit)";
    return false;
  }

  auto &IVs = LC.getIVManager();
  InductionVariable *GIV = IVs.getGoverningIV();
  if (!GIV || !GIV->hasConstantStep() || GIV->getConstantStep() == 0) {
    Reason = "no governing IV with constant step";
    return false;
  }
  if (GIV->getGoverningBranch()->getParent() != LS.getHeader()) {
    Reason = "exit not governed from the header";
    return false;
  }
  switch (GIV->getGoverningCmp()->getPred()) {
  case CmpInst::Pred::SLT:
  case CmpInst::Pred::SLE:
  case CmpInst::Pred::SGT:
  case CmpInst::Pred::SGE:
    break;
  case CmpInst::Pred::NE:
    if (!LS.contains(GIV->getGoverningBranch()->getSuccessor(0))) {
      Reason = "inverted != exit test";
      return false;
    }
    break;
  default:
    Reason = "unsupported governing comparison";
    return false;
  }
  for (const auto &IV : IVs.getInductionVariables())
    if (!IV->hasConstantStep()) {
      Reason = "secondary IV with non-constant step";
      return false;
    }

  // Group the SCCs that carry cross-iteration dependences (outside IV
  // and reduction cycles) into sequential segments.
  auto &Dag = LC.getSCCDAG();
  auto &RM = LC.getReductionManager();
  std::map<SCC *, unsigned> GroupOf;
  std::vector<std::set<SCC *>> Groups;
  auto GroupFor = [&](SCC *S) -> unsigned {
    auto It = GroupOf.find(S);
    if (It != GroupOf.end())
      return It->second;
    Groups.push_back({S});
    GroupOf[S] = static_cast<unsigned>(Groups.size() - 1);
    return GroupOf[S];
  };
  auto Merge = [&](SCC *A, SCC *B) {
    unsigned GA = GroupFor(A), GB = GroupFor(B);
    if (GA == GB)
      return;
    for (SCC *S : Groups[GB]) {
      Groups[GA].insert(S);
      GroupOf[S] = GA;
    }
    Groups[GB].clear();
  };

  for (auto *E : LC.getLoopDG().getEdges()) {
    if (!E->IsLoopCarried)
      continue;
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !LS.contains(From) || !LS.contains(To))
      continue;
    SCC *SF = Dag.sccOf(From);
    SCC *ST = Dag.sccOf(To);
    if (SF == ST && (isIVSCC(SF, IVs) || RM.getReductionFor(SF)))
      continue;
    GroupFor(SF);
    if (ST != SF)
      Merge(SF, ST);
  }

  // Materialize segments and check their shape.
  DominatorTree &DT = N.getDominators(*LS.getFunction());
  SegmentsOut.clear();
  for (const auto &G : Groups) {
    if (G.empty())
      continue;
    std::vector<Instruction *> Members;
    for (SCC *S : G)
      for (auto *V : S->getNodes())
        Members.push_back(nir::cast<Instruction>(V));
    std::sort(Members.begin(), Members.end(),
              [](Instruction *A, Instruction *B) {
                return positionOf(A) < positionOf(B);
              });

    for (Instruction *I : Members) {
      if (auto *Phi = nir::dyn_cast<PhiInst>(I)) {
        if (Phi->getParent() != LS.getHeader()) {
          Reason = "sequential segment carries a non-header phi";
          return false;
        }
        continue;
      }
      if (I->getParent() == LS.getHeader()) {
        Reason = "sequential work in the header (would wait before the "
                 "exit test)";
        return false;
      }
      // Members must execute exactly once per iteration.
      bool DominatesLatches = true;
      for (BasicBlock *Latch : LS.getLatches())
        if (!DT.dominates(I->getParent(), Latch))
          DominatesLatches = false;
      if (!DominatesLatches) {
        Reason = "sequential segment under loop-variant control flow";
        return false;
      }
    }

    // Spilled recurrence phis: every use must sit inside the segment or
    // after its first non-phi member (the load lands right there).
    uint64_t FirstNonPhiPos = UINT64_MAX;
    for (Instruction *I : Members)
      if (!nir::isa<PhiInst>(I))
        FirstNonPhiPos = std::min(FirstNonPhiPos, positionOf(I));
    std::set<Instruction *> MemberSet(Members.begin(), Members.end());
    for (Instruction *I : Members) {
      auto *Phi = nir::dyn_cast<PhiInst>(I);
      if (!Phi)
        continue;
      for (const auto &U : Phi->uses()) {
        auto *UserInst =
            nir::dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
        if (!UserInst || !LS.contains(UserInst))
          continue; // Outside uses read the shared slot after dispatch.
        if (MemberSet.count(UserInst))
          continue;
        if (positionOf(UserInst) < FirstNonPhiPos) {
          Reason = "recurrence value used before the segment starts";
          return false;
        }
      }
    }

    SegmentsOut.push_back(std::move(Members));
  }

  // Live-outs: reductions (combined across lanes) or segment members
  // (final value read from the shared spill slot).
  auto &Env = LC.getEnvironment();
  for (Instruction *Out : Env.getLiveOuts()) {
    bool IsReduction = false;
    for (const auto &R : RM.getReductions())
      if (Out == R.Phi || Out == R.Update)
        IsReduction = true;
    bool InSegment = false;
    for (const auto &Seg : SegmentsOut)
      for (Instruction *I : Seg)
        if (I == Out)
          InSegment = true;
    if (!IsReduction && !InSegment) {
      Reason = "live-out is neither a reduction nor sequential state";
      return false;
    }
  }

  return true;
}

Legality HELIX::applicable(LoopContent &LC) {
  Legality L;
  std::vector<std::vector<Instruction *>> Segments;
  if (!computeSegments(LC, Segments, L.Reason))
    return L;
  nir::LoopStructure &LS = LC.getLoopStructure();
  for (BasicBlock *BB : LS.getBlocks())
    for (const auto &I : BB->getInstList())
      if (!nir::isa<PhiInst>(I.get()) && !I->isTerminator())
        ++L.BodyWeight;
  L.NumSegments = static_cast<unsigned>(Segments.size());
  for (const auto &S : Segments)
    L.SegmentWeight += S.size();
  L.Ok = true;
  return L;
}

TechniqueCost HELIX::estimate(const Legality &L, const LoopPlan &P,
                              const CostQuery &Q) const {
  // Iterations distribute cyclically; each task runs ~Trip/W of them,
  // paying two gate operations per segment per iteration on its own
  // path, but the sequential segments' dynamic instances execute in
  // iteration order across cores, so the total segment work floors the
  // region time (the figure-5 model's HELIX bound).
  double W = std::max(1u, P.Workers);
  double Body =
      static_cast<double>(std::max<uint64_t>(1, L.BodyWeight)) *
      Q.BodyScale;
  double PerIterSync =
      2.0 * Q.SyncCost * static_cast<double>(L.NumSegments);
  double MaxTask = Q.TripCount * (Body + PerIterSync) / W;
  double SegmentFloor =
      Q.TripCount * static_cast<double>(L.SegmentWeight) * Q.BodyScale;
  TechniqueCost C;
  C.SequentialTime = Q.Invocations * Q.TripCount * Body;
  C.ParallelTime = Q.Invocations * (std::max(MaxTask, SegmentFloor) +
                                    W * Q.SpawnCostPerTask);
  return C;
}

bool HELIX::profitable(LoopContent &LC, const Legality &L,
                       std::string &Reason) {
  (void)LC;
  // Profitability: per iteration, the serialized portion costs the
  // segment work plus two gate operations per segment; the parallel
  // portion divides across cores. Decline when the estimate is below
  // the threshold (the paper's HELIX prunes via PRO + AR).
  if (Opts.MinimumEstimatedSpeedup <= 0 || L.NumSegments == 0)
    return true;
  double Serialized = static_cast<double>(
      L.SegmentWeight +
      2 * Opts.SyncCostInstructions * static_cast<uint64_t>(L.NumSegments));
  double Parallel =
      static_cast<double>(L.BodyWeight) / static_cast<double>(Opts.NumCores);
  double Estimate =
      static_cast<double>(L.BodyWeight) / std::max(Serialized, Parallel);
  if (Estimate < Opts.MinimumEstimatedSpeedup) {
    Reason = "not profitable (sequential segments dominate)";
    return false;
  }
  return true;
}

bool HELIX::apply(LoopContent &LC, const LoopPlan &P, Decision &D) {
  D.Kind = TechniqueKind::HELIX;
  std::vector<std::vector<Instruction *>> Segments;
  if (!computeSegments(LC, Segments, D.Reason))
    return false;
  D.NumSequentialSegments = static_cast<unsigned>(Segments.size());
  unsigned Workers = std::max(1u, P.Workers);

  N.noteRequest(Abstraction::ENV);
  N.noteRequest(Abstraction::T);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::IVS);
  N.noteRequest(Abstraction::LS);
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::PRO);
  N.noteRequest(Abstraction::AR);
  nir::LoopStructure &LS = LC.getLoopStructure();
  Function *F = LS.getFunction();
  nir::Module &M = *F->getParent();
  nir::Context &Ctx = M.getContext();
  declareParallelRuntime(M);
  auto &IVs = LC.getIVManager();
  auto &RM = LC.getReductionManager();
  auto &Env = LC.getEnvironment();

  EnvLayout Layout;
  Layout.Env = &Env;
  Layout.Lanes = Workers;

  // Environment extras: one shared spill slot per recurrence phi, plus
  // the gates pointer.
  std::vector<PhiInst *> SpilledPhis;
  std::map<const PhiInst *, unsigned> SpillSlot;
  for (const auto &Seg : Segments)
    for (Instruction *I : Seg)
      if (auto *Phi = nir::dyn_cast<PhiInst>(I)) {
        SpillSlot[Phi] = Layout.totalSlots() +
                         static_cast<unsigned>(SpilledPhis.size());
        SpilledPhis.push_back(Phi);
      }
  unsigned GatesSlot =
      Layout.totalSlots() + static_cast<unsigned>(SpilledPhis.size());
  unsigned TotalSlots = GatesSlot + 1;

  // --- Task side -------------------------------------------------------
  ClonedLoopTask Task = cloneLoopIntoTask(
      LS, Layout, F->getName() + ".helix" + std::to_string(LS.getID()));
  Task.TaskFn->setMetadata(verify::TaskKindKey, "helix");
  Task.TaskFn->setMetadata(verify::TaskWorkersKey, std::to_string(Workers));
  Task.TaskFn->setMetadata(verify::TaskSegmentsKey,
                           std::to_string(Segments.size()));
  auto *TaskEntry = &Task.TaskFn->getEntryBlock();
  IRBuilder TB(Ctx);
  TB.setInsertPoint(TaskEntry->getTerminator());

  // Load the gates pointer.
  Value *Gates =
      emitEnvLoad(TB, Task.EnvArg, GatesSlot, Ctx.getPtrTy(), "gates");

  // Re-base IVs exactly like DOALL (cyclic distribution).
  for (const auto &IV : IVs.getInductionVariables()) {
    auto *ClonedPhi = nir::cast<PhiInst>(Task.ValueMap[IV->getPhi()]);
    auto *ClonedUpd =
        nir::cast<BinaryInst>(Task.ValueMap[IV->getStepInstruction()]);
    int64_t Step = IV->getConstantStep();
    Value *StartMapped = ClonedPhi->getIncomingValueForBlock(TaskEntry);
    Value *Offset =
        TB.createMul(Task.TaskIDArg, TB.getInt64(Step), "iv.offset");
    Value *NewStart = TB.createAdd(StartMapped, Offset, "iv.start");
    int Idx = ClonedPhi->getBlockIndex(TaskEntry);
    ClonedPhi->setIncomingValue(static_cast<unsigned>(Idx), NewStart);
    int64_t RawAmount =
        ClonedUpd->getOp() == BinaryInst::Op::Sub ? -Step : Step;
    ClonedUpd->replaceUsesOfWith(
        ClonedUpd->getLHS() == ClonedPhi ? ClonedUpd->getRHS()
                                         : ClonedUpd->getLHS(),
        Ctx.getInt64(RawAmount * static_cast<int64_t>(Workers)));
  }
  // NE exit tests would overshoot with the larger stride.
  {
    InductionVariable *GIV = IVs.getGoverningIV();
    auto *ClonedCmp =
        nir::cast<CmpInst>(Task.ValueMap[GIV->getGoverningCmp()]);
    if (ClonedCmp->getPred() == CmpInst::Pred::NE) {
      bool StepPositive = GIV->getConstantStep() > 0;
      CmpInst::Pred Continue =
          StepPositive ? CmpInst::Pred::SLT : CmpInst::Pred::SGT;
      bool IVOnLHS = GIV->getGoverningCmp()->getLHS() == GIV->getPhi() ||
                     GIV->getGoverningCmp()->getLHS() ==
                         GIV->getStepInstruction();
      if (!IVOnLHS)
        Continue = CmpInst::getSwappedPred(Continue);
      ClonedCmp->setPred(Continue);
    }
  }

  // Global iteration counter: g = phi [taskID, entry], [g + N, latch].
  auto *ClonedHeader = nir::cast<BasicBlock>(Task.ValueMap[LS.getHeader()]);
  auto *GPhi = new PhiInst(Ctx.getInt64Ty());
  GPhi->setName("helix.iter");
  ClonedHeader->insert(ClonedHeader->front(),
                       std::unique_ptr<Instruction>(GPhi));
  Instruction *GNext;
  {
    IRBuilder HB(Ctx);
    HB.setInsertPoint(ClonedHeader->getFirstNonPhi());
    GNext = HB.createAdd(GPhi, HB.getInt64(Workers), "helix.iter.next");
  }
  GPhi->addIncoming(Task.TaskIDArg, TaskEntry);
  for (BasicBlock *Latch : LS.getLatches())
    GPhi->addIncoming(GNext, nir::cast<BasicBlock>(Task.ValueMap[Latch]));

  // Instrument each sequential segment with wait/signal gates, spilling
  // recurrence phis through shared environment slots.
  nir::Function *WaitFn = M.getFunction("noelle_ss_wait");
  nir::Function *SignalFn = M.getFunction("noelle_ss_signal");
  for (unsigned SegIdx = 0; SegIdx < Segments.size(); ++SegIdx) {
    auto &Seg = Segments[SegIdx];
    Instruction *FirstNonPhi = nullptr, *LastNonPhi = nullptr;
    for (Instruction *I : Seg) {
      if (nir::isa<PhiInst>(I))
        continue;
      if (!FirstNonPhi)
        FirstNonPhi = I;
      LastNonPhi = I;
    }
    assert(FirstNonPhi && "segment without executable members");
    auto *ClonedFirst = nir::cast<Instruction>(Task.ValueMap[FirstNonPhi]);
    auto *ClonedLast = nir::cast<Instruction>(Task.ValueMap[LastNonPhi]);

    IRBuilder SB(Ctx);
    SB.setInsertPoint(ClonedFirst);
    SB.createCall(WaitFn, {Gates, Ctx.getInt64(SegIdx), GPhi});
    // Spill loads right after the wait.
    for (Instruction *I : Seg) {
      auto *Phi = nir::dyn_cast<PhiInst>(I);
      if (!Phi)
        continue;
      auto *ClonedPhi = nir::cast<PhiInst>(Task.ValueMap[Phi]);
      Value *Slot = SB.createGEP(Task.EnvArg,
                                 SB.getInt64(SpillSlot[Phi]), 8, "spill");
      nir::LoadInst *Loaded = SB.createLoad(Phi->getType(), Slot, "recur");
      std::string PhiId = Phi->getMetadata(nir::InstIDKey);
      if (!PhiId.empty())
        Loaded->setMetadata(verify::CheckSpillKey, PhiId);
      ClonedPhi->replaceAllUsesWith(Loaded);
      // The cloned phi is dead now; drop it.
      ClonedPhi->eraseFromParent();
      Task.ValueMap[Phi] = Loaded;
    }
    // Spill stores + signal after the last member.
    Instruction *SignalPos = ClonedLast->getNextInst();
    assert(SignalPos && "segment member cannot be a terminator");
    SB.setInsertPoint(SignalPos);
    for (Instruction *I : Seg) {
      auto *Phi = nir::dyn_cast<PhiInst>(I);
      if (!Phi)
        continue;
      // The value crossing to the next iteration: the phi's in-loop
      // incoming (mapped).
      Value *NextVal = nullptr;
      for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
        if (LS.contains(Phi->getIncomingBlock(K)))
          NextVal = Phi->getIncomingValue(K);
      assert(NextVal);
      auto MappedIt = Task.ValueMap.find(NextVal);
      Value *MappedNext =
          MappedIt != Task.ValueMap.end() ? MappedIt->second : NextVal;
      Value *Slot = SB.createGEP(Task.EnvArg,
                                 SB.getInt64(SpillSlot[Phi]), 8, "spill");
      nir::StoreInst *SpillStore = SB.createStore(MappedNext, Slot);
      std::string PhiId = Phi->getMetadata(nir::InstIDKey);
      if (!PhiId.empty())
        SpillStore->setMetadata(verify::CheckSpillKey, PhiId);
    }
    SB.createCall(SignalFn, {Gates, Ctx.getInt64(SegIdx), GPhi});
  }

  // Privatize reductions (identity + lane store), as in DOALL.
  IRBuilder ExitB(Ctx);
  ExitB.setInsertPoint(Task.ExitBlock->getTerminator());
  for (Instruction *Out : Env.getLiveOuts()) {
    const ReductionVariable *R = nullptr;
    for (const auto &Cand : RM.getReductions())
      if (Out == Cand.Phi || Out == Cand.Update)
        R = &Cand;
    if (!R)
      continue; // Segment live-outs are read from the spill slot.
    auto *ClonedPhi = nir::cast<PhiInst>(Task.ValueMap[R->Phi]);
    int Idx = ClonedPhi->getBlockIndex(TaskEntry);
    ClonedPhi->setIncomingValue(static_cast<unsigned>(Idx),
                                R->getIdentity(Ctx));
    Value *Partial = Task.ValueMap[Out];
    Value *Slot = ExitB.createGEP(
        Task.EnvArg,
        ExitB.createAdd(ExitB.getInt64(Layout.liveOutSlot(Out, 0)),
                        Task.TaskIDArg, "lane"),
        8, "out.slot");
    ExitB.createStore(Partial, Slot);
  }

  // --- Caller side -----------------------------------------------------
  // replaceLoopWithDispatch allocates only Layout.totalSlots(); HELIX
  // needs the extra spill/gates slots, so emit the env alloca and
  // initialization manually by widening the layout trick: temporarily
  // borrow the helper then patch the alloca size.
  BasicBlock *Dispatch =
      replaceLoopWithDispatch(LS, Layout, Task.TaskFn, Workers);
  auto *EnvAlloca = nir::cast<nir::AllocaInst>(Dispatch->front());
  // Widen the environment array to include spill + gates slots.
  auto *Widened = new nir::AllocaInst(
      Ctx.getPtrTy(), Ctx.getArrayTy(Ctx.getInt64Ty(), TotalSlots));
  Widened->setName("env");
  Widened->insertBefore(EnvAlloca);
  EnvAlloca->replaceAllUsesWith(Widened);
  EnvAlloca->eraseFromParent();
  Value *EnvV = Widened;

  // Initialize spill slots and gates before the dispatch call.
  nir::Instruction *DispatchCall = nullptr;
  for (auto &I : Dispatch->getInstList())
    if (auto *C = nir::dyn_cast<nir::CallInst>(I.get()))
      if (C->getCalledFunction() &&
          C->getCalledFunction()->getName() == "noelle_dispatch")
        DispatchCall = C;
  assert(DispatchCall);
  IRBuilder CB(Ctx);
  CB.setInsertPoint(DispatchCall);
  for (PhiInst *Phi : SpilledPhis) {
    Value *Init = nullptr;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
      if (!LS.contains(Phi->getIncomingBlock(K)))
        Init = Phi->getIncomingValue(K);
    assert(Init && "recurrence phi lacks an entry value");
    emitEnvStore(CB, EnvV, SpillSlot[Phi], Init);
  }
  nir::Function *SSCreate = M.getFunction("noelle_ss_create");
  Value *GatesV = CB.createCall(
      SSCreate, {Ctx.getInt64(static_cast<int64_t>(Segments.size()))},
      "gates");
  emitEnvStore(CB, EnvV, GatesSlot, GatesV);

  // Live-outs after the dispatch.
  CB.setInsertPoint(Dispatch->getTerminator());
  for (Instruction *Out : Env.getLiveOuts()) {
    const ReductionVariable *R = nullptr;
    for (const auto &Cand : RM.getReductions())
      if (Out == Cand.Phi || Out == Cand.Update)
        R = &Cand;
    if (R) {
      Value *Acc = nullptr;
      for (unsigned Lane = 0; Lane < Workers; ++Lane) {
        Value *Partial = emitEnvLoad(CB, EnvV, Layout.liveOutSlot(Out, Lane),
                                     Out->getType(), "partial");
        Acc = Acc ? ReductionManager::emitCombine(CB, R->Op, Acc, Partial)
                  : Partial;
      }
      Value *Final =
          ReductionManager::emitCombine(CB, R->Op, R->InitialValue, Acc);
      Out->replaceAllUsesWith(Final);
      continue;
    }
    // Segment state: its final value lives in the spill slot.
    const PhiInst *StatePhi = nullptr;
    for (PhiInst *Phi : SpilledPhis) {
      if (Out == Phi) {
        StatePhi = Phi;
        break;
      }
      for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
        if (LS.contains(Phi->getIncomingBlock(K)) &&
            Phi->getIncomingValue(K) == Out)
          StatePhi = Phi;
    }
    assert(StatePhi && "live-out admitted by computeSegments but untracked");
    Value *Final = emitEnvLoad(CB, EnvV, SpillSlot.at(StatePhi),
                               Out->getType(), "state.final");
    Out->replaceAllUsesWith(Final);
  }

  // finalizeLoopRemoval frees the loop's blocks, and LS reads its header
  // to answer getFunction(): resolve the host function first.
  nir::Function *HostF = LS.getFunction();
  finalizeLoopRemoval(LS, Dispatch);
  // Only the host function changed (the task bodies are new functions
  // with no cached analyses): keep every other function's bundles.
  N.invalidate(*HostF);
  bumpPlanEpoch(M);
  assert(nir::moduleVerifies(M) && "HELIX produced invalid IR");
  D.Parallelized = true;
  D.Workers = Workers;
  return true;
}
