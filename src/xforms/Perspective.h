//===----------------------------------------------------------------------===//
///
/// \file
/// Perspective-lite (Table 3: PERS): the planning core of Perspective
/// (ASPLOS'20), the speculative parallelizer the paper ports onto
/// NOELLE's PDG and aSCCDAG (the port keeps 22.7k LoC of the original
/// 34k; per Table 4 it consumes exactly those two abstractions). This
/// reproduction implements the *speculation planner*: for each loop it
/// computes the cheapest set of "remedies" (speculated apparent
/// dependences, privatized objects) that would make the loop DOALL, and
/// applies the profile-checked ones by privatizing and re-running DOALL.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_PERSPECTIVE_H
#define XFORMS_PERSPECTIVE_H

#include "xforms/DOALL.h"

namespace noelle {

/// One required remedy for a loop to become DOALL.
struct Remedy {
  enum class Kind {
    SpeculateApparentDep, ///< may-dependence never observed in profile
    Privatize,            ///< per-iteration object, clone per task
    Unresolvable,         ///< must-dependence: speculation cannot help
  };
  Kind TheKind;
  std::string Description;
};

struct PerspectivePlan {
  std::string FunctionName;
  unsigned LoopID = 0;
  bool AlreadyDOALL = false;
  bool PlannableWithSpeculation = false;
  std::vector<Remedy> Remedies;
};

class Perspective {
public:
  explicit Perspective(Noelle &N) : N(N) {}

  /// Plans every loop: which apparent dependences would need speculation
  /// for DOALL-ness and whether that set is non-empty and sufficient.
  std::vector<PerspectivePlan> planAll();

private:
  Noelle &N;
};

} // namespace noelle

#endif // XFORMS_PERSPECTIVE_H
