//===----------------------------------------------------------------------===//
///
/// \file
/// DeadFunctionEliminator (Table 3: DEAD, 61 LoC vs 7512 without
/// NOELLE): removes functions that can never execute. It relies on the
/// *complete* call graph (CG) — because NOELLE's CG resolves indirect
/// calls, a missing edge proves unreachability — plus the islands
/// abstraction (ISL) to drop whole disconnected components (§4.5).
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_DEADFUNCTIONELIMINATOR_H
#define XFORMS_DEADFUNCTIONELIMINATOR_H

#include "noelle/Noelle.h"

namespace noelle {

struct DeadFunctionResult {
  unsigned FunctionsRemoved = 0;
  uint64_t InstructionsRemoved = 0;
  uint64_t BinaryBytesBefore = 0;
  uint64_t BinaryBytesAfter = 0;
};

class DeadFunctionEliminator {
public:
  explicit DeadFunctionEliminator(Noelle &N) : N(N) {}

  /// Deletes every function definition not reachable from @main through
  /// the complete call graph (and not address-taken by a live function).
  DeadFunctionResult run();

private:
  Noelle &N;
};

} // namespace noelle

#endif // XFORMS_DEADFUNCTIONELIMINATOR_H
