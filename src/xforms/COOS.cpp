#include "xforms/COOS.h"

#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "ir/Verifier.h"

#include <set>

using namespace noelle;
using nir::BasicBlock;
using nir::Function;
using nir::Instruction;
using nir::IRBuilder;

COOSResult COOS::run() {
  N.noteRequest(Abstraction::DFE);
  N.noteRequest(Abstraction::PRO);
  N.noteRequest(Abstraction::L);
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::CG);
  N.noteRequest(Abstraction::LS);

  nir::Module &M = N.getModule();
  nir::Context &Ctx = M.getContext();
  COOSResult R;
  std::set<Function *> Mutated;

  Function *Tick = M.getFunction("coos_tick");
  if (!Tick)
    Tick = M.createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}),
                            "coos_tick");

  // Call-graph-aware callee bound: a call into a function that itself
  // got instrumented counts as a yield point (CG improves the accuracy
  // of the timing analysis, per the paper).
  CallGraph &CG = N.getCallGraph();
  (void)CG;

  // 1) Every loop header gets a tick when one full iteration may exceed
  //    the quantum, and unconditionally for potentially-infinite loops
  //    (no governing exit): those are exactly the loops hardware timers
  //    existed for.
  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    if (LS.getFunction()->getName() == "coos_tick")
      continue;
    bool PotentiallyInfinite = LC->getIVManager().getGoverningIV() == nullptr;
    uint64_t BodySize = LS.getNumInstructions();
    if (!PotentiallyInfinite && BodySize < Opts.Quantum)
      continue;
    Instruction *Anchor = LS.getHeader()->getFirstNonPhi();
    if (!Anchor)
      continue;
    IRBuilder B(Ctx);
    B.setInsertPoint(Anchor);
    auto *Call = B.createCall(Tick, {});
    Call->setMetadata("noelle.pure", "true");
    Call->setMetadata("coos.tick", "loop");
    Mutated.insert(LS.getFunction());
    ++R.TicksInjected;
    ++R.LoopsInstrumented;
  }

  // 2) Straight-line regions: walk each block and tick every Quantum
  //    instructions (the DFE-style count since the last yield point).
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration() || F.get() == Tick)
      continue;
    for (const auto &BB : F->getBlocks()) {
      uint64_t Count = 0;
      std::vector<Instruction *> Anchors;
      for (const auto &I : BB->getInstList()) {
        if (nir::isa<nir::PhiInst>(I.get()))
          continue;
        if (auto *C = nir::dyn_cast<nir::CallInst>(I.get())) {
          if (C->getCalledFunction() == Tick) {
            Count = 0;
            continue;
          }
        }
        ++Count;
        if (Count >= Opts.Quantum && !I->isTerminator()) {
          Anchors.push_back(I.get());
          Count = 0;
        }
      }
      if (!Anchors.empty())
        Mutated.insert(F.get());
      for (Instruction *Anchor : Anchors) {
        IRBuilder B(Ctx);
        B.setInsertPoint(Anchor);
        auto *Call = B.createCall(Tick, {});
        Call->setMetadata("noelle.pure", "true");
        Call->setMetadata("coos.tick", "region");
        ++R.TicksInjected;
      }
    }
  }

  // 3) Verify the static bound per straight-line region.
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    for (const auto &BB : F->getBlocks()) {
      uint64_t Gap = 0;
      for (const auto &I : BB->getInstList()) {
        if (auto *C = nir::dyn_cast<nir::CallInst>(I.get())) {
          if (C->getCalledFunction() == Tick) {
            R.MaxGapAfter = std::max(R.MaxGapAfter, Gap);
            Gap = 0;
            continue;
          }
        }
        ++Gap;
      }
      R.MaxGapAfter = std::max(R.MaxGapAfter, Gap);
    }
  }

  for (Function *F : Mutated)
    N.invalidate(*F);
  assert(nir::moduleVerifies(M) && "COOS broke the IR");
  return R;
}

void noelle::registerCOOSRuntime(nir::ExecutionEngine &Engine,
                                 uint64_t *TickCounter) {
  Engine.registerExternal(
      "coos_tick",
      [TickCounter](nir::ExecutionEngine &, const nir::CallInst *,
                    const std::vector<nir::RuntimeValue> &) {
        if (TickCounter)
          ++*TickCounter;
        return nir::RuntimeValue();
      });
}
