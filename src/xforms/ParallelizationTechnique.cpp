#include "xforms/ParallelizationTechnique.h"

#include "planner/Planner.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"
#include "xforms/SpecDOALL.h"

using namespace noelle;

const char *noelle::techniqueName(TechniqueKind K) {
  switch (K) {
  case TechniqueKind::DOALL:
    return "doall";
  case TechniqueKind::HELIX:
    return "helix";
  case TechniqueKind::DSWP:
    return "dswp";
  case TechniqueKind::SpecDOALL:
    return "spec-doall";
  }
  return "doall";
}

bool noelle::techniqueFromName(const std::string &Name, TechniqueKind &K) {
  if (Name == "doall") {
    K = TechniqueKind::DOALL;
    return true;
  }
  if (Name == "helix") {
    K = TechniqueKind::HELIX;
    return true;
  }
  if (Name == "dswp") {
    K = TechniqueKind::DSWP;
    return true;
  }
  if (Name == "spec-doall") {
    K = TechniqueKind::SpecDOALL;
    return true;
  }
  return false;
}

std::vector<Decision> ParallelizationTechnique::run() {
  return planner::Planner::applyEverywhere(*this);
}

std::unique_ptr<ParallelizationTechnique>
noelle::createTechnique(TechniqueKind K, Noelle &N, unsigned NumCores) {
  switch (K) {
  case TechniqueKind::DOALL: {
    DOALLOptions O;
    O.NumCores = NumCores;
    return std::make_unique<DOALL>(N, O);
  }
  case TechniqueKind::HELIX: {
    HELIXOptions O;
    O.NumCores = NumCores;
    return std::make_unique<HELIX>(N, O);
  }
  case TechniqueKind::DSWP: {
    DSWPOptions O;
    O.NumCores = NumCores;
    return std::make_unique<DSWP>(N, O);
  }
  case TechniqueKind::SpecDOALL: {
    DOALLOptions O;
    O.NumCores = NumCores;
    return std::make_unique<SpecDOALL>(N, O);
  }
  }
  return nullptr;
}
