//===----------------------------------------------------------------------===//
///
/// \file
/// PRVJeeves (Table 3, CGO'20): selects pseudo-random value generators.
/// Randomized programs call a generic PRVG through a common interface;
/// PRVJeeves analyzes each use site (PDG + CG + DFE: where does the
/// random value flow?) and retargets the call to the cheapest generator
/// whose statistical quality suffices — integer-only consumption (array
/// shuffles, branches) tolerates a fast LCG, while values converted to
/// floating point (Monte-Carlo integration) keep a high-quality
/// generator. PRO prunes cold call sites (Section 3).
///
/// Programs opt in by defining/declaring:
///   int prvg_next(int seed)        — generic, high quality by default
///   int prvg_lcg_next(int seed)    — cheap
///   int prvg_mt_next(int seed)     — expensive, high quality
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_PRVJEEVES_H
#define XFORMS_PRVJEEVES_H

#include "noelle/Noelle.h"

namespace noelle {

struct PRVJeevesOptions {
  /// Call sites below this hotness keep the generic generator ("PRVGs
  /// not used frequently are left unmodified").
  double MinimumHotness = 0.0;
};

struct PRVJeevesResult {
  unsigned SitesAnalyzed = 0;
  unsigned DowngradedToLCG = 0;   ///< integer-only consumers
  unsigned PinnedToMT = 0;        ///< floating-point consumers
  unsigned LeftUnmodified = 0;    ///< cold or escaping uses
};

class PRVJeeves {
public:
  PRVJeeves(Noelle &N, PRVJeevesOptions Opts = {}) : N(N), Opts(Opts) {}

  PRVJeevesResult run();

private:
  Noelle &N;
  PRVJeevesOptions Opts;
};

} // namespace noelle

#endif // XFORMS_PRVJEEVES_H
