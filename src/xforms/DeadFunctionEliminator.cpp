#include "xforms/DeadFunctionEliminator.h"

#include "ir/Instructions.h"

using namespace noelle;
using nir::Function;

DeadFunctionResult DeadFunctionEliminator::run() {
  N.noteRequest(Abstraction::CG);
  N.noteRequest(Abstraction::ISL);
  nir::Module &M = N.getModule();
  DeadFunctionResult R;
  R.BinaryBytesBefore = M.str().size();

  CallGraph &CG = N.getCallGraph();
  Function *Main = M.getFunction("main");
  if (!Main) {
    R.BinaryBytesAfter = R.BinaryBytesBefore;
    return R;
  }

  // Reachability over the complete call graph. Because indirect-call
  // edges are included, everything outside this set provably never runs.
  std::set<Function *> Live = CG.getReachableFrom({Main});

  std::vector<Function *> Dead;
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration() || Live.count(F.get()))
      continue;
    Dead.push_back(F.get());
  }

  // Dead functions may still be *referenced* by other dead functions
  // (address taken); deleting the whole island at once keeps use lists
  // consistent. First drop every operand reference (branches reference
  // blocks, calls reference functions), then strip the bodies.
  for (Function *F : Dead)
    R.InstructionsRemoved += F->getNumInstructions();
  for (Function *F : Dead)
    for (auto &BB : F->getBlocks())
      for (auto &I : BB->getInstList())
        I->dropAllOperands();
  for (Function *F : Dead) {
    while (!F->getBlocks().empty())
      F->eraseBlock(F->getBlocks().back().get());
  }
  for (Function *F : Dead) {
    if (F->hasUses())
      continue; // Referenced from live code as data: keep the shell.
    M.eraseFunction(F);
    ++R.FunctionsRemoved;
  }

  R.BinaryBytesAfter = M.str().size();
  N.invalidateAll();
  return R;
}
