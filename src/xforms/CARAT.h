//===----------------------------------------------------------------------===//
///
/// \file
/// CARAT (Table 3): compiler- and runtime-based address translation.
/// Injects guard calls before memory instructions whose validity cannot
/// be proven at compile time, so the co-designed runtime can replace
/// virtual memory (PLDI'20). Uses PDG + aSCCDAG + INV to find what needs
/// guarding, DFE to kill redundant guards along every path, L/LB/IV to
/// hoist per-iteration guards of invariant addresses, and SCD for
/// placement (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_CARAT_H
#define XFORMS_CARAT_H

#include "noelle/Noelle.h"

namespace noelle {

struct CARATResult {
  unsigned GuardsInjected = 0;
  unsigned GuardsElidedRedundant = 0; ///< removed by the DFE pass
  unsigned GuardsHoisted = 0;         ///< moved to preheaders via INV
};

class CARAT {
public:
  explicit CARAT(Noelle &N) : N(N) {}

  /// Guards every unproven memory access with carat_guard(ptr, size).
  /// The interpreter-side runtime validates the address against the
  /// engine's memory map (registerCARATRuntime).
  CARATResult run();

private:
  Noelle &N;
};

/// Installs the carat_guard runtime: aborts the program when a guarded
/// address is not managed by the engine.
void registerCARATRuntime(nir::ExecutionEngine &Engine);

} // namespace noelle

#endif // XFORMS_CARAT_H
