//===----------------------------------------------------------------------===//
///
/// \file
/// The HELIX custom tool: parallelizes a loop by distributing iterations
/// across cores even when sequential SCCs exist — each sequential SCC
/// becomes a "sequential segment" whose dynamic instances execute in
/// iteration order across cores, synchronized through gates (Section 3;
/// HELIX CGO'12). Uses PDG, aSCCDAG, ENV, T, DFE, PRO, SCD, L, LB, IV,
/// IVS, INV, FR, RD, AR, and LS per the paper's Table 4.
/// Implements the unified ParallelizationTechnique interface.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_HELIX_H
#define XFORMS_HELIX_H

#include "xforms/ParallelizationTechnique.h"
#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct HELIXOptions {
  unsigned NumCores = 4;
  double MinimumHotness = 0.0;
  /// Decline loops whose statically estimated speedup falls below this
  /// (sequential segments + gate synchronization can make fine-grained
  /// loops slower; the real tool prunes them with PRO + AR data). Set to
  /// 0 to force parallelization regardless. Honored by the forced sweep
  /// (run()); the planner gates on estimate() instead.
  double MinimumEstimatedSpeedup = 1.05;
  /// Modeled per-gate synchronization cost in instructions (from AR's
  /// core-to-core latency).
  uint64_t SyncCostInstructions = 20;
};

class HELIX : public ParallelizationTechnique {
public:
  HELIX(Noelle &N, HELIXOptions Opts = {})
      : ParallelizationTechnique(N), Opts(Opts) {}

  TechniqueKind getKind() const override { return TechniqueKind::HELIX; }

  Legality applicable(LoopContent &LC) override;

  TechniqueCost estimate(const Legality &L, const LoopPlan &P,
                         const CostQuery &Q) const override;

  bool apply(LoopContent &LC, const LoopPlan &P, Decision &D) override;

  /// The legacy static profitability gate: per iteration, the serialized
  /// portion costs the segment work plus two gate operations per
  /// segment; decline when Body / max(Serialized, Body/Cores) falls
  /// below MinimumEstimatedSpeedup.
  bool profitable(LoopContent &LC, const Legality &L,
                  std::string &Reason) override;

  LoopPlan defaultPlan() const override {
    return {TechniqueKind::HELIX, Opts.NumCores, 1};
  }
  double minimumHotness() const override { return Opts.MinimumHotness; }

private:
  /// Computes the sequential segments of \p LC: groups of instructions
  /// whose cross-iteration order must be preserved. Returns false (with
  /// \p Reason) when HELIX cannot parallelize the loop.
  bool computeSegments(LoopContent &LC,
                       std::vector<std::vector<Instruction *>> &SegmentsOut,
                       std::string &Reason);

  HELIXOptions Opts;
};

} // namespace noelle

#endif // XFORMS_HELIX_H
