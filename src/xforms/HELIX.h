//===----------------------------------------------------------------------===//
///
/// \file
/// The HELIX custom tool: parallelizes a loop by distributing iterations
/// across cores even when sequential SCCs exist — each sequential SCC
/// becomes a "sequential segment" whose dynamic instances execute in
/// iteration order across cores, synchronized through gates (Section 3;
/// HELIX CGO'12). Uses PDG, aSCCDAG, ENV, T, DFE, PRO, SCD, L, LB, IV,
/// IVS, INV, FR, RD, AR, and LS per the paper's Table 4.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_HELIX_H
#define XFORMS_HELIX_H

#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct HELIXOptions {
  unsigned NumCores = 4;
  double MinimumHotness = 0.0;
  /// Decline loops whose statically estimated speedup falls below this
  /// (sequential segments + gate synchronization can make fine-grained
  /// loops slower; the real tool prunes them with PRO + AR data). Set to
  /// 0 to force parallelization regardless.
  double MinimumEstimatedSpeedup = 1.05;
  /// Modeled per-gate synchronization cost in instructions (from AR's
  /// core-to-core latency).
  uint64_t SyncCostInstructions = 20;
};

struct HELIXDecision {
  std::string FunctionName;
  unsigned LoopID = 0;
  bool Parallelized = false;
  unsigned NumSequentialSegments = 0;
  std::string Reason;
};

class HELIX {
public:
  HELIX(Noelle &N, HELIXOptions Opts = {}) : N(N), Opts(Opts) {}

  /// True if HELIX can parallelize \p LC. On success \p SegmentsOut
  /// receives the sequential segments: groups of instructions whose
  /// cross-iteration order must be preserved.
  bool canParallelize(LoopContent &LC,
                      std::vector<std::vector<Instruction *>> &SegmentsOut,
                      std::string &Reason);

  bool parallelizeLoop(LoopContent &LC);

  std::vector<HELIXDecision> run();

private:
  Noelle &N;
  HELIXOptions Opts;
};

} // namespace noelle

#endif // XFORMS_HELIX_H
