#include "xforms/ParallelizationUtils.h"

#include "ir/IDs.h"
#include "ir/Utils.h"
#include "runtime/ParallelRuntime.h"
#include "verify/CheckMetadata.h"

using namespace noelle;
using nir::Argument;
using nir::BasicBlock;
using nir::BranchInst;
using nir::Function;
using nir::IRBuilder;
using nir::Module;
using nir::PhiInst;
using nir::Type;

Function *noelle::createTaskFunction(Module &M, const std::string &Name) {
  nir::Context &Ctx = M.getContext();
  Type *FnTy = Ctx.getFunctionTy(
      Ctx.getVoidTy(), {Ctx.getPtrTy(), Ctx.getInt64Ty(), Ctx.getInt64Ty()});
  std::string Unique = Name;
  unsigned Suffix = 0;
  while (M.getFunction(Unique))
    Unique = Name + "." + std::to_string(++Suffix);
  Function *F = M.createFunction(FnTy, Unique);
  F->getArg(0)->setName("env");
  F->getArg(1)->setName("taskID");
  F->getArg(2)->setName("numTasks");
  F->setMetadata("noelle.task", "true");
  return F;
}

void noelle::emitEnvStore(IRBuilder &B, Value *Env, unsigned Slot,
                          Value *V) {
  Value *Addr = B.createGEP(Env, B.getInt64(Slot), 8, "env.slot");
  B.createStore(V, Addr);
}

Value *noelle::emitEnvLoad(IRBuilder &B, Value *Env, unsigned Slot,
                           Type *Ty, const std::string &Name) {
  Value *Addr = B.createGEP(Env, B.getInt64(Slot), 8, Name + ".slot");
  // Function-typed live-ins travel as plain pointers.
  Type *LoadTy = Ty->isFunction() ? B.getContext().getPtrTy() : Ty;
  return B.createLoad(LoadTy, Addr, Name);
}

ClonedLoopTask noelle::cloneLoopIntoTask(nir::LoopStructure &LS,
                                         const EnvLayout &Layout,
                                         const std::string &Name) {
  Function *Orig = LS.getFunction();
  Module &M = *Orig->getParent();
  nir::Context &Ctx = M.getContext();

  ClonedLoopTask Out;
  Out.TaskFn = createTaskFunction(M, Name);
  Out.EnvArg = Out.TaskFn->getArg(0);
  Out.TaskIDArg = Out.TaskFn->getArg(1);
  Out.NumTasksArg = Out.TaskFn->getArg(2);

  // Provenance for noelle-check: which function and loop (identified by
  // the header's first instruction's deterministic ID, when the pipeline
  // captured one) this task was generated from.
  Out.TaskFn->setMetadata(verify::TaskSrcFnKey, Orig->getName());
  if (!LS.getHeader()->getInstList().empty()) {
    std::string OriginId =
        LS.getHeader()->getInstList().front()->getMetadata(nir::InstIDKey);
    if (!OriginId.empty())
      Out.TaskFn->setMetadata(verify::TaskOriginKey, OriginId);
  }

  BasicBlock *Entry = Out.TaskFn->createBlock("entry");
  IRBuilder B(Ctx, Entry);

  // Load live-ins.
  for (Value *V : Layout.Env->getLiveIns()) {
    Value *L = emitEnvLoad(B, Out.EnvArg, Layout.liveInSlot(V),
                           V->getType(),
                           V->hasName() ? V->getName() : "livein");
    Out.ValueMap[V] = L;
  }

  // Create cloned blocks.
  for (BasicBlock *BB : LS.getBlocks()) {
    BasicBlock *NewBB = Out.TaskFn->createBlock(BB->getName());
    Out.ValueMap[BB] = NewBB;
  }
  Out.ExitBlock = Out.TaskFn->createBlock("task.exit");

  // Clone instructions.
  for (BasicBlock *BB : LS.getBlocks()) {
    auto *NewBB = nir::cast<BasicBlock>(Out.ValueMap[BB]);
    for (const auto &I : BB->getInstList()) {
      nir::Instruction *C = I->clone();
      // clone() copies all metadata, so the clone inherits the original's
      // deterministic ID; rewrite it into provenance metadata instead
      // (duplicate IDs would corrupt every ID-keyed index).
      std::string Id = I->getMetadata(nir::InstIDKey);
      if (!Id.empty()) {
        C->removeMetadata(nir::InstIDKey);
        C->setMetadata(verify::CheckOrigKey, Id);
      }
      NewBB->push_back(std::unique_ptr<nir::Instruction>(C));
      Out.ValueMap[I.get()] = C;
    }
  }

  // Remap operands: cloned values, blocks, preheader -> entry, exit
  // targets -> task exit.
  BasicBlock *PH = LS.getPreheader();
  for (BasicBlock *BB : LS.getBlocks()) {
    auto *NewBB = nir::cast<BasicBlock>(Out.ValueMap[BB]);
    for (const auto &I : NewBB->getInstList()) {
      for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
        Value *V = I->getOperand(Op);
        auto It = Out.ValueMap.find(V);
        if (It != Out.ValueMap.end()) {
          I->setOperand(Op, It->second);
          continue;
        }
        if (auto *TargetBB = nir::dyn_cast<BasicBlock>(V)) {
          if (TargetBB == PH)
            I->setOperand(Op, Entry);
          else if (!LS.contains(TargetBB))
            I->setOperand(Op, Out.ExitBlock);
        }
      }
    }
  }

  // Entry falls into the cloned header; the exit returns.
  B.setInsertPoint(Entry);
  B.createBr(nir::cast<BasicBlock>(Out.ValueMap[LS.getHeader()]));
  B.setInsertPoint(Out.ExitBlock);
  B.createRetVoid();
  return Out;
}

BasicBlock *noelle::replaceLoopWithDispatch(nir::LoopStructure &LS,
                                            const EnvLayout &Layout,
                                            Function *TaskFn,
                                            unsigned NumTasks,
                                            unsigned ChunkGrain,
                                            Function *SpecSeqFn) {
  Function *F = LS.getFunction();
  Module &M = *F->getParent();
  nir::Context &Ctx = M.getContext();
  declareParallelRuntime(M);

  BasicBlock *PH = LS.getPreheader();
  assert(PH && "parallelized loop must have a preheader");
  assert(LS.getExitBlocks().size() == 1 &&
         "parallelized loop must have a single exit block");
  BasicBlock *Exit = LS.getExitBlocks()[0];

  auto DispatchOwned = std::make_unique<BasicBlock>(
      Ctx.getVoidTy(), LS.getHeader()->getName() + ".dispatch");
  BasicBlock *Dispatch = F->insertBlock(std::move(DispatchOwned), nullptr);

  IRBuilder B(Ctx, Dispatch);
  Value *Env = B.createAlloca(
      Ctx.getArrayTy(Ctx.getInt64Ty(), Layout.totalSlots()), "env");
  for (Value *V : Layout.Env->getLiveIns())
    emitEnvStore(B, Env, Layout.liveInSlot(V), V);

  if (SpecSeqFn) {
    Function *DispatchFn = M.getFunction("noelle_dispatch_spec");
    B.createCall(DispatchFn,
                 {TaskFn, SpecSeqFn, Env,
                  Ctx.getInt64(static_cast<int64_t>(NumTasks)),
                  Ctx.getInt64(static_cast<int64_t>(
                      ChunkGrain > 0 ? ChunkGrain : 1))});
  } else if (ChunkGrain > 0) {
    Function *DispatchFn = M.getFunction("noelle_dispatch_chunked");
    B.createCall(DispatchFn,
                 {TaskFn, Env, Ctx.getInt64(static_cast<int64_t>(NumTasks)),
                  Ctx.getInt64(static_cast<int64_t>(ChunkGrain))});
  } else {
    Function *DispatchFn = M.getFunction("noelle_dispatch");
    B.createCall(DispatchFn,
                 {TaskFn, Env, Ctx.getInt64(static_cast<int64_t>(NumTasks))});
  }
  B.createBr(Exit);

  // Rewire the preheader.
  auto *PHBr = nir::cast<BranchInst>(PH->getTerminator());
  for (unsigned S = 0; S < PHBr->getNumSuccessors(); ++S)
    if (PHBr->getSuccessor(S) == LS.getHeader())
      PHBr->setSuccessor(S, Dispatch);

  return Dispatch;
}

void noelle::finalizeLoopRemoval(nir::LoopStructure &LS,
                                 BasicBlock *Dispatch) {
  assert(LS.getExitBlocks().size() == 1);
  BasicBlock *Exit = LS.getExitBlocks()[0];
  Function *F = LS.getFunction();

  // Exit phis: the dispatch edge contributes the (already substituted)
  // value the loop used to produce; the old loop incomings die with the
  // loop blocks.
  for (const auto &I : Exit->getInstList()) {
    auto *Phi = nir::dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Value *FromLoop = nullptr;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
      if (LS.contains(Phi->getIncomingBlock(K)))
        FromLoop = Phi->getIncomingValue(K);
    if (FromLoop && Phi->getBlockIndex(Dispatch) < 0)
      Phi->addIncoming(FromLoop, Dispatch);
  }

  nir::removeUnreachableBlocks(*F);
}
