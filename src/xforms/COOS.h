//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler-based timing (Table 3: COOS, SC'20): replaces hardware timer
/// interrupts by injecting calls to an OS callback so that no more than
/// a quantum of work executes between yields. A DFE-powered analysis
/// bounds the instructions executable since the last tick along every
/// path; ticks are placed where the bound would overflow (loop headers,
/// long straight-line regions, call sites into unbounded code). Uses
/// DFE + PRO for the timing analysis, L + FR + LB for potentially
/// infinite loops, and CG for interprocedural accuracy (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_COOS_H
#define XFORMS_COOS_H

#include "noelle/Noelle.h"

namespace noelle {

struct COOSOptions {
  /// Maximum instructions allowed between two coos_tick() calls.
  uint64_t Quantum = 64;
};

struct COOSResult {
  unsigned TicksInjected = 0;
  unsigned LoopsInstrumented = 0;
  /// Verified bound: max instructions between ticks after injection
  /// (static, per straight-line region).
  uint64_t MaxGapAfter = 0;
};

class COOS {
public:
  COOS(Noelle &N, COOSOptions Opts = {}) : N(N), Opts(Opts) {}

  COOSResult run();

private:
  Noelle &N;
  COOSOptions Opts;
};

/// Installs coos_tick: counts invocations on the engine (inspectable by
/// tests/benches through the returned counter).
void registerCOOSRuntime(nir::ExecutionEngine &Engine,
                         uint64_t *TickCounter);

} // namespace noelle

#endif // XFORMS_COOS_H
