#include "xforms/PRVJeeves.h"

#include "ir/Instructions.h"
#include "ir/Verifier.h"

#include <set>

using namespace noelle;
using nir::CallInst;
using nir::CastInst;
using nir::Function;
using nir::Instruction;

namespace {

/// Classifies how a random value is consumed by walking its forward
/// data-flow slice (the DFE/PDG part of the tool): returns true if any
/// use converts it to floating point or it escapes through memory or a
/// call (in which case quality must be preserved).
bool needsHighQuality(const Instruction *RandValue) {
  std::vector<const Instruction *> Work = {RandValue};
  std::set<const Instruction *> Seen;
  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();
    if (!Seen.insert(I).second)
      continue;
    for (const auto &U : I->uses()) {
      const auto *UserInst =
          nir::dyn_cast<Instruction>(static_cast<nir::Value *>(U.TheUser));
      if (!UserInst)
        continue;
      if (const auto *C = nir::dyn_cast<CastInst>(UserInst))
        if (C->getOp() == CastInst::Op::SIToFP)
          return true; // Monte-Carlo-style consumption.
      if (nir::isa<nir::StoreInst>(UserInst))
        return true; // Escapes: be conservative about quality.
      if (const auto *UserCall = nir::dyn_cast<CallInst>(UserInst)) {
        // Feeding the seed back into a PRVG call is the normal usage
        // chain, not an escape.
        const Function *Callee = UserCall->getCalledFunction();
        if (!Callee || Callee->getName().rfind("prvg_", 0) != 0)
          return true;
        continue;
      }
      Work.push_back(UserInst);
    }
  }
  return false;
}

} // namespace

PRVJeevesResult PRVJeeves::run() {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::CG);
  N.noteRequest(Abstraction::DFE);
  N.noteRequest(Abstraction::PRO);
  N.noteRequest(Abstraction::L);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::SCD);
  N.noteRequest(Abstraction::LS);

  nir::Module &M = N.getModule();
  PRVJeevesResult R;

  Function *Generic = M.getFunction("prvg_next");
  Function *LCG = M.getFunction("prvg_lcg_next");
  Function *MT = M.getFunction("prvg_mt_next");
  if (!Generic)
    return R; // Program does not use the PRVG interface.

  ProfileData *Prof = N.getProfiles(false);

  // Hot-loop map for the PRO-based pruning.
  auto Loops = N.getLoopContents();

  std::set<Function *> Mutated;
  for (const auto &F : M.getFunctions()) {
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        auto *Call = nir::dyn_cast<CallInst>(I.get());
        if (!Call || Call->getCalledFunction() != Generic)
          continue;
        ++R.SitesAnalyzed;

        // PRO pruning: cold sites keep the generic generator.
        if (Prof && Opts.MinimumHotness > 0) {
          double Hotness = 0;
          for (LoopContent *LC : Loops)
            if (LC->getLoopStructure().contains(Call))
              Hotness = std::max(
                  Hotness, Prof->getLoopHotness(LC->getLoopStructure()));
          if (Hotness < Opts.MinimumHotness) {
            ++R.LeftUnmodified;
            continue;
          }
        }

        if (needsHighQuality(Call)) {
          if (MT) {
            Call->setOperand(0, MT); // operand 0 is the callee
            Call->setMetadata("prvj.selected", "mt");
            Mutated.insert(F.get());
            ++R.PinnedToMT;
          } else {
            ++R.LeftUnmodified;
          }
          continue;
        }
        if (LCG) {
          Call->setOperand(0, LCG);
          Call->setMetadata("prvj.selected", "lcg");
          Mutated.insert(F.get());
          ++R.DowngradedToLCG;
        } else {
          ++R.LeftUnmodified;
        }
      }
  }

  for (Function *F : Mutated)
    N.invalidate(*F);
  assert(nir::moduleVerifies(M) && "PRVJeeves broke the IR");
  return R;
}
