#include "xforms/DOALL.h"

#include "ir/Instructions.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/CheckMetadata.h"

#include <algorithm>
#include <cmath>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CmpInst;
using nir::Function;
using nir::IRBuilder;
using nir::Instruction;
using nir::PhiInst;

namespace {

/// True if \p S is an induction-variable SCC of \p IVs.
bool isIVSCC(const SCC *S, InductionVariableManager &IVs) {
  for (const auto &IV : IVs.getInductionVariables())
    if (IV->getSCC() == S || S->contains(IV->getPhi()))
      return true;
  return false;
}

} // namespace

Legality DOALL::applicable(LoopContent &LC) {
  Legality L;
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::aSCCDAG);
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::RD);
  nir::LoopStructure &LS = LC.getLoopStructure();

  if (!LS.getPreheader()) {
    L.Reason = "no preheader";
    return L;
  }
  if (LS.getExitBlocks().size() != 1) {
    L.Reason = "multiple exit blocks";
    return L;
  }
  if (LS.getExitingBlocks().size() != 1) {
    L.Reason = "multiple exiting blocks";
    return L;
  }
  // The unique exit block must be reached only from the loop, so it can
  // be retargeted to the dispatch code.
  for (BasicBlock *Pred : LS.getExitBlocks()[0]->predecessors())
    if (!LS.contains(Pred)) {
      L.Reason = "exit block has non-loop predecessors";
      return L;
    }

  auto &IVs = LC.getIVManager();
  InductionVariable *GIV = IVs.getGoverningIV();
  if (!GIV) {
    L.Reason = "no governing induction variable";
    return L;
  }
  if (!GIV->hasConstantStep() || GIV->getConstantStep() == 0) {
    L.Reason = "governing IV step is not a nonzero constant";
    return L;
  }
  // The governing branch must be the loop's only exit.
  if (GIV->getGoverningBranch()->getParent() != LS.getExitingBlocks()[0]) {
    L.Reason = "exit is not controlled by the governing IV";
    return L;
  }
  switch (GIV->getGoverningCmp()->getPred()) {
  case CmpInst::Pred::SLT:
  case CmpInst::Pred::SLE:
  case CmpInst::Pred::SGT:
  case CmpInst::Pred::SGE:
    break;
  case CmpInst::Pred::NE:
    // Counted "while (iv != bound)" form: true must continue the loop.
    if (!LS.contains(GIV->getGoverningBranch()->getSuccessor(0))) {
      L.Reason = "inverted != exit test";
      return L;
    }
    break;
  case CmpInst::Pred::EQ:
    // Counted "if (iv == bound) exit" form: true must leave the loop.
    if (LS.contains(GIV->getGoverningBranch()->getSuccessor(0))) {
      L.Reason = "inverted == exit test";
      return L;
    }
    break;
  default:
    L.Reason = "unsupported governing comparison";
    return L;
  }
  // All secondary IVs must also have constant steps (they get re-based
  // per task).
  for (const auto &IV : IVs.getInductionVariables())
    if (!IV->hasConstantStep()) {
      L.Reason = "secondary IV with non-constant step";
      return L;
    }

  // Every loop-carried dependence must live inside an IV or reduction
  // cycle.
  auto &Dag = LC.getSCCDAG();
  auto &RM = LC.getReductionManager();
  for (auto *E : LC.getLoopDG().getEdges()) {
    if (!E->IsLoopCarried)
      continue;
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !LS.contains(From) || !LS.contains(To))
      continue;
    SCC *SF = Dag.sccOf(From);
    SCC *ST = Dag.sccOf(To);
    if (SF != ST) {
      if (mayIgnoreCarriedDep(LC, *E, L))
        continue;
      L.Reason = "loop-carried dependence crosses SCCs";
      return L;
    }
    if (isIVSCC(SF, IVs))
      continue;
    if (RM.getReductionFor(SF))
      continue;
    if (mayIgnoreCarriedDep(LC, *E, L))
      continue;
    L.Reason = "sequential SCC (loop-carried dependence is neither IV nor "
               "reduction)";
    return L;
  }

  // Live-outs must be reduction accumulators (phi or update).
  auto &Env = LC.getEnvironment();
  for (Instruction *Out : Env.getLiveOuts()) {
    bool OK = false;
    for (const auto &R : RM.getReductions())
      if (Out == R.Phi || Out == R.Update)
        OK = true;
    if (!OK) {
      L.Reason = "live-out value is not a reduction accumulator";
      return L;
    }
  }

  for (BasicBlock *BB : LS.getBlocks())
    for (const auto &I : BB->getInstList()) {
      if (!nir::isa<PhiInst>(I.get()) && !I->isTerminator())
        ++L.BodyWeight;
      if (nir::isa<nir::LoadInst>(I.get()) ||
          nir::isa<nir::StoreInst>(I.get()))
        ++L.MemOpWeight;
    }
  L.Ok = true;
  return L;
}

TechniqueCost DOALL::estimate(const Legality &L, const LoopPlan &P,
                              const CostQuery &Q) const {
  // Iterations distribute cyclically: each of the W tasks runs ~Trip/W
  // iterations concurrently, and the dispatch pays one spawn per task.
  double W = std::max(1u, P.Workers);
  double Body =
      static_cast<double>(std::max<uint64_t>(1, L.BodyWeight)) *
      Q.BodyScale;
  TechniqueCost C;
  C.SequentialTime = Q.Invocations * Q.TripCount * Body;
  C.ParallelTime =
      Q.Invocations * (Q.TripCount * Body / W + W * Q.SpawnCostPerTask);
  return C;
}

bool DOALL::apply(LoopContent &LC, const LoopPlan &P, Decision &D) {
  D.Kind = getKind();
  Legality L = applicable(LC);
  if (!L) {
    D.Reason = L.Reason;
    return false;
  }
  D.SpecPremises = L.SpecPremises;
  unsigned Workers = std::max(1u, P.Workers);
  unsigned Chunk = std::max(1u, P.ChunkGrain);

  N.noteRequest(Abstraction::ENV);
  N.noteRequest(Abstraction::T);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::IVS);
  N.noteRequest(Abstraction::LS);
  nir::LoopStructure &LS = LC.getLoopStructure();
  Function *F = LS.getFunction();
  nir::Module &M = *F->getParent();
  nir::Context &Ctx = M.getContext();
  auto &IVs = LC.getIVManager();
  auto &RM = LC.getReductionManager();
  auto &Env = LC.getEnvironment();

  EnvLayout Layout;
  Layout.Env = &Env;
  Layout.Lanes = Workers;

  // --- Task side -------------------------------------------------------
  ClonedLoopTask Task = cloneLoopIntoTask(
      LS, Layout, F->getName() + ".doall" + std::to_string(LS.getID()));
  Task.TaskFn->setMetadata(verify::TaskKindKey, taskKind());
  Task.TaskFn->setMetadata(verify::TaskWorkersKey, std::to_string(Workers));

  // Re-base every IV for cyclic distribution: start' = start +
  // taskID*step (iteration offset), step' = step*numTasks*chunk.
  // (ChunkSize > 1 uses a blocked-cyclic mapping: each grab advances by
  // chunk iterations; handled by scaling both offset and stride.)
  IRBuilder TB(Ctx);
  auto *TaskEntry = &Task.TaskFn->getEntryBlock();
  TB.setInsertPoint(TaskEntry->getTerminator());
  for (const auto &IV : IVs.getInductionVariables()) {
    auto *ClonedPhi = nir::cast<PhiInst>(Task.ValueMap[IV->getPhi()]);
    auto *ClonedUpd =
        nir::cast<BinaryInst>(Task.ValueMap[IV->getStepInstruction()]);
    int64_t Step = IV->getConstantStep();

    // start' = start + taskID * step.
    Value *StartMapped = ClonedPhi->getIncomingValueForBlock(TaskEntry);
    Value *Offset =
        TB.createMul(Task.TaskIDArg, TB.getInt64(Step), "iv.offset");
    Value *NewStart = TB.createAdd(StartMapped, Offset, "iv.start");
    int Idx = ClonedPhi->getBlockIndex(TaskEntry);
    assert(Idx >= 0);
    ClonedPhi->setIncomingValue(static_cast<unsigned>(Idx), NewStart);

    // step' = step * numTasks * chunk: rewrite the update instruction's
    // amount. The update is add/sub(phi, amount) (normalized by the IV
    // manager).
    int64_t RawAmount =
        ClonedUpd->getOp() == BinaryInst::Op::Sub ? -Step : Step;
    Value *NewAmount =
        Ctx.getInt64(RawAmount * static_cast<int64_t>(Workers));
    if (ClonedUpd->getLHS() == ClonedPhi)
      ClonedUpd->setOperand(1, NewAmount);
    else
      ClonedUpd->setOperand(0, NewAmount);
  }

  // With a stride > |step| the EQ/NE exit tests can overshoot; replace
  // them with ordered comparisons.
  {
    InductionVariable *GIV = IVs.getGoverningIV();
    auto *ClonedCmp =
        nir::cast<CmpInst>(Task.ValueMap[GIV->getGoverningCmp()]);
    bool StepPositive = GIV->getConstantStep() > 0;
    // Which side holds the IV expression?
    bool IVOnLHS = GIV->getGoverningCmp()->getLHS() == GIV->getPhi() ||
                   GIV->getGoverningCmp()->getLHS() ==
                       GIV->getStepInstruction();
    if (ClonedCmp->getPred() == CmpInst::Pred::NE ||
        ClonedCmp->getPred() == CmpInst::Pred::EQ) {
      // "iv != bound" continues while iv < bound (positive step).
      CmpInst::Pred Continue =
          StepPositive ? CmpInst::Pred::SLT : CmpInst::Pred::SGT;
      if (!IVOnLHS)
        Continue = CmpInst::getSwappedPred(Continue);
      if (ClonedCmp->getPred() == CmpInst::Pred::NE) {
        ClonedCmp->setPred(Continue);
      } else {
        // "iv == bound" exits the loop; its negation continues.
        ClonedCmp->setPred(CmpInst::getInversePred(Continue));
      }
    }
  }

  // Privatize reductions: identity start, store the partial into this
  // task's live-out lane at exit.
  IRBuilder ExitB(Ctx);
  ExitB.setInsertPoint(Task.ExitBlock->getTerminator());
  for (Instruction *Out : Env.getLiveOuts()) {
    const ReductionVariable *R = nullptr;
    for (const auto &Cand : RM.getReductions())
      if (Out == Cand.Phi || Out == Cand.Update)
        R = &Cand;
    assert(R && "checked in applicable()");

    auto *ClonedPhi = nir::cast<PhiInst>(Task.ValueMap[R->Phi]);
    int Idx = ClonedPhi->getBlockIndex(TaskEntry);
    assert(Idx >= 0);
    ClonedPhi->setIncomingValue(static_cast<unsigned>(Idx),
                                R->getIdentity(Ctx));

    Value *Partial = Task.ValueMap[Out];
    Value *Slot = ExitB.createGEP(
        Task.EnvArg,
        ExitB.createAdd(
            ExitB.getInt64(Layout.liveOutSlot(Out, 0)), Task.TaskIDArg,
            "lane"),
        8, "out.slot");
    ExitB.createStore(Partial, Slot);
  }

  // Speculation (SpecDOALL): instrument the task's memory accesses and
  // build the sequential fallback before the loop body disappears.
  nir::Function *SpecSeqFn = prepareSpeculation(LC, Layout, Task);
  if (SpecSeqFn && !L.SpecPremises.empty()) {
    std::string Premises;
    for (const auto &[A, B] : L.SpecPremises) {
      if (!Premises.empty())
        Premises += ',';
      Premises += std::to_string(A) + ':' + std::to_string(B);
    }
    Task.TaskFn->setMetadata(verify::TaskSpecPremisesKey, Premises);
  }

  // --- Caller side -----------------------------------------------------
  // DOALL tasks never block on each other, so dispatch them through the
  // chunked (dynamically scheduled) runtime entry point.
  BasicBlock *Dispatch = replaceLoopWithDispatch(LS, Layout, Task.TaskFn,
                                                 Workers, Chunk, SpecSeqFn);
  Value *EnvAlloca = Dispatch->front(); // first instruction: the env array
  IRBuilder CB(Ctx);
  CB.setInsertPoint(Dispatch->getTerminator());

  for (Instruction *Out : Env.getLiveOuts()) {
    const ReductionVariable *R = nullptr;
    for (const auto &Cand : RM.getReductions())
      if (Out == Cand.Phi || Out == Cand.Update)
        R = &Cand;
    Value *Acc = nullptr;
    for (unsigned Lane = 0; Lane < Workers; ++Lane) {
      Value *Partial =
          emitEnvLoad(CB, EnvAlloca, Layout.liveOutSlot(Out, Lane),
                      Out->getType(), "partial");
      Acc = Acc ? ReductionManager::emitCombine(CB, R->Op, Acc, Partial)
                : Partial;
    }
    // Fold in the value the accumulator had before the loop.
    Value *Final =
        ReductionManager::emitCombine(CB, R->Op, R->InitialValue, Acc);
    Out->replaceAllUsesWith(Final);
  }

  // finalizeLoopRemoval frees the loop's blocks, and LS reads its header
  // to answer getFunction(): resolve the host function first.
  nir::Function *HostF = LS.getFunction();
  finalizeLoopRemoval(LS, Dispatch);
  // Only the host function changed (the task bodies are new functions
  // with no cached analyses): keep every other function's bundles.
  N.invalidate(*HostF);
  bumpPlanEpoch(M);

  assert(nir::moduleVerifies(M) && "DOALL produced invalid IR");
  D.Parallelized = true;
  D.Workers = Workers;
  return true;
}
