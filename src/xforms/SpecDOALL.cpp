#include "xforms/SpecDOALL.h"

#include "ir/IDs.h"
#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "runtime/ParallelRuntime.h"
#include "verify/CheckMetadata.h"

#include <cstdlib>

using namespace noelle;
using nir::BasicBlock;
using nir::CallInst;
using nir::CastInst;
using nir::Function;
using nir::Instruction;
using nir::IRBuilder;
using nir::LoadInst;
using nir::StoreInst;
using nir::Type;

namespace {

/// Deterministic ID of \p I (ir/IDs.h metadata), or 0 when absent.
uint64_t idOf(const Instruction *I) {
  std::string S = I->getMetadata(nir::InstIDKey);
  if (S.empty())
    return 0;
  return std::strtoull(S.c_str(), nullptr, 10);
}

/// The profile's loop key: the ID of the header's first instruction
/// (the same convention the profiler and task provenance use).
uint64_t headerIdOf(nir::LoopStructure &LS) {
  if (LS.getHeader()->getInstList().empty())
    return 0;
  return idOf(LS.getHeader()->getInstList().front().get());
}

} // namespace

bool SpecDOALL::loadProfile() {
  if (!ProfileLoaded) {
    ProfileLoaded = true;
    std::string Err;
    // Lenient hash: by the time a speculative entry of a plan applies,
    // earlier entries may have rewritten the module, so its content hash
    // no longer matches the profile's binding. Staleness is pinned one
    // level up — Planner::apply verified the plan hash against the
    // pristine module before mutating anything.
    ProfileValid = MemDepProfile::fromModule(N.getModule(), Profile, Err,
                                             /*RequireHashMatch=*/false);
  }
  return ProfileValid;
}

Legality SpecDOALL::applicable(LoopContent &LC) {
  Legality L;
  nir::LoopStructure &LS = LC.getLoopStructure();

  if (!loadProfile()) {
    L.Reason = "no memory-dependence profile embedded in the module";
    return L;
  }
  uint64_t H = headerIdOf(LS);
  if (!H) {
    L.Reason = "loop carries no deterministic IDs (run captureForCheck "
               "or pdgEmbed first)";
    return L;
  }
  if (!Profile.coversLoop(H)) {
    L.Reason = "profile never observed this loop (no absence evidence)";
    return L;
  }

  // Structural limits of the write-log protocol: every memory effect of
  // a speculative task must go through the journal, and rollback must
  // be able to undo everything the tasks did.
  for (BasicBlock *BB : LS.getBlocks())
    for (const auto &I : BB->getInstList()) {
      if (nir::isa<nir::AllocaInst>(I.get())) {
        L.Reason = "loop body allocates frame memory (journal would "
                   "outlive it)";
        return L;
      }
      if (nir::isa<nir::VLoadInst>(I.get()) ||
          nir::isa<nir::VStoreInst>(I.get())) {
        L.Reason = "vector memory access cannot be journaled";
        return L;
      }
      if (auto *C = nir::dyn_cast<CallInst>(I.get())) {
        Function *Callee = C->getCalledFunction();
        if (!Callee || !Callee->isDeclaration() ||
            !verify::isSpecPureExternal(Callee->getName())) {
          L.Reason = "loop body calls a function with memory or "
                     "observable effects";
          return L;
        }
      }
    }

  if (!LC.getEnvironment().getLiveOuts().empty()) {
    L.Reason = "speculative DOALL requires a loop without live-out "
               "values";
    return L;
  }

  // Run the static discharge with the speculation hook armed: carried
  // memory dependences the profile never saw manifest are admitted as
  // premises instead of rejections.
  L = DOALL::applicable(LC);
  if (L.Ok && L.SpecPremises.empty()) {
    L.Ok = false;
    L.Reason = "no speculative premises (static DOALL already applies)";
  }
  return L;
}

bool SpecDOALL::mayIgnoreCarriedDep(LoopContent &LC, const PDG::EdgeT &E,
                                    Legality &L) {
  // Only data dependences through memory can be covered by the write
  // log; control and register dependences stay hard rejections.
  if (E.IsControl || !E.IsMemory)
    return false;
  auto *From = nir::dyn_cast<Instruction>(E.From);
  auto *To = nir::dyn_cast<Instruction>(E.To);
  if (!From || !To)
    return false;
  uint64_t H = headerIdOf(LC.getLoopStructure());
  uint64_t A = idOf(From);
  uint64_t B = idOf(To);
  if (!H || !A || !B)
    return false;
  if (!Profile.coversLoop(H) || Profile.manifested(H, A, B))
    return false;
  L.SpecPremises.push_back({A, B});
  return true;
}

TechniqueCost SpecDOALL::estimate(const Legality &L, const LoopPlan &P,
                                  const CostQuery &Q) const {
  double W = std::max(1u, P.Workers);
  // Priced in retired-instruction units (CostQuery::RetiredScale):
  // speculation lives in the marginal zone where spawn cost rivals body
  // work, so the body must be in the same currency as the measured
  // overheads.
  double Body = static_cast<double>(std::max<uint64_t>(1, L.BodyWeight)) *
                std::max(Q.BodyScale, Q.RetiredScale);
  double MemOps = static_cast<double>(L.MemOpWeight) * Q.BodyScale;
  // The instrumented body pays the accessor call + cast + journal
  // bookkeeping per memory access; validation/commit at the join is a
  // small per-worker pairwise interval check.
  double SpecBody = Body + MemOps * Q.SpecAccessCost;
  double ValidateCommit = W * 150.0;

  TechniqueCost C;
  C.SequentialTime = Q.Invocations * Q.TripCount * Body;
  double Parallel =
      Q.TripCount * SpecBody / W + W * Q.SpawnCostPerTask + ValidateCommit;
  // Expected rollback charge: a misspeculated dispatch throws away the
  // parallel attempt and re-runs the whole invocation sequentially.
  double Rollback = Q.MisspecProbability * Q.TripCount * Body;
  C.ParallelTime = Q.Invocations * (Parallel + Rollback);
  return C;
}

nir::Function *SpecDOALL::prepareSpeculation(LoopContent &LC,
                                             const EnvLayout &Layout,
                                             ClonedLoopTask &Task) {
  nir::LoopStructure &LS = LC.getLoopStructure();
  nir::Module &M = *LS.getFunction()->getParent();
  declareParallelRuntime(M);

  // Sequential fallback: a second, untouched clone of the original
  // loop. It ignores its taskID/numTasks arguments, so seq(env, 0, 1)
  // re-executes the whole region in original iteration order with raw
  // (non-journaled) memory accesses.
  ClonedLoopTask Seq = cloneLoopIntoTask(
      LS, Layout, Task.TaskFn->getName() + ".seq");
  Seq.TaskFn->setMetadata(verify::TaskKindKey, "doall-spec-seq");

  instrumentSpeculativeTask(*Task.TaskFn);
  Task.TaskFn->setMetadata(verify::TaskSpecSeqKey, Seq.TaskFn->getName());
  return Seq.TaskFn;
}

void noelle::instrumentSpeculativeTask(nir::Function &TaskFn) {
  nir::Module &M = *TaskFn.getParent();
  nir::Context &Ctx = M.getContext();
  declareParallelRuntime(M);
  IRBuilder B(Ctx);

  // Collect first: the rewrite below erases from the lists being
  // walked.
  std::vector<Instruction *> Accesses;
  for (const auto &BB : TaskFn.getBlocks())
    for (const auto &I : BB->getInstList())
      if (nir::isa<LoadInst>(I.get()) || nir::isa<StoreInst>(I.get()))
        Accesses.push_back(I.get());

  auto CarryProvenance = [](Instruction *To, Instruction *From) {
    std::string Orig = From->getMetadata(verify::CheckOrigKey);
    if (!Orig.empty())
      To->setMetadata(verify::CheckOrigKey, Orig);
  };

  for (Instruction *I : Accesses) {
    B.setInsertPoint(I);
    if (auto *LI = nir::dyn_cast<LoadInst>(I)) {
      Type *Ty = LI->getType();
      Value *Ptr = LI->getPointerOperand();
      CallInst *C = nullptr;
      Value *Repl = nullptr;
      switch (Ty->getKind()) {
      case Type::Kind::Int64:
        Repl = C = B.createCall(M.getFunction("noelle_spec_load_i64"),
                                {Ptr}, "spec.ld");
        break;
      case Type::Kind::Double:
        Repl = C = B.createCall(M.getFunction("noelle_spec_load_f64"),
                                {Ptr}, "spec.ld");
        break;
      case Type::Kind::Ptr:
        C = B.createCall(M.getFunction("noelle_spec_load_i64"), {Ptr},
                         "spec.ld");
        Repl = B.createCast(CastInst::Op::IntToPtr, C, Ty, "spec.ld.p");
        break;
      case Type::Kind::Int32:
        // The i32 accessor sign-extends (Ld4 semantics); narrow back to
        // the load's static type.
        C = B.createCall(M.getFunction("noelle_spec_load_i32"), {Ptr},
                         "spec.ld");
        Repl = B.createCast(CastInst::Op::Trunc, C, Ty, "spec.ld.n");
        break;
      default:
        // Int8/Int1: one zero-extended byte (Ld1 semantics).
        C = B.createCall(M.getFunction("noelle_spec_load_i8"), {Ptr},
                         "spec.ld");
        Repl = B.createCast(CastInst::Op::Trunc, C, Ty, "spec.ld.n");
        break;
      }
      CarryProvenance(C, LI);
      if (LI->hasName())
        Repl->setName(LI->getName());
      LI->replaceAllUsesWith(Repl);
      LI->eraseFromParent();
    } else {
      auto *SI = nir::cast<StoreInst>(I);
      Value *V = SI->getValueOperand();
      Value *Ptr = SI->getPointerOperand();
      Type *Ty = V->getType();
      CallInst *C = nullptr;
      switch (Ty->getKind()) {
      case Type::Kind::Int64:
        C = B.createCall(M.getFunction("noelle_spec_store_i64"),
                         {Ptr, V});
        break;
      case Type::Kind::Double:
        C = B.createCall(M.getFunction("noelle_spec_store_f64"),
                         {Ptr, V});
        break;
      case Type::Kind::Ptr: {
        Value *E = B.createCast(CastInst::Op::PtrToInt, V,
                                Ctx.getInt64Ty(), "spec.st.i");
        C = B.createCall(M.getFunction("noelle_spec_store_i64"),
                         {Ptr, E});
        break;
      }
      case Type::Kind::Int32: {
        Value *E = B.createCast(CastInst::Op::SExt, V, Ctx.getInt64Ty(),
                                "spec.st.w");
        C = B.createCall(M.getFunction("noelle_spec_store_i32"),
                         {Ptr, E});
        break;
      }
      default: {
        // Int8/Int1.
        Value *E = B.createCast(CastInst::Op::ZExt, V, Ctx.getInt64Ty(),
                                "spec.st.w");
        C = B.createCall(M.getFunction("noelle_spec_store_i8"),
                         {Ptr, E});
        break;
      }
      }
      CarryProvenance(C, SI);
      SI->eraseFromParent();
    }
  }
}
