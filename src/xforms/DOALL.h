//===----------------------------------------------------------------------===//
///
/// \file
/// The DOALL custom tool: parallelizes loops with no loop-carried data
/// dependences (outside IV and reduction cycles) by distributing
/// iterations cyclically across cores (Section 3). Built from NOELLE's
/// PDG, aSCCDAG, IV, IVS, RD, INV, ENV, T, LB, PRO, and AR abstractions.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_DOALL_H
#define XFORMS_DOALL_H

#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct DOALLOptions {
  unsigned NumCores = 4;
  double MinimumHotness = 0.0; ///< skip loops cooler than this (needs PRO)
  /// Chunk grain for the dynamically scheduled dispatch: pool runners
  /// grab this many task indices per shared-counter bump. DOALL tasks
  /// are independent, so dynamic scheduling is always safe for them.
  unsigned ChunkGrain = 1;
};

/// Why a loop was accepted or rejected; used by reports and tests.
/// Loops are identified by name because parallelization invalidates
/// LoopStructure objects.
struct DOALLDecision {
  std::string FunctionName;
  unsigned LoopID = 0;
  bool Parallelized = false;
  std::string Reason;
};

class DOALL {
public:
  DOALL(Noelle &N, DOALLOptions Opts = {}) : N(N), Opts(Opts) {}

  /// True if \p LC satisfies DOALL's conditions; fills \p Reason
  /// otherwise.
  bool canParallelize(LoopContent &LC, std::string &Reason);

  /// Transforms one loop. Returns false (leaving the IR untouched) when
  /// the loop cannot be parallelized.
  bool parallelizeLoop(LoopContent &LC);

  /// Applies DOALL to every eligible loop (outermost first; loops nested
  /// in an already parallelized loop are skipped). Returns decisions.
  std::vector<DOALLDecision> run();

private:
  Noelle &N;
  DOALLOptions Opts;
};

} // namespace noelle

#endif // XFORMS_DOALL_H
