//===----------------------------------------------------------------------===//
///
/// \file
/// The DOALL custom tool: parallelizes loops with no loop-carried data
/// dependences (outside IV and reduction cycles) by distributing
/// iterations cyclically across cores (Section 3). Built from NOELLE's
/// PDG, aSCCDAG, IV, IVS, RD, INV, ENV, T, LB, PRO, and AR abstractions.
/// Implements the unified ParallelizationTechnique interface.
///
//===----------------------------------------------------------------------===//

#ifndef XFORMS_DOALL_H
#define XFORMS_DOALL_H

#include "xforms/ParallelizationTechnique.h"
#include "xforms/ParallelizationUtils.h"

namespace noelle {

struct DOALLOptions {
  unsigned NumCores = 4;
  double MinimumHotness = 0.0; ///< skip loops cooler than this (needs PRO)
  /// Chunk grain for the dynamically scheduled dispatch: pool runners
  /// grab this many task indices per shared-counter bump. DOALL tasks
  /// are independent, so dynamic scheduling is always safe for them.
  unsigned ChunkGrain = 1;
};

class DOALL : public ParallelizationTechnique {
public:
  DOALL(Noelle &N, DOALLOptions Opts = {})
      : ParallelizationTechnique(N), Opts(Opts) {}

  TechniqueKind getKind() const override { return TechniqueKind::DOALL; }

  Legality applicable(LoopContent &LC) override;

  TechniqueCost estimate(const Legality &L, const LoopPlan &P,
                         const CostQuery &Q) const override;

  bool apply(LoopContent &LC, const LoopPlan &P, Decision &D) override;

  LoopPlan defaultPlan() const override {
    return {TechniqueKind::DOALL, Opts.NumCores,
            std::max(1u, Opts.ChunkGrain)};
  }
  double minimumHotness() const override { return Opts.MinimumHotness; }

protected:
  /// Task-kind metadata stamped on generated task functions; the
  /// speculative subclass overrides it with "doall-spec".
  virtual const char *taskKind() const { return "doall"; }

  /// Speculation hook consulted for every loop-carried dependence the
  /// static discharge cannot clear: may \p E be admitted unprotected?
  /// The default (plain DOALL) never speculates; SpecDOALL answers from
  /// the memory-dependence profile and records the premise in
  /// \p L.SpecPremises.
  virtual bool mayIgnoreCarriedDep(LoopContent &LC, const PDG::EdgeT &E,
                                   Legality &L) {
    (void)LC;
    (void)E;
    (void)L;
    return false;
  }

  /// Called after the task clone is fully specialized (IVs re-based,
  /// reductions privatized) and before the loop is replaced with the
  /// dispatch. A speculative subclass instruments \p Task's memory
  /// accesses and returns the sequential fallback function, routing the
  /// dispatch through noelle_dispatch_spec; returning null keeps the
  /// plain chunked dispatch.
  virtual nir::Function *prepareSpeculation(LoopContent &LC,
                                            const EnvLayout &Layout,
                                            ClonedLoopTask &Task) {
    (void)LC;
    (void)Layout;
    (void)Task;
    return nullptr;
  }

  DOALLOptions Opts;
};

} // namespace noelle

#endif // XFORMS_DOALL_H
