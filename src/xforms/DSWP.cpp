#include "xforms/DSWP.h"

#include "analysis/Dominators.h"
#include "ir/IDs.h"
#include "ir/Instructions.h"
#include "ir/Verifier.h"
#include "runtime/ParallelRuntime.h"
#include "verify/CheckMetadata.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CastInst;
using nir::CmpInst;
using nir::DominatorTree;
using nir::Function;
using nir::IRBuilder;
using nir::Instruction;
using nir::PhiInst;

namespace {

bool isIVSCC(const SCC *S, InductionVariableManager &IVs) {
  for (const auto &IV : IVs.getInductionVariables())
    if (IV->getSCC() == S || S->contains(IV->getPhi()))
      return true;
  return false;
}

uint64_t positionOf(const Instruction *I) {
  uint64_t Pos = 0;
  for (const auto &BB : I->getFunction()->getBlocks())
    for (const auto &Inst : BB->getInstList()) {
      if (Inst.get() == I)
        return Pos;
      ++Pos;
    }
  return Pos;
}

/// Bitcasts \p V to i64 for queue transport (doubles/pointers included).
Value *toQueueWord(IRBuilder &B, Value *V) {
  nir::Type *Ty = V->getType();
  nir::Context &Ctx = B.getContext();
  if (Ty == Ctx.getInt64Ty())
    return V;
  if (Ty->isDouble())
    return B.createCast(CastInst::Op::Bitcast, V, Ctx.getInt64Ty());
  if (Ty->isPointer() || Ty->isFunction())
    return B.createCast(CastInst::Op::PtrToInt, V, Ctx.getInt64Ty());
  return B.createCast(CastInst::Op::ZExt, V, Ctx.getInt64Ty());
}

/// Converts a popped i64 back to \p Ty.
Value *fromQueueWord(IRBuilder &B, Value *Word, nir::Type *Ty) {
  nir::Context &Ctx = B.getContext();
  if (Ty == Ctx.getInt64Ty())
    return Word;
  if (Ty->isDouble())
    return B.createCast(CastInst::Op::Bitcast, Word, Ty);
  if (Ty->isPointer() || Ty->isFunction())
    return B.createCast(CastInst::Op::IntToPtr, Word, Ctx.getPtrTy());
  return B.createCast(CastInst::Op::Trunc, Word, Ty);
}

} // namespace

bool DSWP::analyze(LoopContent &LC, unsigned Workers, PipelineAnalysis &A,
                   std::string &Reason) {
  N.noteRequest(Abstraction::PDG);
  N.noteRequest(Abstraction::aSCCDAG);
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::RD);
  N.noteRequest(Abstraction::PRO);
  N.noteRequest(Abstraction::SCD);
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::AR);
  nir::LoopStructure &LS = LC.getLoopStructure();
  auto Fail = [&](const std::string &R) {
    Reason = R;
    return false;
  };

  if (!LS.getPreheader())
    return Fail("no preheader");
  if (LS.getExitBlocks().size() != 1 || LS.getExitingBlocks().size() != 1)
    return Fail("multiple exits");
  for (BasicBlock *Pred : LS.getExitBlocks()[0]->predecessors())
    if (!LS.contains(Pred))
      return Fail("exit block has non-loop predecessors");
  if (LS.getExitingBlocks()[0] != LS.getHeader())
    return Fail("loop is not in while form");

  // Straight-line body: every block must execute exactly once per
  // iteration (control-equivalent to the latch).
  DominatorTree &DT = N.getDominators(*LS.getFunction());
  for (BasicBlock *BB : LS.getBlocks())
    for (BasicBlock *Latch : LS.getLatches())
      if (BB != LS.getHeader() && !DT.dominates(BB, Latch))
        return Fail("loop body has internal control flow");

  auto &IVs = LC.getIVManager();
  InductionVariable *GIV = IVs.getGoverningIV();
  if (!GIV || !GIV->hasConstantStep() || GIV->getConstantStep() == 0)
    return Fail("no governing IV with constant step");
  if (GIV->getGoverningBranch()->getParent() != LS.getHeader())
    return Fail("exit not governed from the header");
  for (const auto &IV : IVs.getInductionVariables())
    if (!IV->hasConstantStep())
      return Fail("secondary IV with non-constant step");

  // Partition plan: replicated skeleton = IV SCCs + exit machinery +
  // terminators; the rest are pipeline candidates. SCCs connected by
  // memory dependences or loop-carried edges must share a stage.
  auto &Dag = LC.getSCCDAG();
  auto &RM = LC.getReductionManager();
  std::vector<SCC *> Topo = Dag.getTopologicalOrder();

  std::set<SCC *> Replicated;
  for (const auto &S : Dag.getSCCs()) {
    if (isIVSCC(S.get(), IVs)) {
      Replicated.insert(S.get());
      continue;
    }
    bool OnlyControlMachinery = true;
    for (auto *V : S->getNodes()) {
      auto *I = nir::cast<Instruction>(V);
      if (!I->isTerminator() && !nir::isa<CmpInst>(I))
        OnlyControlMachinery = false;
    }
    if (OnlyControlMachinery)
      Replicated.insert(S.get());
  }

  // Union-find over pipeline candidates.
  std::map<SCC *, SCC *> Parent;
  std::function<SCC *(SCC *)> Find = [&](SCC *S) -> SCC * {
    auto It = Parent.find(S);
    if (It == Parent.end() || It->second == S)
      return S;
    SCC *Root = Find(It->second);
    Parent[S] = Root;
    return Root;
  };
  auto Union = [&](SCC *A, SCC *B) { Parent[Find(A)] = Find(B); };

  for (auto *E : LC.getLoopDG().getEdges()) {
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !LS.contains(From) || !LS.contains(To))
      continue;
    SCC *SF = Dag.sccOf(From);
    SCC *ST = Dag.sccOf(To);
    if (SF == ST)
      continue;
    if (Replicated.count(SF) || Replicated.count(ST)) {
      // Loop-carried edges into/out of the replicated skeleton are fine
      // (the skeleton is recomputed everywhere); others note below.
      continue;
    }
    if (E->IsMemory || E->IsLoopCarried)
      Union(SF, ST);
  }
  // A loop-carried register edge between pipeline candidates merged them
  // above; cycles between merged groups cannot exist because Tarjan
  // already grouped all mutual dependences.

  // Build ordered groups (by first SCC appearance in topological order).
  std::vector<SCC *> GroupOrder;
  std::map<SCC *, std::vector<SCC *>> GroupMembers;
  for (SCC *S : Topo) {
    if (Replicated.count(S))
      continue;
    SCC *Root = Find(S);
    if (!GroupMembers.count(Root))
      GroupOrder.push_back(Root);
    GroupMembers[Root].push_back(S);
  }

  // Check the group graph is acyclic under the topological group order
  // (an edge from a later group to an earlier one would need a backward
  // queue; reject those loops).
  std::map<SCC *, unsigned> GroupIdx;
  for (unsigned I = 0; I < GroupOrder.size(); ++I)
    for (SCC *S : GroupMembers[GroupOrder[I]])
      GroupIdx[S] = I;
  for (auto *E : LC.getLoopDG().getEdges()) {
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !LS.contains(From) || !LS.contains(To))
      continue;
    SCC *SF = Dag.sccOf(From);
    SCC *ST = Dag.sccOf(To);
    if (!GroupIdx.count(SF) || !GroupIdx.count(ST))
      continue;
    if (GroupIdx[SF] > GroupIdx[ST])
      return Fail("pipeline would need a backward queue");
  }

  if (GroupOrder.size() < 2)
    return Fail("fewer than two pipeline stages");

  // Balance contiguous groups into stages by instruction weight (greedy
  // chunking against the ideal share). Cap the stage count so each
  // stage keeps enough per-iteration work to amortize its queues.
  std::vector<uint64_t> GroupWeight(GroupOrder.size(), 0);
  uint64_t TotalWeight = 0;
  for (unsigned I = 0; I < GroupOrder.size(); ++I) {
    for (SCC *S : GroupMembers[GroupOrder[I]])
      GroupWeight[I] += S->size();
    TotalWeight += GroupWeight[I];
  }
  A.NumGroups = static_cast<unsigned>(GroupOrder.size());
  A.TotalWeight = TotalWeight;
  A.MaxGroupWeight = *std::max_element(GroupWeight.begin(), GroupWeight.end());
  unsigned NumStages =
      std::min<unsigned>(Workers, static_cast<unsigned>(GroupOrder.size()));
  if (Opts.MinimumStageWeight)
    NumStages = std::min<unsigned>(
        NumStages,
        static_cast<unsigned>(TotalWeight / Opts.MinimumStageWeight));
  if (NumStages < 2)
    return Fail("not profitable (stages too small to amortize queues)");
  // Greedy chunking can fail to place a single boundary at a high stage
  // target when the weight is concentrated in the last groups (the
  // "leave one group per remaining stage" guard vetoes every split), so
  // retry with progressively fewer stages: a 2-stage split exists
  // whenever there are two groups at all.
  std::vector<unsigned> StageOfGroup(GroupOrder.size(), 0);
  for (unsigned Target = NumStages; Target >= 2; --Target) {
    double Ideal = static_cast<double>(TotalWeight) / Target;
    unsigned Stage = 0;
    double Acc = 0;
    for (unsigned I = 0; I < GroupOrder.size(); ++I) {
      StageOfGroup[I] = Stage;
      Acc += static_cast<double>(GroupWeight[I]);
      unsigned Remaining = static_cast<unsigned>(GroupOrder.size()) - I - 1;
      if (Acc >= Ideal && Stage + 1 < Target &&
          Remaining >= (Target - Stage - 1)) {
        ++Stage;
        Acc = 0;
      }
    }
    NumStages = Stage + 1;
    if (NumStages >= 2)
      break;
  }
  if (NumStages < 2)
    return Fail("stage balancing collapsed to one stage");
  if (Opts.MinimumStageWeight &&
      TotalWeight / NumStages < Opts.MinimumStageWeight)
    return Fail("not profitable (stages too small to amortize queues)");

  // Ownership map: instruction -> stage.
  A.StageOf.clear();
  for (unsigned I = 0; I < GroupOrder.size(); ++I)
    for (SCC *S : GroupMembers[GroupOrder[I]])
      for (auto *V : S->getNodes())
        A.StageOf[nir::cast<Instruction>(V)] = StageOfGroup[I];

  // Live-outs: reduction accumulators, or header phis owned by a single
  // stage (their clone dominates the task exit, so the final value can
  // be stored there — e.g. the last value of a pipelined recurrence).
  auto &Env = LC.getEnvironment();
  for (Instruction *Out : Env.getLiveOuts()) {
    bool IsReduction = false;
    for (const auto &R : RM.getReductions())
      if (Out == R.Phi || Out == R.Update)
        IsReduction = true;
    bool IsOwnedHeaderPhi = nir::isa<PhiInst>(Out) &&
                            Out->getParent() == LS.getHeader() &&
                            A.StageOf.count(Out);
    if (!IsReduction && !IsOwnedHeaderPhi)
      return Fail("live-out value is not a reduction accumulator or "
                  "stage-owned recurrence");
  }

  // Cross-stage register edges -> queues. Collect (def, consumerStage).
  A.Queues.clear();
  std::map<std::pair<const Instruction *, unsigned>, unsigned> QueueIdx;
  for (BasicBlock *BB : LS.getBlocks())
    for (const auto &IPtr : BB->getInstList()) {
      Instruction *I = IPtr.get();
      auto DefIt = A.StageOf.find(I);
      for (Value *Op : I->operands()) {
        auto *Def = nir::dyn_cast<Instruction>(Op);
        if (!Def || !LS.contains(Def))
          continue;
        auto OpIt = A.StageOf.find(Def);
        if (OpIt == A.StageOf.end())
          continue; // Replicated producer: recomputed locally.
        unsigned ConsumerStage;
        if (DefIt != A.StageOf.end())
          ConsumerStage = DefIt->second;
        else
          // Consumer is replicated (e.g. feeds the skeleton): it exists
          // in every stage; that would need a broadcast queue.
          return Fail("pipeline value consumed by the replicated skeleton");
        if (OpIt->second == ConsumerStage)
          continue;
        auto Key = std::make_pair(static_cast<const Instruction *>(Def),
                                  ConsumerStage);
        if (!QueueIdx.count(Key)) {
          QueueIdx[Key] = static_cast<unsigned>(A.Queues.size());
          A.Queues.push_back({Def, OpIt->second, ConsumerStage});
        }
      }
    }

  A.NumStages = NumStages;

  if (std::getenv("DSWP_DEBUG")) {
    std::fprintf(stderr, "DSWP: %u stages, %zu queues\n", NumStages,
                 A.Queues.size());
    for (auto &[I, S] : A.StageOf)
      std::fprintf(stderr, "  stage %u: %s (%s)\n", S,
                   I->getOpcodeName().c_str(), I->getName().c_str());
    for (auto &Q : A.Queues)
      std::fprintf(stderr, "  queue %s: %u -> %u\n",
                   Q.Def->getOpcodeName().c_str(), Q.FromStage, Q.ToStage);
  }

  return true;
}

Legality DSWP::applicable(LoopContent &LC) {
  Legality L;
  PipelineAnalysis A;
  if (!analyze(LC, Opts.NumCores, A, L.Reason))
    return L;
  nir::LoopStructure &LS = LC.getLoopStructure();
  for (BasicBlock *BB : LS.getBlocks())
    for (const auto &I : BB->getInstList())
      if (!nir::isa<PhiInst>(I.get()) && !I->isTerminator())
        ++L.BodyWeight;
  L.NumStages = A.NumStages;
  L.NumQueues = static_cast<unsigned>(A.Queues.size());
  L.NumGroups = A.NumGroups;
  L.TotalPipelineWeight = A.TotalWeight;
  L.MaxGroupWeight = A.MaxGroupWeight;
  if (A.NumStages > 0) {
    std::vector<unsigned> OpsPerStage(A.NumStages, 0);
    for (const auto &Q : A.Queues) {
      if (Q.FromStage < A.NumStages)
        ++OpsPerStage[Q.FromStage]; // push
      if (Q.ToStage < A.NumStages)
        ++OpsPerStage[Q.ToStage]; // pop
    }
    L.MaxStageQueueOps =
        *std::max_element(OpsPerStage.begin(), OpsPerStage.end());
  }
  L.Ok = true;
  return L;
}

TechniqueCost DSWP::estimate(const Legality &L, const LoopPlan &P,
                             const CostQuery &Q) const {
  // The pipeline's throughput is set by its bottleneck stage: at best
  // the work splits evenly, but an unsplittable SCC group floors the
  // bottleneck. Every stage also replicates the control skeleton and
  // pays two queue operations per crossing value per iteration.
  double Body =
      static_cast<double>(std::max<uint64_t>(1, L.BodyWeight)) *
      Q.BodyScale;
  unsigned Stages = std::min(std::max(1u, P.Workers),
                             std::max(1u, L.NumGroups));
  double S = Stages;
  double PipeWork =
      static_cast<double>(L.TotalPipelineWeight) * Q.BodyScale;
  double Bottleneck =
      std::max(PipeWork / S,
               static_cast<double>(L.MaxGroupWeight) * Q.BodyScale);
  double Skeleton = Body > PipeWork ? Body - PipeWork : 0.0;
  // Queue traffic is charged at the bottleneck stage: its own pushes
  // and pops serialize with its compute, while other stages' queue ops
  // overlap. This is at least the old average charge
  // (2*SyncCost*NumQueues/S), and strictly more when the queue layout
  // is skewed toward one stage.
  double QueueOps =
      Q.SyncCost * static_cast<double>(L.MaxStageQueueOps);
  TechniqueCost C;
  C.SequentialTime = Q.Invocations * Q.TripCount * Body;
  C.ParallelTime =
      Q.Invocations * (Q.TripCount * (Bottleneck + Skeleton + QueueOps) +
                       S * Q.SpawnCostPerTask);
  return C;
}

bool DSWP::apply(LoopContent &LC, const LoopPlan &P, Decision &D) {
  D.Kind = TechniqueKind::DSWP;
  unsigned Workers = std::max(1u, P.Workers);
  PipelineAnalysis A;
  if (!analyze(LC, Workers, A, D.Reason))
    return false;
  unsigned NumStages = A.NumStages;
  auto &Queues = A.Queues;
  auto &StageOf = A.StageOf;
  D.NumStages = NumStages;
  D.NumQueues = static_cast<unsigned>(Queues.size());

  N.noteRequest(Abstraction::ENV);
  N.noteRequest(Abstraction::T);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::IVS);
  N.noteRequest(Abstraction::LS);

  //===--------------------------------------------------------------------===//
  // Code generation.
  //===--------------------------------------------------------------------===//

  nir::LoopStructure &LS = LC.getLoopStructure();
  auto &RM = LC.getReductionManager();
  auto &Env = LC.getEnvironment();
  Function *F = LS.getFunction();
  nir::Module &M = *F->getParent();
  nir::Context &Ctx = M.getContext();
  declareParallelRuntime(M);
  Function *PushFn = M.getFunction("noelle_queue_push");
  Function *PopFn = M.getFunction("noelle_queue_pop");
  Function *QCreateFn = M.getFunction("noelle_queue_create");

  EnvLayout Layout;
  Layout.Env = &Env;
  Layout.Lanes = 1; // each live-out owned by exactly one stage
  unsigned QueueSlotBase = Layout.totalSlots();
  unsigned TotalSlots = QueueSlotBase + static_cast<unsigned>(Queues.size());

  // Build one task per stage.
  std::vector<ClonedLoopTask> Stages;
  for (unsigned Stage = 0; Stage < NumStages; ++Stage) {
    ClonedLoopTask Task = cloneLoopIntoTask(
        LS, Layout,
        F->getName() + ".dswp" + std::to_string(LS.getID()) + ".stage" +
            std::to_string(Stage));
    Task.TaskFn->setMetadata(verify::TaskKindKey, "dswp-stage");
    Task.TaskFn->setMetadata(verify::TaskStageKey, std::to_string(Stage));
    Task.TaskFn->setMetadata(verify::TaskStagesKey,
                             std::to_string(NumStages));
    IRBuilder TB(Ctx);

    // Load queue handles in the entry block.
    std::map<unsigned, Value *> QueueHandles;
    TB.setInsertPoint(Task.TaskFn->getEntryBlock().getTerminator());
    for (unsigned Q = 0; Q < Queues.size(); ++Q)
      if (Queues[Q].FromStage == Stage || Queues[Q].ToStage == Stage)
        QueueHandles[Q] = emitEnvLoad(TB, Task.EnvArg, QueueSlotBase + Q,
                                      Ctx.getPtrTy(), "q");

    // Snapshot the clones of foreign instructions *before* consumer
    // pops overwrite the value map (the sweep below must delete the
    // original clones, never the pops that replace them).
    std::vector<Instruction *> Doomed;
    for (BasicBlock *BB : LS.getBlocks())
      for (const auto &IPtr : BB->getInstList()) {
        Instruction *I = IPtr.get();
        auto It = StageOf.find(I);
        if (It == StageOf.end() || It->second == Stage)
          continue;
        auto MapIt = Task.ValueMap.find(I);
        if (MapIt == Task.ValueMap.end())
          continue;
        auto *Cloned = nir::dyn_cast<Instruction>(MapIt->second);
        if (Cloned && Cloned->getParent())
          Doomed.push_back(Cloned);
      }

    // Producer side: push owned values that cross stages, right after
    // their definition.
    for (unsigned Q = 0; Q < Queues.size(); ++Q) {
      if (Queues[Q].FromStage != Stage)
        continue;
      auto *ClonedDef = nir::cast<Instruction>(Task.ValueMap[Queues[Q].Def]);
      Instruction *After = ClonedDef->getNextInst();
      assert(After && "definition cannot be a terminator");
      TB.setInsertPoint(After);
      Value *Word = toQueueWord(TB, ClonedDef);
      nir::CallInst *Push = TB.createCall(PushFn, {QueueHandles[Q], Word});
      std::string DefId = Queues[Q].Def->getMetadata(nir::InstIDKey);
      if (!DefId.empty()) {
        Push->setMetadata(verify::CheckQueueKey, std::to_string(Q));
        Push->setMetadata(verify::CheckQueueOrigKey, DefId);
      }
    }

    // Consumer side: replace the clone of a foreign def with a pop at
    // its original position.
    for (unsigned Q = 0; Q < Queues.size(); ++Q) {
      if (Queues[Q].ToStage != Stage)
        continue;
      auto *ClonedDef = nir::cast<Instruction>(Task.ValueMap[Queues[Q].Def]);
      TB.setInsertPoint(ClonedDef);
      nir::CallInst *Word = TB.createCall(PopFn, {QueueHandles[Q]}, "pop");
      std::string DefId = Queues[Q].Def->getMetadata(nir::InstIDKey);
      if (!DefId.empty()) {
        Word->setMetadata(verify::CheckQueueKey, std::to_string(Q));
        Word->setMetadata(verify::CheckQueueOrigKey, DefId);
      }
      Value *Typed = fromQueueWord(TB, Word, ClonedDef->getType());
      ClonedDef->replaceAllUsesWith(Typed);
      Task.ValueMap[Queues[Q].Def] = Typed;
      // The dead clone is removed by the sweep below.
    }

    // Delete every instruction not owned by this stage and not part of
    // the replicated skeleton, bottom-up.
    std::sort(Doomed.begin(), Doomed.end(),
              [](Instruction *A, Instruction *B) {
                return positionOf(A) > positionOf(B);
              });
    for (Instruction *I : Doomed) {
      if (I->hasUses())
        I->replaceAllUsesWith(Ctx.getUndef(I->getType()));
      I->eraseFromParent();
    }

    // Reduction live-outs owned by this stage: store the final value at
    // task exit (initial value kept, so no cross-lane combine needed).
    IRBuilder ExitB(Ctx);
    ExitB.setInsertPoint(Task.ExitBlock->getTerminator());
    for (Instruction *Out : Env.getLiveOuts()) {
      auto It = StageOf.find(Out);
      if (It == StageOf.end() || It->second != Stage)
        continue;
      const ReductionVariable *R = nullptr;
      for (const auto &Cand : RM.getReductions())
        if (Out == Cand.Phi || Out == Cand.Update)
          R = &Cand;
      // Reductions store their accumulator phi; stage-owned recurrences
      // store their own (header-phi) clone.
      Value *Final = Task.ValueMap[R ? static_cast<Instruction *>(R->Phi)
                                     : Out];
      Value *Slot = ExitB.createGEP(
          Task.EnvArg, ExitB.getInt64(Layout.liveOutSlot(Out, 0)), 8,
          "out.slot");
      ExitB.createStore(Final, Slot);
    }

    Stages.push_back(std::move(Task));
  }

  // Trampoline task: selects the stage body by task id.
  Function *Trampoline =
      createTaskFunction(M, F->getName() + ".dswp" +
                                std::to_string(LS.getID()) + ".pipeline");
  Trampoline->setMetadata(verify::TaskKindKey, "dswp-pipeline");
  Trampoline->setMetadata(verify::TaskSrcFnKey, F->getName());
  {
    IRBuilder TB(Ctx);
    BasicBlock *Entry = Trampoline->createBlock("entry");
    BasicBlock *Done = Trampoline->createBlock("done");
    BasicBlock *Prev = Entry;
    for (unsigned Stage = 0; Stage < NumStages; ++Stage) {
      BasicBlock *CallBB = Trampoline->createBlock(
          "stage" + std::to_string(Stage));
      TB.setInsertPoint(CallBB);
      TB.createCall(Stages[Stage].TaskFn,
                    {Trampoline->getArg(0), Trampoline->getArg(1),
                     Trampoline->getArg(2)});
      TB.createBr(Done);
      TB.setInsertPoint(Prev);
      if (Stage + 1 < NumStages) {
        BasicBlock *Next =
            Trampoline->createBlock("sel" + std::to_string(Stage + 1));
        Value *IsThis = TB.createCmp(CmpInst::Pred::EQ,
                                     Trampoline->getArg(1),
                                     TB.getInt64(Stage));
        TB.createCondBr(IsThis, CallBB, Next);
        Prev = Next;
      } else {
        TB.createBr(CallBB);
      }
    }
    TB.setInsertPoint(Done);
    TB.createRetVoid();
  }

  // Caller side.
  BasicBlock *Dispatch =
      replaceLoopWithDispatch(LS, Layout, Trampoline, NumStages);
  auto *EnvAlloca = nir::cast<nir::AllocaInst>(Dispatch->front());
  auto *Widened = new nir::AllocaInst(
      Ctx.getPtrTy(), Ctx.getArrayTy(Ctx.getInt64Ty(), TotalSlots));
  Widened->setName("env");
  Widened->insertBefore(EnvAlloca);
  EnvAlloca->replaceAllUsesWith(Widened);
  EnvAlloca->eraseFromParent();
  Value *EnvV = Widened;

  nir::Instruction *DispatchCall = nullptr;
  for (auto &I : Dispatch->getInstList())
    if (auto *C = nir::dyn_cast<nir::CallInst>(I.get()))
      if (C->getCalledFunction() &&
          C->getCalledFunction()->getName() == "noelle_dispatch")
        DispatchCall = C;
  assert(DispatchCall);
  IRBuilder CB(Ctx);
  CB.setInsertPoint(DispatchCall);
  for (unsigned Q = 0; Q < Queues.size(); ++Q) {
    Value *Handle = CB.createCall(
        QCreateFn, {Ctx.getInt64(static_cast<int64_t>(Opts.QueueCapacity))},
        "queue");
    emitEnvStore(CB, EnvV, QueueSlotBase + Q, Handle);
  }

  CB.setInsertPoint(Dispatch->getTerminator());
  for (Instruction *Out : Env.getLiveOuts()) {
    Value *Final = emitEnvLoad(CB, EnvV, Layout.liveOutSlot(Out, 0),
                               Out->getType(), "final");
    Out->replaceAllUsesWith(Final);
  }

  // finalizeLoopRemoval frees the loop's blocks, and LS reads its header
  // to answer getFunction(): resolve the host function first.
  nir::Function *HostF = LS.getFunction();
  finalizeLoopRemoval(LS, Dispatch);
  // Only the host function changed (the task bodies are new functions
  // with no cached analyses): keep every other function's bundles.
  N.invalidate(*HostF);
  bumpPlanEpoch(M);
  assert(nir::moduleVerifies(M) && "DSWP produced invalid IR");
  D.Parallelized = true;
  D.Workers = Workers;
  return true;
}
